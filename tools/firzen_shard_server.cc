// Standalone shard server for distributed serving deployments:
//
//   firzen_shard_server --embeddings model.fzem --shard-range A:B
//                       [--listen 127.0.0.1:0] [--item-block 8192]
//
// Loads a serialized model, serves the contiguous global item range
// [A, B) over the distributed wire protocol (src/serve/wire.h), and runs
// until SIGINT/SIGTERM. The first stdout line is
// "listening on ADDR (shard [A,B) of N items)" with the kernel-assigned
// port resolved, so orchestration (and tests) can scrape where it bound.
//
// `firzen_cli serve-shard` is the same server behind the same flags; this
// binary exists so deployments can ship the shard server alone.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>

#include "src/serve/shard_server.h"
#include "src/util/logging.h"

namespace {

using namespace firzen;  // NOLINT(build/namespaces)

volatile std::sig_atomic_t g_shutdown = 0;
void OnShutdownSignal(int) { g_shutdown = 1; }

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
      std::exit(2);
    }
    flags[key.substr(2)] = argv[i + 1];
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& def) {
  auto it = flags.find(key);
  return it == flags.end() ? def : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  const auto flags = ParseFlags(argc, argv);
  const std::string path = FlagOr(flags, "embeddings", "");
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: firzen_shard_server --embeddings model.fzem "
                 "--shard-range A:B [--listen HOST:PORT|unix:PATH] "
                 "[--item-block N] [--stall-replies-us N]\n");
    return 2;
  }

  long long begin = 0;
  long long end = -1;
  const std::string range = FlagOr(flags, "shard-range", "");
  if (!range.empty()) {
    const size_t colon = range.find(':');
    try {
      if (colon == std::string::npos) throw std::invalid_argument(range);
      begin = std::stoll(range.substr(0, colon));
      end = std::stoll(range.substr(colon + 1));
      if (begin < 0 || end < begin) throw std::invalid_argument(range);
    } catch (const std::exception&) {
      std::fprintf(stderr, "--shard-range expects A:B with 0 <= A <= B\n");
      return 2;
    }
  }

  ShardServerOptions options;
  options.listen_address = FlagOr(flags, "listen", "127.0.0.1:0");
  try {
    options.item_block =
        static_cast<Index>(std::stoll(FlagOr(flags, "item-block", "8192")));
  } catch (const std::exception&) {
    std::fprintf(stderr, "--item-block expects an integer\n");
    return 2;
  }
  if (options.item_block <= 0) {
    std::fprintf(stderr, "--item-block must be positive\n");
    return 2;
  }
  try {
    options.stall_replies_us = static_cast<int64_t>(
        std::stoll(FlagOr(flags, "stall-replies-us", "0")));
  } catch (const std::exception&) {
    std::fprintf(stderr, "--stall-replies-us expects an integer\n");
    return 2;
  }
  if (options.stall_replies_us < 0) {
    std::fprintf(stderr, "--stall-replies-us must be >= 0\n");
    return 2;
  }

  if (end < 0) {
    auto probe = LoadEmbeddings(path);
    if (!probe.ok()) {
      std::fprintf(stderr, "%s\n", probe.status().ToString().c_str());
      return 1;
    }
    end = probe.value()->ItemEmbeddings().rows();
  }
  auto served = ServeEmbeddingsShard(path, static_cast<Index>(begin),
                                     static_cast<Index>(end), options);
  if (!served.ok()) {
    std::fprintf(stderr, "%s\n", served.status().ToString().c_str());
    return 1;
  }
  ShardServer& server = *served.value().server;
  std::printf("listening on %s (shard [%lld,%lld) of %lld items)\n",
              server.bound_address().c_str(),
              static_cast<long long>(server.shard_begin()),
              static_cast<long long>(server.shard_end()),
              static_cast<long long>(server.num_items()));
  std::fflush(stdout);

  std::signal(SIGINT, OnShutdownSignal);
  std::signal(SIGTERM, OnShutdownSignal);
  while (!g_shutdown) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  std::fprintf(stderr, "served %llu requests in %llu batches\n",
               static_cast<unsigned long long>(server.requests_served()),
               static_cast<unsigned long long>(server.batches_served()));
  return 0;
}
