#!/usr/bin/env bash
# Builds the Release benchmark binary and writes the kernel perf trajectory
# to BENCH_kernels.json (google-benchmark JSON format).
#
# Usage:
#   tools/run_bench.sh                    # full kernel sweep, JSON + console
#   tools/run_bench.sh --quick            # one fast pass (CI smoke)
#   FIRZEN_NUM_THREADS=4 tools/run_bench.sh
#
# Extra arguments after the flags are forwarded to bench_kernels, e.g.
#   tools/run_bench.sh --benchmark_filter=BM_Gemm
#
# Compare two runs: keep the old JSON and diff the per-benchmark
# real_time/items_per_second fields (see bench/README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${FIRZEN_BENCH_BUILD_DIR:-build-release}
OUT=${FIRZEN_BENCH_OUT:-BENCH_kernels.json}

REPS=5
MIN_TIME=0.2
if [[ "${1:-}" == "--quick" ]]; then
  REPS=1
  MIN_TIME=0.05
  shift
fi

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${BUILD_DIR}" -j --target bench_kernels >/dev/null

"./${BUILD_DIR}/bench_kernels" \
  "--benchmark_filter=BM_(Gemm|SpMM|BatchTopK)" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_repetitions="${REPS}" \
  --benchmark_report_aggregates_only \
  --benchmark_out="${OUT}" \
  --benchmark_out_format=json \
  "$@"

echo "wrote ${OUT} (threads label = FIRZEN_NUM_THREADS at run time)"
