#!/usr/bin/env bash
# Builds the Release benchmark binaries and writes the perf trajectory to
# BENCH_kernels.json (google-benchmark JSON format): the kernel sweep from
# bench_kernels plus the end-to-end serving cases from bench_serving —
# fused ScoreBlock+TopK vs. materialize-then-rank, BM_ServingConcurrent
# (1/2/4 request threads against ONE shared ServingEngine) charting the
# shared-engine throughput scaling, and BM_ServingSharded (1/2/4 catalog
# shards x 1/4 request threads against ONE shared ShardedServingEngine,
# parity-checked against the single engine at startup) charting what the
# sharded merge costs and parallel shard ranking buys — appended into one
# file.
#
# Usage:
#   tools/run_bench.sh                    # full sweep, JSON + console
#   tools/run_bench.sh --quick            # one fast pass (CI smoke)
#   FIRZEN_NUM_THREADS=4 tools/run_bench.sh
#
# Extra arguments after the flags are forwarded to bench_kernels, e.g.
#   tools/run_bench.sh --benchmark_filter=BM_Gemm
#
# Compare two runs: keep the old JSON and diff the per-benchmark
# real_time/items_per_second fields (see bench/README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${FIRZEN_BENCH_BUILD_DIR:-build-release}
OUT=${FIRZEN_BENCH_OUT:-BENCH_kernels.json}

REPS=5
MIN_TIME=0.2
if [[ "${1:-}" == "--quick" ]]; then
  REPS=1
  MIN_TIME=0.05
  shift
fi

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${BUILD_DIR}" -j --target bench_kernels --target bench_serving \
  >/dev/null

"./${BUILD_DIR}/bench_kernels" \
  "--benchmark_filter=BM_(Gemm|SpMM|BatchTopK)" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_repetitions="${REPS}" \
  --benchmark_out="${OUT}" \
  --benchmark_report_aggregates_only \
  --benchmark_out_format=json \
  "$@"

# End-to-end serving, including the concurrent shared-engine scaling cases
# and the sharded-catalog cases (the BM_Serving filter matches
# BM_ServingConcurrent and BM_ServingSharded too): one repetition is
# representative (the cases verify fused/materialized and sharded/single
# parity internally before timing).
SERVING_OUT="${OUT%.json}_serving.tmp.json"
"./${BUILD_DIR}/bench_serving" \
  --benchmark_filter=BM_Serving \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_out="${SERVING_OUT}" \
  --benchmark_out_format=json

# Append the serving benchmarks into the kernel JSON so one file carries the
# whole trajectory. Without jq the serving rows are kept in a side file
# instead of losing the whole run.
if command -v jq >/dev/null; then
  jq -s '.[0].benchmarks += .[1].benchmarks | .[0]' \
    "${OUT}" "${SERVING_OUT}" > "${OUT}.merged" \
    && mv "${OUT}.merged" "${OUT}"
  rm -f "${SERVING_OUT}"
else
  mv "${SERVING_OUT}" "${OUT%.json}_serving.json"
  echo "jq not found: serving results left in ${OUT%.json}_serving.json" >&2
fi

echo "wrote ${OUT} (threads label = FIRZEN_NUM_THREADS at run time)"
