#!/usr/bin/env bash
# Builds the Release benchmark binaries and writes the perf trajectory to
# BENCH_kernels.json (google-benchmark JSON format): the kernel sweep from
# bench_kernels plus the end-to-end serving cases from bench_serving —
# fused ScoreBlock+TopK vs. materialize-then-rank, BM_ServingConcurrent
# (1/2/4 request threads against ONE shared ServingEngine) charting the
# shared-engine throughput scaling, BM_ServingSharded (1/2/4 catalog
# shards x 1/4 request threads against ONE shared ShardedServingEngine,
# parity-checked against the single engine at startup) charting what the
# sharded merge costs and parallel shard ranking buys,
# BM_ServingDistributed (1/2/4 in-process shard servers behind real
# loopback sockets under ONE coordinator, parity-checked against the
# in-process sharded engine at startup, with a wire_bytes_per_req counter)
# charting the wire + fan-out overhead of moving shards behind sockets, and
# BM_ServingAdmission (8 concurrent single-request threads, admission
# coalescing off/on, parity-gated, with p50/p95/p99 per-request latency
# counters) charting the admission-batching win, and BM_ServingSaturation
# (open-loop Poisson arrivals at 70/150/300% of the measured closed-loop
# capacity against a bounded admission queue) charting overload behavior:
# offered_rps, goodput_rps, shed_rate, and served p50_ms/p99_ms — past
# saturation the shed rate must go nonzero while p99 stays bounded instead
# of the queue collapsing — appended into one file. The quantized rows —
# BM_GemmBTQuant (int8 catalog scoring vs the BM_GemmScoreBT fp32 baseline,
# with a footprint_reduction_x counter) and BM_ServingQuantized (the fused
# engine at --precision int8 vs fp32, bit-identity-gated across a 3-shard
# layout at startup) — ride the same filters.
# The JSON context block records FIRZEN_NUM_THREADS, the git commit, the
# build type, the SIMD tier the quantized kernels dispatched
# (firzen_simd_tier, stamped by the binaries themselves), and any
# FIRZEN_SIMD override, so entries stay attributable when
# BENCH_kernels.json accumulates runs from different hosts and revisions.
#
# Usage:
#   tools/run_bench.sh                    # full sweep, JSON + console
#   tools/run_bench.sh --quick            # one fast pass (CI smoke)
#   FIRZEN_NUM_THREADS=4 tools/run_bench.sh
#
# Extra arguments after the flags are forwarded to bench_kernels, e.g.
#   tools/run_bench.sh --benchmark_filter=BM_Gemm
#
# Compare two runs: keep the old JSON and diff the per-benchmark
# real_time/items_per_second fields (see bench/README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${FIRZEN_BENCH_BUILD_DIR:-build-release}
OUT=${FIRZEN_BENCH_OUT:-BENCH_kernels.json}

REPS=5
MIN_TIME=0.2
if [[ "${1:-}" == "--quick" ]]; then
  REPS=1
  MIN_TIME=0.05
  shift
fi

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${BUILD_DIR}" -j --target bench_kernels --target bench_serving \
  >/dev/null

"./${BUILD_DIR}/bench_kernels" \
  "--benchmark_filter=BM_(Gemm|SpMM|BatchTopK)" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_repetitions="${REPS}" \
  --benchmark_out="${OUT}" \
  --benchmark_report_aggregates_only \
  --benchmark_out_format=json \
  "$@"

# End-to-end serving, including the concurrent shared-engine scaling cases,
# the sharded-catalog cases, the distributed socket fan-out cases, the
# admission cases, and the open-loop saturation sweep (the BM_Serving
# filter matches BM_ServingConcurrent, BM_ServingSharded,
# BM_ServingDistributed, BM_ServingAdmission, and BM_ServingSaturation
# too):
# one repetition is representative (the cases verify fused/materialized,
# sharded/single, distributed/sharded, and admission/alone parity
# internally before timing; the
# saturation cases pin their own iteration count so the offered-rate
# schedule is identical run to run).
SERVING_OUT="${OUT%.json}_serving.tmp.json"
# An interrupted run must not leave merge intermediates next to the real
# JSON (set -e skips the happy-path rm below on any failure).
trap 'rm -f "${SERVING_OUT}" "${OUT}.merged"' EXIT
"./${BUILD_DIR}/bench_serving" \
  --benchmark_filter=BM_Serving \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_out="${SERVING_OUT}" \
  --benchmark_out_format=json

# Provenance for cross-host/cross-revision comparisons: the pool size the
# kernels actually ran with, the code revision, and the build type. The
# DISPATCHED SIMD tier is already in the context — the bench binaries stamp
# firzen_simd_tier themselves via AddCustomContext (they are the only ones
# who know what the runtime dispatch resolved to); here we record whether a
# FIRZEN_SIMD override was forcing it, so a scalar-pinned run can never be
# mistaken for the host's natural tier.
FIRZEN_THREADS_VALUE=${FIRZEN_NUM_THREADS:-auto}
FIRZEN_SIMD_VALUE=${FIRZEN_SIMD:-auto}
GIT_COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
# Dirty = modified tracked files OR untracked sources (CMake GLOBs compile
# untracked .cc files into the benchmarks, so they count).
if [[ -n "$(git status --porcelain 2>/dev/null)" ]]; then
  GIT_COMMIT="${GIT_COMMIT}-dirty"
fi
BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
  "${BUILD_DIR}/CMakeCache.txt" 2>/dev/null)
BUILD_TYPE=${BUILD_TYPE:-unknown}

# Append the serving benchmarks into the kernel JSON so one file carries the
# whole trajectory, and stamp the provenance fields into the context block.
# Without jq the serving rows are kept in a side file instead of losing the
# whole run (and the context stays unstamped).
if command -v jq >/dev/null; then
  jq -s \
    --arg threads "${FIRZEN_THREADS_VALUE}" \
    --arg commit "${GIT_COMMIT}" \
    --arg build "${BUILD_TYPE}" \
    --arg simd "${FIRZEN_SIMD_VALUE}" \
    '.[0].benchmarks += .[1].benchmarks
     | .[0].context += {firzen_num_threads: $threads,
                        git_commit: $commit,
                        build_type: $build,
                        firzen_simd_override: $simd}
     | .[0]' \
    "${OUT}" "${SERVING_OUT}" > "${OUT}.merged" \
    && mv "${OUT}.merged" "${OUT}"
  rm -f "${SERVING_OUT}"
else
  mv "${SERVING_OUT}" "${OUT%.json}_serving.json"
  echo "jq not found: serving results left in ${OUT%.json}_serving.json," \
    "context not stamped" >&2
fi

echo "wrote ${OUT} (context: threads=${FIRZEN_THREADS_VALUE}" \
  "commit=${GIT_COMMIT} build=${BUILD_TYPE})"
