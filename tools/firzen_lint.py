#!/usr/bin/env python3
"""firzen_lint: the determinism and layering linter for the Firzen tree.

The serving stack's headline guarantee is bit-exact reproducibility: the
same request against the same model produces byte-identical bytes on every
platform, thread count, shard layout, and batch composition. Most of that
contract is pinned by tests, but a whole class of regressions is invisible
to tests that all run on one platform with one standard library:

  * iterating a std::unordered_{map,set} and letting the HASH ORDER reach
    scores, rankings, rng draws, or serialized output — identical on one
    libstdc++, silently different on another;
  * sorting float scores with a bare `a > b` comparator — ties resolve to
    whatever the sort implementation does, instead of the repo-wide strict
    total order RanksBefore (score desc, item id asc);
  * rand()/random_device/mt19937 instead of the seeded util/rng.h stream,
    or wall-clock reads (time(), system_clock) instead of injected clocks;
  * float accumulation loops in tensor/ outside the sanctioned kernels in
    matrix.cc and quantized.cc, whose fixed p-ordered fma loops (and the
    int8 kernels' single dequant epilogue) ARE the accumulation contract;
  * CPU feature probes (__builtin_cpu_supports, __get_cpuid, raw cpuid)
    outside the single runtime-dispatch TU src/tensor/quantized.cc — a
    second dispatch site can resolve to a DIFFERENT SIMD tier than the
    pinned one and split the process across numeric behaviors;
  * #include edges that run up the layer stack (util < tensor < data <
    graph < {core, models} < eval < serve), which is how "the eval layer
    depends on the wire protocol" happens one convenience include at a
    time.

This linter turns each of those into a build failure. It is stdlib-only,
regex-based (heuristic by design: it must never need a compiler), strips
comments and string literals before matching, and supports per-site
escapes:

    // firzen-lint: allow(<rule>) -- justification
    <flagged statement>

placed on the flagged line or within ALLOW_WINDOW lines above it. Every
allow is expected to carry a justification comment; unexplained hash-order
or bare-comparator code should be fixed, not suppressed.

Usage:
    tools/firzen_lint.py [--src-root DIR] [--compile-commands FILE]
                         [--list-rules]

Exit status: 0 = clean, 1 = findings, 2 = usage error.
Findings print as `path:line: rule: message`, one per line.
"""

import argparse
import json
import os
import re
import sys

# How far above a flagged line an allow(<rule>) escape may sit.
ALLOW_WINDOW = 4

ALLOW_RE = re.compile(r"firzen-lint:\s*allow\(([a-z-]+)\)")

# Layering: an #include from a strictly higher layer is a violation.
# core and models share a rank (models builds on core's graph machinery).
LAYERS = {
    "util": 0,
    "tensor": 1,
    "data": 2,
    "graph": 3,
    "core": 4,
    "models": 4,
    "eval": 5,
    "serve": 6,
}

RULES = {
    "unordered-iteration":
        "hash-order iteration over a std::unordered_{map,set}; sort the "
        "keys first or use an ordered container",
    "raw-sort":
        "sort over float scores without RanksBefore; ties depend on the "
        "sort implementation",
    "banned-rng":
        "non-seeded randomness; use util/rng.h (seeded xoshiro256**)",
    "banned-time":
        "wall-clock read; inject the clock or use steady_clock",
    "raw-float-accum":
        "float accumulation loop in tensor/ outside the sanctioned "
        "kernels (matrix.cc, quantized.cc)",
    "stray-cpuid":
        "CPU feature probe outside the dispatch TU "
        "(src/tensor/quantized.cc); use DispatchedSimdTier()",
    "include-layering":
        "#include from a higher layer (util < tensor < data < graph < "
        "{core, models} < eval < serve)",
}

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:multi)?(?:map|set)\s*<[^;]*?>\s+(\w+)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;)]*?:\s*\*?(\w+)\s*\)")
BEGIN_CALL_RE = re.compile(r"\b(\w+)\.(?:begin|cbegin)\s*\(\)")

SORT_CALL_RE = re.compile(
    r"\bstd::(?:stable_)?(?:partial_)?sort\s*\(|\bstd::nth_element\s*\(")
FLOATISH_RE = re.compile(
    r"\b(?:Real|float|double|score[sd]?|scored|sim[s]?|similarit\w*|"
    r"dist[s]?|distance[s]?|weight[s]?)\b",
    re.IGNORECASE)

BANNED_RNG_RE = re.compile(
    r"\bs?rand\s*\(|\bstd::random_device\b|\brandom_device\b|"
    r"\bmt19937(?:_64)?\b|\bdefault_random_engine\b|\brand_r\s*\(")

BANNED_TIME_RE = re.compile(
    r"\bstd::time\s*\(|(?<![:\w])time\s*\(\s*(?:nullptr|NULL|0)\s*\)|"
    r"\bsystem_clock::now\s*\(|\bgettimeofday\s*\(|\bclock\s*\(\s*\)")

ACCUM_DECL_RE = re.compile(r"\b(?:Real|float|double)\s+(\w+)\s*=\s*0")
ACCUM_WINDOW = 6

# The fixed-order accumulation contract lives in these tensor/ TUs: the
# fp32 Gemm/panel kernels, and the int8 kernels whose int32 accumulators
# are exact (dequant is a single product, but QuantizeRow's max-abs scan
# keeps the file on the sanctioned list).
ACCUM_SANCTIONED = {"matrix.cc", "quantized.cc"}

STRAY_CPUID_RE = re.compile(
    r"\b__builtin_cpu_supports\s*\(|\b__get_cpuid(?:_count)?\s*\(|"
    r"\b__cpuid(?:ex)?\s*\(|\b_may_i_use_cpu_feature\s*\(")
# The one TU allowed to probe the CPU: runtime SIMD dispatch is resolved
# once there and pinned for the process lifetime.
DISPATCH_TU = "src/tensor/quantized.cc"

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"src/([a-z_]+)/')


def strip_comments_and_strings(text):
    """Blanks out comments, string and char literals, preserving newlines
    and column positions so findings keep their real line numbers."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                mode = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                mode = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if mode == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                mode = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def statement_text(lines, start, max_lines=8):
    """The flagged line plus continuation lines until the statement's
    parens balance (bounded) — sort calls span multiple lines."""
    depth = 0
    chunk = []
    for k in range(start, min(start + max_lines, len(lines))):
        chunk.append(lines[k])
        depth += lines[k].count("(") - lines[k].count(")")
        if k > start and depth <= 0:
            break
    return "\n".join(chunk)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message


def allowed(raw_lines, line_idx, rule):
    lo = max(0, line_idx - ALLOW_WINDOW)
    for k in range(lo, line_idx + 1):
        for m in ALLOW_RE.finditer(raw_lines[k]):
            if m.group(1) == rule:
                return True
    return False


def lint_file(path, rel, raw_text):
    raw_lines = raw_text.splitlines()
    code = strip_comments_and_strings(raw_text)
    code_lines = code.splitlines()
    findings = []

    def emit(line_idx, rule):
        if not allowed(raw_lines, line_idx, rule):
            findings.append(Finding(rel, line_idx + 1, rule, RULES[rule]))

    # --- unordered-iteration ---
    unordered_vars = set(UNORDERED_DECL_RE.findall(code))
    if unordered_vars:
        for i, line in enumerate(code_lines):
            m = RANGE_FOR_RE.search(line)
            if m and m.group(1) in unordered_vars:
                emit(i, "unordered-iteration")
                continue
            for b in BEGIN_CALL_RE.finditer(line):
                if b.group(1) in unordered_vars:
                    emit(i, "unordered-iteration")
                    break

    # --- raw-sort ---
    if os.path.basename(rel) != "topk.cc":
        for i, line in enumerate(code_lines):
            if not SORT_CALL_RE.search(line):
                continue
            stmt = statement_text(code_lines, i)
            if "RanksBefore" in stmt:
                continue
            if FLOATISH_RE.search(stmt):
                emit(i, "raw-sort")

    # --- banned-rng (util/rng.{h,cc} hosts the sanctioned generator) ---
    if not rel.replace("\\", "/").startswith("src/util/rng."):
        for i, line in enumerate(code_lines):
            if BANNED_RNG_RE.search(line):
                emit(i, "banned-rng")

    # --- banned-time ---
    for i, line in enumerate(code_lines):
        if BANNED_TIME_RE.search(line):
            emit(i, "banned-time")

    # --- stray-cpuid (everywhere but the single dispatch TU) ---
    if rel.replace("\\", "/") != DISPATCH_TU:
        for i, line in enumerate(code_lines):
            if STRAY_CPUID_RE.search(line):
                emit(i, "stray-cpuid")

    # --- raw-float-accum (tensor/ only, outside the sanctioned kernels) ---
    parts = rel.replace("\\", "/").split("/")
    in_tensor = len(parts) >= 2 and parts[0] == "src" and parts[1] == "tensor"
    if in_tensor and os.path.basename(rel) not in ACCUM_SANCTIONED:
        for i, line in enumerate(code_lines):
            for m in ACCUM_DECL_RE.finditer(line):
                name = m.group(1)
                acc_re = re.compile(r"\b%s\s*\+=" % re.escape(name))
                for k in range(i, min(i + ACCUM_WINDOW, len(code_lines))):
                    if acc_re.search(code_lines[k]):
                        emit(i, "raw-float-accum")
                        break

    # --- include-layering ---
    # Include paths are string literals and get blanked by the stripper, so
    # this rule matches the RAW line — gated on the stripped line still
    # being a preprocessor line (a commented-out include strips to blank).
    my_layer = LAYERS.get(parts[1]) if len(parts) >= 2 and parts[0] == "src" \
        else None
    if my_layer is not None:
        for i, line in enumerate(raw_lines):
            if i >= len(code_lines) or not code_lines[i].lstrip().startswith(
                    "#"):
                continue
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            target = LAYERS.get(m.group(1))
            if target is not None and target > my_layer:
                emit(i, "include-layering")

    return findings


def enumerate_files(src_root, compile_commands):
    """Files to lint: every .h/.cc under <src_root>/src. When a
    compile_commands.json is given, .cc files are restricted to those the
    build actually compiles (headers are always walked — they never appear
    in the database)."""
    src_dir = os.path.join(src_root, "src")
    if not os.path.isdir(src_dir):
        raise SystemExit("firzen_lint: no src/ under %r" % src_root)

    walked = []
    for dirpath, _, names in os.walk(src_dir):
        for name in sorted(names):
            if name.endswith((".h", ".cc")):
                walked.append(os.path.join(dirpath, name))

    compiled = None
    if compile_commands:
        with open(compile_commands) as f:
            db = json.load(f)
        compiled = set()
        for entry in db:
            p = entry.get("file", "")
            if not os.path.isabs(p):
                p = os.path.join(entry.get("directory", ""), p)
            compiled.add(os.path.realpath(p))

    out = []
    for path in walked:
        if (compiled is not None and path.endswith(".cc")
                and os.path.realpath(path) not in compiled):
            continue
        out.append(path)
    return out


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--src-root", default=".",
                        help="directory containing src/ (default: cwd)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json restricting the .cc set "
                             "(default: <src-root>/build/compile_commands."
                             "json when present)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print("%s: %s" % (rule, RULES[rule]))
        return 0

    compile_commands = args.compile_commands
    if compile_commands is None:
        default = os.path.join(args.src_root, "build",
                               "compile_commands.json")
        if os.path.isfile(default):
            compile_commands = default

    findings = []
    for path in enumerate_files(args.src_root, compile_commands):
        rel = os.path.relpath(path, args.src_root)
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
        findings.extend(lint_file(path, rel, raw))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print("%s:%d: %s: %s" % (f.path, f.line, f.rule, f.message))
    if findings:
        print("firzen_lint: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
