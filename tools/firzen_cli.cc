// Command-line front end for the library:
//
//   firzen_cli synth --profile beauty --scale 0.4 --out DIR
//       Generate a synthetic benchmark and export it as TSV files.
//
//   firzen_cli train --interactions F --text F --image F --kg F
//              [--model Firzen] [--dim 32] [--epochs 20] [--save model.fzem]
//       Train any registered model on TSV data, report strict cold-start and
//       warm-start metrics, optionally serialize the final embeddings.
//
//   firzen_cli serve-shard --embeddings model.fzem --shard-range A:B
//              [--listen 127.0.0.1:0] [--item-block 8192]
//              [--precision fp32|int8]
//       Serve one contiguous item-id shard of a serialized model over the
//       distributed wire protocol (src/serve/wire.h) until SIGINT/SIGTERM.
//       Prints "listening on ADDR ..." (with the kernel-assigned port
//       resolved) so orchestration can scrape where it bound. The same
//       server also ships as the standalone firzen_shard_server binary.
//
//   firzen_cli recommend --embeddings model.fzem --user ID [--k 10]
//              [--exclude 3,17,42] [--users 1,2,3 [--serve-threads 4]]
//              [--precision fp32|int8]
//              [--shards 4] [--shard-servers ADDR,ADDR,...]
//              [--rpc-timeout-ms 5000]
//              [--admission-batch 64 [--admission-wait-us 200]]
//              [--deadline-us 5000] [--max-queue-depth 128] [--tenant 0]
//       Serve top-K recommendations from a serialized model through the
//       block-streaming ServingEngine. --users serves several users over
//       ONE shared engine; --serve-threads answers them from concurrent
//       request threads (the engine is thread-safe — responses are
//       identical for any thread count). --shards N partitions the item
//       catalog across N sibling shard views (ShardedServingEngine) with a
//       bit-exact top-K merge — responses are identical for any shard
//       count. --shard-servers fans requests out to running serve-shard
//       processes instead (DistributedServingEngine); on the healthy path
//       the output is byte-identical to the local engines, and when a
//       shard server is down the surviving shards still answer, reported
//       as DEGRADED on stderr (exit stays 0 — degraded is served).
//       --admission-batch N (with N > 1) attaches an
//       AdmissionController: concurrent requests coalesce into fused user
//       batches of up to N, each request waiting at most
//       --admission-wait-us microseconds for co-riders — responses are
//       bit-identical with admission on or off, for any batch/wait bound.
//       Overload protection (attaches admission implicitly when needed):
//       --deadline-us B gives every request a latency budget of B
//       microseconds from enqueue (expired requests are rejected with
//       DEADLINE_EXCEEDED, never scored late), --max-queue-depth D bounds
//       the admission queue (requests past it are rejected with SHED
//       instead of blocking), and --tenant T tags the requests with a
//       fair-share tenant id. Non-OK requests are reported on stderr and
//       the exit status is nonzero when any request was not served.
//       --precision int8 serves through the quantized catalog
//       (docs/quantization.md): ~4x smaller resident item table, SIMD
//       integer scoring, rankings gated by the Recall@K quality ctest. With
//       --shard-servers the flag is ignored here — each serve-shard process
//       picks its own (start them all with the same value).
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/data/io.h"
#include "src/data/split.h"
#include "src/data/synthetic.h"
#include "src/eval/admission.h"
#include "src/eval/serving.h"
#include "src/eval/sharded_serving.h"
#include "src/models/registry.h"
#include "src/models/serialize.h"
#include "src/serve/distributed_serving.h"
#include "src/serve/shard_server.h"
#include "src/util/logging.h"
#include "src/util/table_printer.h"

namespace {

using namespace firzen;  // NOLINT(build/namespaces)

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
      std::exit(2);
    }
    flags[key.substr(2)] = argv[i + 1];
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& def) {
  auto it = flags.find(key);
  return it == flags.end() ? def : it->second;
}

// THE string-enum flag parser: every choice-valued flag (--profile,
// --precision, ...) goes through here, so an unknown value is an error
// listing the valid choices — never a silent fallthrough to a default
// (which is how `--profile beuaty` used to quietly synthesize the beauty
// profile). `*value` carries the default in and the parsed choice out.
bool ParseChoiceFlag(const std::map<std::string, std::string>& flags,
                     const std::string& key,
                     const std::vector<std::string>& choices,
                     std::string* value) {
  const std::string got = FlagOr(flags, key, *value);
  for (const std::string& choice : choices) {
    if (got == choice) {
      *value = got;
      return true;
    }
  }
  std::string valid;
  for (const std::string& choice : choices) {
    if (!valid.empty()) valid += ", ";
    valid += choice;
  }
  std::fprintf(stderr, "--%s expects one of {%s}, got '%s'\n", key.c_str(),
               valid.c_str(), got.c_str());
  return false;
}

// Parses --precision into the scorer tier (fp32 default; see
// docs/quantization.md for what int8 trades).
bool ParsePrecisionFlag(const std::map<std::string, std::string>& flags,
                        ScoringPrecision* precision) {
  std::string name = "fp32";
  if (!ParseChoiceFlag(flags, "precision", {"fp32", "int8"}, &name)) {
    return false;
  }
  *precision = name == "int8" ? ScoringPrecision::kInt8
                              : ScoringPrecision::kFp32;
  return true;
}

int RunSynth(const std::map<std::string, std::string>& flags) {
  std::string profile = "beauty";
  if (!ParseChoiceFlag(flags, "profile",
                       {"beauty", "cellphones", "clothing", "weixin"},
                       &profile)) {
    return 2;
  }
  const double scale = std::stod(FlagOr(flags, "scale", "0.4"));
  const std::string out = FlagOr(flags, "out", ".");
  SyntheticConfig config =
      profile == "cellphones" ? CellPhonesSConfig(scale)
      : profile == "clothing" ? ClothingSConfig(scale)
      : profile == "weixin"   ? WeixinSportsSConfig(scale)
                              : BeautySConfig(scale);
  const Dataset dataset = GenerateSyntheticDataset(config);
  std::vector<Interaction> all;
  for (const auto* split :
       {&dataset.train, &dataset.warm_val, &dataset.warm_test,
        &dataset.cold_val, &dataset.cold_test}) {
    all.insert(all.end(), split->begin(), split->end());
  }
  Status status = SaveInteractionsTsv(out + "/interactions.tsv", all);
  if (status.ok()) {
    status = SaveFeaturesTsv(out + "/text.tsv",
                             dataset.modalities[0].features);
  }
  if (status.ok()) {
    status = SaveFeaturesTsv(out + "/image.tsv",
                             dataset.modalities[1].features);
  }
  if (status.ok()) status = SaveKgTsv(out + "/kg.tsv", dataset.kg);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s/{interactions,text,image,kg}.tsv  (%lld users, %lld "
              "items, %zu interactions)\n",
              out.c_str(), static_cast<long long>(dataset.num_users),
              static_cast<long long>(dataset.num_items), all.size());
  return 0;
}

int RunTrain(const std::map<std::string, std::string>& flags) {
  const std::string inter_path = FlagOr(flags, "interactions", "");
  if (inter_path.empty()) {
    std::fprintf(stderr, "--interactions is required\n");
    return 2;
  }
  auto interactions = LoadInteractionsTsv(inter_path);
  if (!interactions.ok()) {
    std::fprintf(stderr, "%s\n", interactions.status().ToString().c_str());
    return 1;
  }
  Index num_users = 0;
  Index num_items = 0;
  for (const Interaction& x : interactions.value()) {
    num_users = std::max(num_users, x.user + 1);
    num_items = std::max(num_items, x.item + 1);
  }

  Dataset dataset;
  dataset.name = "cli";
  dataset.num_users = num_users;
  dataset.num_items = num_items;
  for (const auto& [flag, modality] :
       std::map<std::string, std::string>{{"text", "text"},
                                          {"image", "image"}}) {
    const std::string path = FlagOr(flags, flag, "");
    if (path.empty()) continue;
    auto features = LoadFeaturesTsv(path, num_items);
    if (!features.ok()) {
      std::fprintf(stderr, "%s\n", features.status().ToString().c_str());
      return 1;
    }
    dataset.modalities.push_back({modality, std::move(features.value())});
  }
  const std::string kg_path = FlagOr(flags, "kg", "");
  if (!kg_path.empty()) {
    auto kg = LoadKgTsv(kg_path, num_items);
    if (!kg.ok()) {
      std::fprintf(stderr, "%s\n", kg.status().ToString().c_str());
      return 1;
    }
    dataset.kg = std::move(kg.value());
  }

  SplitOptions split_options;
  split_options.cold_fraction =
      std::stod(FlagOr(flags, "cold-fraction", "0.2"));
  Rng rng(static_cast<uint64_t>(std::stoll(FlagOr(flags, "seed", "7"))));
  ApplyStrictColdSplit(interactions.value(), split_options, &rng, &dataset);
  dataset.CheckValid();

  const std::string model_name = FlagOr(flags, "model", "Firzen");
  auto model = CreateModel(model_name);
  if (model == nullptr) {
    std::fprintf(stderr, "unknown model '%s'; available:", model_name.c_str());
    for (const ModelInfo& info : AllModels()) {
      std::fprintf(stderr, " %s", info.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  TrainOptions train;
  train.embedding_dim =
      static_cast<Index>(std::stol(FlagOr(flags, "dim", "32")));
  train.epochs = static_cast<int>(std::stol(FlagOr(flags, "epochs", "20")));
  train.eval_every = 5;
  train.pool = ThreadPool::Global();
  train.verbose = FlagOr(flags, "verbose", "0") == "1";

  const ProtocolResult result =
      RunStrictColdProtocol(model.get(), dataset, train);
  TablePrinter table({"Setting", "R@20", "M@20", "N@20", "H@20", "P@20"});
  for (const char* setting : {"Cold", "Warm", "HM"}) {
    const MetricBundle& m = std::string(setting) == "Cold"
                                ? result.cold.metrics
                            : std::string(setting) == "Warm"
                                ? result.warm.metrics
                                : result.hm;
    table.BeginRow();
    table.AddCell(setting);
    table.AddCell(100.0 * m.recall);
    table.AddCell(100.0 * m.mrr);
    table.AddCell(100.0 * m.ndcg);
    table.AddCell(100.0 * m.hit);
    table.AddCell(100.0 * m.precision);
  }
  table.Print();

  const std::string save_path = FlagOr(flags, "save", "");
  if (!save_path.empty()) {
    // Serialize the post-cold-inference state (serves both settings).
    const Matrix user_emb = model->UserEmbeddings();
    const Matrix item_emb = model->ItemEmbeddings();
    if (user_emb.empty() || item_emb.empty()) {
      std::fprintf(stderr,
                   "model '%s' has no servable static embeddings; skip save\n",
                   model_name.c_str());
    } else {
      const Status status =
          SaveEmbeddings(*model, user_emb, item_emb, save_path);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("saved servable model to %s\n", save_path.c_str());
    }
  }
  return 0;
}

// Parses an integer flag with a lower bound into *out (left at its default
// when the flag is absent); returns false (and reports) on bad values.
bool ParseIntFlag(const std::map<std::string, std::string>& flags,
                  const std::string& name, long long min_value,
                  long long* out) {
  const auto it = flags.find(name);
  if (it == flags.end()) return true;
  try {
    size_t used = 0;
    const long long parsed = std::stoll(it->second, &used);
    if (used != it->second.size() || parsed < min_value) {
      throw std::invalid_argument(it->second);
    }
    *out = parsed;
    return true;
  } catch (const std::exception&) {
    std::fprintf(stderr, "--%s expects an integer >= %lld, got '%s'\n",
                 name.c_str(), min_value, it->second.c_str());
    return false;
  }
}

// Parses "3,17,42" into ids; returns false (and reports) on bad tokens.
bool ParseIdList(const std::string& flag_name, const std::string& value,
                 std::vector<Index>* out) {
  size_t pos = 0;
  while (pos < value.size()) {
    size_t next = value.find(',', pos);
    if (next == std::string::npos) next = value.size();
    const std::string token = value.substr(pos, next - pos);
    try {
      size_t used = 0;
      out->push_back(static_cast<Index>(std::stoll(token, &used)));
      if (used != token.size()) throw std::invalid_argument(token);
    } catch (const std::exception&) {
      std::fprintf(stderr, "%s expects comma-separated ids, got '%s'\n",
                   flag_name.c_str(), token.c_str());
      return false;
    }
    pos = next + 1;
  }
  return true;
}

// Serves `requests` on `engine` — optional admission front end, optional
// --serve-threads fan-out — and reports every response: items to stdout,
// non-OK statuses to stderr. Works for any engine with the common serving
// surface (ShardedServingEngine, DistributedServingEngine). DEGRADED
// responses were served (from the surviving shards), so they print their
// items and keep the exit code 0; every other non-OK status fails the
// invocation.
template <typename Engine>
int ServeRequests(Engine& engine, const std::map<std::string, std::string>& flags,
                  const std::vector<RecRequest>& requests,
                  long long admission_batch, long long admission_wait_us,
                  long long max_queue_depth) {
  std::unique_ptr<AdmissionController> admission;  // detached after serving
  if (admission_batch > 1) {
    AdmissionOptions admission_options;
    admission_options.max_batch = static_cast<Index>(admission_batch);
    admission_options.max_wait_us = admission_wait_us;
    admission_options.max_queue_depth = static_cast<Index>(max_queue_depth);
    admission =
        std::make_unique<AdmissionController>(&engine, admission_options);
    engine.AttachAdmission(admission.get());
  }

  // One shared engine answers every request. With --serve-threads N the
  // requests fan out over N concurrent threads — the engine's thread-safety
  // contract guarantees responses identical to the serial path (and with
  // admission attached, the concurrent singles coalesce into fused
  // batches, still bit-identically).
  std::vector<RecResponse> responses(requests.size());
  long long serve_threads = 1;
  if (!ParseIntFlag(flags, "serve-threads", 1, &serve_threads)) return 2;
  if (serve_threads > 1 && requests.size() > 1) {
    std::vector<std::thread> threads;
    const size_t n = static_cast<size_t>(serve_threads);
    for (size_t t = 0; t < n; ++t) {
      threads.emplace_back([&, t] {
        for (size_t i = t; i < requests.size(); i += n) {
          responses[i] = engine.Recommend(requests[i]);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  } else {
    responses = engine.RecommendBatch(requests);
  }
  // All requests answered: detach before the controller (destroyed first,
  // being declared later) leaves the engine with a dangling pointer.
  if (admission != nullptr) engine.AttachAdmission(nullptr);

  const bool tag_user = requests.size() > 1;
  int not_served = 0;
  for (const RecResponse& response : responses) {
    if (response.status == RecStatus::kDegraded) {
      // Served, but from a partial catalog: say which shards were missing,
      // then print what the survivors produced.
      std::string shards;
      for (Index s : response.failed_shards) {
        if (!shards.empty()) shards += ",";
        shards += std::to_string(s);
      }
      std::fprintf(stderr, "user %lld: %s (failed shards: %s)\n",
                   static_cast<long long>(response.user),
                   RecStatusName(response.status), shards.c_str());
    } else if (response.status != RecStatus::kOk) {
      // Overload rejections and backend failures are per-request outcomes,
      // not silence: report each one and fail the invocation.
      std::fprintf(stderr, "user %lld: %s\n",
                   static_cast<long long>(response.user),
                   RecStatusName(response.status));
      ++not_served;
      continue;
    }
    for (const Recommendation& rec : response.items) {
      if (tag_user) {
        std::printf("%lld\t%lld\t%.6f\n",
                    static_cast<long long>(response.user),
                    static_cast<long long>(rec.item), rec.score);
      } else {
        std::printf("%lld\t%.6f\n", static_cast<long long>(rec.item),
                    rec.score);
      }
    }
  }
  return not_served > 0 ? 1 : 0;
}

int RunRecommend(const std::map<std::string, std::string>& flags) {
  const std::string path = FlagOr(flags, "embeddings", "");
  if (path.empty()) {
    std::fprintf(stderr, "--embeddings is required\n");
    return 2;
  }
  auto loaded = LoadEmbeddings(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Dataset empty;
  empty.num_users = loaded.value()->user_embeddings().rows();
  empty.num_items = loaded.value()->ItemEmbeddings().rows();
  empty.is_cold_item.assign(static_cast<size_t>(empty.num_items), false);

  // --admission-batch N > 1 fronts the engine with an AdmissionController:
  // concurrent requests coalesce into fused user batches (one catalog
  // stream per batch). Bit-identical output with admission on or off, for
  // any batch size or wait bound — the flags are pure perf knobs.
  long long admission_batch = 0;
  long long admission_wait_us = 200;
  long long max_queue_depth = 0;
  long long deadline_us = -1;
  long long tenant = 0;
  if (!ParseIntFlag(flags, "admission-batch", 0, &admission_batch) ||
      !ParseIntFlag(flags, "admission-wait-us", 0, &admission_wait_us) ||
      !ParseIntFlag(flags, "max-queue-depth", 0, &max_queue_depth) ||
      !ParseIntFlag(flags, "deadline-us", 0, &deadline_us) ||
      !ParseIntFlag(flags, "tenant", 0, &tenant)) {
    return 2;
  }
  // Deadlines and queue bounds are enforced by the admission layer, so
  // asking for either implicitly attaches a default-sized controller.
  if ((max_queue_depth > 0 || deadline_us >= 0) && admission_batch <= 1) {
    admission_batch = AdmissionOptions{}.max_batch;
  }

  RecRequest prototype;
  long long k = 10;
  if (!ParseIntFlag(flags, "k", 1, &k)) return 2;
  prototype.k = static_cast<Index>(k);
  prototype.deadline_us = deadline_us;
  prototype.tenant = static_cast<Index>(tenant);
  // A serialized model carries no training interactions, so exclusions are
  // whatever the caller passes explicitly.
  const std::string exclude = FlagOr(flags, "exclude", "");
  if (!exclude.empty()) {
    prototype.exclusion = ExclusionPolicy::kCustom;
    if (!ParseIdList("--exclude", exclude, &prototype.exclude)) return 2;
  }

  std::vector<Index> users;
  const std::string users_flag = FlagOr(flags, "users", "");
  if (!users_flag.empty()) {
    if (!ParseIdList("--users", users_flag, &users)) return 2;
  } else {
    long long user = 0;
    if (!ParseIntFlag(flags, "user", 0, &user)) return 2;
    users.push_back(static_cast<Index>(user));
  }
  std::vector<RecRequest> requests;
  for (Index user : users) {
    RecRequest request = prototype;
    request.user = user;
    requests.push_back(std::move(request));
  }

  // Parsed up front so an invalid value errors on every path; the local
  // engines honor it below, while with --shard-servers the precision is
  // whatever each serve-shard process was started with (the coordinator
  // merge is precision-agnostic).
  ScoringPrecision precision = ScoringPrecision::kFp32;
  if (!ParsePrecisionFlag(flags, &precision)) return 2;

  // --shard-servers fans requests out to running serve-shard processes:
  // same request/response contract, byte-identical output on the healthy
  // path (the distributed determinism contract), DEGRADED-but-served when
  // a shard is down.
  const std::string shard_servers = FlagOr(flags, "shard-servers", "");
  if (!shard_servers.empty()) {
    if (flags.count("precision") != 0) {
      std::fprintf(stderr,
                   "note: --precision is ignored with --shard-servers; the "
                   "serve-shard processes' own --precision applies\n");
    }
    DistributedServingOptions dist_options;
    size_t pos = 0;
    while (pos < shard_servers.size()) {
      size_t next = shard_servers.find(',', pos);
      if (next == std::string::npos) next = shard_servers.size();
      if (next > pos) {
        dist_options.shard_addresses.push_back(
            shard_servers.substr(pos, next - pos));
      }
      pos = next + 1;
    }
    long long rpc_timeout_ms = dist_options.rpc_timeout_ms;
    if (!ParseIntFlag(flags, "rpc-timeout-ms", 1, &rpc_timeout_ms)) return 2;
    dist_options.rpc_timeout_ms = rpc_timeout_ms;
    auto engine = DistributedServingEngine::Connect(std::move(dist_options));
    if (!engine.ok()) {
      std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
      return 1;
    }
    if (engine.value()->num_items() != empty.num_items) {
      std::fprintf(stderr,
                   "shard servers cover %lld items but the model has %lld\n",
                   static_cast<long long>(engine.value()->num_items()),
                   static_cast<long long>(empty.num_items));
      return 1;
    }
    return ServeRequests(*engine.value(), flags, requests, admission_batch,
                         admission_wait_us, max_queue_depth);
  }

  // --shards N partitions the catalog across N sibling shard views; the
  // merged responses are bit-identical to the single-engine path, so the
  // flag only changes how the work is laid out, never what is served.
  long long shards = 1;
  if (!ParseIntFlag(flags, "shards", 1, &shards)) return 2;
  // One shard IS the single-engine path (bit-identical by the shard
  // invariance contract), so one engine type serves every --shards value.
  ShardedServingOptions engine_options;
  engine_options.num_shards = static_cast<Index>(shards);
  engine_options.precision = precision;
  ShardedServingEngine engine(loaded.value().get(), empty, engine_options);
  return ServeRequests(engine, flags, requests, admission_batch,
                       admission_wait_us, max_queue_depth);
}

volatile std::sig_atomic_t g_shutdown = 0;
void OnShutdownSignal(int) { g_shutdown = 1; }

int RunServeShard(const std::map<std::string, std::string>& flags) {
  const std::string path = FlagOr(flags, "embeddings", "");
  if (path.empty()) {
    std::fprintf(stderr, "--embeddings is required\n");
    return 2;
  }
  const std::string range = FlagOr(flags, "shard-range", "");
  long long begin = 0;
  long long end = -1;  // -1 = full catalog (resolved after load)
  if (!range.empty()) {
    const size_t colon = range.find(':');
    try {
      size_t used_a = 0, used_b = 0;
      if (colon == std::string::npos) throw std::invalid_argument(range);
      begin = std::stoll(range.substr(0, colon), &used_a);
      end = std::stoll(range.substr(colon + 1), &used_b);
      if (used_a != colon || colon + 1 + used_b != range.size() || begin < 0 ||
          end < begin) {
        throw std::invalid_argument(range);
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "--shard-range expects A:B with 0 <= A <= B, got '%s'\n",
                   range.c_str());
      return 2;
    }
  }

  ShardServerOptions options;
  options.listen_address = FlagOr(flags, "listen", "127.0.0.1:0");
  long long item_block = options.item_block;
  if (!ParseIntFlag(flags, "item-block", 1, &item_block)) return 2;
  options.item_block = static_cast<Index>(item_block);
  // Fault injection for tests and drills: delay every reply by this many
  // microseconds so coordinators exercise their deadline budgets.
  long long stall_us = 0;
  if (!ParseIntFlag(flags, "stall-replies-us", 0, &stall_us)) return 2;
  options.stall_replies_us = static_cast<int64_t>(stall_us);
  if (!ParsePrecisionFlag(flags, &options.precision)) return 2;

  if (end < 0) {
    auto probe = LoadEmbeddings(path);
    if (!probe.ok()) {
      std::fprintf(stderr, "%s\n", probe.status().ToString().c_str());
      return 1;
    }
    end = probe.value()->ItemEmbeddings().rows();
  }
  auto served = ServeEmbeddingsShard(path, static_cast<Index>(begin),
                                     static_cast<Index>(end), options);
  if (!served.ok()) {
    std::fprintf(stderr, "%s\n", served.status().ToString().c_str());
    return 1;
  }
  ShardServer& server = *served.value().server;
  // First line is machine-scraped (tests, orchestration): the concrete
  // bound address, kernel-assigned port resolved.
  std::printf("listening on %s (shard [%lld,%lld) of %lld items)\n",
              server.bound_address().c_str(),
              static_cast<long long>(server.shard_begin()),
              static_cast<long long>(server.shard_end()),
              static_cast<long long>(server.num_items()));
  std::fflush(stdout);

  std::signal(SIGINT, OnShutdownSignal);
  std::signal(SIGTERM, OnShutdownSignal);
  while (!g_shutdown) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  std::fprintf(stderr, "served %llu requests in %llu batches\n",
               static_cast<unsigned long long>(server.requests_served()),
               static_cast<unsigned long long>(server.batches_served()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: firzen_cli <synth|train|recommend|serve-shard> "
                 "[--flag value]...\n");
    return 2;
  }
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  if (command == "synth") return RunSynth(flags);
  if (command == "train") return RunTrain(flags);
  if (command == "recommend") return RunRecommend(flags);
  if (command == "serve-shard") return RunServeShard(flags);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 2;
}
