#!/usr/bin/env bash
# Static-analysis front end — pass 0 of tools/run_checks.sh, also runnable
# standalone. Four stages, in increasing cost order:
#
#   1. determinism linter (tools/firzen_lint.py): ALWAYS runs — stdlib
#      Python, no compiler needed. Hash-order iteration, bare float-score
#      comparators, non-seeded rng, wall-clock reads, naked tensor
#      accumulation, include-layering (see docs/static_analysis.md).
#   2. clang-tidy over compile_commands.json with the curated .clang-tidy
#      baseline. SKIPPED WITH A WARNING when clang-tidy is not installed —
#      gcc-only hosts still get stages 1 and 3.
#   3. warnings-as-errors build: -DFIRZEN_WERROR=ON (adds -Werror; under
#      Clang also -Wthread-safety, arming the lock annotations in
#      src/util/thread_annotations.h as compile errors).
#   4. wire-decoder fuzz smoke (-DFIRZEN_FUZZ=ON): with Clang, 30 seconds
#      of libFuzzer over the seed corpus with an ASan-instrumented
#      library; without Clang, the replay binary's --self-test (seed
#      corpus + truncation/bitflip sweeps) so the harness still executes.
#
# Usage:
#   tools/run_static.sh            # all stages
#   tools/run_static.sh --fast     # skip clang-tidy (stage 2) only; the
#                                  # determinism linter is never skipped
#
# Exits non-zero if any stage that RAN failed; missing optional tooling
# (clang-tidy, clang) downgrades its stage to a warning, never a failure.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
  shift
fi

BUILD_DIR=${FIRZEN_STATIC_BUILD_DIR:-build-static}

PYTHON=python3
if ! command -v "${PYTHON}" >/dev/null 2>&1; then
  PYTHON=python
fi

echo "== static 1/4: determinism linter =="
# The build tree (for compile_commands.json) may not exist yet on a fresh
# checkout; the linter falls back to walking src/ in that case.
LINT_ARGS=(--src-root .)
if [[ -f "${BUILD_DIR}/compile_commands.json" ]]; then
  LINT_ARGS+=(--compile-commands "${BUILD_DIR}/compile_commands.json")
fi
"${PYTHON}" tools/firzen_lint.py "${LINT_ARGS[@]}"
"${PYTHON}" tests/firzen_lint_test.py .

echo "== static 2/4: clang-tidy baseline =="
if [[ "${FAST}" == "1" ]]; then
  echo "   (skipped: --fast)"
elif command -v clang-tidy >/dev/null 2>&1; then
  # Configure (or refresh) the static build tree first so the compilation
  # database exists and is current.
  cmake -B "${BUILD_DIR}" -S . -DFIRZEN_WERROR=ON -DFIRZEN_FUZZ=ON >/dev/null
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "${BUILD_DIR}" -quiet "src/.*\.cc$"
  else
    # No parallel driver: invoke clang-tidy directly over the database.
    mapfile -t TIDY_FILES < <("${PYTHON}" - "${BUILD_DIR}" <<'EOF'
import json, sys
for entry in json.load(open(sys.argv[1] + "/compile_commands.json")):
    f = entry["file"]
    if "/src/" in f and f.endswith(".cc"):
        print(f)
EOF
)
    clang-tidy -p "${BUILD_DIR}" --quiet "${TIDY_FILES[@]}"
  fi
else
  echo "   WARNING: clang-tidy not installed; skipping the tidy baseline." >&2
fi

echo "== static 3/4: warnings-as-errors build (-DFIRZEN_WERROR=ON) =="
cmake -B "${BUILD_DIR}" -S . -DFIRZEN_WERROR=ON -DFIRZEN_FUZZ=ON >/dev/null
cmake --build "${BUILD_DIR}" -j

echo "== static 4/4: wire-decoder fuzz smoke =="
if [[ -x "${BUILD_DIR}/fuzz_wire" ]]; then
  # Clang + libFuzzer: 30s coverage-guided over the encoder-derived seeds.
  CORPUS_DIR="${BUILD_DIR}/fuzz_corpus"
  mkdir -p "${CORPUS_DIR}"
  "${BUILD_DIR}/fuzz_wire_replay" --emit-corpus "${CORPUS_DIR}" >/dev/null
  "${BUILD_DIR}/fuzz_wire" -max_total_time=30 -print_final_stats=1 \
    "${CORPUS_DIR}"
else
  echo "   (no Clang: running the replay self-test instead of libFuzzer)"
  "${BUILD_DIR}/fuzz_wire_replay" --self-test
fi

echo "static analysis passed"
