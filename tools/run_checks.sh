#!/usr/bin/env bash
# CI-style check runner:
#   0. static analysis (tools/run_static.sh): determinism linter, the
#      clang-tidy baseline when installed, a -DFIRZEN_WERROR=ON
#      warnings-as-errors build (Clang additionally arms -Wthread-safety),
#      and the wire-decoder fuzz smoke. --fast skips clang-tidy but NEVER
#      the determinism linter;
#   1. configure + build the default tree and run the full ctest suite;
#   2. rebuild with -DFIRZEN_SANITIZE=address and re-run ctest under ASan;
#   3. rebuild with -DFIRZEN_SANITIZE=thread and run the serving suites
#      under TSan — the concurrent-serving stress tests hammering one shared
#      ServingEngine (and one shared ShardedServingEngine, whose shards rank
#      in parallel per call) from many threads are the data-race canary for
#      the shared-scorer / per-thread-arena / per-shard-view contract, and
#      the admission stress exercises the AdmissionController ticket queue
#      and leader-follower dispatcher hand-off under contention. The
#      -R filter below matches serving_test, serving_admission_test,
#      serving_concurrency_test, sharded_serving_test,
#      distributed_serving_test (the socket fan-out coordinator, shard
#      servers, kill/stall/reconnect matrix — its server accept/handler
#      threads and per-shard exchange threads are the race canary for the
#      distributed tier), and scorer_parity_test. distributed_e2e_test
#      (real child processes, fork/exec) runs in the default pass only:
#      sanitizer runtimes and fork don't mix;
#   4. rebuild with -DFIRZEN_SANITIZE=undefined and run the same serving +
#      admission suites under UBSan — the overload-protection paths
#      (deadline arithmetic on steady_clock time points, hysteresis
#      watermark comparisons, fair-share weight indexing) are where signed
#      overflow or bad shifts would hide, and the quant suites (also in the
#      -R filter) cover the int8 kernels' conversion/clamp arithmetic;
#   5. re-run the quant suites in the pass-1 build with FIRZEN_SIMD=scalar,
#      pinning the dispatch to the scalar reference kernel — the passes
#      above ran on the host's best tier, so together the two runs assert
#      every tier produces the same bits (the in-test int32 reference is
#      tier-independent).
#
# Usage:
#   tools/run_checks.sh             # all six passes
#   tools/run_checks.sh --fast      # linter + default-build pass only
#                                   # (skips clang-tidy, the sanitizers, and
#                                   # the forced-scalar re-run)
#   tools/run_checks.sh --simd TIER # export FIRZEN_SIMD=TIER for every pass
#                                   # (scalar|avx2|avx512; caps, never
#                                   # raises, the dispatched tier)
#   FIRZEN_NUM_THREADS=4 tools/run_checks.sh
#
# Extra arguments are forwarded to ctest (e.g. -R serving_test).
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
FORCED_SIMD=""
while [[ "${1:-}" == "--fast" || "${1:-}" == "--simd" ]]; do
  if [[ "${1}" == "--fast" ]]; then
    FAST=1
    shift
  else
    FORCED_SIMD="${2:?--simd needs a tier (scalar|avx2|avx512)}"
    shift 2
  fi
done
if [[ -n "${FORCED_SIMD}" ]]; then
  # The dispatcher validates the value itself (unknown tiers abort with the
  # valid choices), so just export and let pass 1 fail fast on a typo.
  export FIRZEN_SIMD="${FORCED_SIMD}"
fi

run_pass() {
  local build_dir=$1
  shift
  local cmake_args=()
  local ctest_extra=()
  local in_ctest=0
  for arg in "$@"; do
    if [[ "${arg}" == "--" ]]; then
      in_ctest=1
    elif [[ "${in_ctest}" == "1" ]]; then
      ctest_extra+=("${arg}")
    else
      cmake_args+=("${arg}")
    fi
  done
  cmake -B "${build_dir}" -S . ${cmake_args[@]+"${cmake_args[@]}"} >/dev/null
  cmake --build "${build_dir}" -j
  # -j needs an explicit value: a valueless ctest -j greedily consumes the
  # next argument on this toolchain (so `-j -R filter` silently dropped the
  # filter and the TSan pass ran the full suite), and trailing valueless -j
  # only means "default parallelism" on ctest >= 3.29.
  (cd "${build_dir}" && ctest --output-on-failure -j "$(nproc)" \
    ${ctest_extra[@]+"${ctest_extra[@]}"} \
    ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"})
}

CTEST_ARGS=("$@")

echo "== pass 0: static analysis =="
if [[ "${FAST}" == "1" ]]; then
  tools/run_static.sh --fast
else
  tools/run_static.sh
fi

echo "== pass 1: default build + ctest =="
run_pass build

if [[ "${FAST}" == "0" ]]; then
  echo "== pass 2: AddressSanitizer build + ctest =="
  # halt_on_error is the default; detect_leaks stays on to catch engine /
  # scorer ownership mistakes.
  ASAN_OPTIONS=${ASAN_OPTIONS:-abort_on_error=1} \
    run_pass build-asan -DFIRZEN_SANITIZE=address

  echo "== pass 3: ThreadSanitizer build + serving suites =="
  # Full-suite TSan is prohibitively slow (model training is single-origin
  # anyway); the serving + scorer-parity binaries are where threads share
  # one engine/scorer, so they carry the race coverage.
  TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1} \
    run_pass build-tsan -DFIRZEN_SANITIZE=thread -- -R "serving|scorer"

  echo "== pass 4: UndefinedBehaviorSanitizer build + serving suites =="
  # TSan's filter plus the quant suites: the serving/admission binaries
  # exercise the deadline/shedding/fair-share arithmetic added by the
  # overload-protection work, and the quantization binaries exercise the
  # int8 conversion/clamp/saturation arithmetic — exactly where UB (bad
  # float-to-int casts, shifts, misaligned SIMD loads) would hide;
  # halt_on_error turns any UB report into a failing exit code (UBSan's
  # default is report-and-continue).
  UBSAN_OPTIONS=${UBSAN_OPTIONS:-halt_on_error=1} \
    run_pass build-ubsan -DFIRZEN_SANITIZE=undefined -- \
    -R "serving|scorer|quant"

  echo "== pass 5: forced-scalar quant suites (FIRZEN_SIMD=scalar) =="
  # The quant tests compare against a tier-independent int32 reference, so
  # re-running them with the dispatch pinned to scalar (the passes above
  # used the host's best tier, unless --simd already forced one) proves
  # scalar and vector tiers produce identical bits.
  (cd build && FIRZEN_SIMD=scalar ctest --output-on-failure -j "$(nproc)" \
    -L quant ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"})
fi

echo "all checks passed"
