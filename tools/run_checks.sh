#!/usr/bin/env bash
# CI-style check runner:
#   1. configure + build the default tree and run the full ctest suite;
#   2. rebuild with -DFIRZEN_SANITIZE=address and re-run ctest under ASan.
#
# Usage:
#   tools/run_checks.sh             # both passes
#   tools/run_checks.sh --fast      # default-build pass only (skip ASan)
#   FIRZEN_NUM_THREADS=4 tools/run_checks.sh
#
# Extra arguments are forwarded to ctest (e.g. -R serving_test).
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
  shift
fi

run_pass() {
  local build_dir=$1
  shift
  cmake -B "${build_dir}" -S . ${1+"$@"} >/dev/null
  cmake --build "${build_dir}" -j
  (cd "${build_dir}" && ctest --output-on-failure -j \
    ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"})
}

CTEST_ARGS=("$@")

echo "== pass 1: default build + ctest =="
run_pass build

if [[ "${FAST}" == "0" ]]; then
  echo "== pass 2: AddressSanitizer build + ctest =="
  # halt_on_error is the default; detect_leaks stays on to catch engine /
  # scorer ownership mistakes.
  ASAN_OPTIONS=${ASAN_OPTIONS:-abort_on_error=1} \
    run_pass build-asan -DFIRZEN_SANITIZE=address
fi

echo "all checks passed"
