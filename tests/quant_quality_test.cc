// Quantization quality gate (ctest label `quant`): for EVERY registered
// model, the int8 scorer minted by MakeScorer(ScoringPrecision::kInt8) must
// agree with the fp32 scorer on what matters for serving — the top-K lists
// overlap by at least 95% on average, and offline NDCG@20 moves by at most
// a small bound. Per-row symmetric int8 keeps ~0.4% relative quantization
// error on each embedding coordinate, which dot products average down
// further, so ranking agreement this tight is the EXPECTED behavior; a
// model that fails here has a genuinely broken quantized path, not a noisy
// test. Models without a factorized embedding head fall back to fp32 in
// MakeScorer(precision) and pass trivially by construction — keeping them
// in the sweep pins that the fallback stays wired.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/data/synthetic.h"
#include "src/eval/evaluator.h"
#include "src/models/registry.h"
#include "src/tensor/matrix.h"
#include "src/util/logging.h"
#include "src/util/ranking.h"

namespace firzen {
namespace {

constexpr Index kTopK = 20;
constexpr double kMinOverlap = 0.95;
constexpr double kMaxNdcgDelta = 0.02;

const Dataset& QualityDataset() {
  static const Dataset* dataset = [] {
    return new Dataset(GenerateSyntheticDataset(BeautySConfig(0.12)));
  }();
  return *dataset;
}

TrainOptions QualityTrainOptions() {
  TrainOptions options;
  options.embedding_dim = 8;
  options.epochs = 2;
  options.eval_every = 8;  // skip mid-training validation
  options.batch_size = 256;
  options.seed = 321;
  return options;
}

// Top-k item set of one score row under the serving total order
// (RanksBefore: score desc, ties by ascending item id).
std::vector<Index> TopKItems(const Real* scores, Index num_items, Index k) {
  std::vector<ScoredItem> entries;
  entries.reserve(static_cast<size_t>(num_items));
  for (Index i = 0; i < num_items; ++i) entries.push_back({i, scores[i]});
  const Index keep = std::min(k, num_items);
  std::partial_sort(entries.begin(), entries.begin() + keep, entries.end(),
                    RanksBefore);
  std::vector<Index> items;
  items.reserve(static_cast<size_t>(keep));
  for (Index j = 0; j < keep; ++j) items.push_back(entries[j].item);
  return items;
}

class QuantQualityTest : public ::testing::TestWithParam<ModelInfo> {};

TEST_P(QuantQualityTest, Int8TopKOverlapsFp32AndNdcgHolds) {
  SetLogLevel(LogLevel::kError);
  const Dataset& dataset = QualityDataset();
  auto model = CreateModel(GetParam().name);
  ASSERT_NE(model, nullptr) << GetParam().name;
  model->Fit(dataset, QualityTrainOptions());

  const auto fp32 = model->MakeScorer(ScoringPrecision::kFp32);
  const auto int8 = model->MakeScorer(ScoringPrecision::kInt8);
  ASSERT_NE(fp32, nullptr);
  ASSERT_NE(int8, nullptr);
  ASSERT_EQ(fp32->num_items(), dataset.num_items);
  ASSERT_EQ(int8->num_items(), dataset.num_items);

  // Average per-user |top-20(fp32) ∩ top-20(int8)| / 20 over every user.
  const ItemBlock catalog{0, dataset.num_items};
  ScoringArena fp32_arena;
  ScoringArena int8_arena;
  double overlap_sum = 0.0;
  Index scored_users = 0;
  const Index user_batch = 64;
  for (Index begin = 0; begin < dataset.num_users; begin += user_batch) {
    const Index end = std::min(begin + user_batch, dataset.num_users);
    std::vector<Index> users;
    for (Index u = begin; u < end; ++u) users.push_back(u);
    Matrix fp32_scores(end - begin, dataset.num_items);
    Matrix int8_scores(end - begin, dataset.num_items);
    fp32->ScoreBlock(users, catalog, MatrixView(&fp32_scores), &fp32_arena);
    int8->ScoreBlock(users, catalog, MatrixView(&int8_scores), &int8_arena);
    for (Index r = 0; r < end - begin; ++r) {
      const std::vector<Index> want =
          TopKItems(fp32_scores.row(r), dataset.num_items, kTopK);
      std::vector<Index> got =
          TopKItems(int8_scores.row(r), dataset.num_items, kTopK);
      std::sort(got.begin(), got.end());
      Index hits = 0;
      for (Index item : want) {
        if (std::binary_search(got.begin(), got.end(), item)) ++hits;
      }
      overlap_sum +=
          static_cast<double>(hits) / static_cast<double>(want.size());
      ++scored_users;
    }
  }
  ASSERT_GT(scored_users, 0);
  const double mean_overlap = overlap_sum / static_cast<double>(scored_users);
  EXPECT_GE(mean_overlap, kMinOverlap)
      << GetParam().name << ": int8 top-" << kTopK
      << " diverged from fp32 beyond the quality gate";

  // Offline metric drift: the all-ranking NDCG@20 on the warm test split
  // must not move materially under quantization.
  EvalOptions eval_options;
  eval_options.k = kTopK;
  const EvalResult fp32_eval = EvaluateRanking(
      dataset, dataset.warm_test, EvalSetting::kWarm, *fp32, eval_options);
  const EvalResult int8_eval = EvaluateRanking(
      dataset, dataset.warm_test, EvalSetting::kWarm, *int8, eval_options);
  EXPECT_EQ(fp32_eval.num_users, int8_eval.num_users);
  const double delta =
      std::abs(fp32_eval.metrics.ndcg - int8_eval.metrics.ndcg);
  EXPECT_LE(delta, kMaxNdcgDelta)
      << GetParam().name << ": NDCG@20 fp32=" << fp32_eval.metrics.ndcg
      << " int8=" << int8_eval.metrics.ndcg;
}

INSTANTIATE_TEST_SUITE_P(AllModels, QuantQualityTest,
                         ::testing::ValuesIn(AllModels()),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace firzen
