// Fuzz harness for the wire-protocol decoders (src/serve/wire.h) — the
// only code in the stack that parses REMOTE bytes. Every decoder must be
// total: any byte string either decodes or returns false, never reads out
// of bounds, never aborts, and never allocates absurdly (length fields are
// attacker-controlled). On top of memory safety the harness checks the
// bit-exactness contract: anything that decodes must re-encode to a
// payload that decodes to the identical value (scores compared as raw
// IEEE-754 bits, so NaN payloads round-trip too).
//
// Input format: byte 0 selects the decoder (mod 5), the rest is the
// payload. Build modes:
//   * -DFIRZEN_FUZZ=ON + Clang: libFuzzer binary `fuzz_wire`
//     (-fsanitize=fuzzer,address). run_static.sh smokes it for 30s, seeded
//     from `fuzz_wire_replay --emit-corpus`.
//   * -DFIRZEN_FUZZ=ON, any compiler: replay binary `fuzz_wire_replay`
//     (FIRZEN_FUZZ_REPLAY_MAIN) — `--emit-corpus DIR` writes the seed
//     corpus using the real encoders; `--self-test` emits to a temp dir
//     and replays every seed; file arguments replay crash artifacts. The
//     self-test runs under ctest, so the harness itself is exercised even
//     on gcc-only hosts.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/serve/wire.h"

// assert() compiles out under NDEBUG; the round-trip invariants must hold
// in every build the fuzzer runs in.
#define FUZZ_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "FUZZ_CHECK failed: %s at %s:%d\n", #cond, \
                   __FILE__, __LINE__);                               \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

namespace {

using firzen::Index;
using firzen::RecRequest;
using firzen::ScoredItem;

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void CheckRequestsEqual(const std::vector<RecRequest>& a,
                        const std::vector<RecRequest>& b) {
  FUZZ_CHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    FUZZ_CHECK(a[i].user == b[i].user);
    FUZZ_CHECK(a[i].k == b[i].k);
    FUZZ_CHECK(a[i].candidates == b[i].candidates);
    FUZZ_CHECK(a[i].exclusion == b[i].exclusion);
    FUZZ_CHECK(a[i].exclude == b[i].exclude);
    FUZZ_CHECK(a[i].cold_only == b[i].cold_only);
    FUZZ_CHECK(a[i].deadline_us == b[i].deadline_us);
    FUZZ_CHECK(a[i].tenant == b[i].tenant);
  }
}

void CheckRepliesEqual(const std::vector<firzen::wire::ShardReply>& a,
                       const std::vector<firzen::wire::ShardReply>& b) {
  FUZZ_CHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    FUZZ_CHECK(a[i].user == b[i].user);
    FUZZ_CHECK(a[i].items.size() == b[i].items.size());
    for (size_t j = 0; j < a[i].items.size(); ++j) {
      FUZZ_CHECK(a[i].items[j].item == b[i].items[j].item);
      FUZZ_CHECK(Bits(a[i].items[j].score) == Bits(b[i].items[j].score));
    }
  }
}

void FuzzOne(const uint8_t* data, size_t size) {
  if (size == 0) return;
  const uint8_t selector = data[0] % 5;
  const uint8_t* payload = data + 1;
  const size_t payload_size = size - 1;

  switch (selector) {
    case 0: {
      uint32_t version = 0;
      (void)firzen::wire::DecodeHello(payload, payload_size, &version);
      break;
    }
    case 1: {
      firzen::wire::ShardInfo info;
      if (firzen::wire::DecodeShardInfo(payload, payload_size, &info)) {
        firzen::wire::ShardInfo again;
        const std::vector<uint8_t> re = firzen::wire::EncodeShardInfo(info);
        FUZZ_CHECK(firzen::wire::DecodeShardInfo(re.data(), re.size(), &again));
        FUZZ_CHECK(again.shard_begin == info.shard_begin);
        FUZZ_CHECK(again.shard_end == info.shard_end);
        FUZZ_CHECK(again.num_items == info.num_items);
      }
      break;
    }
    case 2: {
      std::vector<RecRequest> requests;
      if (firzen::wire::DecodeRequestBatch(payload, payload_size,
                                           &requests)) {
        const std::vector<uint8_t> re =
            firzen::wire::EncodeRequestBatch(requests);
        std::vector<RecRequest> again;
        FUZZ_CHECK(firzen::wire::DecodeRequestBatch(re.data(), re.size(),
                                                &again));
        CheckRequestsEqual(requests, again);
      }
      break;
    }
    case 3: {
      std::vector<firzen::wire::ShardReply> replies;
      if (firzen::wire::DecodeReplyBatch(payload, payload_size, &replies)) {
        const std::vector<uint8_t> re =
            firzen::wire::EncodeReplyBatch(replies);
        std::vector<firzen::wire::ShardReply> again;
        FUZZ_CHECK(firzen::wire::DecodeReplyBatch(re.data(), re.size(), &again));
        CheckRepliesEqual(replies, again);
      }
      break;
    }
    default: {
      std::string message;
      if (firzen::wire::DecodeError(payload, payload_size, &message)) {
        const std::vector<uint8_t> re = firzen::wire::EncodeError(message);
        std::string again;
        FUZZ_CHECK(firzen::wire::DecodeError(re.data(), re.size(), &again));
        FUZZ_CHECK(again == message);
      }
      break;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  FuzzOne(data, size);
  return 0;
}

#if defined(FIRZEN_FUZZ_REPLAY_MAIN)

namespace {

// The seed corpus: representative frames from the real encoders (the same
// shapes wire_test pins), each prefixed with its selector byte, plus a few
// deliberately hostile payloads (truncation, huge length fields).
std::vector<std::vector<uint8_t>> SeedCorpus() {
  std::vector<std::vector<uint8_t>> seeds;
  auto add = [&seeds](uint8_t selector, std::vector<uint8_t> payload) {
    std::vector<uint8_t> seed;
    seed.push_back(selector);
    seed.insert(seed.end(), payload.begin(), payload.end());
    seeds.push_back(std::move(seed));
  };

  add(0, firzen::wire::EncodeHello());

  firzen::wire::ShardInfo info;
  info.shard_begin = 128;
  info.shard_end = 4096;
  info.num_items = 16384;
  add(1, firzen::wire::EncodeShardInfo(info));

  std::vector<RecRequest> requests(2);
  requests[0].user = 7;
  requests[0].k = 20;
  requests[0].candidates = {3, 1, 4, 1, 5};
  requests[0].exclusion = firzen::ExclusionPolicy::kCustom;
  requests[0].exclude = {9, 2, 6};
  requests[0].cold_only = true;
  requests[0].deadline_us = 250000;
  requests[0].tenant = 3;
  requests[1].user = 11;
  requests[1].k = 1;
  add(2, firzen::wire::EncodeRequestBatch(requests));

  std::vector<firzen::wire::ShardReply> replies(2);
  replies[0].user = 7;
  replies[0].items = {{12, 3.5}, {44, 3.5}, {2, -0.25}};
  replies[1].user = 11;
  replies[1].items = {{0, 1e300}};
  add(3, firzen::wire::EncodeReplyBatch(replies));

  add(4, firzen::wire::EncodeError("shard on fire"));

  // Hostile shapes: empty, truncated handshake, a length field claiming
  // ~2^64 entries.
  seeds.push_back({});
  add(1, {0x01, 0x02});
  add(2, {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
  return seeds;
}

int Replay(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "fuzz_wire_replay: cannot open %s\n", path);
    return 1;
  }
  std::vector<uint8_t> data;
  uint8_t buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  std::fclose(f);
  LLVMFuzzerTestOneInput(data.data(), data.size());
  return 0;
}

int EmitCorpus(const std::string& dir) {
  const std::vector<std::vector<uint8_t>> seeds = SeedCorpus();
  for (size_t i = 0; i < seeds.size(); ++i) {
    const std::string path = dir + "/seed_" + std::to_string(i) + ".bin";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "fuzz_wire_replay: cannot write %s\n",
                   path.c_str());
      return 1;
    }
    if (!seeds[i].empty()) {
      std::fwrite(seeds[i].data(), 1, seeds[i].size(), f);
    }
    std::fclose(f);
  }
  std::printf("fuzz_wire_replay: wrote %zu seeds to %s\n", seeds.size(),
              dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "--emit-corpus") {
    return EmitCorpus(argv[2]);
  }
  if (argc >= 2 && std::string(argv[1]) == "--self-test") {
    // Feed every seed (and a few mutations of each) straight through the
    // harness in-process: the gcc-reachable smoke of the fuzz target.
    size_t executed = 0;
    for (const std::vector<uint8_t>& seed : SeedCorpus()) {
      LLVMFuzzerTestOneInput(seed.data(), seed.size());
      ++executed;
      std::vector<uint8_t> mutated = seed;
      for (size_t cut = 0; cut < mutated.size();
           cut += 1 + mutated.size() / 8) {
        // Truncations exercise every length-check branch.
        LLVMFuzzerTestOneInput(mutated.data(), cut);
        ++executed;
      }
      if (!mutated.empty()) {
        for (size_t flip = 0; flip < mutated.size();
             flip += 1 + mutated.size() / 16) {
          mutated[flip] ^= 0xff;
          LLVMFuzzerTestOneInput(mutated.data(), mutated.size());
          mutated[flip] ^= 0xff;
          ++executed;
        }
      }
    }
    std::printf("fuzz_wire_replay: self-test OK (%zu inputs)\n", executed);
    return 0;
  }
  if (argc >= 2) {
    for (int i = 1; i < argc; ++i) {
      const int rc = Replay(argv[i]);
      if (rc != 0) return rc;
    }
    std::printf("fuzz_wire_replay: replayed %d file(s)\n", argc - 1);
    return 0;
  }
  std::fprintf(stderr,
               "usage: fuzz_wire_replay --emit-corpus DIR | --self-test | "
               "FILE...\n");
  return 2;
}

#endif  // FIRZEN_FUZZ_REPLAY_MAIN
