// Unit tests for the utility layer: RNG, Status/Result, thread pool, env,
// table printer, logging.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "src/util/env.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/stopwatch.h"
#include "src/util/table_printer.h"
#include "src/util/thread_pool.h"

namespace firzen {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const Real u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(9);
  std::set<Index> seen;
  for (int i = 0; i < 2000; ++i) {
    const Index v = rng.UniformInt(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values reachable
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  const int n = 20000;
  Real sum = 0.0;
  Real sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const Real x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(13);
  for (Index k : {1, 5, 50, 100}) {
    const auto sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(static_cast<Index>(sample.size()), k);
    std::set<Index> unique(sample.begin(), sample.end());
    EXPECT_EQ(static_cast<Index>(unique.size()), k);
    for (Index v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 100);
    }
  }
}

TEST(RngTest, SampleDiscreteRespectsZeroWeights) {
  Rng rng(17);
  std::vector<Real> weights{0.0, 1.0, 0.0, 3.0};
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4000; ++i) {
    ++counts[rng.SampleDiscrete(weights)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_GT(counts[3], counts[1]);  // 3x the weight
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng b = a.Fork();
  // The fork should not replay the parent's stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(StatusTest, OkAndErrorStates) {
  EXPECT_TRUE(Status::OK().ok());
  const Status err = Status::InvalidArgument("bad k");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(err.ToString().find("bad k"), std::string::npos);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  Result<int> bad(Status::NotFound("missing"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, 1000, [&](Index begin, Index end) {
    for (Index i = begin; i < end; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
  }, /*min_shard_size=*/10);
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, InlineWhenPoolNull) {
  int count = 0;
  ParallelFor(nullptr, 50, [&](Index begin, Index end) {
    count += static_cast<int>(end - begin);
  });
  EXPECT_EQ(count, 50);
}

TEST(ThreadPoolTest, SubmitAndWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 32);
}

TEST(EnvTest, DefaultsWhenUnset) {
  EXPECT_EQ(GetEnvString("FIRZEN_NO_SUCH_VAR_XYZ", "fallback"), "fallback");
  EXPECT_EQ(GetEnvInt("FIRZEN_NO_SUCH_VAR_XYZ", 5), 5);
  EXPECT_FALSE(GetEnvBool("FIRZEN_NO_SUCH_VAR_XYZ", false));
}

TEST(EnvTest, ParsesSetValues) {
  setenv("FIRZEN_TEST_VAR", "12", 1);
  EXPECT_EQ(GetEnvInt("FIRZEN_TEST_VAR", 0), 12);
  setenv("FIRZEN_TEST_VAR", "true", 1);
  EXPECT_TRUE(GetEnvBool("FIRZEN_TEST_VAR", false));
  unsetenv("FIRZEN_TEST_VAR");
}

TEST(TablePrinterTest, AlignsAndRendersAllCells) {
  TablePrinter table({"name", "value"});
  table.BeginRow();
  table.AddCell("alpha");
  table.AddCell(3.14159, 2);
  table.AddRow({"b", "1"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("| b"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch watch;
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
  watch.Restart();
  EXPECT_GE(watch.ElapsedMillis(), 0.0);
}

TEST(FormatRealTest, RespectsPrecision) {
  EXPECT_EQ(FormatReal(1.23456, 2), "1.23");
  EXPECT_EQ(FormatReal(1.0, 0), "1");
}

}  // namespace
}  // namespace firzen
