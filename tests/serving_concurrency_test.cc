// Concurrent-serving stress suite: one shared ServingEngine (or
// ShardedServingEngine — same contract) hammered by N request threads with
// mixed full-catalog / candidate-pool / cold-only / custom-exclusion
// traffic must answer every request bit-identically to a single-threaded
// run — the contract that makes shared-scorer serving (and the TSan pass
// wired into tools/run_checks.sh) meaningful. Also covers the scorer-level
// contract directly: one Scorer, many threads, one ScoringArena per
// thread.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/eval/serving.h"
#include "src/eval/sharded_serving.h"
#include "src/models/scorer.h"
#include "src/models/serialize.h"
#include "src/util/rng.h"

namespace firzen {
namespace {

constexpr Index kUsers = 48;
constexpr Index kItems = 400;
constexpr Index kDim = 12;

Matrix RandomEmb(Index rows, Index cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  m.FillNormal(&rng, 1.0);
  return m;
}

Dataset StressDataset() {
  Dataset dataset;
  dataset.num_users = kUsers;
  dataset.num_items = kItems;
  dataset.is_cold_item.assign(static_cast<size_t>(kItems), false);
  // Last quarter of the catalog is the strict cold shelf.
  for (Index i = 3 * kItems / 4; i < kItems; ++i) {
    dataset.is_cold_item[static_cast<size_t>(i)] = true;
  }
  Rng rng(7);
  for (Index u = 0; u < kUsers; ++u) {
    for (int t = 0; t < 6; ++t) {
      dataset.train.push_back({u, rng.UniformInt(3 * kItems / 4)});
    }
  }
  return dataset;
}

// Mixed request traffic: full catalog, explicit pools (duplicates included),
// cold-only shelves, and every exclusion policy.
std::vector<RecRequest> MixedRequests() {
  std::vector<RecRequest> requests;
  Rng rng(29);
  for (Index u = 0; u < kUsers; ++u) {
    RecRequest full;
    full.user = u;
    full.k = 10;
    requests.push_back(full);

    RecRequest pool;
    pool.user = u;
    pool.k = 5;
    pool.exclusion = ExclusionPolicy::kNone;
    for (int j = 0; j < 24; ++j) {
      pool.candidates.push_back(rng.UniformInt(kItems));
    }
    pool.candidates.push_back(pool.candidates.front());  // guaranteed dup
    requests.push_back(pool);

    RecRequest cold;
    cold.user = u;
    cold.k = 8;
    cold.cold_only = true;
    cold.exclusion = ExclusionPolicy::kNone;
    requests.push_back(cold);

    RecRequest custom;
    custom.user = u;
    custom.k = 7;
    custom.exclusion = ExclusionPolicy::kCustom;
    for (int j = 0; j < 10; ++j) {
      custom.exclude.push_back(rng.UniformInt(kItems));
    }
    requests.push_back(custom);
  }
  return requests;
}

void ExpectSameResponse(const RecResponse& got, const RecResponse& want,
                        size_t request_idx) {
  ASSERT_EQ(got.user, want.user) << "request " << request_idx;
  ASSERT_EQ(got.items.size(), want.items.size()) << "request " << request_idx;
  for (size_t j = 0; j < want.items.size(); ++j) {
    ASSERT_EQ(got.items[j].item, want.items[j].item)
        << "request " << request_idx << " rank " << j;
    ASSERT_EQ(got.items[j].score, want.items[j].score)
        << "request " << request_idx << " rank " << j;
  }
}

// Hammers `engine` from `num_threads` threads (single Recommend calls plus
// whole-batch RecommendBatch calls, each thread walking the request list
// from a different offset) and checks every answer bit-exactly against the
// single-threaded reference: serving is bit-deterministic for any thread
// interleaving, pool size, item_block — and, since the Gemm kernel became
// batch-size-invariant (scorer_parity_test pins it per model), for any
// request-batch shape, so the single-request and whole-batch references
// must themselves agree bit-for-bit (asserted below before the stress).
template <typename Engine>
void StressEngine(const Engine& engine, int num_threads, int rounds) {
  const std::vector<RecRequest> requests = MixedRequests();
  std::vector<RecResponse> reference;
  reference.reserve(requests.size());
  for (const RecRequest& request : requests) {
    reference.push_back(engine.Recommend(request));
  }
  const std::vector<RecResponse> batch_reference =
      engine.RecommendBatch(requests);
  // Cross-shape determinism: a request answers identically alone or fused
  // into the whole batch (the admission front end's coalescing contract).
  ASSERT_EQ(batch_reference.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    ExpectSameResponse(batch_reference[i], reference[i], i);
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < rounds; ++round) {
        // Interleaved singles, offset per thread so concurrent calls hit
        // different request shapes at the same time.
        for (size_t i = 0; i < requests.size(); ++i) {
          const size_t idx =
              (i * 13 + static_cast<size_t>(t) * 5 +
               static_cast<size_t>(round)) % requests.size();
          const RecResponse got = engine.Recommend(requests[idx]);
          const RecResponse& want = reference[idx];
          if (got.user != want.user || got.items.size() != want.items.size()) {
            ++mismatches;
            continue;
          }
          for (size_t j = 0; j < want.items.size(); ++j) {
            if (got.items[j].item != want.items[j].item ||
                got.items[j].score != want.items[j].score) {
              ++mismatches;
              break;
            }
          }
        }
        // One full mixed batch through the union/fused streams.
        const auto batch = engine.RecommendBatch(requests);
        for (size_t i = 0; i < requests.size(); ++i) {
          if (batch[i].items.size() != batch_reference[i].items.size()) {
            ++mismatches;
            continue;
          }
          for (size_t j = 0; j < batch_reference[i].items.size(); ++j) {
            if (batch[i].items[j].item != batch_reference[i].items[j].item ||
                batch[i].items[j].score != batch_reference[i].items[j].score) {
              ++mismatches;
              break;
            }
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);

  // And once more on the main thread: concurrent traffic must not have
  // perturbed the engine.
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectSameResponse(engine.Recommend(requests[i]), reference[i], i);
  }
}

TEST(ServingConcurrencyTest, SharedEngineDotProductBitExact) {
  const Dataset dataset = StressDataset();
  StaticRecommender model("stress", RandomEmb(kUsers, kDim, 1),
                          RandomEmb(kItems, kDim, 2));
  const ServingEngine engine(&model, dataset);
  StressEngine(engine, /*num_threads=*/6, /*rounds=*/2);
}

TEST(ServingConcurrencyTest, SharedEngineFullScoreAdapterBitExact) {
  const Dataset dataset = StressDataset();
  // Deterministic non-factorized scorer: exercises the cached-full-rows
  // arena path under concurrency.
  auto scorer = std::make_unique<FullScoreAdapter>(
      [](const std::vector<Index>& users, Matrix* scores) {
        scores->Resize(static_cast<Index>(users.size()), kItems);
        for (size_t r = 0; r < users.size(); ++r) {
          for (Index i = 0; i < kItems; ++i) {
            (*scores)(static_cast<Index>(r), i) =
                static_cast<Real>((users[r] * 31 + i * 17) % 101) -
                static_cast<Real>(i % 7);
          }
        }
      },
      kItems);
  const ServingEngine engine(std::move(scorer), dataset);
  StressEngine(engine, /*num_threads=*/4, /*rounds=*/1);
}

// Sharded engine under concurrent traffic: N request threads hammer ONE
// shared ShardedServingEngine; every answer must be bit-identical to the
// single-thread single-shard reference. The sharded engine leases one
// arena per shard per call and ranks shards in parallel on the global
// pool, so this is the data-race canary for the per-shard-view /
// shared-base-scorer contract (run under TSan by tools/run_checks.sh).
TEST(ServingConcurrencyTest, SharedShardedEngineBitExactVsSingleShardRef) {
  const Dataset dataset = StressDataset();
  StaticRecommender model("stress", RandomEmb(kUsers, kDim, 21),
                          RandomEmb(kItems, kDim, 22));
  // Single-shard single-thread reference: the plain engine.
  const ServingEngine reference(&model, dataset);
  ShardedServingOptions options;
  options.num_shards = 3;
  const ShardedServingEngine engine(&model, dataset, options);

  // Shard invariance first (single thread): sharded == single-shard.
  const std::vector<RecRequest> requests = MixedRequests();
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectSameResponse(engine.Recommend(requests[i]),
                       reference.Recommend(requests[i]), i);
  }
  const auto sharded_batch = engine.RecommendBatch(requests);
  const auto reference_batch = reference.RecommendBatch(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectSameResponse(sharded_batch[i], reference_batch[i], i);
  }

  // Then concurrency: StressEngine checks every threaded answer against
  // the engine's own single-threaded responses, which the block above just
  // proved equal to the single-shard reference.
  StressEngine(engine, /*num_threads=*/6, /*rounds=*/2);
}

// The sharded engine places its parallelism adaptively: shards rank
// concurrently (one private arena each) when there is at least one shard
// per pool worker, else sequentially sharing one arena. Which branch the
// previous test exercises depends on the host's core count — force BOTH
// placements with explicit pools so each arena-leasing scheme gets its own
// TSan stress regardless of where the suite runs.
TEST(ServingConcurrencyTest, ShardedEngineBothParallelismPlacementsBitExact) {
  const Dataset dataset = StressDataset();
  StaticRecommender model("stress", RandomEmb(kUsers, kDim, 23),
                          RandomEmb(kItems, kDim, 24));
  const ServingEngine reference(&model, dataset);
  const std::vector<RecRequest> requests = MixedRequests();
  const std::vector<RecResponse> want = reference.RecommendBatch(requests);

  ThreadPool wide_pool(8);   // 3 shards < 8 workers -> sequential placement
  ThreadPool narrow_pool(1);  // 3 shards >= 1 worker -> parallel placement
  for (ThreadPool* pool : {&wide_pool, &narrow_pool}) {
    ShardedServingOptions options;
    options.num_shards = 3;
    options.pool = pool;
    const ShardedServingEngine engine(&model, dataset, options);
    const auto got = engine.RecommendBatch(requests);
    for (size_t i = 0; i < requests.size(); ++i) {
      ExpectSameResponse(got[i], want[i], i);
    }
    StressEngine(engine, /*num_threads=*/4, /*rounds=*/1);
  }
}

// Scorer-level contract: one shared scorer, one arena per thread, streamed
// blocks must match ScoreAll exactly.
TEST(ServingConcurrencyTest, SharedScorerPerThreadArenasBitExact) {
  const Matrix user_emb = RandomEmb(kUsers, kDim, 3);
  const Matrix item_emb = RandomEmb(kItems, kDim, 4);
  const DotProductScorer scorer(user_emb, item_emb);

  std::vector<std::vector<Index>> batches;
  for (Index t = 0; t < 8; ++t) {
    std::vector<Index> users;
    for (Index u = 0; u < 9; ++u) users.push_back((u * 5 + t) % kUsers);
    batches.push_back(users);
  }
  std::vector<Matrix> expected(batches.size());
  for (size_t b = 0; b < batches.size(); ++b) {
    scorer.ScoreAll(batches[b], &expected[b]);
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t b = 0; b < batches.size(); ++b) {
    threads.emplace_back([&, b] {
      ScoringArena arena;  // per-thread scratch; the scorer is shared
      Matrix streamed(static_cast<Index>(batches[b].size()), kItems);
      for (int repeat = 0; repeat < 3; ++repeat) {
        for (Index begin = 0; begin < kItems; begin += 37) {
          const ItemBlock block{begin, std::min<Index>(begin + 37, kItems)};
          scorer.ScoreBlock(batches[b], block,
                            MatrixView::Columns(&streamed, block.begin,
                                                block.size()),
                            &arena);
        }
        for (Index i = 0; i < expected[b].size(); ++i) {
          if (streamed.data()[i] != expected[b].data()[i]) {
            ++mismatches;
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Regression: arenas key their cache by a never-reused scorer id, not the
// scorer's address. A scorer minted at a destroyed scorer's address (the
// allocator reuses same-size blocks eagerly) must not inherit the stale
// cached scratch — the "re-mint after PrepareColdInference" workflow would
// otherwise silently serve pre-update scores.
TEST(ServingConcurrencyTest, RemintedScorerNeverInheritsStaleArenaCache) {
  const Matrix item_emb = RandomEmb(kItems, kDim, 11);
  const Matrix emb_a = RandomEmb(kUsers, kDim, 12);
  const Matrix emb_b = RandomEmb(kUsers, kDim, 13);
  const std::vector<Index> users{0, 1, 2};

  Matrix want_b(static_cast<Index>(users.size()), kItems);
  {
    const DotProductScorer fresh(emb_b, item_emb);
    ScoringArena arena;
    fresh.ScoreBlock(users, {0, kItems}, MatrixView(&want_b), &arena);
  }

  // Same arena across a destroy/re-mint cycle; same-size scorer allocations
  // make address reuse overwhelmingly likely.
  ScoringArena arena;
  Matrix got(static_cast<Index>(users.size()), kItems);
  auto first = std::make_unique<DotProductScorer>(emb_a, item_emb);
  first->ScoreBlock(users, {0, kItems}, MatrixView(&got), &arena);
  first.reset();
  auto second = std::make_unique<DotProductScorer>(emb_b, item_emb);
  second->ScoreBlock(users, {0, kItems}, MatrixView(&got), &arena);
  for (Index i = 0; i < want_b.size(); ++i) {
    ASSERT_EQ(got.data()[i], want_b.data()[i]) << "flat " << i;
  }

  // The per-thread arena behind the convenience overloads is the same
  // machinery; pin it through ScoreAll too.
  Matrix all_a;
  Matrix all_b;
  {
    const DotProductScorer sc(emb_a, item_emb);
    sc.ScoreAll(users, &all_a);
  }
  {
    const DotProductScorer sc(emb_b, item_emb);
    sc.ScoreAll(users, &all_b);
  }
  for (Index i = 0; i < want_b.size(); ++i) {
    ASSERT_EQ(all_b.data()[i], want_b.data()[i]) << "flat " << i;
  }
}

// The engine's arena pool recycles leases; acquire/release from many
// threads must stay balanced and private.
TEST(ServingConcurrencyTest, ArenaPoolLeasesArePrivateAndRecycled) {
  ArenaPool pool;
  {
    ArenaPool::Lease a = pool.Acquire();
    ArenaPool::Lease b = pool.Acquire();
    ASSERT_NE(a.get(), nullptr);
    ASSERT_NE(b.get(), nullptr);
    EXPECT_NE(a.get(), b.get());
    a->cached_users = {1, 2, 3};
  }
  // Both leases returned; the next acquire recycles one of them.
  ArenaPool::Lease c = pool.Acquire();
  ASSERT_NE(c.get(), nullptr);

  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        ArenaPool::Lease lease = pool.Acquire();
        lease->BindTo(static_cast<uint64_t>(t) + 1);
        lease->cached_users.assign(1, static_cast<Index>(t));
        if (lease->cached_users[0] != static_cast<Index>(t)) ++errors;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace firzen
