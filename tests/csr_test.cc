// CSR sparse matrix tests: construction, SpMM against dense reference,
// transpose, normalizations, row softmax, filtering and multigraph storage.
#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/csr.h"
#include "src/util/rng.h"

namespace firzen {
namespace {

CsrMatrix RandomSparse(Index rows, Index cols, Index nnz, uint64_t seed) {
  Rng rng(seed);
  std::vector<CooEntry> entries;
  for (Index i = 0; i < nnz; ++i) {
    entries.push_back({rng.UniformInt(rows), rng.UniformInt(cols),
                       rng.Normal()});
  }
  return CsrMatrix::FromCoo(rows, cols, std::move(entries));
}

TEST(CsrTest, FromCooMergesDuplicates) {
  CsrMatrix m = CsrMatrix::FromCoo(2, 2, {{0, 1, 1.0}, {0, 1, 2.5}});
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.ToDense()(0, 1), 3.5);
}

TEST(CsrTest, FromCooNoMergeKeepsDuplicatesAndOrder) {
  CsrMatrix m = CsrMatrix::FromCooNoMerge(
      2, 3, {{1, 2, 1.0}, {0, 1, 2.0}, {0, 1, 3.0}, {0, 0, 4.0}});
  EXPECT_EQ(m.nnz(), 4);
  // Row 0 keeps insertion order: (0,1,2.0), (0,1,3.0), (0,0,4.0).
  EXPECT_EQ(m.col_idx()[0], 1);
  EXPECT_DOUBLE_EQ(m.values()[0], 2.0);
  EXPECT_EQ(m.col_idx()[1], 1);
  EXPECT_DOUBLE_EQ(m.values()[1], 3.0);
  EXPECT_EQ(m.col_idx()[2], 0);
}

TEST(CsrTest, SpMMMatchesDense) {
  const CsrMatrix a = RandomSparse(7, 5, 20, 1);
  Matrix x(5, 3);
  Rng rng(2);
  x.FillNormal(&rng, 1.0);
  Matrix y;
  a.SpMM(x, &y);

  const Matrix dense = a.ToDense();
  for (Index r = 0; r < 7; ++r) {
    for (Index c = 0; c < 3; ++c) {
      Real acc = 0.0;
      for (Index k = 0; k < 5; ++k) acc += dense(r, k) * x(k, c);
      EXPECT_NEAR(y(r, c), acc, 1e-10);
    }
  }
}

TEST(CsrTest, SpMMAccumAddsScaled) {
  const CsrMatrix a = RandomSparse(4, 4, 8, 3);
  Matrix x(4, 2, 1.0);
  Matrix y(4, 2, 10.0);
  a.SpMMAccum(0.5, x, &y);
  Matrix expected;
  a.SpMM(x, &expected);
  for (Index i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y.data()[i], 10.0 + 0.5 * expected.data()[i], 1e-10);
  }
}

TEST(CsrTest, TransposedMatchesDenseTranspose) {
  const CsrMatrix a = RandomSparse(6, 4, 12, 4);
  const Matrix t = a.Transposed().ToDense();
  const Matrix dense = a.ToDense();
  for (Index r = 0; r < 6; ++r) {
    for (Index c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(t(c, r), dense(r, c));
    }
  }
}

TEST(CsrTest, RowNormalizedRowsSumToOne) {
  const CsrMatrix a = RandomSparse(5, 5, 15, 5);
  const CsrMatrix n = a.RowNormalized();
  for (Index r = 0; r < 5; ++r) {
    Real sum = 0.0;
    for (Index p = n.row_ptr()[r]; p < n.row_ptr()[r + 1]; ++p) {
      sum += std::abs(n.values()[static_cast<size_t>(p)]);
    }
    if (n.RowNnz(r) > 0) {
      EXPECT_NEAR(sum, 1.0, 1e-10);
    }
  }
}

TEST(CsrTest, SymNormalizedMatchesFormula) {
  // Small known graph: path 0-1-2 with unit weights (symmetric).
  CsrMatrix a = CsrMatrix::FromCoo(
      3, 3, {{0, 1, 1.0}, {1, 0, 1.0}, {1, 2, 1.0}, {2, 1, 1.0}});
  const Matrix n = a.SymNormalized().ToDense();
  // deg(0)=1, deg(1)=2, deg(2)=1 -> entry (0,1) = 1/sqrt(1*2).
  EXPECT_NEAR(n(0, 1), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(n(1, 0), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(n(1, 2), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(CsrTest, RowSoftmaxSumsToOne) {
  CsrMatrix a = CsrMatrix::FromCoo(
      2, 3, {{0, 0, 1.0}, {0, 1, 2.0}, {0, 2, 3.0}, {1, 1, 5.0}});
  const CsrMatrix s = a.RowSoftmax();
  Real sum = 0.0;
  for (Index p = s.row_ptr()[0]; p < s.row_ptr()[1]; ++p) {
    sum += s.values()[static_cast<size_t>(p)];
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Monotone in input.
  EXPECT_LT(s.values()[0], s.values()[1]);
  EXPECT_LT(s.values()[1], s.values()[2]);
  // Single-entry row -> weight 1.
  EXPECT_NEAR(s.values()[3], 1.0, 1e-12);
}

TEST(CsrTest, FilteredDropsPredicatedEdges) {
  const CsrMatrix a = RandomSparse(6, 6, 18, 6);
  const CsrMatrix f =
      a.Filtered([](Index row, Index col) { return row != col; });
  for (Index r = 0; r < 6; ++r) {
    for (Index p = f.row_ptr()[r]; p < f.row_ptr()[r + 1]; ++p) {
      EXPECT_NE(f.col_idx()[static_cast<size_t>(p)], r);
    }
  }
}

TEST(CsrTest, WithValuesReplacesPayloadKeepsTopology) {
  const CsrMatrix a = RandomSparse(4, 4, 10, 7);
  std::vector<Real> ones(static_cast<size_t>(a.nnz()), 1.0);
  const CsrMatrix b = a.WithValues(ones);
  EXPECT_EQ(b.nnz(), a.nnz());
  EXPECT_EQ(b.col_idx(), a.col_idx());
  for (Real v : b.values()) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(CsrTest, EmptyRowsHandled) {
  CsrMatrix m = CsrMatrix::FromCoo(3, 3, {{2, 0, 1.0}});
  EXPECT_EQ(m.RowNnz(0), 0);
  EXPECT_EQ(m.RowNnz(2), 1);
  Matrix x(3, 2, 1.0);
  Matrix y;
  m.SpMM(x, &y);
  EXPECT_DOUBLE_EQ(y(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(y(2, 0), 1.0);
}

}  // namespace
}  // namespace firzen
