// Property-based sweeps (TEST_P) over randomized inputs: autograd ops under
// many shapes, CSR normalization invariants over random graphs, metric
// ordering properties, kNN graph invariants across K, split invariants
// across cold fractions, sharded top-K over random shard layouts, and
// distributed wire-format round trips over random frames.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <tuple>
#include <vector>

#include "src/data/split.h"
#include "src/eval/metrics.h"
#include "src/eval/serving.h"
#include "src/eval/sharded_serving.h"
#include "src/eval/topk.h"
#include "src/graph/knn_graph.h"
#include "src/models/scorer.h"
#include "src/serve/wire.h"
#include "src/tensor/csr.h"
#include "src/tensor/gradcheck.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace firzen {
namespace {

using namespace ops;  // NOLINT(build/namespaces)

// ---- Autograd composite-graph gradcheck across shapes ----

class CompositeGradTest
    : public ::testing::TestWithParam<std::tuple<Index, Index, uint64_t>> {};

TEST_P(CompositeGradTest, DeepCompositeGraphGradientsMatch) {
  const auto [rows, cols, seed] = GetParam();
  Rng rng(seed);
  Matrix ma(rows, cols);
  ma.FillNormal(&rng, 0.7);
  Matrix mw(cols, cols);
  mw.FillNormal(&rng, 0.7);
  Tensor a = Tensor::Variable(std::move(ma));
  Tensor w = Tensor::Variable(std::move(mw));
  auto build = [a, w] {
    // A deliberately tangled graph: reuse, normalization, nonlinearity,
    // reduction — the shape of a real model step.
    Tensor h = Tanh(MatMul(a, w));
    Tensor n = RowL2Normalize(Add(h, a));
    Tensor s = RowSoftmax(MatMul(n, w, false, true));
    return Add(ReduceMean(Mul(s, n)), Scale(SumSquares(w), 1e-3));
  };
  const GradCheckResult result = CheckGradients({a, w}, build, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << "abs=" << result.max_abs_error
                         << " rel=" << result.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CompositeGradTest,
    ::testing::Values(std::make_tuple<Index, Index, uint64_t>(2, 3, 1),
                      std::make_tuple<Index, Index, uint64_t>(5, 4, 2),
                      std::make_tuple<Index, Index, uint64_t>(7, 2, 3),
                      std::make_tuple<Index, Index, uint64_t>(1, 6, 4),
                      std::make_tuple<Index, Index, uint64_t>(6, 6, 5)));

// ---- CSR invariants over random graphs ----

class CsrPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsrPropertyTest, SymNormalizedMatchesFormulaAndStaysSymmetric) {
  // Entries of D^{-1/2} A D^{-1/2} must equal a_rc / sqrt(d_r d_c) with
  // degrees taken from the raw value sums, and symmetry must be preserved.
  Rng rng(GetParam());
  std::vector<CooEntry> entries;
  const Index n = 30;
  for (int e = 0; e < 120; ++e) {
    const Index r = rng.UniformInt(n);
    const Index c = rng.UniformInt(n);
    if (r == c) continue;
    const Real v = rng.Uniform(0.1, 2.0);
    entries.push_back({r, c, v});
    entries.push_back({c, r, v});
  }
  const CsrMatrix raw = CsrMatrix::FromCoo(n, n, entries);
  const Matrix raw_dense = raw.ToDense();
  std::vector<Real> degree(static_cast<size_t>(n), 0.0);
  for (Index r = 0; r < n; ++r) {
    for (Index c = 0; c < n; ++c) degree[static_cast<size_t>(r)] += raw_dense(r, c);
  }
  const Matrix dense = raw.SymNormalized().ToDense();
  for (Index r = 0; r < n; ++r) {
    for (Index c = 0; c < n; ++c) {
      EXPECT_NEAR(dense(r, c), dense(c, r), 1e-10);
      if (raw_dense(r, c) > 0.0) {
        EXPECT_NEAR(dense(r, c),
                    raw_dense(r, c) / std::sqrt(degree[static_cast<size_t>(r)] *
                                                degree[static_cast<size_t>(c)]),
                    1e-10);
      }
    }
  }
}

TEST_P(CsrPropertyTest, TransposeOfTransposeIsIdentity) {
  Rng rng(GetParam() + 100);
  std::vector<CooEntry> entries;
  for (int e = 0; e < 60; ++e) {
    entries.push_back({rng.UniformInt(12), rng.UniformInt(17), rng.Normal()});
  }
  const CsrMatrix a = CsrMatrix::FromCoo(12, 17, entries);
  const CsrMatrix att = a.Transposed().Transposed();
  EXPECT_EQ(att.nnz(), a.nnz());
  const Matrix da = a.ToDense();
  const Matrix datt = att.ToDense();
  for (Index i = 0; i < da.size(); ++i) {
    EXPECT_DOUBLE_EQ(da.data()[i], datt.data()[i]);
  }
}

TEST_P(CsrPropertyTest, SpMMLinearity) {
  // A(x + y) == Ax + Ay.
  Rng rng(GetParam() + 200);
  std::vector<CooEntry> entries;
  for (int e = 0; e < 80; ++e) {
    entries.push_back({rng.UniformInt(15), rng.UniformInt(15), rng.Normal()});
  }
  const CsrMatrix a = CsrMatrix::FromCoo(15, 15, entries);
  Matrix x(15, 4);
  Matrix y(15, 4);
  x.FillNormal(&rng, 1.0);
  y.FillNormal(&rng, 1.0);
  Matrix xy = x;
  xy.Add(y);
  Matrix a_xy;
  a.SpMM(xy, &a_xy);
  Matrix ax;
  a.SpMM(x, &ax);
  Matrix ay;
  a.SpMM(y, &ay);
  ax.Add(ay);
  for (Index i = 0; i < ax.size(); ++i) {
    EXPECT_NEAR(a_xy.data()[i], ax.data()[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---- Metric properties ----

class MetricPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricPropertyTest, BoundsAndOrderings) {
  Rng rng(GetParam());
  // Random universe of 50 items, random relevant subset, random ranking.
  std::vector<Index> ranking(50);
  for (Index i = 0; i < 50; ++i) ranking[static_cast<size_t>(i)] = i;
  rng.Shuffle(&ranking);
  ranking.resize(20);
  std::unordered_set<Index> relevant;
  const Index num_rel = 1 + rng.UniformInt(10);
  while (static_cast<Index>(relevant.size()) < num_rel) {
    relevant.insert(rng.UniformInt(50));
  }
  const MetricBundle m = ComputeUserMetrics(ranking, relevant, num_rel, 20);
  // All metrics in [0, 1].
  for (Real v : {m.recall, m.mrr, m.ndcg, m.hit, m.precision}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // Orderings: mrr <= hit (first hit implies hit); recall > 0 iff hit.
  EXPECT_LE(m.mrr, m.hit + 1e-12);
  EXPECT_EQ(m.recall > 0.0, m.hit > 0.0);
  EXPECT_EQ(m.precision > 0.0, m.hit > 0.0);
  // NDCG positive iff any hit.
  EXPECT_EQ(m.ndcg > 0.0, m.hit > 0.0);
}

TEST_P(MetricPropertyTest, MovingAHitEarlierNeverDecreasesRankMetrics) {
  Rng rng(GetParam() + 1);
  std::vector<Index> ranking{0, 1, 2, 3, 4, 5, 6, 7};
  std::unordered_set<Index> relevant{5};
  const MetricBundle late = ComputeUserMetrics(ranking, relevant, 1, 8);
  std::swap(ranking[5], ranking[2]);  // move hit from rank 6 to rank 3
  const MetricBundle early = ComputeUserMetrics(ranking, relevant, 1, 8);
  EXPECT_GT(early.mrr, late.mrr);
  EXPECT_GT(early.ndcg, late.ndcg);
  EXPECT_EQ(early.recall, late.recall);  // set metrics unchanged
  EXPECT_EQ(early.hit, late.hit);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest,
                         ::testing::Range<uint64_t>(0, 10));

// ---- kNN graph invariants across K ----

class KnnSweepTest : public ::testing::TestWithParam<Index> {};

TEST_P(KnnSweepTest, DegreeEqualsKAndDeterministic) {
  const Index k = GetParam();
  Rng rng(77);
  Matrix features(40, 6);
  features.FillNormal(&rng, 1.0);
  KnnGraphOptions options;
  options.top_k = k;
  const CsrMatrix a = BuildItemKnnAdjacency(features, options);
  const CsrMatrix b = BuildItemKnnAdjacency(features, options);
  EXPECT_EQ(a.nnz(), 40 * k);
  // Deterministic construction.
  EXPECT_EQ(a.col_idx(), b.col_idx());
  // Larger K is a superset of smaller K's neighbor sets.
  if (k > 2) {
    KnnGraphOptions smaller = options;
    smaller.top_k = k - 1;
    const CsrMatrix s = BuildItemKnnAdjacency(features, smaller);
    for (Index r = 0; r < 40; ++r) {
      std::set<Index> big;
      for (Index p = a.row_ptr()[r]; p < a.row_ptr()[r + 1]; ++p) {
        big.insert(a.col_idx()[static_cast<size_t>(p)]);
      }
      for (Index p = s.row_ptr()[r]; p < s.row_ptr()[r + 1]; ++p) {
        EXPECT_TRUE(big.count(s.col_idx()[static_cast<size_t>(p)]) > 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KnnSweepTest,
                         ::testing::Values<Index>(2, 5, 10, 15, 20));

// ---- Split invariants across cold fractions ----

class SplitSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(SplitSweepTest, StrictInvariantsHoldForAnyColdFraction) {
  Rng world_rng(123);
  std::vector<Interaction> interactions;
  for (Index u = 0; u < 60; ++u) {
    for (int j = 0; j < 8; ++j) {
      interactions.push_back({u, world_rng.UniformInt(80)});
    }
  }
  Dataset dataset;
  dataset.num_users = 60;
  dataset.num_items = 80;
  SplitOptions options;
  options.cold_fraction = GetParam();
  Rng rng(9);
  ApplyStrictColdSplit(interactions, options, &rng, &dataset);
  dataset.CheckValid();
  // Interaction conservation.
  EXPECT_EQ(interactions.size(),
            dataset.train.size() + dataset.warm_val.size() +
                dataset.warm_test.size() + dataset.cold_val.size() +
                dataset.cold_test.size());
  // Cold val/test within one of each other.
  EXPECT_LE(std::abs(static_cast<long>(dataset.cold_val.size()) -
                     static_cast<long>(dataset.cold_test.size())),
            1);
}

INSTANTIATE_TEST_SUITE_P(Fractions, SplitSweepTest,
                         ::testing::Values(0.1, 0.2, 0.3, 0.5));

// ---- Sharded top-K invariants over random shard layouts ----

// Deterministic score formula shared by the engine's scorer and the
// brute-force reference. Quantized to a coarse grid so score ties are
// frequent (the adversarial case for shard-layout invariance) and salted
// with NaN holes (dropped deterministically by TopKHeap).
Real TrialScore(uint64_t trial_salt, Index user, Index item) {
  const uint64_t h =
      (static_cast<uint64_t>(user) * 2654435761u + trial_salt * 97u +
       static_cast<uint64_t>(item) * 40503u);
  if (h % 11 == 0) return std::nan("");
  return static_cast<Real>(h % 13) - static_cast<Real>(item % 3);
}

class ShardedTopKPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Random shard boundaries (duplicates and end cuts included), random k,
// random exclusion policies, random candidate pools: the merged sharded
// top-K must equal a brute-force sort of the full score row under the
// RanksBefore total order. 12 seeds x 10 trials = 120 randomized trials.
TEST_P(ShardedTopKPropertyTest, MergedTopKEqualsBruteForceFullRowSort) {
  Rng rng(GetParam() * 7919 + 1);
  for (int trial = 0; trial < 10; ++trial) {
    const Index num_items = 20 + rng.UniformInt(100);
    const Index num_users = 3 + rng.UniformInt(8);
    const uint64_t salt = GetParam() * 1000 + static_cast<uint64_t>(trial);

    Dataset dataset;
    dataset.num_users = num_users;
    dataset.num_items = num_items;
    dataset.is_cold_item.assign(static_cast<size_t>(num_items), false);
    for (Index i = 0; i < num_items; ++i) {
      if (rng.UniformInt(4) == 0) {
        dataset.is_cold_item[static_cast<size_t>(i)] = true;
      }
    }
    for (Index u = 0; u < num_users; ++u) {
      for (int t = 0; t < 3; ++t) {
        dataset.train.push_back({u, rng.UniformInt(num_items)});
      }
    }

    // Random shard layout: 0-6 interior cuts, unsorted draws sorted here,
    // duplicates kept (empty shards are legal).
    ShardedServingOptions options;
    const Index num_cuts = rng.UniformInt(7);
    for (Index c = 0; c < num_cuts; ++c) {
      options.boundaries.push_back(rng.UniformInt(num_items + 1));
    }
    std::sort(options.boundaries.begin(), options.boundaries.end());
    options.item_block = 1 + rng.UniformInt(num_items + 8);

    auto scorer = std::make_unique<FullScoreAdapter>(
        [salt, num_items](const std::vector<Index>& users, Matrix* scores) {
          scores->Resize(static_cast<Index>(users.size()), num_items);
          for (size_t r = 0; r < users.size(); ++r) {
            for (Index i = 0; i < num_items; ++i) {
              (*scores)(static_cast<Index>(r), i) =
                  TrialScore(salt, users[r], i);
            }
          }
        },
        num_items);
    const ShardedServingEngine engine(std::move(scorer), dataset, options);

    // One random request per user: random k, exclusion, pool, cold flag.
    std::vector<RecRequest> requests;
    for (Index u = 0; u < num_users; ++u) {
      RecRequest request;
      request.user = u;
      request.k = 1 + rng.UniformInt(num_items + 3);
      const Index mode = rng.UniformInt(3);
      request.exclusion = mode == 0   ? ExclusionPolicy::kTrainSeen
                          : mode == 1 ? ExclusionPolicy::kCustom
                                      : ExclusionPolicy::kNone;
      if (request.exclusion == ExclusionPolicy::kCustom) {
        for (int j = 0; j < 6; ++j) {
          request.exclude.push_back(rng.UniformInt(num_items));
        }
      }
      if (rng.UniformInt(2) == 0) {
        const Index pool_size = 1 + rng.UniformInt(num_items);
        for (Index j = 0; j < pool_size; ++j) {
          request.candidates.push_back(rng.UniformInt(num_items));
        }
      }
      request.cold_only = rng.UniformInt(4) == 0;
      requests.push_back(std::move(request));
    }
    const std::vector<RecResponse> responses = engine.RecommendBatch(requests);

    // Brute force: score the full row from the same formula, filter
    // eligibility, sort under RanksBefore, truncate to k.
    const auto seen = dataset.TrainItemsByUser();
    for (size_t i = 0; i < requests.size(); ++i) {
      const RecRequest& request = requests[i];
      std::vector<Index> pool;
      if (request.candidates.empty()) {
        for (Index item = 0; item < num_items; ++item) pool.push_back(item);
      } else {
        pool = request.candidates;
        std::sort(pool.begin(), pool.end());
        pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
      }
      std::vector<Index> exclude;
      if (request.exclusion == ExclusionPolicy::kTrainSeen) {
        exclude = seen[static_cast<size_t>(request.user)];
      } else if (request.exclusion == ExclusionPolicy::kCustom) {
        exclude = request.exclude;
        std::sort(exclude.begin(), exclude.end());
      }
      std::vector<ScoredItem> expected;
      for (Index item : pool) {
        if (request.cold_only &&
            !dataset.is_cold_item[static_cast<size_t>(item)]) {
          continue;
        }
        if (std::binary_search(exclude.begin(), exclude.end(), item)) {
          continue;
        }
        const Real score = TrialScore(salt, request.user, item);
        if (std::isnan(score)) continue;
        expected.push_back({item, score});
      }
      std::sort(expected.begin(), expected.end(), RanksBefore);
      if (static_cast<Index>(expected.size()) > request.k) {
        expected.resize(static_cast<size_t>(request.k));
      }
      ASSERT_EQ(responses[i].items.size(), expected.size())
          << "seed=" << GetParam() << " trial=" << trial << " request=" << i;
      for (size_t j = 0; j < expected.size(); ++j) {
        ASSERT_EQ(responses[i].items[j].item, expected[j].item)
            << "seed=" << GetParam() << " trial=" << trial << " request=" << i
            << " rank=" << j;
        ASSERT_EQ(responses[i].items[j].score, expected[j].score)
            << "seed=" << GetParam() << " trial=" << trial << " request=" << i
            << " rank=" << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedTopKPropertyTest,
                         ::testing::Range<uint64_t>(0, 12));

// ---- Distributed wire-format round-trip over random frames ----

class WireRoundTripPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Random request batches and reply batches — arbitrary 64-bit field
// values, arbitrary score BIT PATTERNS (including NaN payloads and
// infinities: the format is transparent; semantic NaN filtering happens
// before serialization) — must survive encode/decode unchanged. This is
// the property behind the distributed determinism contract: if any value
// could bend on the wire, byte-identity to the in-process oracle would be
// unprovable. 10 seeds x 20 trials = 200 randomized round trips.
TEST_P(WireRoundTripPropertyTest, RandomBatchesSurviveTheWireBitExactly) {
  Rng rng(GetParam() * 6271 + 3);
  const auto random_i64 = [&rng] {
    return static_cast<int64_t>(rng.Next());
  };
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<RecRequest> requests(static_cast<size_t>(rng.UniformInt(6)));
    for (RecRequest& request : requests) {
      request.user = random_i64();
      request.k = random_i64();
      for (Index j = rng.UniformInt(5); j > 0; --j) {
        request.candidates.push_back(random_i64());
      }
      const Index mode = rng.UniformInt(3);
      request.exclusion = mode == 0   ? ExclusionPolicy::kTrainSeen
                          : mode == 1 ? ExclusionPolicy::kCustom
                                      : ExclusionPolicy::kNone;
      for (Index j = rng.UniformInt(4); j > 0; --j) {
        request.exclude.push_back(random_i64());
      }
      request.cold_only = rng.Bernoulli(0.5);
      request.deadline_us = rng.Bernoulli(0.3) ? -1 : random_i64();
      request.tenant = random_i64();
    }
    const std::vector<uint8_t> encoded = wire::EncodeRequestBatch(requests);
    std::vector<RecRequest> decoded;
    ASSERT_TRUE(
        wire::DecodeRequestBatch(encoded.data(), encoded.size(), &decoded));
    ASSERT_EQ(decoded.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      EXPECT_EQ(decoded[i].user, requests[i].user);
      EXPECT_EQ(decoded[i].k, requests[i].k);
      EXPECT_EQ(decoded[i].candidates, requests[i].candidates);
      EXPECT_EQ(decoded[i].exclusion, requests[i].exclusion);
      EXPECT_EQ(decoded[i].exclude, requests[i].exclude);
      EXPECT_EQ(decoded[i].cold_only, requests[i].cold_only);
      EXPECT_EQ(decoded[i].deadline_us, requests[i].deadline_us);
      EXPECT_EQ(decoded[i].tenant, requests[i].tenant);
    }
    // Every truncated prefix of a valid payload fails decode (sampled:
    // exhaustive prefixes are covered for fixed cases in wire_test.cc).
    if (!encoded.empty()) {
      const size_t cut = static_cast<size_t>(
          rng.UniformInt(static_cast<Index>(encoded.size())));
      EXPECT_FALSE(wire::DecodeRequestBatch(encoded.data(), cut, &decoded));
    }

    std::vector<wire::ShardReply> replies(
        static_cast<size_t>(rng.UniformInt(5)));
    for (wire::ShardReply& reply : replies) {
      reply.user = random_i64();
      for (Index j = rng.UniformInt(8); j > 0; --j) {
        const uint64_t bits = rng.Next();
        Real score;
        std::memcpy(&score, &bits, sizeof(score));
        reply.items.push_back({random_i64(), score});
      }
    }
    const std::vector<uint8_t> reply_encoded = wire::EncodeReplyBatch(replies);
    std::vector<wire::ShardReply> reply_decoded;
    ASSERT_TRUE(wire::DecodeReplyBatch(reply_encoded.data(),
                                       reply_encoded.size(), &reply_decoded));
    ASSERT_EQ(reply_decoded.size(), replies.size());
    for (size_t i = 0; i < replies.size(); ++i) {
      EXPECT_EQ(reply_decoded[i].user, replies[i].user);
      ASSERT_EQ(reply_decoded[i].items.size(), replies[i].items.size());
      for (size_t j = 0; j < replies[i].items.size(); ++j) {
        EXPECT_EQ(reply_decoded[i].items[j].item, replies[i].items[j].item);
        // Bit comparison, not ==: random bit patterns include NaNs.
        uint64_t got_bits, want_bits;
        std::memcpy(&got_bits, &reply_decoded[i].items[j].score,
                    sizeof(got_bits));
        std::memcpy(&want_bits, &replies[i].items[j].score,
                    sizeof(want_bits));
        EXPECT_EQ(got_bits, want_bits);
      }
    }
    if (!reply_encoded.empty()) {
      const size_t cut = static_cast<size_t>(
          rng.UniformInt(static_cast<Index>(reply_encoded.size())));
      EXPECT_FALSE(
          wire::DecodeReplyBatch(reply_encoded.data(), cut, &reply_decoded));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTripPropertyTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace firzen
