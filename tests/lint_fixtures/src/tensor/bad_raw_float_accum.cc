// Lint fixture: NOT built. Naked float accumulation in tensor/ outside the
// sanctioned kernels in matrix.cc.
// Expected finding: raw-float-accum.
using Real = double;

Real NakedSum(const Real* values, int n) {
  Real acc = 0.0;
  for (int i = 0; i < n; ++i) acc += values[i];
  return acc;
}
