// Lint fixture: NOT built. Non-seeded randomness outside util/rng.h.
// Expected findings: banned-rng (two lines).
#include <cstdlib>
#include <random>

int DrawUnseeded() {
  std::mt19937 gen;
  gen.seed(std::random_device{}());
  return static_cast<int>(gen());
}
