// Lint fixture: NOT built. CPU feature detection outside the single
// runtime-dispatch TU (src/tensor/quantized.cc). A second dispatch site can
// resolve to a different SIMD tier than the pinned one mid-process.
// Expected findings: stray-cpuid (twice).

bool HasAvx2() { return __builtin_cpu_supports("avx2"); }

unsigned ProbeLeaf(unsigned leaf) {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  __get_cpuid(leaf, &eax, &ebx, &ecx, &edx);
  return ecx;
}
