// Lint fixture: NOT built. An #include running up the layer stack
// (graph -> serve).
// Expected finding: include-layering.
#include "src/serve/wire.h"

int LayeringViolation() { return 0; }
