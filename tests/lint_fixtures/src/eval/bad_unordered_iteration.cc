// Lint fixture: NOT built. Hash-order iteration reaching output order.
// Expected finding: unordered-iteration.
#include <unordered_map>
#include <vector>

std::vector<int> CollectInHashOrder() {
  std::unordered_map<int, int> counts;
  counts[3] = 1;
  counts[7] = 2;
  std::vector<int> out;
  for (const auto& [key, value] : counts) {
    (void)value;
    out.push_back(key);
  }
  return out;
}
