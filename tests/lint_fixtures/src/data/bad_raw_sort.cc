// Lint fixture: NOT built. Float-score sort with a bare comparator — ties
// resolve to whatever the sort implementation does instead of RanksBefore.
// Expected finding: raw-sort.
#include <algorithm>
#include <utility>
#include <vector>

void SortScores(std::vector<std::pair<float, int>>* scored) {
  std::sort(scored->begin(), scored->end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
}
