// Lint fixture: NOT built. Every banned pattern below carries a
// firzen-lint allow() escape, so this file must produce ZERO findings —
// it pins the escape mechanism itself (same line, preceding line, and the
// commented-out-code path through the stripper).
#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <utility>
#include <vector>

// Escape on a preceding line, fixture justification.
// firzen-lint: allow(include-layering)
#include "src/serve/wire.h"

std::vector<int> EscapedEverywhere() {
  std::unordered_map<int, int> counts;
  counts[1] = 1;
  std::vector<int> out;
  // firzen-lint: allow(unordered-iteration) -- fixture: escape mechanism.
  for (const auto& [key, value] : counts) {
    (void)value;
    out.push_back(key);
  }

  std::vector<std::pair<float, int>> scored{{1.0f, 2}};
  // firzen-lint: allow(raw-sort) -- fixture: escape mechanism.
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  int draw = rand();  // firzen-lint: allow(banned-rng) -- same-line escape.
  (void)draw;

  // A commented-out banned call must not fire either (stripper):
  // long long t = time(nullptr);

  // "time(nullptr)" inside a string literal must not fire (stripper):
  const char* doc = "never call time(nullptr) here";
  (void)doc;
  return out;
}
