// Lint fixture: NOT built. Wall-clock reads in a core path.
// Expected findings: banned-time (two sites).
#include <chrono>
#include <ctime>

long long WallClockSeed() {
  const auto now = std::chrono::system_clock::now();
  (void)now;
  return static_cast<long long>(time(nullptr));
}
