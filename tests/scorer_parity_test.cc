// ScoreBlock parity suite: for every registered model, block-streamed
// scores must be bit-identical to the legacy full-matrix Score() for any
// block partitioning {1, 7, 64, num_items}, any candidate gather, and user
// batches on both sides of the Gemm small-batch/panel-path boundary. This
// is the contract that lets the evaluator and the serving engine stream
// bounded panels without ever materializing the catalog-wide matrix.
//
// The suite also pins BATCH-SIZE INVARIANCE: a user's scores are
// bit-identical whether they are computed in a batch of 1, of
// kGemmBTColumnShardMaxRows, of kGemmBTColumnShardMaxRows + 1, or of 256 —
// for every registered model. This retired the historical "scores across
// different user-batch sizes may differ in the last ulp" caveat and is
// what makes admission batching (src/eval/admission.h) observably
// side-effect-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/data/synthetic.h"
#include "src/models/registry.h"
#include "src/tensor/matrix.h"
#include "src/util/logging.h"

namespace firzen {
namespace {

const Dataset& ParityDataset() {
  static const Dataset* dataset = [] {
    return new Dataset(GenerateSyntheticDataset(BeautySConfig(0.12)));
  }();
  return *dataset;
}

TrainOptions ParityTrainOptions() {
  TrainOptions options;
  options.embedding_dim = 8;
  options.epochs = 2;
  options.eval_every = 8;  // skip mid-training validation
  options.batch_size = 256;
  options.seed = 321;
  return options;
}

class ScorerParityTest : public ::testing::TestWithParam<ModelInfo> {};

TEST_P(ScorerParityTest, BlockStreamMatchesLegacyScoreBitExact) {
  SetLogLevel(LogLevel::kError);
  const Dataset& dataset = ParityDataset();
  auto model = CreateModel(GetParam().name);
  ASSERT_NE(model, nullptr) << GetParam().name;
  model->Fit(dataset, ParityTrainOptions());

  // 40 users crosses the small-batch dispatch (m <= 32) into the
  // row-sharded panel kernel; 5 users stays on the small-batch side.
  for (const size_t batch_users : {size_t{5}, size_t{40}}) {
    std::vector<Index> users;
    for (size_t u = 0; u < batch_users; ++u) {
      users.push_back(static_cast<Index>(
          (u * 7) % static_cast<size_t>(dataset.num_users)));
    }

    Matrix full;
    model->Score(users, &full);
    ASSERT_EQ(full.rows(), static_cast<Index>(users.size()));
    ASSERT_EQ(full.cols(), dataset.num_items);

    const auto scorer = model->MakeScorer();
    ASSERT_EQ(scorer->num_items(), dataset.num_items);

    // Caller-owned arena: the explicit per-stream scratch contract that
    // makes one scorer shareable across threads. (The arena-less overloads
    // route to a per-thread arena and are covered by the Score() reference
    // itself.)
    ScoringArena arena;
    for (Index block : {Index{1}, Index{7}, Index{64}, dataset.num_items}) {
      Matrix streamed(static_cast<Index>(users.size()), dataset.num_items);
      for (Index begin = 0; begin < dataset.num_items; begin += block) {
        const ItemBlock item_block{begin,
                                   std::min(begin + block,
                                            dataset.num_items)};
        scorer->ScoreBlock(
            users, item_block,
            MatrixView::Columns(&streamed, item_block.begin,
                                item_block.size()),
            &arena);
      }
      for (Index i = 0; i < full.size(); ++i) {
        ASSERT_EQ(streamed.data()[i], full.data()[i])
            << GetParam().name << " users=" << users.size()
            << " block=" << block << " flat=" << i;
      }
    }

    // Scattered candidate gather matches the same full-matrix columns.
    std::vector<Index> candidates;
    for (Index i = dataset.num_items - 1; i >= 0; i -= 13) {
      candidates.push_back(i);
    }
    Matrix gathered(static_cast<Index>(users.size()),
                    static_cast<Index>(candidates.size()));
    scorer->ScoreCandidates(users, candidates, MatrixView(&gathered), &arena);
    for (size_t r = 0; r < users.size(); ++r) {
      for (size_t j = 0; j < candidates.size(); ++j) {
        ASSERT_EQ(gathered(static_cast<Index>(r), static_cast<Index>(j)),
                  full(static_cast<Index>(r), candidates[j]))
            << GetParam().name << " candidate " << candidates[j];
      }
    }
  }
}

// Batch-size invariance: scoring the same user in batches of different
// sizes — spanning the Gemm lane-dot / column-panel / row-panel dispatch
// boundaries — must agree bit-for-bit row by row. The 256-user batch is
// the reference; every smaller batch is a prefix of the same user list,
// so row r always names the same user.
TEST_P(ScorerParityTest, ScoresAreBatchSizeInvariantBitExact) {
  SetLogLevel(LogLevel::kError);
  const Dataset& dataset = ParityDataset();
  auto model = CreateModel(GetParam().name);
  ASSERT_NE(model, nullptr) << GetParam().name;
  model->Fit(dataset, ParityTrainOptions());
  const auto scorer = model->MakeScorer();

  std::vector<Index> all_users;
  for (size_t u = 0; u < 256; ++u) {
    all_users.push_back(static_cast<Index>(
        (u * 7) % static_cast<size_t>(dataset.num_users)));
  }
  const ItemBlock catalog{0, dataset.num_items};
  Matrix want(256, dataset.num_items);
  {
    ScoringArena arena;
    scorer->ScoreBlock(all_users, catalog, MatrixView(&want), &arena);
  }

  // Candidate gathers must be batch-size-invariant too (the explicit-pool
  // serving path).
  std::vector<Index> candidates;
  for (Index i = 0; i < dataset.num_items; i += 11) candidates.push_back(i);
  Matrix want_candidates(256, static_cast<Index>(candidates.size()));
  {
    ScoringArena arena;
    scorer->ScoreCandidates(all_users, candidates,
                            MatrixView(&want_candidates), &arena);
  }

  for (const Index batch : {Index{1}, kGemmBTColumnShardMaxRows,
                            kGemmBTColumnShardMaxRows + 1, Index{256}}) {
    const std::vector<Index> users(all_users.begin(),
                                   all_users.begin() + batch);
    ScoringArena arena;
    Matrix got(batch, dataset.num_items);
    scorer->ScoreBlock(users, catalog, MatrixView(&got), &arena);
    for (Index r = 0; r < batch; ++r) {
      for (Index i = 0; i < dataset.num_items; ++i) {
        ASSERT_EQ(got(r, i), want(r, i))
            << GetParam().name << " batch=" << batch << " row=" << r
            << " item=" << i;
      }
    }
    Matrix got_candidates(batch, static_cast<Index>(candidates.size()));
    scorer->ScoreCandidates(users, candidates, MatrixView(&got_candidates),
                            &arena);
    for (Index r = 0; r < batch; ++r) {
      for (Index j = 0; j < got_candidates.cols(); ++j) {
        ASSERT_EQ(got_candidates(r, j), want_candidates(r, j))
            << GetParam().name << " batch=" << batch << " row=" << r
            << " candidate=" << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ScorerParityTest,
                         ::testing::ValuesIn(AllModels()),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace firzen
