// Autograd engine verification: every differentiable op is checked against
// central-difference numerical gradients (the canonical way to validate a
// reverse-mode engine), plus graph-mechanics tests (accumulation, detach,
// reuse across steps).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>

#include "src/tensor/csr.h"
#include "src/tensor/gradcheck.h"
#include "src/tensor/init.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace firzen {
namespace {

using namespace ops;  // NOLINT(build/namespaces)

Tensor SmallVariable(Index rows, Index cols, uint64_t seed,
                     Real scale = 1.0) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.FillNormal(&rng, scale);
  return Tensor::Variable(std::move(m));
}

struct OpCase {
  std::string name;
  // Returns (params, loss builder).
  std::function<std::pair<std::vector<Tensor>, std::function<Tensor()>>()>
      make;
};

OpCase MakeUnaryCase(const std::string& name,
                     std::function<Tensor(const Tensor&)> op,
                     Real scale = 1.0) {
  return {name, [op, scale, name] {
            Tensor x = SmallVariable(4, 3, 11 + name.size(), scale);
            auto build = [x, op] { return ReduceSum(op(x)); };
            return std::make_pair(std::vector<Tensor>{x}, std::function<Tensor()>(build));
          }};
}

class OpGradTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(OpGradTest, NumericalGradientMatches) {
  auto [params, build] = GetParam().make();
  const GradCheckResult result = CheckGradients(params, build, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << GetParam().name
                         << " max_abs=" << result.max_abs_error
                         << " max_rel=" << result.max_rel_error;
}

std::vector<OpCase> AllOpCases() {
  std::vector<OpCase> cases;
  cases.push_back(MakeUnaryCase("sigmoid", [](const Tensor& x) {
    return Sigmoid(x);
  }));
  cases.push_back(MakeUnaryCase("tanh", [](const Tensor& x) {
    return Tanh(x);
  }));
  cases.push_back(MakeUnaryCase("leaky_relu", [](const Tensor& x) {
    return LeakyRelu(x, 0.2);
  }));
  cases.push_back(MakeUnaryCase("exp", [](const Tensor& x) {
    return Exp(x);
  }, 0.5));
  cases.push_back(MakeUnaryCase("softplus", [](const Tensor& x) {
    return Softplus(x);
  }));
  cases.push_back(MakeUnaryCase("log_sigmoid", [](const Tensor& x) {
    return LogSigmoid(x);
  }));
  cases.push_back(MakeUnaryCase("row_softmax_weighted", [](const Tensor& x) {
    // Weight the softmax so the gradient is not identically zero.
    Tensor w = Tensor::Constant([&] {
      Matrix m(x.rows(), x.cols());
      Rng rng(5);
      m.FillNormal(&rng, 1.0);
      return m;
    }());
    return Mul(RowSoftmax(x), w);
  }));
  cases.push_back(MakeUnaryCase("row_l2_normalize", [](const Tensor& x) {
    Tensor w = Tensor::Constant([&] {
      Matrix m(x.rows(), x.cols());
      Rng rng(6);
      m.FillNormal(&rng, 1.0);
      return m;
    }());
    return Mul(RowL2Normalize(x), w);
  }));
  cases.push_back(MakeUnaryCase("transpose", [](const Tensor& x) {
    return Mul(Transpose(x), Tensor::Constant([&] {
                 Matrix m(x.cols(), x.rows());
                 Rng rng(7);
                 m.FillNormal(&rng, 1.0);
                 return m;
               }()));
  }));
  cases.push_back(MakeUnaryCase("reshape", [](const Tensor& x) {
    return Exp(Reshape(x, x.cols(), x.rows()));
  }, 0.3));
  cases.push_back(MakeUnaryCase("slice_cols", [](const Tensor& x) {
    return Exp(SliceCols(x, 1, 3));
  }, 0.3));
  cases.push_back(MakeUnaryCase("sum_groups", [](const Tensor& x) {
    return Exp(SumGroups(x, 2));
  }, 0.3));
  cases.push_back(MakeUnaryCase("repeat_interleave", [](const Tensor& x) {
    return Exp(RepeatInterleaveRows(x, 3));
  }, 0.3));
  cases.push_back(MakeUnaryCase("row_sum", [](const Tensor& x) {
    return Exp(RowSum(x));
  }, 0.3));
  cases.push_back(MakeUnaryCase("col_sum", [](const Tensor& x) {
    return Exp(ColSum(x));
  }, 0.3));
  cases.push_back(MakeUnaryCase("sum_squares", [](const Tensor& x) {
    return SumSquares(x);
  }));
  cases.push_back(MakeUnaryCase("log", [](const Tensor& x) {
    return Log(AddScalar(Mul(x, x), 1.0));
  }));

  cases.push_back({"add_sub_mul_div", [] {
    Tensor a = SmallVariable(3, 4, 21);
    Tensor b = SmallVariable(3, 4, 22);
    auto build = [a, b] {
      Tensor denom = AddScalar(Mul(b, b), 1.0);
      return ReduceSum(Add(Sub(Mul(a, b), a), Div(a, denom)));
    };
    return std::make_pair(std::vector<Tensor>{a, b},
                          std::function<Tensor()>(build));
  }});

  for (const bool trans_a : {false, true}) {
    for (const bool trans_b : {false, true}) {
      cases.push_back(
          {"matmul_" + std::to_string(trans_a) + std::to_string(trans_b),
           [trans_a, trans_b] {
             Tensor a = trans_a ? SmallVariable(4, 3, 31)
                                : SmallVariable(3, 4, 31);
             Tensor b = trans_b ? SmallVariable(2, 4, 32)
                                : SmallVariable(4, 2, 32);
             auto build = [a, b, trans_a, trans_b] {
               return ReduceSum(Tanh(MatMul(a, b, trans_a, trans_b)));
             };
             return std::make_pair(std::vector<Tensor>{a, b},
                                   std::function<Tensor()>(build));
           }});
    }
  }

  cases.push_back({"spmm", [] {
    auto graph = std::make_shared<CsrMatrix>(CsrMatrix::FromCoo(
        4, 4, {{0, 1, 0.5}, {1, 0, 0.5}, {1, 2, 0.3}, {3, 3, 1.0}}));
    Tensor x = SmallVariable(4, 3, 41);
    auto build = [graph, x] { return ReduceSum(Tanh(SpMM(graph, x))); };
    return std::make_pair(std::vector<Tensor>{x},
                          std::function<Tensor()>(build));
  }});

  cases.push_back({"gather_rows_with_repeats", [] {
    Tensor x = SmallVariable(5, 3, 51);
    std::vector<Index> idx{0, 2, 2, 4, 1};
    auto build = [x, idx] { return ReduceSum(Tanh(GatherRows(x, idx))); };
    return std::make_pair(std::vector<Tensor>{x},
                          std::function<Tensor()>(build));
  }});

  cases.push_back({"row_scale", [] {
    Tensor x = SmallVariable(4, 3, 61);
    Tensor w = SmallVariable(4, 1, 62);
    auto build = [x, w] { return ReduceSum(Tanh(RowScale(x, w))); };
    return std::make_pair(std::vector<Tensor>{x, w},
                          std::function<Tensor()>(build));
  }});

  cases.push_back({"add_row_broadcast", [] {
    Tensor x = SmallVariable(4, 3, 71);
    Tensor b = SmallVariable(1, 3, 72);
    auto build = [x, b] { return ReduceSum(Tanh(AddRowBroadcast(x, b))); };
    return std::make_pair(std::vector<Tensor>{x, b},
                          std::function<Tensor()>(build));
  }});

  cases.push_back({"row_dot", [] {
    Tensor a = SmallVariable(4, 3, 81);
    Tensor b = SmallVariable(4, 3, 82);
    auto build = [a, b] { return ReduceSum(Tanh(RowDot(a, b))); };
    return std::make_pair(std::vector<Tensor>{a, b},
                          std::function<Tensor()>(build));
  }});

  cases.push_back({"concat_cols", [] {
    Tensor a = SmallVariable(4, 2, 91);
    Tensor b = SmallVariable(4, 3, 92);
    auto build = [a, b] {
      return ReduceSum(Tanh(ConcatCols({a, b})));
    };
    return std::make_pair(std::vector<Tensor>{a, b},
                          std::function<Tensor()>(build));
  }});

  cases.push_back({"batch_norm", [] {
    Tensor x = SmallVariable(6, 3, 95);
    Tensor gamma = Tensor::Variable(Matrix(1, 3, 1.0));
    Tensor beta = Tensor::Variable(Matrix(1, 3, 0.1));
    auto build = [x, gamma, beta] {
      Tensor w = Tensor::Constant([&] {
        Matrix m(6, 3);
        Rng rng(96);
        m.FillNormal(&rng, 1.0);
        return m;
      }());
      return ReduceSum(Mul(BatchNorm(x, gamma, beta), w));
    };
    return std::make_pair(std::vector<Tensor>{x, gamma, beta},
                          std::function<Tensor()>(build));
  }});

  cases.push_back({"scale_add_scalar_addn", [] {
    Tensor a = SmallVariable(3, 3, 97);
    Tensor b = SmallVariable(3, 3, 98);
    auto build = [a, b] {
      return ReduceMean(AddN({Scale(a, 2.0), AddScalar(b, 1.0), a}));
    };
    return std::make_pair(std::vector<Tensor>{a, b},
                          std::function<Tensor()>(build));
  }});

  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OpGradTest, ::testing::ValuesIn(AllOpCases()),
    [](const ::testing::TestParamInfo<OpCase>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(AutogradTest, GradientAccumulatesAcrossBackwardCalls) {
  Tensor x = Tensor::Variable(Matrix(1, 1, 2.0));
  Tensor loss1 = SumSquares(x);  // d/dx = 2x = 4
  Backward(loss1);
  EXPECT_NEAR(x.grad()(0, 0), 4.0, 1e-12);
  Tensor loss2 = SumSquares(x);
  Backward(loss2);  // accumulates
  EXPECT_NEAR(x.grad()(0, 0), 8.0, 1e-12);
  x.ZeroGrad();
  EXPECT_EQ(x.grad()(0, 0), 0.0);
}

TEST(AutogradTest, DetachBlocksGradient) {
  Tensor x = Tensor::Variable(Matrix(2, 2, 1.5));
  Tensor loss = ReduceSum(Mul(Detach(x), x));
  Backward(loss);
  // d/dx (c * x) = c = 1.5 (no second pathway through the detached copy).
  EXPECT_NEAR(x.grad()(0, 0), 1.5, 1e-12);
}

TEST(AutogradTest, ConstantsNeverGetGradients) {
  Tensor c = Tensor::Constant(Matrix(2, 2, 1.0));
  Tensor x = Tensor::Variable(Matrix(2, 2, 1.0));
  Tensor loss = ReduceSum(Mul(c, x));
  Backward(loss);
  EXPECT_TRUE(c.grad().empty());
  EXPECT_FALSE(x.grad().empty());
}

TEST(AutogradTest, DiamondGraphGradientCorrect) {
  // loss = sum((x + x) * x) = sum(2 x^2) -> d/dx = 4x.
  Tensor x = Tensor::Variable(Matrix(1, 1, 3.0));
  Tensor loss = ReduceSum(Mul(Add(x, x), x));
  Backward(loss);
  EXPECT_NEAR(x.grad()(0, 0), 12.0, 1e-12);
}

TEST(AutogradTest, DropoutScalesByKeepProbability) {
  Rng rng(1);
  Tensor x = Tensor::Variable(Matrix(200, 10, 1.0));
  Tensor y = Dropout(x, 0.5, &rng);
  // Inverted dropout preserves the mean.
  Real mean = 0.0;
  for (Index i = 0; i < y.value().size(); ++i) mean += y.value().data()[i];
  mean /= y.value().size();
  EXPECT_NEAR(mean, 1.0, 0.1);
  // Gradient flows only through kept entries, scaled by 1/keep.
  Backward(ReduceSum(y));
  for (Index i = 0; i < x.grad().size(); ++i) {
    const Real g = x.grad().data()[i];
    EXPECT_TRUE(g == 0.0 || std::abs(g - 2.0) < 1e-12);
  }
}

TEST(AutogradTest, XavierInitBounds) {
  Rng rng(5);
  const Matrix m = XavierUniform(50, 30, &rng);
  const Real limit = std::sqrt(6.0 / 80.0);
  for (Index i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::abs(m.data()[i]), limit);
  }
}

}  // namespace
}  // namespace firzen
