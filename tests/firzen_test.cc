// Firzen core tests: frozen graph construction semantics, SAHGL/MSHGL
// component behaviour, the strict-cold inference invariants (Eqs. 34-35),
// discriminator/losses machinery, beta momentum updates, and ablation gates.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "src/core/discriminator.h"
#include "src/core/firzen_model.h"
#include "src/core/frozen_graphs.h"
#include "src/core/losses.h"
#include "src/data/synthetic.h"
#include "src/util/logging.h"

namespace firzen {
namespace {

const Dataset& TinyDataset() {
  static const Dataset* dataset = [] {
    return new Dataset(GenerateSyntheticDataset(BeautySConfig(0.18)));
  }();
  return *dataset;
}

TrainOptions TinyTrainOptions() {
  TrainOptions options;
  options.embedding_dim = 16;
  options.epochs = 6;
  options.eval_every = 3;
  options.batch_size = 256;
  options.patience = 10;
  options.seed = 31;
  return options;
}

TEST(FrozenGraphsTest, TrainingItemGraphsExcludeColdItems) {
  const Dataset& dataset = TinyDataset();
  FrozenGraphOptions options;
  const FrozenGraphs graphs = BuildTrainGraphs(dataset, options);
  ASSERT_EQ(graphs.item_item.size(), dataset.modalities.size());
  for (const auto& graph : graphs.item_item) {
    for (Index r = 0; r < graph->rows(); ++r) {
      const bool row_cold = dataset.is_cold_item[static_cast<size_t>(r)];
      if (row_cold) {
        EXPECT_EQ(graph->RowNnz(r), 0);
      }
      for (Index p = graph->row_ptr()[r]; p < graph->row_ptr()[r + 1]; ++p) {
        const Index c = graph->col_idx()[static_cast<size_t>(p)];
        EXPECT_FALSE(dataset.is_cold_item[static_cast<size_t>(c)]);
      }
    }
  }
}

TEST(FrozenGraphsTest, InferenceGraphsApplyEq34Mask) {
  const Dataset& dataset = TinyDataset();
  FrozenGraphOptions options;
  const FrozenGraphs train = BuildTrainGraphs(dataset, options);
  const FrozenGraphs inference =
      BuildInferenceGraphs(dataset, options, train);
  for (const auto& graph : inference.item_item) {
    Index cold_rows_with_edges = 0;
    for (Index r = 0; r < graph->rows(); ++r) {
      const bool row_warm = !dataset.is_cold_item[static_cast<size_t>(r)];
      if (!row_warm && graph->RowNnz(r) > 0) ++cold_rows_with_edges;
      for (Index p = graph->row_ptr()[r]; p < graph->row_ptr()[r + 1]; ++p) {
        const Index c = graph->col_idx()[static_cast<size_t>(p)];
        const bool col_cold = dataset.is_cold_item[static_cast<size_t>(c)];
        // Eq. 34: warm rows never aggregate from cold columns.
        EXPECT_FALSE(row_warm && col_cold);
      }
    }
    // Cold items DO receive edges (that is the whole point).
    EXPECT_GT(cold_rows_with_edges, 0);
  }
}

TEST(FrozenGraphsTest, NormalColdLinksEnterInteractionGraph) {
  Dataset dataset = TinyDataset();
  // Fabricate one revealed link for a cold item.
  const Index cold_item = dataset.ColdItems().front();
  dataset.cold_known = {{0, cold_item}};
  FrozenGraphOptions options;
  const FrozenGraphs train = BuildTrainGraphs(dataset, options);
  const FrozenGraphs inference =
      BuildInferenceGraphs(dataset, options, train, dataset.cold_known);
  // The cold item now has degree in the interaction graph.
  EXPECT_GT(inference.interaction->RowNnz(dataset.num_users + cold_item), 0);
  EXPECT_EQ(train.interaction->RowNnz(dataset.num_users + cold_item), 0);
}

TEST(DiscriminatorTest, OutputsProbabilitiesAndClips) {
  Rng rng(3);
  Discriminator::Options options;
  options.weight_clip = 0.1;
  Discriminator d(8, options, &rng);
  Matrix x(16, 8);
  x.FillNormal(&rng, 1.0);
  Tensor out = d.Forward(Tensor::Constant(x), &rng, /*training=*/false);
  ASSERT_EQ(out.rows(), 16);
  ASSERT_EQ(out.cols(), 1);
  for (Index r = 0; r < 16; ++r) {
    EXPECT_GT(out.value()(r, 0), 0.0);
    EXPECT_LT(out.value()(r, 0), 1.0);
  }
  d.ClipWeights();
  for (const Tensor& p : d.Params()) {
    if (p.rows() <= 1) continue;  // biases/BN params not clipped
    for (Index i = 0; i < p.value().size(); ++i) {
      EXPECT_LE(std::abs(p.value().data()[i]), 0.1 + 1e-12);
    }
  }
}

TEST(LossesTest, AugmentedBlockRowsNearSoftmax) {
  std::vector<std::unordered_set<Index>> train_sets(4);
  train_sets[0] = {1, 2};
  train_sets[1] = {0};
  Rng rng(5);
  const Matrix block = BuildAugmentedBlock(
      {0, 1}, {0, 1, 2}, train_sets, Matrix(), Matrix(),
      /*temperature=*/0.5, /*aux_gamma=*/0.0, &rng);
  ASSERT_EQ(block.rows(), 2);
  ASSERT_EQ(block.cols(), 3);
  for (Index r = 0; r < 2; ++r) {
    Real sum = 0.0;
    for (Index c = 0; c < 3; ++c) {
      EXPECT_GE(block(r, c), 0.0);
      sum += block(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);  // softmax rows, gamma = 0
  }
}

TEST(LossesTest, ContrastiveLossFiniteAndLowerForAligned) {
  Rng rng(7);
  Matrix aligned(8, 6);
  aligned.FillNormal(&rng, 1.0);
  Tensor a = Tensor::Constant(aligned);
  Tensor same = Tensor::Constant(aligned);
  Matrix other(8, 6);
  other.FillNormal(&rng, 1.0);
  Tensor b = Tensor::Constant(other);
  const Real loss_aligned = ModalContrastiveLoss(a, same).scalar();
  const Real loss_misaligned = ModalContrastiveLoss(a, b).scalar();
  EXPECT_TRUE(std::isfinite(loss_aligned));
  EXPECT_LT(loss_aligned, loss_misaligned);
}

class FirzenFixture : public ::testing::Test {
 protected:
  static FirzenModel* TrainedModel() {
    static FirzenModel* model = [] {
      SetLogLevel(LogLevel::kError);
      auto* m = new FirzenModel();
      m->Fit(TinyDataset(), TinyTrainOptions());
      return m;
    }();
    return model;
  }
};

TEST_F(FirzenFixture, BetasStayNormalized) {
  const auto& betas = TrainedModel()->betas();
  ASSERT_EQ(betas.size(), 2u);
  Real sum = 0.0;
  for (Real b : betas) {
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
    sum += b;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST_F(FirzenFixture, ColdInferenceFiresColdItems) {
  FirzenModel* model = TrainedModel();
  model->PrepareColdInference(TinyDataset());
  const Matrix emb = model->ItemEmbeddings();
  // Every strict cold item has a non-trivial representation after the
  // warm->cold homogeneous transfer.
  for (Index item : TinyDataset().ColdItems()) {
    Real norm = 0.0;
    for (Index c = 0; c < emb.cols(); ++c) {
      norm += emb(item, c) * emb(item, c);
    }
    EXPECT_GT(norm, 1e-12) << "cold item " << item << " not fired";
  }
}

TEST_F(FirzenFixture, InferenceGatesChangeRepresentations) {
  FirzenModel* model = TrainedModel();
  FirzenOptions all = model->options();
  model->RecomputeFinal(TinyDataset(), all, /*cold_expanded=*/false);
  const Matrix with_all = model->ItemEmbeddings();
  FirzenOptions no_text = all;
  no_text.use_text = false;
  model->RecomputeFinal(TinyDataset(), no_text, /*cold_expanded=*/false);
  const Matrix without_text = model->ItemEmbeddings();
  Real diff = 0.0;
  for (Index i = 0; i < with_all.size(); ++i) {
    diff += std::abs(with_all.data()[i] - without_text.data()[i]);
  }
  EXPECT_GT(diff, 1e-9);
}

class AblationTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AblationTest, VariantTrainsAndScores) {
  SetLogLevel(LogLevel::kError);
  FirzenOptions options;
  const std::string variant = GetParam();
  if (variant == "no_ba") options.use_behavior = false;
  if (variant == "no_ka") options.use_knowledge = false;
  if (variant == "no_ma") options.use_modality = false;
  if (variant == "no_ms") options.use_mshgl = false;
  FirzenModel model(options);
  TrainOptions train = TinyTrainOptions();
  train.epochs = 3;
  model.Fit(TinyDataset(), train);
  Matrix scores;
  model.Score({0, 1}, &scores);
  for (Index i = 0; i < scores.size(); ++i) {
    ASSERT_TRUE(std::isfinite(scores.data()[i])) << variant;
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, AblationTest,
                         ::testing::Values("no_ba", "no_ka", "no_ma",
                                           "no_ms"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(DynamicGraphAblationTest, LatticeStyleVariantTrainsAndDiffers) {
  SetLogLevel(LogLevel::kError);
  TrainOptions train = TinyTrainOptions();
  train.epochs = 4;
  FirzenOptions frozen_options;
  FirzenModel frozen(frozen_options);
  frozen.Fit(TinyDataset(), train);
  FirzenOptions dynamic_options;
  dynamic_options.dynamic_item_graphs = true;
  FirzenModel dynamic(dynamic_options);
  dynamic.Fit(TinyDataset(), train);
  // Both train to a usable state...
  Matrix frozen_scores;
  Matrix dynamic_scores;
  frozen.Score({0}, &frozen_scores);
  dynamic.Score({0}, &dynamic_scores);
  // ...and the per-epoch graph refresh actually changes the model.
  Real diff = 0.0;
  for (Index i = 0; i < frozen_scores.size(); ++i) {
    diff += std::abs(frozen_scores.data()[i] - dynamic_scores.data()[i]);
  }
  EXPECT_GT(diff, 1e-9);
}

TEST(EarlyStopperTest, PatienceSemantics) {
  EarlyStopper stopper(2);
  EXPECT_FALSE(stopper.Update(0.5));  // best so far
  EXPECT_TRUE(stopper.improved());
  EXPECT_FALSE(stopper.Update(0.4));  // strike 1
  EXPECT_FALSE(stopper.improved());
  EXPECT_FALSE(stopper.Update(0.4));  // strike 2
  EXPECT_TRUE(stopper.Update(0.3));   // strike 3 > patience -> stop
  // Improvement resets strikes.
  EarlyStopper fresh(1);
  EXPECT_FALSE(fresh.Update(0.1));
  EXPECT_FALSE(fresh.Update(0.05));
  EXPECT_FALSE(fresh.Update(0.2));  // new best
  EXPECT_FALSE(fresh.Update(0.1));
  EXPECT_TRUE(fresh.Update(0.1));
  EXPECT_DOUBLE_EQ(fresh.best(), 0.2);
}

}  // namespace
}  // namespace firzen
