// QuantizedMatrix / GemmBTQuant unit suite: the quantization edge cases
// (all-zero rows, int8 saturation, non-finite rejection, thread-count-
// invariant builds), the rounding contract (lround half-away-from-zero),
// and kernel exactness — GemmBTQuant must match a plainly written int32
// reference BIT FOR BIT on whatever SIMD tier dispatch picked, because the
// int32 accumulation is exact and the dequant epilogue is written once.
// Running this suite under FIRZEN_SIMD=scalar (tools/run_checks.sh --simd
// scalar) turns the same assertions into the scalar-reference check, so
// every tier is pinned against the same oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "src/tensor/matrix.h"
#include "src/tensor/quantized.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace firzen {
namespace {

Matrix RandomEmb(Index rows, Index cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  m.FillNormal(&rng, 1.0);
  return m;
}

// The reference scorer: plain int32 loops plus the documented epilogue
// association Real(acc) * Real(a_scale) * Real(b_scale). GemmBTQuant output
// must equal this exactly on every tier.
Real RefQuantScore(const int8_t* a_row, float a_scale, const int8_t* b_row,
                   float b_scale, Index k) {
  int32_t acc = 0;
  for (Index p = 0; p < k; ++p) {
    acc += static_cast<int32_t>(a_row[p]) * static_cast<int32_t>(b_row[p]);
  }
  return static_cast<Real>(acc) * static_cast<Real>(a_scale) *
         static_cast<Real>(b_scale);
}

TEST(QuantizedMatrixTest, RepresentationBasics) {
  const Matrix m = RandomEmb(11, 24, 7);
  const QuantizedMatrix q = QuantizedMatrix::FromMatrix(m);
  EXPECT_EQ(q.rows(), 11);
  EXPECT_EQ(q.cols(), 24);
  // Stride rounds up to the 64-element pad grid and the pad is zero.
  EXPECT_EQ(q.stride(), 64);
  for (Index r = 0; r < q.rows(); ++r) {
    for (Index c = q.cols(); c < q.stride(); ++c) {
      EXPECT_EQ(q.row(r)[c], 0) << "pad row " << r << " col " << c;
    }
    // Codes are symmetric int8: never -128.
    int32_t sum = 0;
    Index max_code = 0;
    for (Index c = 0; c < q.cols(); ++c) {
      EXPECT_GE(q.row(r)[c], -127);
      sum += q.row(r)[c];
      max_code = std::max<Index>(max_code, std::abs(q.row(r)[c]));
    }
    // Per-row symmetric scaling puts the row's max-magnitude element at
    // exactly +/-127.
    EXPECT_EQ(max_code, 127) << "row " << r;
    EXPECT_EQ(q.row_sum(r), sum) << "row " << r;
    EXPECT_GT(q.scale(r), 0.0f) << "row " << r;
  }
}

TEST(QuantizedMatrixTest, AllZeroRowGetsScaleZeroAndScoresZero) {
  Matrix m = RandomEmb(4, 16, 11);
  for (Index c = 0; c < m.cols(); ++c) m(2, c) = 0.0;
  const QuantizedMatrix q = QuantizedMatrix::FromMatrix(m);
  EXPECT_EQ(q.scale(2), 0.0f);
  EXPECT_EQ(q.row_sum(2), 0);
  for (Index c = 0; c < q.stride(); ++c) EXPECT_EQ(q.row(2)[c], 0);

  // Scoring against the zero row produces exact 0.0, never NaN/Inf from a
  // divided-by-zero scale.
  std::vector<int8_t> user(static_cast<size_t>(q.stride()), 0);
  float user_scale = 0.0f;
  const Matrix u = RandomEmb(1, 16, 12);
  QuantizeRow(u.row(0), 16, q.stride(), user.data(), &user_scale);
  Matrix out(1, 4);
  GemmBTQuant(user.data(), 1, 16, q.stride(), &user_scale, q, 0, 4,
              MatrixView(&out));
  EXPECT_EQ(out(0, 2), 0.0);
  EXPECT_TRUE(std::isfinite(out(0, 0)));
}

TEST(QuantizedMatrixTest, SubnormalMaxRowDegradesToZeroRowNotInf) {
  Matrix m(2, 8, 0.0);
  m(0, 3) = std::numeric_limits<Real>::denorm_min();  // 127/x overflows
  m(1, 1) = 1.0;
  const QuantizedMatrix q = QuantizedMatrix::FromMatrix(m);
  EXPECT_EQ(q.scale(0), 0.0f);
  for (Index c = 0; c < q.stride(); ++c) EXPECT_EQ(q.row(0)[c], 0);
}

TEST(QuantizedMatrixTest, ExtremesSaturateSymmetrically) {
  Matrix m(1, 4, 0.0);
  m(0, 0) = 3.0;
  m(0, 1) = -3.0;
  m(0, 2) = 1.5;
  m(0, 3) = -0.1;
  const QuantizedMatrix q = QuantizedMatrix::FromMatrix(m);
  EXPECT_EQ(q.row(0)[0], 127);
  EXPECT_EQ(q.row(0)[1], -127);  // symmetric: the negative extreme is -127
  EXPECT_EQ(q.row(0)[2], 64)
      << "1.5 * (127/3) = 63.5 rounds half away from zero";
  EXPECT_FLOAT_EQ(q.scale(0), static_cast<float>(3.0 / 127.0));
}

TEST(QuantizedMatrixTest, RoundsHalfAwayFromZeroBothSigns) {
  // max_abs = 254 makes inv exactly 0.5: +/-1 land exactly on +/-0.5.
  Matrix m(1, 4, 0.0);
  m(0, 0) = 254.0;
  m(0, 1) = 1.0;
  m(0, 2) = -1.0;
  m(0, 3) = 3.0;
  const QuantizedMatrix q = QuantizedMatrix::FromMatrix(m);
  EXPECT_EQ(q.row(0)[1], 1);    // 0.5 -> 1 (away from zero, not to-even 0)
  EXPECT_EQ(q.row(0)[2], -1);   // -0.5 -> -1
  EXPECT_EQ(q.row(0)[3], 2);    // 1.5 -> 2
}

TEST(QuantizedMatrixDeathTest, NonFiniteInputRejectedWithClearError) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Matrix nan_m = RandomEmb(3, 8, 13);
  nan_m(1, 4) = std::numeric_limits<Real>::quiet_NaN();
  EXPECT_DEATH(QuantizedMatrix::FromMatrix(nan_m), "non-finite");
  Matrix inf_m = RandomEmb(3, 8, 14);
  inf_m(2, 0) = std::numeric_limits<Real>::infinity();
  EXPECT_DEATH(QuantizedMatrix::FromMatrix(inf_m), "non-finite");
}

TEST(QuantizedMatrixTest, BuildIsBitIdenticalAcrossThreadCounts) {
  const Matrix m = RandomEmb(301, 48, 21);
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const QuantizedMatrix a = QuantizedMatrix::FromMatrix(m, &pool1);
  const QuantizedMatrix b = QuantizedMatrix::FromMatrix(m, &pool4);
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.stride(), b.stride());
  for (Index r = 0; r < a.rows(); ++r) {
    EXPECT_EQ(a.scale(r), b.scale(r)) << "row " << r;
    EXPECT_EQ(a.row_sum(r), b.row_sum(r)) << "row " << r;
    for (Index c = 0; c < a.stride(); ++c) {
      ASSERT_EQ(a.row(r)[c], b.row(r)[c]) << "row " << r << " col " << c;
    }
  }
}

TEST(QuantizedMatrixTest, FootprintIsRoughlyQuarterOfTheRealTable) {
  const Index rows = 512, cols = 64;
  const Matrix m = RandomEmb(rows, cols, 31);
  const QuantizedMatrix q = QuantizedMatrix::FromMatrix(m);
  const size_t real_bytes =
      static_cast<size_t>(rows) * static_cast<size_t>(cols) * sizeof(Real);
  // The ISSUE floor is ~4x vs an fp32 table; with Real = double the codes
  // shrink 8x and the per-row scale + sum overhead still leaves > 4x.
  EXPECT_GE(static_cast<double>(real_bytes) /
                static_cast<double>(q.byte_size()),
            4.0);
}

TEST(GemmBTQuantTest, MatchesInt32ReferenceBitExactOnDispatchedTier) {
  // Odd dims exercise the zero pad; m spans 1 to past the fp32 dispatch
  // cutoffs (irrelevant here, but the serving shapes are the same).
  for (const Index k : {Index{8}, Index{37}, Index{64}, Index{100}}) {
    const Index n = 157;
    const QuantizedMatrix items =
        QuantizedMatrix::FromMatrix(RandomEmb(n, k, 41 + k));
    for (const Index m : {Index{1}, Index{5}, Index{40}}) {
      const Matrix users = RandomEmb(m, k, 77 + m);
      std::vector<int8_t> a(static_cast<size_t>(m * items.stride()));
      std::vector<float> a_scales(static_cast<size_t>(m));
      for (Index r = 0; r < m; ++r) {
        QuantizeRow(users.row(r), k, items.stride(),
                    a.data() + r * items.stride(),
                    &a_scales[static_cast<size_t>(r)]);
      }
      Matrix out(m, n);
      GemmBTQuant(a.data(), m, k, items.stride(), a_scales.data(), items, 0,
                  n, MatrixView(&out));
      for (Index i = 0; i < m; ++i) {
        for (Index j = 0; j < n; ++j) {
          const Real want = RefQuantScore(
              a.data() + i * items.stride(), a_scales[static_cast<size_t>(i)],
              items.row(j), items.scale(j), k);
          ASSERT_EQ(out(i, j), want)
              << "tier=" << SimdTierName(DispatchedSimdTier()) << " k=" << k
              << " m=" << m << " cell (" << i << "," << j << ")";
        }
      }
    }
  }
}

TEST(GemmBTQuantTest, BlockPartitioningAndPoolSizeNeverChangeBits) {
  const Index k = 24, n = 203, m = 7;
  const QuantizedMatrix items = QuantizedMatrix::FromMatrix(RandomEmb(n, k, 3));
  const Matrix users = RandomEmb(m, k, 4);
  std::vector<int8_t> a(static_cast<size_t>(m * items.stride()));
  std::vector<float> a_scales(static_cast<size_t>(m));
  for (Index r = 0; r < m; ++r) {
    QuantizeRow(users.row(r), k, items.stride(), a.data() + r * items.stride(),
                &a_scales[static_cast<size_t>(r)]);
  }
  ThreadPool pool1(1);
  Matrix want(m, n);
  GemmBTQuant(a.data(), m, k, items.stride(), a_scales.data(), items, 0, n,
              MatrixView(&want), &pool1);

  ThreadPool pool4(4);
  for (const Index block : {Index{1}, Index{13}, Index{64}, n}) {
    Matrix got(m, n);
    for (Index begin = 0; begin < n; begin += block) {
      const Index size = std::min(block, n - begin);
      GemmBTQuant(a.data(), m, k, items.stride(), a_scales.data(), items,
                  begin, size, MatrixView::Columns(&got, begin, size), &pool4);
    }
    for (Index i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got.data()[i], want.data()[i]) << "block=" << block;
    }
  }
}

TEST(SimdDispatchTest, TierNameAndOverrideContract) {
  const SimdTier tier = DispatchedSimdTier();
  const std::string name = SimdTierName(tier);
  EXPECT_TRUE(name == "scalar" || name == "avx2" || name == "avx512") << name;
  // The FIRZEN_SIMD override caps the tier; when the harness forces scalar
  // (tools/run_checks.sh --simd scalar) the pin must have taken.
  const char* forced = std::getenv("FIRZEN_SIMD");
  if (forced != nullptr && std::string(forced) == "scalar") {
    EXPECT_EQ(tier, SimdTier::kScalar);
  }
  // Pinned for the process lifetime.
  EXPECT_EQ(DispatchedSimdTier(), tier);
}

}  // namespace
}  // namespace firzen
