// Graph construction tests: interaction graph normalization, kNN item-item
// graphs (Eqs. 1-3), user-user co-occurrence (Eq. 4), collaborative KG
// alignment, and the strict-cold inference mask (Eqs. 34-35).
#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/cold_mask.h"
#include "src/graph/collaborative_kg.h"
#include "src/graph/cooccurrence_graph.h"
#include "src/graph/interaction_graph.h"
#include "src/graph/knn_graph.h"

namespace firzen {
namespace {

std::vector<Interaction> TinyInteractions() {
  // users 0..2, items 0..3.
  return {{0, 0}, {0, 1}, {1, 1}, {1, 2}, {2, 1}, {2, 3}};
}

TEST(InteractionGraphTest, SymmetricAndNormalized) {
  const CsrMatrix g = BuildNormalizedInteractionGraph(TinyInteractions(), 3, 4);
  EXPECT_EQ(g.rows(), 7);
  const Matrix dense = g.ToDense();
  for (Index r = 0; r < 7; ++r) {
    for (Index c = 0; c < 7; ++c) {
      EXPECT_NEAR(dense(r, c), dense(c, r), 1e-12);
    }
  }
  // user 0 (deg 2) - item 1 (deg 3): weight = 1/sqrt(6).
  EXPECT_NEAR(dense(0, 3 + 1), 1.0 / std::sqrt(6.0), 1e-12);
  // No user-user or item-item blocks.
  EXPECT_EQ(dense(0, 1), 0.0);
  EXPECT_EQ(dense(4, 5), 0.0);
}

TEST(InteractionGraphTest, StrictColdItemHasZeroDegree) {
  // Item 3 never interacted.
  const CsrMatrix g = BuildNormalizedInteractionGraph(
      {{0, 0}, {1, 1}, {2, 2}}, 3, 4);
  EXPECT_EQ(g.RowNnz(3 + 3), 0);
  // Propagation leaves its row at zero.
  Matrix x(7, 2, 1.0);
  Matrix y;
  g.SpMM(x, &y);
  EXPECT_EQ(y(6, 0), 0.0);
}

TEST(InteractionGraphTest, DuplicateInteractionsBinarized) {
  const CsrMatrix a = BuildNormalizedInteractionGraph({{0, 0}, {0, 0}}, 1, 1);
  const CsrMatrix b = BuildNormalizedInteractionGraph({{0, 0}}, 1, 1);
  EXPECT_NEAR(a.ToDense()(0, 1), b.ToDense()(0, 1), 1e-12);
}

TEST(InteractionGraphTest, UserToItemRowsScaleAsInvSqrtDegree) {
  const CsrMatrix u2i = BuildUserToItemGraph(TinyInteractions(), 3, 4);
  EXPECT_EQ(u2i.rows(), 3);
  EXPECT_EQ(u2i.cols(), 4);
  // user 0 has degree 2 -> each weight 1/sqrt(2).
  const Matrix dense = u2i.ToDense();
  EXPECT_NEAR(dense(0, 0), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(dense(0, 1), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(InteractionGraphTest, EdgeDropoutReducesEdges) {
  Rng rng(3);
  const CsrMatrix full =
      BuildNormalizedInteractionGraph(TinyInteractions(), 3, 4);
  const CsrMatrix dropped = BuildDroppedInteractionGraph(
      TinyInteractions(), 3, 4, /*drop_rate=*/0.99, &rng);
  EXPECT_LT(dropped.nnz(), full.nnz());
}

TEST(KnnGraphTest, TopKDegreeAndNoSelfLoops) {
  Rng rng(5);
  Matrix features(20, 8);
  features.FillNormal(&rng, 1.0);
  KnnGraphOptions options;
  options.top_k = 4;
  const CsrMatrix adj = BuildItemKnnAdjacency(features, options);
  for (Index r = 0; r < 20; ++r) {
    EXPECT_EQ(adj.RowNnz(r), 4);
    for (Index p = adj.row_ptr()[r]; p < adj.row_ptr()[r + 1]; ++p) {
      EXPECT_NE(adj.col_idx()[static_cast<size_t>(p)], r);
    }
  }
}

TEST(KnnGraphTest, NeighborsAreActuallyNearest) {
  // Two well-separated clusters: neighbors must stay within a cluster.
  Matrix features(10, 2);
  for (Index i = 0; i < 5; ++i) {
    features(i, 0) = 10.0 + 0.1 * i;
    features(i, 1) = 10.0;
  }
  for (Index i = 5; i < 10; ++i) {
    features(i, 0) = -10.0 - 0.1 * i;
    features(i, 1) = 5.0;
  }
  KnnGraphOptions options;
  options.top_k = 3;
  const CsrMatrix adj = BuildItemKnnAdjacency(features, options);
  for (Index r = 0; r < 10; ++r) {
    for (Index p = adj.row_ptr()[r]; p < adj.row_ptr()[r + 1]; ++p) {
      const Index n = adj.col_idx()[static_cast<size_t>(p)];
      EXPECT_EQ(r < 5, n < 5) << "cross-cluster edge " << r << "->" << n;
    }
  }
}

TEST(KnnGraphTest, CandidateRestrictionExcludesColdItems) {
  Rng rng(6);
  Matrix features(12, 4);
  features.FillNormal(&rng, 1.0);
  KnnGraphOptions options;
  options.top_k = 3;
  options.candidate_items = {0, 1, 2, 3, 4, 5};  // "warm" half
  options.query_items = options.candidate_items;
  const CsrMatrix adj = BuildItemKnnAdjacency(features, options);
  for (Index r = 0; r < 12; ++r) {
    if (r >= 6) {
      EXPECT_EQ(adj.RowNnz(r), 0);
    }
    for (Index p = adj.row_ptr()[r]; p < adj.row_ptr()[r + 1]; ++p) {
      EXPECT_LT(adj.col_idx()[static_cast<size_t>(p)], 6);
    }
  }
}

TEST(KnnGraphTest, NormalizedGraphHasSymmetricScaling) {
  Rng rng(7);
  Matrix features(15, 4);
  features.FillNormal(&rng, 1.0);
  KnnGraphOptions options;
  options.top_k = 3;
  const CsrMatrix g = BuildItemItemGraph(features, options);
  // All values in (0, 1].
  for (Real v : g.values()) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(CooccurrenceTest, CountsCommonItems) {
  // Users 0 and 1 share items {1}; users 1 and 2 share {1}; 0 and 2 share {1}.
  const CsrMatrix g =
      BuildUserCooccurrenceGraph(TinyInteractions(), 3, 4, /*top_k=*/5);
  const Matrix dense = g.ToDense();
  EXPECT_DOUBLE_EQ(dense(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(dense(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(dense(0, 0), 0.0);  // no self loops
}

TEST(CooccurrenceTest, TopKLimitsNeighbors) {
  std::vector<Interaction> interactions;
  // Star: item 0 interacted by all 8 users -> everyone co-occurs with all.
  for (Index u = 0; u < 8; ++u) interactions.push_back({u, 0});
  const CsrMatrix g = BuildUserCooccurrenceGraph(interactions, 8, 1, 3);
  for (Index r = 0; r < 8; ++r) {
    EXPECT_LE(g.RowNnz(r), 3);
  }
}

TEST(CollaborativeKgTest, AlignmentAndReverseEdges) {
  KnowledgeGraph kg;
  kg.num_items = 2;
  kg.num_entities = 4;  // items 0-1, entities 2-3
  kg.num_relations = 2;
  kg.triplets = {{0, 0, 2}, {1, 1, 3}};
  const CollaborativeKg ckg =
      BuildCollaborativeKg({{0, 0}, {1, 1}}, /*num_users=*/2, kg);
  EXPECT_EQ(ckg.num_entities, 6);          // 4 + 2 users
  EXPECT_EQ(ckg.num_relations, 2 * (2 + 1));  // fw + interact + reverses
  EXPECT_EQ(ckg.UserEntity(0), 4);
  EXPECT_EQ(ckg.InteractRelation(), 2);
  // Each KG triplet and each interaction contribute forward + reverse.
  EXPECT_EQ(static_cast<Index>(ckg.triplets.size()), 2 * (2 + 2));
  // Storage alignment: edge_relation[p] must match triplets[p].
  ASSERT_EQ(ckg.topology.nnz(),
            static_cast<Index>(ckg.edge_relation.size()));
  Index p = 0;
  for (Index h = 0; h < ckg.num_entities; ++h) {
    for (Index q = ckg.topology.row_ptr()[h];
         q < ckg.topology.row_ptr()[h + 1]; ++q, ++p) {
      EXPECT_EQ(ckg.triplets[static_cast<size_t>(p)].head, h);
      EXPECT_EQ(ckg.triplets[static_cast<size_t>(p)].tail,
                ckg.topology.col_idx()[static_cast<size_t>(q)]);
      EXPECT_EQ(ckg.triplets[static_cast<size_t>(p)].relation,
                ckg.edge_relation[static_cast<size_t>(p)]);
    }
  }
}

TEST(ColdMaskTest, RemovesExactlyWarmToColdEdges) {
  // Full 4x4 adjacency minus diagonal.
  std::vector<CooEntry> entries;
  for (Index r = 0; r < 4; ++r) {
    for (Index c = 0; c < 4; ++c) {
      if (r != c) entries.push_back({r, c, 1.0});
    }
  }
  const CsrMatrix adj = CsrMatrix::FromCoo(4, 4, entries);
  const std::vector<bool> is_cold{false, false, true, true};
  const CsrMatrix masked = ApplyColdStartMask(adj, is_cold);
  const Matrix dense = masked.ToDense();
  for (Index r = 0; r < 4; ++r) {
    for (Index c = 0; c < 4; ++c) {
      if (r == c) continue;
      const bool warm_to_cold = !is_cold[static_cast<size_t>(r)] &&
                                is_cold[static_cast<size_t>(c)];
      EXPECT_EQ(dense(r, c) != 0.0, !warm_to_cold)
          << "edge " << r << "->" << c;
    }
  }
}

TEST(ColdMaskTest, ColdRowsStillReceiveFromWarm) {
  std::vector<CooEntry> entries{{2, 0, 1.0}, {0, 2, 1.0}};
  const CsrMatrix adj = CsrMatrix::FromCoo(3, 3, entries);
  const std::vector<bool> is_cold{false, false, true};
  const CsrMatrix masked = ApplyColdStartMask(adj, is_cold);
  EXPECT_EQ(masked.RowNnz(2), 1);  // cold aggregates from warm
  EXPECT_EQ(masked.RowNnz(0), 0);  // warm no longer sees cold
}

}  // namespace
}  // namespace firzen
