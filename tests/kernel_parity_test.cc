// Parity tests for the parallel blocked kernel layer: Gemm, SpMM/SpMMT and
// heap Top-K against naive single-threaded references, across odd shapes
// (1xN, Nx1, non-multiple-of-tile dims, empty sparse rows) and pool sizes
// {1, 4}. The blocked kernels accumulate every output element as a straight
// k-ordered sum, so agreement is expected to be bit-identical; the asserts
// below use exact equality where the reference follows the same summation
// order and a tight tolerance elsewhere.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "src/eval/topk.h"
#include "src/tensor/csr.h"
#include "src/tensor/matrix.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace firzen {
namespace {

Matrix RandomMatrix(Index rows, Index cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  m.FillNormal(&rng, 1.0);
  return m;
}

Matrix NaiveGemm(bool trans_a, bool trans_b, Real alpha, const Matrix& a,
                 const Matrix& b, Real beta, const Matrix& c_in) {
  const Index m = trans_a ? a.cols() : a.rows();
  const Index k = trans_a ? a.rows() : a.cols();
  const Index n = trans_b ? b.rows() : b.cols();
  Matrix c(m, n);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      Real acc = 0.0;
      for (Index p = 0; p < k; ++p) {
        const Real av = trans_a ? a(p, i) : a(i, p);
        const Real bv = trans_b ? b(j, p) : b(p, j);
        acc += av * bv;
      }
      c(i, j) = alpha * acc + (beta == 0.0 ? 0.0 : beta * c_in(i, j));
    }
  }
  return c;
}

// Shapes chosen to exercise every kernel edge: vectors, single elements,
// dims straddling the 4-row micro-tile, the small-m dot path for trans_b,
// and n past the 512-wide cache block (so multi-block column offsets are
// covered).
struct GemmShape {
  Index m, k, n;
};

const GemmShape kGemmShapes[] = {
    {1, 1, 1},    {1, 5, 1},      {5, 1, 7},    {1, 17, 9},   {4, 8, 8},
    {5, 9, 17},   {64, 33, 7},    {13, 64, 65}, {31, 7, 258}, {129, 16, 300},
    {9, 37, 1300}, {33, 24, 1025},
};

TEST(KernelParityTest, GemmMatchesNaiveAcrossShapesAndPools) {
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  for (const GemmShape& shape : kGemmShapes) {
    for (bool trans_a : {false, true}) {
      for (bool trans_b : {false, true}) {
        const Matrix a = trans_a ? RandomMatrix(shape.k, shape.m, 1)
                                 : RandomMatrix(shape.m, shape.k, 1);
        const Matrix b = trans_b ? RandomMatrix(shape.n, shape.k, 2)
                                 : RandomMatrix(shape.k, shape.n, 2);
        const Matrix expected = NaiveGemm(trans_a, trans_b, 1.0, a, b, 0.0,
                                          Matrix());
        Matrix got1;
        Gemm(trans_a, trans_b, 1.0, a, b, 0.0, &got1, &pool1);
        Matrix got4;
        Gemm(trans_a, trans_b, 1.0, a, b, 0.0, &got4, &pool4);
        ASSERT_EQ(got1.rows(), shape.m);
        ASSERT_EQ(got1.cols(), shape.n);
        for (Index i = 0; i < shape.m; ++i) {
          for (Index j = 0; j < shape.n; ++j) {
            ASSERT_NEAR(got1(i, j), expected(i, j), 1e-9)
                << "shape=(" << shape.m << "," << shape.k << "," << shape.n
                << ") trans_a=" << trans_a << " trans_b=" << trans_b;
            // Pool size must not change a single bit.
            ASSERT_EQ(got1(i, j), got4(i, j));
          }
        }
      }
    }
  }
}

TEST(KernelParityTest, GemmAlphaBetaAccumulateMatchesNaive) {
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  // m values on both sides of the small-m trans_b dot-path cutoff, so the
  // beta-accumulate branch of BOTH kernels is covered (MatMul's backward
  // runs trans_b with beta == 1).
  for (const Index m : {7, 40}) {
    for (const bool trans_b : {false, true}) {
      const Matrix a = RandomMatrix(m, 13, 3);
      const Matrix b = trans_b ? RandomMatrix(19, 13, 4)
                               : RandomMatrix(13, 19, 4);
      const Matrix c0 = RandomMatrix(m, 19, 5);
      for (const Real alpha : {1.0, -0.5, 2.0}) {
        for (const Real beta : {1.0, 0.25}) {
          const Matrix expected =
              NaiveGemm(false, trans_b, alpha, a, b, beta, c0);
          Matrix got1 = c0;
          Gemm(false, trans_b, alpha, a, b, beta, &got1, &pool1);
          Matrix got4 = c0;
          Gemm(false, trans_b, alpha, a, b, beta, &got4, &pool4);
          for (Index i = 0; i < got1.rows(); ++i) {
            for (Index j = 0; j < got1.cols(); ++j) {
              ASSERT_NEAR(got1(i, j), expected(i, j), 1e-9)
                  << "m=" << m << " trans_b=" << trans_b
                  << " alpha=" << alpha << " beta=" << beta;
              ASSERT_EQ(got1(i, j), got4(i, j));
            }
          }
        }
      }
    }
  }
}

// Batch-size invariance at the tensor layer: C(i, j) of A * B^T must not
// depend on how many rows A has. Every m below is sliced from the same
// 130-row A, so row r of every result must match row r of the 130-row
// reference bit-for-bit — across the lane-dot path (m <= 8), the
// column-sharded panel path (m <= 32), the row-sharded panel path, ragged
// row tiles (m % 4 != 0), and both pool sizes. This is the kernel half of
// the admission-batching determinism contract (the serving half lives in
// scorer_parity_test and serving_admission_test).
TEST(KernelParityTest, GemmTransBIsBatchSizeInvariant) {
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const Index k = 37;   // odd: exercises vector tails in every path
  const Index n = 1300; // crosses two 512-column panels plus a ragged one
  const Matrix a_full = RandomMatrix(130, k, 91);
  const Matrix b = RandomMatrix(n, k, 92);
  Matrix want;
  Gemm(false, true, 1.0, a_full, b, 0.0, &want, &pool1);

  for (const Index m : {Index{1}, Index{3}, Index{4}, Index{8}, Index{9},
                        kGemmBTColumnShardMaxRows,
                        kGemmBTColumnShardMaxRows + 1, Index{64}, Index{129}}) {
    Matrix a(m, k);
    for (Index i = 0; i < m; ++i) {
      for (Index p = 0; p < k; ++p) a(i, p) = a_full(i, p);
    }
    for (ThreadPool* pool : {&pool1, &pool4}) {
      Matrix got;
      Gemm(false, true, 1.0, a, b, 0.0, &got, pool);
      for (Index i = 0; i < m; ++i) {
        for (Index j = 0; j < n; ++j) {
          ASSERT_EQ(got(i, j), want(i, j))
              << "m=" << m << " pool=" << pool->num_threads();
        }
      }
      // The zero-copy scoring entry point must hold to the same contract.
      Matrix via_bt(m, n);
      GemmBT(a, b.row(0), n, MatrixView(&via_bt), pool);
      for (Index i = 0; i < via_bt.size(); ++i) {
        ASSERT_EQ(via_bt.data()[i], got.data()[i]) << "m=" << m;
      }
    }
  }
}

TEST(KernelParityTest, GemmBTBlockSlicesMatchFullTransB) {
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  // m on both sides of the dot-path cutoff; n past one kNc column panel.
  for (const Index m : {1, 7, 40, 130}) {
    const Index k = 24;
    const Index n = 700;
    const Matrix a = RandomMatrix(m, k, 51);
    const Matrix b = RandomMatrix(n, k, 52);  // item-table layout: n x k
    Matrix expected;
    Gemm(false, true, 1.0, a, b, 0.0, &expected, &pool1);

    // Whole-slice view, both pools: bit-identical to Gemm(trans_b).
    for (ThreadPool* pool : {&pool1, &pool4}) {
      Matrix got(m, n);
      GemmBT(a, b.row(0), n, MatrixView(&got), pool);
      for (Index i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got.data()[i], expected.data()[i]) << "m=" << m;
      }
    }

    // Streamed row-slice blocks written through strided column windows of a
    // wider output: the zero-copy ScoreBlock pattern.
    for (const Index block : {Index{1}, Index{13}, Index{512}, n}) {
      Matrix streamed(m, n);
      for (Index begin = 0; begin < n; begin += block) {
        const Index width = std::min(block, n - begin);
        GemmBT(a, b.row(begin), width,
               MatrixView::Columns(&streamed, begin, width), &pool4);
      }
      for (Index i = 0; i < streamed.size(); ++i) {
        ASSERT_EQ(streamed.data()[i], expected.data()[i])
            << "m=" << m << " block=" << block;
      }
    }
  }
}

// Sparse fixture with interaction-graph shape quirks: empty rows, a dense
// hub row, duplicate-free random tail.
CsrMatrix RandomSparse(Index rows, Index cols, Index degree, uint64_t seed) {
  Rng rng(seed);
  std::vector<CooEntry> entries;
  for (Index r = 0; r < rows; ++r) {
    if (r % 7 == 3) continue;  // empty row
    const Index row_degree = r == 0 ? cols : degree;  // hub row 0
    for (Index d = 0; d < row_degree; ++d) {
      entries.push_back({r, rng.UniformInt(cols), rng.Normal()});
    }
  }
  return CsrMatrix::FromCoo(rows, cols, std::move(entries));
}

Matrix NaiveSpMM(const CsrMatrix& m, const Matrix& x) {
  Matrix y(m.rows(), x.cols());
  for (Index r = 0; r < m.rows(); ++r) {
    for (Index p = m.row_ptr()[r]; p < m.row_ptr()[r + 1]; ++p) {
      const Real v = m.values()[static_cast<size_t>(p)];
      const Real* in = x.row(m.col_idx()[static_cast<size_t>(p)]);
      for (Index c = 0; c < x.cols(); ++c) y(r, c) += v * in[c];
    }
  }
  return y;
}

TEST(KernelParityTest, SpMMMatchesNaiveAcrossShapesAndPools) {
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  struct Shape {
    Index rows, cols, degree, d;
  };
  for (const Shape& s : {Shape{1, 9, 3, 4}, Shape{37, 1, 1, 1},
                         Shape{100, 80, 5, 32}, Shape{513, 200, 7, 3}}) {
    const CsrMatrix graph = RandomSparse(s.rows, s.cols, s.degree, 11);
    const Matrix x = RandomMatrix(s.cols, s.d, 12);
    const Matrix expected = NaiveSpMM(graph, x);
    Matrix got1;
    graph.SpMM(x, &got1, &pool1);
    Matrix got4;
    graph.SpMM(x, &got4, &pool4);
    ASSERT_EQ(got1.rows(), s.rows);
    ASSERT_EQ(got1.cols(), s.d);
    for (Index r = 0; r < s.rows; ++r) {
      for (Index c = 0; c < s.d; ++c) {
        // Same summation order as the reference: exact agreement.
        ASSERT_EQ(got1(r, c), expected(r, c));
        ASSERT_EQ(got1(r, c), got4(r, c));
      }
    }
  }
}

TEST(KernelParityTest, SpMMAccumAndSpMMTMatchDenseReference) {
  ThreadPool pool4(4);
  const CsrMatrix graph = RandomSparse(60, 45, 4, 21);
  const Matrix x = RandomMatrix(45, 8, 22);
  const Matrix xt = RandomMatrix(60, 8, 23);

  Matrix accum = RandomMatrix(60, 8, 24);
  Matrix expected_accum = accum;
  const Matrix prod = NaiveSpMM(graph, x);
  for (Index r = 0; r < 60; ++r) {
    for (Index c = 0; c < 8; ++c) {
      expected_accum(r, c) += 0.5 * prod(r, c);
    }
  }
  graph.SpMMAccum(0.5, x, &accum, &pool4);
  for (Index r = 0; r < 60; ++r) {
    for (Index c = 0; c < 8; ++c) {
      ASSERT_NEAR(accum(r, c), expected_accum(r, c), 1e-12);
    }
  }

  // SpMMT against an explicitly transposed dense reference.
  const Matrix dense = graph.ToDense();
  Matrix expected_t(45, 8);
  for (Index r = 0; r < 60; ++r) {
    for (Index c = 0; c < 45; ++c) {
      for (Index k = 0; k < 8; ++k) {
        expected_t(c, k) += dense(r, c) * xt(r, k);
      }
    }
  }
  Matrix got_t;
  graph.SpMMT(xt, &got_t, &pool4);
  ASSERT_EQ(got_t.rows(), 45);
  ASSERT_EQ(got_t.cols(), 8);
  for (Index r = 0; r < 45; ++r) {
    for (Index c = 0; c < 8; ++c) {
      ASSERT_NEAR(got_t(r, c), expected_t(r, c), 1e-9);
    }
  }
}

TEST(KernelParityTest, TransposedIsSafeUnderConcurrentFirstUse) {
  const CsrMatrix graph = RandomSparse(300, 200, 6, 31);
  ThreadPool pool(4);
  std::vector<const CsrMatrix*> seen(8, nullptr);
  for (size_t i = 0; i < seen.size(); ++i) {
    pool.Submit([&graph, &seen, i] { seen[i] = &graph.Transposed(); });
  }
  pool.Wait();
  for (const CsrMatrix* t : seen) {
    ASSERT_EQ(t, seen[0]);  // one shared instance, no torn initialization
  }
  const Matrix dense = graph.ToDense();
  const CsrMatrix& t = graph.Transposed();
  EXPECT_EQ(t.rows(), 200);
  EXPECT_EQ(t.cols(), 300);
  for (Index r = 0; r < t.rows(); ++r) {
    for (Index p = t.row_ptr()[r]; p < t.row_ptr()[r + 1]; ++p) {
      const Index c = t.col_idx()[static_cast<size_t>(p)];
      EXPECT_EQ(t.values()[static_cast<size_t>(p)], dense(c, r));
    }
  }
}

TEST(KernelParityTest, TopKHeapMatchesFullSort) {
  Rng rng(41);
  for (const Index n : {1, 5, 100, 1000}) {
    for (const Index k : {1, 3, 20, 2000}) {
      std::vector<Real> scores(static_cast<size_t>(n));
      // Coarse quantization forces score ties to exercise the item-id
      // tie-break.
      for (auto& s : scores) s = std::floor(rng.Normal() * 4.0) / 4.0;
      TopKHeap heap(k);
      for (Index i = 0; i < n; ++i) heap.Push(i, scores[static_cast<size_t>(i)]);
      const auto& got = heap.Sorted();

      std::vector<ScoredItem> expected;
      for (Index i = 0; i < n; ++i) {
        expected.push_back({i, scores[static_cast<size_t>(i)]});
      }
      std::sort(expected.begin(), expected.end(),
                [](const ScoredItem& a, const ScoredItem& b) {
                  return a.score != b.score ? a.score > b.score
                                            : a.item < b.item;
                });
      expected.resize(std::min<size_t>(static_cast<size_t>(k),
                                       expected.size()));
      ASSERT_EQ(got.size(), expected.size()) << "n=" << n << " k=" << k;
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].item, expected[i].item);
        ASSERT_EQ(got[i].score, expected[i].score);
      }
    }
  }
}

TEST(KernelParityTest, GlobalPoolThreadCountHonorsEnv) {
  // Global() itself is constructed once per process, so only the resolver is
  // testable; it is the single source of the pool size.
  setenv("FIRZEN_NUM_THREADS", "3", 1);
  EXPECT_EQ(GlobalPoolThreadCount(), 3);
  setenv("FIRZEN_NUM_THREADS", "not-a-number", 1);
  EXPECT_GE(GlobalPoolThreadCount(), 1);
  unsetenv("FIRZEN_NUM_THREADS");
  EXPECT_GE(GlobalPoolThreadCount(), 1);
}

}  // namespace
}  // namespace firzen
