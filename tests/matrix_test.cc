// Dense matrix kernel tests: Gemm against a naive reference for every
// transpose combination (parameterized), plus the small BLAS-1 helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/tensor/matrix.h"
#include "src/util/rng.h"

namespace firzen {
namespace {

Matrix RandomMatrix(Index rows, Index cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  m.FillNormal(&rng, 1.0);
  return m;
}

Matrix NaiveGemm(bool trans_a, bool trans_b, const Matrix& a,
                 const Matrix& b) {
  const Index m = trans_a ? a.cols() : a.rows();
  const Index k = trans_a ? a.rows() : a.cols();
  const Index n = trans_b ? b.rows() : b.cols();
  Matrix c(m, n);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      Real acc = 0.0;
      for (Index p = 0; p < k; ++p) {
        const Real av = trans_a ? a(p, i) : a(i, p);
        const Real bv = trans_b ? b(j, p) : b(p, j);
        acc += av * bv;
      }
      c(i, j) = acc;
    }
  }
  return c;
}

// (trans_a, trans_b, m, k, n)
using GemmCase = std::tuple<bool, bool, Index, Index, Index>;

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesNaiveReference) {
  const auto [trans_a, trans_b, m, k, n] = GetParam();
  const Matrix a = trans_a ? RandomMatrix(k, m, 1) : RandomMatrix(m, k, 1);
  const Matrix b = trans_b ? RandomMatrix(n, k, 2) : RandomMatrix(k, n, 2);
  Matrix c;
  Gemm(trans_a, trans_b, 1.0, a, b, 0.0, &c);
  const Matrix expected = NaiveGemm(trans_a, trans_b, a, b);
  ASSERT_EQ(c.rows(), expected.rows());
  ASSERT_EQ(c.cols(), expected.cols());
  for (Index i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], expected.data()[i], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposeCombos, GemmTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values<Index>(1, 3, 7),
                       ::testing::Values<Index>(1, 5),
                       ::testing::Values<Index>(2, 6)));

TEST(GemmTest, AccumulatesWithBeta) {
  const Matrix a = RandomMatrix(3, 4, 5);
  const Matrix b = RandomMatrix(4, 2, 6);
  Matrix c = RandomMatrix(3, 2, 7);
  const Matrix c0 = c;
  Gemm(false, false, 2.0, a, b, 1.0, &c);
  const Matrix ab = NaiveGemm(false, false, a, b);
  for (Index i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], c0.data()[i] + 2.0 * ab.data()[i], 1e-10);
  }
}

TEST(MatrixTest, AddAxpyScale) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(1, 1) = 2;
  Matrix b(2, 2, 1.0);
  a.Add(b);
  EXPECT_EQ(a(0, 0), 2.0);
  a.Axpy(0.5, b);
  EXPECT_EQ(a(0, 0), 2.5);
  a.Scale(2.0);
  EXPECT_EQ(a(0, 0), 5.0);
}

TEST(MatrixTest, DotAndNorms) {
  Matrix a(1, 3);
  a(0, 0) = 3;
  a(0, 1) = 4;
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(a.RowNorm(0), 5.0);
  Matrix b(1, 3, 1.0);
  EXPECT_DOUBLE_EQ(a.Dot(b), 7.0);
}

TEST(MatrixTest, TransposedRoundTrip) {
  const Matrix a = RandomMatrix(3, 5, 8);
  const Matrix att = a.Transposed().Transposed();
  for (Index i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], att.data()[i]);
  }
}

TEST(MatrixTest, ResizeZeroes) {
  Matrix a(2, 2, 3.0);
  a.Resize(3, 3);
  EXPECT_EQ(a.rows(), 3);
  for (Index i = 0; i < a.size(); ++i) EXPECT_EQ(a.data()[i], 0.0);
}

TEST(MatrixTest, FillUniformRange) {
  Matrix a(10, 10);
  Rng rng(3);
  a.FillUniform(&rng, -0.5, 0.5);
  for (Index i = 0; i < a.size(); ++i) {
    EXPECT_GE(a.data()[i], -0.5);
    EXPECT_LT(a.data()[i], 0.5);
  }
}

}  // namespace
}  // namespace firzen
