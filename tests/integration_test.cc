// Cross-module integration tests: the paper's central claims, asserted at
// small scale with fixed seeds —
//   (1) pure-CF models are blind to strict cold items while Firzen fires
//       them (Table II's core contrast),
//   (2) KG-attention models rank cold items above CF models,
//   (3) Firzen's harmonic mean beats the CF backbone,
//   (4) revealed links (normal cold-start) help graph models,
//   (5) the full protocol machinery runs end to end for every category.
#include <gtest/gtest.h>

#include "src/core/firzen_model.h"
#include "src/data/split.h"
#include "src/data/synthetic.h"
#include "src/models/registry.h"
#include "src/util/logging.h"

namespace firzen {
namespace {

struct ProtocolCache {
  Dataset dataset;
  ProtocolResult lightgcn;
  ProtocolResult kgat;
  ProtocolResult firzen;
};

const ProtocolCache& Cache() {
  static const ProtocolCache* cache = [] {
    SetLogLevel(LogLevel::kError);
    auto* c = new ProtocolCache();
    c->dataset = GenerateSyntheticDataset(BeautySConfig(0.25));
    TrainOptions options;
    options.embedding_dim = 24;
    options.epochs = 14;
    options.eval_every = 7;
    options.batch_size = 256;
    options.patience = 10;
    options.seed = 77;
    options.pool = ThreadPool::Global();

    auto lightgcn = CreateModel("LightGCN");
    c->lightgcn = RunStrictColdProtocol(lightgcn.get(), c->dataset, options);
    auto kgat = CreateModel("KGAT");
    c->kgat = RunStrictColdProtocol(kgat.get(), c->dataset, options);
    auto firzen = CreateModel("Firzen");
    c->firzen = RunStrictColdProtocol(firzen.get(), c->dataset, options);
    return c;
  }();
  return *cache;
}

TEST(IntegrationTest, FirzenFiresStrictColdItems) {
  const ProtocolCache& c = Cache();
  // LightGCN's cold ranking is essentially random (untrained embeddings);
  // Firzen transfers warm signal through the frozen homogeneous graphs.
  EXPECT_GT(c.firzen.cold.metrics.mrr, c.lightgcn.cold.metrics.mrr);
  EXPECT_GT(c.firzen.cold.metrics.recall, c.lightgcn.cold.metrics.recall);
}

TEST(IntegrationTest, KgAttentionBeatsPureCfOnCold) {
  const ProtocolCache& c = Cache();
  EXPECT_GT(c.kgat.cold.metrics.mrr, c.lightgcn.cold.metrics.mrr);
}

TEST(IntegrationTest, FirzenHarmonicMeanBeatsBackbone) {
  const ProtocolCache& c = Cache();
  EXPECT_GT(c.firzen.hm.mrr, c.lightgcn.hm.mrr);
  EXPECT_GT(c.firzen.hm.recall, c.lightgcn.hm.recall);
}

TEST(IntegrationTest, FirzenWarmStaysCompetitive) {
  const ProtocolCache& c = Cache();
  // "...while preserving competitive in warm-start": allow a modest gap.
  EXPECT_GT(c.firzen.warm.metrics.mrr, 0.5 * c.lightgcn.warm.metrics.mrr);
}

TEST(IntegrationTest, EvaluationCountsUsersForBothSettings) {
  const ProtocolCache& c = Cache();
  EXPECT_GT(c.firzen.warm.num_users, 0);
  EXPECT_GT(c.firzen.cold.num_users, 0);
}

TEST(IntegrationTest, NormalColdLinksHelpGraphModels) {
  SetLogLevel(LogLevel::kError);
  const Dataset& strict = Cache().dataset;
  Rng rng(5);
  const Dataset normal = MakeNormalColdProtocol(strict, &rng);
  TrainOptions options;
  options.embedding_dim = 24;
  options.epochs = 10;
  options.eval_every = 5;
  options.batch_size = 256;
  options.seed = 78;
  options.pool = ThreadPool::Global();

  auto model = CreateModel("LightGCN");
  model->Fit(normal, options);
  // Strict-cold view of the same eval split.
  model->PrepareColdInference(normal);
  EvalOptions eval_options;
  eval_options.pool = options.pool;
  const EvalResult strict_cold =
      EvaluateRanking(normal, normal.cold_test, EvalSetting::kCold,
                      *model->MakeScorer(), eval_options);
  // Normal-cold view: revealed links enter the propagation graph.
  const EvalResult normal_cold =
      RunNormalColdEval(model.get(), normal, options);
  EXPECT_GE(normal_cold.metrics.mrr, strict_cold.metrics.mrr);
  EXPECT_GT(normal_cold.metrics.mrr, 0.0);
}

TEST(IntegrationTest, FirzenNormalColdRunsEndToEnd) {
  SetLogLevel(LogLevel::kError);
  const Dataset& strict = Cache().dataset;
  Rng rng(6);
  const Dataset normal = MakeNormalColdProtocol(strict, &rng);
  TrainOptions options;
  options.embedding_dim = 16;
  options.epochs = 6;
  options.eval_every = 3;
  options.batch_size = 256;
  options.seed = 79;
  options.pool = ThreadPool::Global();
  FirzenModel model;
  model.Fit(normal, options);
  const EvalResult result = RunNormalColdEval(&model, normal, options);
  EXPECT_GT(result.num_users, 0);
  EXPECT_GT(result.metrics.mrr, 0.0);
}

}  // namespace
}  // namespace firzen
