// End-to-end distributed serving over real processes: spawns
// firzen_shard_server binaries, scrapes their "listening on ADDR" line,
// and drives `firzen_cli recommend --shard-servers` against them —
// asserting the CLI's distributed stdout is byte-identical to its local
// `--shards` stdout (the CLI-level determinism contract), and that a
// shard stalling past the rpc timeout mid-flight yields exit 0 with a
// DEGRADED note on stderr and best-effort items, never a hang or crash.
// (A shard that is already DEAD at startup is a different contract:
// Connect cannot validate the catalog tiling without every shard's
// range, so the CLI refuses to start — also covered below.) This is the
// only test that exercises the stack across process boundaries; the
// in-process suite (distributed_serving_test.cc) covers the engine-level
// contracts.
//
// FIRZEN_CLI_BINARY / FIRZEN_SHARD_SERVER_BINARY are injected by CMake as
// the built targets' paths.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/models/serialize.h"
#include "src/util/rng.h"

namespace firzen {
namespace {

constexpr Index kUsers = 30;
constexpr Index kItems = 57;
constexpr Index kDim = 8;

std::string TempPath(const std::string& suffix) {
  return "/tmp/firzen_e2e_" + std::to_string(::getpid()) + suffix;
}

// fork + exec with stdout and stderr captured through pipes.
struct ChildProc {
  pid_t pid = -1;
  int out_fd = -1;  // child's stdout
  int err_fd = -1;  // child's stderr
};

ChildProc Spawn(const std::vector<std::string>& argv) {
  int out_pipe[2], err_pipe[2];
  if (pipe(out_pipe) != 0 || pipe(err_pipe) != 0) return {};
  const pid_t pid = fork();
  if (pid < 0) return {};
  if (pid == 0) {
    dup2(out_pipe[1], STDOUT_FILENO);
    dup2(err_pipe[1], STDERR_FILENO);
    close(out_pipe[0]);
    close(out_pipe[1]);
    close(err_pipe[0]);
    close(err_pipe[1]);
    std::vector<char*> args;
    for (const std::string& arg : argv) {
      args.push_back(const_cast<char*>(arg.c_str()));
    }
    args.push_back(nullptr);
    execv(args[0], args.data());
    _exit(127);  // exec failed
  }
  close(out_pipe[1]);
  close(err_pipe[1]);
  ChildProc child;
  child.pid = pid;
  child.out_fd = out_pipe[0];
  child.err_fd = err_pipe[0];
  return child;
}

std::string ReadAll(int fd) {
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

// Blocks until the child writes one full line to stdout — the server's
// "listening on ADDR (...)" announcement.
std::string ReadLine(int fd) {
  std::string line;
  char c;
  while (read(fd, &c, 1) == 1) {
    if (c == '\n') break;
    line.push_back(c);
  }
  return line;
}

struct CommandResult {
  int exit_code = -1;
  std::string out;
  std::string err;
};

CommandResult RunCommand(const std::vector<std::string>& argv) {
  ChildProc child = Spawn(argv);
  CommandResult result;
  if (child.pid < 0) return result;
  result.out = ReadAll(child.out_fd);
  result.err = ReadAll(child.err_fd);
  close(child.out_fd);
  close(child.err_fd);
  int status = 0;
  waitpid(child.pid, &status, 0);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

// A running shard-server process; terminated and reaped on destruction so
// a failing ASSERT never leaks a child.
class ServerProc {
 public:
  ServerProc(const std::string& embeddings, Index begin, Index end,
             int64_t stall_replies_us = 0) {
    child_ = Spawn({FIRZEN_SHARD_SERVER_BINARY, "--embeddings", embeddings,
                    "--shard-range",
                    std::to_string(begin) + ":" + std::to_string(end),
                    "--listen", "127.0.0.1:0", "--stall-replies-us",
                    std::to_string(stall_replies_us)});
    if (child_.pid < 0) return;
    // "listening on ADDR (shard [A,B) of N items)"
    const std::string line = ReadLine(child_.out_fd);
    const std::string prefix = "listening on ";
    const size_t space = line.find(" (");
    if (line.rfind(prefix, 0) == 0 && space != std::string::npos) {
      address_ = line.substr(prefix.size(), space - prefix.size());
    }
  }
  ~ServerProc() { Terminate(SIGTERM); }

  ServerProc(const ServerProc&) = delete;
  ServerProc& operator=(const ServerProc&) = delete;

  const std::string& address() const { return address_; }
  bool running() const { return child_.pid > 0; }

  // Stops the server (SIGTERM for graceful, SIGKILL for a crash test) and
  // reaps it. Idempotent.
  void Terminate(int sig) {
    if (child_.pid <= 0) return;
    kill(child_.pid, sig);
    int status = 0;
    waitpid(child_.pid, &status, 0);
    close(child_.out_fd);
    close(child_.err_fd);
    child_.pid = -1;
  }

 private:
  ChildProc child_;
  std::string address_;
};

TEST(DistributedE2ETest, CliDistributedMatchesLocalAndDegradesOnKill) {
  // A servable model on disk, shared by the servers and both CLI paths.
  const std::string model_path = TempPath(".fzem");
  Matrix user_emb(kUsers, kDim), item_emb(kItems, kDim);
  Rng rng(71);
  user_emb.FillNormal(&rng, 1.0);
  item_emb.FillNormal(&rng, 1.0);
  StaticRecommender model("e2e", user_emb, item_emb);
  const Status saved = SaveEmbeddings(model, user_emb, item_emb, model_path);
  ASSERT_TRUE(saved.ok()) << saved.ToString();

  ServerProc shard0(model_path, 0, 29);
  ServerProc shard1(model_path, 29, kItems);
  ASSERT_TRUE(shard0.running());
  ASSERT_TRUE(shard1.running());
  ASSERT_FALSE(shard0.address().empty()) << "no listening line from shard 0";
  ASSERT_FALSE(shard1.address().empty()) << "no listening line from shard 1";

  const std::string users = "0,3,7,11,29";
  const std::vector<std::string> distributed_cmd = {
      FIRZEN_CLI_BINARY,  "recommend", "--embeddings",    model_path,
      "--shard-servers",  shard0.address() + "," + shard1.address(),
      "--users",          users,       "--k",             "8"};
  const CommandResult distributed = RunCommand(distributed_cmd);
  ASSERT_EQ(distributed.exit_code, 0) << distributed.err;
  EXPECT_FALSE(distributed.out.empty());

  // Local sharded serving of the same model: stdout must match BYTE FOR
  // BYTE — and for any local shard count, by the shard-invariance
  // contract.
  const std::vector<std::string> shard_counts = {"1", "2", "3"};
  for (const std::string& shards : shard_counts) {
    const CommandResult local = RunCommand(
        {FIRZEN_CLI_BINARY, "recommend", "--embeddings", model_path,
         "--shards", shards, "--users", users, "--k", "8"});
    ASSERT_EQ(local.exit_code, 0) << local.err;
    EXPECT_EQ(distributed.out, local.out) << "--shards " << shards;
  }

  // With a shard DEAD at startup, the coordinator cannot learn its range,
  // so the tiling is unverifiable: the CLI must refuse to start (nonzero
  // exit, error on stderr) rather than silently serve half the catalog.
  shard1.Terminate(SIGKILL);
  const CommandResult half = RunCommand(distributed_cmd);
  EXPECT_NE(half.exit_code, 0);
  EXPECT_FALSE(half.err.empty());

  // Replace shard 1 with a server that stalls every reply for 2s — it
  // handshakes fine (Connect succeeds) but can never answer within the
  // rpc timeout, the process-level version of a shard dying mid-flight.
  // The CLI must still exit 0, flag DEGRADED with the failed shard on
  // stderr, and print the survivors' items.
  ServerProc stalled(model_path, 29, kItems, /*stall_replies_us=*/2'000'000);
  ASSERT_FALSE(stalled.address().empty()) << "no listening line from stall";
  const std::vector<std::string> degraded_cmd = {
      FIRZEN_CLI_BINARY,  "recommend", "--embeddings",     model_path,
      "--shard-servers",  shard0.address() + "," + stalled.address(),
      "--users",          users,       "--rpc-timeout-ms", "250",
      "--k",              "8"};
  const CommandResult degraded = RunCommand(degraded_cmd);
  EXPECT_EQ(degraded.exit_code, 0) << degraded.err;
  EXPECT_FALSE(degraded.out.empty());
  EXPECT_NE(degraded.err.find("DEGRADED"), std::string::npos) << degraded.err;
  EXPECT_NE(degraded.err.find("failed shards: 1"), std::string::npos)
      << degraded.err;
  // Degraded output differs from the full-catalog output (items from the
  // stalled shard's range are gone) but is a subset of the same lines.
  EXPECT_NE(degraded.out, distributed.out);

  // With EVERY shard down, nothing can be dialed: Connect fails and the
  // CLI reports rather than hangs.
  shard0.Terminate(SIGTERM);
  stalled.Terminate(SIGTERM);
  const CommandResult down = RunCommand(distributed_cmd);
  EXPECT_NE(down.exit_code, 0);
  EXPECT_FALSE(down.err.empty());

  std::remove(model_path.c_str());
}

}  // namespace
}  // namespace firzen
