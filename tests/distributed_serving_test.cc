// Distributed-serving suite: a DistributedServingEngine fanning out over
// real localhost sockets must answer every healthy-path request
// bit-identically (same items, same scores, same order) to the in-process
// ShardedServingEngine / ServingEngine oracle for any shard layout — the
// contract that makes moving a shard behind a socket observably free. And
// when shards die or stall, batches must complete from the survivors as
// RecStatus::kDegraded within the deadline budget: never a hang, never an
// abort, never a late response.
//
// The degraded-content oracle used throughout: re-score with the dead
// shard's item-embedding rows poisoned to NaN. The scorer then yields NaN
// for exactly the dead range, the top-K heap drops NaN deterministically,
// and every other item's score is untouched (each item row's dot products
// are independent) — which is precisely "the merge of the surviving
// shards", computed by a code path that shares nothing with the
// coordinator's failure handling.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/data/synthetic.h"
#include "src/eval/admission.h"
#include "src/eval/serving.h"
#include "src/eval/sharded_serving.h"
#include "src/models/registry.h"
#include "src/models/serialize.h"
#include "src/serve/distributed_serving.h"
#include "src/serve/net.h"
#include "src/serve/shard_server.h"
#include "src/serve/wire.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace firzen {
namespace {

Matrix RandomEmb(Index rows, Index cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  m.FillNormal(&rng, 1.0);
  return m;
}

constexpr Index kUsers = 20;
constexpr Index kItems = 97;  // prime: no shard count divides it evenly
constexpr Index kDim = 8;

// Same catalog as the sharded suite: warm head, cold tail, 5 train
// interactions per user.
Dataset ShardDataset() {
  Dataset dataset;
  dataset.num_users = kUsers;
  dataset.num_items = kItems;
  dataset.is_cold_item.assign(static_cast<size_t>(kItems), false);
  for (Index i = 2 * kItems / 3; i < kItems; ++i) {
    dataset.is_cold_item[static_cast<size_t>(i)] = true;
  }
  Rng rng(5);
  for (Index u = 0; u < kUsers; ++u) {
    for (int t = 0; t < 5; ++t) {
      dataset.train.push_back({u, rng.UniformInt(2 * kItems / 3)});
    }
  }
  return dataset;
}

// Every request shape from the serving contract, crossing shard boundaries.
std::vector<RecRequest> ShardRequests() {
  std::vector<RecRequest> requests;
  Rng rng(17);
  for (Index u = 0; u < kUsers; ++u) {
    RecRequest full;
    full.user = u;
    full.k = 9;
    requests.push_back(full);

    RecRequest pool;
    pool.user = u;
    pool.k = 4;
    pool.exclusion = ExclusionPolicy::kNone;
    for (int j = 0; j < 18; ++j) pool.candidates.push_back(rng.UniformInt(kItems));
    pool.candidates.push_back(pool.candidates.front());  // guaranteed dup
    requests.push_back(pool);

    RecRequest cold;
    cold.user = u;
    cold.k = 6;
    cold.cold_only = true;
    requests.push_back(cold);

    RecRequest custom;
    custom.user = u;
    custom.k = 5;
    custom.exclusion = ExclusionPolicy::kCustom;
    for (int j = 0; j < 12; ++j) custom.exclude.push_back(rng.UniformInt(kItems));
    requests.push_back(custom);

    RecRequest short_pool;  // k far larger than the pool
    short_pool.user = u;
    short_pool.k = 50;
    short_pool.exclusion = ExclusionPolicy::kNone;
    short_pool.candidates = {static_cast<Index>(u % kItems),
                             static_cast<Index>((u * 31 + 7) % kItems),
                             static_cast<Index>((u * 13 + 2) % kItems)};
    requests.push_back(short_pool);
  }
  return requests;
}

void ExpectBitIdentical(const std::vector<RecResponse>& got,
                        const std::vector<RecResponse>& want,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].user, want[i].user) << label << " request " << i;
    ASSERT_EQ(got[i].items.size(), want[i].items.size())
        << label << " request " << i;
    for (size_t j = 0; j < want[i].items.size(); ++j) {
      ASSERT_EQ(got[i].items[j].item, want[i].items[j].item)
          << label << " request " << i << " rank " << j;
      ASSERT_EQ(got[i].items[j].score, want[i].items[j].score)
          << label << " request " << i << " rank " << j;
    }
  }
}

void ExpectAllOk(const std::vector<RecResponse>& responses,
                 const std::string& label) {
  for (size_t i = 0; i < responses.size(); ++i) {
    ASSERT_EQ(responses[i].status, RecStatus::kOk) << label << " request " << i;
    EXPECT_TRUE(responses[i].failed_shards.empty())
        << label << " request " << i;
  }
}

void ExpectAllDegraded(const std::vector<RecResponse>& responses,
                       const std::vector<Index>& failed_shards,
                       const std::string& label) {
  for (size_t i = 0; i < responses.size(); ++i) {
    ASSERT_EQ(responses[i].status, RecStatus::kDegraded)
        << label << " request " << i;
    EXPECT_EQ(responses[i].failed_shards, failed_shards)
        << label << " request " << i;
  }
}

// Starts one ShardServer per range, all over the same model and state —
// a single-machine stand-in for N shard-server hosts.
std::vector<std::unique_ptr<ShardServer>> StartServers(
    const Recommender& model, std::shared_ptr<const ServingSharedState> state,
    const std::vector<ItemBlock>& ranges, Index num_users) {
  std::vector<std::unique_ptr<ShardServer>> servers;
  for (const ItemBlock& range : ranges) {
    ShardServerOptions options;
    options.num_users = num_users;
    servers.push_back(std::make_unique<ShardServer>(model.MakeScorer(), state,
                                                    range, options));
    const Status started = servers.back()->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  return servers;
}

Result<std::unique_ptr<DistributedServingEngine>> ConnectTo(
    const std::vector<std::unique_ptr<ShardServer>>& servers,
    int64_t rpc_timeout_ms = 5000) {
  DistributedServingOptions options;
  for (const auto& server : servers) {
    options.shard_addresses.push_back(server->bound_address());
  }
  options.rpc_timeout_ms = rpc_timeout_ms;
  options.retry_backoff_ms = 10;  // keep failure tests brisk
  return DistributedServingEngine::Connect(std::move(options));
}

// The NaN-poisoning degraded-content oracle (see the file comment):
// responses a correct coordinator must produce when `dead` ranges are
// unreachable. Embeddings are rebuilt from their seeds, so the surviving
// rows are bit-identical to the serving model's.
std::vector<RecResponse> DegradedOracle(const Dataset& dataset,
                                        uint64_t user_seed, uint64_t item_seed,
                                        const std::vector<ItemBlock>& dead,
                                        const std::vector<RecRequest>& requests) {
  Matrix item_emb = RandomEmb(kItems, kDim, item_seed);
  for (const ItemBlock& range : dead) {
    for (Index i = range.begin; i < range.end; ++i) {
      for (Index d = 0; d < item_emb.cols(); ++d) {
        item_emb(i, d) = std::nan("");
      }
    }
  }
  StaticRecommender model("degraded-oracle", RandomEmb(kUsers, kDim, user_seed),
                          std::move(item_emb));
  const ServingEngine engine(&model, dataset);
  return engine.RecommendBatch(requests);
}

// ---- Healthy path: byte-identity over the wire ----

TEST(DistributedServingTest, ResponsesInvariantAcrossShardCounts) {
  const Dataset dataset = ShardDataset();
  StaticRecommender model("dist", RandomEmb(kUsers, kDim, 1),
                          RandomEmb(kItems, kDim, 2));
  const ServingEngine reference(&model, dataset);
  const auto state = ServingSharedState::FromDataset(dataset, kItems);
  const std::vector<RecRequest> requests = ShardRequests();
  const std::vector<RecResponse> want = reference.RecommendBatch(requests);

  for (Index shards : {Index{1}, Index{2}, Index{3}, Index{7}}) {
    const auto ranges = MakeShardRanges(kItems, shards);
    const auto servers = StartServers(model, state, ranges, kUsers);
    auto connected = ConnectTo(servers);
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    const auto& engine = connected.value();
    ASSERT_EQ(engine->num_shards(), shards);
    ASSERT_EQ(engine->num_items(), kItems);

    const std::string label = "shards=" + std::to_string(shards);
    const std::vector<RecResponse> got = engine->RecommendBatch(requests);
    ExpectAllOk(got, label);
    ExpectBitIdentical(got, want, label + " batch");
    // And the in-process sharded engine agrees too (same oracle chain).
    ShardedServingOptions sharded_options;
    sharded_options.num_shards = shards;
    const ShardedServingEngine in_process(&model, dataset, sharded_options);
    ExpectBitIdentical(got, in_process.RecommendBatch(requests),
                       label + " vs in-process");
    // Single-request path merges identically.
    for (size_t i = 0; i < requests.size(); i += 7) {
      const RecResponse single = engine->Recommend(requests[i]);
      ASSERT_EQ(single.status, RecStatus::kOk);
      ExpectBitIdentical({single}, {reference.Recommend(requests[i])},
                         label + " single " + std::to_string(i));
    }

    // Counter accounting: every request went through, nothing failed.
    EXPECT_EQ(engine->failed_shard_rpcs(), 0u);
    EXPECT_EQ(engine->degraded_responses(), 0u);
    EXPECT_EQ(engine->reconnects(), 0u);
    EXPECT_GT(engine->shard_rpcs(), 0u);
    EXPECT_GT(engine->bytes_sent(), 0u);
    EXPECT_GT(engine->bytes_received(), 0u);
    uint64_t served = 0;
    for (const auto& server : servers) served += server->requests_served();
    const uint64_t singles = (requests.size() + 6) / 7;
    EXPECT_EQ(served, static_cast<uint64_t>(shards) *
                          (requests.size() + singles));
  }
}

TEST(DistributedServingTest, UnixDomainSocketsServeIdentically) {
  const Dataset dataset = ShardDataset();
  StaticRecommender model("dist", RandomEmb(kUsers, kDim, 3),
                          RandomEmb(kItems, kDim, 4));
  const ServingEngine reference(&model, dataset);
  const auto state = ServingSharedState::FromDataset(dataset, kItems);
  const auto ranges = MakeShardRanges(kItems, 2);

  std::vector<std::unique_ptr<ShardServer>> servers;
  for (size_t s = 0; s < ranges.size(); ++s) {
    ShardServerOptions options;
    options.num_users = kUsers;
    options.listen_address = "unix:/tmp/firzen_dist_test_" +
                             std::to_string(::getpid()) + "_" +
                             std::to_string(s) + ".sock";
    servers.push_back(std::make_unique<ShardServer>(model.MakeScorer(), state,
                                                    ranges[s], options));
    const Status started = servers.back()->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }
  auto connected = ConnectTo(servers);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const std::vector<RecRequest> requests = ShardRequests();
  const std::vector<RecResponse> got =
      connected.value()->RecommendBatch(requests);
  ExpectAllOk(got, "unix");
  ExpectBitIdentical(got, reference.RecommendBatch(requests), "unix sockets");
}

// Concurrent request threads share one coordinator, the thread-safety
// contract the sibling engines pin under TSan.
TEST(DistributedServingTest, ConcurrentBatchesStayBitIdentical) {
  const Dataset dataset = ShardDataset();
  StaticRecommender model("dist", RandomEmb(kUsers, kDim, 5),
                          RandomEmb(kItems, kDim, 6));
  const ServingEngine reference(&model, dataset);
  const auto state = ServingSharedState::FromDataset(dataset, kItems);
  const auto servers =
      StartServers(model, state, MakeShardRanges(kItems, 3), kUsers);
  auto connected = ConnectTo(servers);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const auto& engine = connected.value();

  const std::vector<RecRequest> requests = ShardRequests();
  const std::vector<RecResponse> want = reference.RecommendBatch(requests);
  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  std::vector<std::vector<RecResponse>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        got[static_cast<size_t>(t)] = engine->RecommendBatch(requests);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    ExpectAllOk(got[static_cast<size_t>(t)], "thread " + std::to_string(t));
    ExpectBitIdentical(got[static_cast<size_t>(t)], want,
                       "thread " + std::to_string(t));
  }
}

// ---- Every registered model over the wire ----

const Dataset& TrainedDataset() {
  static const Dataset* dataset = [] {
    return new Dataset(GenerateSyntheticDataset(BeautySConfig(0.12)));
  }();
  return *dataset;
}

class DistributedModelInvarianceTest
    : public ::testing::TestWithParam<ModelInfo> {};

// For every registered model: distributed responses over real sockets are
// bit-identical to the single-engine reference.
TEST_P(DistributedModelInvarianceTest, ResponsesMatchSingleEngineBitExact) {
  SetLogLevel(LogLevel::kError);
  const Dataset& dataset = TrainedDataset();
  auto model = CreateModel(GetParam().name);
  ASSERT_NE(model, nullptr) << GetParam().name;
  TrainOptions train;
  train.embedding_dim = 8;
  train.epochs = 2;
  train.eval_every = 8;
  train.batch_size = 256;
  train.seed = 321;
  model->Fit(dataset, train);

  std::vector<RecRequest> requests;
  Rng rng(23);
  for (Index u = 0; u < 6; ++u) {
    const Index user = (u * 11) % dataset.num_users;
    RecRequest full;
    full.user = user;
    full.k = 10;
    requests.push_back(full);

    RecRequest pool;
    pool.user = user;
    pool.k = 5;
    pool.exclusion = ExclusionPolicy::kNone;
    for (int j = 0; j < 25; ++j) {
      pool.candidates.push_back(rng.UniformInt(dataset.num_items));
    }
    requests.push_back(pool);

    RecRequest cold;
    cold.user = user;
    cold.k = 8;
    cold.cold_only = true;
    cold.exclusion = ExclusionPolicy::kNone;
    requests.push_back(cold);

    RecRequest custom;
    custom.user = user;
    custom.k = 7;
    custom.exclusion = ExclusionPolicy::kCustom;
    for (int j = 0; j < 9; ++j) {
      custom.exclude.push_back(rng.UniformInt(dataset.num_items));
    }
    requests.push_back(custom);
  }

  const ServingEngine reference(model.get(), dataset);
  const auto state =
      ServingSharedState::FromDataset(dataset, dataset.num_items);
  const auto servers = StartServers(
      *model, state, MakeShardRanges(dataset.num_items, 3), dataset.num_users);
  auto connected = ConnectTo(servers);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const std::vector<RecResponse> got =
      connected.value()->RecommendBatch(requests);
  ExpectAllOk(got, GetParam().name);
  ExpectBitIdentical(got, reference.RecommendBatch(requests), GetParam().name);
}

INSTANTIATE_TEST_SUITE_P(AllModels, DistributedModelInvarianceTest,
                         ::testing::ValuesIn(AllModels()),
                         [](const auto& info) { return info.param.name; });

// ---- Degradation: dead, stalled, and restarted shards ----

TEST(DistributedServingTest, KilledShardDegradesToSurvivorsThenRejoins) {
  const Dataset dataset = ShardDataset();
  StaticRecommender model("dist", RandomEmb(kUsers, kDim, 1),
                          RandomEmb(kItems, kDim, 2));
  const ServingEngine reference(&model, dataset);
  const auto state = ServingSharedState::FromDataset(dataset, kItems);
  const auto ranges = MakeShardRanges(kItems, 3);
  auto servers = StartServers(model, state, ranges, kUsers);
  auto connected = ConnectTo(servers);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const auto& engine = connected.value();

  const std::vector<RecRequest> requests = ShardRequests();
  ExpectAllOk(engine->RecommendBatch(requests), "healthy warmup");

  // Kill the middle shard: batches complete from shards 0 and 2, flagged.
  const std::string shard1_address = servers[1]->bound_address();
  servers[1]->Stop();
  const std::vector<RecResponse> degraded =
      engine->RecommendBatchDirect(requests);
  ExpectAllDegraded(degraded, {1}, "killed shard");
  ExpectBitIdentical(degraded,
                     DegradedOracle(dataset, 1, 2, {ranges[1]}, requests),
                     "killed-shard content");
  EXPECT_GE(engine->failed_shard_rpcs(), 1u);
  EXPECT_EQ(engine->degraded_responses(), requests.size());

  // A restarted server on the same address rejoins transparently on the
  // next batch: kOk again, bit-identical, reconnect counted.
  ShardServerOptions restart_options;
  restart_options.num_users = kUsers;
  restart_options.listen_address = shard1_address;
  auto restarted = std::make_unique<ShardServer>(model.MakeScorer(), state,
                                                 ranges[1], restart_options);
  const Status restarted_ok = restarted->Start();
  ASSERT_TRUE(restarted_ok.ok()) << restarted_ok.ToString();
  servers[1] = std::move(restarted);
  const std::vector<RecResponse> recovered = engine->RecommendBatch(requests);
  ExpectAllOk(recovered, "after restart");
  ExpectBitIdentical(recovered, reference.RecommendBatch(requests),
                     "after restart");
  EXPECT_GE(engine->reconnects(), 1u);
}

TEST(DistributedServingTest, AllShardsDownYieldsDegradedEmptyNotAHang) {
  const Dataset dataset = ShardDataset();
  StaticRecommender model("dist", RandomEmb(kUsers, kDim, 1),
                          RandomEmb(kItems, kDim, 2));
  const auto state = ServingSharedState::FromDataset(dataset, kItems);
  auto servers = StartServers(model, state, MakeShardRanges(kItems, 2), kUsers);
  auto connected = ConnectTo(servers, /*rpc_timeout_ms=*/1000);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const auto& engine = connected.value();

  for (auto& server : servers) server->Stop();
  const std::vector<RecRequest> requests = ShardRequests();
  const std::vector<RecResponse> got = engine->RecommendBatchDirect(requests);
  ExpectAllDegraded(got, {0, 1}, "all down");
  for (const RecResponse& response : got) {
    EXPECT_TRUE(response.items.empty());
  }
}

// Satellite regression: a stalled shard must never make a deadline-carrying
// request complete late. The per-shard wait is capped at the batch's
// remaining deadline budget (and at rpc_timeout_ms), so the batch returns
// kDegraded within budget while the stalled shard is still sleeping.
TEST(DistributedServingTest, StalledShardDegradesWithinDeadlineBudget) {
  const Dataset dataset = ShardDataset();
  StaticRecommender model("dist", RandomEmb(kUsers, kDim, 1),
                          RandomEmb(kItems, kDim, 2));
  const ServingEngine reference(&model, dataset);
  const auto state = ServingSharedState::FromDataset(dataset, kItems);
  const auto ranges = MakeShardRanges(kItems, 2);
  auto servers = StartServers(model, state, ranges, kUsers);
  auto connected = ConnectTo(servers);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const auto& engine = connected.value();

  std::vector<RecRequest> requests = ShardRequests();
  ExpectAllOk(engine->RecommendBatch(requests), "pre-stall warmup");

  constexpr int64_t kStallUs = 1'200'000;
  constexpr int64_t kDeadlineUs = 100'000;
  servers[1]->set_stall_replies_us(kStallUs);
  for (RecRequest& request : requests) request.deadline_us = kDeadlineUs;

  const auto start = std::chrono::steady_clock::now();
  const std::vector<RecResponse> got = engine->RecommendBatchDirect(requests);
  const int64_t elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  // Well under the stall: the deadline budget bounded the wait. The margin
  // over kDeadlineUs absorbs sanitizer/scheduler overhead without letting
  // a wait-for-the-stall bug pass.
  EXPECT_LT(elapsed_ms, kStallUs / 1000 - 400) << "completed late";
  ExpectAllDegraded(got, {1}, "stalled shard");
  ExpectBitIdentical(got, DegradedOracle(dataset, 1, 2, {ranges[1]}, requests),
                     "stalled-shard content");

  // The rpc_timeout_ms cap bounds deadline-less batches the same way.
  auto capped = ConnectTo(servers, /*rpc_timeout_ms=*/100);
  ASSERT_TRUE(capped.ok()) << capped.status().ToString();
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<RecResponse> timed =
      capped.value()->RecommendBatchDirect(ShardRequests());
  const int64_t timed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(timed_ms, kStallUs / 1000 - 400) << "rpc timeout did not cap";
  ExpectAllDegraded(timed, {1}, "rpc-timeout cap");

  // Once the stall clears, the dropped connection re-dials and the engine
  // is whole again.
  servers[1]->set_stall_replies_us(0);
  const std::vector<RecResponse> recovered =
      engine->RecommendBatch(ShardRequests());
  ExpectAllOk(recovered, "post-stall");
  ExpectBitIdentical(recovered, reference.RecommendBatch(ShardRequests()),
                     "post-stall");
}

// An already-expired deadline fails the batch up front without tearing
// down healthy connections: nothing was sent, so nothing needs re-dialing.
TEST(DistributedServingTest, ExpiredDeadlineFailsFastWithoutDroppingConns) {
  const Dataset dataset = ShardDataset();
  StaticRecommender model("dist", RandomEmb(kUsers, kDim, 1),
                          RandomEmb(kItems, kDim, 2));
  const auto state = ServingSharedState::FromDataset(dataset, kItems);
  const auto servers =
      StartServers(model, state, MakeShardRanges(kItems, 2), kUsers);
  auto connected = ConnectTo(servers);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const auto& engine = connected.value();

  std::vector<RecRequest> requests = ShardRequests();
  ExpectAllOk(engine->RecommendBatch(requests), "warmup");

  requests[3].deadline_us = 0;  // one expired request expires the batch
  const std::vector<RecResponse> expired =
      engine->RecommendBatchDirect(requests);
  ExpectAllDegraded(expired, {0, 1}, "expired");
  for (const RecResponse& response : expired) {
    EXPECT_TRUE(response.items.empty());
  }

  requests[3].deadline_us = -1;
  ExpectAllOk(engine->RecommendBatchDirect(requests), "after expired");
  EXPECT_EQ(engine->reconnects(), 0u) << "expired batch dropped connections";
}

// ---- Admission composition ----

TEST(DistributedServingTest, AdmissionFrontEndPassesThroughUnchanged) {
  const Dataset dataset = ShardDataset();
  StaticRecommender model("dist", RandomEmb(kUsers, kDim, 1),
                          RandomEmb(kItems, kDim, 2));
  const ServingEngine reference(&model, dataset);
  const auto state = ServingSharedState::FromDataset(dataset, kItems);
  const auto ranges = MakeShardRanges(kItems, 3);
  auto servers = StartServers(model, state, ranges, kUsers);
  auto connected = ConnectTo(servers);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const auto& engine = connected.value();

  const AdmissionController admission(engine.get());
  engine->AttachAdmission(&admission);

  // Concurrent singles coalesce into fused distributed batches; every
  // served response is bit-identical to the reference serving it alone.
  const std::vector<RecRequest> requests = ShardRequests();
  const std::vector<RecResponse> want = reference.RecommendBatch(requests);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < requests.size();
           i += kThreads) {
        const RecResponse got = engine->Recommend(requests[i]);
        if (got.status != RecStatus::kOk ||
            got.items.size() != want[i].items.size()) {
          ++failures[static_cast<size_t>(t)];
          continue;
        }
        for (size_t j = 0; j < want[i].items.size(); ++j) {
          if (got.items[j].item != want[i].items[j].item ||
              got.items[j].score != want[i].items[j].score) {
            ++failures[static_cast<size_t>(t)];
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[static_cast<size_t>(t)], 0) << "thread " << t;
  }

  // kDegraded passes through admission untouched, items included.
  servers[2]->Stop();
  const RecResponse degraded = engine->Recommend(requests[0]);
  EXPECT_EQ(degraded.status, RecStatus::kDegraded);
  EXPECT_EQ(degraded.failed_shards, std::vector<Index>{2});
  const std::vector<RecResponse> oracle =
      DegradedOracle(dataset, 1, 2, {ranges[2]}, {requests[0]});
  ExpectBitIdentical({degraded}, oracle, "degraded through admission");

  engine->AttachAdmission(nullptr);
}

// ---- Startup validation and server-side input hardening ----

TEST(DistributedServingTest, ConnectRejectsBrokenLayoutsAndDeadAddresses) {
  const Dataset dataset = ShardDataset();
  StaticRecommender model("dist", RandomEmb(kUsers, kDim, 1),
                          RandomEmb(kItems, kDim, 2));
  const auto state = ServingSharedState::FromDataset(dataset, kItems);

  auto connect_ranges = [&](const std::vector<ItemBlock>& ranges) {
    const auto servers = StartServers(model, state, ranges, kUsers);
    return ConnectTo(servers).status();
  };
  // Overlap and hole both fail the tiling check.
  EXPECT_FALSE(connect_ranges({{0, 60}, {50, kItems}}).ok());
  EXPECT_FALSE(connect_ranges({{0, 40}, {50, kItems}}).ok());
  // Servers over different catalogs cannot form one engine.
  {
    const Index other_items = kItems + 23;
    Dataset other;
    other.num_users = kUsers;
    other.num_items = other_items;
    other.is_cold_item.assign(static_cast<size_t>(other_items), false);
    StaticRecommender other_model("other", RandomEmb(kUsers, kDim, 9),
                                  RandomEmb(other_items, kDim, 10));
    const auto other_state = ServingSharedState::FromDataset(other, other_items);
    auto servers = StartServers(model, state, {{0, 50}}, kUsers);
    auto more = StartServers(other_model, other_state, {{50, other_items}},
                             kUsers);
    servers.push_back(std::move(more[0]));
    EXPECT_FALSE(ConnectTo(servers).ok());
  }
  // A dead address fails Connect outright — a coordinator never starts
  // blind.
  DistributedServingOptions options;
  options.shard_addresses = {"127.0.0.1:1"};
  options.connect_timeout_ms = 200;
  options.retry_backoff_ms = 10;
  EXPECT_FALSE(DistributedServingEngine::Connect(std::move(options)).ok());
  DistributedServingOptions empty;
  EXPECT_FALSE(DistributedServingEngine::Connect(std::move(empty)).ok());
}

// Remote bytes must never abort the server: malformed frames and invalid
// requests get a wire error and a dropped connection, and the server keeps
// serving everyone else.
TEST(DistributedServingTest, ServerRefusesInvalidInputAndSurvives) {
  const Dataset dataset = ShardDataset();
  StaticRecommender model("dist", RandomEmb(kUsers, kDim, 1),
                          RandomEmb(kItems, kDim, 2));
  const auto state = ServingSharedState::FromDataset(dataset, kItems);
  const auto servers =
      StartServers(model, state, MakeShardRanges(kItems, 1), kUsers);
  const std::string& address = servers[0]->bound_address();

  // Expects the server to answer `payload` (sent after a valid handshake)
  // with a wire error and then hang up.
  auto expect_refusal = [&](wire::FrameType request_type,
                            const std::vector<uint8_t>& payload,
                            const std::string& label) {
    auto dialed = net::Connect(address, 1000);
    ASSERT_TRUE(dialed.ok()) << label << ": " << dialed.status().ToString();
    net::UniqueFd fd = std::move(dialed.value());
    ASSERT_TRUE(net::SendFrame(fd.get(), wire::FrameType::kHello,
                               wire::EncodeHello(), 1000)
                    .ok())
        << label;
    wire::FrameType type;
    std::vector<uint8_t> reply;
    ASSERT_TRUE(net::RecvFrame(fd.get(), &type, &reply, 1000).ok()) << label;
    ASSERT_EQ(type, wire::FrameType::kShardInfo) << label;
    ASSERT_TRUE(net::SendFrame(fd.get(), request_type, payload, 1000).ok())
        << label;
    ASSERT_TRUE(net::RecvFrame(fd.get(), &type, &reply, 1000).ok()) << label;
    EXPECT_EQ(type, wire::FrameType::kError) << label;
    // The connection is dropped after a refusal.
    EXPECT_FALSE(net::RecvFrame(fd.get(), &type, &reply, 1000).ok()) << label;
  };

  RecRequest bad_candidate;
  bad_candidate.user = 0;
  bad_candidate.k = 3;
  bad_candidate.exclusion = ExclusionPolicy::kNone;
  bad_candidate.candidates = {kItems + 5};
  expect_refusal(wire::FrameType::kRecRequestBatch,
                 wire::EncodeRequestBatch({bad_candidate}), "bad candidate");

  RecRequest bad_k;
  bad_k.user = 0;
  bad_k.k = 0;
  expect_refusal(wire::FrameType::kRecRequestBatch,
                 wire::EncodeRequestBatch({bad_k}), "k = 0");

  RecRequest bad_user;
  bad_user.user = kUsers + 3;
  bad_user.k = 3;
  expect_refusal(wire::FrameType::kRecRequestBatch,
                 wire::EncodeRequestBatch({bad_user}), "user beyond catalog");

  // A non-request frame where a request belongs.
  expect_refusal(wire::FrameType::kHello, wire::EncodeHello(),
                 "hello after handshake");
  // Truncated request bytes.
  expect_refusal(wire::FrameType::kRecRequestBatch, {1, 2, 3},
                 "truncated batch");

  // A client skipping the handshake is refused too.
  {
    auto dialed = net::Connect(address, 1000);
    ASSERT_TRUE(dialed.ok()) << dialed.status().ToString();
    net::UniqueFd fd = std::move(dialed.value());
    RecRequest fine;
    fine.user = 0;
    fine.k = 3;
    ASSERT_TRUE(net::SendFrame(fd.get(), wire::FrameType::kRecRequestBatch,
                               wire::EncodeRequestBatch({fine}), 1000)
                    .ok());
    wire::FrameType type;
    std::vector<uint8_t> reply;
    ASSERT_TRUE(net::RecvFrame(fd.get(), &type, &reply, 1000).ok());
    EXPECT_EQ(type, wire::FrameType::kError);
  }

  // After all that abuse, a well-behaved coordinator still gets correct
  // answers.
  auto connected = ConnectTo(servers);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const ServingEngine reference(&model, dataset);
  const std::vector<RecRequest> requests = ShardRequests();
  const std::vector<RecResponse> got =
      connected.value()->RecommendBatch(requests);
  ExpectAllOk(got, "after abuse");
  ExpectBitIdentical(got, reference.RecommendBatch(requests), "after abuse");
}

TEST(DistributedServingTest, RecStatusNameCoversDegraded) {
  EXPECT_STREQ(RecStatusName(RecStatus::kDegraded), "DEGRADED");
}

}  // namespace
}  // namespace firzen
