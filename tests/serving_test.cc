// Serving and serialization tests: embedding save/load round trips, the
// StaticRecommender scoring contract, and ServingEngine request/response
// semantics (exclusion policies, candidate pools, cold shelf, fused-stream
// parity with the materialized legacy path).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/data/synthetic.h"
#include "src/eval/serving.h"
#include "src/eval/topk.h"
#include "src/models/bpr_mf.h"
#include "src/models/registry.h"
#include "src/models/serialize.h"
#include "src/util/logging.h"

namespace firzen {
namespace {

Matrix RandomEmb(Index rows, Index cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  m.FillNormal(&rng, 1.0);
  return m;
}

TEST(SerializeTest, RoundTripPreservesEmbeddingsAndName) {
  const Matrix user = RandomEmb(7, 5, 1);
  const Matrix item = RandomEmb(9, 5, 2);
  StaticRecommender original("TestModel", user, item);
  const std::string path = ::testing::TempDir() + "/model.fzem";
  ASSERT_TRUE(SaveEmbeddings(original, user, item, path).ok());

  auto loaded = LoadEmbeddings(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->Name(), "TestModel");
  const Matrix& lu = loaded.value()->user_embeddings();
  const Matrix li = loaded.value()->ItemEmbeddings();
  ASSERT_EQ(lu.rows(), 7);
  ASSERT_EQ(li.rows(), 9);
  for (Index i = 0; i < user.size(); ++i) {
    EXPECT_DOUBLE_EQ(lu.data()[i], user.data()[i]);
  }
  for (Index i = 0; i < item.size(); ++i) {
    EXPECT_DOUBLE_EQ(li.data()[i], item.data()[i]);
  }
}

TEST(SerializeTest, LoadedModelScoresIdenticallyToSource) {
  SetLogLevel(LogLevel::kError);
  const Dataset dataset = GenerateSyntheticDataset(BeautySConfig(0.12));
  BprMf model;
  TrainOptions options;
  options.embedding_dim = 8;
  options.epochs = 3;
  options.eval_every = 3;
  model.Fit(dataset, options);

  const std::string path = ::testing::TempDir() + "/bpr.fzem";
  ASSERT_TRUE(SaveEmbeddings(model, model.UserEmbeddings(),
                             model.ItemEmbeddings(), path)
                  .ok());
  auto loaded = LoadEmbeddings(path);
  ASSERT_TRUE(loaded.ok());

  Matrix original_scores;
  Matrix loaded_scores;
  const std::vector<Index> users{0, 3, 5};
  model.Score(users, &original_scores);
  loaded.value()->Score(users, &loaded_scores);
  ASSERT_EQ(original_scores.size(), loaded_scores.size());
  for (Index i = 0; i < original_scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(original_scores.data()[i], loaded_scores.data()[i]);
  }
}

TEST(SerializeTest, RejectsGarbageAndTruncatedFiles) {
  const std::string path = ::testing::TempDir() + "/garbage.fzem";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a firzen file at all", f);
    std::fclose(f);
  }
  auto loaded = LoadEmbeddings(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);

  auto missing = LoadEmbeddings("/no/such/file.fzem");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIOError);
}

TEST(SerializeTest, SaveRejectsEmptyOrMismatchedEmbeddings) {
  StaticRecommender model("X", RandomEmb(2, 3, 3), RandomEmb(2, 3, 4));
  const std::string path = ::testing::TempDir() + "/bad.fzem";
  EXPECT_FALSE(SaveEmbeddings(model, Matrix(), RandomEmb(2, 3, 5), path).ok());
  EXPECT_FALSE(
      SaveEmbeddings(model, RandomEmb(2, 3, 6), RandomEmb(2, 4, 7), path)
          .ok());
}

// Top-k items for one user through the engine, best first — the shape of
// the retired ServingIndex::TopK entry point, which these regression tests
// predate. Train-seen exclusion (the engine default) applies.
std::vector<Recommendation> TopK(const ServingEngine& engine, Index user,
                                 Index k, std::vector<Index> candidates = {}) {
  RecRequest request;
  request.user = user;
  request.k = k;
  request.candidates = std::move(candidates);
  return engine.Recommend(request).items;
}

class ServingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_.num_users = 3;
    dataset_.num_items = 6;
    dataset_.is_cold_item.assign(6, false);
    dataset_.train = {{0, 0}, {0, 1}, {1, 2}};
    // Deterministic scores: user u prefers item (u + i) % 6 descending.
    Matrix user(3, 6);
    Matrix item(6, 6);
    for (Index i = 0; i < 6; ++i) item(i, i) = 1.0;
    for (Index u = 0; u < 3; ++u) {
      for (Index i = 0; i < 6; ++i) {
        user(u, i) = -static_cast<Real>((u + i) % 6);
      }
    }
    model_ = std::make_unique<StaticRecommender>("fixture", user, item);
  }

  Dataset dataset_;
  std::unique_ptr<StaticRecommender> model_;
};

TEST_F(ServingFixture, ExcludesTrainItems) {
  ServingEngine engine(model_.get(), dataset_);
  const auto recs = TopK(engine, 0, 6);
  // User 0 interacted with items 0 and 1 -> never recommended.
  for (const Recommendation& rec : recs) {
    EXPECT_NE(rec.item, 0);
    EXPECT_NE(rec.item, 1);
  }
  EXPECT_EQ(recs.size(), 4u);
}

TEST_F(ServingFixture, ReturnsBestFirst) {
  ServingEngine engine(model_.get(), dataset_);
  const auto recs = TopK(engine, 2, 3);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_GE(recs[0].score, recs[1].score);
  EXPECT_GE(recs[1].score, recs[2].score);
  // User 2 scores: item i -> -((2+i)%6): best is item 4 (score 0).
  EXPECT_EQ(recs[0].item, 4);
}

TEST_F(ServingFixture, CandidateRestrictionHonored) {
  ServingEngine engine(model_.get(), dataset_);
  const auto recs = TopK(engine, 1, 10, {3, 5});
  ASSERT_EQ(recs.size(), 2u);
  for (const Recommendation& rec : recs) {
    EXPECT_TRUE(rec.item == 3 || rec.item == 5);
  }
}

TEST_F(ServingFixture, BatchMatchesSingle) {
  ServingEngine engine(model_.get(), dataset_);
  std::vector<RecRequest> requests(3);
  for (Index u = 0; u < 3; ++u) {
    requests[static_cast<size_t>(u)].user = u;
    requests[static_cast<size_t>(u)].k = 3;
  }
  const auto batch = engine.RecommendBatch(requests);
  ASSERT_EQ(batch.size(), 3u);
  for (Index u = 0; u < 3; ++u) {
    const auto single = TopK(engine, u, 3);
    ASSERT_EQ(batch[static_cast<size_t>(u)].items.size(), single.size());
    for (size_t k = 0; k < single.size(); ++k) {
      EXPECT_EQ(batch[static_cast<size_t>(u)].items[k].item, single[k].item);
    }
  }
}

// --- Regression: degenerate pools must yield short/empty lists, never a
// read past the retained heap entries. ---

TEST_F(ServingFixture, KLargerThanCandidatePoolReturnsShortList) {
  ServingEngine engine(model_.get(), dataset_);
  const auto recs = TopK(engine, 2, 100, {3, 5});
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_GE(recs[0].score, recs[1].score);
}

TEST_F(ServingFixture, UserWhoSawEveryCandidateGetsEmptyList) {
  // User 0 trained on items 0 and 1; restrict the pool to exactly those.
  ServingEngine engine(model_.get(), dataset_);
  EXPECT_TRUE(TopK(engine, 0, 3, {0, 1}).empty());
}

TEST_F(ServingFixture, KLargerThanUnseenCatalogReturnsAllUnseen) {
  ServingEngine engine(model_.get(), dataset_);
  const auto recs = TopK(engine, 0, 1000);
  EXPECT_EQ(recs.size(), 4u);  // 6 items minus the 2 train-seen
}

// --- ServingEngine request/response semantics. ---

TEST_F(ServingFixture, EngineExcludesTrainSeenByDefault) {
  ServingEngine engine(model_.get(), dataset_);
  RecRequest request;
  request.user = 0;
  request.k = 6;
  const RecResponse response = engine.Recommend(request);
  EXPECT_EQ(response.user, 0);
  EXPECT_EQ(response.items.size(), 4u);
  for (const Recommendation& rec : response.items) {
    EXPECT_NE(rec.item, 0);
    EXPECT_NE(rec.item, 1);
  }
}

TEST_F(ServingFixture, EngineCustomAndNoneExclusionPolicies) {
  ServingEngine engine(model_.get(), dataset_);
  RecRequest none;
  none.user = 0;
  none.k = 6;
  none.exclusion = ExclusionPolicy::kNone;
  EXPECT_EQ(engine.Recommend(none).items.size(), 6u);

  RecRequest custom;
  custom.user = 0;
  custom.k = 6;
  custom.exclusion = ExclusionPolicy::kCustom;
  custom.exclude = {5, 2, 5};  // unsorted with a duplicate
  const RecResponse response = engine.Recommend(custom);
  EXPECT_EQ(response.items.size(), 4u);
  for (const Recommendation& rec : response.items) {
    EXPECT_NE(rec.item, 2);
    EXPECT_NE(rec.item, 5);
  }
}

TEST_F(ServingFixture, EngineColdShelfFlag) {
  Dataset dataset = dataset_;
  dataset.is_cold_item = {false, false, false, true, false, true};
  ServingEngine engine(model_.get(), dataset);
  RecRequest request;
  request.user = 1;
  request.k = 10;
  request.cold_only = true;
  request.exclusion = ExclusionPolicy::kNone;
  const RecResponse response = engine.Recommend(request);
  ASSERT_EQ(response.items.size(), 2u);
  for (const Recommendation& rec : response.items) {
    EXPECT_TRUE(rec.item == 3 || rec.item == 5);
  }
  // cold_only composes with an explicit candidate pool.
  request.candidates = {0, 1, 3};
  const RecResponse shelf = engine.Recommend(request);
  ASSERT_EQ(shelf.items.size(), 1u);
  EXPECT_EQ(shelf.items[0].item, 3);
}

TEST_F(ServingFixture, EngineBatchMixesStreamedAndCandidateRequests) {
  ServingEngine engine(model_.get(), dataset_);
  std::vector<RecRequest> requests(3);
  requests[0].user = 0;
  requests[0].k = 3;
  requests[1].user = 1;
  requests[1].k = 2;
  requests[1].candidates = {3, 4, 5};
  requests[2].user = 2;
  requests[2].k = 3;
  const auto responses = engine.RecommendBatch(requests);
  ASSERT_EQ(responses.size(), 3u);
  for (size_t i = 0; i < requests.size(); ++i) {
    const RecResponse single = engine.Recommend(requests[i]);
    ASSERT_EQ(responses[i].items.size(), single.items.size()) << i;
    for (size_t j = 0; j < single.items.size(); ++j) {
      EXPECT_EQ(responses[i].items[j].item, single.items[j].item) << i;
      EXPECT_DOUBLE_EQ(responses[i].items[j].score, single.items[j].score)
          << i;
    }
  }
}

// --- Regression: duplicate candidate entries must not yield duplicate
// recommendations (the pool is deduplicated once per request). ---

TEST_F(ServingFixture, DuplicateCandidateEntriesAreDeduplicated) {
  ServingEngine engine(model_.get(), dataset_);
  RecRequest clean;
  clean.user = 2;
  clean.k = 10;
  clean.exclusion = ExclusionPolicy::kNone;
  clean.candidates = {3, 5};
  const RecResponse expected = engine.Recommend(clean);
  ASSERT_EQ(expected.items.size(), 2u);

  RecRequest noisy = clean;
  noisy.candidates = {5, 3, 5, 5, 3};
  const RecResponse response = engine.Recommend(noisy);
  ASSERT_EQ(response.items.size(), 2u);
  for (size_t j = 0; j < expected.items.size(); ++j) {
    EXPECT_EQ(response.items[j].item, expected.items[j].item);
    EXPECT_EQ(response.items[j].score, expected.items[j].score);
  }
}

// --- Regression: NaN scores must never corrupt the heap ordering or appear
// in responses. ---

TEST(TopKHeapTest, NaNPushesAreDroppedDeterministically) {
  const Real nan = std::nan("");
  TopKHeap heap(3);
  heap.Push(0, nan);
  heap.Push(1, 1.0);
  heap.Push(2, nan);
  heap.Push(3, 2.0);
  heap.Push(4, nan);
  const auto& sorted = heap.Sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].item, 3);
  EXPECT_EQ(sorted[1].item, 1);
}

TEST(ServingEngineTest, NaNScoresNeverRecommended) {
  // Items 1 and 4 score NaN for every user; the rest score -item.
  auto scorer = std::make_unique<FullScoreAdapter>(
      [](const std::vector<Index>& users, Matrix* scores) {
        scores->Resize(static_cast<Index>(users.size()), 6);
        for (Index r = 0; r < scores->rows(); ++r) {
          for (Index i = 0; i < 6; ++i) {
            (*scores)(r, i) =
                (i == 1 || i == 4) ? std::nan("") : -static_cast<Real>(i);
          }
        }
      },
      /*num_items=*/6);
  Dataset dataset;
  dataset.num_users = 2;
  dataset.num_items = 6;
  dataset.is_cold_item.assign(6, false);
  ServingEngine engine(std::move(scorer), dataset);
  RecRequest request;
  request.user = 0;
  request.k = 10;
  request.exclusion = ExclusionPolicy::kNone;
  const RecResponse response = engine.Recommend(request);
  ASSERT_EQ(response.items.size(), 4u);  // 6 items minus the 2 NaN-scored
  for (size_t j = 0; j < response.items.size(); ++j) {
    EXPECT_TRUE(std::isfinite(response.items[j].score));
    EXPECT_NE(response.items[j].item, 1);
    EXPECT_NE(response.items[j].item, 4);
  }
  // Deterministic ranking of the finite scores: 0 > -2 > -3 > -5.
  EXPECT_EQ(response.items[0].item, 0);
  EXPECT_EQ(response.items[1].item, 2);
  EXPECT_EQ(response.items[2].item, 3);
  EXPECT_EQ(response.items[3].item, 5);

  // The same pool through an explicit candidate list, duplicates included.
  request.candidates = {4, 1, 0, 2, 4, 3, 5, 1};
  const RecResponse pooled = engine.Recommend(request);
  ASSERT_EQ(pooled.items.size(), 4u);
  for (size_t j = 0; j < pooled.items.size(); ++j) {
    EXPECT_EQ(pooled.items[j].item, response.items[j].item);
    EXPECT_EQ(pooled.items[j].score, response.items[j].score);
  }
}

// --- Unequal explicit pools batch through one union stream; responses must
// match the same requests served alone. ---

TEST_F(ServingFixture, UnequalCandidatePoolsBatchBitExact) {
  ServingEngine engine(model_.get(), dataset_);
  std::vector<RecRequest> requests(4);
  requests[0].user = 0;
  requests[0].k = 4;
  requests[0].candidates = {2, 3, 4};
  requests[1].user = 1;
  requests[1].k = 2;
  requests[1].candidates = {5, 0, 5, 1};  // overlapping, with a duplicate
  requests[1].exclusion = ExclusionPolicy::kNone;
  requests[2].user = 2;
  requests[2].k = 3;  // full catalog mixed into the same batch
  requests[3].user = 2;
  requests[3].k = 6;
  requests[3].candidates = {1, 2};
  requests[3].exclusion = ExclusionPolicy::kCustom;
  requests[3].exclude = {2};
  const auto batched = engine.RecommendBatch(requests);
  ASSERT_EQ(batched.size(), 4u);
  for (size_t i = 0; i < requests.size(); ++i) {
    const RecResponse single = engine.Recommend(requests[i]);
    ASSERT_EQ(batched[i].items.size(), single.items.size()) << i;
    for (size_t j = 0; j < single.items.size(); ++j) {
      EXPECT_EQ(batched[i].items[j].item, single.items[j].item) << i;
      EXPECT_EQ(batched[i].items[j].score, single.items[j].score) << i;
    }
  }
}

// --- Sibling engines share exclusion/cold state instead of deep-copying
// it. ---

TEST_F(ServingFixture, SiblingEnginesShareState) {
  ServingEngine engine(model_.get(), dataset_);
  ASSERT_NE(engine.shared_state(), nullptr);
  ServingEngine sibling(model_->MakeScorer(), engine.shared_state());
  EXPECT_EQ(sibling.shared_state().get(), engine.shared_state().get());
  RecRequest request;
  request.user = 0;
  request.k = 6;
  const RecResponse a = engine.Recommend(request);
  const RecResponse b = sibling.Recommend(request);
  ASSERT_EQ(a.items.size(), b.items.size());
  for (size_t j = 0; j < a.items.size(); ++j) {
    EXPECT_EQ(a.items[j].item, b.items[j].item);
    EXPECT_EQ(a.items[j].score, b.items[j].score);
  }
}

// Fused block streaming must reproduce the legacy materialize-then-rank
// results bit-for-bit, for any block size.
TEST(ServingEngineParityTest, FusedMatchesMaterializedForTrainedModel) {
  SetLogLevel(LogLevel::kError);
  const Dataset dataset = GenerateSyntheticDataset(BeautySConfig(0.12));
  BprMf model;
  TrainOptions options;
  options.embedding_dim = 8;
  options.epochs = 3;
  options.eval_every = 3;
  model.Fit(dataset, options);

  const std::vector<Index> users{0, 2, 5, 9};
  const Index k = 20;
  // Legacy reference: full score matrix, then per-user bounded heap.
  Matrix scores;
  model.Score(users, &scores);
  const auto seen = dataset.TrainItemsByUser();
  std::vector<std::vector<ScoredItem>> reference;
  for (size_t r = 0; r < users.size(); ++r) {
    TopKHeap heap(k);
    const auto& exclude = seen[static_cast<size_t>(users[r])];
    for (Index item = 0; item < dataset.num_items; ++item) {
      if (std::binary_search(exclude.begin(), exclude.end(), item)) continue;
      heap.Push(item, scores(static_cast<Index>(r), item));
    }
    reference.push_back(heap.Sorted());
  }

  for (Index block : {Index{1}, Index{7}, Index{64}, dataset.num_items}) {
    ServingEngineOptions engine_options;
    engine_options.item_block = block;
    ServingEngine engine(&model, dataset, engine_options);
    std::vector<RecRequest> requests;
    for (Index user : users) {
      RecRequest request;
      request.user = user;
      request.k = k;
      requests.push_back(std::move(request));
    }
    const auto responses = engine.RecommendBatch(requests);
    for (size_t r = 0; r < users.size(); ++r) {
      ASSERT_EQ(responses[r].items.size(), reference[r].size())
          << "block=" << block;
      for (size_t j = 0; j < reference[r].size(); ++j) {
        EXPECT_EQ(responses[r].items[j].item, reference[r][j].item)
            << "block=" << block;
        EXPECT_EQ(responses[r].items[j].score, reference[r][j].score)
            << "block=" << block;
      }
    }
  }
}

TEST(ServingIntegrationTest, ColdShelfRecommendationsWork) {
  SetLogLevel(LogLevel::kError);
  const Dataset dataset = GenerateSyntheticDataset(BeautySConfig(0.15));
  auto model = CreateModel("Firzen");
  TrainOptions options;
  options.embedding_dim = 16;
  options.epochs = 4;
  options.eval_every = 4;
  model->Fit(dataset, options);
  model->PrepareColdInference(dataset);

  ServingEngine engine(model.get(), dataset);
  const auto recs = TopK(engine, 0, 5, dataset.ColdItems());
  ASSERT_EQ(recs.size(), 5u);
  for (const Recommendation& rec : recs) {
    EXPECT_TRUE(dataset.is_cold_item[static_cast<size_t>(rec.item)]);
    EXPECT_TRUE(std::isfinite(rec.score));
  }
}

}  // namespace
}  // namespace firzen
