// Int8 serving bit-identity suite (ctest label `quant`): for a fixed
// catalog and precision = kInt8, every serving configuration must produce
// byte-identical responses — shard counts {1, 2, 3, 7}, user batch sizes
// {1, 32, 33, 256}, pool sizes {1, 4}. The reference is the single
// unsharded ServingEngine at kInt8. This holds BY CONSTRUCTION (int8x int8
// products accumulate exactly in int32, so partitioning can't move an
// ulp), and this suite is what keeps that construction honest: any future
// "optimization" that re-quantizes per shard, per block, or per batch
// breaks these assertions immediately.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/eval/serving.h"
#include "src/eval/sharded_serving.h"
#include "src/models/serialize.h"
#include "src/tensor/matrix.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace firzen {
namespace {

constexpr Index kUsers = 300;  // >= the largest batch size under test
constexpr Index kItems = 97;   // prime: no shard count divides it evenly
constexpr Index kDim = 24;

Matrix RandomEmb(Index rows, Index cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  m.FillNormal(&rng, 1.0);
  return m;
}

const StaticRecommender& QuantModel() {
  static const StaticRecommender* model = new StaticRecommender(
      "static-int8", RandomEmb(kUsers, kDim, 91), RandomEmb(kItems, kDim, 92));
  return *model;
}

Dataset QuantDataset() {
  Dataset dataset;
  dataset.num_users = kUsers;
  dataset.num_items = kItems;
  dataset.is_cold_item.assign(static_cast<size_t>(kItems), false);
  for (Index i = 2 * kItems / 3; i < kItems; ++i) {
    dataset.is_cold_item[static_cast<size_t>(i)] = true;
  }
  Rng rng(5);
  for (Index u = 0; u < kUsers; ++u) {
    for (int t = 0; t < 5; ++t) {
      dataset.train.push_back({u, rng.UniformInt(2 * kItems / 3)});
    }
  }
  return dataset;
}

// Every request shape from the serving contract for one user: full catalog,
// explicit pool with a guaranteed duplicate, and the cold-only shelf.
void AppendRequestsFor(Index u, Rng* rng, std::vector<RecRequest>* requests) {
  RecRequest full;
  full.user = u;
  full.k = 9;
  requests->push_back(full);

  RecRequest pool;
  pool.user = u;
  pool.k = 4;
  pool.exclusion = ExclusionPolicy::kNone;
  for (int j = 0; j < 18; ++j) pool.candidates.push_back(rng->UniformInt(kItems));
  pool.candidates.push_back(pool.candidates.front());  // guaranteed dup
  requests->push_back(pool);

  RecRequest cold;
  cold.user = u;
  cold.k = 6;
  cold.cold_only = true;
  requests->push_back(cold);
}

void ExpectBitIdentical(const std::vector<RecResponse>& got,
                        const std::vector<RecResponse>& want,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].user, want[i].user) << label << " request " << i;
    ASSERT_EQ(got[i].items.size(), want[i].items.size())
        << label << " request " << i;
    for (size_t j = 0; j < want[i].items.size(); ++j) {
      ASSERT_EQ(got[i].items[j].item, want[i].items[j].item)
          << label << " request " << i << " rank " << j;
      ASSERT_EQ(got[i].items[j].score, want[i].items[j].score)
          << label << " request " << i << " rank " << j;
    }
  }
}

// The single-engine int8 reference every configuration must reproduce.
std::vector<RecResponse> ReferenceResponses(
    const std::vector<RecRequest>& requests) {
  const Dataset dataset = QuantDataset();
  ServingEngineOptions options;
  options.precision = ScoringPrecision::kInt8;
  const ServingEngine engine(&QuantModel(), dataset, options);
  std::vector<RecResponse> responses;
  responses.reserve(requests.size());
  for (const RecRequest& request : requests) {
    responses.push_back(engine.Recommend(request));
  }
  return responses;
}

TEST(QuantServingTest, Int8IsBitIdenticalAcrossShardCountsAndPools) {
  const Dataset dataset = QuantDataset();
  std::vector<RecRequest> requests;
  Rng rng(17);
  for (Index u = 0; u < 20; ++u) AppendRequestsFor(u, &rng, &requests);
  const std::vector<RecResponse> want = ReferenceResponses(requests);

  for (const Index shards : {Index{1}, Index{2}, Index{3}, Index{7}}) {
    for (const int pool_threads : {1, 4}) {
      ThreadPool pool(pool_threads);
      ShardedServingOptions options;
      options.num_shards = shards;
      options.pool = &pool;
      options.precision = ScoringPrecision::kInt8;
      const ShardedServingEngine engine(&QuantModel(), dataset, options);
      const std::vector<RecResponse> got = engine.RecommendBatch(requests);
      ExpectBitIdentical(got, want,
                         "shards=" + std::to_string(shards) +
                             " pool=" + std::to_string(pool_threads));
    }
  }
}

// Batch-size invariance: the same request answered inside batches of 1, 32,
// 33 (just past the arena's user-batch quantization cache boundary cases),
// and 256 must come back bit-identical. Batches are built from distinct
// users with one full-catalog request each, so position r of every batch
// prefix names the same request.
TEST(QuantServingTest, Int8IsBitIdenticalAcrossUserBatchSizes) {
  const Dataset dataset = QuantDataset();
  std::vector<RecRequest> all_requests;
  for (Index u = 0; u < 256; ++u) {
    RecRequest req;
    req.user = u;
    req.k = 9;
    all_requests.push_back(req);
  }
  const std::vector<RecResponse> want = ReferenceResponses(all_requests);

  ServingEngineOptions options;
  options.precision = ScoringPrecision::kInt8;
  const ServingEngine engine(&QuantModel(), dataset, options);
  for (const size_t batch : {size_t{1}, size_t{32}, size_t{33}, size_t{256}}) {
    for (size_t begin = 0; begin < all_requests.size(); begin += batch) {
      const size_t end = std::min(begin + batch, all_requests.size());
      const std::vector<RecRequest> slice(all_requests.begin() + begin,
                                          all_requests.begin() + end);
      const std::vector<RecResponse> got = engine.RecommendBatch(slice);
      ASSERT_EQ(got.size(), slice.size());
      for (size_t i = 0; i < got.size(); ++i) {
        ExpectBitIdentical({got[i]}, {want[begin + i]},
                           "batch=" + std::to_string(batch) + " begin=" +
                               std::to_string(begin));
      }
    }
  }

  // And the same batches through a sharded engine: batch size and shard
  // layout compose without breaking a bit.
  ThreadPool pool(4);
  ShardedServingOptions sharded_options;
  sharded_options.num_shards = 3;
  sharded_options.pool = &pool;
  sharded_options.precision = ScoringPrecision::kInt8;
  const ShardedServingEngine sharded(&QuantModel(), dataset, sharded_options);
  for (const size_t batch : {size_t{33}, size_t{256}}) {
    for (size_t begin = 0; begin < all_requests.size(); begin += batch) {
      const size_t end = std::min(begin + batch, all_requests.size());
      const std::vector<RecRequest> slice(all_requests.begin() + begin,
                                          all_requests.begin() + end);
      const std::vector<RecResponse> got = sharded.RecommendBatch(slice);
      for (size_t i = 0; i < got.size(); ++i) {
        ExpectBitIdentical({got[i]}, {want[begin + i]},
                           "sharded batch=" + std::to_string(batch));
      }
    }
  }
}

// fp32 and int8 must rank DIFFERENT scores through the SAME machinery: the
// int8 engine's scores are dequantized int32 dots, not the fp32 dots. Pin
// that the precision option actually changes the scorer (a silently-ignored
// flag would pass every invariance test above while serving fp32).
TEST(QuantServingTest, Int8PrecisionActuallyEngages) {
  const Dataset dataset = QuantDataset();
  RecRequest req;
  req.user = 3;
  req.k = kItems;  // full ranking, no truncation
  req.exclusion = ExclusionPolicy::kNone;

  ServingEngineOptions fp32_options;  // default precision
  const ServingEngine fp32_engine(&QuantModel(), dataset, fp32_options);
  ServingEngineOptions int8_options;
  int8_options.precision = ScoringPrecision::kInt8;
  const ServingEngine int8_engine(&QuantModel(), dataset, int8_options);

  const RecResponse fp32_resp = fp32_engine.Recommend(req);
  const RecResponse int8_resp = int8_engine.Recommend(req);
  ASSERT_EQ(fp32_resp.items.size(), int8_resp.items.size());
  bool any_score_differs = false;
  for (size_t j = 0; j < fp32_resp.items.size(); ++j) {
    if (fp32_resp.items[j].score != int8_resp.items[j].score) {
      any_score_differs = true;
      break;
    }
  }
  EXPECT_TRUE(any_score_differs)
      << "int8 responses carry fp32 scores: --precision is not wired";
}

}  // namespace
}  // namespace firzen
