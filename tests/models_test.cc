// Baseline model tests: a parameterized smoke + sanity suite over all
// sixteen registered models (train on a tiny world, score finitely, beat a
// degenerate ranking on warm validation), plus model-specific behaviours
// (VBPR cold pathway, DropoutNet behavior zeroing, CLCRec content fallback,
// KGAT cold reachability).
#include <gtest/gtest.h>

#include <cmath>

#include "src/data/split.h"
#include "src/data/synthetic.h"
#include "src/eval/evaluator.h"
#include "src/models/clcrec.h"
#include "src/models/dropoutnet.h"
#include "src/models/kgat.h"
#include "src/models/kgcn.h"
#include "src/models/lightgcn.h"
#include "src/models/registry.h"
#include "src/models/sampler.h"
#include "src/util/logging.h"

namespace firzen {
namespace {

const Dataset& TinyDataset() {
  static const Dataset* dataset = [] {
    auto* d = new Dataset(GenerateSyntheticDataset(BeautySConfig(0.18)));
    return d;
  }();
  return *dataset;
}

TrainOptions TinyTrainOptions() {
  TrainOptions options;
  options.embedding_dim = 16;
  options.epochs = 8;
  options.eval_every = 4;
  options.batch_size = 256;
  options.patience = 10;  // effectively off for smoke tests
  options.seed = 123;
  return options;
}

class ModelSmokeTest : public ::testing::TestWithParam<ModelInfo> {};

TEST_P(ModelSmokeTest, TrainsScoresAndRanksAboveDegenerate) {
  SetLogLevel(LogLevel::kError);
  const Dataset& dataset = TinyDataset();
  auto model = CreateModel(GetParam().name);
  ASSERT_NE(model, nullptr) << GetParam().name;
  EXPECT_EQ(model->Name(), GetParam().name);

  model->Fit(dataset, TinyTrainOptions());

  // Score a few users over all items: finite, correct shape.
  std::vector<Index> users{0, 1, 2, 3};
  Matrix scores;
  model->Score(users, &scores);
  ASSERT_EQ(scores.rows(), 4);
  ASSERT_EQ(scores.cols(), dataset.num_items);
  for (Index i = 0; i < scores.size(); ++i) {
    ASSERT_TRUE(std::isfinite(scores.data()[i])) << GetParam().name;
  }
  // Scores must differentiate items (not a constant ranking).
  Real min_v = scores(0, 0);
  Real max_v = scores(0, 0);
  for (Index i = 0; i < dataset.num_items; ++i) {
    min_v = std::min(min_v, scores(0, i));
    max_v = std::max(max_v, scores(0, i));
  }
  EXPECT_GT(max_v - min_v, 1e-9) << GetParam().name;

  // Warm evaluation runs and produces sane bounded metrics.
  const EvalResult warm =
      EvaluateRanking(dataset, dataset.warm_test, EvalSetting::kWarm,
                      *model->MakeScorer(), {});
  EXPECT_GT(warm.num_users, 0);
  EXPECT_GE(warm.metrics.mrr, 0.0);
  EXPECT_LE(warm.metrics.mrr, 1.0);
  EXPECT_LE(warm.metrics.recall, 1.0);

  // Cold inference path runs (re-mint: scorers snapshot state).
  model->PrepareColdInference(dataset);
  const EvalResult cold =
      EvaluateRanking(dataset, dataset.cold_test, EvalSetting::kCold,
                      *model->MakeScorer(), {});
  EXPECT_GT(cold.num_users, 0);
  EXPECT_LE(cold.metrics.recall, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllRegistered, ModelSmokeTest,
                         ::testing::ValuesIn(AllModels()),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (char& c : n) {
                             if (c == '+') c = '_';
                           }
                           return n;
                         });

TEST(RegistryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(CreateModel("NoSuchModel"), nullptr);
}

TEST(RegistryTest, SixteenModelsInPaperOrder) {
  const auto models = AllModels();
  ASSERT_EQ(models.size(), 16u);
  EXPECT_EQ(models.front().name, "BPR");
  EXPECT_EQ(models.back().name, "Firzen");
  EXPECT_EQ(models.back().category, "Ours");
}

TEST(SamplerTest, NegativesAreWarmAndUninteracted) {
  const Dataset& dataset = TinyDataset();
  BprSampler sampler(dataset, 7);
  const auto items_by_user = dataset.TrainItemsByUser();
  for (int i = 0; i < 500; ++i) {
    const auto t = sampler.Sample();
    EXPECT_FALSE(dataset.is_cold_item[static_cast<size_t>(t.neg)]);
    EXPECT_FALSE(dataset.is_cold_item[static_cast<size_t>(t.pos)]);
    const auto& seen = items_by_user[static_cast<size_t>(t.user)];
    EXPECT_TRUE(std::binary_search(seen.begin(), seen.end(), t.pos));
    EXPECT_FALSE(std::binary_search(seen.begin(), seen.end(), t.neg));
  }
}

TEST(BprTest, LearnsBetterThanInitialization) {
  SetLogLevel(LogLevel::kError);
  const Dataset& dataset = TinyDataset();
  auto model = CreateModel("BPR");
  TrainOptions options = TinyTrainOptions();
  options.epochs = 16;
  model->Fit(dataset, options);
  const EvalResult warm =
      EvaluateRanking(dataset, dataset.warm_test, EvalSetting::kWarm,
                      *model->MakeScorer(), {});
  // Degenerate (uniform random) MRR@20 over ~100 warm candidates is ~0.04;
  // a trained BPR on this separable world must clear it comfortably.
  EXPECT_GT(warm.metrics.mrr, 0.05);
}

TEST(VbprTest, ColdItemsGetContentScores) {
  SetLogLevel(LogLevel::kError);
  const Dataset& dataset = TinyDataset();
  auto model = CreateModel("VBPR");
  model->Fit(dataset, TinyTrainOptions());
  model->PrepareColdInference(dataset);
  // The content pathway gives cold items informative (non-tiny) scores.
  Matrix scores;
  model->Score({0}, &scores);
  Real cold_spread_min = 1e30;
  Real cold_spread_max = -1e30;
  for (Index item : dataset.ColdItems()) {
    cold_spread_min = std::min(cold_spread_min, scores(0, item));
    cold_spread_max = std::max(cold_spread_max, scores(0, item));
  }
  EXPECT_GT(cold_spread_max - cold_spread_min, 1e-6);
}

TEST(DropoutNetTest, ColdBehaviorInputIsZeroed) {
  SetLogLevel(LogLevel::kError);
  const Dataset& dataset = TinyDataset();
  DropoutNet model;
  model.Fit(dataset, TinyTrainOptions());
  Matrix before = model.ItemEmbeddings();
  model.PrepareColdInference(dataset);
  Matrix after = model.ItemEmbeddings();
  // Cold rows change when the (random, untrained) behavior input is zeroed;
  // warm rows stay identical.
  Real warm_diff = 0.0;
  Real cold_diff = 0.0;
  for (Index i = 0; i < dataset.num_items; ++i) {
    Real diff = 0.0;
    for (Index c = 0; c < before.cols(); ++c) {
      diff += std::abs(before(i, c) - after(i, c));
    }
    if (dataset.is_cold_item[static_cast<size_t>(i)]) {
      cold_diff += diff;
    } else {
      warm_diff += diff;
    }
  }
  EXPECT_EQ(warm_diff, 0.0);
  EXPECT_GT(cold_diff, 0.0);
}

TEST(ClcRecTest, ColdUsesPureContentRepresentation) {
  SetLogLevel(LogLevel::kError);
  const Dataset& dataset = TinyDataset();
  ClcRec model;
  model.Fit(dataset, TinyTrainOptions());
  const Matrix warm_mode = model.ItemEmbeddings();
  model.PrepareColdInference(dataset);
  const Matrix cold_mode = model.ItemEmbeddings();
  bool any_cold_changed = false;
  for (Index item : dataset.ColdItems()) {
    for (Index c = 0; c < warm_mode.cols(); ++c) {
      if (warm_mode(item, c) != cold_mode(item, c)) {
        any_cold_changed = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_cold_changed);
}

TEST(KgatTest, ColdItemsReachableThroughKg) {
  SetLogLevel(LogLevel::kError);
  const Dataset& dataset = TinyDataset();
  Kgat model;
  TrainOptions options = TinyTrainOptions();
  options.epochs = 6;
  model.Fit(dataset, options);
  // Cold item embeddings must be non-degenerate: KG edges (brand/category/
  // features) give them real representations, unlike pure-CF models.
  const Matrix emb = model.ItemEmbeddings();
  Index nonzero_cold = 0;
  for (Index item : dataset.ColdItems()) {
    Real norm = 0.0;
    for (Index c = 0; c < emb.cols(); ++c) norm += emb(item, c) * emb(item, c);
    if (norm > 1e-10) ++nonzero_cold;
  }
  EXPECT_EQ(nonzero_cold, static_cast<Index>(dataset.ColdItems().size()));
}

TEST(KgcnTest, UserConditionedScoresDiffer) {
  SetLogLevel(LogLevel::kError);
  const Dataset& dataset = TinyDataset();
  Kgcn model;
  TrainOptions options = TinyTrainOptions();
  options.epochs = 4;
  model.Fit(dataset, options);
  Matrix scores;
  model.Score({0, 1}, &scores);
  // Two different users should not produce identical rankings.
  Real diff = 0.0;
  for (Index i = 0; i < dataset.num_items; ++i) {
    diff += std::abs(scores(0, i) - scores(1, i));
  }
  EXPECT_GT(diff, 1e-9);
}

TEST(LightGcnTest, NormalColdInferenceChangesColdScores) {
  SetLogLevel(LogLevel::kError);
  Dataset dataset = TinyDataset();
  Rng rng(5);
  const Dataset normal = MakeNormalColdProtocol(dataset, &rng);
  LightGcn model;
  model.Fit(normal, TinyTrainOptions());
  Matrix strict_scores;
  model.Score({0}, &strict_scores);
  model.PrepareNormalColdInference(normal);
  Matrix normal_scores;
  model.Score({0}, &normal_scores);
  Real cold_delta = 0.0;
  for (Index item : normal.ColdItems()) {
    cold_delta += std::abs(strict_scores(0, item) - normal_scores(0, item));
  }
  EXPECT_GT(cold_delta, 0.0);
}

}  // namespace
}  // namespace firzen
