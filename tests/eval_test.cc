// Evaluation layer tests: metric formulas against hand-computed values, the
// all-ranking protocol with candidate masking, harmonic means, and the
// t-SNE / mixing-statistics utilities.
#include <gtest/gtest.h>

#include <cmath>

#include "src/data/synthetic.h"
#include "src/eval/evaluator.h"
#include "src/eval/harmonic.h"
#include "src/eval/metrics.h"
#include "src/eval/tsne.h"

namespace firzen {
namespace {

TEST(MetricsTest, PerfectRankingScoresOne) {
  const std::vector<Index> top{7, 8};
  const std::unordered_set<Index> relevant{7, 8};
  const MetricBundle m = ComputeUserMetrics(top, relevant, 2, 20);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.mrr, 1.0);
  EXPECT_DOUBLE_EQ(m.ndcg, 1.0);
  EXPECT_DOUBLE_EQ(m.hit, 1.0);
  EXPECT_DOUBLE_EQ(m.precision, 2.0 / 20.0);
}

TEST(MetricsTest, MissScoresZero) {
  const MetricBundle m =
      ComputeUserMetrics({1, 2, 3}, {9}, /*num_relevant=*/1, 20);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.mrr, 0.0);
  EXPECT_DOUBLE_EQ(m.ndcg, 0.0);
  EXPECT_DOUBLE_EQ(m.hit, 0.0);
}

TEST(MetricsTest, MrrUsesFirstHitRank) {
  // Relevant item at rank 3 (1-indexed).
  const MetricBundle m =
      ComputeUserMetrics({5, 6, 7, 8}, {7}, 1, 20);
  EXPECT_DOUBLE_EQ(m.mrr, 1.0 / 3.0);
}

TEST(MetricsTest, NdcgHandComputed) {
  // Hits at ranks 1 and 3 of top-3, 2 relevant total.
  const MetricBundle m = ComputeUserMetrics({4, 5, 6}, {4, 6}, 2, 3);
  const Real dcg = 1.0 / std::log2(2.0) + 1.0 / std::log2(4.0);
  const Real idcg = 1.0 / std::log2(2.0) + 1.0 / std::log2(3.0);
  EXPECT_NEAR(m.ndcg, dcg / idcg, 1e-12);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_NEAR(m.precision, 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, RecallCapsAtCandidateRelevants) {
  // 5 relevant but only K=2 cutoff.
  const MetricBundle m = ComputeUserMetrics({1, 2}, {1, 2, 3, 4, 5}, 5, 2);
  EXPECT_DOUBLE_EQ(m.recall, 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(m.ndcg, 1.0);  // ideal for the cutoff
}

// Deterministic evaluator fixture: scores = -item id (item 0 ranks first).
Dataset TinyEvalDataset() {
  Dataset d;
  d.name = "tiny";
  d.num_users = 2;
  d.num_items = 6;
  d.is_cold_item = {false, false, false, false, true, true};
  d.train = {{0, 0}, {1, 1}};
  d.warm_test = {{0, 1}, {1, 2}};
  d.cold_test = {{0, 4}, {1, 5}};
  return d;
}

FullScoreAdapter DescendingByItemId() {
  return FullScoreAdapter(
      [](const std::vector<Index>& users, Matrix* scores) {
        scores->Resize(static_cast<Index>(users.size()), 6);
        for (Index r = 0; r < scores->rows(); ++r) {
          for (Index i = 0; i < 6; ++i) {
            (*scores)(r, i) = -static_cast<Real>(i);
          }
        }
      },
      /*num_items=*/6);
}

TEST(EvaluatorTest, WarmSettingMasksTrainItems) {
  const Dataset d = TinyEvalDataset();
  const EvalResult result = EvaluateRanking(d, d.warm_test,
                                            EvalSetting::kWarm,
                                            DescendingByItemId(), {});
  EXPECT_EQ(result.num_users, 2);
  // User 0: candidates {1,2,3} (item 0 is in train), relevant {1} ranked
  // first -> mrr 1. User 1: candidates {0,2,3}, relevant {2} ranked second
  // (item 0 scores higher) -> mrr 1/2.
  EXPECT_NEAR(result.metrics.mrr, (1.0 + 0.5) / 2.0, 1e-12);
  EXPECT_NEAR(result.metrics.hit, 1.0, 1e-12);
}

TEST(EvaluatorTest, ColdSettingUsesOnlyColdCandidates) {
  const Dataset d = TinyEvalDataset();
  const EvalResult result = EvaluateRanking(d, d.cold_test,
                                            EvalSetting::kCold,
                                            DescendingByItemId(), {});
  // User 0: cold candidates {4,5}, relevant {4} ranks first -> mrr 1.
  // User 1: relevant {5} ranks second -> mrr 1/2.
  EXPECT_NEAR(result.metrics.mrr, 0.75, 1e-12);
}

TEST(EvaluatorTest, UsersWithoutRelevantAreSkipped) {
  Dataset d = TinyEvalDataset();
  // User 0's only warm-test item is in their train set -> no candidates
  // remain relevant.
  d.train = {{0, 1}, {1, 1}};
  const EvalResult result = EvaluateRanking(d, d.warm_test,
                                            EvalSetting::kWarm,
                                            DescendingByItemId(), {});
  EXPECT_EQ(result.num_users, 1);
}

TEST(EvaluatorTest, EmptySplitYieldsZeroUsers) {
  const Dataset d = TinyEvalDataset();
  const EvalResult result =
      EvaluateRanking(d, {}, EvalSetting::kWarm, DescendingByItemId(), {});
  EXPECT_EQ(result.num_users, 0);
  EXPECT_EQ(result.metrics.mrr, 0.0);
}

TEST(EvaluatorTest, ParallelMatchesSerial) {
  const Dataset d = GenerateSyntheticDataset(BeautySConfig(0.15));
  Rng rng(3);
  Matrix fake_user(d.num_users, 8);
  fake_user.FillNormal(&rng, 1.0);
  Matrix fake_item(d.num_items, 8);
  fake_item.FillNormal(&rng, 1.0);
  const DotProductScorer scorer(fake_user, fake_item);
  EvalOptions serial;
  EvalOptions parallel;
  ThreadPool pool(4);
  parallel.pool = &pool;
  const EvalResult a =
      EvaluateRanking(d, d.warm_test, EvalSetting::kWarm, scorer, serial);
  const EvalResult b =
      EvaluateRanking(d, d.warm_test, EvalSetting::kWarm, scorer, parallel);
  EXPECT_EQ(a.num_users, b.num_users);
  EXPECT_NEAR(a.metrics.mrr, b.metrics.mrr, 1e-12);
  EXPECT_NEAR(a.metrics.ndcg, b.metrics.ndcg, 1e-12);
}

TEST(EvaluatorTest, ResultsIndependentOfItemBlockSize) {
  const Dataset d = GenerateSyntheticDataset(BeautySConfig(0.15));
  Rng rng(4);
  Matrix fake_user(d.num_users, 8);
  fake_user.FillNormal(&rng, 1.0);
  Matrix fake_item(d.num_items, 8);
  fake_item.FillNormal(&rng, 1.0);
  const DotProductScorer scorer(fake_user, fake_item);
  EvalOptions reference;  // default item_block covers the whole catalog
  const EvalResult a =
      EvaluateRanking(d, d.warm_test, EvalSetting::kWarm, scorer, reference);
  for (Index block : {Index{1}, Index{7}, Index{64}}) {
    EvalOptions streamed;
    streamed.item_block = block;
    const EvalResult b =
        EvaluateRanking(d, d.warm_test, EvalSetting::kWarm, scorer, streamed);
    EXPECT_EQ(a.num_users, b.num_users) << "block=" << block;
    EXPECT_DOUBLE_EQ(a.metrics.mrr, b.metrics.mrr) << "block=" << block;
    EXPECT_DOUBLE_EQ(a.metrics.recall, b.metrics.recall) << "block=" << block;
    EXPECT_DOUBLE_EQ(a.metrics.ndcg, b.metrics.ndcg) << "block=" << block;
  }
}

TEST(HarmonicTest, FormulaAndShortBarrelPenalty) {
  EXPECT_DOUBLE_EQ(HarmonicMean(4.0, 4.0), 4.0);
  EXPECT_NEAR(HarmonicMean(1.0, 100.0), 2.0 * 100.0 / 101.0, 1e-12);
  EXPECT_DOUBLE_EQ(HarmonicMean(0.0, 100.0), 0.0);
  // HM <= arithmetic mean always.
  EXPECT_LE(HarmonicMean(3.0, 9.0), 6.0);
}

TEST(TsneTest, ProducesFinite2DEmbedding) {
  Rng rng(9);
  Matrix x(60, 10);
  x.FillNormal(&rng, 1.0);
  TsneOptions options;
  options.iterations = 50;
  const Matrix y = TsneEmbed(x, options);
  ASSERT_EQ(y.rows(), 60);
  ASSERT_EQ(y.cols(), 2);
  for (Index i = 0; i < y.size(); ++i) {
    EXPECT_TRUE(std::isfinite(y.data()[i]));
  }
}

TEST(TsneTest, SeparatesWellSeparatedClusters) {
  Rng rng(10);
  Matrix x(40, 6);
  for (Index i = 0; i < 40; ++i) {
    const Real center = i < 20 ? 20.0 : -20.0;
    for (Index c = 0; c < 6; ++c) x(i, c) = center + rng.Normal();
  }
  TsneOptions options;
  options.iterations = 150;
  options.perplexity = 10.0;
  const Matrix y = TsneEmbed(x, options);
  // Mean intra-cluster distance far below inter-cluster centroid distance.
  Real c0[2] = {0, 0};
  Real c1[2] = {0, 0};
  for (Index i = 0; i < 20; ++i) {
    c0[0] += y(i, 0) / 20;
    c0[1] += y(i, 1) / 20;
  }
  for (Index i = 20; i < 40; ++i) {
    c1[0] += y(i, 0) / 20;
    c1[1] += y(i, 1) / 20;
  }
  const Real inter = std::hypot(c0[0] - c1[0], c0[1] - c1[1]);
  Real intra = 0.0;
  for (Index i = 0; i < 20; ++i) {
    intra += std::hypot(y(i, 0) - c0[0], y(i, 1) - c0[1]) / 20.0;
  }
  EXPECT_GT(inter, intra);
}

TEST(MixingStatsTest, DetectsIsolatedVsMixedCold) {
  Rng rng(11);
  const Index n = 60;
  std::vector<bool> is_cold(n, false);
  for (Index i = 40; i < n; ++i) is_cold[static_cast<size_t>(i)] = true;

  // Isolated: cold items live in a far-away cluster.
  Matrix isolated(n, 4);
  for (Index i = 0; i < n; ++i) {
    const Real center = is_cold[static_cast<size_t>(i)] ? 50.0 : 0.0;
    for (Index c = 0; c < 4; ++c) isolated(i, c) = center + rng.Normal();
  }
  // Mixed: identical distribution.
  Matrix mixed(n, 4);
  mixed.FillNormal(&rng, 1.0);

  const MixingStats iso = ComputeMixingStats(isolated, is_cold, 5);
  const MixingStats mix = ComputeMixingStats(mixed, is_cold, 5);
  EXPECT_LT(iso.cold_warm_knn_mix, 0.3);
  EXPECT_GT(mix.cold_warm_knn_mix, 0.5);
  EXPECT_GT(iso.centroid_distance_ratio, mix.centroid_distance_ratio);
}

}  // namespace
}  // namespace firzen
