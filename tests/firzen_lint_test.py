#!/usr/bin/env python3
"""Self-test for tools/firzen_lint.py against tests/lint_fixtures/.

Asserts the EXACT multiset of (file, rule) findings over the fixture tree:
every rule fires on its bad-pattern file, the allow()-escaped file produces
zero findings, and nothing else fires. A linter that silently stops
matching (a regex typo, a stripper bug) fails here, not in review.

Usage: firzen_lint_test.py <repo_root>
"""

import subprocess
import sys


EXPECTED = sorted([
    ("src/core/bad_banned_rng.cc", "banned-rng"),
    ("src/core/bad_banned_rng.cc", "banned-rng"),
    ("src/data/bad_raw_sort.cc", "raw-sort"),
    ("src/eval/bad_unordered_iteration.cc", "unordered-iteration"),
    ("src/graph/bad_include_layering.cc", "include-layering"),
    ("src/models/bad_stray_cpuid.cc", "stray-cpuid"),
    ("src/models/bad_stray_cpuid.cc", "stray-cpuid"),
    ("src/serve/bad_banned_time.cc", "banned-time"),
    ("src/serve/bad_banned_time.cc", "banned-time"),
    ("src/tensor/bad_raw_float_accum.cc", "raw-float-accum"),
])


def main():
    if len(sys.argv) != 2:
        print("usage: firzen_lint_test.py <repo_root>", file=sys.stderr)
        return 2
    root = sys.argv[1]
    lint = root + "/tools/firzen_lint.py"
    fixtures = root + "/tests/lint_fixtures"

    proc = subprocess.run(
        [sys.executable, lint, "--src-root", fixtures],
        capture_output=True, text=True)

    if proc.returncode != 1:
        print("FAIL: expected exit 1 over the fixtures, got %d\nstdout:\n%s"
              "\nstderr:\n%s" % (proc.returncode, proc.stdout, proc.stderr))
        return 1

    got = []
    for line in proc.stdout.splitlines():
        # path:line: rule: message
        parts = line.split(":", 3)
        if len(parts) < 3:
            print("FAIL: unparseable finding line: %r" % line)
            return 1
        got.append((parts[0], parts[2].strip()))
    got.sort()

    if got != EXPECTED:
        print("FAIL: finding set mismatch")
        for pair in got:
            marker = " " if pair in EXPECTED else "+"
            print("  %s %s: %s" % (marker, pair[0], pair[1]))
        missing = [p for p in EXPECTED if p not in got]
        for pair in missing:
            print("  - %s: %s" % (pair[0], pair[1]))
        return 1

    allowed = [g for g in got if "allowed_escapes" in g[0]]
    if allowed:
        print("FAIL: the allow()-escaped fixture produced findings: %r"
              % allowed)
        return 1

    print("firzen_lint_test: OK (%d findings, exact match)" % len(got))
    return 0


if __name__ == "__main__":
    sys.exit(main())
