// AdmissionController suite: coalescing concurrent Recommend calls into
// fused user batches must be observably side-effect-free — every SERVED
// response bit-identical to the engine serving that request alone — because
// scores are batch-size-invariant (src/tensor/matrix.h) and requests ride
// private heaps. Also pins the dispatcher mechanics (size bound, wait
// bound, leader hand-off, stats), the engine AttachAdmission routing, and
// the overload-protection policies: deadline-aware drains (EDF order,
// expired tickets rejected with kDeadlineExceeded instead of scored late),
// bounded-queue load shedding with hysteresis (kShed, distinct start/stop
// watermarks), per-tenant weighted fair share, and structured failure
// fan-out (a throwing fused pass rejects every coalesced ticket with
// kBackendError — covered by a fault-injection scorer that throws on the
// Nth ScoreBlock call). The multi-threaded stresses here run under the
// -DFIRZEN_SANITIZE=thread pass of tools/run_checks.sh (the -R filter
// matches this binary), making the ticket queue, the policy selection, and
// the leader-follower hand-off data-race canaries.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "src/eval/admission.h"
#include "src/eval/serving.h"
#include "src/eval/sharded_serving.h"
#include "src/models/scorer.h"
#include "src/models/serialize.h"
#include "src/util/rng.h"

namespace firzen {
namespace {

constexpr Index kUsers = 48;
constexpr Index kItems = 2500;
constexpr Index kDim = 16;

Matrix RandomEmb(Index rows, Index cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  m.FillNormal(&rng, 1.0);
  return m;
}

// Scorer that throws on the Nth ScoreBlock call (1-based) and scores
// normally otherwise — the fault model for "a backend died mid-pass".
// Thread-safe: the call counter is atomic, everything else delegates to a
// shared DotProductScorer.
class FaultInjectionScorer : public Scorer {
 public:
  FaultInjectionScorer(Matrix user_emb, Matrix item_emb, int throw_on_call)
      : user_emb_(std::move(user_emb)),
        item_emb_(std::move(item_emb)),
        inner_(user_emb_, item_emb_),
        throw_on_(throw_on_call) {}

  using Scorer::ScoreBlock;
  using Scorer::ScoreCandidates;

  Index num_items() const override { return inner_.num_items(); }

  void ScoreBlock(const std::vector<Index>& users, ItemBlock block,
                  MatrixView out, ScoringArena* arena) const override {
    if (calls_.fetch_add(1) + 1 == throw_on_) {
      throw std::runtime_error("injected scorer fault");
    }
    inner_.ScoreBlock(users, block, out, arena);
  }

  void ScoreCandidates(const std::vector<Index>& users,
                       const std::vector<Index>& candidates, MatrixView out,
                       ScoringArena* arena) const override {
    inner_.ScoreCandidates(users, candidates, out, arena);
  }

  int score_block_calls() const { return calls_.load(); }

 private:
  Matrix user_emb_;
  Matrix item_emb_;
  DotProductScorer inner_;
  int throw_on_;
  mutable std::atomic<int> calls_{0};
};

class AdmissionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_.num_users = kUsers;
    dataset_.num_items = kItems;
    dataset_.is_cold_item.assign(static_cast<size_t>(kItems), false);
    for (Index i = 0; i < kItems; i += 7) {
      dataset_.is_cold_item[static_cast<size_t>(i)] = true;
    }
    Rng rng(11);
    for (Index u = 0; u < kUsers; ++u) {
      for (int t = 0; t < 12; ++t) {
        dataset_.train.push_back({u, rng.UniformInt(kItems)});
      }
    }
    model_ = std::make_unique<StaticRecommender>(
        "admission", RandomEmb(kUsers, kDim, 1), RandomEmb(kItems, kDim, 2));
  }

  // A mixed-traffic request list: full-catalog, explicit pools (equal,
  // unequal, duplicated entries), custom exclusions, the cold shelf, and
  // varying k — every batching mode the fused pass can take.
  std::vector<RecRequest> MixedRequests() const {
    std::vector<RecRequest> requests;
    Rng rng(23);
    for (Index u = 0; u < 20; ++u) {
      RecRequest request;
      request.user = u % kUsers;
      request.k = 5 + (u % 3) * 10;
      switch (u % 5) {
        case 0:
          break;  // full catalog
        case 1:
          for (int j = 0; j < 40; ++j) {
            request.candidates.push_back(rng.UniformInt(kItems));
          }
          break;
        case 2:
          request.candidates = {5, 9, 9, 123, 777, 5};  // dups
          break;
        case 3:
          request.exclusion = ExclusionPolicy::kCustom;
          request.exclude = {1, 2, 3, 2};
          break;
        case 4:
          request.cold_only = true;
          break;
      }
      requests.push_back(std::move(request));
    }
    return requests;
  }

  static void ExpectSameResponse(const RecResponse& got,
                                 const RecResponse& want, size_t tag) {
    ASSERT_EQ(got.status, RecStatus::kOk) << tag;
    ASSERT_EQ(got.user, want.user) << tag;
    ASSERT_EQ(got.items.size(), want.items.size()) << tag;
    for (size_t j = 0; j < want.items.size(); ++j) {
      ASSERT_EQ(got.items[j].item, want.items[j].item) << tag << " rank " << j;
      ASSERT_EQ(got.items[j].score, want.items[j].score)
          << tag << " rank " << j;
    }
  }

  Dataset dataset_;
  std::unique_ptr<StaticRecommender> model_;
};

// The coalescing contract itself: a request fused with arbitrary co-riders
// answers bit-identically to the same request served alone.
TEST_F(AdmissionFixture, FusedBatchesMatchServingAloneBitExact) {
  const ServingEngine engine(model_.get(), dataset_);
  AdmissionOptions options;
  options.max_batch = 8;  // force splitting across several fused passes
  options.max_wait_us = 0;
  const AdmissionController admission(&engine, options);

  const std::vector<RecRequest> requests = MixedRequests();
  const auto fused = admission.RecommendBatch(requests);
  ASSERT_EQ(fused.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const RecResponse alone = engine.RecommendBatchDirect({requests[i]})[0];
    ExpectSameResponse(fused[i], alone, i);
  }
  EXPECT_EQ(admission.admitted_requests(), requests.size());
}

// The coalescing contract holds under EVERY drain policy, over both the
// plain and the sharded engine: drain order changes when a request is
// served, never what its served response holds.
TEST_F(AdmissionFixture, AllPoliciesPreserveCoalescingOnBothEngines) {
  const ServingEngine plain(model_.get(), dataset_);
  ShardedServingOptions sharded_options;
  sharded_options.num_shards = 3;
  const ShardedServingEngine sharded(model_.get(), dataset_, sharded_options);

  // Mixed traffic with the new ticket metadata on top: generous deadlines
  // (far too long to expire) and a tenant spread, so the deadline and
  // fair-share selection paths actually reorder the drains.
  std::vector<RecRequest> requests = MixedRequests();
  for (size_t i = 0; i < requests.size(); ++i) {
    if (i % 2 == 0) {
      requests[i].deadline_us = 30'000'000 + static_cast<int64_t>(i) * 1000;
    }
    requests[i].tenant = static_cast<Index>(i % 3);
  }

  std::vector<RecResponse> want_plain;
  for (const RecRequest& request : requests) {
    want_plain.push_back(plain.RecommendBatchDirect({request})[0]);
  }

  for (const DrainPolicy policy :
       {DrainPolicy::kFifo, DrainPolicy::kDeadline, DrainPolicy::kFairShare}) {
    AdmissionOptions options;
    options.max_batch = 8;
    options.max_wait_us = 0;
    options.drain_policy = policy;
    options.tenant_weights = {2, 1, 3};
    const AdmissionController plain_admission(&plain, options);
    const AdmissionController sharded_admission(&sharded, options);

    const auto via_plain = plain_admission.RecommendBatch(requests);
    const auto via_sharded = sharded_admission.RecommendBatch(requests);
    ASSERT_EQ(via_plain.size(), requests.size());
    ASSERT_EQ(via_sharded.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      ExpectSameResponse(via_plain[i], want_plain[i], i);
      // The sharded engine is bit-identical to the plain one by the shard
      // invariance contract, so one reference pins both.
      ExpectSameResponse(via_sharded[i], want_plain[i], 1000 + i);
    }
    EXPECT_EQ(plain_admission.shed_requests(), 0u);
    EXPECT_EQ(plain_admission.deadline_rejections(), 0u);
  }
}

// Single-caller dispatch is deterministic: a 10-request batch under a
// 4-user size bound drains FIFO into fused passes of 4, 4, 2.
TEST_F(AdmissionFixture, SizeBoundSplitsDeterministically) {
  const ServingEngine engine(model_.get(), dataset_);
  AdmissionOptions options;
  options.max_batch = 4;
  options.max_wait_us = 0;
  const AdmissionController admission(&engine, options);

  std::vector<RecRequest> requests(10);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].user = static_cast<Index>(i) % kUsers;
    requests[i].k = 7;
  }
  const auto responses = admission.RecommendBatch(requests);
  ASSERT_EQ(responses.size(), 10u);
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(responses[i].user, requests[i].user) << i;
    EXPECT_EQ(responses[i].status, RecStatus::kOk) << i;
  }
  EXPECT_EQ(admission.admitted_requests(), 10u);
  EXPECT_EQ(admission.fused_batches(), 3u);
}

// max_batch = 1 is the A/B baseline: every request runs alone.
TEST_F(AdmissionFixture, MaxBatchOneServesEveryRequestAlone) {
  const ServingEngine engine(model_.get(), dataset_);
  AdmissionOptions options;
  options.max_batch = 1;
  options.max_wait_us = 0;
  const AdmissionController admission(&engine, options);
  std::vector<RecRequest> requests(5);
  for (size_t i = 0; i < requests.size(); ++i) requests[i].user = 3;
  admission.RecommendBatch(requests);
  EXPECT_EQ(admission.fused_batches(), 5u);
}

// max_batch larger than the queue depth at drain time takes what is there:
// one fused pass, not an error and not a stall.
TEST_F(AdmissionFixture, MaxBatchLargerThanQueueDrainsWhatIsQueued) {
  const ServingEngine engine(model_.get(), dataset_);
  AdmissionOptions options;
  options.max_batch = 64;
  options.max_wait_us = 0;  // immediate drain
  const AdmissionController admission(&engine, options);
  std::vector<RecRequest> requests(5);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].user = static_cast<Index>(i);
  }
  const auto responses = admission.RecommendBatch(requests);
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].status, RecStatus::kOk) << i;
  }
  EXPECT_EQ(admission.fused_batches(), 1u);
  EXPECT_EQ(admission.admitted_requests(), 5u);
}

// The wait bound must release an unfilled batch: a lone request returns
// (correctly) even though no co-rider ever arrives.
TEST_F(AdmissionFixture, WaitBoundReleasesLoneRequest) {
  const ServingEngine engine(model_.get(), dataset_);
  AdmissionOptions options;
  options.max_batch = 64;
  options.max_wait_us = 10000;  // 10ms: long enough to prove we waited out
  const AdmissionController admission(&engine, options);
  RecRequest request;
  request.user = 1;
  request.k = 9;
  const RecResponse got = admission.Recommend(request);
  const RecResponse want = engine.RecommendBatchDirect({request})[0];
  ExpectSameResponse(got, want, 0);
  EXPECT_EQ(admission.fused_batches(), 1u);
}

// Engine routing: once attached, the engine's own entry points go through
// the controller; detaching restores the direct path.
TEST_F(AdmissionFixture, EngineRoutesThroughAttachedController) {
  ServingEngine engine(model_.get(), dataset_);
  AdmissionOptions options;
  options.max_wait_us = 0;
  const AdmissionController admission(&engine, options);
  EXPECT_EQ(engine.admission(), nullptr);
  engine.AttachAdmission(&admission);
  EXPECT_EQ(engine.admission(), &admission);

  RecRequest request;
  request.user = 2;
  request.k = 4;
  const RecResponse via_engine = engine.Recommend(request);
  EXPECT_EQ(admission.admitted_requests(), 1u);
  const auto batch = engine.RecommendBatch({request, request});
  EXPECT_EQ(admission.admitted_requests(), 3u);
  ExpectSameResponse(batch[0], via_engine, 0);

  engine.AttachAdmission(nullptr);
  engine.Recommend(request);
  EXPECT_EQ(admission.admitted_requests(), 3u);  // direct path again
}

// The sharded front end admits identically: fused responses match the
// sharded engine's own direct answers (which in turn match the single
// engine by the shard-invariance contract).
TEST_F(AdmissionFixture, ShardedEngineAdmissionParity) {
  ShardedServingOptions sharded_options;
  sharded_options.num_shards = 3;
  ShardedServingEngine engine(model_.get(), dataset_, sharded_options);
  AdmissionOptions options;
  options.max_batch = 6;
  options.max_wait_us = 0;
  const AdmissionController admission(&engine, options);
  engine.AttachAdmission(&admission);

  const std::vector<RecRequest> requests = MixedRequests();
  const auto fused = engine.RecommendBatch(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    const RecResponse alone = engine.RecommendBatchDirect({requests[i]})[0];
    ExpectSameResponse(fused[i], alone, i);
  }
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

// A zero budget is already expired at enqueue: rejected immediately with
// kDeadlineExceeded, never queued, never scored.
TEST_F(AdmissionFixture, ZeroDeadlineRejectsAtEnqueue) {
  const ServingEngine engine(model_.get(), dataset_);
  AdmissionOptions options;
  options.max_wait_us = 0;
  const AdmissionController admission(&engine, options);
  RecRequest request;
  request.user = 7;
  request.k = 5;
  request.deadline_us = 0;
  const RecResponse got = admission.Recommend(request);
  EXPECT_EQ(got.status, RecStatus::kDeadlineExceeded);
  EXPECT_EQ(got.user, 7);
  EXPECT_TRUE(got.items.empty());
  EXPECT_EQ(admission.admitted_requests(), 0u);
  EXPECT_EQ(admission.fused_batches(), 0u);
  EXPECT_EQ(admission.deadline_rejections(), 1u);
}

// A ticket whose budget expires while the leader holds the batch open is
// rejected at drain time instead of scored late — and the collect wait is
// capped at the nearest deadline, so the rejection is prompt. A co-rider
// without a deadline still gets served, bit-exactly.
TEST_F(AdmissionFixture, ExpiredWhileQueuedIsRejectedNotScoredLate) {
  const ServingEngine engine(model_.get(), dataset_);
  AdmissionOptions options;
  options.max_batch = 64;
  options.max_wait_us = 500000;  // 500ms hold: way past the 2ms deadline
  const AdmissionController admission(&engine, options);

  std::vector<RecRequest> requests(2);
  requests[0].user = 1;
  requests[0].k = 5;
  requests[0].deadline_us = 2000;  // expires during the collect hold
  requests[1].user = 2;
  requests[1].k = 5;  // no deadline

  const auto t0 = std::chrono::steady_clock::now();
  const auto responses = admission.RecommendBatch(requests);
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  EXPECT_EQ(responses[0].status, RecStatus::kDeadlineExceeded);
  EXPECT_TRUE(responses[0].items.empty());
  const RecResponse want = engine.RecommendBatchDirect({requests[1]})[0];
  ExpectSameResponse(responses[1], want, 1);
  EXPECT_EQ(admission.deadline_rejections(), 1u);
  // The deadline capped the hold: we did NOT sit out the full 500ms wait
  // bound (generous margin for slow CI).
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            400);
}

// DrainPolicy::kDeadline drains earliest-deadline-first: the batch whose
// oldest deadline is nearest goes first; deadline-less tickets rank last,
// in arrival order.
TEST_F(AdmissionFixture, DeadlinePolicyDrainsEarliestDeadlineFirst) {
  const ServingEngine engine(model_.get(), dataset_);
  std::vector<std::vector<Index>> drained;  // users per fused pass
  AdmissionOptions options;
  options.max_batch = 2;
  options.max_wait_us = 0;
  options.drain_policy = DrainPolicy::kDeadline;
  const AdmissionController admission(
      [&](const std::vector<RecRequest>& requests) {
        std::vector<Index> users;
        for (const RecRequest& r : requests) users.push_back(r.user);
        drained.push_back(std::move(users));
        return engine.RecommendBatchDirect(requests);
      },
      options);

  // Arrival order 0..3; deadlines (none, 100ms, 50ms, none). EDF batches
  // of 2: [2, 1] then [0, 3]. Budgets are far too long to expire.
  std::vector<RecRequest> requests(4);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].user = static_cast<Index>(i);
    requests[i].k = 3;
  }
  requests[1].deadline_us = 100000;
  requests[2].deadline_us = 50000;
  const auto responses = admission.RecommendBatch(requests);
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].status, RecStatus::kOk) << i;
  }
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0], (std::vector<Index>{2, 1}));
  EXPECT_EQ(drained[1], (std::vector<Index>{0, 3}));
}

// ---------------------------------------------------------------------------
// Load shedding with hysteresis
// ---------------------------------------------------------------------------

// Deterministic single-caller shedding: a 10-request batch against a
// 4-deep queue admits the first 4 tickets, crosses the high watermark, and
// sheds the other 6 immediately — then the next call finds the queue
// drained below the resume watermark, un-sheds, and admits again. Both
// hysteresis crossings (start at max, stop at resume) in one sequence.
TEST_F(AdmissionFixture, ShedHysteresisCrossesBothWatermarks) {
  const ServingEngine engine(model_.get(), dataset_);
  AdmissionOptions options;
  options.max_batch = 64;
  options.max_wait_us = 0;
  options.max_queue_depth = 4;
  options.resume_queue_depth = 2;
  const AdmissionController admission(&engine, options);

  std::vector<RecRequest> requests(10);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].user = static_cast<Index>(i) % kUsers;
    requests[i].k = 5;
  }
  const auto responses = admission.RecommendBatch(requests);
  for (size_t i = 0; i < 4; ++i) {
    const RecResponse alone = engine.RecommendBatchDirect({requests[i]})[0];
    ExpectSameResponse(responses[i], alone, i);
  }
  for (size_t i = 4; i < 10; ++i) {
    EXPECT_EQ(responses[i].status, RecStatus::kShed) << i;
    EXPECT_EQ(responses[i].user, requests[i].user) << i;
    EXPECT_TRUE(responses[i].items.empty()) << i;
  }
  EXPECT_EQ(admission.admitted_requests(), 4u);
  EXPECT_EQ(admission.shed_requests(), 6u);

  // The queue has fully drained (0 <= resume watermark 2): shedding stops
  // and the same traffic admits 4 again before re-crossing the high
  // watermark.
  const auto second = admission.RecommendBatch(requests);
  size_t ok = 0;
  size_t shed = 0;
  for (const RecResponse& response : second) {
    if (response.status == RecStatus::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(response.status, RecStatus::kShed);
      ++shed;
    }
  }
  EXPECT_EQ(ok, 4u);
  EXPECT_EQ(shed, 6u);
  EXPECT_EQ(admission.admitted_requests(), 8u);
  EXPECT_EQ(admission.shed_requests(), 12u);
}

// Without a queue bound (the default), nothing is ever shed — the legacy
// unbounded behavior is preserved exactly.
TEST_F(AdmissionFixture, UnboundedQueueNeverSheds) {
  const ServingEngine engine(model_.get(), dataset_);
  AdmissionOptions options;
  options.max_batch = 2;
  options.max_wait_us = 0;
  const AdmissionController admission(&engine, options);
  std::vector<RecRequest> requests(30);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].user = static_cast<Index>(i) % kUsers;
  }
  const auto responses = admission.RecommendBatch(requests);
  for (const RecResponse& response : responses) {
    EXPECT_EQ(response.status, RecStatus::kOk);
  }
  EXPECT_EQ(admission.shed_requests(), 0u);
}

// ---------------------------------------------------------------------------
// Per-tenant weighted fair share
// ---------------------------------------------------------------------------

// Deficit-style weighted round-robin: with weights {2, 1} and a hot tenant
// 0 that enqueued first, every fused pass still carries tenant 1 traffic —
// 2:1 interleave, never starvation.
TEST_F(AdmissionFixture, FairSharePolicyInterleavesTenantsByWeight) {
  const ServingEngine engine(model_.get(), dataset_);
  std::vector<std::vector<Index>> drained;  // users per fused pass
  AdmissionOptions options;
  options.max_batch = 3;
  options.max_wait_us = 0;
  options.drain_policy = DrainPolicy::kFairShare;
  options.tenant_weights = {2, 1};
  const AdmissionController admission(
      [&](const std::vector<RecRequest>& requests) {
        std::vector<Index> users;
        for (const RecRequest& r : requests) users.push_back(r.user);
        drained.push_back(std::move(users));
        return engine.RecommendBatchDirect(requests);
      },
      options);

  // Hot tenant 0 floods first (users 0..5), tenant 1 queues behind
  // (users 40..42). FIFO would serve tenant 1 only in the last pass;
  // fair share interleaves every pass.
  std::vector<RecRequest> requests;
  for (Index u = 0; u < 6; ++u) {
    RecRequest request;
    request.user = u;
    request.tenant = 0;
    requests.push_back(std::move(request));
  }
  for (Index u = 40; u < 43; ++u) {
    RecRequest request;
    request.user = u;
    request.tenant = 1;
    requests.push_back(std::move(request));
  }
  const auto responses = admission.RecommendBatch(requests);
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].status, RecStatus::kOk) << i;
  }
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0], (std::vector<Index>{0, 1, 40}));
  EXPECT_EQ(drained[1], (std::vector<Index>{2, 3, 41}));
  EXPECT_EQ(drained[2], (std::vector<Index>{4, 5, 42}));
}

// Unknown tenants (and ids past the weight vector) weigh 1 instead of
// crashing or starving.
TEST_F(AdmissionFixture, FairShareDefaultsUnknownTenantsToWeightOne) {
  const ServingEngine engine(model_.get(), dataset_);
  AdmissionOptions options;
  options.max_batch = 2;
  options.max_wait_us = 0;
  options.drain_policy = DrainPolicy::kFairShare;
  options.tenant_weights = {3};  // tenant 7 below is past the end
  const AdmissionController admission(&engine, options);
  std::vector<RecRequest> requests(4);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].user = static_cast<Index>(i);
    requests[i].tenant = (i % 2 == 0) ? 0 : 7;
  }
  const auto responses = admission.RecommendBatch(requests);
  for (size_t i = 0; i < responses.size(); ++i) {
    const RecResponse alone = engine.RecommendBatchDirect({requests[i]})[0];
    ExpectSameResponse(responses[i], alone, i);
  }
}

// ---------------------------------------------------------------------------
// Structured failure fan-out
// ---------------------------------------------------------------------------

// A throwing backend must not strand tickets, poison the queue, or tear
// results: every ticket of the failed pass completes with kBackendError
// and the controller keeps serving afterwards.
TEST_F(AdmissionFixture, ThrowingBackendFailsTicketsWithStatusAndRecovers) {
  const ServingEngine engine(model_.get(), dataset_);
  int calls = 0;
  AdmissionOptions options;
  options.max_wait_us = 0;
  const AdmissionController admission(
      [&](const std::vector<RecRequest>& requests) {
        if (calls++ == 0) throw std::runtime_error("backend down");
        return engine.RecommendBatchDirect(requests);
      },
      options);
  RecRequest request;
  request.user = 1;
  request.k = 3;
  const RecResponse failed = admission.Recommend(request);
  EXPECT_EQ(failed.status, RecStatus::kBackendError);
  EXPECT_EQ(failed.user, 1);
  EXPECT_TRUE(failed.items.empty());
  EXPECT_EQ(admission.backend_failures(), 1u);
  // The queue is consistent after the failure: the next request serves.
  const RecResponse got = admission.Recommend(request);
  const RecResponse want = engine.RecommendBatchDirect({request})[0];
  ExpectSameResponse(got, want, 0);
  EXPECT_EQ(admission.fused_batches(), 2u);
}

// The regression the fault-injection scorer pins: a backend exception in
// the MIDDLE of a fused pass (the Nth ScoreBlock call, here the second
// pass's catalog stream) rejects EVERY coalesced ticket of that pass with
// a per-ticket kBackendError — followers neither hang nor see a torn
// result — while earlier and later passes serve normally.
TEST_F(AdmissionFixture, FaultInjectionScorerFailsWholeFusedPass) {
  // 2500 items under the default 8192 item_block = exactly one ScoreBlock
  // call per full-catalog fused pass, so pass #2 is call #2.
  auto scorer = std::make_unique<FaultInjectionScorer>(
      RandomEmb(kUsers, kDim, 1), RandomEmb(kItems, kDim, 2),
      /*throw_on_call=*/2);
  const FaultInjectionScorer* fault = scorer.get();
  const ServingEngine engine(std::move(scorer), dataset_);
  AdmissionOptions options;
  options.max_batch = 4;
  options.max_wait_us = 0;
  const AdmissionController admission(&engine, options);

  // 8 full-catalog requests split 4/4: pass 1 serves, pass 2 throws.
  std::vector<RecRequest> requests(8);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].user = static_cast<Index>(i);
    requests[i].k = 5;
  }
  const auto responses = admission.RecommendBatch(requests);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(responses[i].status, RecStatus::kOk) << i;
    EXPECT_FALSE(responses[i].items.empty()) << i;
  }
  for (size_t i = 4; i < 8; ++i) {
    EXPECT_EQ(responses[i].status, RecStatus::kBackendError) << i;
    EXPECT_EQ(responses[i].user, requests[i].user) << i;
    EXPECT_TRUE(responses[i].items.empty()) << i;
  }
  EXPECT_EQ(admission.backend_failures(), 1u);
  EXPECT_EQ(fault->score_block_calls(), 2);

  // The fault was one-shot: the controller (and engine) serve again, and
  // the served answer matches the healthy reference model bit-exactly.
  const StaticRecommender reference("ref", RandomEmb(kUsers, kDim, 1),
                                    RandomEmb(kItems, kDim, 2));
  const ServingEngine reference_engine(&reference, dataset_);
  const RecResponse again = admission.Recommend(requests[0]);
  const RecResponse want =
      reference_engine.RecommendBatchDirect({requests[0]})[0];
  ExpectSameResponse(again, want, 0);
}

// Followers blocked on a fused pass that fails must be woken with a
// status, not stranded: concurrent callers all resolve, each either served
// bit-exactly or explicitly failed.
TEST_F(AdmissionFixture, ConcurrentFollowersResolveOnBackendFailure) {
  const ServingEngine engine(model_.get(), dataset_);
  std::atomic<int> calls{0};
  AdmissionOptions options;
  options.max_batch = 16;
  options.max_wait_us = 2000;  // hold batches open so callers coalesce
  const AdmissionController admission(
      [&](const std::vector<RecRequest>& requests) {
        if (calls.fetch_add(1) % 3 == 1) {  // fail every third pass
          throw std::runtime_error("flaky backend");
        }
        return engine.RecommendBatchDirect(requests);
      },
      options);

  constexpr int kThreads = 6;
  constexpr int kRounds = 10;
  std::atomic<int> bad{0};
  std::atomic<int> served{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        RecRequest request;
        request.user = static_cast<Index>((t * kRounds + round) % kUsers);
        request.k = 5;
        const RecResponse got = admission.Recommend(request);
        if (got.status == RecStatus::kOk) {
          ++served;
          const RecResponse want =
              engine.RecommendBatchDirect({request})[0];
          if (got.items.size() != want.items.size()) {
            ++bad;
            continue;
          }
          for (size_t j = 0; j < want.items.size(); ++j) {
            if (got.items[j].item != want.items[j].item ||
                got.items[j].score != want.items[j].score) {
              ++bad;
              break;
            }
          }
        } else if (got.status == RecStatus::kBackendError) {
          ++failed;
          if (!got.items.empty()) ++bad;  // torn result
        } else {
          ++bad;  // no shedding/deadlines configured
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(served.load() + failed.load(), kThreads * kRounds);
  EXPECT_EQ(static_cast<uint64_t>(served.load() + failed.load()),
            admission.admitted_requests());
}

TEST_F(AdmissionFixture, EmptyBatchIsANoOp) {
  const ServingEngine engine(model_.get(), dataset_);
  const AdmissionController admission(&engine);
  EXPECT_TRUE(admission.RecommendBatch({}).empty());
  EXPECT_EQ(admission.admitted_requests(), 0u);
  EXPECT_EQ(admission.fused_batches(), 0u);
}

// The concurrency stress (TSan canary): many threads hammer one attached
// engine with single requests and small batches; every answer must match
// the direct single-request reference bit-exactly, no matter how tickets
// interleaved into fused batches, and the controller must actually have
// coalesced or split work (dispatch bookkeeping stays consistent).
TEST_F(AdmissionFixture, ConcurrentCallersGetBitExactAnswers) {
  ServingEngine engine(model_.get(), dataset_);
  AdmissionOptions options;
  options.max_batch = 16;
  options.max_wait_us = 300;
  const AdmissionController admission(&engine, options);
  engine.AttachAdmission(&admission);

  const std::vector<RecRequest> requests = MixedRequests();
  std::vector<RecResponse> reference;
  reference.reserve(requests.size());
  for (const RecRequest& request : requests) {
    reference.push_back(engine.RecommendBatchDirect({request})[0]);
  }

  constexpr int kThreads = 6;
  constexpr int kRounds = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Walk the request list from a thread-specific offset: singles...
        for (size_t s = 0; s < requests.size(); ++s) {
          const size_t i = (s + static_cast<size_t>(t) * 3) % requests.size();
          const RecResponse got = engine.Recommend(requests[i]);
          const RecResponse& want = reference[i];
          if (got.user != want.user || got.items.size() != want.items.size()) {
            ++mismatches;
            continue;
          }
          for (size_t j = 0; j < want.items.size(); ++j) {
            if (got.items[j].item != want.items[j].item ||
                got.items[j].score != want.items[j].score) {
              ++mismatches;
              break;
            }
          }
        }
        // ... then a whole batch through the same admission queue.
        const auto batch = engine.RecommendBatch(requests);
        for (size_t i = 0; i < requests.size(); ++i) {
          if (batch[i].items.size() != reference[i].items.size()) {
            ++mismatches;
            continue;
          }
          for (size_t j = 0; j < reference[i].items.size(); ++j) {
            if (batch[i].items[j].item != reference[i].items[j].item ||
                batch[i].items[j].score != reference[i].items[j].score) {
              ++mismatches;
              break;
            }
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  const uint64_t expected_requests =
      static_cast<uint64_t>(kThreads) * kRounds * 2 * requests.size();
  EXPECT_EQ(admission.admitted_requests(), expected_requests);
  EXPECT_GE(admission.fused_batches(), 1u);
  // Every admitted ticket was served by exactly one fused pass, and no
  // pass exceeded the size bound.
  EXPECT_LE(admission.fused_batches(), expected_requests);
}

// Overload-protection concurrency stress (TSan canary for the policy
// paths): multi-tenant traffic with deadlines against a bounded queue
// under the fair-share drain. Every request must resolve to exactly one
// of {served bit-exactly, kShed, kDeadlineExceeded} — no hangs, no torn
// results, and the counters must account for every outcome.
TEST_F(AdmissionFixture, ConcurrentMultiTenantOverloadStress) {
  ServingEngine engine(model_.get(), dataset_);
  AdmissionOptions options;
  options.max_batch = 8;
  options.max_wait_us = 200;
  options.drain_policy = DrainPolicy::kFairShare;
  options.tenant_weights = {1, 2, 1};
  options.max_queue_depth = 6;  // small: force real shedding under load
  options.resume_queue_depth = 2;
  const AdmissionController admission(&engine, options);
  engine.AttachAdmission(&admission);

  const std::vector<RecRequest> base = MixedRequests();
  std::vector<RecResponse> reference;
  reference.reserve(base.size());
  for (const RecRequest& request : base) {
    reference.push_back(engine.RecommendBatchDirect({request})[0]);
  }

  constexpr int kThreads = 6;
  constexpr int kRounds = 6;
  std::atomic<int> bad{0};
  std::atomic<int> ok{0};
  std::atomic<int> shed{0};
  std::atomic<int> expired{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < base.size(); ++i) {
          RecRequest request = base[i];
          request.tenant = static_cast<Index>(t % 3);
          // A third of the traffic carries a real (but generous) budget;
          // under contention some of it will expire in the queue.
          if (i % 3 == 0) request.deadline_us = 50000;
          const RecResponse got = engine.Recommend(request);
          switch (got.status) {
            case RecStatus::kOk: {
              ++ok;
              const RecResponse& want = reference[i];
              if (got.user != want.user ||
                  got.items.size() != want.items.size()) {
                ++bad;
                break;
              }
              for (size_t j = 0; j < want.items.size(); ++j) {
                if (got.items[j].item != want.items[j].item ||
                    got.items[j].score != want.items[j].score) {
                  ++bad;
                  break;
                }
              }
              break;
            }
            case RecStatus::kShed:
              ++shed;
              if (!got.items.empty()) ++bad;
              break;
            case RecStatus::kDeadlineExceeded:
              ++expired;
              if (!got.items.empty()) ++bad;
              break;
            case RecStatus::kBackendError:
            case RecStatus::kDegraded:
              ++bad;  // the real in-process engine never fails or degrades
              break;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(bad.load(), 0);
  const int total = kThreads * kRounds * static_cast<int>(base.size());
  EXPECT_EQ(ok.load() + shed.load() + expired.load(), total);
  EXPECT_EQ(admission.shed_requests(), static_cast<uint64_t>(shed.load()));
  EXPECT_EQ(admission.deadline_rejections(),
            static_cast<uint64_t>(expired.load()));
  // Served = admitted minus the admitted tickets that expired in-queue.
  EXPECT_LE(static_cast<uint64_t>(ok.load()), admission.admitted_requests());
  EXPECT_EQ(admission.backend_failures(), 0u);
}

}  // namespace
}  // namespace firzen
