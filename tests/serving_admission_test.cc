// AdmissionController suite: coalescing concurrent Recommend calls into
// fused user batches must be observably side-effect-free — every response
// bit-identical to the engine serving that request alone — because scores
// are batch-size-invariant (src/tensor/matrix.h) and requests ride private
// heaps. Also pins the dispatcher mechanics (size bound, wait bound,
// leader hand-off, stats) and the engine AttachAdmission routing. The
// multi-threaded stresses here run under the -DFIRZEN_SANITIZE=thread pass
// of tools/run_checks.sh (the -R filter matches this binary), making the
// ticket queue and leader-follower hand-off data-race canaries.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/eval/admission.h"
#include "src/eval/serving.h"
#include "src/eval/sharded_serving.h"
#include "src/models/serialize.h"
#include "src/util/rng.h"

namespace firzen {
namespace {

constexpr Index kUsers = 48;
constexpr Index kItems = 2500;
constexpr Index kDim = 16;

Matrix RandomEmb(Index rows, Index cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  m.FillNormal(&rng, 1.0);
  return m;
}

class AdmissionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_.num_users = kUsers;
    dataset_.num_items = kItems;
    dataset_.is_cold_item.assign(static_cast<size_t>(kItems), false);
    for (Index i = 0; i < kItems; i += 7) {
      dataset_.is_cold_item[static_cast<size_t>(i)] = true;
    }
    Rng rng(11);
    for (Index u = 0; u < kUsers; ++u) {
      for (int t = 0; t < 12; ++t) {
        dataset_.train.push_back({u, rng.UniformInt(kItems)});
      }
    }
    model_ = std::make_unique<StaticRecommender>(
        "admission", RandomEmb(kUsers, kDim, 1), RandomEmb(kItems, kDim, 2));
  }

  // A mixed-traffic request list: full-catalog, explicit pools (equal,
  // unequal, duplicated entries), custom exclusions, the cold shelf, and
  // varying k — every batching mode the fused pass can take.
  std::vector<RecRequest> MixedRequests() const {
    std::vector<RecRequest> requests;
    Rng rng(23);
    for (Index u = 0; u < 20; ++u) {
      RecRequest request;
      request.user = u % kUsers;
      request.k = 5 + (u % 3) * 10;
      switch (u % 5) {
        case 0:
          break;  // full catalog
        case 1:
          for (int j = 0; j < 40; ++j) {
            request.candidates.push_back(rng.UniformInt(kItems));
          }
          break;
        case 2:
          request.candidates = {5, 9, 9, 123, 777, 5};  // dups
          break;
        case 3:
          request.exclusion = ExclusionPolicy::kCustom;
          request.exclude = {1, 2, 3, 2};
          break;
        case 4:
          request.cold_only = true;
          break;
      }
      requests.push_back(std::move(request));
    }
    return requests;
  }

  static void ExpectSameResponse(const RecResponse& got,
                                 const RecResponse& want, size_t tag) {
    ASSERT_EQ(got.user, want.user) << tag;
    ASSERT_EQ(got.items.size(), want.items.size()) << tag;
    for (size_t j = 0; j < want.items.size(); ++j) {
      ASSERT_EQ(got.items[j].item, want.items[j].item) << tag << " rank " << j;
      ASSERT_EQ(got.items[j].score, want.items[j].score)
          << tag << " rank " << j;
    }
  }

  Dataset dataset_;
  std::unique_ptr<StaticRecommender> model_;
};

// The coalescing contract itself: a request fused with arbitrary co-riders
// answers bit-identically to the same request served alone.
TEST_F(AdmissionFixture, FusedBatchesMatchServingAloneBitExact) {
  const ServingEngine engine(model_.get(), dataset_);
  AdmissionOptions options;
  options.max_batch = 8;  // force splitting across several fused passes
  options.max_wait_us = 0;
  const AdmissionController admission(&engine, options);

  const std::vector<RecRequest> requests = MixedRequests();
  const auto fused = admission.RecommendBatch(requests);
  ASSERT_EQ(fused.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const RecResponse alone = engine.RecommendBatchDirect({requests[i]})[0];
    ExpectSameResponse(fused[i], alone, i);
  }
  EXPECT_EQ(admission.admitted_requests(), requests.size());
}

// Single-caller dispatch is deterministic: a 10-request batch under a
// 4-user size bound drains FIFO into fused passes of 4, 4, 2.
TEST_F(AdmissionFixture, SizeBoundSplitsDeterministically) {
  const ServingEngine engine(model_.get(), dataset_);
  AdmissionOptions options;
  options.max_batch = 4;
  options.max_wait_us = 0;
  const AdmissionController admission(&engine, options);

  std::vector<RecRequest> requests(10);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].user = static_cast<Index>(i) % kUsers;
    requests[i].k = 7;
  }
  const auto responses = admission.RecommendBatch(requests);
  ASSERT_EQ(responses.size(), 10u);
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(responses[i].user, requests[i].user) << i;
  }
  EXPECT_EQ(admission.admitted_requests(), 10u);
  EXPECT_EQ(admission.fused_batches(), 3u);
}

// max_batch = 1 is the A/B baseline: every request runs alone.
TEST_F(AdmissionFixture, MaxBatchOneServesEveryRequestAlone) {
  const ServingEngine engine(model_.get(), dataset_);
  AdmissionOptions options;
  options.max_batch = 1;
  options.max_wait_us = 0;
  const AdmissionController admission(&engine, options);
  std::vector<RecRequest> requests(5);
  for (size_t i = 0; i < requests.size(); ++i) requests[i].user = 3;
  admission.RecommendBatch(requests);
  EXPECT_EQ(admission.fused_batches(), 5u);
}

// The wait bound must release an unfilled batch: a lone request returns
// (correctly) even though no co-rider ever arrives.
TEST_F(AdmissionFixture, WaitBoundReleasesLoneRequest) {
  const ServingEngine engine(model_.get(), dataset_);
  AdmissionOptions options;
  options.max_batch = 64;
  options.max_wait_us = 10000;  // 10ms: long enough to prove we waited out
  const AdmissionController admission(&engine, options);
  RecRequest request;
  request.user = 1;
  request.k = 9;
  const RecResponse got = admission.Recommend(request);
  const RecResponse want = engine.RecommendBatchDirect({request})[0];
  ExpectSameResponse(got, want, 0);
  EXPECT_EQ(admission.fused_batches(), 1u);
}

// Engine routing: once attached, the engine's own entry points go through
// the controller; detaching restores the direct path.
TEST_F(AdmissionFixture, EngineRoutesThroughAttachedController) {
  ServingEngine engine(model_.get(), dataset_);
  AdmissionOptions options;
  options.max_wait_us = 0;
  const AdmissionController admission(&engine, options);
  EXPECT_EQ(engine.admission(), nullptr);
  engine.AttachAdmission(&admission);
  EXPECT_EQ(engine.admission(), &admission);

  RecRequest request;
  request.user = 2;
  request.k = 4;
  const RecResponse via_engine = engine.Recommend(request);
  EXPECT_EQ(admission.admitted_requests(), 1u);
  const auto batch = engine.RecommendBatch({request, request});
  EXPECT_EQ(admission.admitted_requests(), 3u);
  ExpectSameResponse(batch[0], via_engine, 0);

  engine.AttachAdmission(nullptr);
  engine.Recommend(request);
  EXPECT_EQ(admission.admitted_requests(), 3u);  // direct path again
}

// The sharded front end admits identically: fused responses match the
// sharded engine's own direct answers (which in turn match the single
// engine by the shard-invariance contract).
TEST_F(AdmissionFixture, ShardedEngineAdmissionParity) {
  ShardedServingOptions sharded_options;
  sharded_options.num_shards = 3;
  ShardedServingEngine engine(model_.get(), dataset_, sharded_options);
  AdmissionOptions options;
  options.max_batch = 6;
  options.max_wait_us = 0;
  const AdmissionController admission(&engine, options);
  engine.AttachAdmission(&admission);

  const std::vector<RecRequest> requests = MixedRequests();
  const auto fused = engine.RecommendBatch(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    const RecResponse alone = engine.RecommendBatchDirect({requests[i]})[0];
    ExpectSameResponse(fused[i], alone, i);
  }
}

// A throwing custom backend (the engines' direct paths never throw) must
// not strand tickets or poison the queue: the dispatching caller sees the
// backend's exception and the controller keeps serving afterwards.
TEST_F(AdmissionFixture, ThrowingBackendSurfacesAndRecovers) {
  const ServingEngine engine(model_.get(), dataset_);
  int calls = 0;
  AdmissionOptions options;
  options.max_wait_us = 0;
  const AdmissionController admission(
      [&](const std::vector<RecRequest>& requests) {
        if (calls++ == 0) throw std::runtime_error("backend down");
        return engine.RecommendBatchDirect(requests);
      },
      options);
  RecRequest request;
  request.user = 1;
  request.k = 3;
  EXPECT_THROW(admission.Recommend(request), std::runtime_error);
  // The queue is consistent after the failure: the next request serves.
  const RecResponse got = admission.Recommend(request);
  const RecResponse want = engine.RecommendBatchDirect({request})[0];
  ExpectSameResponse(got, want, 0);
  EXPECT_EQ(admission.fused_batches(), 2u);
}

TEST_F(AdmissionFixture, EmptyBatchIsANoOp) {
  const ServingEngine engine(model_.get(), dataset_);
  const AdmissionController admission(&engine);
  EXPECT_TRUE(admission.RecommendBatch({}).empty());
  EXPECT_EQ(admission.admitted_requests(), 0u);
  EXPECT_EQ(admission.fused_batches(), 0u);
}

// The concurrency stress (TSan canary): many threads hammer one attached
// engine with single requests and small batches; every answer must match
// the direct single-request reference bit-exactly, no matter how tickets
// interleaved into fused batches, and the controller must actually have
// coalesced or split work (dispatch bookkeeping stays consistent).
TEST_F(AdmissionFixture, ConcurrentCallersGetBitExactAnswers) {
  ServingEngine engine(model_.get(), dataset_);
  AdmissionOptions options;
  options.max_batch = 16;
  options.max_wait_us = 300;
  const AdmissionController admission(&engine, options);
  engine.AttachAdmission(&admission);

  const std::vector<RecRequest> requests = MixedRequests();
  std::vector<RecResponse> reference;
  reference.reserve(requests.size());
  for (const RecRequest& request : requests) {
    reference.push_back(engine.RecommendBatchDirect({request})[0]);
  }

  constexpr int kThreads = 6;
  constexpr int kRounds = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Walk the request list from a thread-specific offset: singles...
        for (size_t s = 0; s < requests.size(); ++s) {
          const size_t i = (s + static_cast<size_t>(t) * 3) % requests.size();
          const RecResponse got = engine.Recommend(requests[i]);
          const RecResponse& want = reference[i];
          if (got.user != want.user || got.items.size() != want.items.size()) {
            ++mismatches;
            continue;
          }
          for (size_t j = 0; j < want.items.size(); ++j) {
            if (got.items[j].item != want.items[j].item ||
                got.items[j].score != want.items[j].score) {
              ++mismatches;
              break;
            }
          }
        }
        // ... then a whole batch through the same admission queue.
        const auto batch = engine.RecommendBatch(requests);
        for (size_t i = 0; i < requests.size(); ++i) {
          if (batch[i].items.size() != reference[i].items.size()) {
            ++mismatches;
            continue;
          }
          for (size_t j = 0; j < reference[i].items.size(); ++j) {
            if (batch[i].items[j].item != reference[i].items[j].item ||
                batch[i].items[j].score != reference[i].items[j].score) {
              ++mismatches;
              break;
            }
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  const uint64_t expected_requests =
      static_cast<uint64_t>(kThreads) * kRounds * 2 * requests.size();
  EXPECT_EQ(admission.admitted_requests(), expected_requests);
  EXPECT_GE(admission.fused_batches(), 1u);
  // Every admitted ticket was served by exactly one fused pass, and no
  // pass exceeded the size bound.
  EXPECT_LE(admission.fused_batches(), expected_requests);
}

}  // namespace
}  // namespace firzen
