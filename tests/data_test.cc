// Data layer tests: synthetic generation invariants, strict/normal cold
// splits, KG construction + noise injection, TSV IO round trips, Table I
// statistics. Includes parameterized sweeps over all dataset profiles.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>

#include "src/data/io.h"
#include "src/data/noise.h"
#include "src/data/split.h"
#include "src/data/stats.h"
#include "src/data/synthetic.h"

namespace firzen {
namespace {

class ProfileTest
    : public ::testing::TestWithParam<std::pair<const char*, SyntheticConfig>> {
};

TEST_P(ProfileTest, GeneratesValidStrictColdDataset) {
  const SyntheticConfig config = GetParam().second;
  const Dataset dataset = GenerateSyntheticDataset(config);
  dataset.CheckValid();  // aborts on violation

  // Strict cold items never appear in training (also enforced by
  // CheckValid; assert the counts here).
  std::set<Index> train_items;
  for (const Interaction& x : dataset.train) train_items.insert(x.item);
  for (Index item : dataset.ColdItems()) {
    EXPECT_EQ(train_items.count(item), 0u);
  }
  // Roughly the configured cold fraction.
  const Real cold_frac = static_cast<Real>(dataset.ColdItems().size()) /
                         static_cast<Real>(dataset.num_items);
  EXPECT_NEAR(cold_frac, config.cold_fraction, 0.08);

  // Every warm item retains a train interaction.
  std::set<Index> warm(train_items.begin(), train_items.end());
  for (Index item : dataset.WarmItems()) {
    EXPECT_EQ(warm.count(item), 1u) << "warm item " << item << " untrainable";
  }

  // Cold val/test are both non-empty and item-disjoint from train.
  EXPECT_FALSE(dataset.cold_val.empty());
  EXPECT_FALSE(dataset.cold_test.empty());

  // Modalities match the profile.
  ASSERT_EQ(dataset.modalities.size(), 2u);
  EXPECT_EQ(dataset.modalities[0].name, "text");
  EXPECT_EQ(dataset.modalities[1].name, "image");
  EXPECT_EQ(dataset.modalities[0].features.cols(), config.text_dim);
  EXPECT_EQ(dataset.modalities[1].features.cols(), config.visual_dim);

  // KG covers every item with at least brand + category edges.
  std::vector<int> head_count(static_cast<size_t>(dataset.num_items), 0);
  for (const Triplet& t : dataset.kg.triplets) {
    if (t.head < dataset.num_items) {
      ++head_count[static_cast<size_t>(t.head)];
    }
  }
  for (Index i = 0; i < dataset.num_items; ++i) {
    EXPECT_GE(head_count[static_cast<size_t>(i)], 2) << "item " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ProfileTest,
    ::testing::Values(
        std::make_pair("beauty", BeautySConfig(0.2)),
        std::make_pair("cellphones", CellPhonesSConfig(0.2)),
        std::make_pair("clothing", ClothingSConfig(0.2)),
        std::make_pair("weixin", WeixinSportsSConfig(0.2))),
    [](const auto& info) { return std::string(info.param.first); });

TEST(SyntheticTest, DeterministicForFixedSeed) {
  const Dataset a = GenerateSyntheticDataset(BeautySConfig(0.15));
  const Dataset b = GenerateSyntheticDataset(BeautySConfig(0.15));
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].user, b.train[i].user);
    EXPECT_EQ(a.train[i].item, b.train[i].item);
  }
  EXPECT_EQ(a.kg.triplets.size(), b.kg.triplets.size());
}

TEST(SyntheticTest, UsersMeetMinimumInteractions) {
  SyntheticConfig config = BeautySConfig(0.2);
  const Dataset dataset = GenerateSyntheticDataset(config);
  // 5-core on users holds over ALL interactions (train + eval splits).
  std::vector<int> per_user(static_cast<size_t>(dataset.num_users), 0);
  for (const auto* split : {&dataset.train, &dataset.warm_val,
                            &dataset.warm_test, &dataset.cold_val,
                            &dataset.cold_test}) {
    for (const Interaction& x : *split) {
      ++per_user[static_cast<size_t>(x.user)];
    }
  }
  Index violators = 0;
  for (int c : per_user) {
    if (c < config.min_interactions_per_user) ++violators;
  }
  // Pool truncation can clip a handful; the overwhelming majority hold.
  EXPECT_LT(static_cast<Real>(violators) / dataset.num_users, 0.02);
}

TEST(SyntheticTest, WeixinProfileHasManyRelations) {
  const Dataset w = GenerateSyntheticDataset(WeixinSportsSConfig(0.15));
  const Dataset b = GenerateSyntheticDataset(BeautySConfig(0.15));
  EXPECT_GT(w.kg.num_relations, b.kg.num_relations);
}

TEST(SplitTest, NormalColdProtocolRevealsHalfTheLinks) {
  const Dataset strict = GenerateSyntheticDataset(BeautySConfig(0.2));
  Rng rng(3);
  const Dataset normal = MakeNormalColdProtocol(strict, &rng);
  const size_t strict_total =
      strict.cold_val.size() + strict.cold_test.size();
  const size_t normal_total = normal.cold_val.size() +
                              normal.cold_test.size() +
                              normal.cold_known.size();
  EXPECT_EQ(strict_total, normal_total);
  EXPECT_FALSE(normal.cold_known.empty());
  // Known links only touch cold items.
  for (const Interaction& x : normal.cold_known) {
    EXPECT_TRUE(normal.is_cold_item[static_cast<size_t>(x.item)]);
  }
  normal.CheckValid();
}

TEST(SplitTest, NormalColdProtocolIsHashOrderIndependent) {
  // Regression: MakeNormalColdProtocol used to iterate its per-item
  // unordered_map grouping directly, consuming rng draws and appending to
  // the output splits in HASH order — the same seed produced a different
  // split on every standard library. The fix visits items in sorted id
  // order, which is observable: each split is a per-item sequence of
  // groups, so item ids must appear in non-decreasing runs.
  const Dataset strict = GenerateSyntheticDataset(BeautySConfig(0.2));
  Rng rng(3);
  const Dataset normal = MakeNormalColdProtocol(strict, &rng);
  auto expect_sorted_groups = [](const std::vector<Interaction>& split,
                                 const char* name) {
    for (size_t i = 1; i < split.size(); ++i) {
      ASSERT_LE(split[i - 1].item, split[i].item)
          << name << " not grouped in ascending item order at row " << i;
    }
  };
  expect_sorted_groups(normal.cold_val, "cold_val");
  expect_sorted_groups(normal.cold_test, "cold_test");
  // Same seed => byte-identical protocol, independent of container state.
  Rng rng2(3);
  const Dataset again = MakeNormalColdProtocol(strict, &rng2);
  ASSERT_EQ(normal.cold_known.size(), again.cold_known.size());
  for (size_t i = 0; i < normal.cold_known.size(); ++i) {
    EXPECT_EQ(normal.cold_known[i].user, again.cold_known[i].user);
    EXPECT_EQ(normal.cold_known[i].item, again.cold_known[i].item);
  }
}

TEST(SplitTest, RepairGuaranteesTrainCoverage) {
  // Adversarial tiny input: item 1 appears once, in what would be val/test.
  std::vector<Interaction> interactions;
  for (int k = 0; k < 40; ++k) interactions.push_back({k % 5, 0});
  interactions.push_back({0, 1});
  Dataset dataset;
  dataset.num_users = 5;
  dataset.num_items = 2;
  SplitOptions options;
  options.cold_fraction = 0.4;
  Rng rng(11);
  ApplyStrictColdSplit(interactions, options, &rng, &dataset);
  dataset.CheckValid();
  std::set<Index> train_items;
  for (const Interaction& x : dataset.train) train_items.insert(x.item);
  for (Index item : dataset.WarmItems()) {
    EXPECT_TRUE(train_items.count(item) > 0);
  }
}

class NoiseTest : public ::testing::TestWithParam<KgNoiseKind> {};

TEST_P(NoiseTest, InjectsRequestedVolumeAndShape) {
  const Dataset dataset = GenerateSyntheticDataset(BeautySConfig(0.15));
  Rng rng(5);
  const KnowledgeGraph noisy =
      InjectKgNoise(dataset.kg, GetParam(), 0.2, &rng);
  const size_t expected_extra =
      static_cast<size_t>(0.2 * dataset.kg.triplets.size());
  EXPECT_EQ(noisy.triplets.size(),
            dataset.kg.triplets.size() + expected_extra);
  switch (GetParam()) {
    case KgNoiseKind::kOutlier:
      // New entities appended.
      EXPECT_EQ(noisy.num_entities,
                dataset.kg.num_entities + static_cast<Index>(expected_extra));
      break;
    case KgNoiseKind::kDuplicate: {
      EXPECT_EQ(noisy.num_entities, dataset.kg.num_entities);
      // Every injected triplet already existed.
      std::set<std::tuple<Index, Index, Index>> originals;
      for (const Triplet& t : dataset.kg.triplets) {
        originals.insert({t.head, t.relation, t.tail});
      }
      for (size_t i = dataset.kg.triplets.size(); i < noisy.triplets.size();
           ++i) {
        const Triplet& t = noisy.triplets[i];
        EXPECT_TRUE(originals.count({t.head, t.relation, t.tail}) > 0);
      }
      break;
    }
    case KgNoiseKind::kDiscrepancy: {
      EXPECT_EQ(noisy.num_entities, dataset.kg.num_entities);
      // Tails keep their entity type.
      for (size_t i = dataset.kg.triplets.size(); i < noisy.triplets.size();
           ++i) {
        const Triplet& t = noisy.triplets[i];
        EXPECT_LT(t.tail, noisy.num_entities);
      }
      break;
    }
  }
  noisy.CheckValid();
}

INSTANTIATE_TEST_SUITE_P(AllKinds, NoiseTest,
                         ::testing::Values(KgNoiseKind::kOutlier,
                                           KgNoiseKind::kDuplicate,
                                           KgNoiseKind::kDiscrepancy),
                         [](const auto& info) {
                           return std::string(KgNoiseKindName(info.param));
                         });

TEST(IoTest, InteractionsRoundTrip) {
  const std::vector<Interaction> original{{0, 1}, {2, 3}, {4, 0}};
  const std::string path = ::testing::TempDir() + "/inter.tsv";
  ASSERT_TRUE(SaveInteractionsTsv(path, original).ok());
  auto loaded = LoadInteractionsTsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.value()[i].user, original[i].user);
    EXPECT_EQ(loaded.value()[i].item, original[i].item);
  }
}

TEST(IoTest, FeaturesRoundTrip) {
  Matrix features(3, 4);
  Rng rng(1);
  features.FillNormal(&rng, 1.0);
  const std::string path = ::testing::TempDir() + "/features.tsv";
  ASSERT_TRUE(SaveFeaturesTsv(path, features).ok());
  auto loaded = LoadFeaturesTsv(path, 3);
  ASSERT_TRUE(loaded.ok());
  for (Index i = 0; i < features.size(); ++i) {
    EXPECT_NEAR(loaded.value().data()[i], features.data()[i], 1e-5);
  }
}

TEST(IoTest, KgRoundTrip) {
  KnowledgeGraph kg;
  kg.num_items = 2;
  kg.num_entities = 5;
  kg.num_relations = 3;
  kg.triplets = {{0, 0, 3}, {1, 2, 4}};
  const std::string path = ::testing::TempDir() + "/kg.tsv";
  ASSERT_TRUE(SaveKgTsv(path, kg).ok());
  auto loaded = LoadKgTsv(path, 2, 5, 3);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().triplets.size(), kg.triplets.size());
  EXPECT_EQ(loaded.value().num_entities, 5);
  EXPECT_EQ(loaded.value().num_relations, 3);
}

TEST(IoTest, MissingFileIsIoError) {
  auto result = LoadInteractionsTsv("/nonexistent/path/x.tsv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(IoTest, MalformedLineIsInvalidArgument) {
  const std::string path = ::testing::TempDir() + "/bad.tsv";
  ASSERT_TRUE(SaveInteractionsTsv(path, {{0, 1}}).ok());
  {
    std::ofstream out(path, std::ios::app);
    out << "not a number\n";
  }
  auto result = LoadInteractionsTsv(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatsTest, MatchesManualComputation) {
  const Dataset dataset = GenerateSyntheticDataset(BeautySConfig(0.15));
  const DatasetStats stats = ComputeDatasetStats(dataset);
  EXPECT_EQ(stats.num_users, dataset.num_users);
  EXPECT_EQ(stats.num_items, dataset.num_items);
  EXPECT_EQ(stats.num_warm_items + stats.num_cold_items, dataset.num_items);
  const Index total = static_cast<Index>(
      dataset.train.size() + dataset.warm_val.size() +
      dataset.warm_test.size() + dataset.cold_val.size() +
      dataset.cold_test.size());
  EXPECT_EQ(stats.num_interactions, total);
  EXPECT_GT(stats.sparsity_percent, 90.0);
  EXPECT_EQ(stats.num_triplets,
            static_cast<Index>(dataset.kg.triplets.size()));
}

}  // namespace
}  // namespace firzen
