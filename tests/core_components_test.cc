// Unit tests for Firzen's internal components, below the full-model level:
// SAHGL branch gating and cold-item zeroing, MSHGL propagation/fusion,
// TransR optimization, and adversarial discriminator dynamics.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/discriminator.h"
#include "src/core/frozen_graphs.h"
#include "src/core/mshgl.h"
#include "src/core/sahgl.h"
#include "src/data/synthetic.h"
#include "src/models/kg_common.h"
#include "src/tensor/optim.h"
#include "src/util/logging.h"

namespace firzen {
namespace {

struct World {
  Dataset dataset;
  FrozenGraphs graphs;
};

const World& TinyWorld() {
  static const World* world = [] {
    auto* w = new World();
    w->dataset = GenerateSyntheticDataset(BeautySConfig(0.15));
    FrozenGraphOptions options;
    w->graphs = BuildTrainGraphs(w->dataset, options);
    return w;
  }();
  return *world;
}

SahglOptions DefaultSahglOptions(const Dataset& dataset) {
  SahglOptions options;
  options.embedding_dim = 16;
  options.use_modality.assign(dataset.modalities.size(), true);
  return options;
}

TEST(SahglTest, ForwardShapesMatchPopulation) {
  const World& world = TinyWorld();
  Rng rng(1);
  Sahgl sahgl(world.dataset, DefaultSahglOptions(world.dataset), &rng);
  sahgl.RefreshAttention(world.graphs);
  Rng drop(2);
  const SahglOutput out = sahgl.Forward(world.graphs, world.dataset,
                                        {0.5, 0.5}, /*training=*/true, &drop);
  EXPECT_EQ(out.fused_user.rows(), world.dataset.num_users);
  EXPECT_EQ(out.fused_item.rows(), world.dataset.num_items);
  EXPECT_EQ(out.fused_user.cols(), 16);
  ASSERT_EQ(out.modal_user.size(), 2u);
  EXPECT_EQ(out.modal_item[0].rows(), world.dataset.num_items);
}

TEST(SahglTest, ColdItemsBehaviorZeroedAtInference) {
  const World& world = TinyWorld();
  Rng rng(3);
  SahglOptions options = DefaultSahglOptions(world.dataset);
  // Only the behavior branch active: fused item embedding IS the behavior
  // component, so cold rows must be exactly zero at inference.
  options.use_knowledge = false;
  options.use_modality.assign(world.dataset.modalities.size(), false);
  Sahgl sahgl(world.dataset, options, &rng);
  Rng drop(4);
  const SahglOutput out = sahgl.Forward(world.graphs, world.dataset,
                                        {0.0, 0.0}, /*training=*/false,
                                        &drop);
  for (Index i = 0; i < world.dataset.num_items; ++i) {
    if (!world.dataset.is_cold_item[static_cast<size_t>(i)]) continue;
    for (Index c = 0; c < out.fused_item.cols(); ++c) {
      EXPECT_EQ(out.fused_item.value()(i, c), 0.0)
          << "cold item " << i << " leaked behavior signal";
    }
  }
}

TEST(SahglTest, DisabledBranchesContributeNothing) {
  const World& world = TinyWorld();
  Rng rng(5);
  SahglOptions all_off = DefaultSahglOptions(world.dataset);
  all_off.use_behavior = false;
  all_off.use_knowledge = false;
  all_off.use_modality.assign(world.dataset.modalities.size(), false);
  Sahgl sahgl(world.dataset, all_off, &rng);
  Rng drop(6);
  const SahglOutput out = sahgl.Forward(world.graphs, world.dataset,
                                        {0.5, 0.5}, true, &drop);
  EXPECT_EQ(out.fused_user.value().SquaredNorm(), 0.0);
  EXPECT_EQ(out.fused_item.value().SquaredNorm(), 0.0);
}

TEST(SahglTest, BetaWeightsScaleModalContribution) {
  const World& world = TinyWorld();
  Rng rng(7);
  SahglOptions options = DefaultSahglOptions(world.dataset);
  options.use_behavior = false;
  options.use_knowledge = false;
  options.lambda_m = 1.0;
  Sahgl sahgl(world.dataset, options, &rng);
  Rng drop(8);
  const SahglOutput text_only = sahgl.Forward(world.graphs, world.dataset,
                                              {1.0, 0.0}, false, &drop);
  const SahglOutput image_only = sahgl.Forward(world.graphs, world.dataset,
                                               {0.0, 1.0}, false, &drop);
  // With disjoint beta masses the fused outputs equal the respective modal
  // representations.
  Real text_diff = 0.0;
  Real image_diff = 0.0;
  const Matrix& t_modal = text_only.modal_item[0].value();
  const Matrix& i_modal = image_only.modal_item[1].value();
  for (Index i = 0; i < t_modal.size(); ++i) {
    text_diff +=
        std::abs(text_only.fused_item.value().data()[i] - t_modal.data()[i]);
    image_diff +=
        std::abs(image_only.fused_item.value().data()[i] - i_modal.data()[i]);
  }
  EXPECT_LT(text_diff, 1e-9);
  EXPECT_LT(image_diff, 1e-9);
}

TEST(MshglTest, ForwardPreservesShapesAndIsFinite) {
  const World& world = TinyWorld();
  Rng rng(9);
  MshglOptions options;
  options.embedding_dim = 16;
  Mshgl mshgl(2, options, &rng);
  Matrix user_in(world.dataset.num_users, 16);
  Matrix item_in(world.dataset.num_items, 16);
  user_in.FillNormal(&rng, 1.0);
  item_in.FillNormal(&rng, 1.0);
  const MshglOutput out =
      mshgl.Forward(world.graphs, Tensor::Constant(user_in),
                    Tensor::Constant(item_in));
  EXPECT_EQ(out.user.rows(), world.dataset.num_users);
  EXPECT_EQ(out.item.rows(), world.dataset.num_items);
  for (Index i = 0; i < out.item.value().size(); ++i) {
    ASSERT_TRUE(std::isfinite(out.item.value().data()[i]));
  }
}

TEST(MshglTest, WarmToColdTransferThroughInferenceGraphs) {
  const World& world = TinyWorld();
  FrozenGraphOptions graph_options;
  const FrozenGraphs inference =
      BuildInferenceGraphs(world.dataset, graph_options, world.graphs);
  Rng rng(10);
  MshglOptions options;
  options.embedding_dim = 16;
  Mshgl mshgl(2, options, &rng);
  // Cold rows start at zero (as after behavior zeroing); warm rows carry
  // signal. After MSHGL over the inference graphs, cold rows are non-zero.
  Matrix item_in(world.dataset.num_items, 16);
  for (Index i = 0; i < world.dataset.num_items; ++i) {
    if (world.dataset.is_cold_item[static_cast<size_t>(i)]) continue;
    for (Index c = 0; c < 16; ++c) item_in(i, c) = rng.Normal();
  }
  Matrix user_in(world.dataset.num_users, 16);
  user_in.FillNormal(&rng, 1.0);
  const MshglOutput out = mshgl.Forward(inference,
                                        Tensor::Constant(user_in),
                                        Tensor::Constant(item_in));
  Index fired = 0;
  for (Index i = 0; i < world.dataset.num_items; ++i) {
    if (!world.dataset.is_cold_item[static_cast<size_t>(i)]) continue;
    Real norm = 0.0;
    for (Index c = 0; c < 16; ++c) {
      norm += out.item.value()(i, c) * out.item.value()(i, c);
    }
    if (norm > 1e-12) ++fired;
  }
  EXPECT_GT(fired, 0);
}

TEST(MshglTest, TrainingGraphsDoNotTouchColdItems) {
  // Same setup as above but over TRAINING graphs: cold rows must stay zero
  // (cold items have no neighbors in the warm-only kNN graphs).
  const World& world = TinyWorld();
  Rng rng(11);
  MshglOptions options;
  options.embedding_dim = 16;
  Mshgl mshgl(2, options, &rng);
  Matrix item_in(world.dataset.num_items, 16);
  for (Index i = 0; i < world.dataset.num_items; ++i) {
    if (world.dataset.is_cold_item[static_cast<size_t>(i)]) continue;
    for (Index c = 0; c < 16; ++c) item_in(i, c) = rng.Normal();
  }
  Matrix user_in(world.dataset.num_users, 16);
  const MshglOutput out = mshgl.Forward(world.graphs,
                                        Tensor::Constant(user_in),
                                        Tensor::Constant(item_in));
  for (Index i = 0; i < world.dataset.num_items; ++i) {
    if (!world.dataset.is_cold_item[static_cast<size_t>(i)]) continue;
    for (Index c = 0; c < 16; ++c) {
      EXPECT_EQ(out.item.value()(i, c), 0.0);
    }
  }
}

TEST(TransRTest, LossDecreasesUnderOptimization) {
  const World& world = TinyWorld();
  const CollaborativeKg ckg = BuildCollaborativeKg(
      world.dataset.train, world.dataset.num_users, world.dataset.kg);
  Rng rng(12);
  KgEmbeddings kg = MakeKgEmbeddings(ckg.num_entities, ckg.num_relations, 16,
                                     &rng);
  Adam::Options adam_options;
  adam_options.lr = 5e-3;
  adam_options.lazy = true;
  Adam adam(adam_options);
  Rng batch_rng(13);
  Real first = 0.0;
  Real last = 0.0;
  for (int step = 0; step < 120; ++step) {
    const KgBatch batch =
        SampleKgBatch(ckg.triplets, ckg.num_entities, 256, &batch_rng);
    Tensor loss = TransRLoss(kg, batch, 1e-5);
    if (step == 0) first = loss.scalar();
    last = loss.scalar();
    Backward(loss);
    adam.Step({kg.entity, kg.relation, kg.rel_proj});
  }
  EXPECT_LT(last, first * 0.8);
}

TEST(TransRTest, ValidTripletsScoreHigherAfterTraining) {
  const World& world = TinyWorld();
  const CollaborativeKg ckg = BuildCollaborativeKg(
      world.dataset.train, world.dataset.num_users, world.dataset.kg);
  Rng rng(14);
  KgEmbeddings kg = MakeKgEmbeddings(ckg.num_entities, ckg.num_relations, 16,
                                     &rng);
  Adam::Options adam_options;
  adam_options.lr = 5e-3;
  adam_options.lazy = true;
  Adam adam(adam_options);
  Rng batch_rng(15);
  for (int step = 0; step < 150; ++step) {
    const KgBatch batch =
        SampleKgBatch(ckg.triplets, ckg.num_entities, 256, &batch_rng);
    Tensor loss = TransRLoss(kg, batch, 1e-5);
    Backward(loss);
    adam.Step({kg.entity, kg.relation, kg.rel_proj});
  }
  // Fresh batch: positive triplets must outscore corrupted ones on average.
  const KgBatch batch =
      SampleKgBatch(ckg.triplets, ckg.num_entities, 512, &batch_rng);
  const Tensor pos = TransRScore(kg, batch.heads, batch.relations,
                                 batch.pos_tails);
  const Tensor neg = TransRScore(kg, batch.heads, batch.relations,
                                 batch.neg_tails);
  Index wins = 0;
  for (Index r = 0; r < pos.rows(); ++r) {
    if (pos.value()(r, 0) > neg.value()(r, 0)) ++wins;
  }
  EXPECT_GT(wins, pos.rows() * 7 / 10);
}

TEST(DiscriminatorTest, LearnsToSeparateTwoDistributions) {
  Rng rng(16);
  Discriminator::Options options;
  Discriminator d(16, options, &rng);
  Adam::Options adam_options;
  adam_options.lr = 2e-3;
  Adam adam(adam_options);
  auto real_batch = [&] {
    Matrix m(32, 16);
    m.FillNormal(&rng, 1.0);
    for (Index i = 0; i < m.size(); ++i) m.data()[i] += 1.5;  // shifted
    return m;
  };
  auto fake_batch = [&] {
    Matrix m(32, 16);
    m.FillNormal(&rng, 1.0);
    return m;
  };
  // Real and fake samples share one critic batch throughout: the critic
  // batch-normalizes its hidden layer, so the batch-mean of a separately
  // scored batch is input independent (normalized activations have zero
  // column mean by construction) and carries no training signal.
  auto combined_batch = [&] {
    const Matrix real = real_batch();
    const Matrix fake = fake_batch();
    Matrix combined(64, 16);
    for (Index r = 0; r < 32; ++r) {
      for (Index c = 0; c < 16; ++c) {
        combined(r, c) = real(r, c);
        combined(r + 32, c) = fake(r, c);
      }
    }
    return combined;
  };
  std::vector<Index> real_rows;
  std::vector<Index> fake_rows;
  for (Index r = 0; r < 32; ++r) {
    real_rows.push_back(r);
    fake_rows.push_back(r + 32);
  }
  for (int step = 0; step < 200; ++step) {
    using namespace ops;  // NOLINT(build/namespaces)
    Tensor scores = d.Critic(Tensor::Constant(combined_batch()), &rng, true);
    Tensor loss = Sub(ReduceMean(GatherRows(scores, fake_rows)),
                      ReduceMean(GatherRows(scores, real_rows)));
    Backward(loss);
    adam.Step(d.Params());
    d.ClipWeights();
  }
  // Critic assigns higher scores to the "real" rows of a fresh shared batch.
  const Tensor scores =
      d.Critic(Tensor::Constant(combined_batch()), &rng, false);
  Real real_score = 0.0;
  Real fake_score = 0.0;
  for (Index r = 0; r < 32; ++r) {
    real_score += scores.value()(r, 0) / 32.0;
    fake_score += scores.value()(r + 32, 0) / 32.0;
  }
  EXPECT_GT(real_score, fake_score);
}

}  // namespace
}  // namespace firzen
