// Shard-invariance suite: a ShardedServingEngine must answer every request
// bit-identically (same items, same scores, same order) to the
// single-engine ServingEngine reference for ANY shard count — the contract
// that makes horizontal catalog partitioning observably free. Covers the
// shard-layout helpers, the RanksBefore/MergeTopK total order (including
// all-ties blocks, where a nondeterministic tie-break would differ across
// shard layouts), every request shape (full catalog, candidate pools,
// kTrainSeen/kCustom/kNone exclusion, cold-only, k > pool, duplicate
// candidates, NaN scores), every registered model, and the sharded
// EvaluateRanking path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "src/data/synthetic.h"
#include "src/eval/evaluator.h"
#include "src/eval/serving.h"
#include "src/eval/sharded_serving.h"
#include "src/eval/topk.h"
#include "src/models/registry.h"
#include "src/models/serialize.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace firzen {
namespace {

Matrix RandomEmb(Index rows, Index cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  m.FillNormal(&rng, 1.0);
  return m;
}

// ---- Shard layout helpers ----

TEST(ShardLayoutTest, MakeShardRangesIsContiguousAndBalanced) {
  for (Index num_items : {Index{1}, Index{7}, Index{64}, Index{101}}) {
    for (Index shards : {Index{1}, Index{2}, Index{3}, Index{7}, num_items,
                         num_items + 5}) {
      const auto ranges = MakeShardRanges(num_items, shards);
      ASSERT_FALSE(ranges.empty());
      // Over-asking clamps to one item per shard.
      EXPECT_EQ(static_cast<Index>(ranges.size()), std::min(shards, num_items));
      Index begin = 0;
      Index min_size = num_items;
      Index max_size = 0;
      for (const ItemBlock& range : ranges) {
        EXPECT_EQ(range.begin, begin);
        begin = range.end;
        min_size = std::min(min_size, range.size());
        max_size = std::max(max_size, range.size());
      }
      EXPECT_EQ(begin, num_items);
      EXPECT_LE(max_size - min_size, 1);
    }
  }
}

TEST(ShardLayoutTest, RangesFromBoundariesCoverAndAllowEmptyShards) {
  const auto ranges = RangesFromBoundaries(10, {0, 3, 3, 9});
  ASSERT_EQ(ranges.size(), 5u);
  EXPECT_EQ(ranges[0].size(), 0);  // cut at 0 -> leading empty shard
  EXPECT_EQ(ranges[2].size(), 0);  // duplicate cut -> empty shard
  Index begin = 0;
  for (const ItemBlock& range : ranges) {
    EXPECT_EQ(range.begin, begin);
    begin = range.end;
  }
  EXPECT_EQ(begin, 10);
}

// ---- The total order and the merge ----

// Regression (latent tie-break hazard): equal scores must rank by ascending
// item id everywhere — an all-ties block pushed in ANY order retains and
// orders the same items. Without the (score, item) total order, the heap's
// internal layout (and therefore the shard layout) would leak into
// responses.
TEST(TopKHeapTest, AllTiesBlockRanksByItemIdForAnyPushOrder) {
  const std::vector<std::vector<Index>> push_orders = {
      {0, 1, 2, 3, 4, 5, 6, 7},
      {7, 6, 5, 4, 3, 2, 1, 0},
      {4, 0, 6, 2, 7, 1, 5, 3},
  };
  for (const auto& order : push_orders) {
    TopKHeap heap(4);
    for (Index item : order) heap.Push(item, 1.25);
    const auto& sorted = heap.Sorted();
    ASSERT_EQ(sorted.size(), 4u);
    for (Index j = 0; j < 4; ++j) {
      EXPECT_EQ(sorted[static_cast<size_t>(j)].item, j) << "order case";
      EXPECT_EQ(sorted[static_cast<size_t>(j)].score, 1.25);
    }
  }
}

TEST(MergeTopKTest, MergeIsIndependentOfShardLayoutIncludingTies) {
  // Eight items, scores with a three-way tie at the top.
  const std::vector<ScoredItem> all = {{0, 2.0}, {1, 5.0}, {2, 5.0},
                                       {3, 1.0}, {4, 5.0}, {5, 3.0},
                                       {6, 0.5}, {7, 3.0}};
  const std::vector<ScoredItem> expected = MergeTopK(all, 5);
  ASSERT_EQ(expected.size(), 5u);
  // Ties rank by ascending item id: 1, 2, 4 (all 5.0), then 5, 7 (3.0).
  EXPECT_EQ(expected[0].item, 1);
  EXPECT_EQ(expected[1].item, 2);
  EXPECT_EQ(expected[2].item, 4);
  EXPECT_EQ(expected[3].item, 5);
  EXPECT_EQ(expected[4].item, 7);

  // Any partition of the items into per-shard lists merges identically.
  const std::vector<std::vector<size_t>> layouts = {
      {4, 4}, {1, 3, 4}, {2, 2, 2, 2}, {8}};
  for (const auto& layout : layouts) {
    std::vector<ScoredItem> entries;
    size_t begin = 0;
    for (size_t size : layout) {
      // Shard-local top-k via the heap, exactly as the engine produces it.
      TopKHeap heap(5);
      for (size_t j = begin; j < begin + size; ++j) {
        heap.Push(all[j].item, all[j].score);
      }
      const auto& top = heap.Sorted();
      entries.insert(entries.end(), top.begin(), top.end());
      begin += size;
    }
    const auto merged = MergeTopK(std::move(entries), 5);
    ASSERT_EQ(merged.size(), expected.size());
    for (size_t j = 0; j < expected.size(); ++j) {
      EXPECT_EQ(merged[j].item, expected[j].item);
      EXPECT_EQ(merged[j].score, expected[j].score);
    }
  }
}

// Regression: stacking one ItemRangeScorer on another while sharing one
// arena must not clobber the arena's id-translation buffer mid-call (each
// nesting level adds its offset in place).
TEST(ItemRangeScorerTest, NestedViewsShareOneArenaSafely) {
  const Matrix user_emb = RandomEmb(4, 6, 31);
  const Matrix item_emb = RandomEmb(40, 6, 32);
  const DotProductScorer base(user_emb, item_emb);
  // outer covers global [10, 34); inner covers outer-local [4, 20)
  // = global [14, 30).
  const ItemRangeScorer outer(&base, 10, 34);
  const ItemRangeScorer inner(&outer, 4, 20);
  ASSERT_EQ(inner.num_items(), 16);

  const std::vector<Index> users{0, 2, 3};
  const std::vector<Index> local_candidates{0, 5, 15, 3};
  ScoringArena arena;
  Matrix got(static_cast<Index>(users.size()),
             static_cast<Index>(local_candidates.size()));
  inner.ScoreCandidates(users, local_candidates, MatrixView(&got), &arena);

  std::vector<Index> global_candidates;
  for (Index local : local_candidates) {
    global_candidates.push_back(local + 14);
  }
  Matrix want(got.rows(), got.cols());
  ScoringArena direct_arena;
  base.ScoreCandidates(users, global_candidates, MatrixView(&want),
                       &direct_arena);
  for (Index i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got.data()[i], want.data()[i]) << "flat " << i;
  }

  // Blocks nest the same way: inner-local [2, 9) = global [16, 23).
  Matrix block_got(static_cast<Index>(users.size()), 7);
  inner.ScoreBlock(users, {2, 9}, MatrixView(&block_got), &arena);
  Matrix block_want(static_cast<Index>(users.size()), 7);
  base.ScoreBlock(users, {16, 23}, MatrixView(&block_want), &direct_arena);
  for (Index i = 0; i < block_want.size(); ++i) {
    ASSERT_EQ(block_got.data()[i], block_want.data()[i]) << "flat " << i;
  }
}

// ---- Shard-count invariance over a static catalog ----

constexpr Index kUsers = 20;
constexpr Index kItems = 97;  // prime: no shard count divides it evenly
constexpr Index kDim = 8;

Dataset ShardDataset() {
  Dataset dataset;
  dataset.num_users = kUsers;
  dataset.num_items = kItems;
  dataset.is_cold_item.assign(static_cast<size_t>(kItems), false);
  for (Index i = 2 * kItems / 3; i < kItems; ++i) {
    dataset.is_cold_item[static_cast<size_t>(i)] = true;
  }
  Rng rng(5);
  for (Index u = 0; u < kUsers; ++u) {
    for (int t = 0; t < 5; ++t) {
      dataset.train.push_back({u, rng.UniformInt(2 * kItems / 3)});
    }
  }
  return dataset;
}

// Every request shape from the serving contract, crossing shard boundaries.
std::vector<RecRequest> ShardRequests() {
  std::vector<RecRequest> requests;
  Rng rng(17);
  for (Index u = 0; u < kUsers; ++u) {
    RecRequest full;
    full.user = u;
    full.k = 9;
    requests.push_back(full);

    RecRequest pool;
    pool.user = u;
    pool.k = 4;
    pool.exclusion = ExclusionPolicy::kNone;
    for (int j = 0; j < 18; ++j) pool.candidates.push_back(rng.UniformInt(kItems));
    pool.candidates.push_back(pool.candidates.front());  // guaranteed dup
    requests.push_back(pool);

    RecRequest cold;
    cold.user = u;
    cold.k = 6;
    cold.cold_only = true;
    requests.push_back(cold);

    RecRequest custom;
    custom.user = u;
    custom.k = 5;
    custom.exclusion = ExclusionPolicy::kCustom;
    for (int j = 0; j < 12; ++j) custom.exclude.push_back(rng.UniformInt(kItems));
    requests.push_back(custom);

    RecRequest short_pool;  // k far larger than the pool
    short_pool.user = u;
    short_pool.k = 50;
    short_pool.exclusion = ExclusionPolicy::kNone;
    short_pool.candidates = {static_cast<Index>(u % kItems),
                             static_cast<Index>((u * 31 + 7) % kItems),
                             static_cast<Index>((u * 13 + 2) % kItems)};
    requests.push_back(short_pool);
  }
  return requests;
}

void ExpectBitIdentical(const std::vector<RecResponse>& got,
                        const std::vector<RecResponse>& want,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].user, want[i].user) << label << " request " << i;
    ASSERT_EQ(got[i].items.size(), want[i].items.size())
        << label << " request " << i;
    for (size_t j = 0; j < want[i].items.size(); ++j) {
      ASSERT_EQ(got[i].items[j].item, want[i].items[j].item)
          << label << " request " << i << " rank " << j;
      ASSERT_EQ(got[i].items[j].score, want[i].items[j].score)
          << label << " request " << i << " rank " << j;
    }
  }
}

std::vector<Index> ShardCounts() {
  return {1, 2, 3, 7, kItems, kItems + 12};  // over-asking clamps
}

TEST(ShardedServingTest, DotProductResponsesInvariantAcrossShardCounts) {
  const Dataset dataset = ShardDataset();
  StaticRecommender model("sharded", RandomEmb(kUsers, kDim, 1),
                          RandomEmb(kItems, kDim, 2));
  const ServingEngine reference(&model, dataset);
  const std::vector<RecRequest> requests = ShardRequests();
  const std::vector<RecResponse> want = reference.RecommendBatch(requests);

  for (Index shards : ShardCounts()) {
    ShardedServingOptions options;
    options.num_shards = shards;
    const ShardedServingEngine engine(&model, dataset, options);
    EXPECT_EQ(engine.num_shards(), std::min<Index>(shards, kItems));
    ExpectBitIdentical(engine.RecommendBatch(requests), want,
                       "shards=" + std::to_string(shards) + " batch");
    // Single-request path merges identically. (Scores are bit-identical
    // across user-batch sizes too — the Gemm batch-size-invariance
    // contract, pinned by scorer_parity_test — so comparing singles
    // against the batch reference would also hold; same-shape comparison
    // kept for symmetry.)
    for (size_t i = 0; i < requests.size(); i += 7) {
      const RecResponse single = engine.Recommend(requests[i]);
      ExpectBitIdentical({single}, {reference.Recommend(requests[i])},
                         "shards=" + std::to_string(shards) + " single " +
                             std::to_string(i));
    }
  }
}

TEST(ShardedServingTest, SmallItemBlockAndExplicitBoundariesStayInvariant) {
  const Dataset dataset = ShardDataset();
  StaticRecommender model("sharded", RandomEmb(kUsers, kDim, 3),
                          RandomEmb(kItems, kDim, 4));
  const ServingEngine reference(&model, dataset);
  const std::vector<RecRequest> requests = ShardRequests();
  const std::vector<RecResponse> want = reference.RecommendBatch(requests);

  // Panels narrower than shards and shards narrower than panels both hold;
  // so do degenerate explicit layouts with empty shards.
  for (Index item_block : {Index{5}, Index{16}, Index{4096}}) {
    ShardedServingOptions options;
    options.num_shards = 3;
    options.item_block = item_block;
    const ShardedServingEngine engine(&model, dataset, options);
    ExpectBitIdentical(engine.RecommendBatch(requests), want,
                       "item_block=" + std::to_string(item_block));
  }
  ShardedServingOptions uneven;
  uneven.boundaries = {0, 1, 1, 50, 96};  // empty shards + singleton shards
  const ShardedServingEngine engine(&model, dataset, uneven);
  EXPECT_EQ(engine.num_shards(), 6);
  ExpectBitIdentical(engine.RecommendBatch(requests), want, "boundaries");
}

// An all-ties catalog is the adversarial case for shard invariance: every
// ranking decision is a tie-break, so any heap-order or merge-order leak
// produces a different permutation per shard layout.
TEST(ShardedServingTest, AllTiesCatalogRanksIdenticallyForAnyShardCount) {
  Dataset dataset = ShardDataset();
  auto make_scorer = [] {
    return std::make_unique<FullScoreAdapter>(
        [](const std::vector<Index>& users, Matrix* scores) {
          scores->Resize(static_cast<Index>(users.size()), kItems);
          for (Index r = 0; r < scores->rows(); ++r) {
            for (Index i = 0; i < kItems; ++i) (*scores)(r, i) = 0.5;
          }
        },
        kItems);
  };
  const ServingEngine reference(make_scorer(), dataset);
  const std::vector<RecRequest> requests = ShardRequests();
  const std::vector<RecResponse> want = reference.RecommendBatch(requests);
  // Sanity: ties resolve to ascending item ids in the reference itself.
  ASSERT_GE(want[0].items.size(), 2u);
  EXPECT_LT(want[0].items[0].item, want[0].items[1].item);

  for (Index shards : ShardCounts()) {
    ShardedServingOptions options;
    options.num_shards = shards;
    const ShardedServingEngine engine(make_scorer(), dataset, options);
    ExpectBitIdentical(engine.RecommendBatch(requests), want,
                       "all-ties shards=" + std::to_string(shards));
  }
}

// NaN scores are dropped deterministically on every shard, never merged.
TEST(ShardedServingTest, NaNScoresNeverSurviveTheMergeForAnyShardCount) {
  Dataset dataset = ShardDataset();
  dataset.train.clear();  // keep all items eligible
  auto make_scorer = [] {
    return std::make_unique<FullScoreAdapter>(
        [](const std::vector<Index>& users, Matrix* scores) {
          scores->Resize(static_cast<Index>(users.size()), kItems);
          for (size_t r = 0; r < users.size(); ++r) {
            for (Index i = 0; i < kItems; ++i) {
              (*scores)(static_cast<Index>(r), i) =
                  i % 5 == 0 ? std::nan("")
                             : static_cast<Real>((users[r] * 29 + i * 11) %
                                                 37);
            }
          }
        },
        kItems);
  };
  const ServingEngine reference(make_scorer(), dataset);
  std::vector<RecRequest> requests = ShardRequests();
  // Add pools that consist mostly of NaN-scored items.
  for (Index u = 0; u < 4; ++u) {
    RecRequest nan_pool;
    nan_pool.user = u;
    nan_pool.k = 10;
    nan_pool.exclusion = ExclusionPolicy::kNone;
    nan_pool.candidates = {0, 5, 10, 15, 20, 3, 5, 0};  // dups + NaN items
    requests.push_back(nan_pool);
  }
  const std::vector<RecResponse> want = reference.RecommendBatch(requests);
  for (const RecResponse& response : want) {
    for (const Recommendation& rec : response.items) {
      EXPECT_TRUE(std::isfinite(rec.score));
    }
  }
  for (Index shards : ShardCounts()) {
    ShardedServingOptions options;
    options.num_shards = shards;
    const ShardedServingEngine engine(make_scorer(), dataset, options);
    ExpectBitIdentical(engine.RecommendBatch(requests), want,
                       "nan shards=" + std::to_string(shards));
  }
}

// Regression: the explicit-pool scoring USER batch must come from the FULL
// pools, not from what intersects each shard. 40 explicit requests put the
// single engine's union batch on the Gemm row-sharded panel path (m > 32);
// 36 of the pools live entirely in the first half of the catalog, so a
// shard that naively batched only in-range requests would score the second
// half with 4 users (m <= 32). The batch-size-invariant kernel means that
// can no longer bend a bit, but the planned user batch is still the
// contract RankRequestsInRange documents — keep it pinned.
TEST(ShardedServingTest, ShardLocalPoolsNeverShrinkTheScoringUserBatch) {
  const Dataset dataset = ShardDataset();
  // Wide embeddings: long dot products are where the Gemm paths' rounding
  // can actually diverge.
  StaticRecommender model("sharded", RandomEmb(kUsers, 64, 7),
                          RandomEmb(kItems, 64, 8));
  const ServingEngine reference(&model, dataset);
  const Index half = kItems / 2;
  std::vector<RecRequest> requests;
  Rng rng(41);
  for (int j = 0; j < 40; ++j) {
    RecRequest pool;
    pool.user = static_cast<Index>(j) % kUsers;
    pool.k = 6;
    pool.exclusion = ExclusionPolicy::kNone;
    const bool spans_catalog = j % 10 == 0;  // 4 of 40 touch the upper half
    for (int c = 0; c < 12; ++c) {
      pool.candidates.push_back(spans_catalog ? rng.UniformInt(kItems)
                                              : rng.UniformInt(half));
    }
    requests.push_back(std::move(pool));
  }
  const std::vector<RecResponse> want = reference.RecommendBatch(requests);
  for (Index shards : {Index{2}, Index{3}, Index{7}}) {
    ShardedServingOptions options;
    options.num_shards = shards;
    const ShardedServingEngine engine(&model, dataset, options);
    ExpectBitIdentical(engine.RecommendBatch(requests), want,
                       "batch-pinning shards=" + std::to_string(shards));
  }
}

// Sibling sharded engines share one ServingSharedState instead of
// deep-copying exclusion lists per shard or per engine.
TEST(ShardedServingTest, SiblingEnginesShareOneState) {
  const Dataset dataset = ShardDataset();
  StaticRecommender model("sharded", RandomEmb(kUsers, kDim, 5),
                          RandomEmb(kItems, kDim, 6));
  ShardedServingOptions options;
  options.num_shards = 3;
  const ShardedServingEngine engine(&model, dataset, options);
  ASSERT_NE(engine.shared_state(), nullptr);

  ShardedServingOptions sibling_options;
  sibling_options.num_shards = 5;
  const ShardedServingEngine sibling(model.MakeScorer(), engine.shared_state(),
                                     sibling_options);
  EXPECT_EQ(sibling.shared_state().get(), engine.shared_state().get());
  // And a single-engine sibling over the very same state.
  const ServingEngine flat(model.MakeScorer(), engine.shared_state());

  const std::vector<RecRequest> requests = ShardRequests();
  const auto want = flat.RecommendBatch(requests);
  ExpectBitIdentical(engine.RecommendBatch(requests), want, "3-shard sibling");
  ExpectBitIdentical(sibling.RecommendBatch(requests), want,
                     "5-shard sibling");
}

// ---- Every registered model ----

const Dataset& TrainedDataset() {
  static const Dataset* dataset = [] {
    return new Dataset(GenerateSyntheticDataset(BeautySConfig(0.12)));
  }();
  return *dataset;
}

class ShardedModelInvarianceTest : public ::testing::TestWithParam<ModelInfo> {
};

// For every registered model: sharded responses are bit-identical to the
// single-engine reference for shard counts {1, 2, 3, 7, num_items}, across
// full-catalog, pooled, custom-exclusion, and cold-only requests.
TEST_P(ShardedModelInvarianceTest, ResponsesMatchSingleEngineBitExact) {
  SetLogLevel(LogLevel::kError);
  const Dataset& dataset = TrainedDataset();
  auto model = CreateModel(GetParam().name);
  ASSERT_NE(model, nullptr) << GetParam().name;
  TrainOptions train;
  train.embedding_dim = 8;
  train.epochs = 2;
  train.eval_every = 8;
  train.batch_size = 256;
  train.seed = 321;
  model->Fit(dataset, train);

  std::vector<RecRequest> requests;
  Rng rng(23);
  for (Index u = 0; u < 6; ++u) {
    const Index user = (u * 11) % dataset.num_users;
    RecRequest full;
    full.user = user;
    full.k = 10;
    requests.push_back(full);

    RecRequest pool;
    pool.user = user;
    pool.k = 5;
    pool.exclusion = ExclusionPolicy::kNone;
    for (int j = 0; j < 25; ++j) {
      pool.candidates.push_back(rng.UniformInt(dataset.num_items));
    }
    pool.candidates.push_back(pool.candidates.front());
    requests.push_back(pool);

    RecRequest cold;
    cold.user = user;
    cold.k = 8;
    cold.cold_only = true;
    cold.exclusion = ExclusionPolicy::kNone;
    requests.push_back(cold);

    RecRequest custom;
    custom.user = user;
    custom.k = 7;
    custom.exclusion = ExclusionPolicy::kCustom;
    for (int j = 0; j < 9; ++j) {
      custom.exclude.push_back(rng.UniformInt(dataset.num_items));
    }
    requests.push_back(custom);
  }

  const ServingEngine reference(model.get(), dataset);
  const std::vector<RecResponse> want = reference.RecommendBatch(requests);
  for (Index shards :
       {Index{1}, Index{2}, Index{3}, Index{7}, dataset.num_items}) {
    ShardedServingOptions options;
    options.num_shards = shards;
    const ShardedServingEngine engine(model.get(), dataset, options);
    ExpectBitIdentical(
        engine.RecommendBatch(requests), want,
        GetParam().name + " shards=" + std::to_string(shards));
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ShardedModelInvarianceTest,
                         ::testing::ValuesIn(AllModels()),
                         [](const auto& info) { return info.param.name; });

// ---- Offline metrics through the sharded path ----

TEST(ShardedEvalTest, EvaluateRankingInvariantAcrossShardCounts) {
  SetLogLevel(LogLevel::kError);
  const Dataset& dataset = TrainedDataset();
  auto model = CreateModel("BPR");
  ASSERT_NE(model, nullptr);
  TrainOptions train;
  train.embedding_dim = 8;
  train.epochs = 2;
  train.eval_every = 8;
  train.seed = 321;
  model->Fit(dataset, train);
  model->PrepareColdInference(dataset);
  const auto scorer = model->MakeScorer();

  for (const EvalSetting setting : {EvalSetting::kWarm, EvalSetting::kCold}) {
    const std::vector<Interaction>& split = setting == EvalSetting::kWarm
                                                ? dataset.warm_test
                                                : dataset.cold_test;
    EvalOptions options;  // default pool (serial): bit-deterministic
    const EvalResult reference =
        EvaluateRanking(dataset, split, setting, *scorer, options);
    for (Index shards : {Index{2}, Index{3}, Index{7}, dataset.num_items}) {
      options.num_shards = shards;
      const EvalResult sharded =
          EvaluateRanking(dataset, split, setting, *scorer, options);
      EXPECT_EQ(sharded.num_users, reference.num_users);
      EXPECT_EQ(sharded.metrics.recall, reference.metrics.recall)
          << "shards=" << shards;
      EXPECT_EQ(sharded.metrics.mrr, reference.metrics.mrr)
          << "shards=" << shards;
      EXPECT_EQ(sharded.metrics.ndcg, reference.metrics.ndcg)
          << "shards=" << shards;
      EXPECT_EQ(sharded.metrics.hit, reference.metrics.hit)
          << "shards=" << shards;
      EXPECT_EQ(sharded.metrics.precision, reference.metrics.precision)
          << "shards=" << shards;
    }
  }
}

}  // namespace
}  // namespace firzen
