// Wire-format round-trip suite: every distributed serving frame type
// (src/serve/wire.h) must decode back to exactly what was encoded — field
// for field, score bit for score bit — and every malformed input
// (truncation, trailing garbage, bad magic, impossible counts, bad enum
// values) must FAIL decode instead of crashing, over-allocating, or
// reading out of bounds. The wire format is the determinism boundary of
// the distributed serving stack: if a bit could bend here, the
// byte-identity contract (tests/distributed_serving_test.cc) would be
// unprovable.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "src/serve/wire.h"

namespace firzen {
namespace {

// Bit-level score equality: NaN payloads, -0.0 vs 0.0, everything.
bool SameBits(Real a, Real b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

void ExpectRequestsEqual(const std::vector<RecRequest>& got,
                         const std::vector<RecRequest>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].user, want[i].user) << i;
    EXPECT_EQ(got[i].k, want[i].k) << i;
    EXPECT_EQ(got[i].candidates, want[i].candidates) << i;
    EXPECT_EQ(got[i].exclusion, want[i].exclusion) << i;
    EXPECT_EQ(got[i].exclude, want[i].exclude) << i;
    EXPECT_EQ(got[i].cold_only, want[i].cold_only) << i;
    EXPECT_EQ(got[i].deadline_us, want[i].deadline_us) << i;
    EXPECT_EQ(got[i].tenant, want[i].tenant) << i;
  }
}

TEST(WireHelloTest, RoundTripAndRejections) {
  const std::vector<uint8_t> payload = wire::EncodeHello();
  uint32_t version = 0;
  ASSERT_TRUE(wire::DecodeHello(payload.data(), payload.size(), &version));
  EXPECT_EQ(version, wire::kProtocolVersion);

  // Any truncated prefix fails.
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(wire::DecodeHello(payload.data(), len, &version)) << len;
  }
  // Trailing garbage fails (a frame is exactly its payload).
  std::vector<uint8_t> padded = payload;
  padded.push_back(0);
  EXPECT_FALSE(wire::DecodeHello(padded.data(), padded.size(), &version));
  // Bad magic fails.
  std::vector<uint8_t> corrupt = payload;
  corrupt[0] ^= 0xFF;
  EXPECT_FALSE(wire::DecodeHello(corrupt.data(), corrupt.size(), &version));
}

TEST(WireShardInfoTest, RoundTripAndRangeValidation) {
  wire::ShardInfo info;
  info.shard_begin = 33;
  info.shard_end = 71;
  info.num_items = 97;
  const std::vector<uint8_t> payload = wire::EncodeShardInfo(info);
  wire::ShardInfo got;
  ASSERT_TRUE(wire::DecodeShardInfo(payload.data(), payload.size(), &got));
  EXPECT_EQ(got.shard_begin, 33);
  EXPECT_EQ(got.shard_end, 71);
  EXPECT_EQ(got.num_items, 97);

  // Empty shards are legal (the in-process layouts allow them too).
  info.shard_begin = info.shard_end = 0;
  const std::vector<uint8_t> empty = wire::EncodeShardInfo(info);
  ASSERT_TRUE(wire::DecodeShardInfo(empty.data(), empty.size(), &got));

  // Inverted or out-of-catalog ranges fail decode.
  wire::ShardInfo bad;
  bad.shard_begin = 10;
  bad.shard_end = 5;
  bad.num_items = 97;
  const std::vector<uint8_t> inverted = wire::EncodeShardInfo(bad);
  EXPECT_FALSE(wire::DecodeShardInfo(inverted.data(), inverted.size(), &got));
  bad.shard_begin = 10;
  bad.shard_end = 200;
  const std::vector<uint8_t> outside = wire::EncodeShardInfo(bad);
  EXPECT_FALSE(wire::DecodeShardInfo(outside.data(), outside.size(), &got));

  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(wire::DecodeShardInfo(payload.data(), len, &got)) << len;
  }
}

TEST(WireRequestBatchTest, EveryFieldRoundTrips) {
  std::vector<RecRequest> requests;

  RecRequest defaults;  // empty pool, -1 deadline, kTrainSeen
  requests.push_back(defaults);

  RecRequest loaded;
  loaded.user = 123456789012345LL;
  loaded.k = std::numeric_limits<Index>::max();  // huge k survives
  loaded.candidates = {0, 5, 5, 96, 3};          // dups preserved verbatim
  loaded.exclusion = ExclusionPolicy::kCustom;
  loaded.exclude = {7, 7, 1};
  loaded.cold_only = true;
  loaded.deadline_us = 0;  // "already expired" is a meaningful value
  loaded.tenant = 42;
  requests.push_back(loaded);

  RecRequest none;
  none.user = 0;
  none.k = 1;
  none.exclusion = ExclusionPolicy::kNone;
  none.deadline_us = std::numeric_limits<int64_t>::max();
  requests.push_back(none);

  const std::vector<uint8_t> payload = wire::EncodeRequestBatch(requests);
  std::vector<RecRequest> got;
  ASSERT_TRUE(wire::DecodeRequestBatch(payload.data(), payload.size(), &got));
  ExpectRequestsEqual(got, requests);

  // The empty batch is legal and distinct from a malformed one.
  const std::vector<uint8_t> empty = wire::EncodeRequestBatch({});
  ASSERT_TRUE(wire::DecodeRequestBatch(empty.data(), empty.size(), &got));
  EXPECT_TRUE(got.empty());
}

TEST(WireRequestBatchTest, TruncationTrailingBytesAndBadEnumsFail) {
  std::vector<RecRequest> requests(2);
  requests[0].candidates = {1, 2, 3};
  requests[1].exclusion = ExclusionPolicy::kCustom;
  requests[1].exclude = {9};
  const std::vector<uint8_t> payload = wire::EncodeRequestBatch(requests);

  std::vector<RecRequest> got;
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(wire::DecodeRequestBatch(payload.data(), len, &got)) << len;
  }
  std::vector<uint8_t> padded = payload;
  padded.push_back(7);
  EXPECT_FALSE(wire::DecodeRequestBatch(padded.data(), padded.size(), &got));

  // An out-of-range exclusion policy byte fails decode. The policy byte of
  // request 0 sits after the batch count (8), user (8), k (8), and the
  // candidate vector (8 + 3*8).
  std::vector<uint8_t> bad_enum = payload;
  bad_enum[8 + 8 + 8 + 8 + 24] = 99;
  EXPECT_FALSE(
      wire::DecodeRequestBatch(bad_enum.data(), bad_enum.size(), &got));

  // A cold_only byte other than 0/1 fails too (same offset + exclude
  // vector + 1 policy byte later).
  std::vector<uint8_t> bad_bool = payload;
  bad_bool[8 + 8 + 8 + 8 + 24 + 1 + 8] = 2;
  EXPECT_FALSE(
      wire::DecodeRequestBatch(bad_bool.data(), bad_bool.size(), &got));
}

TEST(WireRequestBatchTest, CorruptCountsCannotForceGiantAllocations) {
  // A count prefix claiming 2^60 requests in a 16-byte payload must fail
  // the remaining-bytes check, not attempt the resize.
  wire::Writer w;
  w.PutU64(1ULL << 60);
  w.PutU64(0);
  const std::vector<uint8_t>& payload = w.bytes();
  std::vector<RecRequest> requests;
  EXPECT_FALSE(
      wire::DecodeRequestBatch(payload.data(), payload.size(), &requests));
  std::vector<wire::ShardReply> replies;
  EXPECT_FALSE(
      wire::DecodeReplyBatch(payload.data(), payload.size(), &replies));
  std::string message;
  EXPECT_FALSE(wire::DecodeError(payload.data(), payload.size(), &message));

  // Same for a nested (per-reply item) count.
  wire::Writer nested;
  nested.PutU64(1);           // one reply
  nested.PutI64(0);           // user
  nested.PutU64(1ULL << 59);  // impossible item count
  EXPECT_FALSE(wire::DecodeReplyBatch(nested.bytes().data(),
                                      nested.bytes().size(), &replies));
}

TEST(WireReplyBatchTest, ScoresRoundTripBitExactly) {
  // The adversarial score set: negative zero, denormals, extremes, values
  // whose decimal formatting would lose bits. (NaN never crosses the wire
  // in practice — TopKHeap drops it pre-serialization — but the format
  // itself is transparent to any bit pattern.)
  const std::vector<Real> scores = {
      0.0,
      -0.0,
      1.0,
      -1.0,
      std::numeric_limits<Real>::denorm_min(),
      -std::numeric_limits<Real>::denorm_min(),
      std::numeric_limits<Real>::min(),
      std::numeric_limits<Real>::max(),
      -std::numeric_limits<Real>::max(),
      std::numeric_limits<Real>::infinity(),
      -std::numeric_limits<Real>::infinity(),
      0.1,  // not exactly representable: printf round-trips lose this
      std::nextafter(1.0, 2.0),
  };
  std::vector<wire::ShardReply> replies(2);
  replies[0].user = 7;
  for (size_t i = 0; i < scores.size(); ++i) {
    replies[0].items.push_back({static_cast<Index>(i), scores[i]});
  }
  replies[1].user = 11;  // empty items list round-trips too

  const std::vector<uint8_t> payload = wire::EncodeReplyBatch(replies);
  std::vector<wire::ShardReply> got;
  ASSERT_TRUE(wire::DecodeReplyBatch(payload.data(), payload.size(), &got));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].user, 7);
  EXPECT_EQ(got[1].user, 11);
  EXPECT_TRUE(got[1].items.empty());
  ASSERT_EQ(got[0].items.size(), scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_EQ(got[0].items[i].item, static_cast<Index>(i));
    EXPECT_TRUE(SameBits(got[0].items[i].score, scores[i])) << i;
  }

  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(wire::DecodeReplyBatch(payload.data(), len, &got)) << len;
  }
}

TEST(WireErrorTest, RoundTripIncludingEmptyAndBinary) {
  const std::vector<std::string> messages = {
      "", "shard range mismatch", std::string("nul\0byte", 8)};
  for (const std::string& message : messages) {
    const std::vector<uint8_t> payload = wire::EncodeError(message);
    std::string got;
    ASSERT_TRUE(wire::DecodeError(payload.data(), payload.size(), &got));
    EXPECT_EQ(got, message);
  }
}

}  // namespace
}  // namespace firzen
