// Optimizer tests: SGD/Adam convergence on a convex problem, gradient
// clearing semantics, and lazy (row-sparse) Adam's untouched-row guarantee.
#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/ops.h"
#include "src/tensor/optim.h"

namespace firzen {
namespace {

using namespace ops;  // NOLINT(build/namespaces)

TEST(SgdTest, MinimizesQuadratic) {
  Tensor x = Tensor::Variable(Matrix(1, 1, 5.0));
  Sgd sgd(0.1);
  for (int i = 0; i < 200; ++i) {
    Tensor loss = SumSquares(x);
    Backward(loss);
    sgd.Step({x});
  }
  EXPECT_NEAR(x.value()(0, 0), 0.0, 1e-6);
}

TEST(SgdTest, WeightDecayShrinksParameters) {
  Tensor x = Tensor::Variable(Matrix(1, 1, 1.0));
  Sgd sgd(0.1, /*weight_decay=*/1.0);
  // Zero loss gradient: only decay acts.
  Tensor zero = Tensor::Constant(Matrix(1, 1, 0.0));
  for (int i = 0; i < 5; ++i) {
    Tensor loss = ReduceSum(Mul(x, zero));
    Backward(loss);
    sgd.Step({x});
  }
  EXPECT_LT(x.value()(0, 0), 1.0);
  EXPECT_GT(x.value()(0, 0), 0.0);
}

TEST(AdamTest, MinimizesShiftedQuadratic) {
  // loss = sum((x - 3)^2).
  Tensor x = Tensor::Variable(Matrix(2, 2, 0.0));
  Tensor target = Tensor::Constant(Matrix(2, 2, 3.0));
  Adam::Options options;
  options.lr = 0.05;
  Adam adam(options);
  for (int i = 0; i < 600; ++i) {
    Tensor loss = SumSquares(Sub(x, target));
    Backward(loss);
    adam.Step({x});
  }
  for (Index i = 0; i < x.value().size(); ++i) {
    EXPECT_NEAR(x.value().data()[i], 3.0, 1e-3);
  }
}

TEST(AdamTest, ZeroesGradientsAfterStep) {
  Tensor x = Tensor::Variable(Matrix(1, 1, 1.0));
  Adam adam(Adam::Options{});
  Tensor loss = SumSquares(x);
  Backward(loss);
  EXPECT_NE(x.grad()(0, 0), 0.0);
  adam.Step({x});
  EXPECT_EQ(x.grad()(0, 0), 0.0);
}

TEST(LazyAdamTest, SkipsUntouchedRows) {
  Tensor table = Tensor::Variable(Matrix(5, 2, 1.0));
  Adam::Options options;
  options.lr = 0.1;
  options.lazy = true;
  Adam adam(options);
  // Only rows 1 and 3 are touched by the gather.
  for (int i = 0; i < 10; ++i) {
    Tensor batch = GatherRows(table, {1, 3});
    Tensor loss = SumSquares(batch);
    Backward(loss);
    adam.Step({table});
  }
  // Untouched rows keep their exact initial values.
  for (Index r : {0, 2, 4}) {
    EXPECT_DOUBLE_EQ(table.value()(r, 0), 1.0);
    EXPECT_DOUBLE_EQ(table.value()(r, 1), 1.0);
  }
  // Touched rows moved toward zero.
  EXPECT_LT(table.value()(1, 0), 1.0);
  EXPECT_LT(table.value()(3, 0), 1.0);
}

TEST(LazyAdamTest, MatchesDenseAdamWhenAllRowsTouched) {
  Tensor dense_param = Tensor::Variable(Matrix(3, 2, 2.0));
  Tensor lazy_param = Tensor::Variable(Matrix(3, 2, 2.0));
  Adam::Options dense_options;
  dense_options.lr = 0.05;
  Adam dense(dense_options);
  Adam::Options lazy_options;
  lazy_options.lr = 0.05;
  lazy_options.lazy = true;
  Adam lazy(lazy_options);
  for (int i = 0; i < 20; ++i) {
    Tensor l1 = SumSquares(dense_param);
    Backward(l1);
    dense.Step({dense_param});
    Tensor l2 = SumSquares(lazy_param);
    Backward(l2);
    lazy.Step({lazy_param});
  }
  for (Index i = 0; i < dense_param.value().size(); ++i) {
    EXPECT_NEAR(dense_param.value().data()[i], lazy_param.value().data()[i],
                1e-10);
  }
}

}  // namespace
}  // namespace firzen
