#include "src/serve/wire.h"

#include <cstring>

namespace firzen {
namespace wire {

void Writer::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Writer::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Writer::PutF64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "Real must be a 64-bit double");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Writer::PutBytes(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + size);
}

bool Reader::GetU8(uint8_t* v) {
  if (remaining() < 1) return false;
  *v = data_[pos_++];
  return true;
}

bool Reader::GetU32(uint32_t* v) {
  if (remaining() < 4) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return true;
}

bool Reader::GetU64(uint64_t* v) {
  if (remaining() < 8) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return true;
}

bool Reader::GetI64(int64_t* v) {
  uint64_t bits;
  if (!GetU64(&bits)) return false;
  *v = static_cast<int64_t>(bits);
  return true;
}

bool Reader::GetF64(double* v) {
  uint64_t bits;
  if (!GetU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool Reader::GetCount(size_t min_element_bytes, uint64_t* count) {
  uint64_t n;
  if (!GetU64(&n)) return false;
  // Even zero-byte elements must not overflow size_t arithmetic below.
  if (min_element_bytes == 0) min_element_bytes = 1;
  if (n > remaining() / min_element_bytes) return false;
  *count = n;
  return true;
}

namespace {

// Index is int64_t (src/util/common.h); ship it as i64 everywhere so the
// format never depends on the build's Index width assumptions.
void PutIndexVector(Writer* w, const std::vector<Index>& v) {
  w->PutU64(static_cast<uint64_t>(v.size()));
  for (Index x : v) w->PutI64(static_cast<int64_t>(x));
}

bool GetIndexVector(Reader* r, std::vector<Index>* v) {
  uint64_t n;
  if (!r->GetCount(8, &n)) return false;
  v->resize(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    int64_t x;
    if (!r->GetI64(&x)) return false;
    (*v)[static_cast<size_t>(i)] = static_cast<Index>(x);
  }
  return true;
}

}  // namespace

std::vector<uint8_t> EncodeHello() {
  Writer w;
  w.PutU32(kMagic);
  w.PutU32(kProtocolVersion);
  return w.Take();
}

bool DecodeHello(const uint8_t* data, size_t size, uint32_t* version) {
  Reader r(data, size);
  uint32_t magic;
  if (!r.GetU32(&magic) || magic != kMagic) return false;
  if (!r.GetU32(version)) return false;
  return r.AtEnd();
}

std::vector<uint8_t> EncodeShardInfo(const ShardInfo& info) {
  Writer w;
  w.PutU32(kMagic);
  w.PutU32(kProtocolVersion);
  w.PutI64(static_cast<int64_t>(info.shard_begin));
  w.PutI64(static_cast<int64_t>(info.shard_end));
  w.PutI64(static_cast<int64_t>(info.num_items));
  return w.Take();
}

bool DecodeShardInfo(const uint8_t* data, size_t size, ShardInfo* info) {
  Reader r(data, size);
  uint32_t magic, version;
  if (!r.GetU32(&magic) || magic != kMagic) return false;
  if (!r.GetU32(&version) || version != kProtocolVersion) return false;
  int64_t begin, end, num_items;
  if (!r.GetI64(&begin) || !r.GetI64(&end) || !r.GetI64(&num_items)) {
    return false;
  }
  if (begin < 0 || end < begin || num_items < end) return false;
  info->shard_begin = static_cast<Index>(begin);
  info->shard_end = static_cast<Index>(end);
  info->num_items = static_cast<Index>(num_items);
  return r.AtEnd();
}

std::vector<uint8_t> EncodeRequestBatch(
    const std::vector<RecRequest>& requests) {
  Writer w;
  w.PutU64(static_cast<uint64_t>(requests.size()));
  for (const RecRequest& req : requests) {
    w.PutI64(static_cast<int64_t>(req.user));
    w.PutI64(static_cast<int64_t>(req.k));
    PutIndexVector(&w, req.candidates);
    w.PutU8(static_cast<uint8_t>(req.exclusion));
    PutIndexVector(&w, req.exclude);
    w.PutU8(req.cold_only ? 1 : 0);
    w.PutI64(req.deadline_us);
    w.PutI64(static_cast<int64_t>(req.tenant));
  }
  return w.Take();
}

bool DecodeRequestBatch(const uint8_t* data, size_t size,
                        std::vector<RecRequest>* requests) {
  Reader r(data, size);
  // Fixed per-request footprint: user + k + two vector counts + exclusion
  // byte + cold byte + deadline + tenant = 8+8+8+8+1+1+8+8 = 50 bytes.
  uint64_t n;
  if (!r.GetCount(50, &n)) return false;
  requests->clear();
  requests->resize(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    RecRequest& req = (*requests)[static_cast<size_t>(i)];
    int64_t user, k;
    if (!r.GetI64(&user) || !r.GetI64(&k)) return false;
    req.user = static_cast<Index>(user);
    req.k = static_cast<Index>(k);
    if (!GetIndexVector(&r, &req.candidates)) return false;
    uint8_t exclusion;
    if (!r.GetU8(&exclusion)) return false;
    if (exclusion > static_cast<uint8_t>(ExclusionPolicy::kNone)) return false;
    req.exclusion = static_cast<ExclusionPolicy>(exclusion);
    if (!GetIndexVector(&r, &req.exclude)) return false;
    uint8_t cold;
    if (!r.GetU8(&cold)) return false;
    if (cold > 1) return false;
    req.cold_only = cold != 0;
    if (!r.GetI64(&req.deadline_us)) return false;
    int64_t tenant;
    if (!r.GetI64(&tenant)) return false;
    req.tenant = static_cast<Index>(tenant);
  }
  return r.AtEnd();
}

std::vector<uint8_t> EncodeReplyBatch(const std::vector<ShardReply>& replies) {
  Writer w;
  w.PutU64(static_cast<uint64_t>(replies.size()));
  for (const ShardReply& reply : replies) {
    w.PutI64(static_cast<int64_t>(reply.user));
    w.PutU64(static_cast<uint64_t>(reply.items.size()));
    for (const ScoredItem& it : reply.items) {
      w.PutI64(static_cast<int64_t>(it.item));
      w.PutF64(it.score);  // raw bits: the bit-exactness carrier
    }
  }
  return w.Take();
}

bool DecodeReplyBatch(const uint8_t* data, size_t size,
                      std::vector<ShardReply>* replies) {
  Reader r(data, size);
  // Per-reply minimum: user + item count = 16 bytes.
  uint64_t n;
  if (!r.GetCount(16, &n)) return false;
  replies->clear();
  replies->resize(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    ShardReply& reply = (*replies)[static_cast<size_t>(i)];
    int64_t user;
    if (!r.GetI64(&user)) return false;
    reply.user = static_cast<Index>(user);
    uint64_t items;
    if (!r.GetCount(16, &items)) return false;  // item i64 + score f64
    reply.items.resize(static_cast<size_t>(items));
    for (uint64_t j = 0; j < items; ++j) {
      int64_t item;
      double score;
      if (!r.GetI64(&item) || !r.GetF64(&score)) return false;
      reply.items[static_cast<size_t>(j)] = {static_cast<Index>(item),
                                             static_cast<Real>(score)};
    }
  }
  return r.AtEnd();
}

std::vector<uint8_t> EncodeError(const std::string& message) {
  Writer w;
  w.PutU64(static_cast<uint64_t>(message.size()));
  w.PutBytes(message.data(), message.size());
  return w.Take();
}

bool DecodeError(const uint8_t* data, size_t size, std::string* message) {
  Reader r(data, size);
  uint64_t n;
  if (!r.GetCount(1, &n)) return false;
  message->resize(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    uint8_t c;
    if (!r.GetU8(&c)) return false;
    (*message)[static_cast<size_t>(i)] = static_cast<char>(c);
  }
  return r.AtEnd();
}

}  // namespace wire
}  // namespace firzen
