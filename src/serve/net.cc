#include "src/serve/net.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>

namespace firzen {
namespace net {
namespace {

using Clock = std::chrono::steady_clock;

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(Errno("fcntl(O_NONBLOCK)"));
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  // Best-effort: fails harmlessly on non-TCP sockets.
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

struct ParsedAddress {
  bool is_unix = false;
  std::string unix_path;   // is_unix
  std::string host;        // !is_unix, numeric IPv4
  uint16_t port = 0;       // !is_unix
};

Result<ParsedAddress> ParseAddress(const std::string& address) {
  ParsedAddress out;
  if (address.rfind("unix:", 0) == 0) {
    out.is_unix = true;
    out.unix_path = address.substr(5);
    if (out.unix_path.empty()) {
      return Status::InvalidArgument("empty unix socket path: " + address);
    }
    sockaddr_un probe;
    if (out.unix_path.size() >= sizeof(probe.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " + address);
    }
    return out;
  }
  size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == address.size()) {
    return Status::InvalidArgument("address must be host:port or unix:PATH: " +
                                   address);
  }
  out.host = address.substr(0, colon);
  if (out.host == "localhost") out.host = "127.0.0.1";
  long port = 0;
  for (size_t i = colon + 1; i < address.size(); ++i) {
    char c = address[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad port in address: " + address);
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("port out of range: " + address);
    }
  }
  out.port = static_cast<uint16_t>(port);
  in_addr probe;
  if (inet_pton(AF_INET, out.host.c_str(), &probe) != 1) {
    return Status::InvalidArgument("host must be numeric IPv4 or localhost: " +
                                   address);
  }
  return out;
}

// Milliseconds left until `deadline`, clamped at 0; -1 when no deadline.
int RemainingMs(bool has_deadline, Clock::time_point deadline) {
  if (!has_deadline) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  if (left < 0) return 0;
  if (left > 1000 * 3600) return 1000 * 3600;
  return static_cast<int>(left);
}

// Polls `fd` for `events` until ready, error, or deadline. Returns OK when
// ready, IOError("... timed out") at the deadline.
Status PollFor(int fd, short events, bool has_deadline,
               Clock::time_point deadline, const char* what) {
  for (;;) {
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int timeout = RemainingMs(has_deadline, deadline);
    int rc = poll(&pfd, 1, timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("poll"));
    }
    if (rc == 0) {
      return Status::IOError(std::string(what) + " timed out");
    }
    // Readiness OR error/hangup: let the subsequent read/write surface the
    // concrete errno (POLLHUP still allows draining buffered bytes).
    return Status::OK();
  }
}

Status SendAll(int fd, const uint8_t* data, size_t size, bool has_deadline,
               Clock::time_point deadline) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      Status s = PollFor(fd, POLLOUT, has_deadline, deadline, "send");
      if (!s.ok()) return s;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError(Errno("send"));
  }
  return Status::OK();
}

Status RecvAll(int fd, uint8_t* data, size_t size, bool has_deadline,
               Clock::time_point deadline) {
  size_t got = 0;
  while (got < size) {
    ssize_t n = recv(fd, data + got, size - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return Status::IOError("connection closed");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      Status s = PollFor(fd, POLLIN, has_deadline, deadline, "recv");
      if (!s.ok()) return s;
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IOError(Errno("recv"));
  }
  return Status::OK();
}

}  // namespace

UniqueFd& UniqueFd::operator=(UniqueFd&& other) noexcept {
  if (this != &other) {
    reset(other.fd_);
    other.fd_ = -1;
  }
  return *this;
}

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) close(fd_);
  fd_ = fd;
}

Result<UniqueFd> Listen(const std::string& address,
                        std::string* bound_address) {
  Result<ParsedAddress> parsed = ParseAddress(address);
  if (!parsed.ok()) return parsed.status();
  const ParsedAddress& addr = parsed.value();

  if (addr.is_unix) {
    UniqueFd fd(socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd) return Status::IOError(Errno("socket(AF_UNIX)"));
    sockaddr_un sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sun_family = AF_UNIX;
    std::memcpy(sa.sun_path, addr.unix_path.c_str(), addr.unix_path.size());
    unlink(addr.unix_path.c_str());  // stale socket file from a dead server
    if (bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
      return Status::IOError(Errno("bind " + address));
    }
    if (listen(fd.get(), 64) < 0) {
      return Status::IOError(Errno("listen " + address));
    }
    if (bound_address != nullptr) *bound_address = address;
    return fd;
  }

  UniqueFd fd(socket(AF_INET, SOCK_STREAM, 0));
  if (!fd) return Status::IOError(Errno("socket(AF_INET)"));
  int one = 1;
  setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr);
  if (bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    return Status::IOError(Errno("bind " + address));
  }
  if (listen(fd.get(), 64) < 0) {
    return Status::IOError(Errno("listen " + address));
  }
  if (bound_address != nullptr) {
    sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) <
        0) {
      return Status::IOError(Errno("getsockname"));
    }
    char ip[INET_ADDRSTRLEN];
    inet_ntop(AF_INET, &actual.sin_addr, ip, sizeof(ip));
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s:%u", ip,
                  static_cast<unsigned>(ntohs(actual.sin_port)));
    *bound_address = buf;
  }
  return fd;
}

Result<UniqueFd> Accept(int listen_fd, int64_t timeout_ms) {
  bool has_deadline = timeout_ms >= 0;
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(has_deadline ? timeout_ms : 0);
  Status ready = PollFor(listen_fd, POLLIN, has_deadline, deadline, "accept");
  if (!ready.ok()) {
    if (ready.message().find("timed out") != std::string::npos) {
      return UniqueFd();  // timeout: invalid fd, not an error
    }
    return ready;
  }
  for (;;) {
    int fd = accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      UniqueFd conn(fd);
      Status s = SetNonBlocking(conn.get());
      if (!s.ok()) return s;
      SetNoDelay(conn.get());
      return conn;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return UniqueFd();  // raced another accepter; treat as timeout
    }
    return Status::IOError(Errno("accept"));
  }
}

Result<UniqueFd> Connect(const std::string& address, int64_t timeout_ms) {
  Result<ParsedAddress> parsed = ParseAddress(address);
  if (!parsed.ok()) return parsed.status();
  const ParsedAddress& addr = parsed.value();
  bool has_deadline = timeout_ms >= 0;
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(has_deadline ? timeout_ms : 0);

  UniqueFd fd(socket(addr.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0));
  if (!fd) return Status::IOError(Errno("socket"));
  Status s = SetNonBlocking(fd.get());
  if (!s.ok()) return s;

  int rc;
  if (addr.is_unix) {
    sockaddr_un sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sun_family = AF_UNIX;
    std::memcpy(sa.sun_path, addr.unix_path.c_str(), addr.unix_path.size());
    rc = connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  } else {
    sockaddr_in sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sin_family = AF_INET;
    sa.sin_port = htons(addr.port);
    inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr);
    rc = connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  }
  if (rc < 0 && errno != EINPROGRESS) {
    return Status::IOError(Errno("connect " + address));
  }
  if (rc < 0) {
    // Non-blocking connect in flight: wait for writability, then check the
    // socket's resolved error.
    Status ready =
        PollFor(fd.get(), POLLOUT, has_deadline, deadline, "connect");
    if (!ready.ok()) return ready;
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return Status::IOError(Errno("getsockopt(SO_ERROR)"));
    }
    if (err != 0) {
      errno = err;
      return Status::IOError(Errno("connect " + address));
    }
  }
  SetNoDelay(fd.get());
  return fd;
}

Status SendFrame(int fd, wire::FrameType type,
                 const std::vector<uint8_t>& payload, int64_t timeout_ms) {
  if (payload.size() > wire::kMaxFramePayload) {
    return Status::InvalidArgument("frame payload over cap");
  }
  bool has_deadline = timeout_ms >= 0;
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(has_deadline ? timeout_ms : 0);
  uint8_t header[wire::kFrameHeaderSize];
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<uint8_t>(len >> (8 * i));
  }
  header[4] = static_cast<uint8_t>(type);
  Status s = SendAll(fd, header, sizeof(header), has_deadline, deadline);
  if (!s.ok()) return s;
  if (payload.empty()) return Status::OK();
  return SendAll(fd, payload.data(), payload.size(), has_deadline, deadline);
}

Status RecvFrame(int fd, wire::FrameType* type, std::vector<uint8_t>* payload,
                 int64_t timeout_ms) {
  bool has_deadline = timeout_ms >= 0;
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(has_deadline ? timeout_ms : 0);
  uint8_t header[wire::kFrameHeaderSize];
  Status s = RecvAll(fd, header, sizeof(header), has_deadline, deadline);
  if (!s.ok()) return s;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(header[i]) << (8 * i);
  }
  if (len > wire::kMaxFramePayload) {
    return Status::IOError("frame payload over cap (corrupt stream?)");
  }
  uint8_t raw_type = header[4];
  if (raw_type < static_cast<uint8_t>(wire::FrameType::kHello) ||
      raw_type > static_cast<uint8_t>(wire::FrameType::kError)) {
    return Status::IOError("unknown frame type (corrupt stream?)");
  }
  *type = static_cast<wire::FrameType>(raw_type);
  payload->resize(len);
  if (len == 0) return Status::OK();
  return RecvAll(fd, payload->data(), len, has_deadline, deadline);
}

}  // namespace net
}  // namespace firzen
