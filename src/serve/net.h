// Minimal POSIX socket layer under the distributed serving wire protocol:
// address parsing, listen/accept/connect, and deadline-bounded framed I/O.
// Plain sockets only — no external RPC dependency; the two address forms
// are local TCP ("host:port", host numeric IPv4 or "localhost", port 0 =
// kernel-assigned) and Unix domain ("unix:/path/to.sock").
//
// All connected sockets are non-blocking and every I/O helper takes a
// timeout: SendFrame/RecvFrame poll toward an absolute deadline computed
// once per call, so a stalled peer costs at most the budget the caller
// passed — the primitive the coordinator's per-shard deadline cap is built
// on. timeout_ms < 0 means no deadline (block until progress or error).
//
// Errors come back as Status (src/util/status.h), never exceptions;
// timeouts are IOError with "timed out" in the message. EINTR is retried
// internally; SIGPIPE is suppressed (MSG_NOSIGNAL).
#ifndef FIRZEN_SERVE_NET_H_
#define FIRZEN_SERVE_NET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/serve/wire.h"
#include "src/util/status.h"

namespace firzen {
namespace net {

/// RAII file descriptor: closes on destruction, move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  UniqueFd& operator=(UniqueFd&& other) noexcept;
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  ~UniqueFd() { reset(); }

  int get() const { return fd_; }
  explicit operator bool() const { return fd_ >= 0; }
  /// Closes the held fd (if any) and adopts `fd`.
  void reset(int fd = -1);
  /// Releases ownership without closing.
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Binds and listens on `address`. TCP listeners get SO_REUSEADDR (so a
/// restarted server can rebind its port immediately); Unix listeners
/// unlink a stale socket file first. On success *bound_address holds the
/// concrete address — for "host:0" the kernel-assigned port is resolved,
/// which is how tests and in-process servers publish where they listen.
Result<UniqueFd> Listen(const std::string& address, std::string* bound_address);

/// Accepts one connection from a listening fd, waiting at most
/// `timeout_ms` (< 0 = forever). Returns an INVALID UniqueFd (not an
/// error) on timeout, so accept loops can poll a stop flag between waits.
/// The accepted socket is non-blocking with TCP_NODELAY where applicable.
Result<UniqueFd> Accept(int listen_fd, int64_t timeout_ms);

/// Connects to `address` within `timeout_ms` (< 0 = forever). The returned
/// socket is non-blocking with TCP_NODELAY where applicable.
Result<UniqueFd> Connect(const std::string& address, int64_t timeout_ms);

/// Writes one framed message ([u32 payload_len][u8 type][payload]) fully,
/// polling toward the deadline. Payloads over wire::kMaxFramePayload are
/// refused locally.
Status SendFrame(int fd, wire::FrameType type,
                 const std::vector<uint8_t>& payload, int64_t timeout_ms = -1);

/// Reads exactly one framed message, polling toward the deadline shared by
/// the header and payload reads. A peer close yields
/// IOError("connection closed"); a length prefix over
/// wire::kMaxFramePayload or an unknown frame type is a protocol error
/// (IOError) — the caller should drop the connection.
Status RecvFrame(int fd, wire::FrameType* type, std::vector<uint8_t>* payload,
                 int64_t timeout_ms = -1);

}  // namespace net
}  // namespace firzen

#endif  // FIRZEN_SERVE_NET_H_
