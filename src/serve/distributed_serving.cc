#include "src/serve/distributed_serving.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "src/eval/admission.h"
#include "src/eval/sharded_serving.h"
#include "src/util/check.h"

namespace firzen {

// Defined here rather than in src/eval/admission.cc so the eval layer never
// includes serve/ (include layering; see tools/firzen_lint.py). Mirrors the
// ServingEngine / ShardedServingEngine overloads verbatim.
AdmissionController::AdmissionController(const DistributedServingEngine* engine,
                                         AdmissionOptions options)
    : options_(std::move(options)) {
  FIRZEN_CHECK(engine != nullptr);
  if (options_.resume_queue_depth < 0) {
    options_.resume_queue_depth = options_.max_queue_depth / 2;
  }
  Validate();
  backend_ = [engine](const std::vector<RecRequest>& requests) {
    return engine->RecommendBatchDirect(requests);
  };
}

namespace {

using Clock = std::chrono::steady_clock;

// Milliseconds remaining until `deadline`, rounded UP so sub-millisecond
// budgets still get one poll instead of an instant timeout; <= 0 when the
// deadline has passed.
int64_t RemainingMs(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
                        deadline - Clock::now())
                        .count();
  if (left <= 0) return 0;
  return (left + 999) / 1000;
}

}  // namespace

Result<std::unique_ptr<DistributedServingEngine>>
DistributedServingEngine::Connect(DistributedServingOptions options) {
  if (options.shard_addresses.empty()) {
    return Status::InvalidArgument("no shard addresses");
  }
  // Bare new: the constructor is private, so make_unique cannot reach it.
  std::unique_ptr<DistributedServingEngine> engine(
      new DistributedServingEngine());
  engine->options_ = std::move(options);
  for (const std::string& address : engine->options_.shard_addresses) {
    auto conn = std::make_unique<Conn>();
    conn->address = address;
    Status dialed = engine->DialShard(address, engine->options_.connect_timeout_ms,
                                      &conn->fd, &conn->info);
    if (!dialed.ok()) {
      return Status(dialed.code(),
                    "shard " + address + ": " + dialed.message());
    }
    engine->conns_.push_back(std::move(conn));
  }

  // The announced ranges must tile [0, num_items) exactly, in ANY address
  // order, and agree on the catalog size: a hole would silently drop part
  // of the catalog, an overlap would double-count items in the merge.
  const Index num_items = engine->conns_[0]->info.num_items;
  std::vector<const wire::ShardInfo*> by_begin;
  for (const auto& conn : engine->conns_) {
    if (conn->info.num_items != num_items) {
      return Status::FailedPrecondition(
          "shard servers disagree on catalog size");
    }
    by_begin.push_back(&conn->info);
  }
  std::sort(by_begin.begin(), by_begin.end(),
            [](const wire::ShardInfo* a, const wire::ShardInfo* b) {
              return a->shard_begin < b->shard_begin;
            });
  Index cursor = 0;
  for (const wire::ShardInfo* info : by_begin) {
    if (info->shard_begin != cursor) {
      return Status::FailedPrecondition(
          "shard ranges do not tile the catalog (hole or overlap at item " +
          std::to_string(cursor) + ")");
    }
    cursor = info->shard_end;
  }
  if (cursor != num_items) {
    return Status::FailedPrecondition(
        "shard ranges do not cover the catalog tail");
  }
  engine->num_items_ = num_items;
  return engine;
}

Status DistributedServingEngine::DialShard(const std::string& address,
                                           int64_t timeout_ms,
                                           net::UniqueFd* fd,
                                           wire::ShardInfo* info) const {
  Status last = Status::OK();
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (attempt > 0 && options_.retry_backoff_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.retry_backoff_ms));
    }
    Result<net::UniqueFd> dialed = net::Connect(address, timeout_ms);
    if (!dialed.ok()) {
      last = dialed.status();
      continue;
    }
    net::UniqueFd conn = std::move(dialed.value());
    const std::vector<uint8_t> hello = wire::EncodeHello();
    Status sent =
        net::SendFrame(conn.get(), wire::FrameType::kHello, hello, timeout_ms);
    if (!sent.ok()) {
      last = sent;
      continue;
    }
    bytes_sent_.fetch_add(hello.size() + wire::kFrameHeaderSize,
                          std::memory_order_relaxed);
    wire::FrameType type;
    std::vector<uint8_t> payload;
    Status received = net::RecvFrame(conn.get(), &type, &payload, timeout_ms);
    if (!received.ok()) {
      last = received;
      continue;
    }
    bytes_received_.fetch_add(payload.size() + wire::kFrameHeaderSize,
                              std::memory_order_relaxed);
    if (type != wire::FrameType::kShardInfo ||
        !wire::DecodeShardInfo(payload.data(), payload.size(), info)) {
      std::string message = "handshake refused";
      if (type == wire::FrameType::kError) {
        wire::DecodeError(payload.data(), payload.size(), &message);
      }
      // A refusal (version mismatch, protocol garbage) is not transient;
      // retrying cannot help.
      return Status::FailedPrecondition(message);
    }
    *fd = std::move(conn);
    return Status::OK();
  }
  return last;
}

RecResponse DistributedServingEngine::Recommend(
    const RecRequest& request) const {
  return RecommendBatch({request})[0];
}

std::vector<RecResponse> DistributedServingEngine::RecommendBatch(
    const std::vector<RecRequest>& requests) const {
  if (admission_ != nullptr) return admission_->RecommendBatch(requests);
  return RecommendBatchDirect(requests);
}

ItemBlock DistributedServingEngine::shard_range(Index shard) const {
  const Conn& conn = *conns_[static_cast<size_t>(shard)];
  return {conn.info.shard_begin, conn.info.shard_end};
}

const std::string& DistributedServingEngine::shard_address(Index shard) const {
  return conns_[static_cast<size_t>(shard)]->address;
}

Status DistributedServingEngine::ExchangeOnShard(
    Conn* conn, const std::vector<uint8_t>& payload, size_t expected_replies,
    Clock::time_point deadline, std::vector<wire::ShardReply>* replies) const {
  if (!conn->fd) {
    // Down since a previous batch: re-dial within this batch's budget
    // (DialShard retries once with backoff internally). The handshake must
    // re-announce the SAME range — a different server squatting the
    // address must not silently bend the tiling.
    const int64_t budget_ms = RemainingMs(deadline);
    if (budget_ms <= 0) return Status::IOError("no budget to reconnect");
    wire::ShardInfo fresh;
    Status dialed = DialShard(conn->address, budget_ms, &conn->fd, &fresh);
    if (!dialed.ok()) return dialed;
    if (fresh.shard_begin != conn->info.shard_begin ||
        fresh.shard_end != conn->info.shard_end ||
        fresh.num_items != conn->info.num_items) {
      conn->fd.reset();
      return Status::FailedPrecondition(
          "reconnected shard announces a different range");
    }
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  }

  const int64_t send_ms = RemainingMs(deadline);
  if (send_ms <= 0) return Status::IOError("deadline before send");
  Status sent = net::SendFrame(conn->fd.get(),
                               wire::FrameType::kRecRequestBatch, payload,
                               send_ms);
  if (!sent.ok()) return sent;
  bytes_sent_.fetch_add(payload.size() + wire::kFrameHeaderSize,
                        std::memory_order_relaxed);

  wire::FrameType type;
  std::vector<uint8_t> reply_payload;
  const int64_t recv_ms = RemainingMs(deadline);
  Status received = net::RecvFrame(conn->fd.get(), &type, &reply_payload,
                                   recv_ms <= 0 ? 0 : recv_ms);
  if (!received.ok()) return received;
  bytes_received_.fetch_add(reply_payload.size() + wire::kFrameHeaderSize,
                            std::memory_order_relaxed);
  if (type == wire::FrameType::kError) {
    std::string message = "shard error";
    wire::DecodeError(reply_payload.data(), reply_payload.size(), &message);
    return Status::Internal(message);
  }
  if (type != wire::FrameType::kRecReplyBatch ||
      !wire::DecodeReplyBatch(reply_payload.data(), reply_payload.size(),
                              replies)) {
    return Status::Internal("malformed reply frame");
  }
  if (replies->size() != expected_replies) {
    return Status::Internal("reply count mismatch");
  }
  return Status::OK();
}

std::vector<RecResponse> DistributedServingEngine::RecommendBatchDirect(
    const std::vector<RecRequest>& requests) const {
  std::vector<RecResponse> responses(requests.size());
  if (requests.empty()) return responses;

  // Encode ONCE; every shard receives the identical batch, mirroring how
  // the in-process engine prepares the batch once for all shards.
  const std::vector<uint8_t> payload = wire::EncodeRequestBatch(requests);

  // Per-shard wait cap: the rpc timeout, tightened to the smallest
  // deadline budget any request in the batch carries — the coordinator
  // mirror of the admission collect-wait cap. A shard that cannot answer
  // within the cap degrades the batch instead of completing it late.
  int64_t budget_us = options_.rpc_timeout_ms * 1000;
  for (const RecRequest& request : requests) {
    if (request.deadline_us >= 0) {
      budget_us = std::min(budget_us, request.deadline_us);
    }
  }
  const Clock::time_point deadline =
      Clock::now() + std::chrono::microseconds(budget_us);

  const size_t num_shards = conns_.size();
  std::vector<std::vector<wire::ShardReply>> shard_replies(num_shards);
  std::vector<uint8_t> failed(num_shards, 0);

  // Already expired at fan-out (deadline_us <= 0 in the batch): every shard
  // fails without touching its connection — nothing was sent, so the
  // request/reply alternation is intact and the next batch needs no
  // re-dial.
  if (budget_us <= 0) std::fill(failed.begin(), failed.end(), uint8_t{1});

  // One exchange thread per shard: each locks exactly its own shard's
  // connection (no lock ordering to get wrong) and every socket wait is
  // bounded by `deadline`, so the join below is bounded too.
  std::vector<std::thread> threads;
  threads.reserve(num_shards);
  for (size_t s = 0; s < num_shards && budget_us > 0; ++s) {
    threads.emplace_back([&, s] {
      Conn* conn = conns_[s].get();
      MutexLock lock(conn->mu);
      Status status = ExchangeOnShard(conn, payload, requests.size(), deadline,
                                      &shard_replies[s]);
      if (!status.ok()) {
        // Drop the socket: an abandoned in-flight exchange would desync
        // the request/reply alternation for the next batch. The next
        // batch re-dials.
        conn->fd.reset();
        failed[s] = 1;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  shard_rpcs_.fetch_add(num_shards, std::memory_order_relaxed);
  std::vector<Index> failed_shards;
  for (size_t s = 0; s < num_shards; ++s) {
    if (failed[s]) failed_shards.push_back(static_cast<Index>(s));
  }
  failed_rpcs_.fetch_add(failed_shards.size(), std::memory_order_relaxed);
  const bool degraded = !failed_shards.empty();
  if (degraded) {
    degraded_responses_.fetch_add(requests.size(), std::memory_order_relaxed);
  }

  // ShardedServingEngine's merge half, verbatim: concatenate the surviving
  // shards' RanksBefore-sorted lists, MergeTopK to each request's k.
  for (size_t i = 0; i < requests.size(); ++i) {
    std::vector<ScoredItem> entries;
    for (size_t s = 0; s < num_shards; ++s) {
      if (failed[s]) continue;
      const std::vector<ScoredItem>& top = shard_replies[s][i].items;
      entries.insert(entries.end(), top.begin(), top.end());
    }
    const std::vector<ScoredItem> merged =
        MergeTopK(std::move(entries), requests[i].k);
    responses[i].user = requests[i].user;
    responses[i].status = degraded ? RecStatus::kDegraded : RecStatus::kOk;
    if (degraded) responses[i].failed_shards = failed_shards;
    responses[i].items.reserve(merged.size());
    for (const ScoredItem& e : merged) {
      responses[i].items.push_back({e.item, e.score});
    }
  }
  return responses;
}

}  // namespace firzen
