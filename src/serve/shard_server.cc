#include "src/serve/shard_server.h"

#include <sys/socket.h>

#include <chrono>
#include <utility>

#include "src/eval/serving_internal.h"
#include "src/eval/topk.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace firzen {

namespace {
// How long the accept loop sleeps between stop-flag checks. Short enough
// that Stop() is prompt, long enough to cost nothing.
constexpr int64_t kAcceptPollMs = 50;
}  // namespace

ShardServer::ShardServer(std::unique_ptr<Scorer> scorer,
                         std::shared_ptr<const ServingSharedState> state,
                         ItemBlock shard, ShardServerOptions options)
    : scorer_(std::move(scorer)),
      state_(std::move(state)),
      shard_(shard),
      options_(std::move(options)) {
  FIRZEN_CHECK(scorer_ != nullptr);
  FIRZEN_CHECK(state_ != nullptr);
  num_items_ = scorer_->num_items();
  FIRZEN_CHECK_EQ(static_cast<Index>(state_->is_cold.size()), num_items_);
  FIRZEN_CHECK_GE(shard_.begin, 0);
  FIRZEN_CHECK_LE(shard_.begin, shard_.end);
  FIRZEN_CHECK_LE(shard_.end, num_items_);
  FIRZEN_CHECK_GT(options_.item_block, 0);
  if (options_.pool == nullptr) options_.pool = ThreadPool::Global();
  view_ = std::make_unique<const ItemRangeScorer>(scorer_.get(), shard_.begin,
                                                  shard_.end);
  stall_replies_us_.store(options_.stall_replies_us,
                          std::memory_order_relaxed);
}

ShardServer::~ShardServer() { Stop(); }

Status ShardServer::Start() {
  FIRZEN_CHECK(!started_);
  Result<net::UniqueFd> listener =
      net::Listen(options_.listen_address, &bound_address_);
  if (!listener.ok()) return listener.status();
  listen_fd_ = std::move(listener.value());
  started_ = true;
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ShardServer::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  {
    // Wake handlers blocked in recv: a shutdown makes their pending read
    // return "connection closed" and the handler exits on its own.
    MutexLock lock(conn_mu_);
    for (int fd : live_conn_fds_) shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> handlers;
  {
    MutexLock lock(conn_mu_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  listen_fd_.reset();
  started_ = false;
}

void ShardServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<net::UniqueFd> conn = net::Accept(listen_fd_.get(), kAcceptPollMs);
    if (!conn.ok()) return;        // listener broke; nothing to serve
    if (!conn.value()) continue;   // poll tick: re-check the stop flag
    MutexLock lock(conn_mu_);
    if (stopping_.load(std::memory_order_relaxed)) return;
    net::UniqueFd fd = std::move(conn.value());
    live_conn_fds_.push_back(fd.get());
    handlers_.emplace_back(
        [this, raw = std::make_shared<net::UniqueFd>(std::move(fd))]() mutable {
          HandleConnection(std::move(*raw));
        });
  }
}

std::string ShardServer::ValidateRequests(
    const std::vector<RecRequest>& requests) const {
  // Mirror of serving_internal::PrepareRequests' FIRZEN_CHECKs, as
  // recoverable validation: these are remote bytes, not local programming
  // errors, so they must refuse the batch instead of aborting the server.
  for (const RecRequest& req : requests) {
    if (req.k <= 0) return "bad request: k <= 0";
    if (req.user < 0) return "bad request: negative user";
    if (options_.num_users > 0 && req.user >= options_.num_users) {
      return "bad request: user beyond catalog";
    }
    for (Index c : req.candidates) {
      if (c < 0 || c >= num_items_) {
        return "bad request: candidate outside [0, num_items)";
      }
    }
    if (state_->seen.size() > 0 &&
        req.exclusion == ExclusionPolicy::kTrainSeen &&
        req.user >= static_cast<Index>(state_->seen.size())) {
      return "bad request: user beyond exclusion state";
    }
  }
  return "";
}

void ShardServer::HandleConnection(net::UniqueFd conn) {
  const int fd = conn.get();
  // Deregister the fd on every exit path so Stop() never shuts down a
  // recycled descriptor.
  struct Deregister {
    ShardServer* server;
    int fd;
    ~Deregister() {
      MutexLock lock(server->conn_mu_);
      auto& fds = server->live_conn_fds_;
      for (size_t i = 0; i < fds.size(); ++i) {
        if (fds[i] == fd) {
          fds[i] = fds.back();
          fds.pop_back();
          break;
        }
      }
    }
  } deregister{this, fd};

  // Handshake: hello -> shard info (or a version refusal).
  wire::FrameType type;
  std::vector<uint8_t> payload;
  if (!net::RecvFrame(fd, &type, &payload).ok()) return;
  uint32_t version = 0;
  if (type != wire::FrameType::kHello ||
      !wire::DecodeHello(payload.data(), payload.size(), &version)) {
    net::SendFrame(fd, wire::FrameType::kError,
                   wire::EncodeError("expected hello"));
    return;
  }
  if (version != wire::kProtocolVersion) {
    net::SendFrame(fd, wire::FrameType::kError,
                   wire::EncodeError("protocol version mismatch"));
    return;
  }
  wire::ShardInfo info;
  info.shard_begin = shard_.begin;
  info.shard_end = shard_.end;
  info.num_items = num_items_;
  if (!net::SendFrame(fd, wire::FrameType::kShardInfo,
                      wire::EncodeShardInfo(info))
           .ok()) {
    return;
  }

  // Strict request/reply alternation until the peer hangs up or errs.
  std::vector<RecRequest> requests;
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (!net::RecvFrame(fd, &type, &payload).ok()) return;
    if (type != wire::FrameType::kRecRequestBatch ||
        !wire::DecodeRequestBatch(payload.data(), payload.size(), &requests)) {
      net::SendFrame(fd, wire::FrameType::kError,
                     wire::EncodeError("expected request batch"));
      return;
    }
    const std::string invalid = ValidateRequests(requests);
    if (!invalid.empty()) {
      net::SendFrame(fd, wire::FrameType::kError, wire::EncodeError(invalid));
      return;
    }

    // The in-process sharded engine's per-shard half, verbatim: prepare
    // the FULL batch in global ids, rank this shard's range through the
    // view, collect each heap's RanksBefore-sorted top-k (global ids).
    const serving_internal::PreparedBatch batch =
        serving_internal::PrepareBatch(requests, *state_, num_items_);
    std::vector<TopKHeap> heaps;
    heaps.reserve(requests.size());
    for (const RecRequest& req : requests) heaps.emplace_back(req.k);
    {
      ArenaPool::Lease arena = arenas_.Acquire();
      serving_internal::RankRequestsInRange(*view_, shard_, requests, batch,
                                            *state_, options_.item_block,
                                            options_.pool, arena.get(), &heaps);
    }
    std::vector<wire::ShardReply> replies(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      replies[i].user = requests[i].user;
      replies[i].items = heaps[i].Sorted();
    }

    const int64_t stall = stall_replies_us_.load(std::memory_order_relaxed);
    if (stall > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(stall));
    }
    if (!net::SendFrame(fd, wire::FrameType::kRecReplyBatch,
                        wire::EncodeReplyBatch(replies))
             .ok()) {
      return;
    }
    requests_served_.fetch_add(requests.size(), std::memory_order_relaxed);
    batches_served_.fetch_add(1, std::memory_order_relaxed);
  }
}

Result<EmbeddingShardServer> ServeEmbeddingsShard(
    const std::string& embeddings_path, Index shard_begin, Index shard_end,
    ShardServerOptions options) {
  Result<std::unique_ptr<StaticRecommender>> loaded =
      LoadEmbeddings(embeddings_path);
  if (!loaded.ok()) return loaded.status();
  EmbeddingShardServer out;
  out.model = std::move(loaded.value());
  const Index num_items = out.model->ItemEmbeddings().rows();
  const Index num_users = out.model->user_embeddings().rows();
  if (shard_begin < 0 || shard_end < shard_begin || shard_end > num_items) {
    return Status::InvalidArgument("shard range outside [0, num_items)");
  }
  // Same all-warm, no-exclusion state firzen_cli builds for its local
  // serving paths — the two sides must agree for byte-identical output.
  Dataset empty;
  empty.num_users = num_users;
  empty.num_items = num_items;
  empty.is_cold_item.assign(static_cast<size_t>(num_items), false);
  auto state = ServingSharedState::FromDataset(empty, num_items);
  options.num_users = num_users;
  // Mint before the make_unique call: options is moved into it, and
  // argument evaluation order is unspecified.
  std::unique_ptr<Scorer> scorer = out.model->MakeScorer(options.precision);
  out.server = std::make_unique<ShardServer>(
      std::move(scorer), std::move(state), ItemBlock{shard_begin, shard_end},
      std::move(options));
  Status started = out.server->Start();
  if (!started.ok()) return started;
  return out;
}

}  // namespace firzen
