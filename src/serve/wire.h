// Wire protocol for distributed shard serving: a minimal length-prefixed
// binary framing over local TCP / Unix sockets, no external deps. The
// coordinator (DistributedServingEngine) speaks it to firzen_shard_server
// processes; tests speak it directly to pin the format.
//
// Frame layout (all integers little-endian):
//
//   [u32 payload_len][u8 frame_type][payload_len bytes of payload]
//
// Conversation: the client opens with kHello (magic + protocol version);
// the server answers kShardInfo (its global item range and catalog size) or
// kError on a version mismatch. After the handshake the client sends
// kRecRequestBatch frames and the server answers each with exactly one
// kRecReplyBatch (same request count, same order) or kError — a strict
// request/reply alternation, so one connection needs no request ids.
//
// Determinism contract: scores travel as their raw 8-byte IEEE-754
// representation (never formatted, never rounded), item ids as 64-bit
// GLOBAL ids, and each per-request reply list is the shard's top-K in
// RanksBefore order (src/eval/topk.h) — exactly the per-shard lists
// ShardedServingEngine merges in-process. Decoding is therefore bit-exact:
// a request batch and its replies survive the wire unchanged, which is
// what makes the distributed healthy path byte-identical to the
// in-process oracle (tests/distributed_serving_test.cc).
//
// Safety: decoders are bounds-checked and allocation-capped — a truncated,
// oversized, or malformed frame fails decode (returns false) instead of
// reading out of bounds or allocating unboundedly. Nothing here aborts on
// remote input; FIRZEN_CHECK guards only local programming errors.
#ifndef FIRZEN_SERVE_WIRE_H_
#define FIRZEN_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/eval/serving.h"
#include "src/eval/topk.h"

namespace firzen {
namespace wire {

/// First bytes of every kHello/kShardInfo payload ("FZRW").
constexpr uint32_t kMagic = 0x465A5257u;
/// Protocol version; bumped on any incompatible frame change. A server
/// refuses a mismatched hello with kError instead of guessing.
constexpr uint32_t kProtocolVersion = 1;

/// Hard cap on one frame's payload (64 MiB). A length prefix beyond this is
/// a protocol error: real batches are orders of magnitude smaller, and the
/// cap keeps a corrupt prefix from provoking a giant allocation.
constexpr uint32_t kMaxFramePayload = 64u * 1024u * 1024u;

/// Size of the fixed frame header ([u32 len][u8 type]).
constexpr size_t kFrameHeaderSize = 5;

enum class FrameType : uint8_t {
  kHello = 1,            // client -> server: magic, version
  kShardInfo = 2,        // server -> client: handshake accept + shard layout
  kRecRequestBatch = 3,  // client -> server: batched RecRequests
  kRecReplyBatch = 4,    // server -> client: per-request shard top-K lists
  kError = 5,            // either direction: human-readable refusal
};

/// A shard server's identity, announced in the handshake: which contiguous
/// global item range it scores and how large the full catalog is. The
/// coordinator validates that its N connections tile [0, num_items)
/// exactly and agree on num_items.
struct ShardInfo {
  Index shard_begin = 0;
  Index shard_end = 0;
  Index num_items = 0;  // full catalog size, not the shard's
};

/// One request's answer from one shard: the shard's top-K for that request
/// in RanksBefore order, item ids GLOBAL. `user` echoes the request for
/// cross-checking the strict request/reply alternation.
struct ShardReply {
  Index user = 0;
  std::vector<ScoredItem> items;
};

// --- Low-level append/read primitives (exposed for tests) ------------------

/// Append-only little-endian payload builder.
class Writer {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  /// Raw IEEE-754 bits — the bit-exactness carrier for scores.
  void PutF64(double v);
  void PutBytes(const void* data, size_t size);

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian payload reader: every Get returns false on
/// underrun and never reads past the buffer.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool GetU8(uint8_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetI64(int64_t* v);
  bool GetF64(double* v);

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  /// Reads an element count that is about to size a vector whose elements
  /// occupy at least `min_element_bytes` each on the wire. Fails when the
  /// count could not possibly fit in the remaining payload — the
  /// allocation cap that keeps a corrupt count from DoSing the decoder.
  bool GetCount(size_t min_element_bytes, uint64_t* count);

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// --- Frame payload encode/decode -------------------------------------------
// Encoders return the frame PAYLOAD only (framing — length prefix + type
// byte — is applied by net.h's SendFrame). Decoders take the received
// payload and return false on any malformation: truncation, trailing
// garbage, bad magic, impossible counts, out-of-range enum values.

std::vector<uint8_t> EncodeHello();
bool DecodeHello(const uint8_t* data, size_t size, uint32_t* version);

std::vector<uint8_t> EncodeShardInfo(const ShardInfo& info);
bool DecodeShardInfo(const uint8_t* data, size_t size, ShardInfo* info);

/// Every RecRequest field crosses the wire: user, k, candidate pool,
/// exclusion policy + custom exclude list, cold_only, deadline_us (-1 =
/// none, preserved exactly), tenant.
std::vector<uint8_t> EncodeRequestBatch(const std::vector<RecRequest>& requests);
bool DecodeRequestBatch(const uint8_t* data, size_t size,
                        std::vector<RecRequest>* requests);

std::vector<uint8_t> EncodeReplyBatch(const std::vector<ShardReply>& replies);
bool DecodeReplyBatch(const uint8_t* data, size_t size,
                      std::vector<ShardReply>* replies);

std::vector<uint8_t> EncodeError(const std::string& message);
bool DecodeError(const uint8_t* data, size_t size, std::string* message);

}  // namespace wire
}  // namespace firzen

#endif  // FIRZEN_SERVE_WIRE_H_
