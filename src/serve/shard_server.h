// One catalog shard behind a socket: ShardServer owns a contiguous global
// item range of a base scorer and answers wire::kRecRequestBatch frames
// with that shard's per-request top-K lists — exactly the lists an
// in-process ShardedServingEngine computes for the same range, because
// both run the identical shared core: serving_internal::PrepareBatch over
// the FULL request batch in global ids, then RankRequestsInRange over an
// ItemRangeScorer view. The coordinator (DistributedServingEngine) merges
// these lists with MergeTopK, so a healthy distributed response is
// byte-identical to the in-process engine by construction — the shared
// code path is the proof, the distributed-invariance suite the pin.
//
// Protocol per connection (see src/serve/wire.h): hello/shard-info
// handshake, then a strict request/reply alternation. Malformed or
// invalid remote input (bad frame, out-of-range user or candidate ids,
// k <= 0) is answered with a wire kError frame and the connection is
// dropped — remote bytes can never reach a FIRZEN_CHECK abort.
//
// Concurrency: each accepted connection gets a handler thread; handlers
// share the scorer and state (both logically const) and lease private
// ScoringArenas, the same concurrency contract the in-process engines
// pin under TSan. Start()/Stop() are setup/teardown; Stop() disconnects
// every client and joins all threads (safe to call twice; the destructor
// calls it).
#ifndef FIRZEN_SERVE_SHARD_SERVER_H_
#define FIRZEN_SERVE_SHARD_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/eval/serving.h"
#include "src/models/scorer.h"
#include "src/models/serialize.h"
#include "src/serve/net.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace firzen {

struct ShardServerOptions {
  /// Where to listen: "host:port" (port 0 = kernel-assigned, published via
  /// bound_address()) or "unix:/path".
  std::string listen_address = "127.0.0.1:0";
  /// Streamed scoring panel width, as in the in-process engines.
  Index item_block = 8192;
  /// Pool for the fused ranking loops; nullptr = ThreadPool::Global().
  ThreadPool* pool = nullptr;
  /// Upper bound for request user ids (requests with user >= num_users get
  /// a wire error instead of an out-of-bounds gather). 0 = no check — only
  /// for trusted in-process tests.
  Index num_users = 0;
  /// Fault injection for tests: sleep this long before sending each reply.
  int64_t stall_replies_us = 0;
  /// Numeric tier for the scorer ServeEmbeddingsShard mints from the loaded
  /// embeddings (a ShardServer built over an explicit scorer keeps that
  /// scorer's precision). Every shard server of one catalog must run the
  /// same precision — the coordinator merge is precision-agnostic and
  /// cannot reconcile mixed tiers.
  ScoringPrecision precision = ScoringPrecision::kFp32;
};

/// Serves one contiguous item-id shard of a catalog over the wire
/// protocol. The scorer is the BASE (full-catalog) scorer; the server
/// scores through its own ItemRangeScorer view of [shard.begin,
/// shard.end), so per-item scores are bit-identical to any other
/// partitioning of the same base (the Scorer block-invariance contract).
class ShardServer {
 public:
  /// `state` must be non-null with is_cold sized to the base scorer's
  /// catalog, and every replica of a distributed deployment must hold the
  /// SAME state (seen lists + cold bitmap) for responses to be
  /// bit-identical to the in-process oracle. Requires
  /// 0 <= shard.begin <= shard.end <= scorer->num_items().
  ShardServer(std::unique_ptr<Scorer> scorer,
              std::shared_ptr<const ServingSharedState> state, ItemBlock shard,
              ShardServerOptions options = {});
  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;
  ~ShardServer();

  /// Binds, listens, and starts the accept loop. Fails (Status) on bind
  /// errors; never aborts.
  Status Start();

  /// Disconnects all clients, stops accepting, joins every thread.
  /// Idempotent.
  void Stop();

  /// The concrete listen address (with the kernel-assigned port resolved);
  /// valid after a successful Start().
  const std::string& bound_address() const { return bound_address_; }

  Index shard_begin() const { return shard_.begin; }
  Index shard_end() const { return shard_.end; }
  Index num_items() const { return num_items_; }

  /// Requests answered so far across all connections (monotonic).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  /// Request batches answered so far (monotonic).
  uint64_t batches_served() const {
    return batches_served_.load(std::memory_order_relaxed);
  }

  /// Fault injection (tests): delay every subsequent reply by `us`
  /// microseconds, simulating a stalled shard. Thread-safe.
  void set_stall_replies_us(int64_t us) {
    stall_replies_us_.store(us, std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void HandleConnection(net::UniqueFd conn);
  /// Returns a non-empty message when `requests` must be refused (the
  /// remote-input validation mirroring PrepareRequests' CHECKs).
  std::string ValidateRequests(const std::vector<RecRequest>& requests) const;

  std::unique_ptr<const Scorer> scorer_;
  std::unique_ptr<const ItemRangeScorer> view_;
  std::shared_ptr<const ServingSharedState> state_;
  ItemBlock shard_;
  Index num_items_ = 0;
  ShardServerOptions options_;
  std::atomic<int64_t> stall_replies_us_{0};

  net::UniqueFd listen_fd_;
  std::string bound_address_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  Mutex conn_mu_;
  // Joined in Stop().
  std::vector<std::thread> handlers_ FIRZEN_GUARDED_BY(conn_mu_);
  // Shut down in Stop().
  std::vector<int> live_conn_fds_ FIRZEN_GUARDED_BY(conn_mu_);

  mutable ArenaPool arenas_;
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> batches_served_{0};
};

/// A servable shard loaded from a .fzem embeddings file (the
/// firzen_shard_server / firzen_cli serve-shard path): the model backing
/// the scorer plus the running server. The model carries no training
/// interactions, so the shared state is all-warm with no exclusions —
/// identical to what `firzen_cli recommend` builds in-process, which keeps
/// the CLI's distributed and local paths byte-comparable.
struct EmbeddingShardServer {
  std::unique_ptr<StaticRecommender> model;
  std::unique_ptr<ShardServer> server;
};

/// Loads `embeddings_path`, validates [shard_begin, shard_end) against the
/// catalog, and returns a STARTED server listening per `options`.
Result<EmbeddingShardServer> ServeEmbeddingsShard(
    const std::string& embeddings_path, Index shard_begin, Index shard_end,
    ShardServerOptions options = {});

}  // namespace firzen

#endif  // FIRZEN_SERVE_SHARD_SERVER_H_
