// Distributed serving coordinator: the same RecommendBatch surface as
// ServingEngine / ShardedServingEngine, executed by fanning each batch out
// to N shard-server connections (src/serve/shard_server.h) over the wire
// protocol (src/serve/wire.h) and merging the per-shard top-K replies with
// the existing MergeTopK — ShardedServingEngine's merge half, with sockets
// where the in-process ParallelFor used to be.
//
// Determinism contract (the headline): on the healthy path a distributed
// response is BYTE-IDENTICAL to ShardedServingEngine over the same catalog
// and shared state, for any shard layout. Shard servers run the identical
// shared core (PrepareBatch + RankRequestsInRange) over ItemRangeScorer
// views, scores cross the wire as raw IEEE-754 bits, per-shard lists
// arrive in RanksBefore order, and the merge is the same MergeTopK — so
// there is no step where a bit could differ.
// tests/distributed_serving_test.cc pins this for shard counts {1,2,3,7}
// across models, exclusion modes, candidate pools, and cold-only.
//
// Graceful degradation: a shard that cannot be reached, times out, or
// answers garbage fails ONLY itself for that batch. The batch completes
// from the surviving shards with RecStatus::kDegraded and the failed shard
// indices in RecResponse::failed_shards (all shards down => kDegraded with
// empty items — never a hang, never a throw). Failed connections are
// re-dialed on the next batch (retry-once-with-backoff inside each
// attempt), so a restarted shard server rejoins transparently.
//
// Deadline cap: the per-shard wait for one batch is
// min(rpc_timeout_ms, smallest deadline_us carried by the batch), measured
// from fan-out start — the coordinator-side mirror of the admission
// collect-wait cap (src/eval/admission.h), so a slow shard can never make
// a deadline-carrying request complete late; it becomes kDegraded within
// budget instead. A deadline of 0 fails every shard immediately (the
// direct-path analogue of "already expired at enqueue").
//
// Composes with AdmissionController unchanged: attach one and admitted
// batches become the RPC unit; admission statuses (kShed,
// kDeadlineExceeded, kBackendError) and kDegraded pass through untouched.
//
// Thread safety: same contract as the sibling engines — share ONE
// coordinator across any number of request threads. Each connection is
// mutex-guarded (a batch's fan-out thread holds exactly one shard's lock
// for its exchange), so concurrent batches serialize per shard but
// pipeline across shards.
#ifndef FIRZEN_SERVE_DISTRIBUTED_SERVING_H_
#define FIRZEN_SERVE_DISTRIBUTED_SERVING_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "src/eval/serving.h"
#include "src/models/scorer.h"
#include "src/serve/net.h"
#include "src/serve/wire.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace firzen {

class AdmissionController;

struct DistributedServingOptions {
  /// One shard server address per shard ("host:port" or "unix:/path").
  /// Connection order defines the shard indices reported in
  /// RecResponse::failed_shards; the servers' ranges must tile
  /// [0, num_items) exactly (validated at Connect).
  std::vector<std::string> shard_addresses;
  /// Budget for dialing + handshaking one shard (per attempt).
  int64_t connect_timeout_ms = 2000;
  /// Backoff before the single retry of a failed connect attempt.
  int64_t retry_backoff_ms = 50;
  /// Per-batch, per-shard reply budget. Additionally capped by the nearest
  /// RecRequest::deadline_us in the batch (see the file comment).
  int64_t rpc_timeout_ms = 5000;
};

/// Coordinator over N shard-server connections. Construct via Connect();
/// the constructor is private because construction performs I/O that can
/// fail (Status, never an abort on remote behavior).
class DistributedServingEngine {
 public:
  /// Dials and handshakes every shard (retry-once-with-backoff per shard),
  /// then validates the announced ranges tile one catalog. Any unreachable
  /// shard or inconsistent layout fails Connect — a coordinator never
  /// starts blind; degradation is for shards that die AFTER startup.
  static Result<std::unique_ptr<DistributedServingEngine>> Connect(
      DistributedServingOptions options);

  DistributedServingEngine(const DistributedServingEngine&) = delete;
  DistributedServingEngine& operator=(const DistributedServingEngine&) = delete;

  /// Routed through the attached AdmissionController when one is attached,
  /// else served directly. Check RecResponse::status: kDegraded responses
  /// carry best-effort items (see the file comment).
  RecResponse Recommend(const RecRequest& request) const;
  std::vector<RecResponse> RecommendBatch(
      const std::vector<RecRequest>& requests) const;

  /// The execution path itself: one wire round-trip per shard, concurrent
  /// across shards, merged under RanksBefore. Thread-safe; bypasses any
  /// attached admission controller (it is what the controller dispatches).
  std::vector<RecResponse> RecommendBatchDirect(
      const std::vector<RecRequest>& requests) const;

  /// Routes subsequent Recommend/RecommendBatch calls through `controller`
  /// (nullptr to detach). Setup-time operation, as on the sibling engines.
  void AttachAdmission(const AdmissionController* controller) {
    admission_ = controller;
  }
  const AdmissionController* admission() const { return admission_; }

  Index num_items() const { return num_items_; }
  Index num_shards() const { return static_cast<Index>(conns_.size()); }
  /// Global item range [begin, end) announced by one shard.
  ItemBlock shard_range(Index shard) const;
  /// The address a shard was dialed at (options order).
  const std::string& shard_address(Index shard) const;

  // Monotonic counters (tests, benches, ops).
  /// Shard round-trips attempted (one per shard per direct batch).
  uint64_t shard_rpcs() const {
    return shard_rpcs_.load(std::memory_order_relaxed);
  }
  /// Attempted round-trips that failed (connect, send, recv, timeout, or
  /// protocol error) and degraded their batch.
  uint64_t failed_shard_rpcs() const {
    return failed_rpcs_.load(std::memory_order_relaxed);
  }
  /// Responses returned with kDegraded.
  uint64_t degraded_responses() const {
    return degraded_responses_.load(std::memory_order_relaxed);
  }
  /// Successful re-dials of a previously failed connection.
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  /// Wire bytes sent / received, frame headers included.
  uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }

 private:
  /// One shard connection. `mu` serializes the request/reply exchange —
  /// the wire protocol has no request ids, so a connection must carry one
  /// exchange at a time. `fd` is invalid while the shard is down.
  struct Conn {
    Mutex mu;
    net::UniqueFd fd FIRZEN_GUARDED_BY(mu);
    // Written once at Connect (before the engine is shared) and never
    // mutated again — a re-dial only COMPARES the announced info against
    // this copy — so lock-free reads (shard_range, shard_address) are safe.
    std::string address;
    wire::ShardInfo info;
  };

  DistributedServingEngine() = default;

  /// Dials + handshakes one address within `timeout_ms`; on success fills
  /// *fd and *info. One internal retry after retry_backoff_ms.
  Status DialShard(const std::string& address, int64_t timeout_ms,
                   net::UniqueFd* fd, wire::ShardInfo* info) const;

  /// Runs one request/reply exchange on shard `s` (conn->mu held by the
  /// caller), reconnecting first if the shard is down. `deadline` bounds
  /// everything; failure resets the connection.
  Status ExchangeOnShard(Conn* conn, const std::vector<uint8_t>& payload,
                         size_t expected_replies,
                         std::chrono::steady_clock::time_point deadline,
                         std::vector<wire::ShardReply>* replies) const
      FIRZEN_REQUIRES(conn->mu);

  std::vector<std::unique_ptr<Conn>> conns_;
  Index num_items_ = 0;
  DistributedServingOptions options_;
  const AdmissionController* admission_ = nullptr;

  mutable std::atomic<uint64_t> shard_rpcs_{0};
  mutable std::atomic<uint64_t> failed_rpcs_{0};
  mutable std::atomic<uint64_t> degraded_responses_{0};
  mutable std::atomic<uint64_t> reconnects_{0};
  mutable std::atomic<uint64_t> bytes_sent_{0};
  mutable std::atomic<uint64_t> bytes_received_{0};
};

}  // namespace firzen

#endif  // FIRZEN_SERVE_DISTRIBUTED_SERVING_H_
