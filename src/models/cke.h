// CKE (Zhang et al., 2016): matrix factorization where each item embedding
// is enriched with its TransR structural embedding from the KG; the KG
// representation loss and the recommendation loss are optimized jointly.
#ifndef FIRZEN_MODELS_CKE_H_
#define FIRZEN_MODELS_CKE_H_

#include "src/models/embedding_model.h"

namespace firzen {

class Cke : public EmbeddingModel {
 public:
  std::string Name() const override { return "CKE"; }
  void Fit(const Dataset& dataset, const TrainOptions& options) override;
};

}  // namespace firzen

#endif  // FIRZEN_MODELS_CKE_H_
