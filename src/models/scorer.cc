#include "src/models/scorer.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "src/util/check.h"

namespace firzen {

namespace {

// Copies the rows named by `users` out of `table` into `batch`.
void GatherRows(const Matrix& table, const std::vector<Index>& users,
                Matrix* batch) {
  batch->ResizeUninitialized(static_cast<Index>(users.size()), table.cols());
  for (size_t r = 0; r < users.size(); ++r) {
    FIRZEN_CHECK_GE(users[r], 0);
    FIRZEN_CHECK_LT(users[r], table.rows());
    const Real* src = table.row(users[r]);
    Real* dst = batch->row(static_cast<Index>(r));
    for (Index c = 0; c < table.cols(); ++c) dst[c] = src[c];
  }
}

void CheckBlock(ItemBlock block, Index num_items) {
  FIRZEN_CHECK_GE(block.begin, 0);
  FIRZEN_CHECK_LE(block.begin, block.end);
  FIRZEN_CHECK_LE(block.end, num_items);
}

void CheckOut(MatrixView out, Index rows, Index cols) {
  FIRZEN_CHECK_EQ(out.rows(), rows);
  FIRZEN_CHECK_EQ(out.cols(), cols);
}

// Arena behind the arena-less convenience overloads: one per thread, shared
// by every scorer that thread drives (BindTo invalidates across scorers).
ScoringArena* ThreadArena() {
  thread_local ScoringArena arena;
  return &arena;
}

}  // namespace

ArenaPool::Lease& ArenaPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr && arena_ != nullptr) {
      pool_->Release(std::move(arena_));
    }
    pool_ = other.pool_;
    arena_ = std::move(other.arena_);
    other.pool_ = nullptr;
  }
  return *this;
}

ArenaPool::Lease::~Lease() {
  if (pool_ != nullptr && arena_ != nullptr) {
    pool_->Release(std::move(arena_));
  }
}

ArenaPool::Lease ArenaPool::Acquire() {
  {
    MutexLock lock(mu_);
    if (!free_.empty()) {
      std::unique_ptr<ScoringArena> arena = std::move(free_.back());
      free_.pop_back();
      return Lease(this, std::move(arena));
    }
  }
  return Lease(this, std::make_unique<ScoringArena>());
}

void ArenaPool::Release(std::unique_ptr<ScoringArena> arena) {
  MutexLock lock(mu_);
  free_.push_back(std::move(arena));
}

namespace {

// Monotonic scorer-id source: ids are never reused, so an arena bound to a
// destroyed scorer can never mistake a newly minted one (even at the same
// address) for its previous owner.
uint64_t NextScorerId() {
  static std::atomic<uint64_t> counter{0};
  return ++counter;  // first id is 1; 0 means "arena unbound"
}

}  // namespace

const char* ScoringPrecisionName(ScoringPrecision precision) {
  switch (precision) {
    case ScoringPrecision::kFp32:
      return "fp32";
    case ScoringPrecision::kInt8:
      return "int8";
  }
  return "unknown";
}

Scorer::Scorer() : scorer_id_(NextScorerId()) {}

Scorer::~Scorer() = default;

void Scorer::ScoreCandidates(const std::vector<Index>& users,
                             const std::vector<Index>& candidates,
                             MatrixView out, ScoringArena* arena) const {
  CheckOut(out, static_cast<Index>(users.size()),
           static_cast<Index>(candidates.size()));
  Matrix full(static_cast<Index>(users.size()), num_items());
  ScoreBlock(users, {0, num_items()}, MatrixView(&full), arena);
  for (size_t r = 0; r < users.size(); ++r) {
    const Real* src = full.row(static_cast<Index>(r));
    Real* dst = out.row(static_cast<Index>(r));
    for (size_t j = 0; j < candidates.size(); ++j) {
      FIRZEN_CHECK_GE(candidates[j], 0);
      FIRZEN_CHECK_LT(candidates[j], num_items());
      dst[j] = src[candidates[j]];
    }
  }
}

void Scorer::ScoreBlock(const std::vector<Index>& users, ItemBlock block,
                        MatrixView out) const {
  ScoreBlock(users, block, out, ThreadArena());
}

void Scorer::ScoreCandidates(const std::vector<Index>& users,
                             const std::vector<Index>& candidates,
                             MatrixView out) const {
  ScoreCandidates(users, candidates, out, ThreadArena());
}

void Scorer::ScoreAll(const std::vector<Index>& users, Matrix* scores) const {
  scores->ResizeUninitialized(static_cast<Index>(users.size()), num_items());
  ScoreBlock(users, {0, num_items()}, MatrixView(scores), ThreadArena());
}

DotProductScorer::DotProductScorer(const Matrix& user_emb,
                                   const Matrix& item_emb, ThreadPool* pool,
                                   ScoringPrecision precision)
    : user_emb_(user_emb),
      item_emb_(item_emb),
      pool_(pool),
      precision_(precision) {
  FIRZEN_CHECK(!user_emb.empty());
  FIRZEN_CHECK(!item_emb.empty());
  FIRZEN_CHECK_EQ(user_emb.cols(), item_emb.cols());
  if (precision_ == ScoringPrecision::kInt8) {
    // Mint-time work: the catalog is frozen for the scorer's lifetime, so
    // the per-row scales are computed exactly once and amortize over every
    // block this scorer ever streams.
    quant_items_ = QuantizedMatrix::FromMatrix(item_emb, pool);
  }
}

const Matrix& DotProductScorer::BatchFor(const std::vector<Index>& users,
                                         ScoringArena* arena) const {
  arena->BindTo(scorer_id());
  if (users != arena->cached_users ||
      arena->user_batch.rows() != static_cast<Index>(users.size())) {
    GatherRows(user_emb_, users, &arena->user_batch);
    arena->cached_users = users;
  }
  return arena->user_batch;
}

// Quantizes the gathered user batch into the arena's int8 scratch, cached
// under the same users key as the fp32 gather: streaming a catalog
// block-by-block quantizes each batch once per arena. Rows share
// QuantizeRow with the catalog build — one definition of the code mapping
// on both sides of the dot product.
void DotProductScorer::QuantBatchFor(const std::vector<Index>& users,
                                     ScoringArena* arena) const {
  arena->BindTo(scorer_id());
  const Index stride = quant_items_.stride();
  const size_t rows = users.size();
  if (users == arena->cached_users && arena->q_user_scales.size() == rows &&
      arena->q_user_codes.size() == rows * static_cast<size_t>(stride)) {
    return;
  }
  GatherRows(user_emb_, users, &arena->user_batch);
  arena->q_user_codes.resize(rows * static_cast<size_t>(stride));
  arena->q_user_scales.resize(rows);
  for (size_t r = 0; r < rows; ++r) {
    QuantizeRow(arena->user_batch.row(static_cast<Index>(r)),
                user_emb_.cols(), stride,
                arena->q_user_codes.data() + r * static_cast<size_t>(stride),
                &arena->q_user_scales[r]);
  }
  arena->cached_users = users;
}

void DotProductScorer::ScoreBlock(const std::vector<Index>& users,
                                  ItemBlock block, MatrixView out,
                                  ScoringArena* arena) const {
  FIRZEN_CHECK(arena != nullptr);
  CheckBlock(block, num_items());
  CheckOut(out, static_cast<Index>(users.size()), block.size());
  if (users.empty() || block.size() == 0) return;
  if (precision_ == ScoringPrecision::kInt8) {
    QuantBatchFor(users, arena);
    GemmBTQuant(arena->q_user_codes.data(), static_cast<Index>(users.size()),
                item_emb_.cols(), quant_items_.stride(),
                arena->q_user_scales.data(), quant_items_, block.begin,
                block.size(), out, pool_);
    return;
  }
  GemmBT(BatchFor(users, arena), item_emb_.row(block.begin), block.size(), out,
         pool_);
}

void DotProductScorer::ScoreCandidates(const std::vector<Index>& users,
                                       const std::vector<Index>& candidates,
                                       MatrixView out,
                                       ScoringArena* arena) const {
  FIRZEN_CHECK(arena != nullptr);
  CheckOut(out, static_cast<Index>(users.size()),
           static_cast<Index>(candidates.size()));
  if (users.empty() || candidates.empty()) return;
  if (precision_ == ScoringPrecision::kInt8) {
    // Gather the candidates' ALREADY-quantized catalog rows (codes, scale,
    // code sum) — never re-quantize per call: a candidate list must score
    // bit-identically to the same item inside a block.
    const Index stride = quant_items_.stride();
    const size_t n = candidates.size();
    arena->q_cand_codes.resize(n * static_cast<size_t>(stride));
    arena->q_cand_scales.resize(n);
    arena->q_cand_sums.resize(n);
    for (size_t j = 0; j < n; ++j) {
      FIRZEN_CHECK_GE(candidates[j], 0);
      FIRZEN_CHECK_LT(candidates[j], num_items());
      const int8_t* src = quant_items_.row(candidates[j]);
      std::copy(src, src + stride,
                arena->q_cand_codes.data() + j * static_cast<size_t>(stride));
      arena->q_cand_scales[j] = quant_items_.scale(candidates[j]);
      arena->q_cand_sums[j] = quant_items_.row_sum(candidates[j]);
    }
    QuantBatchFor(users, arena);
    GemmBTQuant(arena->q_user_codes.data(), static_cast<Index>(users.size()),
                item_emb_.cols(), stride, arena->q_user_scales.data(),
                arena->q_cand_codes.data(), static_cast<Index>(n), stride,
                arena->q_cand_scales.data(), arena->q_cand_sums.data(), out,
                pool_);
    return;
  }
  // Gather candidates before BatchFor: both share the arena, and BatchFor's
  // cached batch must stay valid while GemmBT reads it.
  GatherRows(item_emb_, candidates, &arena->candidate_rows);
  GemmBT(BatchFor(users, arena), arena->candidate_rows.data(),
         arena->candidate_rows.rows(), out, pool_);
}

ItemRangeScorer::ItemRangeScorer(const Scorer* base, Index item_begin,
                                 Index item_end)
    : base_(base), item_begin_(item_begin), item_end_(item_end) {
  FIRZEN_CHECK(base != nullptr);
  FIRZEN_CHECK_GE(item_begin, 0);
  FIRZEN_CHECK_LE(item_begin, item_end);
  FIRZEN_CHECK_LE(item_end, base->num_items());
}

void ItemRangeScorer::ScoreBlock(const std::vector<Index>& users,
                                 ItemBlock block, MatrixView out,
                                 ScoringArena* arena) const {
  CheckBlock(block, num_items());
  base_->ScoreBlock(users,
                    {block.begin + item_begin_, block.end + item_begin_}, out,
                    arena);
}

void ItemRangeScorer::ScoreCandidates(const std::vector<Index>& users,
                                      const std::vector<Index>& candidates,
                                      MatrixView out,
                                      ScoringArena* arena) const {
  FIRZEN_CHECK(arena != nullptr);
  // Translate into the arena's transient buffer — no allocation in the
  // per-chunk hot path once its capacity has grown. When `candidates` IS
  // that buffer (a view stacked on another view, same arena), translate in
  // place instead of clearing the input out from under ourselves; each
  // nesting level just adds its own offset.
  std::vector<Index>& global = arena->translated_ids;
  if (&candidates == &global) {
    for (Index& id : global) {
      FIRZEN_CHECK_GE(id, 0);
      FIRZEN_CHECK_LT(id, num_items());
      id += item_begin_;
    }
  } else {
    global.clear();
    global.reserve(candidates.size());
    for (Index local : candidates) {
      FIRZEN_CHECK_GE(local, 0);
      FIRZEN_CHECK_LT(local, num_items());
      global.push_back(local + item_begin_);
    }
  }
  base_->ScoreCandidates(users, global, out, arena);
}

FullScoreAdapter::FullScoreAdapter(FullScoreFn score_fn, Index num_items)
    : score_fn_(std::move(score_fn)), num_items_(num_items) {
  FIRZEN_CHECK(score_fn_ != nullptr);
  FIRZEN_CHECK_GT(num_items, 0);
}

const Matrix& FullScoreAdapter::RowsFor(const std::vector<Index>& users,
                                        ScoringArena* arena) const {
  arena->BindTo(scorer_id());
  if (users != arena->cached_users ||
      arena->full_rows.rows() != static_cast<Index>(users.size())) {
    score_fn_(users, &arena->full_rows);
    FIRZEN_CHECK_EQ(arena->full_rows.rows(), static_cast<Index>(users.size()));
    FIRZEN_CHECK_EQ(arena->full_rows.cols(), num_items_);
    arena->cached_users = users;
  }
  return arena->full_rows;
}

void FullScoreAdapter::ScoreBlock(const std::vector<Index>& users,
                                  ItemBlock block, MatrixView out,
                                  ScoringArena* arena) const {
  FIRZEN_CHECK(arena != nullptr);
  CheckBlock(block, num_items_);
  CheckOut(out, static_cast<Index>(users.size()), block.size());
  if (users.empty() || block.size() == 0) return;
  const Matrix& rows = RowsFor(users, arena);
  for (size_t r = 0; r < users.size(); ++r) {
    const Real* src = rows.row(static_cast<Index>(r)) + block.begin;
    Real* dst = out.row(static_cast<Index>(r));
    for (Index j = 0; j < block.size(); ++j) dst[j] = src[j];
  }
}

void FullScoreAdapter::ScoreCandidates(const std::vector<Index>& users,
                                       const std::vector<Index>& candidates,
                                       MatrixView out,
                                       ScoringArena* arena) const {
  FIRZEN_CHECK(arena != nullptr);
  CheckOut(out, static_cast<Index>(users.size()),
           static_cast<Index>(candidates.size()));
  if (users.empty() || candidates.empty()) return;
  const Matrix& rows = RowsFor(users, arena);
  for (size_t r = 0; r < users.size(); ++r) {
    const Real* src = rows.row(static_cast<Index>(r));
    Real* dst = out.row(static_cast<Index>(r));
    for (size_t j = 0; j < candidates.size(); ++j) {
      FIRZEN_CHECK_GE(candidates[j], 0);
      FIRZEN_CHECK_LT(candidates[j], num_items_);
      dst[j] = src[candidates[j]];
    }
  }
}

}  // namespace firzen
