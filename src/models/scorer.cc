#include "src/models/scorer.h"

#include <utility>

#include "src/util/check.h"

namespace firzen {

namespace {

// Copies the rows named by `users` out of `table` into `batch`.
void GatherRows(const Matrix& table, const std::vector<Index>& users,
                Matrix* batch) {
  batch->ResizeUninitialized(static_cast<Index>(users.size()), table.cols());
  for (size_t r = 0; r < users.size(); ++r) {
    FIRZEN_CHECK_GE(users[r], 0);
    FIRZEN_CHECK_LT(users[r], table.rows());
    const Real* src = table.row(users[r]);
    Real* dst = batch->row(static_cast<Index>(r));
    for (Index c = 0; c < table.cols(); ++c) dst[c] = src[c];
  }
}

void CheckBlock(ItemBlock block, Index num_items) {
  FIRZEN_CHECK_GE(block.begin, 0);
  FIRZEN_CHECK_LE(block.begin, block.end);
  FIRZEN_CHECK_LE(block.end, num_items);
}

void CheckOut(MatrixView out, Index rows, Index cols) {
  FIRZEN_CHECK_EQ(out.rows(), rows);
  FIRZEN_CHECK_EQ(out.cols(), cols);
}

}  // namespace

Scorer::~Scorer() = default;

void Scorer::ScoreCandidates(const std::vector<Index>& users,
                             const std::vector<Index>& candidates,
                             MatrixView out) const {
  CheckOut(out, static_cast<Index>(users.size()),
           static_cast<Index>(candidates.size()));
  Matrix full(static_cast<Index>(users.size()), num_items());
  ScoreBlock(users, {0, num_items()}, MatrixView(&full));
  for (size_t r = 0; r < users.size(); ++r) {
    const Real* src = full.row(static_cast<Index>(r));
    Real* dst = out.row(static_cast<Index>(r));
    for (size_t j = 0; j < candidates.size(); ++j) {
      FIRZEN_CHECK_GE(candidates[j], 0);
      FIRZEN_CHECK_LT(candidates[j], num_items());
      dst[j] = src[candidates[j]];
    }
  }
}

void Scorer::ScoreAll(const std::vector<Index>& users, Matrix* scores) const {
  scores->ResizeUninitialized(static_cast<Index>(users.size()), num_items());
  ScoreBlock(users, {0, num_items()}, MatrixView(scores));
}

DotProductScorer::DotProductScorer(const Matrix& user_emb,
                                   const Matrix& item_emb, ThreadPool* pool)
    : user_emb_(user_emb), item_emb_(item_emb), pool_(pool) {
  FIRZEN_CHECK(!user_emb.empty());
  FIRZEN_CHECK(!item_emb.empty());
  FIRZEN_CHECK_EQ(user_emb.cols(), item_emb.cols());
}

const Matrix& DotProductScorer::BatchFor(
    const std::vector<Index>& users) const {
  if (users != cached_users_ ||
      user_batch_.rows() != static_cast<Index>(users.size())) {
    GatherRows(user_emb_, users, &user_batch_);
    cached_users_ = users;
  }
  return user_batch_;
}

void DotProductScorer::ScoreBlock(const std::vector<Index>& users,
                                  ItemBlock block, MatrixView out) const {
  CheckBlock(block, num_items());
  CheckOut(out, static_cast<Index>(users.size()), block.size());
  if (users.empty() || block.size() == 0) return;
  GemmBT(BatchFor(users), item_emb_.row(block.begin), block.size(), out,
         pool_);
}

void DotProductScorer::ScoreCandidates(const std::vector<Index>& users,
                                       const std::vector<Index>& candidates,
                                       MatrixView out) const {
  CheckOut(out, static_cast<Index>(users.size()),
           static_cast<Index>(candidates.size()));
  if (users.empty() || candidates.empty()) return;
  GatherRows(item_emb_, candidates, &candidate_rows_);
  GemmBT(BatchFor(users), candidate_rows_.data(), candidate_rows_.rows(), out,
         pool_);
}

FullScoreAdapter::FullScoreAdapter(FullScoreFn score_fn, Index num_items)
    : score_fn_(std::move(score_fn)), num_items_(num_items) {
  FIRZEN_CHECK(score_fn_ != nullptr);
  FIRZEN_CHECK_GT(num_items, 0);
}

const Matrix& FullScoreAdapter::RowsFor(
    const std::vector<Index>& users) const {
  if (users != cached_users_ ||
      full_rows_.rows() != static_cast<Index>(users.size())) {
    score_fn_(users, &full_rows_);
    FIRZEN_CHECK_EQ(full_rows_.rows(), static_cast<Index>(users.size()));
    FIRZEN_CHECK_EQ(full_rows_.cols(), num_items_);
    cached_users_ = users;
  }
  return full_rows_;
}

void FullScoreAdapter::ScoreBlock(const std::vector<Index>& users,
                                  ItemBlock block, MatrixView out) const {
  CheckBlock(block, num_items_);
  CheckOut(out, static_cast<Index>(users.size()), block.size());
  if (users.empty() || block.size() == 0) return;
  const Matrix& rows = RowsFor(users);
  for (size_t r = 0; r < users.size(); ++r) {
    const Real* src = rows.row(static_cast<Index>(r)) + block.begin;
    Real* dst = out.row(static_cast<Index>(r));
    for (Index j = 0; j < block.size(); ++j) dst[j] = src[j];
  }
}

void FullScoreAdapter::ScoreCandidates(const std::vector<Index>& users,
                                       const std::vector<Index>& candidates,
                                       MatrixView out) const {
  CheckOut(out, static_cast<Index>(users.size()),
           static_cast<Index>(candidates.size()));
  if (users.empty() || candidates.empty()) return;
  const Matrix& rows = RowsFor(users);
  for (size_t r = 0; r < users.size(); ++r) {
    const Real* src = rows.row(static_cast<Index>(r));
    Real* dst = out.row(static_cast<Index>(r));
    for (size_t j = 0; j < candidates.size(); ++j) {
      FIRZEN_CHECK_GE(candidates[j], 0);
      FIRZEN_CHECK_LT(candidates[j], num_items_);
      dst[j] = src[candidates[j]];
    }
  }
}

}  // namespace firzen
