#include "src/models/vbpr.h"

#include "src/models/mm_common.h"
#include "src/models/sampler.h"
#include "src/tensor/init.h"
#include "src/tensor/optim.h"
#include "src/util/logging.h"

namespace firzen {

void Vbpr::Fit(const Dataset& dataset, const TrainOptions& options) {
  using namespace ops;  // NOLINT(build/namespaces)
  Rng rng(options.seed);
  const Index d = options.embedding_dim;
  Matrix raw = ConcatModalFeatures(dataset);
  StandardizeColumns(&raw);
  Tensor features = Tensor::Constant(std::move(raw));

  Tensor user_id = XavierVariable(dataset.num_users, d, &rng);
  Tensor item_id = XavierVariable(dataset.num_items, d, &rng);
  Tensor user_visual = XavierVariable(dataset.num_users, d, &rng);
  Tensor proj = XavierVariable(features.cols(), d, &rng);

  Adam::Options adam_options;
  adam_options.lr = options.lr;
  Adam optimizer(adam_options);
  BprSampler sampler(dataset, options.seed + 1);
  EarlyStopper stopper(options.patience);

  auto compute_final = [&] {
    // Concatenated towers make the two dot products one:
    //   [e_u | v_u] . [e_i | W f_i].
    Matrix content;
    Gemm(false, false, 1.0, features.value(), proj.value(), 0.0, &content);
    final_user_.Resize(dataset.num_users, 2 * d);
    final_item_.Resize(dataset.num_items, 2 * d);
    for (Index u = 0; u < dataset.num_users; ++u) {
      for (Index c = 0; c < d; ++c) {
        final_user_(u, c) = user_id.value()(u, c);
        final_user_(u, d + c) = user_visual.value()(u, c);
      }
    }
    for (Index i = 0; i < dataset.num_items; ++i) {
      for (Index c = 0; c < d; ++c) {
        final_item_(i, c) = item_id.value()(i, c);
        final_item_(i, d + c) = content(i, c);
      }
    }
  };

  const int steps = options.steps_per_epoch > 0
                        ? options.steps_per_epoch
                        : static_cast<int>(dataset.train.size() /
                                               options.batch_size +
                                           1);
  std::vector<Index> users;
  std::vector<Index> pos;
  std::vector<Index> neg;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    Real epoch_loss = 0.0;
    for (int step = 0; step < steps; ++step) {
      sampler.SampleBatch(options.batch_size, &users, &pos, &neg);
      Tensor eu = GatherRows(user_id, users);
      Tensor vu = GatherRows(user_visual, users);
      Tensor ep = GatherRows(item_id, pos);
      Tensor en = GatherRows(item_id, neg);
      Tensor fp = MatMul(GatherRows(features, pos), proj);
      Tensor fn = MatMul(GatherRows(features, neg), proj);
      Tensor pos_score = Add(RowDot(eu, ep), RowDot(vu, fp));
      Tensor neg_score = Add(RowDot(eu, en), RowDot(vu, fn));
      Tensor rank = Scale(
          ReduceMean(LogSigmoid(Sub(pos_score, neg_score))), -1.0);
      Tensor loss = Add(rank, BatchL2({eu, vu, ep, en, proj}, options.reg,
                                      options.batch_size));
      epoch_loss += loss.scalar();
      Backward(loss);
      optimizer.Step({user_id, item_id, user_visual, proj});
    }
    if ((epoch + 1) % options.eval_every == 0) {
      compute_final();
      const Real mrr =
          ValidationMrr(dataset, final_user_, final_item_, options.pool);
      const bool stop = stopper.Update(mrr);
      SnapshotIfImproved(stopper.improved());
      if (options.verbose) {
        Logf(LogLevel::kInfo, "[VBPR] epoch %d loss=%.4f val-mrr=%.4f", epoch,
             epoch_loss / steps, mrr);
      }
      if (stop) break;
    }
  }
  compute_final();
  RestoreBestSnapshot();
}

}  // namespace firzen
