// LightGCN (He et al., 2020): linear propagation over the normalized
// user-item bipartite graph with layer mean-pooling (paper Eqs. 5-6).
// Strict cold items have zero degree, so their propagated component is zero
// and their final embedding stays at the (uninformative) initialization.
#ifndef FIRZEN_MODELS_LIGHTGCN_H_
#define FIRZEN_MODELS_LIGHTGCN_H_

#include <memory>

#include "src/models/embedding_model.h"
#include "src/tensor/csr.h"

namespace firzen {

class LightGcn : public EmbeddingModel {
 public:
  std::string Name() const override { return "LightGCN"; }
  void Fit(const Dataset& dataset, const TrainOptions& options) override;

  /// Normal cold-start (Table VI): rebuild the propagation graph with the
  /// revealed cold links and recompute final embeddings.
  void PrepareNormalColdInference(const Dataset& dataset) override;

  /// Mean-pooled L-layer propagation of `table` over `graph`.
  static Tensor Propagate(const std::shared_ptr<const CsrMatrix>& graph,
                          const Tensor& table, int num_layers);

 private:
  void ComputeFinal(const CsrMatrix& graph);

  Tensor joint_table_;  // (U + I) x d parameter table
  Index num_users_ = 0;
  Index num_items_ = 0;
  int num_layers_ = 2;
};

}  // namespace firzen

#endif  // FIRZEN_MODELS_LIGHTGCN_H_
