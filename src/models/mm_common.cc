#include "src/models/mm_common.h"

#include <cmath>

#include "src/util/check.h"

namespace firzen {

Matrix ConcatModalFeatures(const Dataset& dataset) {
  FIRZEN_CHECK(!dataset.modalities.empty());
  Index total_dim = 0;
  for (const Modality& m : dataset.modalities) total_dim += m.features.cols();
  Matrix out(dataset.num_items, total_dim);
  Index offset = 0;
  for (const Modality& m : dataset.modalities) {
    for (Index i = 0; i < dataset.num_items; ++i) {
      const Real* src = m.features.row(i);
      Real* dst = out.row(i) + offset;
      for (Index c = 0; c < m.features.cols(); ++c) dst[c] = src[c];
    }
    offset += m.features.cols();
  }
  return out;
}

void StandardizeColumns(Matrix* features) {
  const Index n = features->rows();
  const Index d = features->cols();
  if (n == 0) return;
  for (Index c = 0; c < d; ++c) {
    Real mean = 0.0;
    for (Index r = 0; r < n; ++r) mean += (*features)(r, c);
    mean /= n;
    Real var = 0.0;
    for (Index r = 0; r < n; ++r) {
      const Real dev = (*features)(r, c) - mean;
      var += dev * dev;
    }
    var /= n;
    const Real inv_std = 1.0 / std::sqrt(var + 1e-8);
    for (Index r = 0; r < n; ++r) {
      (*features)(r, c) = ((*features)(r, c) - mean) * inv_std;
    }
  }
}

}  // namespace firzen
