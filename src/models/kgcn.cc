#include "src/models/kgcn.h"

#include <algorithm>
#include <cmath>

// Known back-edge: training-time validation metrics (see registry.h).
// firzen-lint: allow(include-layering)
#include "src/eval/evaluator.h"
#include "src/models/sampler.h"
#include "src/tensor/init.h"
#include "src/tensor/optim.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace firzen {

void Kgcn::Fit(const Dataset& dataset, const TrainOptions& options) {
  using namespace ops;  // NOLINT(build/namespaces)
  Rng rng(options.seed);
  num_items_ = dataset.num_items;
  dim_ = options.embedding_dim;
  const Index s = kgcn_options_.neighbor_samples;

  // Freeze per-item neighbor samples from the (item-headed) KG triplets.
  std::vector<std::vector<std::pair<Index, Index>>> by_item(
      static_cast<size_t>(num_items_));
  for (const Triplet& t : dataset.kg.triplets) {
    if (t.head < num_items_) {
      by_item[static_cast<size_t>(t.head)].emplace_back(t.tail, t.relation);
    }
  }
  neighbor_tails_.assign(static_cast<size_t>(num_items_ * s), 0);
  neighbor_rels_.assign(static_cast<size_t>(num_items_ * s), 0);
  for (Index i = 0; i < num_items_; ++i) {
    const auto& pool = by_item[static_cast<size_t>(i)];
    for (Index j = 0; j < s; ++j) {
      if (pool.empty()) {
        // Self-loop fallback for KG-isolated items.
        neighbor_tails_[static_cast<size_t>(i * s + j)] = i;
        neighbor_rels_[static_cast<size_t>(i * s + j)] = 0;
      } else {
        const auto& pick = pool[static_cast<size_t>(
            rng.UniformInt(static_cast<Index>(pool.size())))];
        neighbor_tails_[static_cast<size_t>(i * s + j)] = pick.first;
        neighbor_rels_[static_cast<size_t>(i * s + j)] = pick.second;
      }
    }
  }

  Tensor user_table = XavierVariable(dataset.num_users, dim_, &rng);
  Tensor entity_table = XavierVariable(dataset.kg.num_entities, dim_, &rng);
  Tensor relation_table =
      XavierVariable(std::max<Index>(1, dataset.kg.num_relations), dim_, &rng);
  Tensor w = XavierVariable(dim_, dim_, &rng);
  Tensor bias = ZerosVariable(1, dim_);

  Adam::Options adam_options;
  adam_options.lr = options.lr;
  adam_options.lazy = true;
  Adam optimizer(adam_options);
  BprSampler sampler(dataset, options.seed + 1);
  EarlyStopper stopper(options.patience);

  auto item_tower = [&](const std::vector<Index>& items,
                        const Tensor& eu) -> Tensor {
    const Index b = static_cast<Index>(items.size());
    std::vector<Index> tails(static_cast<size_t>(b * s));
    std::vector<Index> rels(static_cast<size_t>(b * s));
    for (Index k = 0; k < b; ++k) {
      for (Index j = 0; j < s; ++j) {
        tails[static_cast<size_t>(k * s + j)] =
            neighbor_tails_[static_cast<size_t>(items[static_cast<size_t>(k)] * s + j)];
        rels[static_cast<size_t>(k * s + j)] =
            neighbor_rels_[static_cast<size_t>(items[static_cast<size_t>(k)] * s + j)];
      }
    }
    Tensor er = GatherRows(relation_table, rels);          // (B*S) x d
    Tensor eu_rep = RepeatInterleaveRows(eu, s);           // (B*S) x d
    Tensor pi = Reshape(RowDot(eu_rep, er), b, s);         // B x S
    Tensor weights = Reshape(RowSoftmax(pi), b * s, 1);    // (B*S) x 1
    Tensor tails_emb = GatherRows(entity_table, tails);    // (B*S) x d
    Tensor agg = SumGroups(RowScale(tails_emb, weights), s);  // B x d
    Tensor ego = GatherRows(entity_table, items);
    return Tanh(AddRowBroadcast(MatMul(Add(agg, ego), w), bias));
  };

  auto snapshot_tables = [&] {
    user_emb_ = user_table.value();
    entity_emb_ = entity_table.value();
    relation_emb_ = relation_table.value();
    w_ = w.value();
    bias_ = bias.value();
  };

  const int steps = options.steps_per_epoch > 0
                        ? options.steps_per_epoch
                        : static_cast<int>(dataset.train.size() /
                                               options.batch_size +
                                           1);
  std::vector<Index> users;
  std::vector<Index> pos;
  std::vector<Index> neg;
  Matrix best_user;
  Matrix best_entity;
  Matrix best_relation;
  Matrix best_w;
  Matrix best_bias;
  bool has_best = false;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    Real epoch_loss = 0.0;
    for (int step = 0; step < steps; ++step) {
      sampler.SampleBatch(options.batch_size, &users, &pos, &neg);
      Tensor eu = GatherRows(user_table, users);
      Tensor vp = item_tower(pos, eu);
      Tensor vn = item_tower(neg, eu);
      Tensor loss = Add(BprLoss(eu, vp, vn),
                        BatchL2({eu, vp, vn}, options.reg,
                                options.batch_size));
      if (SmoothnessWeight() > 0.0) {
        // Embedding smoothness over positive neighborhoods: pull sampled
        // tails toward the item embedding (label-smoothness substitution).
        const Index b = static_cast<Index>(pos.size());
        std::vector<Index> tails(static_cast<size_t>(b * s));
        for (Index k = 0; k < b; ++k) {
          for (Index j = 0; j < s; ++j) {
            tails[static_cast<size_t>(k * s + j)] = neighbor_tails_
                [static_cast<size_t>(pos[static_cast<size_t>(k)] * s + j)];
          }
        }
        Tensor t_emb = GatherRows(entity_table, tails);
        Tensor ego_rep =
            RepeatInterleaveRows(GatherRows(entity_table, pos), s);
        Tensor diff = Sub(t_emb, ego_rep);
        loss = Add(loss, Scale(ReduceMean(Mul(diff, diff)),
                               SmoothnessWeight()));
      }
      epoch_loss += loss.scalar();
      Backward(loss);
      optimizer.Step({user_table, entity_table, relation_table, w, bias});
    }
    if ((epoch + 1) % options.eval_every == 0) {
      snapshot_tables();
      const Real mrr = ScoreValidationMrr(dataset, options.pool);
      const bool stop = stopper.Update(mrr);
      if (stopper.improved()) {
        best_user = user_emb_;
        best_entity = entity_emb_;
        best_relation = relation_emb_;
        best_w = w_;
        best_bias = bias_;
        has_best = true;
      }
      if (options.verbose) {
        Logf(LogLevel::kInfo, "[%s] epoch %d loss=%.4f val-mrr=%.4f",
             Name().c_str(), epoch, epoch_loss / steps, mrr);
      }
      if (stop) break;
    }
  }
  snapshot_tables();
  if (has_best) {
    user_emb_ = best_user;
    entity_emb_ = best_entity;
    relation_emb_ = best_relation;
    w_ = best_w;
    bias_ = best_bias;
  }
  // final_* kept for ItemEmbeddings()/diagnostics; Score() is overridden.
  final_user_ = user_emb_;
  final_item_ = ItemEmbeddings();
}

namespace {

// Block-native scorer for the user-conditioned KGCN tower. Holds references
// into the owning model (which must outlive it) plus the projected entity
// table (entity_emb * W) computed once at mint time instead of once per
// scoring call. The per-user relation-attention logits are cached in the
// caller's ScoringArena keyed by the user batch, so streaming a catalog
// block-by-block computes them once per batch (and concurrent callers with
// separate arenas never share scratch). Item positions shard across the
// pool with per-shard softmax scratch; every (user, item) cell is an
// independent p-ordered computation, so results are bit-identical for any
// block partitioning and pool size.
class KgcnScorer : public Scorer {
 public:
  using Scorer::ScoreBlock;
  using Scorer::ScoreCandidates;

  KgcnScorer(const Matrix& user_emb, const Matrix& relation_emb,
             const Matrix& bias, const std::vector<Index>& neighbor_tails,
             const std::vector<Index>& neighbor_rels, Index s,
             Index num_items, Matrix projected)
      : user_emb_(user_emb),
        relation_emb_(relation_emb),
        bias_(bias),
        neighbor_tails_(neighbor_tails),
        neighbor_rels_(neighbor_rels),
        s_(s),
        num_items_(num_items),
        projected_(std::move(projected)) {}

  Index num_items() const override { return num_items_; }

  void ScoreBlock(const std::vector<Index>& users, ItemBlock block,
                  MatrixView out, ScoringArena* arena) const override {
    FIRZEN_CHECK_GE(block.begin, 0);
    FIRZEN_CHECK_LE(block.begin, block.end);
    FIRZEN_CHECK_LE(block.end, num_items_);
    ScoreItems(users, block.begin, nullptr, block.size(), out, arena);
  }

  void ScoreCandidates(const std::vector<Index>& users,
                       const std::vector<Index>& candidates, MatrixView out,
                       ScoringArena* arena) const override {
    for (Index item : candidates) {
      FIRZEN_CHECK_GE(item, 0);
      FIRZEN_CHECK_LT(item, num_items_);
    }
    ScoreItems(users, 0, &candidates, static_cast<Index>(candidates.size()),
               out, arena);
  }

 private:
  // Per-user relation attention logits, shared by every item in a call and
  // cached in the arena across consecutive calls with the same user batch.
  const Matrix& RelLogitsFor(const std::vector<Index>& users,
                             ScoringArena* arena) const {
    arena->BindTo(scorer_id());
    const Index d = user_emb_.cols();
    const Index num_rel = relation_emb_.rows();
    if (users != arena->cached_users ||
        arena->rel_logits.rows() != static_cast<Index>(users.size())) {
      Matrix& rel_score = arena->rel_logits;
      rel_score.ResizeUninitialized(static_cast<Index>(users.size()), num_rel);
      for (size_t r = 0; r < users.size(); ++r) {
        const Real* eu = user_emb_.row(users[r]);
        for (Index rel = 0; rel < num_rel; ++rel) {
          const Real* er = relation_emb_.row(rel);
          Real acc = 0.0;
          for (Index c = 0; c < d; ++c) acc += eu[c] * er[c];
          rel_score(static_cast<Index>(r), rel) = acc;
        }
      }
      arena->cached_users = users;
    }
    return arena->rel_logits;
  }

  // Scores `count` items — candidates when given, else the contiguous range
  // starting at `first` — for every user into `out`.
  void ScoreItems(const std::vector<Index>& users, Index first,
                  const std::vector<Index>* candidates, Index count,
                  MatrixView out, ScoringArena* arena) const {
    FIRZEN_CHECK(arena != nullptr);
    FIRZEN_CHECK_EQ(out.rows(), static_cast<Index>(users.size()));
    FIRZEN_CHECK_EQ(out.cols(), count);
    if (users.empty() || count == 0) return;
    const Index d = user_emb_.cols();
    const Matrix& rel_score = RelLogitsFor(users, arena);

    ParallelFor(
        ThreadPool::Global(), count,
        [&](Index begin, Index end) {
          std::vector<Real> weight(static_cast<size_t>(s_));
          std::vector<Real> tower(static_cast<size_t>(d));
          for (Index j = begin; j < end; ++j) {
            const Index i =
                candidates ? (*candidates)[static_cast<size_t>(j)] : first + j;
            for (size_t r = 0; r < users.size(); ++r) {
              const Real* logits = rel_score.row(static_cast<Index>(r));
              // Softmax over the item's sampled neighbor relations.
              Real max_v = -1e30;
              for (Index t = 0; t < s_; ++t) {
                max_v = std::max(
                    max_v, logits[neighbor_rels_[static_cast<size_t>(
                               i * s_ + t)]]);
              }
              Real denom = 0.0;
              for (Index t = 0; t < s_; ++t) {
                weight[static_cast<size_t>(t)] = std::exp(
                    logits[neighbor_rels_[static_cast<size_t>(i * s_ + t)]] -
                    max_v);
                denom += weight[static_cast<size_t>(t)];
              }
              const Real* ego = projected_.row(i);
              for (Index c = 0; c < d; ++c) {
                tower[static_cast<size_t>(c)] = ego[c];
              }
              for (Index t = 0; t < s_; ++t) {
                const Real wj = weight[static_cast<size_t>(t)] / denom;
                const Real* tail = projected_.row(
                    neighbor_tails_[static_cast<size_t>(i * s_ + t)]);
                for (Index c = 0; c < d; ++c) {
                  tower[static_cast<size_t>(c)] += wj * tail[c];
                }
              }
              const Real* eu = user_emb_.row(users[r]);
              Real score = 0.0;
              for (Index c = 0; c < d; ++c) {
                score += eu[c] * std::tanh(tower[static_cast<size_t>(c)] +
                                           bias_(0, c));
              }
              out(static_cast<Index>(r), j) = score;
            }
          }
        },
        /*min_shard_size=*/64);
  }

  const Matrix& user_emb_;
  const Matrix& relation_emb_;
  const Matrix& bias_;
  const std::vector<Index>& neighbor_tails_;
  const std::vector<Index>& neighbor_rels_;
  Index s_;
  Index num_items_;
  Matrix projected_;
};

}  // namespace

std::unique_ptr<Scorer> Kgcn::MakeScorer() const {
  FIRZEN_CHECK(!user_emb_.empty());
  // entity_emb * W once per scorer, amortized over every streamed block.
  Matrix projected;
  Gemm(false, false, 1.0, entity_emb_, w_, 0.0, &projected);
  return std::make_unique<KgcnScorer>(
      user_emb_, relation_emb_, bias_, neighbor_tails_, neighbor_rels_,
      kgcn_options_.neighbor_samples, num_items_, std::move(projected));
}

Matrix Kgcn::ItemEmbeddings() const {
  Matrix out(num_items_, dim_);
  for (Index i = 0; i < num_items_; ++i) {
    for (Index c = 0; c < dim_; ++c) out(i, c) = entity_emb_(i, c);
  }
  return out;
}

Real Kgcn::ScoreValidationMrr(const Dataset& dataset,
                              ThreadPool* pool) const {
  if (dataset.warm_val.empty()) return 0.0;
  const auto scorer = MakeScorer();
  EvalOptions options;
  options.pool = pool;
  return EvaluateRanking(dataset, dataset.warm_val, EvalSetting::kWarm,
                         *scorer, options)
      .metrics.mrr;
}

}  // namespace firzen
