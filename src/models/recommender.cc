#include "src/models/recommender.h"

namespace firzen {

Recommender::~Recommender() = default;

std::unique_ptr<Scorer> Recommender::MakeScorer() const {
  // Generic full-row fallback: an empty-batch probe learns the catalog
  // width (a 0 x num_items resize, no scoring work) before adapting the
  // legacy Score() contract. Models with a factorized or block-native path
  // override this instead.
  Matrix probe;
  Score({}, &probe);
  return std::make_unique<FullScoreAdapter>(
      [this](const std::vector<Index>& users, Matrix* scores) {
        Score(users, scores);
      },
      probe.cols());
}

std::unique_ptr<Scorer> Recommender::MakeScorer(
    ScoringPrecision precision) const {
  // fp32 fallback for models without a quantizable Gemm path; dot-product
  // models override to honor kInt8.
  (void)precision;
  return MakeScorer();
}

void Recommender::Score(const std::vector<Index>& users,
                        Matrix* scores) const {
  MakeScorer()->ScoreAll(users, scores);
}

void Recommender::PrepareColdInference(const Dataset& dataset) {
  (void)dataset;
}

void Recommender::PrepareNormalColdInference(const Dataset& dataset) {
  PrepareColdInference(dataset);
}

Matrix Recommender::ItemEmbeddings() const { return Matrix(); }

Matrix Recommender::UserEmbeddings() const { return Matrix(); }

bool EarlyStopper::Update(Real metric) {
  if (metric > best_) {
    best_ = metric;
    strikes_ = 0;
    improved_ = true;
    return false;
  }
  improved_ = false;
  return ++strikes_ > patience_;
}

}  // namespace firzen
