#include "src/models/recommender.h"

namespace firzen {

Recommender::~Recommender() = default;

void Recommender::PrepareColdInference(const Dataset& dataset) {
  (void)dataset;
}

void Recommender::PrepareNormalColdInference(const Dataset& dataset) {
  PrepareColdInference(dataset);
}

Matrix Recommender::ItemEmbeddings() const { return Matrix(); }

Matrix Recommender::UserEmbeddings() const { return Matrix(); }

bool EarlyStopper::Update(Real metric) {
  if (metric > best_) {
    best_ = metric;
    strikes_ = 0;
    improved_ = true;
    return false;
  }
  improved_ = false;
  return ++strikes_ > patience_;
}

}  // namespace firzen
