// Trained-model serialization: persist the final user/item representations
// produced by any Recommender so they can be served without retraining
// (offline training -> online serving, the standard production split).
//
// Format (little-endian binary):
//   magic "FZEM" | u32 version | i64 rows | i64 cols | rows*cols f64
// repeated twice (user block, then item block), plus a trailing metadata
// string (model name).
#ifndef FIRZEN_MODELS_SERIALIZE_H_
#define FIRZEN_MODELS_SERIALIZE_H_

#include <memory>
#include <string>

#include "src/models/recommender.h"
#include "src/util/status.h"

namespace firzen {

/// A Recommender backed by fixed, pre-trained embedding matrices. Scores by
/// dot product; Fit() is a no-op (FailedPrecondition to call).
class StaticRecommender : public Recommender {
 public:
  StaticRecommender(std::string name, Matrix user_emb, Matrix item_emb);

  std::string Name() const override { return name_; }
  void Fit(const Dataset& dataset, const TrainOptions& options) override;
  std::unique_ptr<Scorer> MakeScorer() const override;
  /// kInt8 quantizes the loaded item table once at mint — the production
  /// .fzem serving path behind firzen_cli's --precision flag.
  std::unique_ptr<Scorer> MakeScorer(ScoringPrecision precision) const override;
  Matrix ItemEmbeddings() const override { return item_emb_; }

  const Matrix& user_embeddings() const { return user_emb_; }

 private:
  std::string name_;
  Matrix user_emb_;
  Matrix item_emb_;
};

/// Writes the model's final representations. The model must expose item
/// embeddings and be scorable (i.e. trained).
Status SaveEmbeddings(const Recommender& model, const Matrix& user_emb,
                      const Matrix& item_emb, const std::string& path);

/// Reads a serialized model back as a servable StaticRecommender.
Result<std::unique_ptr<StaticRecommender>> LoadEmbeddings(
    const std::string& path);

}  // namespace firzen

#endif  // FIRZEN_MODELS_SERIALIZE_H_
