// MKGAT (Sun et al., 2020): multi-modal knowledge graph attention — each
// item's visual and textual features become first-class KG entities linked
// by has_image / has_text relations, and the KGAT machinery runs over the
// augmented graph. As the paper's §IV-B.4 analysis notes, modal nodes are
// vastly outnumbered by ordinary entities, which limits how much modal
// signal reaches users/items — reproduced here by construction.
#ifndef FIRZEN_MODELS_MKGAT_H_
#define FIRZEN_MODELS_MKGAT_H_

#include "src/models/kgat.h"

namespace firzen {

class Mkgat : public Kgat {
 public:
  std::string Name() const override { return "MKGAT"; }

 protected:
  KnowledgeGraph AugmentKg(const Dataset& dataset) override;
  void SeedEntityRows(const Dataset& dataset, Matrix* entity_init) override;
};

}  // namespace firzen

#endif  // FIRZEN_MODELS_MKGAT_H_
