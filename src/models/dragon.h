// DRAGON (Zhou et al., 2023), faithful core: dyadic user-item propagation
// plus homogeneous graphs on both sides — a multimodal item-item kNN graph
// and a user-user co-occurrence graph. Final representations concatenate the
// behavior tower and the homogeneous-graph tower.
//
// Simplifications vs. the full system (documented per DESIGN.md §2): single
// fused item-item graph over concatenated modal features instead of per-
// modality attentive fusion. Its strict-cold behaviour (mediocre — the item
// ID tower stays uninformed) matches the paper's Table II placement.
#ifndef FIRZEN_MODELS_DRAGON_H_
#define FIRZEN_MODELS_DRAGON_H_

#include "src/models/embedding_model.h"

namespace firzen {

class Dragon : public EmbeddingModel {
 public:
  struct Options {
    Index knn_k = 10;
    Index user_topk = 10;
    int homo_layers = 1;
  };

  Dragon() = default;
  explicit Dragon(Options options) : options_(options) {}

  std::string Name() const override { return "DRAGON"; }
  void Fit(const Dataset& dataset, const TrainOptions& options) override;

 private:
  Options options_;
};

}  // namespace firzen

#endif  // FIRZEN_MODELS_DRAGON_H_
