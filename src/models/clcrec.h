// CLCRec (Wei et al., 2021): contrastive learning between item content
// representations and collaborative embeddings, so content encodes
// collaborative signal and can stand in for cold items. The hybrid item
// representation trades warm accuracy for cold coverage (Table II).
#ifndef FIRZEN_MODELS_CLCREC_H_
#define FIRZEN_MODELS_CLCREC_H_

#include "src/models/embedding_model.h"

namespace firzen {

class ClcRec : public EmbeddingModel {
 public:
  struct Options {
    Real hybrid_alpha = 0.5;       // alpha . e_i + (1 - alpha) . c_i
    Real contrastive_weight = 0.5;
    Real temperature = 0.3;
    Index hidden_dim = 64;
  };

  ClcRec() = default;
  explicit ClcRec(Options options) : options_(options) {}

  std::string Name() const override { return "CLCRec"; }
  void Fit(const Dataset& dataset, const TrainOptions& options) override;

  /// Strict cold items are represented purely by their content encoding.
  void PrepareColdInference(const Dataset& dataset) override;

 private:
  Options options_;
  Matrix content_;  // encoded content per item (num_items x d)
  Matrix hybrid_;   // alpha-blended warm representations
};

}  // namespace firzen

#endif  // FIRZEN_MODELS_CLCREC_H_
