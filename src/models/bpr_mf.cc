#include "src/models/bpr_mf.h"

#include "src/models/sampler.h"
#include "src/tensor/init.h"
#include "src/tensor/optim.h"
#include "src/util/logging.h"

namespace firzen {

void BprMf::Fit(const Dataset& dataset, const TrainOptions& options) {
  using namespace ops;  // NOLINT(build/namespaces)
  Rng rng(options.seed);
  Tensor user_table = XavierVariable(dataset.num_users,
                                     options.embedding_dim, &rng);
  Tensor item_table = XavierVariable(dataset.num_items,
                                     options.embedding_dim, &rng);

  Adam::Options adam_options;
  adam_options.lr = options.lr;
  adam_options.lazy = true;
  Adam optimizer(adam_options);
  BprSampler sampler(dataset, options.seed + 1);
  EarlyStopper stopper(options.patience);

  const int steps = options.steps_per_epoch > 0
                        ? options.steps_per_epoch
                        : static_cast<int>(dataset.train.size() /
                                               options.batch_size +
                                           1);
  std::vector<Index> users;
  std::vector<Index> pos;
  std::vector<Index> neg;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    Real epoch_loss = 0.0;
    for (int step = 0; step < steps; ++step) {
      sampler.SampleBatch(options.batch_size, &users, &pos, &neg);
      Tensor eu = GatherRows(user_table, users);
      Tensor ep = GatherRows(item_table, pos);
      Tensor en = GatherRows(item_table, neg);
      Tensor loss = Add(BprLoss(eu, ep, en),
                        BatchL2({eu, ep, en}, options.reg,
                                options.batch_size));
      epoch_loss += loss.scalar();
      Backward(loss);
      optimizer.Step({user_table, item_table});
    }
    if ((epoch + 1) % options.eval_every == 0) {
      final_user_ = user_table.value();
      final_item_ = item_table.value();
      const Real mrr =
          ValidationMrr(dataset, final_user_, final_item_, options.pool);
      const bool stop = stopper.Update(mrr);
      SnapshotIfImproved(stopper.improved());
      if (options.verbose) {
        Logf(LogLevel::kInfo, "[BPR] epoch %d loss=%.4f val-mrr=%.4f", epoch,
             epoch_loss / steps, mrr);
      }
      if (stop) break;
    }
  }
  final_user_ = user_table.value();
  final_item_ = item_table.value();
  RestoreBestSnapshot();
}

}  // namespace firzen
