#include "src/models/cke.h"

#include "src/models/kg_common.h"
#include "src/models/sampler.h"
#include "src/tensor/init.h"
#include "src/tensor/optim.h"
#include "src/util/logging.h"

namespace firzen {

void Cke::Fit(const Dataset& dataset, const TrainOptions& options) {
  using namespace ops;  // NOLINT(build/namespaces)
  Rng rng(options.seed);
  Tensor user_table = XavierVariable(dataset.num_users,
                                     options.embedding_dim, &rng);
  Tensor item_table = XavierVariable(dataset.num_items,
                                     options.embedding_dim, &rng);
  KgEmbeddings kg = MakeKgEmbeddings(dataset.kg.num_entities,
                                     dataset.kg.num_relations,
                                     options.embedding_dim, &rng);

  Adam::Options adam_options;
  adam_options.lr = options.lr;
  adam_options.lazy = true;
  Adam optimizer(adam_options);
  BprSampler sampler(dataset, options.seed + 1);
  Rng kg_rng(options.seed + 2);
  EarlyStopper stopper(options.patience);

  auto compute_final = [&] {
    // Item representation = ID embedding + structural (entity) embedding.
    final_user_ = user_table.value();
    final_item_ = item_table.value();
    for (Index i = 0; i < dataset.num_items; ++i) {
      for (Index c = 0; c < final_item_.cols(); ++c) {
        final_item_(i, c) += kg.entity.value()(i, c);
      }
    }
  };

  const int steps = options.steps_per_epoch > 0
                        ? options.steps_per_epoch
                        : static_cast<int>(dataset.train.size() /
                                               options.batch_size +
                                           1);
  std::vector<Index> users;
  std::vector<Index> pos;
  std::vector<Index> neg;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    Real epoch_loss = 0.0;
    for (int step = 0; step < steps; ++step) {
      // Alternate: recommendation objective ...
      sampler.SampleBatch(options.batch_size, &users, &pos, &neg);
      Tensor eu = GatherRows(user_table, users);
      Tensor ep = Add(GatherRows(item_table, pos),
                      GatherRows(kg.entity, pos));
      Tensor en = Add(GatherRows(item_table, neg),
                      GatherRows(kg.entity, neg));
      Tensor loss = Add(BprLoss(eu, ep, en),
                        BatchL2({eu, ep, en}, options.reg,
                                options.batch_size));
      epoch_loss += loss.scalar();
      Backward(loss);
      optimizer.Step({user_table, item_table, kg.entity});

      // ... then the KG representation objective.
      const KgBatch batch = SampleKgBatch(dataset.kg.triplets,
                                          dataset.kg.num_entities,
                                          options.batch_size, &kg_rng);
      Tensor kg_loss = TransRLoss(kg, batch, options.reg);
      Backward(kg_loss);
      optimizer.Step({kg.entity, kg.relation, kg.rel_proj});
    }
    if ((epoch + 1) % options.eval_every == 0) {
      compute_final();
      const Real mrr =
          ValidationMrr(dataset, final_user_, final_item_, options.pool);
      const bool stop = stopper.Update(mrr);
      SnapshotIfImproved(stopper.improved());
      if (options.verbose) {
        Logf(LogLevel::kInfo, "[CKE] epoch %d loss=%.4f val-mrr=%.4f", epoch,
             epoch_loss / steps, mrr);
      }
      if (stop) break;
    }
  }
  compute_final();
  RestoreBestSnapshot();
}

}  // namespace firzen
