// Shared machinery for knowledge-aware models (CKE, KGAT, KGCN, KGNN-LS,
// MKGAT and Firzen's knowledge-aware branch):
//  * diagonal-TransR triplet scoring + pairwise ranking loss (Eqs. 30-31;
//    the full d x d relation projection is replaced by a per-relation
//    diagonal — see DESIGN.md §2 substitutions),
//  * per-epoch knowledge-aware attention over the frozen CKG topology
//    (Eqs. 9-11), computed outside the autograd tape exactly like the
//    reference KGAT's update_attentive_A,
//  * the bi-interaction aggregator (Eq. 13).
#ifndef FIRZEN_MODELS_KG_COMMON_H_
#define FIRZEN_MODELS_KG_COMMON_H_

#include <memory>
#include <vector>

#include "src/graph/collaborative_kg.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace firzen {

/// Trainable KG representation: entity table, relation table and diagonal
/// relation projections.
struct KgEmbeddings {
  Tensor entity;    // E x d
  Tensor relation;  // R x d
  Tensor rel_proj;  // R x d (diagonal TransR projection weights)
};

KgEmbeddings MakeKgEmbeddings(Index num_entities, Index num_relations,
                              Index dim, Rng* rng);

/// Sampled triplet batch with uniformly corrupted negative tails.
struct KgBatch {
  std::vector<Index> heads;
  std::vector<Index> relations;
  std::vector<Index> pos_tails;
  std::vector<Index> neg_tails;
};

KgBatch SampleKgBatch(const std::vector<Triplet>& triplets,
                      Index num_entities, Index batch_size, Rng* rng);

/// sc(h, r, t) = -||w_r . e_h + e_r - w_r . e_t||^2 per batch row (B x 1).
Tensor TransRScore(const KgEmbeddings& kg, const std::vector<Index>& heads,
                   const std::vector<Index>& relations,
                   const std::vector<Index>& tails);

/// L_KG = mean softplus(sc_neg - sc_pos) + reg * batch L2 (Eq. 30).
Tensor TransRLoss(const KgEmbeddings& kg, const KgBatch& batch, Real reg);

/// Knowledge-aware attention values over the frozen CKG topology:
/// pi(h,r,t) = (w_r . x_t)^T tanh(w_r . x_h + x_r), row-softmax over each
/// head's ego network (Eqs. 9-11). Computed from detached current values.
CsrMatrix ComputeKgAttention(const CollaborativeKg& ckg, const Matrix& entity,
                             const Matrix& relation, const Matrix& rel_proj);

/// Bi-interaction aggregator (Eq. 13):
/// LeakyReLU((x + Ax) W1) + LeakyReLU((x . Ax) W2).
Tensor BiInteraction(const std::shared_ptr<const CsrMatrix>& attention,
                     const Tensor& x, const Tensor& w1, const Tensor& w2);

}  // namespace firzen

#endif  // FIRZEN_MODELS_KG_COMMON_H_
