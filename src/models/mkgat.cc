#include "src/models/mkgat.h"

#include <cmath>

#include "src/models/mm_common.h"
#include "src/util/check.h"

namespace firzen {

KnowledgeGraph Mkgat::AugmentKg(const Dataset& dataset) {
  KnowledgeGraph kg = dataset.kg;
  const Index items = dataset.num_items;
  const Index base_entities = kg.num_entities;
  const Index num_modalities = static_cast<Index>(dataset.modalities.size());
  // One modal node per (item, modality); relation ids appended at the end.
  kg.num_entities += items * num_modalities;
  const Index first_modal_relation = kg.num_relations;
  kg.num_relations += num_modalities;
  if (!kg.entity_type.empty()) {
    kg.entity_type.resize(static_cast<size_t>(kg.num_entities),
                          EntityType::kFeature);
  }
  for (Index m = 0; m < num_modalities; ++m) {
    for (Index i = 0; i < items; ++i) {
      kg.triplets.push_back(
          {i, first_modal_relation + m, base_entities + m * items + i});
    }
  }
  kg.CheckValid();
  return kg;
}

void Mkgat::SeedEntityRows(const Dataset& dataset, Matrix* entity_init) {
  const Index items = dataset.num_items;
  const Index d = entity_init->cols();
  const Index base_entities = dataset.kg.num_entities;
  Rng proj_rng(977);
  for (size_t m = 0; m < dataset.modalities.size(); ++m) {
    Matrix raw = dataset.modalities[m].features;
    StandardizeColumns(&raw);
    // Fixed random projection to the embedding width; rows remain trainable.
    Matrix proj(raw.cols(), d);
    proj.FillNormal(&proj_rng, 1.0 / std::sqrt(static_cast<Real>(raw.cols())));
    Matrix seeded;
    Gemm(false, false, 0.1, raw, proj, 0.0, &seeded);
    for (Index i = 0; i < items; ++i) {
      const Index row = base_entities + static_cast<Index>(m) * items + i;
      FIRZEN_CHECK_LT(row, entity_init->rows());
      for (Index c = 0; c < d; ++c) {
        (*entity_init)(row, c) = seeded(i, c);
      }
    }
  }
}

}  // namespace firzen
