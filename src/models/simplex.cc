#include "src/models/simplex.h"

#include "src/graph/interaction_graph.h"
#include "src/models/sampler.h"
#include "src/tensor/init.h"
#include "src/tensor/optim.h"
#include "src/util/logging.h"

namespace firzen {

void SimpleX::Fit(const Dataset& dataset, const TrainOptions& options) {
  using namespace ops;  // NOLINT(build/namespaces)
  Rng rng(options.seed);
  const Index num_users = dataset.num_users;
  const Index num_items = dataset.num_items;
  Tensor user_table = XavierVariable(num_users, options.embedding_dim, &rng);
  Tensor item_table = XavierVariable(num_items, options.embedding_dim, &rng);

  // Mean-of-history aggregation: row-normalized user->item matrix.
  auto u2i = std::make_shared<CsrMatrix>(
      CsrMatrix(BuildUserToItemGraph(dataset.train, num_users, num_items))
          .RowNormalized());

  Adam::Options adam_options;
  adam_options.lr = options.lr;
  Adam optimizer(adam_options);
  BprSampler sampler(dataset, options.seed + 1);
  EarlyStopper stopper(options.patience);

  const Real g = options_.fusion_weight;
  const Index n_neg = options_.num_negatives;

  auto fused_users = [&]() -> Tensor {
    Tensor aggregated = SpMM(u2i, item_table);
    return Add(Scale(user_table, g), Scale(aggregated, 1.0 - g));
  };

  auto compute_final = [&] {
    // Cosine scoring: store L2-normalized towers.
    Tensor fu = RowL2Normalize(fused_users());
    Tensor fi = RowL2Normalize(item_table);
    final_user_ = fu.value();
    final_item_ = fi.value();
  };

  const int steps = options.steps_per_epoch > 0
                        ? options.steps_per_epoch
                        : static_cast<int>(dataset.train.size() /
                                               options.batch_size +
                                           1);
  std::vector<Index> users;
  std::vector<Index> pos;
  std::vector<Index> neg_unused;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    Real epoch_loss = 0.0;
    for (int step = 0; step < steps; ++step) {
      sampler.SampleBatch(options.batch_size, &users, &pos, &neg_unused);
      std::vector<Index> negs;
      negs.reserve(static_cast<size_t>(options.batch_size * n_neg));
      for (Index b = 0; b < options.batch_size; ++b) {
        for (Index k = 0; k < n_neg; ++k) {
          negs.push_back(sampler.SampleWarmItems(1)[0]);
        }
      }
      Tensor fu = RowL2Normalize(GatherRows(fused_users(), users));
      Tensor fp = RowL2Normalize(GatherRows(item_table, pos));
      Tensor fn = RowL2Normalize(GatherRows(item_table, negs));

      // CCL: (1 - cos(u, p)) + w * mean(relu(cos(u, n) - margin)).
      Tensor pos_cos = RowDot(fu, fp);  // B x 1
      Tensor pos_term = Scale(AddScalar(Scale(pos_cos, -1.0), 1.0), 1.0);
      Tensor fu_rep = RepeatInterleaveRows(fu, n_neg);  // (B*n) x d
      Tensor neg_cos = RowDot(fu_rep, fn);              // (B*n) x 1
      Tensor neg_term = Scale(
          SumGroups(Relu(AddScalar(neg_cos, -options_.margin)), n_neg),
          options_.negative_weight / static_cast<Real>(n_neg));
      Tensor eu0 = GatherRows(user_table, users);
      Tensor ep0 = GatherRows(item_table, pos);
      Tensor loss = Add(ReduceMean(Add(pos_term, neg_term)),
                        BatchL2({eu0, ep0}, options.reg,
                                options.batch_size));
      epoch_loss += loss.scalar();
      Backward(loss);
      optimizer.Step({user_table, item_table});
    }
    if ((epoch + 1) % options.eval_every == 0) {
      compute_final();
      const Real mrr =
          ValidationMrr(dataset, final_user_, final_item_, options.pool);
      const bool stop = stopper.Update(mrr);
      SnapshotIfImproved(stopper.improved());
      if (options.verbose) {
        Logf(LogLevel::kInfo, "[SimpleX] epoch %d loss=%.4f val-mrr=%.4f",
             epoch, epoch_loss / steps, mrr);
      }
      if (stop) break;
    }
  }
  compute_final();
  RestoreBestSnapshot();
}

}  // namespace firzen
