#include "src/models/kg_common.h"

#include <cmath>

#include "src/tensor/init.h"
#include "src/util/check.h"

namespace firzen {

KgEmbeddings MakeKgEmbeddings(Index num_entities, Index num_relations,
                              Index dim, Rng* rng) {
  KgEmbeddings kg;
  kg.entity = XavierVariable(num_entities, dim, rng);
  kg.relation = XavierVariable(num_relations, dim, rng);
  // Projections initialized near identity (value 1) for stable warm-up.
  Matrix proj(num_relations, dim, 1.0);
  for (Index i = 0; i < proj.size(); ++i) {
    proj.data()[i] += 0.05 * rng->Normal();
  }
  kg.rel_proj = Tensor::Variable(std::move(proj));
  return kg;
}

KgBatch SampleKgBatch(const std::vector<Triplet>& triplets,
                      Index num_entities, Index batch_size, Rng* rng) {
  FIRZEN_CHECK(!triplets.empty());
  KgBatch batch;
  batch.heads.reserve(batch_size);
  batch.relations.reserve(batch_size);
  batch.pos_tails.reserve(batch_size);
  batch.neg_tails.reserve(batch_size);
  for (Index b = 0; b < batch_size; ++b) {
    const Triplet& t = triplets[static_cast<size_t>(
        rng->UniformInt(static_cast<Index>(triplets.size())))];
    batch.heads.push_back(t.head);
    batch.relations.push_back(t.relation);
    batch.pos_tails.push_back(t.tail);
    Index neg = rng->UniformInt(num_entities);
    if (neg == t.tail) neg = (neg + 1) % num_entities;
    batch.neg_tails.push_back(neg);
  }
  return batch;
}

Tensor TransRScore(const KgEmbeddings& kg, const std::vector<Index>& heads,
                   const std::vector<Index>& relations,
                   const std::vector<Index>& tails) {
  using namespace ops;  // NOLINT(build/namespaces)
  Tensor h = GatherRows(kg.entity, heads);
  Tensor r = GatherRows(kg.relation, relations);
  Tensor w = GatherRows(kg.rel_proj, relations);
  Tensor t = GatherRows(kg.entity, tails);
  Tensor diff = Sub(Add(Mul(w, h), r), Mul(w, t));
  return Scale(RowDot(diff, diff), -1.0);
}

Tensor TransRLoss(const KgEmbeddings& kg, const KgBatch& batch, Real reg) {
  using namespace ops;  // NOLINT(build/namespaces)
  Tensor sc_pos = TransRScore(kg, batch.heads, batch.relations,
                              batch.pos_tails);
  Tensor sc_neg = TransRScore(kg, batch.heads, batch.relations,
                              batch.neg_tails);
  Tensor rank = ReduceMean(Softplus(Sub(sc_neg, sc_pos)));
  Tensor h = GatherRows(kg.entity, batch.heads);
  Tensor r = GatherRows(kg.relation, batch.relations);
  Tensor tp = GatherRows(kg.entity, batch.pos_tails);
  Tensor tn = GatherRows(kg.entity, batch.neg_tails);
  Tensor l2 = Add(Add(SumSquares(h), SumSquares(r)),
                  Add(SumSquares(tp), SumSquares(tn)));
  return Add(rank, Scale(l2, reg / static_cast<Real>(batch.heads.size())));
}

CsrMatrix ComputeKgAttention(const CollaborativeKg& ckg, const Matrix& entity,
                             const Matrix& relation, const Matrix& rel_proj) {
  FIRZEN_CHECK_EQ(entity.rows(), ckg.num_entities);
  FIRZEN_CHECK_EQ(relation.rows(), ckg.num_relations);
  const Index d = entity.cols();
  const Index nnz = ckg.topology.nnz();
  std::vector<Real> values(static_cast<size_t>(nnz));
  const auto& row_ptr = ckg.topology.row_ptr();
  const auto& col_idx = ckg.topology.col_idx();
  for (Index h = 0; h < ckg.num_entities; ++h) {
    for (Index p = row_ptr[h]; p < row_ptr[h + 1]; ++p) {
      const Index t = col_idx[static_cast<size_t>(p)];
      const Index r = ckg.edge_relation[static_cast<size_t>(p)];
      const Real* xh = entity.row(h);
      const Real* xt = entity.row(t);
      const Real* xr = relation.row(r);
      const Real* wr = rel_proj.row(r);
      Real score = 0.0;
      for (Index c = 0; c < d; ++c) {
        score += (wr[c] * xt[c]) * std::tanh(wr[c] * xh[c] + xr[c]);
      }
      values[static_cast<size_t>(p)] = score;
    }
  }
  return ckg.topology.WithValues(std::move(values)).RowSoftmax();
}

Tensor BiInteraction(const std::shared_ptr<const CsrMatrix>& attention,
                     const Tensor& x, const Tensor& w1, const Tensor& w2) {
  using namespace ops;  // NOLINT(build/namespaces)
  Tensor neighborhood = SpMM(attention, x);
  Tensor sum_part = LeakyRelu(MatMul(Add(x, neighborhood), w1));
  Tensor prod_part = LeakyRelu(MatMul(Mul(x, neighborhood), w2));
  return Add(sum_part, prod_part);
}

}  // namespace firzen
