// Model registry: create any of the paper's sixteen recommenders by name,
// and run the paper's strict cold-start evaluation protocol.
#ifndef FIRZEN_MODELS_REGISTRY_H_
#define FIRZEN_MODELS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

// Known back-edge: the registry's training loops report validation metrics
// through EvaluateRanking, so models depends on eval here by design (the
// protocol lives with the models that run it).
// firzen-lint: allow(include-layering)
#include "src/eval/evaluator.h"
#include "src/models/recommender.h"

namespace firzen {

/// Name + paper category ("CF", "KG", "MM", "CS", "MM+KG", "Ours").
struct ModelInfo {
  std::string name;
  std::string category;
};

/// All models in the paper's Table II row order.
std::vector<ModelInfo> AllModels();

/// Factory. Returns nullptr for unknown names.
std::unique_ptr<Recommender> CreateModel(const std::string& name);

/// Outcome of the full §IV-A protocol for one model on one dataset.
struct ProtocolResult {
  EvalResult warm;
  EvalResult cold;
  MetricBundle hm;
  double fit_seconds = 0.0;
};

/// Fit -> warm test eval -> PrepareColdInference -> cold test eval -> HM.
ProtocolResult RunStrictColdProtocol(Recommender* model,
                                     const Dataset& dataset,
                                     const TrainOptions& options);

/// Table VI variant: evaluation on the unknown halves with revealed links
/// (dataset must come from MakeNormalColdProtocol).
EvalResult RunNormalColdEval(Recommender* model, const Dataset& dataset,
                             const TrainOptions& options);

}  // namespace firzen

#endif  // FIRZEN_MODELS_REGISTRY_H_
