#include "src/models/clcrec.h"

#include "src/models/mm_common.h"
#include "src/models/sampler.h"
#include "src/tensor/init.h"
#include "src/tensor/optim.h"
#include "src/util/logging.h"

namespace firzen {

void ClcRec::Fit(const Dataset& dataset, const TrainOptions& options) {
  using namespace ops;  // NOLINT(build/namespaces)
  Rng rng(options.seed);
  const Index d = options.embedding_dim;

  Matrix raw = ConcatModalFeatures(dataset);
  StandardizeColumns(&raw);
  Tensor features = Tensor::Constant(std::move(raw));

  Tensor user_table = XavierVariable(dataset.num_users, d, &rng);
  Tensor item_table = XavierVariable(dataset.num_items, d, &rng);
  Tensor enc1 = XavierVariable(features.cols(), options_.hidden_dim, &rng);
  Tensor enc2 = XavierVariable(options_.hidden_dim, d, &rng);

  Adam::Options adam_options;
  adam_options.lr = options.lr;
  Adam optimizer(adam_options);
  BprSampler sampler(dataset, options.seed + 1);
  EarlyStopper stopper(options.patience);

  auto encode = [&](const Tensor& f) {
    return MatMul(LeakyRelu(MatMul(f, enc1)), enc2);
  };

  auto compute_final = [&] {
    Tensor c = encode(features);
    content_ = c.value();
    final_user_ = user_table.value();
    hybrid_.Resize(dataset.num_items, d);
    const Real a = options_.hybrid_alpha;
    for (Index i = 0; i < dataset.num_items; ++i) {
      for (Index col = 0; col < d; ++col) {
        hybrid_(i, col) =
            a * item_table.value()(i, col) + (1.0 - a) * content_(i, col);
      }
    }
    final_item_ = hybrid_;
  };

  const int steps = options.steps_per_epoch > 0
                        ? options.steps_per_epoch
                        : static_cast<int>(dataset.train.size() /
                                               options.batch_size +
                                           1);
  std::vector<Index> users;
  std::vector<Index> pos;
  std::vector<Index> neg;
  const Real a = options_.hybrid_alpha;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    Real epoch_loss = 0.0;
    for (int step = 0; step < steps; ++step) {
      sampler.SampleBatch(options.batch_size, &users, &pos, &neg);
      Tensor eu = GatherRows(user_table, users);
      Tensor cp = encode(GatherRows(features, pos));
      Tensor cn = encode(GatherRows(features, neg));
      Tensor ep = Add(Scale(GatherRows(item_table, pos), a),
                      Scale(cp, 1.0 - a));
      Tensor en = Add(Scale(GatherRows(item_table, neg), a),
                      Scale(cn, 1.0 - a));
      Tensor loss = Add(BprLoss(eu, ep, en),
                        BatchL2({eu, GatherRows(item_table, pos)},
                                options.reg, options.batch_size));
      // Contrast content encoding against the collaborative embedding of
      // the same item (positives) vs other items in the batch (negatives).
      Tensor c_norm = RowL2Normalize(cp);
      Tensor e_norm = RowL2Normalize(GatherRows(item_table, pos));
      Tensor logits = Scale(MatMul(c_norm, e_norm, false, true),
                            1.0 / options_.temperature);
      Tensor positives = Scale(RowDot(c_norm, e_norm),
                               1.0 / options_.temperature);
      Tensor lse = Log(RowSum(Exp(logits)));
      loss = Add(loss, Scale(ReduceMean(Sub(lse, positives)),
                             options_.contrastive_weight));
      epoch_loss += loss.scalar();
      Backward(loss);
      optimizer.Step({user_table, item_table, enc1, enc2});
    }
    if ((epoch + 1) % options.eval_every == 0) {
      compute_final();
      const Real mrr =
          ValidationMrr(dataset, final_user_, final_item_, options.pool);
      // No best-state restore: PrepareColdInference swaps in content_
      // representations, which must match the state that produced final_*.
      const bool stop = stopper.Update(mrr);
      if (options.verbose) {
        Logf(LogLevel::kInfo, "[CLCRec] epoch %d loss=%.4f val-mrr=%.4f",
             epoch, epoch_loss / steps, mrr);
      }
      if (stop) break;
    }
  }
  compute_final();
}

void ClcRec::PrepareColdInference(const Dataset& dataset) {
  if (content_.empty()) return;
  final_item_ = hybrid_;
  for (Index i = 0; i < dataset.num_items; ++i) {
    if (!dataset.is_cold_item[static_cast<size_t>(i)]) continue;
    for (Index c = 0; c < content_.cols(); ++c) {
      final_item_(i, c) = content_(i, c);
    }
  }
}

}  // namespace firzen
