// Common interface implemented by Firzen and all baseline recommenders.
#ifndef FIRZEN_MODELS_RECOMMENDER_H_
#define FIRZEN_MODELS_RECOMMENDER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/models/scorer.h"
#include "src/tensor/matrix.h"
#include "src/util/thread_pool.h"

namespace firzen {

/// Shared training hyperparameters. Model-specific knobs live in each
/// model's own Options struct (RocksDB-style configuration).
struct TrainOptions {
  Index embedding_dim = 32;
  int epochs = 60;
  int batch_size = 512;
  Real lr = 5e-3;
  Real reg = 1e-4;       // L2 weight on the sampled batch embeddings
  int num_layers = 2;    // GNN propagation depth L
  int steps_per_epoch = 0;  // 0 = ceil(|train| / batch_size)
  int eval_every = 5;       // epochs between early-stopping validations
  int patience = 3;         // early-stop patience (validation MRR@20)
  uint64_t seed = 42;
  bool verbose = false;
  ThreadPool* pool = nullptr;
};

/// Abstract recommender. Lifecycle: Fit() -> [PrepareColdInference()] ->
/// MakeScorer() -> ScoreBlock()/ScoreCandidates(). Scoring streams bounded
/// item panels; the evaluator and the serving engine fuse ranking with the
/// stream so no users x num_items matrix ever materializes.
///
/// A concrete model must override at least one of MakeScorer() or the
/// deprecated Score() — each default is implemented on top of the other, so
/// overriding neither recurses.
class Recommender {
 public:
  virtual ~Recommender();

  virtual std::string Name() const = 0;

  /// Trains on dataset.train (strict cold items never appear there).
  virtual void Fit(const Dataset& dataset, const TrainOptions& options) = 0;

  /// Mints a streaming scorer over the model's current inference state
  /// (post Fit / PrepareColdInference). The model must outlive the scorer,
  /// and the scorer reflects the state at mint time: re-mint after
  /// Prepare*ColdInference. Scorers are logically const and safely shared
  /// across threads (per-call scratch lives in caller ScoringArenas), so
  /// one mint serves any number of concurrent scoring streams — there is
  /// no reason to mint per thread. Default: a FullScoreAdapter over
  /// Score() — the
  /// generic full-row fallback for non-factorized models (which must then
  /// accept an empty user list: the adapter probes the catalog width with
  /// one 0-row Score() call).
  virtual std::unique_ptr<Scorer> MakeScorer() const;

  /// Precision-selecting mint. kFp32 is always MakeScorer(). kInt8 is
  /// honored by models whose scores are dot products over frozen final
  /// tables (EmbeddingModel descendants, StaticRecommender); the default
  /// here falls back to the fp32 scorer for everything else (block-native
  /// scorers like KGCN's tanh tower and FullScoreAdapter models have no
  /// Gemm hot loop to quantize), so callers can request int8 uniformly —
  /// the quant quality gate then trivially passes for fallback models.
  virtual std::unique_ptr<Scorer> MakeScorer(ScoringPrecision precision) const;

  /// Deprecated full-matrix scoring: fills `scores`
  /// (users.size() x num_items) via one catalog-wide ScoreBlock. Kept so
  /// existing call sites migrate without behavior change; prefer
  /// MakeScorer() + ScoreBlock in new code.
  virtual void Score(const std::vector<Index>& users, Matrix* scores) const;

  /// Rebuilds inference-time structures that may include strict cold items
  /// (e.g. expanded + masked item-item graphs, Eqs. 34-35). Default: no-op.
  virtual void PrepareColdInference(const Dataset& dataset);

  /// Normal cold-start protocol (Table VI): `dataset.cold_known` holds the
  /// revealed links. Default: delegates to PrepareColdInference.
  virtual void PrepareNormalColdInference(const Dataset& dataset);

  /// Final item embeddings for visualization (Fig. 8). Default: empty.
  virtual Matrix ItemEmbeddings() const;

  /// Final user embeddings for serialization/serving. Empty for models
  /// whose scores are not a user-vector dot product (e.g. KGCN).
  virtual Matrix UserEmbeddings() const;
};

/// Early-stopping tracker on a to-be-maximized validation metric.
class EarlyStopper {
 public:
  explicit EarlyStopper(int patience) : patience_(patience) {}

  /// Records a validation score; returns true when training should stop.
  bool Update(Real metric);

  bool improved() const { return improved_; }
  Real best() const { return best_; }

 private:
  int patience_;
  int strikes_ = 0;
  Real best_ = -1.0;
  bool improved_ = false;
};

}  // namespace firzen

#endif  // FIRZEN_MODELS_RECOMMENDER_H_
