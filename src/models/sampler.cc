#include "src/models/sampler.h"

#include <algorithm>

#include "src/util/check.h"

namespace firzen {

BprSampler::BprSampler(const Dataset& dataset, uint64_t seed)
    : train_(dataset.train),
      items_by_user_(dataset.TrainItemsByUser()),
      warm_items_(dataset.WarmItems()),
      rng_(seed) {
  FIRZEN_CHECK(!train_.empty());
  FIRZEN_CHECK(!warm_items_.empty());
  for (Index u = 0; u < dataset.num_users; ++u) {
    if (!items_by_user_[static_cast<size_t>(u)].empty()) {
      active_users_.push_back(u);
    }
  }
}

bool BprSampler::UserHasItem(Index user, Index item) const {
  const auto& items = items_by_user_[static_cast<size_t>(user)];
  return std::binary_search(items.begin(), items.end(), item);
}

BprSampler::Triple BprSampler::Sample() {
  const Interaction& x = train_[static_cast<size_t>(
      rng_.UniformInt(static_cast<Index>(train_.size())))];
  // Bounded rejection sampling: a user who has consumed (nearly) the whole
  // warm catalog must not hang the trainer — fall back to any warm item.
  Index neg = warm_items_[static_cast<size_t>(
      rng_.UniformInt(static_cast<Index>(warm_items_.size())))];
  for (int attempt = 0; attempt < 64 && UserHasItem(x.user, neg); ++attempt) {
    neg = warm_items_[static_cast<size_t>(
        rng_.UniformInt(static_cast<Index>(warm_items_.size())))];
  }
  return {x.user, x.item, neg};
}

void BprSampler::SampleBatch(Index batch_size, std::vector<Index>* users,
                             std::vector<Index>* pos,
                             std::vector<Index>* neg) {
  users->clear();
  pos->clear();
  neg->clear();
  users->reserve(batch_size);
  pos->reserve(batch_size);
  neg->reserve(batch_size);
  for (Index b = 0; b < batch_size; ++b) {
    const Triple t = Sample();
    users->push_back(t.user);
    pos->push_back(t.pos);
    neg->push_back(t.neg);
  }
}

std::vector<Index> BprSampler::SampleUsers(Index count) {
  std::vector<Index> out;
  out.reserve(count);
  for (Index i = 0; i < count; ++i) {
    out.push_back(active_users_[static_cast<size_t>(
        rng_.UniformInt(static_cast<Index>(active_users_.size())))]);
  }
  return out;
}

std::vector<Index> BprSampler::SampleWarmItems(Index count) {
  std::vector<Index> out;
  out.reserve(count);
  for (Index i = 0; i < count; ++i) {
    out.push_back(warm_items_[static_cast<size_t>(
        rng_.UniformInt(static_cast<Index>(warm_items_.size())))]);
  }
  return out;
}

}  // namespace firzen
