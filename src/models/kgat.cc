#include "src/models/kgat.h"

#include "src/models/sampler.h"
#include "src/tensor/init.h"
#include "src/tensor/optim.h"
#include "src/util/logging.h"

namespace firzen {

Tensor Kgat::PropagateAll(const std::shared_ptr<const CsrMatrix>& attention) {
  using namespace ops;  // NOLINT(build/namespaces)
  std::vector<Tensor> layers{kg_.entity};
  Tensor current = kg_.entity;
  for (int l = 0; l < num_layers_; ++l) {
    current = BiInteraction(attention, current, w1_[static_cast<size_t>(l)],
                            w2_[static_cast<size_t>(l)]);
    layers.push_back(current);
  }
  // Mean pooling across layers (the original concatenates; mean keeps the
  // embedding width constant — documented substitution in DESIGN.md).
  return Scale(AddN(layers), 1.0 / static_cast<Real>(layers.size()));
}

void Kgat::ComputeFinal(const CollaborativeKg& ckg,
                        const std::shared_ptr<const CsrMatrix>& attention) {
  const Tensor all = PropagateAll(attention);
  const Matrix& propagated = all.value();
  final_user_.Resize(ckg.num_users, propagated.cols());
  final_item_.Resize(ckg.num_items, propagated.cols());
  for (Index u = 0; u < ckg.num_users; ++u) {
    const Real* src = propagated.row(ckg.UserEntity(u));
    for (Index c = 0; c < propagated.cols(); ++c) final_user_(u, c) = src[c];
  }
  for (Index i = 0; i < ckg.num_items; ++i) {
    const Real* src = propagated.row(ckg.ItemEntity(i));
    for (Index c = 0; c < propagated.cols(); ++c) final_item_(i, c) = src[c];
  }
}

void Kgat::Fit(const Dataset& dataset, const TrainOptions& options) {
  using namespace ops;  // NOLINT(build/namespaces)
  Rng rng(options.seed);
  num_layers_ = options.num_layers;

  const KnowledgeGraph kg_data = AugmentKg(dataset);
  const CollaborativeKg ckg =
      BuildCollaborativeKg(dataset.train, dataset.num_users, kg_data);

  kg_ = MakeKgEmbeddings(ckg.num_entities, ckg.num_relations,
                         options.embedding_dim, &rng);
  SeedEntityRows(dataset, kg_.entity.mutable_value());
  w1_.clear();
  w2_.clear();
  for (int l = 0; l < num_layers_; ++l) {
    w1_.push_back(XavierVariable(options.embedding_dim,
                                 options.embedding_dim, &rng));
    w2_.push_back(XavierVariable(options.embedding_dim,
                                 options.embedding_dim, &rng));
  }

  Adam::Options adam_options;
  adam_options.lr = options.lr;
  Adam optimizer(adam_options);
  BprSampler sampler(dataset, options.seed + 1);
  Rng kg_rng(options.seed + 2);
  EarlyStopper stopper(options.patience);

  std::vector<Tensor> rec_params{kg_.entity};
  for (int l = 0; l < num_layers_; ++l) {
    rec_params.push_back(w1_[static_cast<size_t>(l)]);
    rec_params.push_back(w2_[static_cast<size_t>(l)]);
  }

  const int steps = options.steps_per_epoch > 0
                        ? options.steps_per_epoch
                        : static_cast<int>(dataset.train.size() /
                                               options.batch_size +
                                           1);
  std::vector<Index> users;
  std::vector<Index> pos;
  std::vector<Index> neg;
  std::shared_ptr<const CsrMatrix> attention;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Refresh attentive adjacency once per epoch (reference behaviour).
    attention = std::make_shared<const CsrMatrix>(
        ComputeKgAttention(ckg, kg_.entity.value(), kg_.relation.value(),
                           kg_.rel_proj.value()));
    Real epoch_loss = 0.0;
    for (int step = 0; step < steps; ++step) {
      sampler.SampleBatch(options.batch_size, &users, &pos, &neg);
      std::vector<Index> user_nodes;
      std::vector<Index> pos_nodes;
      std::vector<Index> neg_nodes;
      for (Index u : users) user_nodes.push_back(ckg.UserEntity(u));
      for (Index i : pos) pos_nodes.push_back(ckg.ItemEntity(i));
      for (Index i : neg) neg_nodes.push_back(ckg.ItemEntity(i));

      Tensor all = PropagateAll(attention);
      Tensor eu = GatherRows(all, user_nodes);
      Tensor ep = GatherRows(all, pos_nodes);
      Tensor en = GatherRows(all, neg_nodes);
      Tensor loss = Add(BprLoss(eu, ep, en),
                        BatchL2({eu, ep, en}, options.reg,
                                options.batch_size));
      epoch_loss += loss.scalar();
      Backward(loss);
      optimizer.Step(rec_params);

      const KgBatch batch = SampleKgBatch(ckg.triplets, ckg.num_entities,
                                          options.batch_size, &kg_rng);
      Tensor kg_loss = TransRLoss(kg_, batch, options.reg);
      Backward(kg_loss);
      optimizer.Step({kg_.entity, kg_.relation, kg_.rel_proj});
    }
    if ((epoch + 1) % options.eval_every == 0) {
      ComputeFinal(ckg, attention);
      const Real mrr =
          ValidationMrr(dataset, final_user_, final_item_, options.pool);
      const bool stop = stopper.Update(mrr);
      SnapshotIfImproved(stopper.improved());
      if (options.verbose) {
        Logf(LogLevel::kInfo, "[%s] epoch %d loss=%.4f val-mrr=%.4f",
             Name().c_str(), epoch, epoch_loss / steps, mrr);
      }
      if (stop) break;
    }
  }
  if (attention != nullptr) ComputeFinal(ckg, attention);
  RestoreBestSnapshot();
}

void Kgat::PrepareNormalColdInference(const Dataset& dataset) {
  if (dataset.cold_known.empty()) return;
  // Rebuild the CKG with the revealed cold links so propagation reaches the
  // normal-cold items through users as well as KG entities.
  std::vector<Interaction> merged = dataset.train;
  merged.insert(merged.end(), dataset.cold_known.begin(),
                dataset.cold_known.end());
  const KnowledgeGraph kg_data = AugmentKg(dataset);
  const CollaborativeKg ckg =
      BuildCollaborativeKg(merged, dataset.num_users, kg_data);
  auto attention = std::make_shared<const CsrMatrix>(
      ComputeKgAttention(ckg, kg_.entity.value(), kg_.relation.value(),
                         kg_.rel_proj.value()));
  ComputeFinal(ckg, attention);
}

}  // namespace firzen
