#include "src/models/lightgcn.h"

#include "src/graph/interaction_graph.h"
#include "src/models/sampler.h"
#include "src/tensor/init.h"
#include "src/tensor/optim.h"
#include "src/util/logging.h"

namespace firzen {

Tensor LightGcn::Propagate(const std::shared_ptr<const CsrMatrix>& graph,
                           const Tensor& table, int num_layers) {
  using namespace ops;  // NOLINT(build/namespaces)
  std::vector<Tensor> layers{table};
  Tensor current = table;
  for (int l = 0; l < num_layers; ++l) {
    current = SpMM(graph, current);
    layers.push_back(current);
  }
  return Scale(AddN(layers), 1.0 / static_cast<Real>(layers.size()));
}

void LightGcn::ComputeFinal(const CsrMatrix& graph) {
  Matrix propagated = joint_table_.value();
  Matrix current = joint_table_.value();
  Matrix next;
  for (int l = 0; l < num_layers_; ++l) {
    graph.SpMM(current, &next);
    current = next;
    propagated.Add(current);
  }
  propagated.Scale(1.0 / static_cast<Real>(num_layers_ + 1));

  final_user_.Resize(num_users_, propagated.cols());
  final_item_.Resize(num_items_, propagated.cols());
  for (Index u = 0; u < num_users_; ++u) {
    for (Index c = 0; c < propagated.cols(); ++c) {
      final_user_(u, c) = propagated(u, c);
    }
  }
  for (Index i = 0; i < num_items_; ++i) {
    for (Index c = 0; c < propagated.cols(); ++c) {
      final_item_(i, c) = propagated(num_users_ + i, c);
    }
  }
}

void LightGcn::Fit(const Dataset& dataset, const TrainOptions& options) {
  using namespace ops;  // NOLINT(build/namespaces)
  Rng rng(options.seed);
  num_users_ = dataset.num_users;
  num_items_ = dataset.num_items;
  num_layers_ = options.num_layers;
  joint_table_ = XavierVariable(num_users_ + num_items_,
                                options.embedding_dim, &rng);

  auto graph = std::make_shared<CsrMatrix>(BuildNormalizedInteractionGraph(
      dataset.train, num_users_, num_items_));

  Adam::Options adam_options;
  adam_options.lr = options.lr;
  Adam optimizer(adam_options);
  BprSampler sampler(dataset, options.seed + 1);
  EarlyStopper stopper(options.patience);

  const int steps = options.steps_per_epoch > 0
                        ? options.steps_per_epoch
                        : static_cast<int>(dataset.train.size() /
                                               options.batch_size +
                                           1);
  std::vector<Index> users;
  std::vector<Index> pos;
  std::vector<Index> neg;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    Real epoch_loss = 0.0;
    for (int step = 0; step < steps; ++step) {
      sampler.SampleBatch(options.batch_size, &users, &pos, &neg);
      Tensor propagated = Propagate(graph, joint_table_, num_layers_);
      std::vector<Index> pos_nodes;
      std::vector<Index> neg_nodes;
      pos_nodes.reserve(pos.size());
      neg_nodes.reserve(neg.size());
      for (Index i : pos) pos_nodes.push_back(num_users_ + i);
      for (Index i : neg) neg_nodes.push_back(num_users_ + i);
      Tensor eu = GatherRows(propagated, users);
      Tensor ep = GatherRows(propagated, pos_nodes);
      Tensor en = GatherRows(propagated, neg_nodes);
      // Regularize the layer-0 (ego) embeddings as in the reference code.
      Tensor eu0 = GatherRows(joint_table_, users);
      Tensor ep0 = GatherRows(joint_table_, pos_nodes);
      Tensor en0 = GatherRows(joint_table_, neg_nodes);
      Tensor loss = Add(BprLoss(eu, ep, en),
                        BatchL2({eu0, ep0, en0}, options.reg,
                                options.batch_size));
      epoch_loss += loss.scalar();
      Backward(loss);
      optimizer.Step({joint_table_});
    }
    if ((epoch + 1) % options.eval_every == 0) {
      ComputeFinal(*graph);
      const Real mrr =
          ValidationMrr(dataset, final_user_, final_item_, options.pool);
      const bool stop = stopper.Update(mrr);
      SnapshotIfImproved(stopper.improved());
      if (options.verbose) {
        Logf(LogLevel::kInfo, "[LightGCN] epoch %d loss=%.4f val-mrr=%.4f",
             epoch, epoch_loss / steps, mrr);
      }
      if (stop) break;
    }
  }
  ComputeFinal(*graph);
  RestoreBestSnapshot();
}

void LightGcn::PrepareNormalColdInference(const Dataset& dataset) {
  if (dataset.cold_known.empty()) return;
  std::vector<Interaction> merged = dataset.train;
  merged.insert(merged.end(), dataset.cold_known.begin(),
                dataset.cold_known.end());
  const CsrMatrix graph =
      BuildNormalizedInteractionGraph(merged, num_users_, num_items_);
  ComputeFinal(graph);
}

}  // namespace firzen
