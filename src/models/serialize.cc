#include "src/models/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "src/util/check.h"

namespace firzen {
namespace {

constexpr char kMagic[4] = {'F', 'Z', 'E', 'M'};
constexpr uint32_t kVersion = 1;

void WriteMatrix(std::ofstream* out, const Matrix& m) {
  const int64_t rows = m.rows();
  const int64_t cols = m.cols();
  out->write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out->write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out->write(reinterpret_cast<const char*>(m.data()),
             static_cast<std::streamsize>(sizeof(Real) * m.size()));
}

bool ReadMatrix(std::ifstream* in, Matrix* m) {
  int64_t rows = 0;
  int64_t cols = 0;
  in->read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in->read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!*in || rows < 0 || cols < 0 || rows > (1LL << 32) ||
      cols > (1LL << 20)) {
    return false;
  }
  m->Resize(rows, cols);
  in->read(reinterpret_cast<char*>(m->data()),
           static_cast<std::streamsize>(sizeof(Real) * m->size()));
  return static_cast<bool>(*in);
}

}  // namespace

StaticRecommender::StaticRecommender(std::string name, Matrix user_emb,
                                     Matrix item_emb)
    : name_(std::move(name)),
      user_emb_(std::move(user_emb)),
      item_emb_(std::move(item_emb)) {
  FIRZEN_CHECK_EQ(user_emb_.cols(), item_emb_.cols());
}

void StaticRecommender::Fit(const Dataset& dataset,
                            const TrainOptions& options) {
  (void)dataset;
  (void)options;
  FIRZEN_CHECK_MSG(false,
                   "StaticRecommender serves pre-trained embeddings and "
                   "cannot be fitted");
}

std::unique_ptr<Scorer> StaticRecommender::MakeScorer() const {
  return std::make_unique<DotProductScorer>(user_emb_, item_emb_);
}

std::unique_ptr<Scorer> StaticRecommender::MakeScorer(
    ScoringPrecision precision) const {
  return std::make_unique<DotProductScorer>(user_emb_, item_emb_,
                                            /*pool=*/nullptr, precision);
}

Status SaveEmbeddings(const Recommender& model, const Matrix& user_emb,
                      const Matrix& item_emb, const std::string& path) {
  if (user_emb.empty() || item_emb.empty()) {
    return Status::FailedPrecondition("model has no final embeddings");
  }
  if (user_emb.cols() != item_emb.cols()) {
    return Status::InvalidArgument("user/item embedding width mismatch");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  WriteMatrix(&out, user_emb);
  WriteMatrix(&out, item_emb);
  const std::string name = model.Name();
  const uint32_t name_len = static_cast<uint32_t>(name.size());
  out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
  out.write(name.data(), name_len);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::unique_ptr<StaticRecommender>> LoadEmbeddings(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": not a firzen embedding file");
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (version != kVersion) {
    return Status::InvalidArgument(path + ": unsupported version " +
                                   std::to_string(version));
  }
  Matrix user_emb;
  Matrix item_emb;
  if (!ReadMatrix(&in, &user_emb) || !ReadMatrix(&in, &item_emb)) {
    return Status::InvalidArgument(path + ": truncated matrix block");
  }
  if (user_emb.cols() != item_emb.cols()) {
    return Status::InvalidArgument(path + ": embedding width mismatch");
  }
  uint32_t name_len = 0;
  in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
  std::string name(name_len, '\0');
  in.read(name.data(), name_len);
  if (!in) return Status::InvalidArgument(path + ": truncated metadata");
  return std::make_unique<StaticRecommender>(name, std::move(user_emb),
                                             std::move(item_emb));
}

}  // namespace firzen
