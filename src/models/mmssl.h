// MMSSL (Wei et al., 2023), faithful core: modality-aware user/item
// representations aggregated over the interaction graph, adversarially
// aligned with the observed interaction structure, plus cross-modality
// contrastive learning on top of a LightGCN ID backbone.
//
// The adversarial "virtual graph" is built per mini-batch block (B x B), as
// in the reference implementation; the Gumbel-augmented observed block is
// the real sample (Eqs. 22-27 with the first-order Lipschitz substitution
// described in core/discriminator.h).
#ifndef FIRZEN_MODELS_MMSSL_H_
#define FIRZEN_MODELS_MMSSL_H_

#include "src/models/embedding_model.h"

namespace firzen {

class Mmssl : public EmbeddingModel {
 public:
  struct Options {
    Real modal_weight = 0.4;      // weight of modal features in fusion
    Real adv_weight = 0.2;        // lambda_adv
    Real contrastive_weight = 0.05;  // lambda_contr
    Real temperature = 0.5;       // Gumbel temperature tau
    Real aux_weight = 0.1;        // gamma on the auxiliary cosine signal
    Index adv_batch = 128;        // B for the adversarial graph block
    Real d_lr = 1e-3;             // discriminator learning rate
  };

  Mmssl() = default;
  explicit Mmssl(Options options) : options_(options) {}

  std::string Name() const override { return "MMSSL"; }
  void Fit(const Dataset& dataset, const TrainOptions& options) override;

 private:
  Options options_;
};

}  // namespace firzen

#endif  // FIRZEN_MODELS_MMSSL_H_
