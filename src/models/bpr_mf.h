// BPR matrix factorization (Rendle et al., 2009): ID embeddings only,
// pairwise ranking loss. The canonical "strong warm / blind cold" baseline.
#ifndef FIRZEN_MODELS_BPR_MF_H_
#define FIRZEN_MODELS_BPR_MF_H_

#include "src/models/embedding_model.h"

namespace firzen {

class BprMf : public EmbeddingModel {
 public:
  std::string Name() const override { return "BPR"; }
  void Fit(const Dataset& dataset, const TrainOptions& options) override;
};

}  // namespace firzen

#endif  // FIRZEN_MODELS_BPR_MF_H_
