#include "src/models/dropoutnet.h"

#include <cmath>

#include "src/models/mm_common.h"
#include "src/models/sampler.h"
#include "src/tensor/init.h"
#include "src/tensor/optim.h"
#include "src/util/logging.h"

namespace firzen {

void DropoutNet::Fit(const Dataset& dataset, const TrainOptions& options) {
  using namespace ops;  // NOLINT(build/namespaces)
  Rng rng(options.seed);
  const Index d = options.embedding_dim;

  Matrix raw = ConcatModalFeatures(dataset);
  StandardizeColumns(&raw);
  features_ = raw;
  Tensor features = Tensor::Constant(std::move(raw));

  Tensor user_table = XavierVariable(dataset.num_users, d, &rng);
  Tensor item_table = XavierVariable(dataset.num_items, d, &rng);
  Tensor w_user = XavierVariable(d, d, &rng);
  Tensor w_behavior = XavierVariable(d, d, &rng);
  Tensor w_content = XavierVariable(features.cols(), d, &rng);
  Tensor bias_user = ZerosVariable(1, d);
  Tensor bias_item = ZerosVariable(1, d);

  Adam::Options adam_options;
  adam_options.lr = options.lr;
  Adam optimizer(adam_options);
  BprSampler sampler(dataset, options.seed + 1);
  EarlyStopper stopper(options.patience);
  Rng drop_rng(options.seed + 7);

  auto user_tower = [&](const std::vector<Index>& users) {
    return Tanh(AddRowBroadcast(
        MatMul(GatherRows(user_table, users), w_user), bias_user));
  };
  // Item tower with per-row behavior dropout mask: tanh(mask.e_i Wb + f Wc).
  auto item_tower = [&](const std::vector<Index>& items, bool training) {
    Tensor behavior = GatherRows(item_table, items);
    if (training && options_.behavior_dropout > 0.0) {
      Matrix mask(static_cast<Index>(items.size()), 1);
      for (Index r = 0; r < mask.rows(); ++r) {
        mask(r, 0) =
            drop_rng.Bernoulli(options_.behavior_dropout) ? 0.0 : 1.0;
      }
      behavior = RowScale(behavior, Tensor::Constant(std::move(mask)));
    }
    Tensor content = MatMul(GatherRows(features, items), w_content);
    return Tanh(AddRowBroadcast(
        Add(MatMul(behavior, w_behavior), content), bias_item));
  };

  auto snapshot = [&] {
    user_table_ = user_table.value();
    item_table_ = item_table.value();
    w_user_ = w_user.value();
    w_behavior_ = w_behavior.value();
    w_content_ = w_content.value();
    bias_user_ = bias_user.value();
    bias_item_ = bias_item.value();
  };

  auto compute_final = [&] {
    snapshot();
    // Users.
    Matrix hu;
    Gemm(false, false, 1.0, user_table_, w_user_, 0.0, &hu);
    final_user_.Resize(dataset.num_users, d);
    for (Index u = 0; u < dataset.num_users; ++u) {
      for (Index c = 0; c < d; ++c) {
        final_user_(u, c) = std::tanh(hu(u, c) + bias_user_(0, c));
      }
    }
    RecomputeItems(dataset, /*zero_cold_behavior=*/false,
                   /*use_known_links=*/false);
  };

  const int steps = options.steps_per_epoch > 0
                        ? options.steps_per_epoch
                        : static_cast<int>(dataset.train.size() /
                                               options.batch_size +
                                           1);
  std::vector<Index> users;
  std::vector<Index> pos;
  std::vector<Index> neg;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    Real epoch_loss = 0.0;
    for (int step = 0; step < steps; ++step) {
      sampler.SampleBatch(options.batch_size, &users, &pos, &neg);
      Tensor eu = user_tower(users);
      Tensor ep = item_tower(pos, true);
      Tensor en = item_tower(neg, true);
      Tensor loss = Add(
          BprLoss(eu, ep, en),
          BatchL2({GatherRows(user_table, users),
                   GatherRows(item_table, pos)},
                  options.reg, options.batch_size));
      epoch_loss += loss.scalar();
      Backward(loss);
      optimizer.Step({user_table, item_table, w_user, w_behavior, w_content,
                      bias_user, bias_item});
    }
    if ((epoch + 1) % options.eval_every == 0) {
      compute_final();
      const Real mrr =
          ValidationMrr(dataset, final_user_, final_item_, options.pool);
      // No best-state restore here: PrepareColdInference recomputes item
      // towers from the stored tables, so the final state must stay
      // consistent with them.
      const bool stop = stopper.Update(mrr);
      if (options.verbose) {
        Logf(LogLevel::kInfo, "[DropoutNet] epoch %d loss=%.4f val-mrr=%.4f",
             epoch, epoch_loss / steps, mrr);
      }
      if (stop) break;
    }
  }
  compute_final();
}

void DropoutNet::RecomputeItems(const Dataset& dataset,
                                bool zero_cold_behavior,
                                bool use_known_links) {
  const Index d = item_table_.cols();
  Matrix behavior = item_table_;
  if (zero_cold_behavior || use_known_links) {
    // Mean user embedding over revealed links (normal cold), else zeros.
    std::vector<Index> known_count(static_cast<size_t>(dataset.num_items), 0);
    Matrix known_mean(dataset.num_items, d);
    if (use_known_links) {
      for (const Interaction& x : dataset.cold_known) {
        ++known_count[static_cast<size_t>(x.item)];
        for (Index c = 0; c < d; ++c) {
          known_mean(x.item, c) += user_table_(x.user, c);
        }
      }
    }
    for (Index i = 0; i < dataset.num_items; ++i) {
      if (!dataset.is_cold_item[static_cast<size_t>(i)]) continue;
      for (Index c = 0; c < d; ++c) {
        behavior(i, c) =
            known_count[static_cast<size_t>(i)] > 0
                ? known_mean(i, c) /
                      static_cast<Real>(known_count[static_cast<size_t>(i)])
                : 0.0;
      }
    }
  }
  Matrix hb;
  Gemm(false, false, 1.0, behavior, w_behavior_, 0.0, &hb);
  Matrix hc;
  Gemm(false, false, 1.0, features_, w_content_, 0.0, &hc);
  final_item_.Resize(dataset.num_items, d);
  for (Index i = 0; i < dataset.num_items; ++i) {
    for (Index c = 0; c < d; ++c) {
      final_item_(i, c) =
          std::tanh(hb(i, c) + hc(i, c) + bias_item_(0, c));
    }
  }
}

void DropoutNet::PrepareColdInference(const Dataset& dataset) {
  RecomputeItems(dataset, /*zero_cold_behavior=*/true,
                 /*use_known_links=*/false);
}

void DropoutNet::PrepareNormalColdInference(const Dataset& dataset) {
  RecomputeItems(dataset, /*zero_cold_behavior=*/true,
                 /*use_known_links=*/true);
}

}  // namespace firzen
