#include "src/models/mmssl.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/core/discriminator.h"
#include "src/graph/interaction_graph.h"
#include "src/models/lightgcn.h"
#include "src/models/mm_common.h"
#include "src/models/sampler.h"
#include "src/tensor/init.h"
#include "src/tensor/optim.h"
#include "src/util/logging.h"

namespace firzen {

void Mmssl::Fit(const Dataset& dataset, const TrainOptions& options) {
  using namespace ops;  // NOLINT(build/namespaces)
  Rng rng(options.seed);
  const Index num_users = dataset.num_users;
  const Index num_items = dataset.num_items;
  const Index d = options.embedding_dim;

  Tensor joint = XavierVariable(num_users + num_items, d, &rng);
  // Per-modality projections.
  std::vector<Tensor> proj;
  std::vector<Tensor> modal_features;
  for (const Modality& m : dataset.modalities) {
    Matrix raw = m.features;
    StandardizeColumns(&raw);
    proj.push_back(XavierVariable(raw.cols(), d, &rng));
    modal_features.push_back(Tensor::Constant(std::move(raw)));
  }

  auto graph = std::make_shared<CsrMatrix>(BuildNormalizedInteractionGraph(
      dataset.train, num_users, num_items));
  auto u2i = std::make_shared<CsrMatrix>(
      BuildUserToItemGraph(dataset.train, num_users, num_items));
  auto i2u = std::make_shared<CsrMatrix>(
      BuildItemToUserGraph(dataset.train, num_users, num_items));

  const Index adv_b = std::min<Index>(options_.adv_batch, num_users);
  Discriminator::Options d_options;
  Discriminator discriminator(adv_b, d_options, &rng);
  Adam::Options d_adam;
  d_adam.lr = options_.d_lr;
  Adam d_optimizer(d_adam);

  Adam::Options adam_options;
  adam_options.lr = options.lr;
  Adam optimizer(adam_options);
  BprSampler sampler(dataset, options.seed + 1);
  EarlyStopper stopper(options.patience);
  Rng adv_rng(options.seed + 5);

  // Train interaction lookup for building the observed block.
  std::vector<std::unordered_set<Index>> train_sets(
      static_cast<size_t>(num_users));
  for (const Interaction& x : dataset.train) {
    train_sets[static_cast<size_t>(x.user)].insert(x.item);
  }

  // Modality-aware representations over the full graph (Eqs. 7-8 style).
  auto modal_reps = [&](size_t m, Tensor* xu, Tensor* xi) {
    Tensor projected = MatMul(modal_features[m], proj[m]);  // I x d
    *xu = SpMM(u2i, projected);                             // U x d
    *xi = SpMM(i2u, *xu);                                   // I x d
  };

  auto forward = [&](Tensor* user_out, Tensor* item_out,
                     std::vector<Tensor>* xus, std::vector<Tensor>* xis) {
    Tensor backbone = LightGcn::Propagate(graph, joint, options.num_layers);
    std::vector<Index> user_rows(static_cast<size_t>(num_users));
    for (Index u = 0; u < num_users; ++u) user_rows[static_cast<size_t>(u)] = u;
    std::vector<Index> item_rows(static_cast<size_t>(num_items));
    for (Index i = 0; i < num_items; ++i) {
      item_rows[static_cast<size_t>(i)] = num_users + i;
    }
    Tensor hu = GatherRows(backbone, user_rows);
    Tensor hi = GatherRows(backbone, item_rows);
    xus->clear();
    xis->clear();
    for (size_t m = 0; m < modal_features.size(); ++m) {
      Tensor xu;
      Tensor xi;
      modal_reps(m, &xu, &xi);
      xus->push_back(xu);
      xis->push_back(xi);
      hu = Add(hu, Scale(xu, options_.modal_weight));
      hi = Add(hi, Scale(xi, options_.modal_weight));
    }
    *user_out = hu;
    *item_out = hi;
  };

  auto compute_final = [&] {
    Tensor user_out;
    Tensor item_out;
    std::vector<Tensor> xus;
    std::vector<Tensor> xis;
    forward(&user_out, &item_out, &xus, &xis);
    final_user_ = user_out.value();
    final_item_ = item_out.value();
  };

  const int steps = options.steps_per_epoch > 0
                        ? options.steps_per_epoch
                        : static_cast<int>(dataset.train.size() /
                                               options.batch_size +
                                           1);
  std::vector<Index> users;
  std::vector<Index> pos;
  std::vector<Index> neg;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    Real epoch_loss = 0.0;
    for (int step = 0; step < steps; ++step) {
      sampler.SampleBatch(options.batch_size, &users, &pos, &neg);
      Tensor user_out;
      Tensor item_out;
      std::vector<Tensor> xus;
      std::vector<Tensor> xis;
      forward(&user_out, &item_out, &xus, &xis);

      // ---- Adversarial block over sampled users/items ----
      const std::vector<Index> adv_users = sampler.SampleUsers(adv_b);
      const std::vector<Index> adv_items = sampler.SampleWarmItems(adv_b);
      // Observed block with Gumbel augmentation + auxiliary cosine signal
      // (Eq. 23), treated as the "real" sample (constant).
      Matrix real_block(adv_b, adv_b);
      for (Index r = 0; r < adv_b; ++r) {
        const auto& seen = train_sets[static_cast<size_t>(adv_users[r])];
        Real max_v = -1e30;
        std::vector<Real> row(static_cast<size_t>(adv_b));
        for (Index c = 0; c < adv_b; ++c) {
          const Real y = seen.count(adv_items[c]) > 0 ? 1.0 : 0.0;
          row[static_cast<size_t>(c)] =
              (y + adv_rng.Gumbel() * 0.1) / options_.temperature;
          max_v = std::max(max_v, row[static_cast<size_t>(c)]);
        }
        Real denom = 0.0;
        for (Index c = 0; c < adv_b; ++c) {
          row[static_cast<size_t>(c)] =
              std::exp(row[static_cast<size_t>(c)] - max_v);
          denom += row[static_cast<size_t>(c)];
        }
        for (Index c = 0; c < adv_b; ++c) {
          Real phi = 0.0;
          const Real* eu = final_user_.empty()
                               ? nullptr
                               : final_user_.row(adv_users[r]);
          if (eu != nullptr) {
            const Real* ei = final_item_.row(adv_items[c]);
            Real nu = 0.0;
            Real ni = 0.0;
            for (Index k = 0; k < final_user_.cols(); ++k) {
              phi += eu[k] * ei[k];
              nu += eu[k] * eu[k];
              ni += ei[k] * ei[k];
            }
            phi /= std::sqrt(nu * ni) + 1e-12;
          }
          real_block(r, c) = row[static_cast<size_t>(c)] / denom +
                             options_.aux_weight * phi;
        }
      }
      Tensor real = Tensor::Constant(real_block);

      // Fake block from modality features (Eq. 22), one modality per step.
      const size_t m = static_cast<size_t>(step) % modal_features.size();
      Tensor xu_batch = RowL2Normalize(GatherRows(xus[m], adv_users));
      Tensor xi_batch = RowL2Normalize(GatherRows(xis[m], adv_items));
      Tensor fake = MatMul(xu_batch, xi_batch, false, true);  // B x B

      // Discriminator update (fake detached).
      Tensor d_loss = Sub(
          ReduceMean(discriminator.Critic(Detach(fake), &adv_rng, true)),
          ReduceMean(discriminator.Critic(real, &adv_rng, true)));
      Backward(d_loss);
      d_optimizer.Step(discriminator.Params());
      discriminator.ClipWeights();

      // ---- Main objective ----
      std::vector<Index> pos_rows = pos;
      std::vector<Index> neg_rows = neg;
      Tensor eu = GatherRows(user_out, users);
      Tensor ep = GatherRows(item_out, pos_rows);
      Tensor en = GatherRows(item_out, neg_rows);
      Tensor loss = Add(BprLoss(eu, ep, en),
                        BatchL2({GatherRows(joint, users)}, options.reg,
                                options.batch_size));
      // Generator: fool the critic.
      Tensor g_adv = Scale(
          ReduceMean(discriminator.Critic(fake, &adv_rng, true)),
          -options_.adv_weight);
      loss = Add(loss, g_adv);
      // Cross-modality contrast: align modal user reps with fused ones.
      Tensor xu_users = RowL2Normalize(GatherRows(xus[m], users));
      Tensor fu_users = RowL2Normalize(GatherRows(user_out, users));
      Tensor cos = RowDot(xu_users, fu_users);
      loss = Add(loss,
                 Scale(ReduceMean(AddScalar(Scale(cos, -1.0), 1.0)),
                       options_.contrastive_weight));
      epoch_loss += loss.scalar();
      Backward(loss);
      std::vector<Tensor> params{joint};
      for (Tensor& p : proj) params.push_back(p);
      optimizer.Step(params);
      // Drop generator-step gradients accumulated on the critic.
      for (Tensor p : discriminator.Params()) p.ZeroGrad();
    }
    if ((epoch + 1) % options.eval_every == 0) {
      compute_final();
      const Real mrr =
          ValidationMrr(dataset, final_user_, final_item_, options.pool);
      const bool stop = stopper.Update(mrr);
      SnapshotIfImproved(stopper.improved());
      if (options.verbose) {
        Logf(LogLevel::kInfo, "[MMSSL] epoch %d loss=%.4f val-mrr=%.4f",
             epoch, epoch_loss / steps, mrr);
      }
      if (stop) break;
    }
  }
  compute_final();
  RestoreBestSnapshot();
}

}  // namespace firzen
