// Block-streaming scoring API. A Scorer is a lightweight handle minted by
// Recommender::MakeScorer() that produces scores in bounded item panels:
// instead of one dense users x num_items matrix per request — a
// catalog-sized transient — callers stream ItemBlocks (or explicit candidate
// lists) through ScoreBlock/ScoreCandidates and fuse ranking on the fly, so
// peak memory is O(user_batch * block_size) for any catalog size.
//
// Models whose scores are user·item dot products expose a DotProductScorer
// over their final embedding tables (zero-copy Gemm over an item-row slice);
// non-factorized models either implement ScoreBlock natively or fall back to
// the generic FullScoreAdapter.
#ifndef FIRZEN_MODELS_SCORER_H_
#define FIRZEN_MODELS_SCORER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/tensor/matrix.h"
#include "src/util/thread_pool.h"

namespace firzen {

/// Half-open range [begin, end) of item ids.
struct ItemBlock {
  Index begin = 0;
  Index end = 0;

  Index size() const { return end - begin; }
};

/// Streaming scorer handle. Holds whatever per-inference state the model
/// needs (e.g. a projected entity table), so minting one can do one-off work
/// that then amortizes over every block.
///
/// Scorers are NOT thread-safe: they may keep mutable per-batch scratch.
/// Internally they parallelize over the thread pool; callers wanting
/// concurrent scoring mint one Scorer per thread.
class Scorer {
 public:
  virtual ~Scorer();

  /// Total number of scorable items (the catalog size).
  virtual Index num_items() const = 0;

  /// Fills `out` (users.size() x block.size()) with scores of items
  /// [block.begin, block.end) for each user, out(r, j) = score of
  /// users[r] for item block.begin + j.
  virtual void ScoreBlock(const std::vector<Index>& users, ItemBlock block,
                          MatrixView out) const = 0;

  /// Fills `out` (users.size() x candidates.size()) with scores of the
  /// explicitly listed items, out(r, j) = score of users[r] for
  /// candidates[j]. Default: scores the full catalog into a temporary and
  /// gathers — correct for any model, but O(num_items) per call; factorized
  /// scorers override with a zero-materialization gather + Gemm.
  virtual void ScoreCandidates(const std::vector<Index>& users,
                               const std::vector<Index>& candidates,
                               MatrixView out) const;

  /// Legacy full-matrix convenience: resizes `scores` to
  /// users.size() x num_items() and fills it with one catalog-wide block.
  /// Prefer streaming ScoreBlock in new code.
  void ScoreAll(const std::vector<Index>& users, Matrix* scores) const;
};

/// Scorer for models whose score is dot(user_emb[u], item_emb[i]). Holds
/// references to the tables (the owner must outlive the scorer); an item
/// block is a zero-copy row slice of the item table fed to GemmBT. The
/// gathered user batch is cached across consecutive calls with the same
/// users, so streaming a catalog block-by-block gathers each batch once.
class DotProductScorer : public Scorer {
 public:
  /// `user_emb`: num_users x d, `item_emb`: num_items x d. Both must stay
  /// alive and unchanged for the scorer's lifetime.
  DotProductScorer(const Matrix& user_emb, const Matrix& item_emb,
                   ThreadPool* pool = nullptr);

  Index num_items() const override { return item_emb_.rows(); }

  void ScoreBlock(const std::vector<Index>& users, ItemBlock block,
                  MatrixView out) const override;

  void ScoreCandidates(const std::vector<Index>& users,
                       const std::vector<Index>& candidates,
                       MatrixView out) const override;

 private:
  const Matrix& BatchFor(const std::vector<Index>& users) const;

  const Matrix& user_emb_;
  const Matrix& item_emb_;
  ThreadPool* pool_;
  // Per-batch scratch: the gathered user rows and (for ScoreCandidates) the
  // gathered candidate rows. Mutable because scoring is logically const.
  mutable std::vector<Index> cached_users_;
  mutable Matrix user_batch_;
  mutable Matrix candidate_rows_;
};

/// Produces one row of scores per requested user over the full catalog
/// (the legacy Recommender::Score contract).
using FullScoreFn =
    std::function<void(const std::vector<Index>& users, Matrix* scores)>;

/// Generic adapter for models without a factorized or block-native scoring
/// path: evaluates the full score rows for the batch, then copies the
/// requested window out. Peak memory is O(users * num_items) per distinct
/// user batch — the legacy footprint — but consecutive blocks for the same
/// batch reuse the cached rows, so streaming costs one full evaluation.
class FullScoreAdapter : public Scorer {
 public:
  FullScoreAdapter(FullScoreFn score_fn, Index num_items);

  Index num_items() const override { return num_items_; }

  void ScoreBlock(const std::vector<Index>& users, ItemBlock block,
                  MatrixView out) const override;

  void ScoreCandidates(const std::vector<Index>& users,
                       const std::vector<Index>& candidates,
                       MatrixView out) const override;

 private:
  const Matrix& RowsFor(const std::vector<Index>& users) const;

  FullScoreFn score_fn_;
  Index num_items_;
  mutable std::vector<Index> cached_users_;
  mutable Matrix full_rows_;
};

}  // namespace firzen

#endif  // FIRZEN_MODELS_SCORER_H_
