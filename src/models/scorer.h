// Block-streaming scoring API. A Scorer is a lightweight handle minted by
// Recommender::MakeScorer() that produces scores in bounded item panels:
// instead of one dense users x num_items matrix per request — a
// catalog-sized transient — callers stream ItemBlocks (or explicit candidate
// lists) through ScoreBlock/ScoreCandidates and fuse ranking on the fly, so
// peak memory is O(user_batch * block_size) for any catalog size.
//
// Models whose scores are user·item dot products expose a DotProductScorer
// over their final embedding tables (zero-copy Gemm over an item-row slice);
// non-factorized models either implement ScoreBlock natively or fall back to
// the generic FullScoreAdapter.
//
// Thread safety: scorers are logically const and safely shared across
// threads. All mutable per-batch scratch (gathered user rows, cached full
// score rows, per-user relation logits, ...) lives in an explicit
// ScoringArena supplied by the caller — one arena per concurrent stream.
// The arena-less convenience overloads use a per-thread arena, so legacy
// call sites are concurrency-safe without changes. One ServingEngine can
// therefore serve many request threads over a single shared scorer.
#ifndef FIRZEN_MODELS_SCORER_H_
#define FIRZEN_MODELS_SCORER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/tensor/matrix.h"
#include "src/tensor/quantized.h"
#include "src/util/thread_annotations.h"
#include "src/util/thread_pool.h"

namespace firzen {

/// Numeric tier a scorer computes in. kFp32 is the exactly-rounded
/// fma-chain path (the parity/quality oracle); kInt8 scores through the
/// per-row symmetric int8 catalog and GemmBTQuant (src/tensor/quantized.h),
/// trading bounded ranking drift — gated by the Recall@K/NDCG quality ctest
/// (label `quant`) — for a ~4x smaller resident catalog and vectorized
/// integer throughput. Models without a factorized scoring path ignore
/// kInt8 and fall back to fp32 (Recommender::MakeScorer(precision) default).
enum class ScoringPrecision {
  kFp32 = 0,
  kInt8 = 1,
};

/// Stable lowercase name ("fp32", "int8") for flags, logs, and docs.
const char* ScoringPrecisionName(ScoringPrecision precision);

/// Half-open range [begin, end) of item ids.
struct ItemBlock {
  Index begin = 0;
  Index end = 0;

  Index size() const { return end - begin; }
};

/// Mutable per-stream scratch for a Scorer. Owning the scratch here — not in
/// the scorer — is what makes scorers shareable: each concurrent caller
/// passes its own arena, and consecutive calls with the same user batch
/// amortize the gather/projection work through the arena's cache.
///
/// An arena must not be used from two threads at once; everything else is
/// flexible — it may be reused across scorers (the owner tag below
/// invalidates stale caches) and kept alive across calls to amortize
/// allocations. See ArenaPool for a mutex-guarded free list suitable for
/// request-driven reuse.
class ScoringArena {
 public:
  /// Claims the arena for the scorer with the given id (see
  /// Scorer::scorer_id()), clearing the cached-batch key when the previous
  /// user was a different scorer so one scorer never reads another's
  /// scratch. Ids are process-unique and never reused — unlike an owner
  /// *pointer*, a scorer minted at a destroyed scorer's address cannot
  /// inherit its cache. Scorer implementations call this first.
  void BindTo(uint64_t owner_id) {
    if (owner_id_ != owner_id) {
      cached_users.clear();
      owner_id_ = owner_id;
    }
  }

  // Scratch slots. Which ones a scorer uses is an implementation detail;
  // all caching is keyed by `cached_users` under the current owner.
  std::vector<Index> cached_users;  // batch the cached matrices were built for
  Matrix user_batch;                // gathered user rows (DotProductScorer)
  Matrix candidate_rows;            // gathered candidate rows
  Matrix full_rows;                 // cached full score rows (FullScoreAdapter)
  Matrix rel_logits;                // per-user relation logits (KGCN)
  // Transient per-call id-translation buffer (ItemRangeScorer): valid only
  // within one call, never cached across calls.
  std::vector<Index> translated_ids;
  // Int8 scoring scratch (DotProductScorer in kInt8 mode). The quantized
  // user batch is cached under `cached_users` exactly like `user_batch`;
  // the candidate-side buffers are per-call gathers of catalog rows.
  std::vector<int8_t> q_user_codes;    // quantized user rows, padded stride
  std::vector<float> q_user_scales;    // one scale per cached user row
  std::vector<int8_t> q_cand_codes;    // gathered quantized candidate rows
  std::vector<float> q_cand_scales;    // per-candidate scales
  std::vector<int32_t> q_cand_sums;    // per-candidate code sums (VNNI)

 private:
  uint64_t owner_id_ = 0;  // 0 = unbound; scorer ids start at 1
};

/// Mutex-guarded free list of ScoringArenas. Acquire() hands out an RAII
/// lease (recycling a previously released arena when one is free, so its
/// buffers amortize across requests); the lease returns the arena on
/// destruction. Safe for concurrent Acquire/release from any thread.
class ArenaPool {
 public:
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept = default;
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    ScoringArena* get() const { return arena_.get(); }
    ScoringArena* operator->() const { return arena_.get(); }
    ScoringArena& operator*() const { return *arena_; }

   private:
    friend class ArenaPool;
    Lease(ArenaPool* pool, std::unique_ptr<ScoringArena> arena)
        : pool_(pool), arena_(std::move(arena)) {}

    ArenaPool* pool_ = nullptr;
    std::unique_ptr<ScoringArena> arena_;
  };

  ArenaPool() = default;
  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  /// Returns a leased arena: a recycled one when available, else fresh.
  Lease Acquire() FIRZEN_EXCLUDES(mu_);

 private:
  friend class Lease;
  void Release(std::unique_ptr<ScoringArena> arena) FIRZEN_EXCLUDES(mu_);

  Mutex mu_;
  std::vector<std::unique_ptr<ScoringArena>> free_ FIRZEN_GUARDED_BY(mu_);
};

/// Streaming scorer handle. Holds whatever read-only per-inference state the
/// model needs (e.g. a projected entity table), so minting one can do
/// one-off work that then amortizes over every block.
///
/// Scorers are logically const and thread-safe: all mutable per-batch
/// scratch lives in the caller-supplied ScoringArena, so any number of
/// threads may score through one shared Scorer as long as each passes its
/// own arena. The arena-less overloads use a per-thread arena and are
/// likewise safe to call concurrently. Scoring parallelizes internally over
/// the thread pool; concurrent callers interleave on it without blocking
/// each other (per-call completion groups).
class Scorer {
 public:
  Scorer();
  virtual ~Scorer();

  /// Total number of scorable items (the catalog size).
  virtual Index num_items() const = 0;

  /// Fills `out` (users.size() x block.size()) with scores of items
  /// [block.begin, block.end) for each user, out(r, j) = score of
  /// users[r] for item block.begin + j. `arena` holds this call's scratch
  /// and must not be shared with a concurrent call.
  virtual void ScoreBlock(const std::vector<Index>& users, ItemBlock block,
                          MatrixView out, ScoringArena* arena) const = 0;

  /// Fills `out` (users.size() x candidates.size()) with scores of the
  /// explicitly listed items, out(r, j) = score of users[r] for
  /// candidates[j]. Default: scores the full catalog into a temporary and
  /// gathers — correct for any model, but O(num_items) per call; factorized
  /// scorers override with a zero-materialization gather + Gemm.
  virtual void ScoreCandidates(const std::vector<Index>& users,
                               const std::vector<Index>& candidates,
                               MatrixView out, ScoringArena* arena) const;

  /// Arena-less conveniences: score through a per-thread arena. Streaming
  /// loops on one thread still amortize the batch gather; distinct threads
  /// never share scratch.
  void ScoreBlock(const std::vector<Index>& users, ItemBlock block,
                  MatrixView out) const;
  void ScoreCandidates(const std::vector<Index>& users,
                       const std::vector<Index>& candidates,
                       MatrixView out) const;

  /// Legacy full-matrix convenience: resizes `scores` to
  /// users.size() x num_items() and fills it with one catalog-wide block.
  /// Prefer streaming ScoreBlock in new code.
  void ScoreAll(const std::vector<Index>& users, Matrix* scores) const;

 protected:
  /// Process-unique, never-reused id for arena cache keying: pass to
  /// ScoringArena::BindTo before reading or writing cached scratch.
  uint64_t scorer_id() const { return scorer_id_; }

 private:
  const uint64_t scorer_id_;
};

/// Scorer for models whose score is dot(user_emb[u], item_emb[i]). Holds
/// references to the tables (the owner must outlive the scorer); an item
/// block is a zero-copy row slice of the item table fed to GemmBT. The
/// gathered user batch lives in the arena and is cached across consecutive
/// calls with the same users, so streaming a catalog block-by-block gathers
/// each batch once per arena.
///
/// In kInt8 mode the scorer quantizes the item table ONCE at mint time
/// (per-row symmetric int8, src/tensor/quantized.h) and scores blocks
/// through GemmBTQuant; the user batch is quantized per call into the
/// arena, cached under the same users key as the fp32 gather. The fp32
/// table reference is kept either way — it stays the oracle the quant
/// quality gate compares against.
class DotProductScorer : public Scorer {
 public:
  /// `user_emb`: num_users x d, `item_emb`: num_items x d. Both must stay
  /// alive and unchanged for the scorer's lifetime.
  DotProductScorer(const Matrix& user_emb, const Matrix& item_emb,
                   ThreadPool* pool = nullptr,
                   ScoringPrecision precision = ScoringPrecision::kFp32);

  using Scorer::ScoreBlock;
  using Scorer::ScoreCandidates;

  Index num_items() const override { return item_emb_.rows(); }

  void ScoreBlock(const std::vector<Index>& users, ItemBlock block,
                  MatrixView out, ScoringArena* arena) const override;

  void ScoreCandidates(const std::vector<Index>& users,
                       const std::vector<Index>& candidates, MatrixView out,
                       ScoringArena* arena) const override;

  /// The precision this scorer actually computes in.
  ScoringPrecision precision() const { return precision_; }

 private:
  const Matrix& BatchFor(const std::vector<Index>& users,
                         ScoringArena* arena) const;
  void QuantBatchFor(const std::vector<Index>& users,
                     ScoringArena* arena) const;

  const Matrix& user_emb_;
  const Matrix& item_emb_;
  ThreadPool* pool_;
  ScoringPrecision precision_;
  QuantizedMatrix quant_items_;  // built at mint time in kInt8 mode
};

/// Item-range-restricted view of a base scorer: presents the contiguous
/// global item range [item_begin, item_end) as a shard-local catalog of
/// size item_end - item_begin (local item j = global item item_begin + j).
/// This is the per-shard scoring handle behind ShardedServingEngine: one
/// base scorer is minted once, then each catalog shard gets a zero-copy
/// view over its slice, so sibling shards share the mint-time work (entity
/// projections, embedding tables) and only translate coordinates.
///
/// Every call delegates to the base scorer, so per-item scores are
/// bit-identical to scoring the same global items through the base directly
/// — the property the sharded top-K merge relies on. The view is as
/// thread-safe as its base: logically const, scratch in the caller's arena
/// (arena caches key to the BASE scorer, so one arena may be reused across
/// sibling views of the same base without invalidation). The base scorer
/// must outlive the view.
class ItemRangeScorer : public Scorer {
 public:
  /// Requires 0 <= item_begin <= item_end <= base->num_items().
  ItemRangeScorer(const Scorer* base, Index item_begin, Index item_end);

  using Scorer::ScoreBlock;
  using Scorer::ScoreCandidates;

  Index num_items() const override { return item_end_ - item_begin_; }
  Index item_begin() const { return item_begin_; }
  Index item_end() const { return item_end_; }

  /// `block` is in LOCAL coordinates ([0, num_items())); delegates the
  /// translated global range to the base scorer.
  void ScoreBlock(const std::vector<Index>& users, ItemBlock block,
                  MatrixView out, ScoringArena* arena) const override;

  /// `candidates` are LOCAL ids; translated to global for the base.
  void ScoreCandidates(const std::vector<Index>& users,
                       const std::vector<Index>& candidates, MatrixView out,
                       ScoringArena* arena) const override;

 private:
  const Scorer* base_;
  Index item_begin_;
  Index item_end_;
};

/// Produces one row of scores per requested user over the full catalog
/// (the legacy Recommender::Score contract).
using FullScoreFn =
    std::function<void(const std::vector<Index>& users, Matrix* scores)>;

/// Generic adapter for models without a factorized or block-native scoring
/// path: evaluates the full score rows for the batch, then copies the
/// requested window out. Peak memory is O(users * num_items) per distinct
/// user batch — the legacy footprint — but consecutive blocks for the same
/// batch reuse the rows cached in the arena, so streaming costs one full
/// evaluation per arena. The wrapped FullScoreFn must itself be safe to
/// invoke concurrently (pure const scoring is; anything mutating model
/// state is not).
class FullScoreAdapter : public Scorer {
 public:
  FullScoreAdapter(FullScoreFn score_fn, Index num_items);

  using Scorer::ScoreBlock;
  using Scorer::ScoreCandidates;

  Index num_items() const override { return num_items_; }

  void ScoreBlock(const std::vector<Index>& users, ItemBlock block,
                  MatrixView out, ScoringArena* arena) const override;

  void ScoreCandidates(const std::vector<Index>& users,
                       const std::vector<Index>& candidates, MatrixView out,
                       ScoringArena* arena) const override;

 private:
  const Matrix& RowsFor(const std::vector<Index>& users,
                        ScoringArena* arena) const;

  FullScoreFn score_fn_;
  Index num_items_;
};

}  // namespace firzen

#endif  // FIRZEN_MODELS_SCORER_H_
