// SimpleX (Mao et al., 2021): user tower = ID embedding fused with the mean
// of interacted item embeddings; cosine contrastive loss (CCL) with margin
// over multiple negatives.
#ifndef FIRZEN_MODELS_SIMPLEX_H_
#define FIRZEN_MODELS_SIMPLEX_H_

#include "src/models/embedding_model.h"

namespace firzen {

class SimpleX : public EmbeddingModel {
 public:
  struct Options {
    Real fusion_weight = 0.5;   // g: user ID vs aggregated-behavior share
    Real margin = 0.4;          // CCL margin
    Real negative_weight = 0.5; // CCL w
    Index num_negatives = 10;
  };

  SimpleX() = default;
  explicit SimpleX(Options options) : options_(options) {}

  std::string Name() const override { return "SimpleX"; }
  void Fit(const Dataset& dataset, const TrainOptions& options) override;

 private:
  Options options_;
};

}  // namespace firzen

#endif  // FIRZEN_MODELS_SIMPLEX_H_
