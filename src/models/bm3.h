// BM3 (Zhou et al., 2023), faithful core: negative-free bootstrap learning.
// Two dropout-perturbed views of the propagated ID embeddings are aligned
// through a latent predictor against stop-gradient targets, and per-modality
// projections are aligned with the item view. No BPR negatives are used.
#ifndef FIRZEN_MODELS_BM3_H_
#define FIRZEN_MODELS_BM3_H_

#include "src/models/embedding_model.h"

namespace firzen {

class Bm3 : public EmbeddingModel {
 public:
  struct Options {
    Real dropout = 0.3;
    Real modal_weight = 1.0;
  };

  Bm3() = default;
  explicit Bm3(Options options) : options_(options) {}

  std::string Name() const override { return "BM3"; }
  void Fit(const Dataset& dataset, const TrainOptions& options) override;

 private:
  Options options_;
};

}  // namespace firzen

#endif  // FIRZEN_MODELS_BM3_H_
