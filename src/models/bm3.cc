#include "src/models/bm3.h"

#include "src/graph/interaction_graph.h"
#include "src/models/lightgcn.h"
#include "src/models/mm_common.h"
#include "src/models/sampler.h"
#include "src/tensor/init.h"
#include "src/tensor/optim.h"
#include "src/util/logging.h"

namespace firzen {
namespace {

// 1 - cos(a, b) averaged over rows.
Tensor CosineAlignLoss(const Tensor& a, const Tensor& b) {
  using namespace ops;  // NOLINT(build/namespaces)
  Tensor cos = RowDot(RowL2Normalize(a), RowL2Normalize(b));
  return ReduceMean(AddScalar(Scale(cos, -1.0), 1.0));
}

}  // namespace

void Bm3::Fit(const Dataset& dataset, const TrainOptions& options) {
  using namespace ops;  // NOLINT(build/namespaces)
  Rng rng(options.seed);
  const Index num_users = dataset.num_users;
  const Index num_items = dataset.num_items;
  const Index d = options.embedding_dim;

  Tensor joint = XavierVariable(num_users + num_items, d, &rng);
  Tensor predictor = XavierVariable(d, d, &rng);
  Matrix raw = ConcatModalFeatures(dataset);
  StandardizeColumns(&raw);
  Tensor proj = XavierVariable(raw.cols(), d, &rng);
  Tensor features = Tensor::Constant(std::move(raw));

  auto graph = std::make_shared<CsrMatrix>(BuildNormalizedInteractionGraph(
      dataset.train, num_users, num_items));

  Adam::Options adam_options;
  adam_options.lr = options.lr;
  Adam optimizer(adam_options);
  BprSampler sampler(dataset, options.seed + 1);
  EarlyStopper stopper(options.patience);
  Rng drop_rng(options.seed + 3);

  auto compute_final = [&] {
    Matrix propagated = joint.value();
    Matrix current = joint.value();
    Matrix next;
    for (int l = 0; l < options.num_layers; ++l) {
      graph->SpMM(current, &next);
      current = next;
      propagated.Add(current);
    }
    propagated.Scale(1.0 / static_cast<Real>(options.num_layers + 1));
    Matrix modal;
    Gemm(false, false, 1.0, features.value(), proj.value(), 0.0, &modal);
    final_user_.Resize(num_users, d);
    final_item_.Resize(num_items, d);
    for (Index u = 0; u < num_users; ++u) {
      for (Index c = 0; c < d; ++c) final_user_(u, c) = propagated(u, c);
    }
    for (Index i = 0; i < num_items; ++i) {
      for (Index c = 0; c < d; ++c) {
        final_item_(i, c) = propagated(num_users + i, c) + modal(i, c);
      }
    }
  };

  const int steps = options.steps_per_epoch > 0
                        ? options.steps_per_epoch
                        : static_cast<int>(dataset.train.size() /
                                               options.batch_size +
                                           1);
  std::vector<Index> users;
  std::vector<Index> pos;
  std::vector<Index> neg_unused;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    Real epoch_loss = 0.0;
    for (int step = 0; step < steps; ++step) {
      sampler.SampleBatch(options.batch_size, &users, &pos, &neg_unused);
      std::vector<Index> pos_nodes;
      for (Index i : pos) pos_nodes.push_back(num_users + i);

      Tensor propagated =
          LightGcn::Propagate(graph, joint, options.num_layers);
      Tensor hu = GatherRows(propagated, users);
      Tensor hi = GatherRows(propagated, pos_nodes);
      // Online views (dropout) -> predictor; targets are stop-gradient.
      Tensor hu_view = MatMul(Dropout(hu, options_.dropout, &drop_rng),
                              predictor);
      Tensor hi_view = MatMul(Dropout(hi, options_.dropout, &drop_rng),
                              predictor);
      Tensor hu_target = Detach(hu);
      Tensor hi_target = Detach(hi);
      // Graph reconstruction: align user view with positive item target
      // (inter-view) and each view with its own target (intra-view).
      Tensor rec = Add(CosineAlignLoss(hu_view, hi_target),
                       Add(CosineAlignLoss(hu_view, hu_target),
                           CosineAlignLoss(hi_view, hi_target)));
      // Modal alignment.
      Tensor modal = MatMul(GatherRows(features, pos), proj);
      Tensor modal_drop = Dropout(modal, options_.dropout, &drop_rng);
      Tensor align = Add(CosineAlignLoss(modal, hi_target),
                         CosineAlignLoss(modal_drop, Detach(modal)));
      Tensor hu0 = GatherRows(joint, users);
      Tensor hi0 = GatherRows(joint, pos_nodes);
      Tensor loss = Add(Add(rec, Scale(align, options_.modal_weight)),
                        BatchL2({hu0, hi0}, options.reg,
                                options.batch_size));
      epoch_loss += loss.scalar();
      Backward(loss);
      optimizer.Step({joint, predictor, proj});
    }
    if ((epoch + 1) % options.eval_every == 0) {
      compute_final();
      const Real mrr =
          ValidationMrr(dataset, final_user_, final_item_, options.pool);
      const bool stop = stopper.Update(mrr);
      SnapshotIfImproved(stopper.improved());
      if (options.verbose) {
        Logf(LogLevel::kInfo, "[BM3] epoch %d loss=%.4f val-mrr=%.4f", epoch,
             epoch_loss / steps, mrr);
      }
      if (stop) break;
    }
  }
  compute_final();
  RestoreBestSnapshot();
}

}  // namespace firzen
