// BPR triple sampling (user, positive item, negative item) over training
// interactions. Negatives are drawn uniformly from warm items the user has
// not interacted with — strict cold items are never sampled (they do not
// exist at training time).
#ifndef FIRZEN_MODELS_SAMPLER_H_
#define FIRZEN_MODELS_SAMPLER_H_

#include <vector>

#include "src/data/dataset.h"
#include "src/util/rng.h"

namespace firzen {

class BprSampler {
 public:
  BprSampler(const Dataset& dataset, uint64_t seed);

  struct Triple {
    Index user;
    Index pos;
    Index neg;
  };

  /// One (u, i+, i-) triple; user sampled proportional to interaction count
  /// (uniform over training interactions).
  Triple Sample();

  /// Batch of triples into parallel id arrays.
  void SampleBatch(Index batch_size, std::vector<Index>* users,
                   std::vector<Index>* pos, std::vector<Index>* neg);

  /// Uniform batch of distinct-ish users with >= 1 training interaction.
  std::vector<Index> SampleUsers(Index count);

  /// Uniform batch of warm items.
  std::vector<Index> SampleWarmItems(Index count);

  const std::vector<std::vector<Index>>& items_by_user() const {
    return items_by_user_;
  }
  const std::vector<Index>& warm_items() const { return warm_items_; }

 private:
  bool UserHasItem(Index user, Index item) const;

  std::vector<Interaction> train_;
  std::vector<std::vector<Index>> items_by_user_;  // sorted
  std::vector<Index> warm_items_;
  std::vector<Index> active_users_;
  Rng rng_;
};

}  // namespace firzen

#endif  // FIRZEN_MODELS_SAMPLER_H_
