// VBPR (He & McAuley, 2016): BPR extended with a content pathway — item
// score adds a user "visual preference" vector dotted with a learned linear
// projection of the item's raw multi-modal features. The content pathway is
// what gives VBPR respectable strict cold-start numbers in Table II.
#ifndef FIRZEN_MODELS_VBPR_H_
#define FIRZEN_MODELS_VBPR_H_

#include "src/models/embedding_model.h"

namespace firzen {

class Vbpr : public EmbeddingModel {
 public:
  std::string Name() const override { return "VBPR"; }
  void Fit(const Dataset& dataset, const TrainOptions& options) override;
};

}  // namespace firzen

#endif  // FIRZEN_MODELS_VBPR_H_
