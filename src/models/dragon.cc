#include "src/models/dragon.h"

#include "src/graph/cooccurrence_graph.h"
#include "src/graph/interaction_graph.h"
#include "src/graph/knn_graph.h"
#include "src/models/lightgcn.h"
#include "src/models/mm_common.h"
#include "src/models/sampler.h"
#include "src/tensor/init.h"
#include "src/tensor/optim.h"
#include "src/util/logging.h"

namespace firzen {

void Dragon::Fit(const Dataset& dataset, const TrainOptions& options) {
  using namespace ops;  // NOLINT(build/namespaces)
  Rng rng(options.seed);
  const Index num_users = dataset.num_users;
  const Index num_items = dataset.num_items;
  const Index d = options.embedding_dim;

  Tensor joint = XavierVariable(num_users + num_items, d, &rng);
  Matrix raw = ConcatModalFeatures(dataset);
  StandardizeColumns(&raw);
  Tensor proj = XavierVariable(raw.cols(), d, &rng);
  Tensor features = Tensor::Constant(std::move(raw));

  auto inter = std::make_shared<CsrMatrix>(BuildNormalizedInteractionGraph(
      dataset.train, num_users, num_items));
  KnnGraphOptions knn_options;
  knn_options.top_k = options_.knn_k;
  knn_options.candidate_items = dataset.WarmItems();
  knn_options.query_items = knn_options.candidate_items;
  knn_options.pool = options.pool;
  auto item_graph = std::make_shared<CsrMatrix>(
      BuildItemItemGraph(features.value(), knn_options));
  auto user_graph = std::make_shared<CsrMatrix>(
      BuildUserCooccurrenceGraph(dataset.train, num_users, num_items,
                                 options_.user_topk)
          .RowSoftmax());

  Adam::Options adam_options;
  adam_options.lr = options.lr;
  Adam optimizer(adam_options);
  BprSampler sampler(dataset, options.seed + 1);
  EarlyStopper stopper(options.patience);

  // Forward: behavior tower from the bipartite graph; homogeneous towers
  // refine items over the item-item graph and users over the user-user
  // graph, starting from projected modal content.
  auto forward = [&](Tensor* user_out, Tensor* item_out) {
    Tensor behavior = LightGcn::Propagate(inter, joint, options.num_layers);
    Tensor modal = MatMul(features, proj);
    Tensor item_homo = modal;
    for (int l = 0; l < options_.homo_layers; ++l) {
      item_homo = SpMM(item_graph, item_homo);
    }
    // Users: propagate their behavior embedding over co-occurrence.
    std::vector<Index> user_rows(static_cast<size_t>(num_users));
    for (Index u = 0; u < num_users; ++u) {
      user_rows[static_cast<size_t>(u)] = u;
    }
    Tensor behavior_users = GatherRows(behavior, user_rows);
    Tensor user_homo = behavior_users;
    for (int l = 0; l < options_.homo_layers; ++l) {
      user_homo = SpMM(user_graph, user_homo);
    }
    std::vector<Index> item_rows(static_cast<size_t>(num_items));
    for (Index i = 0; i < num_items; ++i) {
      item_rows[static_cast<size_t>(i)] = num_users + i;
    }
    Tensor behavior_items = GatherRows(behavior, item_rows);
    *user_out = Add(behavior_users, user_homo);
    *item_out = Add(behavior_items, item_homo);
  };

  auto compute_final = [&] {
    Tensor user_out;
    Tensor item_out;
    forward(&user_out, &item_out);
    final_user_ = user_out.value();
    final_item_ = item_out.value();
  };

  const int steps = options.steps_per_epoch > 0
                        ? options.steps_per_epoch
                        : static_cast<int>(dataset.train.size() /
                                               options.batch_size +
                                           1);
  std::vector<Index> users;
  std::vector<Index> pos;
  std::vector<Index> neg;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    Real epoch_loss = 0.0;
    for (int step = 0; step < steps; ++step) {
      sampler.SampleBatch(options.batch_size, &users, &pos, &neg);
      Tensor user_out;
      Tensor item_out;
      forward(&user_out, &item_out);
      Tensor eu = GatherRows(user_out, users);
      Tensor ep = GatherRows(item_out, pos);
      Tensor en = GatherRows(item_out, neg);
      Tensor eu0 = GatherRows(joint, users);
      Tensor loss = Add(BprLoss(eu, ep, en),
                        BatchL2({eu0, ep, en}, options.reg,
                                options.batch_size));
      epoch_loss += loss.scalar();
      Backward(loss);
      optimizer.Step({joint, proj});
    }
    if ((epoch + 1) % options.eval_every == 0) {
      compute_final();
      const Real mrr =
          ValidationMrr(dataset, final_user_, final_item_, options.pool);
      const bool stop = stopper.Update(mrr);
      SnapshotIfImproved(stopper.improved());
      if (options.verbose) {
        Logf(LogLevel::kInfo, "[DRAGON] epoch %d loss=%.4f val-mrr=%.4f",
             epoch, epoch_loss / steps, mrr);
      }
      if (stop) break;
    }
  }
  compute_final();
  RestoreBestSnapshot();
}

}  // namespace firzen
