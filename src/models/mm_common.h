// Shared helpers for multi-modal models.
#ifndef FIRZEN_MODELS_MM_COMMON_H_
#define FIRZEN_MODELS_MM_COMMON_H_

#include "src/data/dataset.h"
#include "src/tensor/matrix.h"

namespace firzen {

/// Concatenation [modality_0 | modality_1 | ...] of all per-item feature
/// tables (num_items x sum(dims)).
Matrix ConcatModalFeatures(const Dataset& dataset);

/// Standardizes each column to zero mean / unit variance (in place); keeps
/// raw projections well-conditioned across modalities with different scales.
void StandardizeColumns(Matrix* features);

}  // namespace firzen

#endif  // FIRZEN_MODELS_MM_COMMON_H_
