// KGCN (Wang et al., 2019): user-specific aggregation over each item's
// sampled KG neighborhood — relation attention scores are user-conditioned
// softmax(e_u . e_r). Single propagation layer with the sum aggregator.
// KGNN-LS derives from this class and adds a smoothness regularizer.
#ifndef FIRZEN_MODELS_KGCN_H_
#define FIRZEN_MODELS_KGCN_H_

#include <vector>

#include "src/models/embedding_model.h"

namespace firzen {

class Kgcn : public EmbeddingModel {
 public:
  struct Options {
    Index neighbor_samples = 8;  // S: sampled neighbors per item
  };

  Kgcn() = default;
  explicit Kgcn(Options options) : kgcn_options_(options) {}

  std::string Name() const override { return "KGCN"; }
  void Fit(const Dataset& dataset, const TrainOptions& options) override;

  /// User-conditioned scoring: the item tower depends on the querying user,
  /// so there is no factorized dot-product path. The scorer evaluates item
  /// towers natively per block (the projected entity table is computed once
  /// at mint time), keeping streamed scoring O(users * block) like the
  /// factorized models.
  std::unique_ptr<Scorer> MakeScorer() const override;

  /// The tanh tower has no Gemm hot loop to quantize: every precision falls
  /// back to the native fp32 scorer (the quant quality gate then compares
  /// it against itself and trivially passes).
  std::unique_ptr<Scorer> MakeScorer(ScoringPrecision precision) const override {
    (void)precision;
    return MakeScorer();
  }

  Matrix ItemEmbeddings() const override;

  /// KGCN scores are user-conditioned (not a plain dot product), so there is
  /// no servable static user matrix.
  Matrix UserEmbeddings() const override { return Matrix(); }

 protected:
  /// Label-smoothness style regularization weight (0 disables; KGNN-LS
  /// overrides). Applied as an embedding-smoothness penalty over the
  /// positive items' neighborhoods (DESIGN.md §2 substitution).
  virtual Real SmoothnessWeight() const { return 0.0; }

 private:
  Real ScoreValidationMrr(const Dataset& dataset, ThreadPool* pool) const;

  Options kgcn_options_;
  // Frozen neighbor samples per item (tails and relations, S per item).
  std::vector<Index> neighbor_tails_;
  std::vector<Index> neighbor_rels_;
  Index num_items_ = 0;
  Index dim_ = 0;
  // Trained tables snapshotted for scoring.
  Matrix user_emb_;
  Matrix entity_emb_;
  Matrix relation_emb_;
  Matrix w_;       // d x d sum-aggregator weight
  Matrix bias_;    // 1 x d
};

class KgnnLs : public Kgcn {
 public:
  struct Options {
    Real smoothness_weight = 0.5;
  };

  KgnnLs() = default;
  explicit KgnnLs(Options options)
      : smoothness_weight_(options.smoothness_weight) {}

  std::string Name() const override { return "KGNNLS"; }

 protected:
  Real SmoothnessWeight() const override { return smoothness_weight_; }

 private:
  Real smoothness_weight_ = 0.5;
};

}  // namespace firzen

#endif  // FIRZEN_MODELS_KGCN_H_
