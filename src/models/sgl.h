// SGL (Wu et al., 2021): LightGCN plus self-supervised contrastive learning
// between two edge-dropout augmented graph views. Note the contrast with
// Firzen: SGL *perturbs* the graph during training, Firzen freezes it.
#ifndef FIRZEN_MODELS_SGL_H_
#define FIRZEN_MODELS_SGL_H_

#include "src/models/embedding_model.h"

namespace firzen {

class Sgl : public EmbeddingModel {
 public:
  struct Options {
    Real edge_drop_rate = 0.1;
    // Tuned down vs the reference 0.1: at this library's CPU-scale training
    // budgets a heavier SSL term drowns the ranking signal before early
    // stopping triggers.
    Real ssl_weight = 0.02;
    Real ssl_temperature = 0.2;
  };

  Sgl() = default;
  explicit Sgl(Options options) : options_(options) {}

  std::string Name() const override { return "SGL"; }
  void Fit(const Dataset& dataset, const TrainOptions& options) override;

 private:
  Options options_;
};

}  // namespace firzen

#endif  // FIRZEN_MODELS_SGL_H_
