#include "src/models/registry.h"

#include "src/core/firzen_model.h"
// Known back-edge: harmonic model selection is part of the training-time
// protocol the registry drives (see registry.h).
// firzen-lint: allow(include-layering)
#include "src/eval/harmonic.h"
#include "src/models/bm3.h"
#include "src/models/bpr_mf.h"
#include "src/models/cke.h"
#include "src/models/clcrec.h"
#include "src/models/dragon.h"
#include "src/models/dropoutnet.h"
#include "src/models/kgat.h"
#include "src/models/kgcn.h"
#include "src/models/lightgcn.h"
#include "src/models/mkgat.h"
#include "src/models/mmssl.h"
#include "src/models/sgl.h"
#include "src/models/simplex.h"
#include "src/models/vbpr.h"
#include "src/util/stopwatch.h"

namespace firzen {

std::vector<ModelInfo> AllModels() {
  return {
      {"BPR", "CF"},         {"LightGCN", "CF"},  {"SGL", "CF"},
      {"SimpleX", "CF"},     {"CKE", "KG"},       {"KGAT", "KG"},
      {"KGCN", "KG"},        {"KGNNLS", "KG"},    {"VBPR", "MM"},
      {"DRAGON", "MM"},      {"BM3", "MM"},       {"MMSSL", "MM"},
      {"DropoutNet", "CS"},  {"CLCRec", "CS"},    {"MKGAT", "MM+KG"},
      {"Firzen", "Ours"},
  };
}

std::unique_ptr<Recommender> CreateModel(const std::string& name) {
  if (name == "BPR") return std::make_unique<BprMf>();
  if (name == "LightGCN") return std::make_unique<LightGcn>();
  if (name == "SGL") return std::make_unique<Sgl>();
  if (name == "SimpleX") return std::make_unique<SimpleX>();
  if (name == "CKE") return std::make_unique<Cke>();
  if (name == "KGAT") return std::make_unique<Kgat>();
  if (name == "KGCN") return std::make_unique<Kgcn>();
  if (name == "KGNNLS") return std::make_unique<KgnnLs>();
  if (name == "VBPR") return std::make_unique<Vbpr>();
  if (name == "DRAGON") return std::make_unique<Dragon>();
  if (name == "BM3") return std::make_unique<Bm3>();
  if (name == "MMSSL") return std::make_unique<Mmssl>();
  if (name == "DropoutNet") return std::make_unique<DropoutNet>();
  if (name == "CLCRec") return std::make_unique<ClcRec>();
  if (name == "MKGAT") return std::make_unique<Mkgat>();
  if (name == "Firzen") return std::make_unique<FirzenModel>();
  return nullptr;
}

ProtocolResult RunStrictColdProtocol(Recommender* model,
                                     const Dataset& dataset,
                                     const TrainOptions& options) {
  ProtocolResult result;
  Stopwatch fit_watch;
  model->Fit(dataset, options);
  result.fit_seconds = fit_watch.ElapsedSeconds();

  EvalOptions eval_options;
  eval_options.pool = options.pool;
  // Scorers snapshot inference state at mint time, so re-mint after the
  // cold-inference rebuild.
  result.warm = EvaluateRanking(dataset, dataset.warm_test,
                                EvalSetting::kWarm, *model->MakeScorer(),
                                eval_options);
  model->PrepareColdInference(dataset);
  result.cold = EvaluateRanking(dataset, dataset.cold_test,
                                EvalSetting::kCold, *model->MakeScorer(),
                                eval_options);
  result.hm = HarmonicMean(result.cold.metrics, result.warm.metrics);
  return result;
}

EvalResult RunNormalColdEval(Recommender* model, const Dataset& dataset,
                             const TrainOptions& options) {
  model->PrepareNormalColdInference(dataset);
  EvalOptions eval_options;
  eval_options.pool = options.pool;
  return EvaluateRanking(dataset, dataset.cold_test, EvalSetting::kCold,
                         *model->MakeScorer(), eval_options);
}

}  // namespace firzen
