// DropoutNet (Volkovs et al., 2017): train item towers on a mix of behavior
// and content inputs while randomly dropping the behavior part, so the model
// learns to reconstruct relevance from content alone — exactly the strict
// cold-start situation at inference.
#ifndef FIRZEN_MODELS_DROPOUTNET_H_
#define FIRZEN_MODELS_DROPOUTNET_H_

#include "src/models/embedding_model.h"

namespace firzen {

class DropoutNet : public EmbeddingModel {
 public:
  struct Options {
    Real behavior_dropout = 0.5;  // P(zero the behavior input of a row)
  };

  DropoutNet() = default;
  explicit DropoutNet(Options options) : options_(options) {}

  std::string Name() const override { return "DropoutNet"; }
  void Fit(const Dataset& dataset, const TrainOptions& options) override;

  /// Strict cold: recompute item towers with zeroed behavior inputs for
  /// cold items.
  void PrepareColdInference(const Dataset& dataset) override;

  /// Normal cold (Table VI): cold items get the mean embedding of their
  /// revealed users as the behavior input.
  void PrepareNormalColdInference(const Dataset& dataset) override;

 private:
  void RecomputeItems(const Dataset& dataset, bool zero_cold_behavior,
                      bool use_known_links);

  Options options_;
  Matrix user_table_;
  Matrix item_table_;
  Matrix features_;   // standardized concat modal features
  Matrix w_user_;     // d x d
  Matrix w_behavior_;  // d x d
  Matrix w_content_;   // F x d
  Matrix bias_user_;
  Matrix bias_item_;
};

}  // namespace firzen

#endif  // FIRZEN_MODELS_DROPOUTNET_H_
