#include "src/models/embedding_model.h"

// Known back-edge: training-time validation metrics (see registry.h).
// firzen-lint: allow(include-layering)
#include "src/eval/evaluator.h"
#include "src/util/check.h"

namespace firzen {

std::unique_ptr<Scorer> EmbeddingModel::MakeScorer() const {
  FIRZEN_CHECK(!final_user_.empty());
  FIRZEN_CHECK(!final_item_.empty());
  return std::make_unique<DotProductScorer>(final_user_, final_item_);
}

std::unique_ptr<Scorer> EmbeddingModel::MakeScorer(
    ScoringPrecision precision) const {
  // kFp32 goes through the virtual MakeScorer() so descendants with a
  // native block scorer (KGCN) keep their path; those descendants also
  // override this overload to fall back for kInt8.
  if (precision == ScoringPrecision::kFp32) return MakeScorer();
  FIRZEN_CHECK(!final_user_.empty());
  FIRZEN_CHECK(!final_item_.empty());
  return std::make_unique<DotProductScorer>(final_user_, final_item_,
                                            /*pool=*/nullptr, precision);
}

Tensor EmbeddingModel::BprLoss(const Tensor& user_emb, const Tensor& pos_emb,
                               const Tensor& neg_emb) {
  using namespace ops;  // NOLINT(build/namespaces)
  Tensor diff = Sub(RowDot(user_emb, pos_emb), RowDot(user_emb, neg_emb));
  return Scale(ReduceMean(LogSigmoid(diff)), -1.0);
}

Tensor EmbeddingModel::BatchL2(const std::vector<Tensor>& parts, Real reg,
                               Index batch_size) {
  FIRZEN_CHECK(!parts.empty());
  FIRZEN_CHECK_GT(batch_size, 0);
  using namespace ops;  // NOLINT(build/namespaces)
  Tensor total = SumSquares(parts[0]);
  for (size_t i = 1; i < parts.size(); ++i) {
    total = Add(total, SumSquares(parts[i]));
  }
  return Scale(total, reg / static_cast<Real>(batch_size));
}

Real EmbeddingModel::ValidationMrr(const Dataset& dataset,
                                   const Matrix& user_emb,
                                   const Matrix& item_emb, ThreadPool* pool) {
  if (dataset.warm_val.empty()) return 0.0;
  const DotProductScorer scorer(user_emb, item_emb);
  EvalOptions options;
  options.pool = pool;
  const EvalResult result = EvaluateRanking(dataset, dataset.warm_val,
                                            EvalSetting::kWarm, scorer,
                                            options);
  return result.metrics.mrr;
}

void EmbeddingModel::SnapshotIfImproved(bool improved) {
  if (!improved) return;
  best_user_ = final_user_;
  best_item_ = final_item_;
  has_snapshot_ = true;
}

void EmbeddingModel::RestoreBestSnapshot() {
  if (!has_snapshot_) return;
  final_user_ = best_user_;
  final_item_ = best_item_;
}

}  // namespace firzen
