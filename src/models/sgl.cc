#include "src/models/sgl.h"

#include "src/graph/interaction_graph.h"
#include "src/models/lightgcn.h"
#include "src/models/sampler.h"
#include "src/tensor/init.h"
#include "src/tensor/optim.h"
#include "src/util/logging.h"

namespace firzen {
namespace {

// InfoNCE between two views of the same node batch (rows aligned).
Tensor InfoNce(const Tensor& view_a, const Tensor& view_b, Real temperature) {
  using namespace ops;  // NOLINT(build/namespaces)
  Tensor a = RowL2Normalize(view_a);
  Tensor b = RowL2Normalize(view_b);
  Tensor positives = Scale(RowDot(a, b), 1.0 / temperature);  // B x 1
  Tensor logits = Scale(MatMul(a, b, false, true), 1.0 / temperature);
  // log-sum-exp per row via RowSoftmax-free formulation:
  // lse_r = log(sum_j exp(l_rj)). Stable enough at temperature >= 0.1 with
  // normalized embeddings (|l| <= 1/temp).
  Tensor lse = Log(RowSum(Exp(logits)));
  return ReduceMean(Sub(lse, positives));
}

}  // namespace

void Sgl::Fit(const Dataset& dataset, const TrainOptions& options) {
  using namespace ops;  // NOLINT(build/namespaces)
  Rng rng(options.seed);
  const Index num_users = dataset.num_users;
  const Index num_items = dataset.num_items;
  Tensor table =
      XavierVariable(num_users + num_items, options.embedding_dim, &rng);

  auto graph = std::make_shared<CsrMatrix>(BuildNormalizedInteractionGraph(
      dataset.train, num_users, num_items));

  Adam::Options adam_options;
  adam_options.lr = options.lr;
  Adam optimizer(adam_options);
  BprSampler sampler(dataset, options.seed + 1);
  EarlyStopper stopper(options.patience);

  const int steps = options.steps_per_epoch > 0
                        ? options.steps_per_epoch
                        : static_cast<int>(dataset.train.size() /
                                               options.batch_size +
                                           1);
  auto compute_final = [&] {
    Matrix propagated = table.value();
    Matrix current = table.value();
    Matrix next;
    for (int l = 0; l < options.num_layers; ++l) {
      graph->SpMM(current, &next);
      current = next;
      propagated.Add(current);
    }
    propagated.Scale(1.0 / static_cast<Real>(options.num_layers + 1));
    final_user_.Resize(num_users, propagated.cols());
    final_item_.Resize(num_items, propagated.cols());
    for (Index u = 0; u < num_users; ++u) {
      for (Index c = 0; c < propagated.cols(); ++c) {
        final_user_(u, c) = propagated(u, c);
      }
    }
    for (Index i = 0; i < num_items; ++i) {
      for (Index c = 0; c < propagated.cols(); ++c) {
        final_item_(i, c) = propagated(num_users + i, c);
      }
    }
  };

  std::vector<Index> users;
  std::vector<Index> pos;
  std::vector<Index> neg;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Two fresh augmented views per epoch (edge dropout).
    Rng view_rng = rng.Fork();
    auto view1 = std::make_shared<CsrMatrix>(BuildDroppedInteractionGraph(
        dataset.train, num_users, num_items, options_.edge_drop_rate,
        &view_rng));
    auto view2 = std::make_shared<CsrMatrix>(BuildDroppedInteractionGraph(
        dataset.train, num_users, num_items, options_.edge_drop_rate,
        &view_rng));
    Real epoch_loss = 0.0;
    for (int step = 0; step < steps; ++step) {
      sampler.SampleBatch(options.batch_size, &users, &pos, &neg);
      std::vector<Index> pos_nodes;
      std::vector<Index> neg_nodes;
      for (Index i : pos) pos_nodes.push_back(num_users + i);
      for (Index i : neg) neg_nodes.push_back(num_users + i);

      Tensor main = LightGcn::Propagate(graph, table, options.num_layers);
      Tensor eu = GatherRows(main, users);
      Tensor ep = GatherRows(main, pos_nodes);
      Tensor en = GatherRows(main, neg_nodes);
      Tensor loss = Add(BprLoss(eu, ep, en),
                        BatchL2({eu, ep, en}, options.reg,
                                options.batch_size));

      Tensor aug1 = LightGcn::Propagate(view1, table, options.num_layers);
      Tensor aug2 = LightGcn::Propagate(view2, table, options.num_layers);
      Tensor ssl_users = InfoNce(GatherRows(aug1, users),
                                 GatherRows(aug2, users),
                                 options_.ssl_temperature);
      Tensor ssl_items = InfoNce(GatherRows(aug1, pos_nodes),
                                 GatherRows(aug2, pos_nodes),
                                 options_.ssl_temperature);
      loss = Add(loss,
                 Scale(Add(ssl_users, ssl_items), options_.ssl_weight));
      epoch_loss += loss.scalar();
      Backward(loss);
      optimizer.Step({table});
    }
    if ((epoch + 1) % options.eval_every == 0) {
      compute_final();
      const Real mrr =
          ValidationMrr(dataset, final_user_, final_item_, options.pool);
      const bool stop = stopper.Update(mrr);
      SnapshotIfImproved(stopper.improved());
      if (options.verbose) {
        Logf(LogLevel::kInfo, "[SGL] epoch %d loss=%.4f val-mrr=%.4f", epoch,
             epoch_loss / steps, mrr);
      }
      if (stop) break;
    }
  }
  compute_final();
  RestoreBestSnapshot();
}

}  // namespace firzen
