// Shared base for models that score via a dot product of final user/item
// embedding matrices, plus common training-loop helpers (BPR loss, batch L2
// regularization, quick validation for early stopping).
#ifndef FIRZEN_MODELS_EMBEDDING_MODEL_H_
#define FIRZEN_MODELS_EMBEDDING_MODEL_H_

#include <vector>

#include "src/models/recommender.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"

namespace firzen {

class EmbeddingModel : public Recommender {
 public:
  /// Streaming dot-product scorer over the final tables: an item block is a
  /// zero-copy row slice of final_item_ fed to GemmBT. The model must
  /// outlive the scorer.
  std::unique_ptr<Scorer> MakeScorer() const override;

  /// kInt8 mints a DotProductScorer over a once-quantized final_item_
  /// table (see docs/quantization.md); kFp32 is MakeScorer().
  std::unique_ptr<Scorer> MakeScorer(ScoringPrecision precision) const override;

  Matrix ItemEmbeddings() const override { return final_item_; }

  Matrix UserEmbeddings() const override { return final_user_; }

 protected:
  /// Mean BPR loss over a batch: -mean(log sigmoid(s+ - s-)) (Eq. 33).
  static Tensor BprLoss(const Tensor& user_emb, const Tensor& pos_emb,
                        const Tensor& neg_emb);

  /// reg/batch * sum of squared norms of the given batch tensors.
  static Tensor BatchL2(const std::vector<Tensor>& parts, Real reg,
                        Index batch_size);

  /// Warm-validation MRR@20 of the current final embeddings, used as the
  /// early-stopping signal.
  static Real ValidationMrr(const Dataset& dataset, const Matrix& user_emb,
                            const Matrix& item_emb, ThreadPool* pool);

  /// Keeps the best-so-far snapshot according to early stopping.
  void SnapshotIfImproved(bool improved);
  void RestoreBestSnapshot();

  Matrix final_user_;  // num_users x d
  Matrix final_item_;  // num_items x d

 private:
  Matrix best_user_;
  Matrix best_item_;
  bool has_snapshot_ = false;
};

}  // namespace firzen

#endif  // FIRZEN_MODELS_EMBEDDING_MODEL_H_
