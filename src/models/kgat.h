// KGAT (Wang et al., 2019): attentive multi-layer propagation over the
// collaborative knowledge graph with the bi-interaction aggregator, trained
// jointly with a TransR objective. Attention coefficients are recomputed
// once per epoch outside the tape, as in the reference implementation.
//
// Cold-start behaviour: strict cold items still carry KG edges (brand,
// category, features), so propagation reaches them — this is why KGAT is the
// strongest cold baseline in the paper's Table II.
#ifndef FIRZEN_MODELS_KGAT_H_
#define FIRZEN_MODELS_KGAT_H_

#include <memory>
#include <vector>

#include "src/graph/collaborative_kg.h"
#include "src/models/embedding_model.h"
#include "src/models/kg_common.h"

namespace firzen {

class Kgat : public EmbeddingModel {
 public:
  std::string Name() const override { return "KGAT"; }
  void Fit(const Dataset& dataset, const TrainOptions& options) override;
  void PrepareNormalColdInference(const Dataset& dataset) override;

 protected:
  /// Hook for MKGAT: returns the KG to build the CKG from (possibly with
  /// extra multimodal entities) and may seed extra entity rows.
  virtual KnowledgeGraph AugmentKg(const Dataset& dataset) {
    return dataset.kg;
  }

  /// Hook for MKGAT: initial embedding rows for augmented entities.
  virtual void SeedEntityRows(const Dataset& dataset, Matrix* entity_init) {
    (void)dataset;
    (void)entity_init;
  }

 private:
  Tensor PropagateAll(const std::shared_ptr<const CsrMatrix>& attention);
  void ComputeFinal(const CollaborativeKg& ckg,
                    const std::shared_ptr<const CsrMatrix>& attention);

  KgEmbeddings kg_;
  std::vector<Tensor> w1_;
  std::vector<Tensor> w2_;
  int num_layers_ = 2;
};

}  // namespace firzen

#endif  // FIRZEN_MODELS_KGAT_H_
