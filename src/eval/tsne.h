// Exact t-SNE (van der Maaten & Hinton, 2008) for the Fig. 8 embedding
// visualization, plus quantitative cold/warm mixing statistics that turn the
// figure's visual claim into a measurable number.
#ifndef FIRZEN_EVAL_TSNE_H_
#define FIRZEN_EVAL_TSNE_H_

#include <vector>

#include "src/tensor/matrix.h"
#include "src/util/rng.h"

namespace firzen {

struct TsneOptions {
  Real perplexity = 30.0;
  int iterations = 300;
  Real learning_rate = 100.0;
  Real momentum = 0.8;
  Real early_exaggeration = 12.0;
  int exaggeration_iters = 80;
  uint64_t seed = 13;
};

/// Embeds the rows of `x` (n x d) into n x 2 via exact t-SNE. O(n^2) per
/// iteration; intended for n <= ~1000 samples.
Matrix TsneEmbed(const Matrix& x, const TsneOptions& options = {});

/// Distribution statistics between cold and warm item embeddings.
struct MixingStats {
  /// Mean fraction of each cold item's k nearest neighbours (cosine, in the
  /// original space) that are WARM. 1.0 = perfectly mixed into the warm
  /// manifold; 0.0 = cold items form an isolated cluster (the LightGCN
  /// failure mode in Fig. 8a).
  Real cold_warm_knn_mix = 0.0;
  /// Distance between cold and warm centroids, normalized by the mean warm
  /// pairwise distance. Smaller = distributions overlap more.
  Real centroid_distance_ratio = 0.0;
};

/// Computes MixingStats over item embeddings with the given cold labels.
MixingStats ComputeMixingStats(const Matrix& embeddings,
                               const std::vector<bool>& is_cold, Index knn_k);

}  // namespace firzen

#endif  // FIRZEN_EVAL_TSNE_H_
