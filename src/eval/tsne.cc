#include "src/eval/tsne.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/ranking.h"

namespace firzen {
namespace {

// Pairwise squared Euclidean distances.
Matrix SquaredDistances(const Matrix& x) {
  const Index n = x.rows();
  const Index d = x.cols();
  Matrix dist(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = i + 1; j < n; ++j) {
      Real acc = 0.0;
      const Real* a = x.row(i);
      const Real* b = x.row(j);
      for (Index c = 0; c < d; ++c) {
        const Real diff = a[c] - b[c];
        acc += diff * diff;
      }
      dist(i, j) = acc;
      dist(j, i) = acc;
    }
  }
  return dist;
}

// Binary-searches the Gaussian bandwidth of row i to match log(perplexity),
// then writes conditional probabilities p_{j|i}.
void RowConditionals(const Matrix& dist, Index i, Real target_entropy,
                     Matrix* p) {
  const Index n = dist.rows();
  Real beta = 1.0;
  Real beta_lo = 0.0;
  Real beta_hi = 1e30;
  for (int iter = 0; iter < 64; ++iter) {
    Real sum = 0.0;
    Real weighted = 0.0;
    for (Index j = 0; j < n; ++j) {
      if (j == i) continue;
      const Real w = std::exp(-beta * dist(i, j));
      sum += w;
      weighted += w * dist(i, j);
    }
    if (sum <= 1e-300) {
      beta_hi = beta;
      beta = (beta_lo + beta) / 2.0;
      continue;
    }
    const Real entropy = std::log(sum) + beta * weighted / sum;
    const Real diff = entropy - target_entropy;
    if (std::abs(diff) < 1e-5) break;
    if (diff > 0) {
      beta_lo = beta;
      beta = beta_hi > 1e29 ? beta * 2.0 : (beta + beta_hi) / 2.0;
    } else {
      beta_hi = beta;
      beta = (beta + beta_lo) / 2.0;
    }
  }
  Real sum = 0.0;
  for (Index j = 0; j < n; ++j) {
    if (j == i) continue;
    (*p)(i, j) = std::exp(-beta * dist(i, j));
    sum += (*p)(i, j);
  }
  if (sum <= 1e-300) sum = 1e-300;
  for (Index j = 0; j < n; ++j) {
    if (j != i) (*p)(i, j) /= sum;
  }
}

}  // namespace

Matrix TsneEmbed(const Matrix& x, const TsneOptions& options) {
  const Index n = x.rows();
  FIRZEN_CHECK_GT(n, 2);
  const Matrix dist = SquaredDistances(x);

  // Symmetrized joint probabilities.
  Matrix p(n, n);
  const Real target_entropy =
      std::log(std::min<Real>(options.perplexity, static_cast<Real>(n - 1)));
  for (Index i = 0; i < n; ++i) RowConditionals(dist, i, target_entropy, &p);
  Matrix joint(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      joint(i, j) =
          std::max((p(i, j) + p(j, i)) / (2.0 * static_cast<Real>(n)), 1e-12);
    }
  }

  Rng rng(options.seed);
  Matrix y(n, 2);
  y.FillNormal(&rng, 1e-2);
  Matrix velocity(n, 2);
  Matrix grad(n, 2);
  Matrix q_num(n, n);

  for (int iter = 0; iter < options.iterations; ++iter) {
    const Real exaggeration =
        iter < options.exaggeration_iters ? options.early_exaggeration : 1.0;
    // Student-t numerators and normalizer.
    Real q_sum = 0.0;
    for (Index i = 0; i < n; ++i) {
      for (Index j = i + 1; j < n; ++j) {
        const Real dy0 = y(i, 0) - y(j, 0);
        const Real dy1 = y(i, 1) - y(j, 1);
        const Real num = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
        q_num(i, j) = num;
        q_num(j, i) = num;
        q_sum += 2.0 * num;
      }
    }
    q_sum = std::max(q_sum, 1e-12);

    grad.Zero();
    for (Index i = 0; i < n; ++i) {
      for (Index j = 0; j < n; ++j) {
        if (i == j) continue;
        const Real q = std::max(q_num(i, j) / q_sum, 1e-12);
        const Real coeff =
            4.0 * (exaggeration * joint(i, j) - q) * q_num(i, j);
        grad(i, 0) += coeff * (y(i, 0) - y(j, 0));
        grad(i, 1) += coeff * (y(i, 1) - y(j, 1));
      }
    }
    for (Index i = 0; i < n; ++i) {
      for (Index c = 0; c < 2; ++c) {
        velocity(i, c) = options.momentum * velocity(i, c) -
                         options.learning_rate * grad(i, c);
        y(i, c) += velocity(i, c);
      }
    }
  }
  return y;
}

MixingStats ComputeMixingStats(const Matrix& embeddings,
                               const std::vector<bool>& is_cold, Index knn_k) {
  const Index n = embeddings.rows();
  FIRZEN_CHECK_EQ(static_cast<Index>(is_cold.size()), n);
  FIRZEN_CHECK_GT(knn_k, 0);
  MixingStats stats;

  // Cosine similarity on L2-normalized rows.
  Matrix norm = embeddings;
  for (Index r = 0; r < n; ++r) {
    const Real rn = norm.RowNorm(r);
    if (rn <= 1e-12) continue;
    Real* row = norm.row(r);
    for (Index c = 0; c < norm.cols(); ++c) row[c] /= rn;
  }

  Index cold_count = 0;
  Real mix_total = 0.0;
  std::vector<ScoredItem> scored;
  for (Index i = 0; i < n; ++i) {
    if (!is_cold[static_cast<size_t>(i)]) continue;
    ++cold_count;
    scored.clear();
    for (Index j = 0; j < n; ++j) {
      if (j == i) continue;
      Real sim = 0.0;
      for (Index c = 0; c < norm.cols(); ++c) sim += norm(i, c) * norm(j, c);
      scored.push_back({j, sim});
    }
    const size_t keep =
        std::min<size_t>(static_cast<size_t>(knn_k), scored.size());
    // RanksBefore: similarity ties must break by item id, or the reported
    // neighbor mix depends on the sort implementation.
    std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                      RanksBefore);
    Index warm_neighbors = 0;
    for (size_t j = 0; j < keep; ++j) {
      if (!is_cold[static_cast<size_t>(scored[j].item)]) ++warm_neighbors;
    }
    mix_total += static_cast<Real>(warm_neighbors) / static_cast<Real>(keep);
  }
  if (cold_count > 0) {
    stats.cold_warm_knn_mix = mix_total / static_cast<Real>(cold_count);
  }

  // Centroid distance normalized by mean warm pairwise distance.
  const Index d = embeddings.cols();
  Matrix cold_centroid(1, d);
  Matrix warm_centroid(1, d);
  Index warm_count = 0;
  for (Index i = 0; i < n; ++i) {
    if (is_cold[static_cast<size_t>(i)]) {
      for (Index c = 0; c < d; ++c) cold_centroid(0, c) += embeddings(i, c);
    } else {
      ++warm_count;
      for (Index c = 0; c < d; ++c) warm_centroid(0, c) += embeddings(i, c);
    }
  }
  if (cold_count > 0 && warm_count > 1) {
    cold_centroid.Scale(1.0 / static_cast<Real>(cold_count));
    warm_centroid.Scale(1.0 / static_cast<Real>(warm_count));
    Real centroid_dist = 0.0;
    for (Index c = 0; c < d; ++c) {
      const Real diff = cold_centroid(0, c) - warm_centroid(0, c);
      centroid_dist += diff * diff;
    }
    centroid_dist = std::sqrt(centroid_dist);
    // Sampled mean warm pairwise distance.
    Real warm_pairwise = 0.0;
    Index pairs = 0;
    for (Index i = 0; i < n && pairs < 4000; ++i) {
      if (is_cold[static_cast<size_t>(i)]) continue;
      for (Index j = i + 1; j < n && pairs < 4000; ++j) {
        if (is_cold[static_cast<size_t>(j)]) continue;
        Real acc = 0.0;
        for (Index c = 0; c < d; ++c) {
          const Real diff = embeddings(i, c) - embeddings(j, c);
          acc += diff * diff;
        }
        warm_pairwise += std::sqrt(acc);
        ++pairs;
      }
    }
    if (pairs > 0 && warm_pairwise > 0.0) {
      stats.centroid_distance_ratio =
          centroid_dist / (warm_pairwise / static_cast<Real>(pairs));
    }
  }
  return stats;
}

}  // namespace firzen
