#include "src/eval/serving.h"

#include <algorithm>

#include "src/util/check.h"

namespace firzen {

ServingIndex::ServingIndex(const Recommender* model, const Dataset& dataset)
    : model_(model),
      num_items_(dataset.num_items),
      seen_(dataset.TrainItemsByUser()) {
  FIRZEN_CHECK(model != nullptr);
}

std::vector<Recommendation> ServingIndex::TopK(
    Index user, Index k, const std::vector<Index>& candidates) const {
  return TopKBatch({user}, k, candidates)[0];
}

std::vector<std::vector<Recommendation>> ServingIndex::TopKBatch(
    const std::vector<Index>& users, Index k,
    const std::vector<Index>& candidates) const {
  FIRZEN_CHECK_GT(k, 0);
  Matrix scores;
  model_->Score(users, &scores);
  FIRZEN_CHECK_EQ(scores.cols(), num_items_);

  std::vector<std::vector<Recommendation>> results;
  results.reserve(users.size());
  std::vector<Index> pool;
  for (size_t r = 0; r < users.size(); ++r) {
    const Index user = users[r];
    const auto& exclude = seen_[static_cast<size_t>(user)];
    pool.clear();
    if (candidates.empty()) {
      for (Index i = 0; i < num_items_; ++i) pool.push_back(i);
    } else {
      pool = candidates;
    }
    std::vector<Recommendation> ranked;
    ranked.reserve(pool.size());
    for (Index item : pool) {
      FIRZEN_CHECK_LT(item, num_items_);
      if (std::binary_search(exclude.begin(), exclude.end(), item)) continue;
      ranked.push_back({item, scores(static_cast<Index>(r), item)});
    }
    const size_t keep = std::min<size_t>(static_cast<size_t>(k),
                                         ranked.size());
    std::partial_sort(ranked.begin(), ranked.begin() + keep, ranked.end(),
                      [](const Recommendation& a, const Recommendation& b) {
                        return a.score != b.score ? a.score > b.score
                                                  : a.item < b.item;
                      });
    ranked.resize(keep);
    results.push_back(std::move(ranked));
  }
  return results;
}

}  // namespace firzen
