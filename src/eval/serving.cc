#include "src/eval/serving.h"

#include <algorithm>
#include <utility>

#include "src/eval/topk.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace firzen {

namespace {

// Per-request ranking state for the fused stream: the bounded heap plus the
// resolved exclusion list (sorted, for binary_search).
struct RequestState {
  explicit RequestState(Index k) : heap(k) {}

  TopKHeap heap;
  const std::vector<Index>* exclude = nullptr;  // sorted, may be empty
  std::vector<Index> custom_sorted;             // backing store for kCustom
};

bool Excluded(const RequestState& state, Index item) {
  return state.exclude != nullptr &&
         std::binary_search(state.exclude->begin(), state.exclude->end(),
                            item);
}

std::unique_ptr<Scorer> MintScorer(const Recommender* model) {
  FIRZEN_CHECK(model != nullptr);
  return model->MakeScorer();
}

}  // namespace

ServingEngine::ServingEngine(const Recommender* model, const Dataset& dataset,
                             ServingEngineOptions options)
    : ServingEngine(MintScorer(model), dataset, options) {}

ServingEngine::ServingEngine(std::unique_ptr<Scorer> scorer,
                             const Dataset& dataset,
                             ServingEngineOptions options)
    : scorer_(std::move(scorer)),
      num_items_(dataset.num_items),
      seen_(dataset.TrainItemsByUser()),
      is_cold_(dataset.is_cold_item),
      options_(options) {
  FIRZEN_CHECK(scorer_ != nullptr);
  FIRZEN_CHECK_GT(options_.item_block, 0);
  if (num_items_ == 0) num_items_ = scorer_->num_items();
  FIRZEN_CHECK_EQ(scorer_->num_items(), num_items_);
  if (is_cold_.empty()) {
    is_cold_.assign(static_cast<size_t>(num_items_), false);
  }
  FIRZEN_CHECK_EQ(static_cast<Index>(is_cold_.size()), num_items_);
}

RecResponse ServingEngine::Recommend(const RecRequest& request) const {
  return RecommendBatch({request})[0];
}

std::vector<RecResponse> ServingEngine::RecommendBatch(
    const std::vector<RecRequest>& requests) const {
  std::vector<RecResponse> responses(requests.size());
  if (requests.empty()) return responses;

  std::vector<RequestState> states;
  // Reserve up front: states[i].exclude may point at states[i].custom_sorted,
  // so the elements must never relocate.
  states.reserve(requests.size());
  for (const RecRequest& request : requests) {
    FIRZEN_CHECK_GT(request.k, 0);
    FIRZEN_CHECK_GE(request.user, 0);
    for (Index item : request.candidates) {
      FIRZEN_CHECK_GE(item, 0);
      FIRZEN_CHECK_LT(item, num_items_);
    }
    states.emplace_back(request.k);
    RequestState& state = states.back();
    switch (request.exclusion) {
      case ExclusionPolicy::kTrainSeen:
        if (request.user < static_cast<Index>(seen_.size())) {
          state.exclude = &seen_[static_cast<size_t>(request.user)];
        }
        break;
      case ExclusionPolicy::kCustom:
        state.custom_sorted = request.exclude;
        std::sort(state.custom_sorted.begin(), state.custom_sorted.end());
        state.exclude = &state.custom_sorted;
        break;
      case ExclusionPolicy::kNone:
        break;
    }
  }

  // Requests over the full catalog share one fused score-and-rank stream;
  // explicit candidate pools are scored per request in bounded chunks.
  std::vector<size_t> streamed;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].candidates.empty()) streamed.push_back(i);
  }

  if (!streamed.empty()) {
    std::vector<Index> users;
    users.reserve(streamed.size());
    for (size_t i : streamed) users.push_back(requests[i].user);
    Matrix panel;  // streamed.size() x item_block, reused per block
    for (Index block_begin = 0; block_begin < num_items_;
         block_begin += options_.item_block) {
      const ItemBlock block{
          block_begin,
          std::min(block_begin + options_.item_block, num_items_)};
      panel.ResizeUninitialized(static_cast<Index>(users.size()),
                                block.size());
      scorer_->ScoreBlock(users, block, MatrixView(&panel));
      // Requests are independent: each shard feeds disjoint heaps.
      ParallelFor(
          options_.pool, static_cast<Index>(streamed.size()),
          [&](Index begin, Index end) {
            for (Index r = begin; r < end; ++r) {
              const RecRequest& request = requests[streamed[
                  static_cast<size_t>(r)]];
              RequestState& state = states[streamed[static_cast<size_t>(r)]];
              const Real* row = panel.row(r);
              for (Index item = block.begin; item < block.end; ++item) {
                if (request.cold_only &&
                    !is_cold_[static_cast<size_t>(item)]) {
                  continue;
                }
                if (Excluded(state, item)) continue;
                state.heap.Push(item, row[item - block.begin]);
              }
            }
          },
          /*min_shard_size=*/8);
    }
  }

  // Explicit candidate pools, chunked so peak memory stays bounded.
  // Consecutive requests sharing an equal pool (exactly what the TopKBatch
  // shim emits) score as one user batch, keeping the batched Gemm.
  std::vector<size_t> explicit_idx;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!requests[i].candidates.empty()) explicit_idx.push_back(i);
  }
  Matrix chunk_scores;
  std::vector<Index> chunk;
  for (size_t g0 = 0; g0 < explicit_idx.size();) {
    const std::vector<Index>& pool_items =
        requests[explicit_idx[g0]].candidates;
    size_t g1 = g0 + 1;
    while (g1 < explicit_idx.size() &&
           requests[explicit_idx[g1]].candidates == pool_items) {
      ++g1;
    }
    std::vector<Index> group_users;
    group_users.reserve(g1 - g0);
    for (size_t g = g0; g < g1; ++g) {
      group_users.push_back(requests[explicit_idx[g]].user);
    }
    for (size_t begin = 0; begin < pool_items.size();
         begin += static_cast<size_t>(options_.item_block)) {
      const size_t end =
          std::min(begin + static_cast<size_t>(options_.item_block),
                   pool_items.size());
      chunk.assign(pool_items.begin() + begin, pool_items.begin() + end);
      chunk_scores.ResizeUninitialized(static_cast<Index>(group_users.size()),
                                       static_cast<Index>(chunk.size()));
      scorer_->ScoreCandidates(group_users, chunk, MatrixView(&chunk_scores));
      ParallelFor(
          options_.pool, static_cast<Index>(g1 - g0),
          [&](Index row_begin, Index row_end) {
            for (Index r = row_begin; r < row_end; ++r) {
              const size_t idx = explicit_idx[g0 + static_cast<size_t>(r)];
              const RecRequest& request = requests[idx];
              RequestState& state = states[idx];
              const Real* row = chunk_scores.row(r);
              for (size_t j = 0; j < chunk.size(); ++j) {
                const Index item = chunk[j];
                if (request.cold_only &&
                    !is_cold_[static_cast<size_t>(item)]) {
                  continue;
                }
                if (Excluded(state, item)) continue;
                state.heap.Push(item, row[j]);
              }
            }
          },
          /*min_shard_size=*/8);
    }
    g0 = g1;
  }

  for (size_t i = 0; i < requests.size(); ++i) {
    responses[i].user = requests[i].user;
    const auto& top = states[i].heap.Sorted();
    responses[i].items.reserve(top.size());
    for (const ScoredItem& e : top) {
      responses[i].items.push_back({e.item, e.score});
    }
  }
  return responses;
}

ServingIndex::ServingIndex(const Recommender* model, const Dataset& dataset)
    : engine_(model, dataset) {}

std::vector<Recommendation> ServingIndex::TopK(
    Index user, Index k, const std::vector<Index>& candidates) const {
  return TopKBatch({user}, k, candidates)[0];
}

std::vector<std::vector<Recommendation>> ServingIndex::TopKBatch(
    const std::vector<Index>& users, Index k,
    const std::vector<Index>& candidates) const {
  std::vector<RecRequest> requests;
  requests.reserve(users.size());
  for (Index user : users) {
    RecRequest request;
    request.user = user;
    request.k = k;
    request.candidates = candidates;
    requests.push_back(std::move(request));
  }
  const std::vector<RecResponse> responses = engine_.RecommendBatch(requests);
  std::vector<std::vector<Recommendation>> results(users.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    results[i] = responses[i].items;
  }
  return results;
}

}  // namespace firzen
