#include "src/eval/serving.h"

#include <algorithm>

#include "src/eval/topk.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace firzen {

ServingIndex::ServingIndex(const Recommender* model, const Dataset& dataset)
    : model_(model),
      num_items_(dataset.num_items),
      seen_(dataset.TrainItemsByUser()) {
  FIRZEN_CHECK(model != nullptr);
}

std::vector<Recommendation> ServingIndex::TopK(
    Index user, Index k, const std::vector<Index>& candidates) const {
  return TopKBatch({user}, k, candidates)[0];
}

std::vector<std::vector<Recommendation>> ServingIndex::TopKBatch(
    const std::vector<Index>& users, Index k,
    const std::vector<Index>& candidates) const {
  FIRZEN_CHECK_GT(k, 0);
  for (Index item : candidates) {
    FIRZEN_CHECK_GE(item, 0);
    FIRZEN_CHECK_LT(item, num_items_);
  }
  Matrix scores;
  model_->Score(users, &scores);
  FIRZEN_CHECK_EQ(scores.cols(), num_items_);

  // Users are independent, so they shard across the pool with per-thread
  // heap scratch; each shard writes disjoint result slots. Selection is a
  // bounded min-heap: O(items log k) instead of copying + partial_sort over
  // every unseen item.
  std::vector<std::vector<Recommendation>> results(users.size());
  ParallelFor(
      ThreadPool::Global(), static_cast<Index>(users.size()),
      [&](Index begin, Index end) {
        TopKHeap heap(k);
        for (Index r = begin; r < end; ++r) {
          const Index user = users[static_cast<size_t>(r)];
          const auto& exclude = seen_[static_cast<size_t>(user)];
          const Real* user_scores = scores.row(r);
          heap.Reset();
          auto offer = [&](Index item) {
            if (std::binary_search(exclude.begin(), exclude.end(), item)) {
              return;
            }
            heap.Push(item, user_scores[item]);
          };
          if (candidates.empty()) {
            for (Index item = 0; item < num_items_; ++item) offer(item);
          } else {
            for (Index item : candidates) offer(item);
          }
          const auto& top = heap.Sorted();
          std::vector<Recommendation>& out = results[static_cast<size_t>(r)];
          out.reserve(top.size());
          for (const ScoredItem& e : top) out.push_back({e.item, e.score});
        }
      },
      /*min_shard_size=*/8);
  return results;
}

}  // namespace firzen
