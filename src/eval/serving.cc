#include "src/eval/serving.h"

#include <algorithm>
#include <utility>

#include "src/eval/topk.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace firzen {

namespace {

// Per-request ranking state for the fused stream: the bounded heap plus the
// resolved exclusion list (sorted, for binary_search) and, for explicit
// pools, the request's deduplicated sorted candidates.
struct RequestState {
  explicit RequestState(Index k) : heap(k) {}

  TopKHeap heap;
  const std::vector<Index>* exclude = nullptr;  // sorted, may be empty
  std::vector<Index> custom_sorted;             // backing store for kCustom
  std::vector<Index> pool_sorted;  // sorted unique explicit pool (else empty)
};

bool Excluded(const RequestState& state, Index item) {
  return state.exclude != nullptr &&
         std::binary_search(state.exclude->begin(), state.exclude->end(),
                            item);
}

std::unique_ptr<Scorer> MintScorer(const Recommender* model) {
  FIRZEN_CHECK(model != nullptr);
  return model->MakeScorer();
}

std::shared_ptr<const ServingSharedState> StateFor(const Dataset& dataset,
                                                   Index num_items) {
  auto state = std::make_shared<ServingSharedState>();
  state->seen = dataset.TrainItemsByUser();
  state->is_cold = dataset.is_cold_item;
  if (state->is_cold.empty()) {
    state->is_cold.assign(static_cast<size_t>(num_items), false);
  }
  return state;
}

}  // namespace

std::shared_ptr<const ServingSharedState> ServingSharedState::FromDataset(
    const Dataset& dataset) {
  return StateFor(dataset, dataset.num_items);
}

ServingEngine::ServingEngine(const Recommender* model, const Dataset& dataset,
                             ServingEngineOptions options)
    : ServingEngine(MintScorer(model), dataset, options) {}

ServingEngine::ServingEngine(std::unique_ptr<Scorer> scorer,
                             const Dataset& dataset,
                             ServingEngineOptions options)
    : scorer_(std::move(scorer)),
      num_items_(dataset.num_items),
      options_(options) {
  FIRZEN_CHECK(scorer_ != nullptr);
  FIRZEN_CHECK_GT(options_.item_block, 0);
  if (num_items_ == 0) num_items_ = scorer_->num_items();
  FIRZEN_CHECK_EQ(scorer_->num_items(), num_items_);
  state_ = StateFor(dataset, num_items_);
  FIRZEN_CHECK_EQ(static_cast<Index>(state_->is_cold.size()), num_items_);
  if (options_.pool == nullptr) options_.pool = ThreadPool::Global();
}

ServingEngine::ServingEngine(std::unique_ptr<Scorer> scorer,
                             std::shared_ptr<const ServingSharedState> state,
                             ServingEngineOptions options)
    : scorer_(std::move(scorer)), state_(std::move(state)), options_(options) {
  FIRZEN_CHECK(scorer_ != nullptr);
  FIRZEN_CHECK(state_ != nullptr);
  FIRZEN_CHECK_GT(options_.item_block, 0);
  num_items_ = scorer_->num_items();
  FIRZEN_CHECK_EQ(static_cast<Index>(state_->is_cold.size()), num_items_);
  if (options_.pool == nullptr) options_.pool = ThreadPool::Global();
}

RecResponse ServingEngine::Recommend(const RecRequest& request) const {
  return RecommendBatch({request})[0];
}

std::vector<RecResponse> ServingEngine::RecommendBatch(
    const std::vector<RecRequest>& requests) const {
  std::vector<RecResponse> responses(requests.size());
  if (requests.empty()) return responses;

  // All mutable per-call state is local (or leased): `states`, the score
  // panels, and the scoring arena. Concurrent RecommendBatch calls on this
  // const engine therefore never share scratch; they interleave freely on
  // the thread pool (per-call completion groups).
  const ArenaPool::Lease arena = arenas_.Acquire();
  const std::vector<std::vector<Index>>& seen = state_->seen;
  const std::vector<bool>& is_cold = state_->is_cold;

  std::vector<RequestState> states;
  // Reserve up front: states[i].exclude may point at states[i].custom_sorted,
  // so the elements must never relocate.
  states.reserve(requests.size());
  for (const RecRequest& request : requests) {
    FIRZEN_CHECK_GT(request.k, 0);
    FIRZEN_CHECK_GE(request.user, 0);
    states.emplace_back(request.k);
    RequestState& state = states.back();
    if (!request.candidates.empty()) {
      for (Index item : request.candidates) {
        FIRZEN_CHECK_GE(item, 0);
        FIRZEN_CHECK_LT(item, num_items_);
      }
      // Deduplicate: each pool item is ranked once no matter how often the
      // request lists it, and the sorted copy doubles as the membership
      // filter for the union stream below.
      state.pool_sorted = request.candidates;
      std::sort(state.pool_sorted.begin(), state.pool_sorted.end());
      state.pool_sorted.erase(
          std::unique(state.pool_sorted.begin(), state.pool_sorted.end()),
          state.pool_sorted.end());
    }
    switch (request.exclusion) {
      case ExclusionPolicy::kTrainSeen:
        if (request.user < static_cast<Index>(seen.size())) {
          state.exclude = &seen[static_cast<size_t>(request.user)];
        }
        break;
      case ExclusionPolicy::kCustom:
        state.custom_sorted = request.exclude;
        std::sort(state.custom_sorted.begin(), state.custom_sorted.end());
        state.exclude = &state.custom_sorted;
        break;
      case ExclusionPolicy::kNone:
        break;
    }
  }

  // Requests over the full catalog share one fused score-and-rank stream;
  // explicit candidate pools stream the union of all pools below.
  std::vector<size_t> streamed;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].candidates.empty()) streamed.push_back(i);
  }

  if (!streamed.empty()) {
    std::vector<Index> users;
    users.reserve(streamed.size());
    for (size_t i : streamed) users.push_back(requests[i].user);
    Matrix panel;  // streamed.size() x item_block, reused per block
    for (Index block_begin = 0; block_begin < num_items_;
         block_begin += options_.item_block) {
      const ItemBlock block{
          block_begin,
          std::min(block_begin + options_.item_block, num_items_)};
      panel.ResizeUninitialized(static_cast<Index>(users.size()),
                                block.size());
      scorer_->ScoreBlock(users, block, MatrixView(&panel), arena.get());
      // Requests are independent: each shard feeds disjoint heaps.
      ParallelFor(
          options_.pool, static_cast<Index>(streamed.size()),
          [&](Index begin, Index end) {
            for (Index r = begin; r < end; ++r) {
              const RecRequest& request = requests[streamed[
                  static_cast<size_t>(r)]];
              RequestState& state = states[streamed[static_cast<size_t>(r)]];
              const Real* row = panel.row(r);
              for (Index item = block.begin; item < block.end; ++item) {
                if (request.cold_only &&
                    !is_cold[static_cast<size_t>(item)]) {
                  continue;
                }
                if (Excluded(state, item)) continue;
                state.heap.Push(item, row[item - block.begin]);
              }
            }
          },
          /*min_shard_size=*/8);
    }
  }

  // Explicit candidate pools, possibly unequal across requests: stream the
  // sorted union of all pools in bounded chunks and score each chunk once
  // for the whole explicit-user batch — one batched gather/Gemm per chunk
  // instead of one scoring call per request. Each request keeps only the
  // chunk items inside its own pool (binary search over pool_sorted, only
  // needed in union mode). Per-cell scores are independent of the
  // batching, and the heap retains a unique top-k under a total order, so
  // responses are bit-identical to scoring every pool alone at the same
  // user-batch size. When the pools barely overlap the union costs
  // O(requests * |union|) score cells against O(sum of pool sizes) for
  // per-group scoring, so a waste bound gates it: past kUnionWasteFactor
  // we fall back to grouping requests with identical pools (the TopKBatch
  // shim's shape, which under the union is free anyway: union == pool).
  std::vector<size_t> explicit_idx;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!requests[i].candidates.empty()) explicit_idx.push_back(i);
  }
  if (!explicit_idx.empty()) {
    // Streams `pool_items` in bounded chunks for the requests in `idxs`,
    // scoring each chunk once for all of them. `filter` = chunk items may
    // be outside a request's own pool and must be membership-checked.
    const auto stream_pool = [&](const std::vector<Index>& pool_items,
                                 const std::vector<size_t>& idxs,
                                 bool filter) {
      std::vector<Index> users;
      users.reserve(idxs.size());
      for (size_t i : idxs) users.push_back(requests[i].user);
      Matrix chunk_scores;
      std::vector<Index> chunk;
      for (size_t begin = 0; begin < pool_items.size();
           begin += static_cast<size_t>(options_.item_block)) {
        const size_t end =
            std::min(begin + static_cast<size_t>(options_.item_block),
                     pool_items.size());
        chunk.assign(pool_items.begin() + begin, pool_items.begin() + end);
        chunk_scores.ResizeUninitialized(static_cast<Index>(users.size()),
                                         static_cast<Index>(chunk.size()));
        scorer_->ScoreCandidates(users, chunk, MatrixView(&chunk_scores),
                                 arena.get());
        ParallelFor(
            options_.pool, static_cast<Index>(idxs.size()),
            [&](Index row_begin, Index row_end) {
              for (Index r = row_begin; r < row_end; ++r) {
                const size_t idx = idxs[static_cast<size_t>(r)];
                const RecRequest& request = requests[idx];
                RequestState& state = states[idx];
                const Real* row = chunk_scores.row(r);
                for (size_t j = 0; j < chunk.size(); ++j) {
                  const Index item = chunk[j];
                  if (filter &&
                      !std::binary_search(state.pool_sorted.begin(),
                                          state.pool_sorted.end(), item)) {
                    continue;
                  }
                  if (request.cold_only &&
                      !is_cold[static_cast<size_t>(item)]) {
                    continue;
                  }
                  if (Excluded(state, item)) continue;
                  state.heap.Push(item, row[j]);
                }
              }
            },
            /*min_shard_size=*/8);
      }
    };

    std::vector<Index> union_items;
    size_t total_entries = 0;
    for (size_t i : explicit_idx) {
      union_items.insert(union_items.end(), states[i].pool_sorted.begin(),
                         states[i].pool_sorted.end());
      total_entries += states[i].pool_sorted.size();
    }
    std::sort(union_items.begin(), union_items.end());
    union_items.erase(std::unique(union_items.begin(), union_items.end()),
                      union_items.end());

    // Identical pools: union cost == grouped cost (ratio 1). Disjoint
    // pools: union scores ~|requests|x more cells than asked for.
    constexpr size_t kUnionWasteFactor = 4;
    const bool use_union = union_items.size() * explicit_idx.size() <=
                           kUnionWasteFactor * total_entries;
    if (use_union) {
      stream_pool(union_items, explicit_idx, /*filter=*/true);
    } else {
      // Consecutive requests with identical (deduplicated) pools score as
      // one group; every chunk item is then in every grouped pool.
      std::vector<size_t> group;
      for (size_t g0 = 0; g0 < explicit_idx.size();) {
        const std::vector<Index>& pool = states[explicit_idx[g0]].pool_sorted;
        size_t g1 = g0 + 1;
        while (g1 < explicit_idx.size() &&
               states[explicit_idx[g1]].pool_sorted == pool) {
          ++g1;
        }
        group.assign(explicit_idx.begin() + g0, explicit_idx.begin() + g1);
        stream_pool(pool, group, /*filter=*/false);
        g0 = g1;
      }
    }
  }

  for (size_t i = 0; i < requests.size(); ++i) {
    responses[i].user = requests[i].user;
    const auto& top = states[i].heap.Sorted();
    responses[i].items.reserve(top.size());
    for (const ScoredItem& e : top) {
      responses[i].items.push_back({e.item, e.score});
    }
  }
  return responses;
}

ServingIndex::ServingIndex(const Recommender* model, const Dataset& dataset)
    : engine_(model, dataset) {}

std::vector<Recommendation> ServingIndex::TopK(
    Index user, Index k, const std::vector<Index>& candidates) const {
  return TopKBatch({user}, k, candidates)[0];
}

std::vector<std::vector<Recommendation>> ServingIndex::TopKBatch(
    const std::vector<Index>& users, Index k,
    const std::vector<Index>& candidates) const {
  std::vector<RecRequest> requests;
  requests.reserve(users.size());
  for (Index user : users) {
    RecRequest request;
    request.user = user;
    request.k = k;
    request.candidates = candidates;
    requests.push_back(std::move(request));
  }
  const std::vector<RecResponse> responses = engine_.RecommendBatch(requests);
  std::vector<std::vector<Recommendation>> results(users.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    results[i] = responses[i].items;
  }
  return results;
}

}  // namespace firzen
