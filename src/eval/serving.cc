#include "src/eval/serving.h"

#include <algorithm>
#include <utility>

#include "src/eval/admission.h"
#include "src/eval/serving_internal.h"
#include "src/eval/topk.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace firzen {

namespace {

bool Excluded(const serving_internal::PreparedRequest& prepared, Index item) {
  return prepared.exclude != nullptr &&
         std::binary_search(prepared.exclude->begin(),
                            prepared.exclude->end(), item);
}

}  // namespace

namespace serving_internal {

std::unique_ptr<Scorer> MintScorer(const Recommender* model,
                                   ScoringPrecision precision) {
  FIRZEN_CHECK(model != nullptr);
  return model->MakeScorer(precision);
}

std::vector<PreparedRequest> PrepareRequests(
    const std::vector<RecRequest>& requests, const ServingSharedState& state,
    Index num_items) {
  const std::vector<std::vector<Index>>& seen = state.seen;
  std::vector<PreparedRequest> prepared;
  // Reserve up front: prepared[i].exclude may point at
  // prepared[i].custom_sorted, so the elements must never relocate.
  prepared.reserve(requests.size());
  for (const RecRequest& request : requests) {
    FIRZEN_CHECK_GT(request.k, 0);
    FIRZEN_CHECK_GE(request.user, 0);
    prepared.emplace_back();
    PreparedRequest& p = prepared.back();
    if (!request.candidates.empty()) {
      for (Index item : request.candidates) {
        FIRZEN_CHECK_GE(item, 0);
        FIRZEN_CHECK_LT(item, num_items);
      }
      // Deduplicate: each pool item is ranked once no matter how often the
      // request lists it, and the sorted copy doubles as the membership
      // filter for the union stream in RankRequestsInRange.
      p.pool_sorted = request.candidates;
      std::sort(p.pool_sorted.begin(), p.pool_sorted.end());
      p.pool_sorted.erase(
          std::unique(p.pool_sorted.begin(), p.pool_sorted.end()),
          p.pool_sorted.end());
    }
    switch (request.exclusion) {
      case ExclusionPolicy::kTrainSeen:
        if (request.user < static_cast<Index>(seen.size())) {
          p.exclude = &seen[static_cast<size_t>(request.user)];
        }
        break;
      case ExclusionPolicy::kCustom:
        p.custom_sorted = request.exclude;
        std::sort(p.custom_sorted.begin(), p.custom_sorted.end());
        p.exclude = &p.custom_sorted;
        break;
      case ExclusionPolicy::kNone:
        break;
    }
  }
  return prepared;
}

PreparedBatch PrepareBatch(const std::vector<RecRequest>& requests,
                           const ServingSharedState& state, Index num_items) {
  PreparedBatch batch;
  batch.requests = PrepareRequests(requests, state, num_items);

  // Requests over the full catalog share one fused score-and-rank stream
  // per range; explicit candidate pools follow the plan below.
  size_t total_entries = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].candidates.empty()) {
      batch.streamed.push_back(i);
      batch.streamed_users.push_back(requests[i].user);
    } else {
      batch.explicit_idx.push_back(i);
      total_entries += batch.requests[i].pool_sorted.size();
    }
  }
  if (batch.explicit_idx.empty()) return batch;

  // Unequal explicit pools batch by streaming the sorted union of all
  // pools — one batched gather/Gemm per chunk instead of one scoring call
  // per request. When the pools barely overlap the union costs
  // O(requests * |union|) score cells against O(sum of pool sizes) for
  // per-group scoring, so a waste bound gates it: past kUnionWasteFactor
  // we fall back to grouping requests with identical pools (the TopKBatch
  // shim's shape, which under the union is free anyway: union == pool).
  // Identical pools: union cost == grouped cost (ratio 1). Disjoint pools:
  // union scores ~|requests|x more cells than asked for.
  for (size_t i : batch.explicit_idx) {
    batch.union_items.insert(batch.union_items.end(),
                             batch.requests[i].pool_sorted.begin(),
                             batch.requests[i].pool_sorted.end());
    batch.union_users.push_back(requests[i].user);
  }
  std::sort(batch.union_items.begin(), batch.union_items.end());
  batch.union_items.erase(
      std::unique(batch.union_items.begin(), batch.union_items.end()),
      batch.union_items.end());
  constexpr size_t kUnionWasteFactor = 4;
  batch.use_union = batch.union_items.size() * batch.explicit_idx.size() <=
                    kUnionWasteFactor * total_entries;
  if (!batch.use_union) {
    batch.union_items.clear();
    batch.union_users.clear();
    // Consecutive requests with identical (deduplicated) pools score as
    // one group; every chunk item is then in every grouped pool.
    for (size_t g0 = 0; g0 < batch.explicit_idx.size();) {
      const std::vector<Index>& pool =
          batch.requests[batch.explicit_idx[g0]].pool_sorted;
      size_t g1 = g0 + 1;
      while (g1 < batch.explicit_idx.size() &&
             batch.requests[batch.explicit_idx[g1]].pool_sorted == pool) {
        ++g1;
      }
      batch.groups.emplace_back(batch.explicit_idx.begin() + g0,
                                batch.explicit_idx.begin() + g1);
      batch.group_users.emplace_back();
      for (size_t s = g0; s < g1; ++s) {
        batch.group_users.back().push_back(
            requests[batch.explicit_idx[s]].user);
      }
      g0 = g1;
    }
  }
  return batch;
}

void RankRequestsInRange(const Scorer& scorer, ItemBlock range,
                         const std::vector<RecRequest>& requests,
                         const PreparedBatch& batch,
                         const ServingSharedState& state, Index item_block,
                         ThreadPool* pool, ScoringArena* arena,
                         std::vector<TopKHeap>* heaps) {
  const std::vector<PreparedRequest>& prepared = batch.requests;
  FIRZEN_CHECK_EQ(static_cast<Index>(prepared.size()),
                  static_cast<Index>(requests.size()));
  FIRZEN_CHECK_EQ(static_cast<Index>(heaps->size()),
                  static_cast<Index>(requests.size()));
  FIRZEN_CHECK_EQ(scorer.num_items(), range.size());
  if (requests.empty() || range.size() == 0) return;
  const std::vector<bool>& is_cold = state.is_cold;

  if (!batch.streamed.empty()) {
    const std::vector<Index>& users = batch.streamed_users;
    Matrix panel;  // streamed.size() x item_block, reused per block
    for (Index block_begin = 0; block_begin < range.size();
         block_begin += item_block) {
      // Local view coordinates; global id = range.begin + local id.
      const ItemBlock block{block_begin,
                            std::min(block_begin + item_block, range.size())};
      panel.ResizeUninitialized(static_cast<Index>(users.size()),
                                block.size());
      scorer.ScoreBlock(users, block, MatrixView(&panel), arena);
      // Requests are independent: each shard feeds disjoint heaps.
      ParallelFor(
          pool, static_cast<Index>(batch.streamed.size()),
          [&](Index begin, Index end) {
            for (Index r = begin; r < end; ++r) {
              const size_t idx = batch.streamed[static_cast<size_t>(r)];
              const RecRequest& request = requests[idx];
              const PreparedRequest& p = prepared[idx];
              TopKHeap& heap = (*heaps)[idx];
              const Real* row = panel.row(r);
              for (Index local = block.begin; local < block.end; ++local) {
                const Index item = range.begin + local;
                const Real score = row[local - block.begin];
                // Threshold first: once the heap is warm, almost every
                // item fails this one comparison, skipping the exclusion
                // search and cold lookup. Bit-neutral (see MightAccept).
                if (!heap.MightAccept(item, score)) continue;
                if (request.cold_only &&
                    !is_cold[static_cast<size_t>(item)]) {
                  continue;
                }
                if (Excluded(p, item)) continue;
                heap.Push(item, score);
              }
            }
          },
          /*min_shard_size=*/8);
    }
  }

  // Explicit pools: execute the batch plan over this range. Streams the
  // in-range slice of `pool_items` (global ids, sorted) in bounded chunks
  // for the requests named by `idxs`, scoring each chunk once for all of
  // them with exactly the planned user batch — including requests whose
  // pool misses this range entirely, so the batch (and its per-cell
  // rounding) never depends on the range. `filter` = chunk items may be
  // outside a request's own pool and must be membership-checked (union
  // mode only).
  Matrix chunk_scores;
  std::vector<Index> chunk_local;
  const auto stream_pool = [&](const std::vector<Index>& pool_items,
                               const std::vector<size_t>& idxs,
                               const std::vector<Index>& users, bool filter) {
    const size_t slice_begin = static_cast<size_t>(
        std::lower_bound(pool_items.begin(), pool_items.end(), range.begin) -
        pool_items.begin());
    const size_t slice_end = static_cast<size_t>(
        std::lower_bound(pool_items.begin() + slice_begin, pool_items.end(),
                         range.end) -
        pool_items.begin());
    if (slice_begin == slice_end) return;  // nothing in this range
    for (size_t begin = slice_begin; begin < slice_end;
         begin += static_cast<size_t>(item_block)) {
      const size_t end =
          std::min(begin + static_cast<size_t>(item_block), slice_end);
      chunk_local.clear();
      for (size_t j = begin; j < end; ++j) {
        chunk_local.push_back(pool_items[j] - range.begin);
      }
      chunk_scores.ResizeUninitialized(static_cast<Index>(users.size()),
                                       static_cast<Index>(chunk_local.size()));
      scorer.ScoreCandidates(users, chunk_local, MatrixView(&chunk_scores),
                             arena);
      ParallelFor(
          pool, static_cast<Index>(idxs.size()),
          [&](Index row_begin, Index row_end) {
            for (Index r = row_begin; r < row_end; ++r) {
              const size_t idx = idxs[static_cast<size_t>(r)];
              const RecRequest& request = requests[idx];
              const PreparedRequest& p = prepared[idx];
              TopKHeap& heap = (*heaps)[idx];
              const Real* row = chunk_scores.row(r);
              for (size_t j = begin; j < end; ++j) {
                const Index item = pool_items[j];
                const Real score = row[j - begin];
                // Threshold first, as in the streamed loop above.
                if (!heap.MightAccept(item, score)) continue;
                if (filter &&
                    !std::binary_search(p.pool_sorted.begin(),
                                        p.pool_sorted.end(), item)) {
                  continue;
                }
                if (request.cold_only &&
                    !is_cold[static_cast<size_t>(item)]) {
                  continue;
                }
                if (Excluded(p, item)) continue;
                heap.Push(item, score);
              }
            }
          },
          /*min_shard_size=*/8);
    }
  };

  if (batch.use_union) {
    stream_pool(batch.union_items, batch.explicit_idx, batch.union_users,
                /*filter=*/true);
  } else {
    for (size_t g = 0; g < batch.groups.size(); ++g) {
      stream_pool(prepared[batch.groups[g][0]].pool_sorted, batch.groups[g],
                  batch.group_users[g], /*filter=*/false);
    }
  }
}

}  // namespace serving_internal

const char* RecStatusName(RecStatus status) {
  switch (status) {
    case RecStatus::kOk:
      return "OK";
    case RecStatus::kShed:
      return "SHED";
    case RecStatus::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case RecStatus::kBackendError:
      return "BACKEND_ERROR";
    case RecStatus::kDegraded:
      return "DEGRADED";
  }
  return "UNKNOWN";
}

std::shared_ptr<const ServingSharedState> ServingSharedState::FromDataset(
    const Dataset& dataset) {
  return FromDataset(dataset, dataset.num_items);
}

std::shared_ptr<const ServingSharedState> ServingSharedState::FromDataset(
    const Dataset& dataset, Index num_items) {
  auto state = std::make_shared<ServingSharedState>();
  state->seen = dataset.TrainItemsByUser();
  state->is_cold = dataset.is_cold_item;
  if (state->is_cold.empty()) {
    state->is_cold.assign(static_cast<size_t>(num_items), false);
  }
  return state;
}

ServingEngine::ServingEngine(const Recommender* model, const Dataset& dataset,
                             ServingEngineOptions options)
    : ServingEngine(serving_internal::MintScorer(model, options.precision),
                    dataset, options) {}

ServingEngine::ServingEngine(std::unique_ptr<Scorer> scorer,
                             const Dataset& dataset,
                             ServingEngineOptions options)
    : scorer_(std::move(scorer)),
      num_items_(dataset.num_items),
      options_(options) {
  FIRZEN_CHECK(scorer_ != nullptr);
  FIRZEN_CHECK_GT(options_.item_block, 0);
  if (num_items_ == 0) num_items_ = scorer_->num_items();
  FIRZEN_CHECK_EQ(scorer_->num_items(), num_items_);
  state_ = ServingSharedState::FromDataset(dataset, num_items_);
  FIRZEN_CHECK_EQ(static_cast<Index>(state_->is_cold.size()), num_items_);
  if (options_.pool == nullptr) options_.pool = ThreadPool::Global();
}

ServingEngine::ServingEngine(std::unique_ptr<Scorer> scorer,
                             std::shared_ptr<const ServingSharedState> state,
                             ServingEngineOptions options)
    : scorer_(std::move(scorer)), state_(std::move(state)), options_(options) {
  FIRZEN_CHECK(scorer_ != nullptr);
  FIRZEN_CHECK(state_ != nullptr);
  FIRZEN_CHECK_GT(options_.item_block, 0);
  num_items_ = scorer_->num_items();
  FIRZEN_CHECK_EQ(static_cast<Index>(state_->is_cold.size()), num_items_);
  if (options_.pool == nullptr) options_.pool = ThreadPool::Global();
}

RecResponse ServingEngine::Recommend(const RecRequest& request) const {
  return RecommendBatch({request})[0];
}

std::vector<RecResponse> ServingEngine::RecommendBatch(
    const std::vector<RecRequest>& requests) const {
  if (admission_ != nullptr) return admission_->RecommendBatch(requests);
  return RecommendBatchDirect(requests);
}

std::vector<RecResponse> ServingEngine::RecommendBatchDirect(
    const std::vector<RecRequest>& requests) const {
  std::vector<RecResponse> responses(requests.size());
  if (requests.empty()) return responses;

  // All mutable per-call state is local (or leased): the prepared requests,
  // heaps, score panels, and the scoring arena. Concurrent RecommendBatch
  // calls on this const engine therefore never share scratch; they
  // interleave freely on the thread pool (per-call completion groups).
  const ArenaPool::Lease arena = arenas_.Acquire();
  const serving_internal::PreparedBatch batch =
      serving_internal::PrepareBatch(requests, *state_, num_items_);
  std::vector<TopKHeap> heaps;
  heaps.reserve(requests.size());
  for (const RecRequest& request : requests) heaps.emplace_back(request.k);

  // The whole catalog as one range: the single-engine path is exactly the
  // one-shard case of the shared ranking core.
  serving_internal::RankRequestsInRange(
      *scorer_, {0, num_items_}, requests, batch, *state_,
      options_.item_block, options_.pool, arena.get(), &heaps);

  for (size_t i = 0; i < requests.size(); ++i) {
    responses[i].user = requests[i].user;
    const auto& top = heaps[i].Sorted();
    responses[i].items.reserve(top.size());
    for (const ScoredItem& e : top) {
      responses[i].items.push_back({e.item, e.score});
    }
  }
  return responses;
}

}  // namespace firzen
