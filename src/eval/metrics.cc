#include "src/eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace firzen {

MetricBundle& MetricBundle::operator+=(const MetricBundle& other) {
  recall += other.recall;
  mrr += other.mrr;
  ndcg += other.ndcg;
  hit += other.hit;
  precision += other.precision;
  return *this;
}

MetricBundle& MetricBundle::operator/=(Real denom) {
  recall /= denom;
  mrr /= denom;
  ndcg /= denom;
  hit /= denom;
  precision /= denom;
  return *this;
}

MetricBundle ComputeUserMetrics(const std::vector<Index>& ranked_top_k,
                                const std::unordered_set<Index>& relevant,
                                Index num_relevant, Index k) {
  FIRZEN_CHECK_GT(num_relevant, 0);
  FIRZEN_CHECK_GT(k, 0);
  MetricBundle m;
  Index hits = 0;
  Real dcg = 0.0;
  bool first_hit_seen = false;
  const Index limit = std::min<Index>(k, static_cast<Index>(ranked_top_k.size()));
  for (Index rank = 0; rank < limit; ++rank) {
    if (relevant.count(ranked_top_k[static_cast<size_t>(rank)]) == 0) continue;
    ++hits;
    dcg += 1.0 / std::log2(static_cast<Real>(rank) + 2.0);
    if (!first_hit_seen) {
      first_hit_seen = true;
      m.mrr = 1.0 / static_cast<Real>(rank + 1);
    }
  }
  Real idcg = 0.0;
  const Index ideal = std::min<Index>(k, num_relevant);
  for (Index rank = 0; rank < ideal; ++rank) {
    idcg += 1.0 / std::log2(static_cast<Real>(rank) + 2.0);
  }
  m.recall = static_cast<Real>(hits) / static_cast<Real>(num_relevant);
  m.precision = static_cast<Real>(hits) / static_cast<Real>(k);
  m.hit = hits > 0 ? 1.0 : 0.0;
  m.ndcg = idcg > 0 ? dcg / idcg : 0.0;
  return m;
}

}  // namespace firzen
