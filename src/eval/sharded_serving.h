// Sharded-catalog serving: partition the item id space into contiguous
// shards, score every shard in parallel through per-shard scorer views, and
// merge the per-shard top-K lists into one global ranking that is
// BIT-EXACT and ORDER-IDENTICAL to the single-engine answer for any shard
// count. Catalogs whose item table no longer fits one engine's working set
// scale out horizontally behind this front end without any observable
// change in responses.
//
// Why the merge is exact: per-item scores do not depend on how the catalog
// is partitioned (the Scorer block-invariance contract, pinned by
// tests/scorer_parity_test.cc), and ranking uses the strict total order
// RanksBefore (descending score, ties by ascending item id — see
// src/eval/topk.h). Every item in the global top-k lies inside its own
// shard's top-k (fewer than k items beat it anywhere, so fewer than k beat
// it in its shard), hence sorting the concatenated per-shard lists and
// truncating to k reproduces the single-engine ranking element for
// element, score bit for score bit. tests/sharded_serving_test.cc locks
// this in for every registered model and shard counts {1, 2, 3, 7,
// num_items}.
//
// Thread safety: identical to ServingEngine — share ONE
// ShardedServingEngine across any number of request threads. The base
// scorer is minted once and shared by all shard views (mint-time work is
// never duplicated), per-call scratch is leased from an internal arena
// pool, and exclusion/cold-shelf state lives in one ServingSharedState
// shared by every shard — and shareable with sibling engines over the same
// catalog.
//
// Caveat — FullScoreAdapter-backed scorers: that adapter caches full
// users x num_items score rows PER ARENA and keys them by user batch. When
// shards rank concurrently (at least one shard per pool worker; each shard
// leases a private arena) S shards evaluate and hold S copies of the full
// rows — S x the single engine's scoring cost and peak transient. The
// sequential placement (fewer shards than workers) shares one arena, so a
// batch with a single user-batch shape (all full-catalog, or all explicit
// pools) computes the rows once; a MIXED batch alternates the streamed and
// explicit user batches inside every shard and still re-evaluates per
// shard. Sharding pays off for block-native scorers (DotProductScorer,
// KGCN) whose per-shard cost is proportional to the shard; for
// full-row-fallback models, prefer the single engine.
#ifndef FIRZEN_EVAL_SHARDED_SERVING_H_
#define FIRZEN_EVAL_SHARDED_SERVING_H_

#include <memory>
#include <vector>

#include "src/eval/serving.h"
#include "src/eval/topk.h"

namespace firzen {

/// Splits [0, num_items) into `num_shards` contiguous ranges whose sizes
/// differ by at most one (the first num_items % num_shards shards get the
/// extra item). num_shards is clamped to [1, max(num_items, 1)], so asking
/// for more shards than items yields one item per shard.
std::vector<ItemBlock> MakeShardRanges(Index num_items, Index num_shards);

/// Shard layout from explicit interior cut points: boundaries must be
/// sorted and within [0, num_items]; each adjacent pair (with 0 and
/// num_items appended at the ends) becomes one shard. Duplicate or
/// end-touching cut points yield empty shards, which are legal and simply
/// score nothing — so randomized layouts (property tests) need no
/// preprocessing.
std::vector<ItemBlock> RangesFromBoundaries(Index num_items,
                                            const std::vector<Index>& boundaries);

/// Merges concatenated per-shard top-k lists into the global top-k:
/// sorts `entries` under RanksBefore and truncates to k. Because
/// RanksBefore is a strict total order over distinct items, the result is
/// unique — independent of shard count, shard boundaries, and the order
/// the per-shard lists were concatenated in. Shared by
/// ShardedServingEngine and the sharded EvaluateRanking path.
std::vector<ScoredItem> MergeTopK(std::vector<ScoredItem> entries, Index k);

struct ShardedServingOptions {
  /// Number of contiguous equal-size shards (see MakeShardRanges). Ignored
  /// when `boundaries` is non-empty.
  Index num_shards = 2;
  /// Optional explicit shard layout: interior cut points as accepted by
  /// RangesFromBoundaries. Empty = balanced num_shards layout.
  std::vector<Index> boundaries;
  /// Streamed scoring panel width per shard (items per ScoreBlock call).
  Index item_block = 8192;
  /// Pool the shards (and the fused ranking loops inside each shard) run
  /// on; nullptr = ThreadPool::Global().
  ThreadPool* pool = nullptr;
  /// Numeric tier for the minted base scorer (model-based constructor
  /// only). The per-shard ItemRangeScorer views inherit it — all shards of
  /// one engine always score at one precision, so the merged top-K stays
  /// bit-identical for any shard layout (quant bit-identity suite).
  ScoringPrecision precision = ScoringPrecision::kFp32;
};

/// Request/response serving over a partitioned catalog. Drop-in for
/// ServingEngine: same RecRequest/RecResponse semantics (candidate pools,
/// exclusion policies, cold-only shelf, NaN and duplicate handling), same
/// thread-safety contract, bit-identical responses for any shard layout.
class ShardedServingEngine {
 public:
  /// Mints one scorer from the model and slices it into per-shard views.
  /// The model must outlive the engine; exclusions and the cold shelf come
  /// from `dataset`.
  ShardedServingEngine(const Recommender* model, const Dataset& dataset,
                       ShardedServingOptions options = {});

  /// Engine over an explicit base scorer (e.g. a DotProductScorer on
  /// loaded embeddings).
  ShardedServingEngine(std::unique_ptr<Scorer> scorer, const Dataset& dataset,
                       ShardedServingOptions options = {});

  /// Engine sharing a pre-built state with sibling engines over the same
  /// catalog (see ServingSharedState). `state` must be non-null and its
  /// is_cold size must match the scorer's catalog.
  ShardedServingEngine(std::unique_ptr<Scorer> scorer,
                       std::shared_ptr<const ServingSharedState> state,
                       ShardedServingOptions options = {});

  /// Routed through the attached AdmissionController when one is attached
  /// (coalescing this call with concurrent callers'), else served directly.
  /// Through admission, the response's RecStatus may be non-kOk (shed,
  /// deadline-exceeded, backend failure — see src/eval/admission.h); the
  /// direct path always serves with kOk.
  RecResponse Recommend(const RecRequest& request) const;

  /// Answers every request, preserving order: requests are resolved once,
  /// every shard ranks its item slice in parallel (per-shard scorer view,
  /// per-shard leased arena, per-shard bounded heaps), and the per-shard
  /// top-k lists merge under RanksBefore into each response. Routed
  /// through the attached AdmissionController when one is attached.
  std::vector<RecResponse> RecommendBatch(
      const std::vector<RecRequest>& requests) const;

  /// The execution path itself: serves the batch on the calling thread,
  /// bypassing any attached admission controller (what the controller's
  /// dispatcher invokes). Thread-safe.
  std::vector<RecResponse> RecommendBatchDirect(
      const std::vector<RecRequest>& requests) const;

  /// Routes subsequent Recommend/RecommendBatch calls through `controller`
  /// (nullptr to detach). Setup-time operation: must not race with
  /// in-flight requests; the controller must outlive the attachment.
  void AttachAdmission(const AdmissionController* controller) {
    admission_ = controller;
  }
  const AdmissionController* admission() const { return admission_; }

  Index num_items() const { return num_items_; }
  Index num_shards() const { return static_cast<Index>(ranges_.size()); }
  /// Global item range [begin, end) of one shard.
  ItemBlock shard_range(Index shard) const {
    return ranges_[static_cast<size_t>(shard)];
  }

  /// The engine's shared exclusion/cold state, for constructing sibling
  /// engines over the same catalog.
  const std::shared_ptr<const ServingSharedState>& shared_state() const {
    return state_;
  }

 private:
  void BuildShards();

  std::unique_ptr<const Scorer> scorer_;  // base; outlives the shard views
  std::vector<std::unique_ptr<const ItemRangeScorer>> shards_;
  std::vector<ItemBlock> ranges_;
  Index num_items_ = 0;
  std::shared_ptr<const ServingSharedState> state_;
  ShardedServingOptions options_;
  // Recycles per-call scoring scratch; mutex-guarded, so concurrent calls
  // on this const engine each lease private per-shard arenas.
  mutable ArenaPool arenas_;
  // Optional admission-batching front end; see AttachAdmission.
  const AdmissionController* admission_ = nullptr;
};

}  // namespace firzen

#endif  // FIRZEN_EVAL_SHARDED_SERVING_H_
