#include "src/eval/sharded_serving.h"

#include <algorithm>
#include <utility>

#include "src/eval/admission.h"
#include "src/eval/serving_internal.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace firzen {

std::vector<ItemBlock> MakeShardRanges(Index num_items, Index num_shards) {
  FIRZEN_CHECK_GE(num_items, 0);
  num_shards = std::max<Index>(std::min(num_shards, num_items), 1);
  const Index base = num_items / num_shards;
  const Index extra = num_items % num_shards;
  std::vector<ItemBlock> ranges;
  ranges.reserve(static_cast<size_t>(num_shards));
  Index begin = 0;
  for (Index s = 0; s < num_shards; ++s) {
    const Index size = base + (s < extra ? 1 : 0);
    ranges.push_back({begin, begin + size});
    begin += size;
  }
  FIRZEN_CHECK_EQ(begin, num_items);
  return ranges;
}

std::vector<ItemBlock> RangesFromBoundaries(
    Index num_items, const std::vector<Index>& boundaries) {
  FIRZEN_CHECK_GE(num_items, 0);
  std::vector<ItemBlock> ranges;
  ranges.reserve(boundaries.size() + 1);
  Index begin = 0;
  for (Index cut : boundaries) {
    FIRZEN_CHECK_GE(cut, begin);
    FIRZEN_CHECK_LE(cut, num_items);
    ranges.push_back({begin, cut});
    begin = cut;
  }
  ranges.push_back({begin, num_items});
  return ranges;
}

std::vector<ScoredItem> MergeTopK(std::vector<ScoredItem> entries, Index k) {
  FIRZEN_CHECK_GT(k, 0);
  std::sort(entries.begin(), entries.end(), RanksBefore);
  if (static_cast<Index>(entries.size()) > k) {
    entries.resize(static_cast<size_t>(k));
  }
  return entries;
}

ShardedServingEngine::ShardedServingEngine(const Recommender* model,
                                           const Dataset& dataset,
                                           ShardedServingOptions options)
    : ShardedServingEngine(serving_internal::MintScorer(model,
                                                        options.precision),
                           dataset, options) {}

ShardedServingEngine::ShardedServingEngine(std::unique_ptr<Scorer> scorer,
                                           const Dataset& dataset,
                                           ShardedServingOptions options)
    : scorer_(std::move(scorer)), options_(std::move(options)) {
  FIRZEN_CHECK(scorer_ != nullptr);
  num_items_ = scorer_->num_items();
  if (dataset.num_items != 0) {
    FIRZEN_CHECK_EQ(dataset.num_items, num_items_);
  }
  state_ = ServingSharedState::FromDataset(dataset, num_items_);
  FIRZEN_CHECK_EQ(static_cast<Index>(state_->is_cold.size()), num_items_);
  BuildShards();
}

ShardedServingEngine::ShardedServingEngine(
    std::unique_ptr<Scorer> scorer,
    std::shared_ptr<const ServingSharedState> state,
    ShardedServingOptions options)
    : scorer_(std::move(scorer)),
      state_(std::move(state)),
      options_(std::move(options)) {
  FIRZEN_CHECK(scorer_ != nullptr);
  FIRZEN_CHECK(state_ != nullptr);
  num_items_ = scorer_->num_items();
  FIRZEN_CHECK_EQ(static_cast<Index>(state_->is_cold.size()), num_items_);
  BuildShards();
}

void ShardedServingEngine::BuildShards() {
  FIRZEN_CHECK_GT(options_.item_block, 0);
  ranges_ = options_.boundaries.empty()
                ? MakeShardRanges(num_items_, options_.num_shards)
                : RangesFromBoundaries(num_items_, options_.boundaries);
  shards_.reserve(ranges_.size());
  for (const ItemBlock& range : ranges_) {
    shards_.push_back(std::make_unique<const ItemRangeScorer>(
        scorer_.get(), range.begin, range.end));
  }
  if (options_.pool == nullptr) options_.pool = ThreadPool::Global();
}

RecResponse ShardedServingEngine::Recommend(const RecRequest& request) const {
  return RecommendBatch({request})[0];
}

std::vector<RecResponse> ShardedServingEngine::RecommendBatch(
    const std::vector<RecRequest>& requests) const {
  if (admission_ != nullptr) return admission_->RecommendBatch(requests);
  return RecommendBatchDirect(requests);
}

std::vector<RecResponse> ShardedServingEngine::RecommendBatchDirect(
    const std::vector<RecRequest>& requests) const {
  std::vector<RecResponse> responses(requests.size());
  if (requests.empty()) return responses;

  // Resolve exclusions, candidate pools, and the explicit-pool batching
  // plan ONCE, in global item ids — every shard executes the same plan, so
  // the per-shard streams cannot disagree about eligibility or user-batch
  // composition, and the prep cost is paid once for any shard count.
  const serving_internal::PreparedBatch batch =
      serving_internal::PrepareBatch(requests, *state_, num_items_);

  // Per-(shard, request) bounded heaps: shards share the base scorer and
  // the prepared plan but no mutable scratch, so they can rank their
  // disjoint item slices in parallel.
  const Index num_shards = static_cast<Index>(ranges_.size());
  std::vector<std::vector<TopKHeap>> shard_heaps(
      static_cast<size_t>(num_shards));
  for (auto& heaps : shard_heaps) {
    heaps.reserve(requests.size());
    for (const RecRequest& request : requests) heaps.emplace_back(request.k);
  }

  // Where the parallelism goes is a throughput choice only — per-shard
  // heaps are disjoint and per-cell scores partition-invariant, so both
  // placements below produce bit-identical responses. An outer
  // shard-parallel loop pins each shard's scoring to one pool worker
  // (nested ParallelFor degrades inline), which starves
  // internally-parallel scorers when there are fewer shards than workers;
  // run shards sequentially then, SHARING one arena so its caches (the
  // gathered user batch, FullScoreAdapter's full rows) amortize across
  // shards instead of being rebuilt per shard. With at least one shard per
  // worker, the outer loop is the parallelism and each shard leases a
  // private arena.
  const bool shard_parallel =
      num_shards >= static_cast<Index>(options_.pool->num_threads());
  std::vector<ArenaPool::Lease> arenas;
  const Index num_arenas = shard_parallel ? num_shards : 1;
  arenas.reserve(static_cast<size_t>(num_arenas));
  for (Index a = 0; a < num_arenas; ++a) arenas.push_back(arenas_.Acquire());
  const auto rank_shard = [&](Index s, ScoringArena* arena) {
    serving_internal::RankRequestsInRange(
        *shards_[static_cast<size_t>(s)], ranges_[static_cast<size_t>(s)],
        requests, batch, *state_, options_.item_block, options_.pool, arena,
        &shard_heaps[static_cast<size_t>(s)]);
  };
  if (shard_parallel) {
    ParallelFor(
        options_.pool, num_shards,
        [&](Index begin, Index end) {
          for (Index s = begin; s < end; ++s) {
            rank_shard(s, arenas[static_cast<size_t>(s)].get());
          }
        },
        /*min_shard_size=*/1);
  } else {
    for (Index s = 0; s < num_shards; ++s) rank_shard(s, arenas[0].get());
  }

  // Merge: per request, sort the concatenated per-shard top-k lists under
  // RanksBefore and keep the first k — the unique global top-k.
  for (size_t i = 0; i < requests.size(); ++i) {
    std::vector<ScoredItem> entries;
    for (Index s = 0; s < num_shards; ++s) {
      const auto& top = shard_heaps[static_cast<size_t>(s)][i].Sorted();
      entries.insert(entries.end(), top.begin(), top.end());
    }
    const std::vector<ScoredItem> merged =
        MergeTopK(std::move(entries), requests[i].k);
    responses[i].user = requests[i].user;
    responses[i].items.reserve(merged.size());
    for (const ScoredItem& e : merged) {
      responses[i].items.push_back({e.item, e.score});
    }
  }
  return responses;
}

}  // namespace firzen
