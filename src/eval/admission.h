// Admission-batching front end: coalesces concurrent Recommend calls into
// fused user batches before they reach a serving engine. N in-flight
// single-user requests normally pay N full streaming passes over the item
// catalog; admitted through this controller they ride ONE fused
// score-and-rank pass (one catalog stream, one batched Gemm per panel), the
// classic cross-request micro-batching win for read-path inference over
// frozen state.
//
// Protocol (leader-follower, no dedicated dispatcher thread): a caller
// enqueues its requests as tickets and blocks. The first caller with queued
// work becomes the dispatcher ("leader"): it waits until the queue holds
// max_batch users or the oldest ticket has waited max_wait_us (capped by
// the nearest queued deadline), drains up to max_batch tickets under the
// configured DrainPolicy, runs ONE fused pass through the engine's direct
// path (serving_internal::RankRequestsInRange under the hood), writes each
// response back through its ticket, and wakes the owners. Arrivals during
// an execution accumulate into the next batch, so admission pipelines:
// one batch scores while the next one fills.
//
// Overload protection (all optional, all off by default):
//  * Load shedding — with max_queue_depth > 0 the ticket queue is bounded:
//    once it fills, new requests get RecStatus::kShed IMMEDIATELY instead
//    of queueing unboundedly, and shedding stops only once the queue has
//    drained to resume_queue_depth (hysteresis: distinct start/stop
//    watermarks, so the controller does not flap at the boundary).
//  * Deadlines — tickets whose RecRequest::deadline_us budget expires
//    before their fused pass starts are rejected with
//    RecStatus::kDeadlineExceeded, never scored late. Under
//    DrainPolicy::kDeadline the drain order is earliest-deadline-first.
//  * Fair share — under DrainPolicy::kFairShare the drain interleaves
//    per-tenant queues by weight (round-robin, weight tickets per tenant
//    per round), so one hot tenant cannot starve the rest.
//  * Structured failure fan-out — if a fused pass throws, EVERY coalesced
//    ticket of that pass completes with RecStatus::kBackendError (no
//    exception propagation, no torn results, no stranded followers); the
//    queue stays consistent and unrelated batches are unaffected.
//
// Determinism contract: coalescing is observably side-effect-free for
// every request that IS served. Per-item scores are bit-identical for ANY
// user-batch size (the Gemm A * B^T kernel accumulates the same
// exactly-rounded chain no matter how many rows share the batch — see
// src/tensor/matrix.h), and requests ride private top-K heaps, so a served
// response is bit-identical whether its request ran alone, fused with any
// co-riders, in any drain order, under any policy, or through any shard
// layout. tests/serving_admission_test.cc pins this; the
// BM_ServingAdmission parity gate re-asserts it at benchmark startup.
//
// Thread safety: Recommend/RecommendBatch are const and safe from any
// number of threads — that is the point. Attach/detach and destruction are
// setup/teardown operations: they must not race with in-flight requests
// (quiesce callers first), and a controller must be destroyed before the
// engine it fronts.
#ifndef FIRZEN_EVAL_ADMISSION_H_
#define FIRZEN_EVAL_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/eval/serving.h"
#include "src/util/thread_annotations.h"

namespace firzen {

class ShardedServingEngine;
class DistributedServingEngine;

/// How the dispatcher picks which queued tickets ride the next fused pass.
/// Every policy preserves the coalescing contract — drain order changes
/// WHEN a request is served (and whether it is served at all, under
/// deadlines/shedding), never WHAT a served request's response holds.
enum class DrainPolicy {
  /// Arrival order (the legacy behavior).
  kFifo,
  /// Earliest-deadline-first: the batch whose oldest deadline is nearest
  /// drains first; deadline-less tickets rank after all deadlined ones, in
  /// arrival order.
  kDeadline,
  /// Weighted fair share across RecRequest::tenant queues: each drain
  /// round-robins the tenants present in the queue (ascending tenant id),
  /// taking up to tenant_weight(t) tickets per tenant per round, until the
  /// batch is full. Within a tenant, arrival order.
  kFairShare,
};

struct AdmissionOptions {
  /// Most users one fused pass serves; the dispatcher drains the queue in
  /// chunks of at most this many tickets. 1 disables coalescing (every
  /// request runs alone — useful as an A/B baseline).
  Index max_batch = 64;
  /// Longest the dispatcher holds an incomplete batch open for co-riders,
  /// measured from the oldest queued ticket's enqueue time. 0 = never wait:
  /// drain whatever is queued immediately (coalescing then comes only from
  /// requests arriving while a previous batch executes). The
  /// latency/throughput knob: a request's added latency is bounded by
  /// max_wait_us plus one fused pass. When any queued ticket carries a
  /// deadline, the hold is additionally capped at the nearest deadline so
  /// a batch never idles a ticket past its budget.
  int64_t max_wait_us = 200;
  /// Which queued tickets ride the next fused pass (see DrainPolicy).
  DrainPolicy drain_policy = DrainPolicy::kFifo;
  /// Bounded-queue load shedding: once the ticket queue holds this many
  /// tickets, NEW requests are rejected immediately with RecStatus::kShed
  /// (never blocked) until the queue drains to resume_queue_depth.
  /// 0 = unbounded queue, no shedding (the legacy behavior).
  Index max_queue_depth = 0;
  /// Hysteresis low watermark: shedding, once started, stops when the
  /// queue depth has drained to <= this value. Must be < max_queue_depth.
  /// -1 = max_queue_depth / 2. Distinct start/stop watermarks keep the
  /// controller from flapping between shedding and admitting at the
  /// boundary.
  Index resume_queue_depth = -1;
  /// Fair-share weights, indexed by RecRequest::tenant: tenant t may take
  /// up to tenant_weights[t] tickets per drain round. Tenants at or past
  /// the vector's end (and entries < 1) weigh 1. Empty = every tenant
  /// weighs 1 (pure round-robin). Only read under DrainPolicy::kFairShare.
  std::vector<Index> tenant_weights;
};

/// Coalescing front end over a ServingEngine or ShardedServingEngine (or
/// any batch-serving backend). Construct it over the engine, then attach it
/// with engine.AttachAdmission(&controller) so the engine's own
/// Recommend/RecommendBatch route through it — or call the controller
/// directly. The engine-pointer constructors do NOT attach; attachment is
/// explicit so sibling engines can share one controller.
class AdmissionController {
 public:
  /// Executes one fused request batch; must be safe to call concurrently
  /// (both engines' direct paths are). May throw: a throwing pass fails
  /// every ticket it carried with RecStatus::kBackendError.
  using Backend =
      std::function<std::vector<RecResponse>(const std::vector<RecRequest>&)>;

  /// Fronts `engine` through its admission-bypassing direct path. The
  /// engine must outlive the controller.
  explicit AdmissionController(const ServingEngine* engine,
                               AdmissionOptions options = {});
  explicit AdmissionController(const ShardedServingEngine* engine,
                               AdmissionOptions options = {});
  /// Fronts a distributed coordinator: admitted batches become the RPC
  /// unit fanned out to the shard servers. Degraded responses (kDegraded,
  /// with items) pass through tickets untouched.
  explicit AdmissionController(const DistributedServingEngine* engine,
                               AdmissionOptions options = {});
  /// Fronts an arbitrary backend (tests, RPC fan-out, ...).
  explicit AdmissionController(Backend backend, AdmissionOptions options = {});

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// All callers must have returned before destruction.
  ~AdmissionController() = default;

  /// Enqueues the request and blocks until its fused batch has been served
  /// — or returns immediately with a non-kOk status when overload
  /// protection rejects it (kShed, kDeadlineExceeded) or its fused pass
  /// fails (kBackendError). A served (kOk) response is bit-identical to
  /// the engine serving the request alone.
  RecResponse Recommend(const RecRequest& request) const;

  /// Enqueues every request (they may be split across fused batches and
  /// coalesced with other callers' tickets) and blocks until all are
  /// resolved — served, shed, deadline-rejected, or failed; per-request
  /// outcomes are in each response's status. Response order matches
  /// request order. Never throws on backend failure: a throwing fused pass
  /// rejects exactly the tickets it carried with RecStatus::kBackendError
  /// and the controller keeps serving.
  std::vector<RecResponse> RecommendBatch(
      const std::vector<RecRequest>& requests) const;

  const AdmissionOptions& options() const { return options_; }

  /// Requests admitted so far (monotonic; excludes shed and
  /// expired-at-enqueue rejections; for tests and benchmarks).
  uint64_t admitted_requests() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  /// Fused passes executed so far. admitted_requests() / fused_batches()
  /// is the realized coalescing factor.
  uint64_t fused_batches() const {
    return fused_.load(std::memory_order_relaxed);
  }
  /// Requests rejected with kShed so far.
  uint64_t shed_requests() const {
    return shed_.load(std::memory_order_relaxed);
  }
  /// Requests rejected with kDeadlineExceeded so far (at enqueue or at
  /// drain time).
  uint64_t deadline_rejections() const {
    return deadline_rejected_.load(std::memory_order_relaxed);
  }
  /// Fused passes whose backend threw so far (each fails every ticket it
  /// carried with kBackendError).
  uint64_t backend_failures() const {
    return backend_failures_.load(std::memory_order_relaxed);
  }

 private:
  struct Ticket {
    const RecRequest* request = nullptr;
    RecResponse response;
    enum class State { kQueued, kClaimed, kDone } state = State::kQueued;
    std::chrono::steady_clock::time_point enqueued;
    // Absolute deadline (enqueued + request->deadline_us); only meaningful
    // when has_deadline.
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
  };

  void Validate() const;

  /// Completes `ticket` without serving it: status, user, empty items.
  void Reject(Ticket* ticket, RecStatus status) const FIRZEN_REQUIRES(mu_);

  /// True when a NEW request must be shed right now; updates the
  /// hysteresis state machine. Called before enqueueing.
  bool ShouldShed() const FIRZEN_REQUIRES(mu_);

  /// Completes every queued ticket whose deadline has passed with
  /// kDeadlineExceeded and removes it from the queue. Returns true when
  /// any ticket was rejected.
  bool SweepExpired(std::chrono::steady_clock::time_point now) const
      FIRZEN_REQUIRES(mu_);

  /// Picks up to max_batch queued tickets under options_.drain_policy,
  /// removes them from the queue, and returns them in drain order.
  std::vector<Ticket*> SelectBatch() const FIRZEN_REQUIRES(mu_);

  /// Claims up to max_batch queued tickets and serves them in one fused
  /// backend pass. Called with `lock` (over mu_) held; temporarily
  /// releases it around the backend call (MutexUnlock). A throwing backend
  /// is absorbed: every claimed ticket completes with kBackendError.
  /// (Allocation failures before the claim still propagate; the queue is
  /// untouched then.)
  void ServeOneBatch(MutexLock* lock) const FIRZEN_REQUIRES(mu_);

  Backend backend_;
  AdmissionOptions options_;

  mutable Mutex mu_;
  // Signals the collecting leader that the queue grew (its batch may now be
  // full, or a nearer deadline arrived). Followers and leaders-to-be wait on
  // done_cv_: it fires when a batch completes AND when leadership frees up
  // with tickets still queued.
  mutable CondVar queue_cv_;
  mutable CondVar done_cv_;
  // FIFO; tickets live on caller stacks.
  mutable std::vector<Ticket*> queue_ FIRZEN_GUARDED_BY(mu_);
  mutable bool leader_active_ FIRZEN_GUARDED_BY(mu_) = false;
  // Hysteresis state: shedding new arrivals until the queue drains to the
  // resume watermark.
  mutable bool shedding_ FIRZEN_GUARDED_BY(mu_) = false;

  mutable std::atomic<uint64_t> admitted_{0};
  mutable std::atomic<uint64_t> fused_{0};
  mutable std::atomic<uint64_t> shed_{0};
  mutable std::atomic<uint64_t> deadline_rejected_{0};
  mutable std::atomic<uint64_t> backend_failures_{0};
};

}  // namespace firzen

#endif  // FIRZEN_EVAL_ADMISSION_H_
