// Admission-batching front end: coalesces concurrent Recommend calls into
// fused user batches before they reach a serving engine. N in-flight
// single-user requests normally pay N full streaming passes over the item
// catalog; admitted through this controller they ride ONE fused
// score-and-rank pass (one catalog stream, one batched Gemm per panel), the
// classic cross-request micro-batching win for read-path inference over
// frozen state.
//
// Protocol (leader-follower, no dedicated dispatcher thread): a caller
// enqueues its requests as tickets and blocks. The first caller with queued
// work becomes the dispatcher ("leader"): it waits until the queue holds
// max_batch users or the oldest ticket has waited max_wait_us, drains up to
// max_batch tickets, runs ONE fused pass through the engine's direct path
// (serving_internal::RankRequestsInRange under the hood), writes each
// response back through its ticket, and wakes the owners. Arrivals during
// an execution accumulate into the next batch, so admission pipelines:
// one batch scores while the next one fills.
//
// Determinism contract: coalescing is observably side-effect-free.
// Per-item scores are bit-identical for ANY user-batch size (the Gemm
// A * B^T kernel accumulates the same exactly-rounded chain no matter how
// many rows share the batch — see src/tensor/matrix.h), and requests ride
// private top-K heaps, so a response is bit-identical whether its request
// was served alone, fused with any co-riders, or routed through any shard
// layout. tests/serving_admission_test.cc pins this; the BM_ServingAdmission
// parity gate re-asserts it at benchmark startup.
//
// Thread safety: Recommend/RecommendBatch are const and safe from any
// number of threads — that is the point. Attach/detach and destruction are
// setup/teardown operations: they must not race with in-flight requests
// (quiesce callers first), and a controller must be destroyed before the
// engine it fronts.
#ifndef FIRZEN_EVAL_ADMISSION_H_
#define FIRZEN_EVAL_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "src/eval/serving.h"

namespace firzen {

class ShardedServingEngine;

struct AdmissionOptions {
  /// Most users one fused pass serves; the dispatcher drains the queue in
  /// chunks of at most this many tickets. 1 disables coalescing (every
  /// request runs alone — useful as an A/B baseline).
  Index max_batch = 64;
  /// Longest the dispatcher holds an incomplete batch open for co-riders,
  /// measured from the oldest queued ticket's enqueue time. 0 = never wait:
  /// drain whatever is queued immediately (coalescing then comes only from
  /// requests arriving while a previous batch executes). The
  /// latency/throughput knob: a request's added latency is bounded by
  /// max_wait_us plus one fused pass.
  int64_t max_wait_us = 200;
};

/// Coalescing front end over a ServingEngine or ShardedServingEngine (or
/// any batch-serving backend). Construct it over the engine, then attach it
/// with engine.AttachAdmission(&controller) so the engine's own
/// Recommend/RecommendBatch route through it — or call the controller
/// directly. The engine-pointer constructors do NOT attach; attachment is
/// explicit so sibling engines can share one controller.
class AdmissionController {
 public:
  /// Executes one fused request batch; must be safe to call concurrently
  /// (both engines' direct paths are).
  using Backend =
      std::function<std::vector<RecResponse>(const std::vector<RecRequest>&)>;

  /// Fronts `engine` through its admission-bypassing direct path. The
  /// engine must outlive the controller.
  explicit AdmissionController(const ServingEngine* engine,
                               AdmissionOptions options = {});
  explicit AdmissionController(const ShardedServingEngine* engine,
                               AdmissionOptions options = {});
  /// Fronts an arbitrary backend (tests, RPC fan-out, ...).
  explicit AdmissionController(Backend backend, AdmissionOptions options = {});

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// All callers must have returned before destruction.
  ~AdmissionController() = default;

  /// Enqueues the request and blocks until its fused batch has been served.
  /// The response is bit-identical to the engine serving the request alone.
  RecResponse Recommend(const RecRequest& request) const;

  /// Enqueues every request (they may be split across fused batches and
  /// coalesced with other callers' tickets) and blocks until all are
  /// served. Response order matches request order.
  ///
  /// Failure semantics (only reachable with a throwing custom Backend —
  /// the engines' direct paths abort on broken invariants instead): if a
  /// fused pass throws, the dispatching caller rethrows the backend's
  /// exception and every other caller with a ticket in that pass throws
  /// std::runtime_error; the queue stays consistent and unrelated batches
  /// are unaffected.
  std::vector<RecResponse> RecommendBatch(
      const std::vector<RecRequest>& requests) const;

  const AdmissionOptions& options() const { return options_; }

  /// Requests admitted so far (monotonic; for tests and benchmarks).
  uint64_t admitted_requests() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  /// Fused passes executed so far. admitted_requests() / fused_batches()
  /// is the realized coalescing factor.
  uint64_t fused_batches() const {
    return fused_.load(std::memory_order_relaxed);
  }

 private:
  struct Ticket {
    const RecRequest* request = nullptr;
    RecResponse response;
    enum class State { kQueued, kClaimed, kDone } state = State::kQueued;
    bool failed = false;  // the ticket's fused pass threw
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Claims up to max_batch queued tickets and serves them in one fused
  /// backend pass. Called with `lock` held; temporarily releases it around
  /// the backend call.
  void ServeOneBatch(std::unique_lock<std::mutex>* lock) const;

  Backend backend_;
  AdmissionOptions options_;

  mutable std::mutex mu_;
  // Signals the collecting leader that the queue grew (its batch may now be
  // full). Followers and leaders-to-be wait on done_cv_: it fires when a
  // batch completes AND when leadership frees up with tickets still queued.
  mutable std::condition_variable queue_cv_;
  mutable std::condition_variable done_cv_;
  mutable std::vector<Ticket*> queue_;  // FIFO; tickets live on caller stacks
  mutable bool leader_active_ = false;

  mutable std::atomic<uint64_t> admitted_{0};
  mutable std::atomic<uint64_t> fused_{0};
};

}  // namespace firzen

#endif  // FIRZEN_EVAL_ADMISSION_H_
