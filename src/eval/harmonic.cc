#include "src/eval/harmonic.h"

namespace firzen {

Real HarmonicMean(Real a, Real b) {
  if (a <= 0.0 || b <= 0.0) return 0.0;
  return 2.0 * a * b / (a + b);
}

MetricBundle HarmonicMean(const MetricBundle& a, const MetricBundle& b) {
  MetricBundle m;
  m.recall = HarmonicMean(a.recall, b.recall);
  m.mrr = HarmonicMean(a.mrr, b.mrr);
  m.ndcg = HarmonicMean(a.ndcg, b.ndcg);
  m.hit = HarmonicMean(a.hit, b.hit);
  m.precision = HarmonicMean(a.precision, b.precision);
  return m;
}

}  // namespace firzen
