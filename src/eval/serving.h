// Online-serving helper: top-K recommendation queries against a trained
// Recommender, with per-user exclusion of already-consumed items and
// optional restriction to a candidate pool (e.g. only cold items for a
// "new arrivals" shelf).
#ifndef FIRZEN_EVAL_SERVING_H_
#define FIRZEN_EVAL_SERVING_H_

#include <vector>

#include "src/data/dataset.h"
#include "src/models/recommender.h"

namespace firzen {

/// One recommendation with its model score.
struct Recommendation {
  Index item;
  Real score;
};

class ServingIndex {
 public:
  /// The model must outlive the index. Exclusions default to each user's
  /// training interactions from `dataset`.
  ServingIndex(const Recommender* model, const Dataset& dataset);

  /// Top-k items for one user, best first. `candidates` empty = all items.
  /// Items the user already interacted with (train split) are excluded.
  std::vector<Recommendation> TopK(
      Index user, Index k, const std::vector<Index>& candidates = {}) const;

  /// Batched variant, one result list per user, preserving order.
  std::vector<std::vector<Recommendation>> TopKBatch(
      const std::vector<Index>& users, Index k,
      const std::vector<Index>& candidates = {}) const;

 private:
  const Recommender* model_;
  Index num_items_;
  std::vector<std::vector<Index>> seen_;  // sorted train items per user
};

}  // namespace firzen

#endif  // FIRZEN_EVAL_SERVING_H_
