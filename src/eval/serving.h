// Online-serving engine: top-K recommendation queries against a trained
// Recommender through the block-streaming Scorer API. Scoring and ranking
// are fused — item panels stream through a bounded min-heap per request —
// so a batch of requests peaks at O(batch_users * item_block) memory for
// any catalog size; the full users x items score matrix never materializes.
#ifndef FIRZEN_EVAL_SERVING_H_
#define FIRZEN_EVAL_SERVING_H_

#include <memory>
#include <vector>

#include "src/data/dataset.h"
#include "src/models/recommender.h"

namespace firzen {

/// One recommendation with its model score.
struct Recommendation {
  Index item;
  Real score;
};

/// Which items are withheld from a request's results.
enum class ExclusionPolicy {
  kTrainSeen,  // the user's training interactions (default)
  kCustom,     // exactly RecRequest::exclude
  kNone,       // nothing excluded
};

/// One top-K recommendation query.
struct RecRequest {
  Index user = 0;
  Index k = 10;
  /// Explicit candidate pool; empty = the full catalog (streamed in blocks).
  std::vector<Index> candidates;
  ExclusionPolicy exclusion = ExclusionPolicy::kTrainSeen;
  /// Items withheld under ExclusionPolicy::kCustom (any order, duplicates
  /// allowed).
  std::vector<Index> exclude;
  /// Restrict results to the strict cold-start shelf ("new arrivals").
  bool cold_only = false;
};

/// Ranked answer to one RecRequest, best first. May hold fewer than k items
/// when the pool is smaller than k or exclusions consume it — never an
/// error.
struct RecResponse {
  Index user = 0;
  std::vector<Recommendation> items;
};

struct ServingEngineOptions {
  /// Streamed scoring panel width (items per ScoreBlock call). Per-batch
  /// peak memory is batch_users * item_block * sizeof(Real).
  Index item_block = 8192;
  /// Pool for the fused ranking loops (heap pushes); nullptr =
  /// ThreadPool::Global(). Scoring kernels themselves parallelize over the
  /// global pool, as everywhere in the tensor layer.
  ThreadPool* pool = nullptr;
};

/// Request/response serving front end. Mints one Scorer from the model at
/// construction (re-construct after Prepare*ColdInference to pick up new
/// state). Not thread-safe: the underlying scorer keeps per-batch scratch —
/// build one engine per serving thread; each engine parallelizes internally
/// over the pool.
class ServingEngine {
 public:
  /// The model must outlive the engine. Train-seen exclusions and the cold
  /// shelf come from `dataset`.
  ServingEngine(const Recommender* model, const Dataset& dataset,
                ServingEngineOptions options = {});

  /// Engine over an explicit scorer (e.g. a DotProductScorer on loaded
  /// embeddings) — the offline-training / online-serving split.
  ServingEngine(std::unique_ptr<Scorer> scorer, const Dataset& dataset,
                ServingEngineOptions options = {});

  RecResponse Recommend(const RecRequest& request) const;

  /// Answers every request, preserving order. Requests over the full
  /// catalog share one fused score-and-rank stream.
  std::vector<RecResponse> RecommendBatch(
      const std::vector<RecRequest>& requests) const;

  Index num_items() const { return num_items_; }

 private:
  std::unique_ptr<Scorer> scorer_;
  Index num_items_;
  std::vector<std::vector<Index>> seen_;  // sorted train items per user
  std::vector<bool> is_cold_;
  ServingEngineOptions options_;
};

/// Deprecated serving front end, kept as a thin shim over ServingEngine so
/// existing call sites keep working. Prefer ServingEngine + RecRequest.
class ServingIndex {
 public:
  /// The model must outlive the index. Exclusions default to each user's
  /// training interactions from `dataset`.
  ServingIndex(const Recommender* model, const Dataset& dataset);

  /// Top-k items for one user, best first. `candidates` empty = all items.
  /// Items the user already interacted with (train split) are excluded.
  /// Returns fewer than k items (possibly none) when the candidate pool is
  /// exhausted.
  std::vector<Recommendation> TopK(
      Index user, Index k, const std::vector<Index>& candidates = {}) const;

  /// Batched variant, one result list per user, preserving order.
  std::vector<std::vector<Recommendation>> TopKBatch(
      const std::vector<Index>& users, Index k,
      const std::vector<Index>& candidates = {}) const;

 private:
  ServingEngine engine_;
};

}  // namespace firzen

#endif  // FIRZEN_EVAL_SERVING_H_
