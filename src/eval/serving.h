// Online-serving engine: top-K recommendation queries against a trained
// Recommender through the block-streaming Scorer API. Scoring and ranking
// are fused — item panels stream through a bounded min-heap per request —
// so a batch of requests peaks at O(batch_users * item_block) memory for
// any catalog size; the full users x items score matrix never materializes.
//
// Thread safety: one ServingEngine safely serves any number of concurrent
// request threads. The scorer is shared (it is logically const; per-call
// scratch lives in ScoringArenas recycled through an internal mutex-guarded
// pool), exclusion/cold-shelf state is immutable after construction, and
// responses are bit-identical to a single-threaded run regardless of how
// calls interleave. Do NOT mint one engine per thread — that only
// duplicates gather caches and mint-time projections.
//
// For catalogs whose item table outgrows one engine's working set, see
// ShardedServingEngine (src/eval/sharded_serving.h): the same
// request/response contract over a partitioned catalog, with responses
// bit-identical to this engine for any shard count. Both front ends drive
// the shared core in src/eval/serving_internal.h. Under heavy concurrent
// single-request traffic, front either engine with an AdmissionController
// (src/eval/admission.h): attached, it coalesces concurrent Recommend
// calls into fused user batches — one catalog stream per batch instead of
// one per request — with responses bit-identical to serving each request
// alone (scores are batch-size-invariant; see src/tensor/matrix.h).
#ifndef FIRZEN_EVAL_SERVING_H_
#define FIRZEN_EVAL_SERVING_H_

#include <memory>
#include <vector>

#include "src/data/dataset.h"
#include "src/models/recommender.h"

namespace firzen {

class AdmissionController;

/// One recommendation with its model score.
struct Recommendation {
  Index item;
  Real score;
};

/// Outcome of one RecRequest. The engines' direct paths always serve
/// (kOk); the non-kOk codes are produced by the overload-protection
/// policies of an attached AdmissionController (src/eval/admission.h), by
/// backend failures during a fused pass, and by shard failures under the
/// DistributedServingEngine (src/serve/distributed_serving.h). A response
/// with a non-kOk status carries no items — EXCEPT kDegraded, which
/// carries the best-effort merge over the shards that did answer.
enum class RecStatus {
  kOk = 0,
  /// Rejected at admission: the ticket queue was over its shedding
  /// watermark (AdmissionOptions::max_queue_depth). Retry later or
  /// elsewhere; the request was never scored.
  kShed,
  /// The request's deadline_us budget expired before a fused pass could
  /// serve it (or was zero at enqueue). Never scored late.
  kDeadlineExceeded,
  /// The fused pass this request rode threw; every coalesced ticket of
  /// that pass is rejected with this status (no torn results).
  kBackendError,
  /// Served from a PARTIAL catalog: one or more shard servers failed or
  /// timed out, so the response merges only the surviving shards' top-K
  /// lists. Unlike the other non-kOk codes it DOES carry items (possibly
  /// none, when every shard failed); RecResponse::failed_shards lists the
  /// shards whose slice is missing. Produced only by the distributed
  /// coordinator.
  kDegraded,
};

/// Stable human-readable name ("OK", "SHED", ...) for logs and CLIs.
const char* RecStatusName(RecStatus status);

/// Which items are withheld from a request's results.
enum class ExclusionPolicy {
  kTrainSeen,  // the user's training interactions (default)
  kCustom,     // exactly RecRequest::exclude
  kNone,       // nothing excluded
};

/// One top-K recommendation query.
struct RecRequest {
  Index user = 0;
  Index k = 10;
  /// Explicit candidate pool; empty = the full catalog (streamed in blocks).
  /// Any order; duplicate entries are deduplicated (each item is scored and
  /// recommended at most once).
  std::vector<Index> candidates;
  ExclusionPolicy exclusion = ExclusionPolicy::kTrainSeen;
  /// Items withheld under ExclusionPolicy::kCustom (any order, duplicates
  /// allowed).
  std::vector<Index> exclude;
  /// Restrict results to the strict cold-start shelf ("new arrivals").
  bool cold_only = false;
  /// Optional latency budget in microseconds, measured from admission
  /// enqueue. Negative = no deadline. Only an AdmissionController enforces
  /// it: a ticket whose budget expires before its fused pass starts is
  /// rejected with RecStatus::kDeadlineExceeded instead of scored late
  /// (0 = already expired at enqueue, rejected immediately). The engines'
  /// direct paths ignore it.
  int64_t deadline_us = -1;
  /// Fair-share tenant id (>= 0) under DrainPolicy::kFairShare: the
  /// admission drain interleaves per-tenant queues by weight so one hot
  /// tenant cannot starve the rest. Ignored by other policies and by the
  /// direct paths.
  Index tenant = 0;
};

/// Ranked answer to one RecRequest, best first. May hold fewer than k items
/// when the pool is smaller than k or exclusions consume it — never an
/// error. Items whose model score is NaN are never returned.
///
/// Check `status` first: a request rejected by admission overload
/// protection (shed, deadline exceeded) or failed by its fused pass
/// carries a non-kOk status and no items; a kDegraded response carries
/// the items merged from the shard servers that did answer. Served (kOk)
/// responses are bit-identical to serving the request alone, whatever
/// admission policy or shard layout routed them.
struct RecResponse {
  Index user = 0;
  RecStatus status = RecStatus::kOk;
  std::vector<Recommendation> items;
  /// Shard indices (coordinator connection order) whose top-K slice is
  /// missing from `items`. Non-empty exactly when status == kDegraded;
  /// empty for every other status.
  std::vector<Index> failed_shards;
};

struct ServingEngineOptions {
  /// Streamed scoring panel width (items per ScoreBlock call). Per-batch
  /// peak memory is batch_users * item_block * sizeof(Real).
  Index item_block = 8192;
  /// Pool for the fused ranking loops (heap pushes); nullptr =
  /// ThreadPool::Global(). Scoring kernels themselves parallelize over the
  /// global pool, as everywhere in the tensor layer.
  ThreadPool* pool = nullptr;
  /// Numeric tier for the minted scorer (model-based constructor only; an
  /// explicitly passed scorer keeps its own). kInt8 scores through the
  /// quantized catalog (docs/quantization.md); models without a factorized
  /// path silently keep fp32. For a fixed precision + SIMD tier + catalog,
  /// responses stay bit-identical across shard layouts, batch sizes, and
  /// thread counts — the quant suites pin this.
  ScoringPrecision precision = ScoringPrecision::kFp32;
};

/// Immutable per-catalog serving state: sorted train items per user (the
/// kTrainSeen exclusion lists) and the strict-cold-item bitmap. Engines hold
/// it by shared_ptr, so engines over the same dataset — per-shard engines of
/// a partitioned catalog, or an engine re-minted after
/// Prepare*ColdInference — share one copy instead of deep-copying it each.
/// The state must never be mutated once an engine holds it.
struct ServingSharedState {
  std::vector<std::vector<Index>> seen;  // sorted train items per user
  std::vector<bool> is_cold;

  /// Builds the state once from a dataset.
  static std::shared_ptr<const ServingSharedState> FromDataset(
      const Dataset& dataset);

  /// As above, but for datasets whose cold bitmap may be absent:
  /// `num_items` sizes the all-warm fallback (the serving engines pass the
  /// scorer's catalog size). The one construction path shared by
  /// ServingEngine and ShardedServingEngine.
  static std::shared_ptr<const ServingSharedState> FromDataset(
      const Dataset& dataset, Index num_items);
};

/// Request/response serving front end. Mints one Scorer from the model at
/// construction (re-construct after Prepare*ColdInference to pick up new
/// state). Thread-safe: share one engine across request threads — see the
/// file comment.
class ServingEngine {
 public:
  /// The model must outlive the engine. Train-seen exclusions and the cold
  /// shelf come from `dataset`.
  ServingEngine(const Recommender* model, const Dataset& dataset,
                ServingEngineOptions options = {});

  /// Engine over an explicit scorer (e.g. a DotProductScorer on loaded
  /// embeddings) — the offline-training / online-serving split.
  ServingEngine(std::unique_ptr<Scorer> scorer, const Dataset& dataset,
                ServingEngineOptions options = {});

  /// Engine sharing a pre-built state (see ServingSharedState): sibling
  /// engines — e.g. one per catalog shard — hold the same exclusion lists
  /// and cold bitmap instead of one deep copy each. `state` must be non-null
  /// and its is_cold size must match the scorer's catalog.
  ServingEngine(std::unique_ptr<Scorer> scorer,
                std::shared_ptr<const ServingSharedState> state,
                ServingEngineOptions options = {});

  /// Routed through the attached AdmissionController when one is attached
  /// (coalescing this call with concurrent callers'), else served directly.
  /// Responses are identical either way.
  RecResponse Recommend(const RecRequest& request) const;

  /// Answers every request, preserving order. Requests over the full
  /// catalog share one fused score-and-rank stream; requests with explicit
  /// (possibly unequal) candidate pools are batched by streaming the sorted
  /// union of their pools in bounded chunks — one batched scoring call per
  /// chunk instead of one per request. Routed through the attached
  /// AdmissionController when one is attached.
  std::vector<RecResponse> RecommendBatch(
      const std::vector<RecRequest>& requests) const;

  /// The execution path itself: serves the batch on the calling thread,
  /// bypassing any attached admission controller. This is what the
  /// controller's dispatcher invokes (routing it back through admission
  /// would deadlock); also useful as an A/B baseline. Thread-safe.
  std::vector<RecResponse> RecommendBatchDirect(
      const std::vector<RecRequest>& requests) const;

  /// Routes subsequent Recommend/RecommendBatch calls through `controller`
  /// (nullptr to detach). The controller must front THIS engine (or a
  /// bit-identical sibling) and must outlive the attachment. Setup-time
  /// operation: must not race with in-flight requests.
  void AttachAdmission(const AdmissionController* controller) {
    admission_ = controller;
  }
  const AdmissionController* admission() const { return admission_; }

  Index num_items() const { return num_items_; }

  /// The engine's shared exclusion/cold state, for constructing sibling
  /// engines over the same catalog.
  const std::shared_ptr<const ServingSharedState>& shared_state() const {
    return state_;
  }

 private:
  std::unique_ptr<const Scorer> scorer_;
  Index num_items_;
  std::shared_ptr<const ServingSharedState> state_;
  ServingEngineOptions options_;
  // Recycles per-call scoring scratch across requests; mutex-guarded, so
  // concurrent calls on this const engine each lease a private arena.
  mutable ArenaPool arenas_;
  // Optional admission-batching front end; see AttachAdmission.
  const AdmissionController* admission_ = nullptr;
};

}  // namespace firzen

#endif  // FIRZEN_EVAL_SERVING_H_
