// Bounded min-heap top-K selection shared by the all-ranking evaluator and
// the online-serving index. Replaces partial_sort-over-all-items: O(n log k)
// with a k-entry scratch buffer instead of O(n log n) over a full copy of
// the candidate scores.
#ifndef FIRZEN_EVAL_TOPK_H_
#define FIRZEN_EVAL_TOPK_H_

#include <vector>

#include "src/util/common.h"

namespace firzen {

/// One scored candidate.
struct ScoredItem {
  Index item;
  Real score;
};

/// Reusable bounded top-k selector. Ordering is deterministic: higher score
/// first, ties broken by lower item id — identical to the evaluator's
/// historical partial_sort comparator. Intended as per-thread scratch in
/// batched ranking loops: construct once, then Reset()/Push()/TakeSorted()
/// per user.
class TopKHeap {
 public:
  explicit TopKHeap(Index k);

  Index k() const { return k_; }

  /// Clears the heap for the next user; keeps the allocated scratch.
  void Reset() { heap_.clear(); }

  /// Offers one candidate. Kept iff it beats the current k-th best. NaN
  /// scores are dropped deterministically (they rank below every real
  /// score); letting them in would break Better's strict weak ordering.
  void Push(Index item, Real score);

  /// Sorts the retained candidates best-first in place and returns them.
  /// Invalidates the heap ordering: call Reset() before the next Push
  /// sequence. The buffer (and its capacity) stays owned by this object.
  const std::vector<ScoredItem>& Sorted();

 private:
  // True when a ranks strictly better than b (descending score, ascending
  // item id on ties). Used as the min-heap comparator, so the weakest
  // retained candidate sits at heap_.front().
  static bool Better(const ScoredItem& a, const ScoredItem& b) {
    return a.score != b.score ? a.score > b.score : a.item < b.item;
  }

  Index k_;
  std::vector<ScoredItem> heap_;
};

}  // namespace firzen

#endif  // FIRZEN_EVAL_TOPK_H_
