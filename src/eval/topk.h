// Bounded min-heap top-K selection shared by the all-ranking evaluator and
// the online-serving index. Replaces partial_sort-over-all-items: O(n log k)
// with a k-entry scratch buffer instead of O(n log n) over a full copy of
// the candidate scores.
#ifndef FIRZEN_EVAL_TOPK_H_
#define FIRZEN_EVAL_TOPK_H_

#include <vector>

#include "src/util/common.h"
// ScoredItem and RanksBefore — THE ranking total order — live in the util
// layer (src/util/ranking.h) so lower layers can share them; this header
// re-exports them for all historical includers.
#include "src/util/ranking.h"

namespace firzen {

/// Reusable bounded top-k selector. Ordering is deterministic: higher score
/// first, ties broken by lower item id (RanksBefore above) — identical to
/// the evaluator's historical partial_sort comparator. Intended as
/// per-thread scratch in batched ranking loops: construct once, then
/// Reset()/Push()/TakeSorted() per user.
class TopKHeap {
 public:
  explicit TopKHeap(Index k);

  Index k() const { return k_; }

  /// Clears the heap for the next user; keeps the allocated scratch.
  void Reset() { heap_.clear(); }

  /// Offers one candidate. Kept iff it beats the current k-th best. NaN
  /// scores are dropped deterministically (they rank below every real
  /// score); letting them in would break Better's strict weak ordering.
  void Push(Index item, Real score);

  /// True when Push(item, score) would change the heap — i.e. the heap is
  /// not yet full, or the candidate beats the current k-th best under
  /// RanksBefore. Cheap (one comparison, no reheap): ranking loops test it
  /// BEFORE paying per-item eligibility checks (exclusion binary searches,
  /// cold-bitmap loads), since once the heap is warm almost every streamed
  /// item fails it. Filtering this way is bit-neutral: a candidate that
  /// fails would have left the heap unchanged anyway. NaN fails against a
  /// full heap and is dropped by Push itself otherwise.
  bool MightAccept(Index item, Real score) const {
    return static_cast<Index>(heap_.size()) < k_ ||
           RanksBefore({item, score}, heap_.front());
  }

  /// Sorts the retained candidates best-first in place and returns them.
  /// Invalidates the heap ordering: call Reset() before the next Push
  /// sequence. The buffer (and its capacity) stays owned by this object.
  const std::vector<ScoredItem>& Sorted();

 private:
  // RanksBefore as the min-heap comparator, so the weakest retained
  // candidate sits at heap_.front().
  static bool Better(const ScoredItem& a, const ScoredItem& b) {
    return RanksBefore(a, b);
  }

  Index k_;
  std::vector<ScoredItem> heap_;
};

}  // namespace firzen

#endif  // FIRZEN_EVAL_TOPK_H_
