#include "src/eval/topk.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace firzen {

TopKHeap::TopKHeap(Index k) : k_(k) {
  FIRZEN_CHECK_GT(k, 0);
  heap_.reserve(static_cast<size_t>(k) + 1);
}

void TopKHeap::Push(Index item, Real score) {
  // NaN compares false against everything, which breaks Better's strict
  // weak ordering — push_heap/sort_heap over a NaN-laden buffer is UB and
  // can emit garbage rankings. Deterministic policy: a NaN score ranks
  // below every real score, i.e. it is never retained, so drop it here.
  if (std::isnan(score)) return;
  const ScoredItem e{item, score};
  if (static_cast<Index>(heap_.size()) < k_) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), Better);
  } else if (Better(e, heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Better);
    heap_.back() = e;
    std::push_heap(heap_.begin(), heap_.end(), Better);
  }
}

const std::vector<ScoredItem>& TopKHeap::Sorted() {
  // sort_heap under `Better` leaves the sequence in worst-first order of the
  // min-heap comparator, i.e. best-first for the caller.
  std::sort_heap(heap_.begin(), heap_.end(), Better);
  return heap_;
}

}  // namespace firzen
