// Shared request-resolution and fused score-and-rank machinery behind
// ServingEngine and ShardedServingEngine. Both front ends resolve requests
// once (exclusion lists, deduplicated candidate pools — all in GLOBAL item
// ids), then drive RankRequestsInRange over one or many item ranges: the
// single engine passes its base scorer over the whole catalog, the sharded
// engine passes one ItemRangeScorer view per shard. One implementation,
// exercised by every serving path, is what keeps the shard-invariance
// contract ("bit-identical responses for any shard count") enforceable —
// the two engines cannot drift apart in exclusion, dedup, cold-shelf, or
// candidate-pool semantics because they share this code.
//
// The distributed shard server (src/serve/shard_server.cc) drives the same
// core over a socket: it runs PrepareBatch + RankRequestsInRange for its
// range and ships the heaps' sorted contents as wire frames, which is what
// makes a distributed response byte-identical to the in-process engines.
//
// Internal header: not part of the public serving API; include only from
// src/eval/*.cc, src/serve/*.cc, and tests that need the raw machinery.
#ifndef FIRZEN_EVAL_SERVING_INTERNAL_H_
#define FIRZEN_EVAL_SERVING_INTERNAL_H_

#include <vector>

#include "src/eval/serving.h"
#include "src/eval/topk.h"
#include "src/models/scorer.h"
#include "src/util/thread_pool.h"

namespace firzen {
namespace serving_internal {

/// Null-checked Recommender::MakeScorer(precision), shared by both engines'
/// model constructors. kFp32 preserves the historical mint exactly.
std::unique_ptr<Scorer> MintScorer(
    const Recommender* model,
    ScoringPrecision precision = ScoringPrecision::kFp32);

/// Shard-independent resolved state for one RecRequest: the exclusion list
/// to binary-search (sorted, global ids) and, for explicit pools, the
/// deduplicated sorted candidates. Prepared once per batch and shared by
/// every item range the request is ranked over.
struct PreparedRequest {
  const std::vector<Index>* exclude = nullptr;  // sorted, may be null
  std::vector<Index> custom_sorted;             // backing store for kCustom
  std::vector<Index> pool_sorted;  // sorted unique explicit pool (else empty)
};

/// Validates `requests` (k > 0, user >= 0, candidates within
/// [0, num_items)) and resolves each against `state`: kTrainSeen binds the
/// user's sorted train list, kCustom sorts the request's own exclude list,
/// explicit candidate pools are sorted and deduplicated. The returned
/// vector parallels `requests`; elements never relocate (exclude may point
/// into the element's own custom_sorted).
std::vector<PreparedRequest> PrepareRequests(
    const std::vector<RecRequest>& requests, const ServingSharedState& state,
    Index num_items);

/// The whole batch resolved once: per-request state plus the batching plan
/// every item range executes — which requests stream the full catalog
/// (and their user batch), and how explicit pools are scored: one union
/// stream over all explicit requests, or per-identical-pool groups when
/// the union would waste more than kUnionWasteFactor cells (barely
/// overlapping pools). The plan is derived ONLY from the full request
/// batch, never from any item range: it is paid once for any number of
/// shards, and a range-independent plan keeps the per-shard work streams
/// structurally identical. (Scores themselves are batch-size-invariant —
/// the Gemm A * B^T contract in src/tensor/matrix.h — so shard layout
/// could not bend a bit even if the user batches differed; the fixed plan
/// is a cost/clarity invariant.)
struct PreparedBatch {
  std::vector<PreparedRequest> requests;  // parallels the RecRequest batch
  std::vector<size_t> streamed;           // full-catalog request indices
  std::vector<Index> streamed_users;
  bool use_union = false;
  std::vector<size_t> explicit_idx;  // all explicit-pool request indices
  std::vector<Index> union_items;    // sorted unique union (union mode)
  std::vector<Index> union_users;    // user batch for the union stream
  std::vector<std::vector<size_t>> groups;       // grouped mode: indices
  std::vector<std::vector<Index>> group_users;   // user batch per group
};

/// Builds the shard-invariant plan above.
PreparedBatch PrepareBatch(const std::vector<RecRequest>& requests,
                           const ServingSharedState& state, Index num_items);

/// Scores the global item range [range.begin, range.end) for every request
/// and pushes each eligible item into (*heaps)[i] keyed by GLOBAL item id.
/// `scorer` is a view whose local item j is global item range.begin + j —
/// the base scorer itself when the range spans the whole catalog, an
/// ItemRangeScorer for a shard. Full-catalog requests share one fused
/// ScoreBlock+heap stream over `item_block`-wide panels; explicit pools
/// execute `batch`'s plan restricted to the range: the in-range slice of
/// the union (or of each group's pool) streams in bounded chunks while the
/// user batches stay exactly as planned, so per-cell scores — and
/// therefore responses — cannot depend on the range partitioning. The
/// heaps retain a unique top-k under RanksBefore, so ranking a catalog as
/// one range or as many disjoint ranges retains exactly the same
/// candidates at the same scores.
///
/// `arena` carries this call's scoring scratch and must not be shared with
/// a concurrent call; `pool` drives the per-request heap-push loops
/// (nullptr = inline). heaps->size() must equal requests.size().
void RankRequestsInRange(const Scorer& scorer, ItemBlock range,
                         const std::vector<RecRequest>& requests,
                         const PreparedBatch& batch,
                         const ServingSharedState& state, Index item_block,
                         ThreadPool* pool, ScoringArena* arena,
                         std::vector<TopKHeap>* heaps);

}  // namespace serving_internal
}  // namespace firzen

#endif  // FIRZEN_EVAL_SERVING_INTERNAL_H_
