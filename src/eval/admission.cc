#include "src/eval/admission.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/eval/sharded_serving.h"
#include "src/util/check.h"

namespace firzen {

AdmissionController::AdmissionController(const ServingEngine* engine,
                                         AdmissionOptions options)
    : options_(options) {
  FIRZEN_CHECK(engine != nullptr);
  FIRZEN_CHECK_GT(options_.max_batch, 0);
  FIRZEN_CHECK_GE(options_.max_wait_us, 0);
  backend_ = [engine](const std::vector<RecRequest>& requests) {
    return engine->RecommendBatchDirect(requests);
  };
}

AdmissionController::AdmissionController(const ShardedServingEngine* engine,
                                         AdmissionOptions options)
    : options_(options) {
  FIRZEN_CHECK(engine != nullptr);
  FIRZEN_CHECK_GT(options_.max_batch, 0);
  FIRZEN_CHECK_GE(options_.max_wait_us, 0);
  backend_ = [engine](const std::vector<RecRequest>& requests) {
    return engine->RecommendBatchDirect(requests);
  };
}

AdmissionController::AdmissionController(Backend backend,
                                         AdmissionOptions options)
    : backend_(std::move(backend)), options_(options) {
  FIRZEN_CHECK(backend_ != nullptr);
  FIRZEN_CHECK_GT(options_.max_batch, 0);
  FIRZEN_CHECK_GE(options_.max_wait_us, 0);
}

RecResponse AdmissionController::Recommend(const RecRequest& request) const {
  return RecommendBatch({request})[0];
}

std::vector<RecResponse> AdmissionController::RecommendBatch(
    const std::vector<RecRequest>& requests) const {
  std::vector<RecResponse> responses(requests.size());
  if (requests.empty()) return responses;
  admitted_.fetch_add(requests.size(), std::memory_order_relaxed);

  // Tickets live on this stack frame; the vector never reallocates, and we
  // do not return until every ticket is done, so queued pointers into it
  // are valid for exactly as long as the queue can hold them.
  std::vector<Ticket> tickets(requests.size());
  std::unique_lock<std::mutex> lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  for (size_t i = 0; i < requests.size(); ++i) {
    tickets[i].request = &requests[i];
    tickets[i].enqueued = now;
    queue_.push_back(&tickets[i]);
  }
  // A collecting leader may be blocked waiting for its batch to fill.
  if (leader_active_) queue_cv_.notify_one();

  const auto all_done = [&] {
    for (const Ticket& t : tickets) {
      if (t.state != Ticket::State::kDone) return false;
    }
    return true;
  };
  const auto any_queued = [&] {
    for (const Ticket& t : tickets) {
      if (t.state == Ticket::State::kQueued) return true;
    }
    return false;
  };
  while (!all_done()) {
    if (!leader_active_ && any_queued()) {
      // No dispatcher and our work is still queued: serve a batch
      // ourselves. It drains FIFO, so it may consist of other callers'
      // tickets (and ours may be served by another leader meanwhile) —
      // the loop simply continues until everything we enqueued is done.
      try {
        ServeOneBatch(&lock);
      } catch (...) {
        // A throwing custom backend (the engines' direct paths never
        // throw). Unwind safety: queued Ticket pointers die with this
        // frame, so pull ours out of the shared queue, wait out any of
        // ours another dispatcher has claimed, then surface the error.
        queue_.erase(
            std::remove_if(queue_.begin(), queue_.end(),
                           [&](const Ticket* t) {
                             for (const Ticket& own : tickets) {
                               if (t == &own) return true;
                             }
                             return false;
                           }),
            queue_.end());
        const auto none_claimed = [&] {
          for (const Ticket& t : tickets) {
            if (t.state == Ticket::State::kClaimed) return false;
          }
          return true;
        };
        while (!none_claimed()) done_cv_.wait(lock);
        throw;
      }
    } else {
      done_cv_.wait(lock);
    }
  }
  for (const Ticket& t : tickets) {
    if (t.failed) {
      // Our ticket rode a fused pass whose backend threw on another
      // caller's thread (which rethrew the original exception there).
      throw std::runtime_error(
          "AdmissionController: the backend failed for this request's "
          "fused batch");
    }
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    responses[i] = std::move(tickets[i].response);
  }
  return responses;
}

void AdmissionController::ServeOneBatch(
    std::unique_lock<std::mutex>* lock) const {
  leader_active_ = true;
  // Hold the batch open for co-riders until it is full or the OLDEST queued
  // ticket has waited its bound (so no request's added latency exceeds
  // max_wait_us regardless of how leadership changes hands).
  const size_t max_batch = static_cast<size_t>(options_.max_batch);
  if (options_.max_wait_us > 0 && queue_.size() < max_batch &&
      !queue_.empty()) {
    const auto deadline =
        queue_.front()->enqueued +
        std::chrono::microseconds(options_.max_wait_us);
    queue_cv_.wait_until(*lock, deadline,
                         [&] { return queue_.size() >= max_batch; });
  }

  // Allocate everything the pass needs BEFORE touching shared state: a
  // bad_alloc past this block would otherwise wedge the controller (stuck
  // leadership, or claimed tickets no one will ever complete).
  const size_t take = std::min(queue_.size(), max_batch);
  std::vector<Ticket*> claimed;
  std::vector<RecRequest> batch;
  try {
    claimed.assign(queue_.begin(), queue_.begin() + static_cast<long>(take));
    batch.reserve(take);
    for (const Ticket* t : claimed) batch.push_back(*t->request);
  } catch (...) {
    leader_active_ = false;
    done_cv_.notify_all();  // a waiting caller can take over leadership
    throw;
  }
  // Point of no return: only non-throwing operations between here and the
  // guarded backend call. Resign leadership before executing: the next
  // arrival (or a waiting caller with still-queued tickets, woken below)
  // becomes the next dispatcher and collects the next batch while this
  // one scores.
  queue_.erase(queue_.begin(), queue_.begin() + static_cast<long>(take));
  for (Ticket* t : claimed) t->state = Ticket::State::kClaimed;
  leader_active_ = false;
  if (!queue_.empty()) done_cv_.notify_all();
  fused_.fetch_add(1, std::memory_order_relaxed);
  lock->unlock();
  std::vector<RecResponse> results;
  try {
    results = backend_(batch);
  } catch (...) {
    // Mark every rider of this pass failed and wake them (their
    // RecommendBatch surfaces the failure as std::runtime_error), then
    // rethrow the original exception on this, the dispatching, caller —
    // with the lock re-held, as our caller's unwind path expects.
    lock->lock();
    for (Ticket* t : claimed) {
      t->failed = true;
      t->state = Ticket::State::kDone;
    }
    done_cv_.notify_all();
    throw;
  }
  lock->lock();
  FIRZEN_CHECK_EQ(static_cast<Index>(results.size()),
                  static_cast<Index>(claimed.size()));
  for (size_t i = 0; i < claimed.size(); ++i) {
    claimed[i]->response = std::move(results[i]);
    claimed[i]->state = Ticket::State::kDone;
  }
  done_cv_.notify_all();
}

}  // namespace firzen
