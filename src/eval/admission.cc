#include "src/eval/admission.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <utility>

#include "src/eval/sharded_serving.h"
#include "src/util/check.h"

// The DistributedServingEngine constructor overload lives in
// src/serve/distributed_serving.cc: eval/ must not include serve/ (layering
// — see tools/firzen_lint.py), and a member function of AdmissionController
// is free to be defined in the TU that owns the full engine type.

namespace firzen {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

void AdmissionController::Validate() const {
  FIRZEN_CHECK_GT(options_.max_batch, 0);
  FIRZEN_CHECK_GE(options_.max_wait_us, 0);
  FIRZEN_CHECK_GE(options_.max_queue_depth, 0);
  if (options_.max_queue_depth > 0) {
    FIRZEN_CHECK_LT(options_.resume_queue_depth, options_.max_queue_depth);
  }
}

AdmissionController::AdmissionController(const ServingEngine* engine,
                                         AdmissionOptions options)
    : options_(std::move(options)) {
  FIRZEN_CHECK(engine != nullptr);
  if (options_.resume_queue_depth < 0) {
    options_.resume_queue_depth = options_.max_queue_depth / 2;
  }
  Validate();
  backend_ = [engine](const std::vector<RecRequest>& requests) {
    return engine->RecommendBatchDirect(requests);
  };
}

AdmissionController::AdmissionController(const ShardedServingEngine* engine,
                                         AdmissionOptions options)
    : options_(std::move(options)) {
  FIRZEN_CHECK(engine != nullptr);
  if (options_.resume_queue_depth < 0) {
    options_.resume_queue_depth = options_.max_queue_depth / 2;
  }
  Validate();
  backend_ = [engine](const std::vector<RecRequest>& requests) {
    return engine->RecommendBatchDirect(requests);
  };
}

AdmissionController::AdmissionController(Backend backend,
                                         AdmissionOptions options)
    : backend_(std::move(backend)), options_(std::move(options)) {
  FIRZEN_CHECK(backend_ != nullptr);
  if (options_.resume_queue_depth < 0) {
    options_.resume_queue_depth = options_.max_queue_depth / 2;
  }
  Validate();
}

RecResponse AdmissionController::Recommend(const RecRequest& request) const {
  return RecommendBatch({request})[0];
}

void AdmissionController::Reject(Ticket* ticket, RecStatus status) const {
  ticket->response.user = ticket->request->user;
  ticket->response.status = status;
  ticket->response.items.clear();
  ticket->state = Ticket::State::kDone;
  if (status == RecStatus::kShed) {
    shed_.fetch_add(1, std::memory_order_relaxed);
  } else if (status == RecStatus::kDeadlineExceeded) {
    deadline_rejected_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool AdmissionController::ShouldShed() const {
  if (options_.max_queue_depth <= 0) return false;
  const Index depth = static_cast<Index>(queue_.size());
  // Hysteresis: shedding starts when the queue is full and stops only once
  // it has drained past the (strictly lower) resume watermark, so the
  // controller does not flap between admitting and shedding at the
  // boundary.
  if (shedding_ && depth <= options_.resume_queue_depth) shedding_ = false;
  if (!shedding_ && depth >= options_.max_queue_depth) shedding_ = true;
  return shedding_;
}

bool AdmissionController::SweepExpired(Clock::time_point now) const {
  bool any = false;
  for (Ticket* ticket : queue_) {
    if (ticket->has_deadline && ticket->deadline <= now) {
      Reject(ticket, RecStatus::kDeadlineExceeded);
      any = true;
    }
  }
  if (any) {
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                [](const Ticket* t) {
                                  return t->state == Ticket::State::kDone;
                                }),
                 queue_.end());
    done_cv_.NotifyAll();
  }
  return any;
}

std::vector<AdmissionController::Ticket*> AdmissionController::SelectBatch()
    const {
  const size_t take =
      std::min(queue_.size(), static_cast<size_t>(options_.max_batch));
  std::vector<Ticket*> selected;
  selected.reserve(take);
  switch (options_.drain_policy) {
    case DrainPolicy::kFifo: {
      selected.assign(queue_.begin(),
                      queue_.begin() + static_cast<long>(take));
      break;
    }
    case DrainPolicy::kDeadline: {
      // Earliest-deadline-first; deadline-less tickets after every
      // deadlined one; arrival order breaks ties (stable sort over the
      // FIFO queue).
      std::vector<size_t> order(queue_.size());
      std::iota(order.begin(), order.end(), size_t{0});
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const Ticket* ta = queue_[a];
        const Ticket* tb = queue_[b];
        if (ta->has_deadline != tb->has_deadline) return ta->has_deadline;
        if (ta->has_deadline && ta->deadline != tb->deadline) {
          return ta->deadline < tb->deadline;
        }
        return false;
      });
      for (size_t i = 0; i < take; ++i) selected.push_back(queue_[order[i]]);
      break;
    }
    case DrainPolicy::kFairShare: {
      // Weighted round-robin over per-tenant FIFO queues: each round
      // visits the queued tenants in ascending id and takes up to
      // weight(t) tickets from tenant t, until the batch is full — so a
      // hot tenant's backlog cannot push other tenants' tickets out of
      // the drain indefinitely.
      std::map<Index, std::vector<Ticket*>> by_tenant;
      for (Ticket* ticket : queue_) {
        by_tenant[ticket->request->tenant].push_back(ticket);
      }
      const auto weight_of = [&](Index tenant) {
        if (tenant >= 0 &&
            tenant < static_cast<Index>(options_.tenant_weights.size())) {
          return std::max<Index>(1, options_.tenant_weights[
                                        static_cast<size_t>(tenant)]);
        }
        return Index{1};
      };
      std::map<Index, size_t> heads;
      while (selected.size() < take) {
        bool progressed = false;
        for (auto& [tenant, tickets] : by_tenant) {
          const Index weight = weight_of(tenant);
          size_t& head = heads[tenant];
          for (Index c = 0; c < weight && selected.size() < take; ++c) {
            if (head >= tickets.size()) break;
            selected.push_back(tickets[head++]);
            progressed = true;
          }
          if (selected.size() >= take) break;
        }
        if (!progressed) break;
      }
      break;
    }
  }
  return selected;
}

std::vector<RecResponse> AdmissionController::RecommendBatch(
    const std::vector<RecRequest>& requests) const {
  std::vector<RecResponse> responses(requests.size());
  if (requests.empty()) return responses;

  // Tickets live on this stack frame; the vector never reallocates, and we
  // do not return until every ticket is done, so queued pointers into it
  // are valid for exactly as long as the queue can hold them.
  std::vector<Ticket> tickets(requests.size());
  MutexLock lock(mu_);
  const auto now = Clock::now();
  size_t enqueued_count = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    Ticket& ticket = tickets[i];
    ticket.request = &requests[i];
    ticket.enqueued = now;
    if (requests[i].deadline_us >= 0) {
      ticket.has_deadline = true;
      ticket.deadline = now + std::chrono::microseconds(requests[i].deadline_us);
    }
    // Overload protection happens HERE, before the ticket can block: a
    // zero budget is already expired at enqueue, and a full queue sheds
    // the arrival immediately instead of queueing it unboundedly.
    if (ticket.has_deadline && requests[i].deadline_us == 0) {
      Reject(&ticket, RecStatus::kDeadlineExceeded);
      continue;
    }
    if (ShouldShed()) {
      Reject(&ticket, RecStatus::kShed);
      continue;
    }
    queue_.push_back(&ticket);
    ++enqueued_count;
  }
  admitted_.fetch_add(enqueued_count, std::memory_order_relaxed);
  // A collecting leader may be blocked waiting for its batch to fill (or
  // for the nearest deadline); wake it to re-evaluate.
  if (enqueued_count > 0 && leader_active_) queue_cv_.NotifyOne();

  const auto all_done = [&] {
    for (const Ticket& t : tickets) {
      if (t.state != Ticket::State::kDone) return false;
    }
    return true;
  };
  const auto any_queued = [&] {
    for (const Ticket& t : tickets) {
      if (t.state == Ticket::State::kQueued) return true;
    }
    return false;
  };
  while (!all_done()) {
    if (!leader_active_ && any_queued()) {
      // No dispatcher and our work is still queued: serve a batch
      // ourselves. Drain order follows the policy, so it may consist of
      // other callers' tickets (and ours may be served by another leader
      // meanwhile) — the loop simply continues until everything we
      // enqueued is done.
      try {
        ServeOneBatch(&lock);
      } catch (...) {
        // Allocation failure before the claim (backend exceptions are
        // absorbed into per-ticket kBackendError statuses and never reach
        // here). Unwind safety: queued Ticket pointers die with this
        // frame, so pull ours out of the shared queue, wait out any of
        // ours another dispatcher has claimed, then surface the error.
        queue_.erase(
            std::remove_if(queue_.begin(), queue_.end(),
                           [&](const Ticket* t) {
                             for (const Ticket& own : tickets) {
                               if (t == &own) return true;
                             }
                             return false;
                           }),
            queue_.end());
        const auto none_claimed = [&] {
          for (const Ticket& t : tickets) {
            if (t.state == Ticket::State::kClaimed) return false;
          }
          return true;
        };
        while (!none_claimed()) done_cv_.Wait(lock);
        throw;
      }
    } else {
      done_cv_.Wait(lock);
    }
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    responses[i] = std::move(tickets[i].response);
  }
  return responses;
}

void AdmissionController::ServeOneBatch(MutexLock* lock) const {
  leader_active_ = true;
  // Hold the batch open for co-riders until it is full, the OLDEST queued
  // ticket has waited its bound (so no request's added latency exceeds
  // max_wait_us regardless of how leadership changes hands), or the
  // NEAREST queued deadline arrives (so the hold itself never expires a
  // ticket the drain could still serve).
  const size_t max_batch = static_cast<size_t>(options_.max_batch);
  if (options_.max_wait_us > 0) {
    while (queue_.size() < max_batch && !queue_.empty()) {
      auto target = queue_.front()->enqueued +
                    std::chrono::microseconds(options_.max_wait_us);
      for (const Ticket* t : queue_) {
        if (t->has_deadline && t->deadline < target) target = t->deadline;
      }
      if (Clock::now() >= target) break;
      // Wakes on new arrivals (batch may be full, or a nearer deadline
      // arrived — recompute either way) and on timeout.
      queue_cv_.WaitUntil(*lock, target);
    }
  }
  // Expired tickets are rejected, never scored late — whatever the drain
  // policy.
  SweepExpired(Clock::now());
  if (queue_.empty()) {
    // Everything queued expired while we collected; nothing to serve.
    leader_active_ = false;
    done_cv_.NotifyAll();
    return;
  }

  // Allocate everything the pass needs BEFORE touching shared state: a
  // bad_alloc past this block would otherwise wedge the controller (stuck
  // leadership, or claimed tickets no one will ever complete).
  std::vector<Ticket*> claimed;
  std::vector<RecRequest> batch;
  try {
    claimed = SelectBatch();
    batch.reserve(claimed.size());
    for (const Ticket* t : claimed) batch.push_back(*t->request);
  } catch (...) {
    leader_active_ = false;
    done_cv_.NotifyAll();  // a waiting caller can take over leadership
    throw;
  }
  // Point of no return: only non-throwing operations between here and the
  // guarded backend call. Resign leadership before executing: the next
  // arrival (or a waiting caller with still-queued tickets, woken below)
  // becomes the next dispatcher and collects the next batch while this
  // one scores.
  for (Ticket* t : claimed) t->state = Ticket::State::kClaimed;
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [](const Ticket* t) {
                                return t->state == Ticket::State::kClaimed;
                              }),
               queue_.end());
  leader_active_ = false;
  if (!queue_.empty()) done_cv_.NotifyAll();
  fused_.fetch_add(1, std::memory_order_relaxed);
  std::vector<RecResponse> results;
  bool backend_threw = false;
  {
    // Drop the lock only around the backend pass; the catch-all keeps any
    // exception from escaping the unlocked region (see MutexUnlock).
    MutexUnlock unlock(*lock, mu_);
    try {
      results = backend_(batch);
    } catch (...) {
      backend_threw = true;
    }
  }
  if (backend_threw) {
    // Structured failure fan-out: the pass is gone, so EVERY coalesced
    // ticket it carried completes with an explicit per-ticket error
    // status — no exception propagation, no torn results, no follower
    // left blocked. The queue was already consistent (claimed tickets
    // left it above), so unrelated batches are unaffected and the
    // controller keeps serving.
    backend_failures_.fetch_add(1, std::memory_order_relaxed);
    for (Ticket* t : claimed) {
      t->response.user = t->request->user;
      t->response.status = RecStatus::kBackendError;
      t->response.items.clear();
      t->state = Ticket::State::kDone;
    }
    done_cv_.NotifyAll();
    return;
  }
  FIRZEN_CHECK_EQ(static_cast<Index>(results.size()),
                  static_cast<Index>(claimed.size()));
  for (size_t i = 0; i < claimed.size(); ++i) {
    claimed[i]->response = std::move(results[i]);
    claimed[i]->state = Ticket::State::kDone;
  }
  done_cv_.NotifyAll();
}

}  // namespace firzen
