// Harmonic-mean balancing of cold and warm results (paper §IV-A.2: "a
// harmonic mean of metrics in two settings, which ... penalizes models with
// a short barrel").
#ifndef FIRZEN_EVAL_HARMONIC_H_
#define FIRZEN_EVAL_HARMONIC_H_

#include "src/eval/evaluator.h"

namespace firzen {

/// Scalar harmonic mean; returns 0 when either input is <= 0.
Real HarmonicMean(Real a, Real b);

/// Metric-wise harmonic mean of two bundles.
MetricBundle HarmonicMean(const MetricBundle& a, const MetricBundle& b);

}  // namespace firzen

#endif  // FIRZEN_EVAL_HARMONIC_H_
