// All-ranking evaluation protocol (paper §IV-A.2): for each user with at
// least one relevant item in the split, rank ALL candidate items (no sampled
// negatives) and average Top-K metrics. Candidate sets:
//   * warm setting: every warm item the user has not interacted with in
//     training;
//   * cold setting: every strict cold item.
#ifndef FIRZEN_EVAL_EVALUATOR_H_
#define FIRZEN_EVAL_EVALUATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/eval/metrics.h"
#include "src/util/thread_pool.h"

namespace firzen {

/// Produces a (users.size() x num_items) score matrix for the given users.
using ScoreFn =
    std::function<void(const std::vector<Index>& users, Matrix* scores)>;

enum class EvalSetting { kWarm, kCold };

struct EvalOptions {
  Index k = 20;
  Index user_batch = 512;
  ThreadPool* pool = nullptr;
};

/// Averaged metrics plus the evaluated-user count.
struct EvalResult {
  MetricBundle metrics;
  Index num_users = 0;
};

/// Evaluates `score_fn` against `split` under the given setting.
EvalResult EvaluateRanking(const Dataset& dataset,
                           const std::vector<Interaction>& split,
                           EvalSetting setting, const ScoreFn& score_fn,
                           const EvalOptions& options = {});

/// Pretty one-line summary "R=.. M=.. N=.. H=.. P=.." in percentage points.
std::string FormatEvalResult(const EvalResult& result);

}  // namespace firzen

#endif  // FIRZEN_EVAL_EVALUATOR_H_
