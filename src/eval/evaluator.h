// All-ranking evaluation protocol (paper §IV-A.2): for each user with at
// least one relevant item in the split, rank ALL candidate items (no sampled
// negatives) and average Top-K metrics. Candidate sets:
//   * warm setting: every warm item the user has not interacted with in
//     training;
//   * cold setting: every strict cold item.
// Scoring streams through the block Scorer API fused with bounded top-K
// selection, so peak memory is O(user_batch * item_block) — the full
// users x items score matrix never materializes.
#ifndef FIRZEN_EVAL_EVALUATOR_H_
#define FIRZEN_EVAL_EVALUATOR_H_

#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/eval/metrics.h"
#include "src/models/scorer.h"
#include "src/util/thread_pool.h"

namespace firzen {

enum class EvalSetting { kWarm, kCold };

struct EvalOptions {
  Index k = 20;
  Index user_batch = 512;
  /// Streamed scoring panel width (items per ScoreBlock call).
  Index item_block = 8192;
  /// Pool for the fused ranking/metric loops; nullptr = serial. Scoring
  /// kernels parallelize over ThreadPool::Global() regardless.
  ThreadPool* pool = nullptr;
  /// Partition the catalog into this many contiguous shards and rank each
  /// through a per-shard scorer view, merging per-user per-shard top-k
  /// lists under the serving total order (src/eval/sharded_serving.h) —
  /// the same shard/merge machinery ShardedServingEngine uses online, so
  /// offline metrics exercise the sharded code path. Results are
  /// bit-identical for any value (clamped to [1, num_items]).
  Index num_shards = 1;
};

/// Averaged metrics plus the evaluated-user count.
struct EvalResult {
  MetricBundle metrics;
  Index num_users = 0;
};

/// Evaluates `scorer` against `split` under the given setting. Results are
/// bit-identical for any user_batch / item_block / pool / num_shards
/// configuration: per-item scores are batch-size-invariant (the Gemm
/// A * B^T contract, src/tensor/matrix.h), so even the ragged final user
/// batch cannot shift a metric by an ulp.
EvalResult EvaluateRanking(const Dataset& dataset,
                           const std::vector<Interaction>& split,
                           EvalSetting setting, const Scorer& scorer,
                           const EvalOptions& options = {});

/// Pretty one-line summary "R=.. M=.. N=.. H=.. P=.." in percentage points.
std::string FormatEvalResult(const EvalResult& result);

}  // namespace firzen

#endif  // FIRZEN_EVAL_EVALUATOR_H_
