#include "src/eval/evaluator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/eval/sharded_serving.h"
#include "src/eval/topk.h"
#include "src/util/check.h"
#include "src/util/table_printer.h"
#include "src/util/thread_annotations.h"

namespace firzen {

EvalResult EvaluateRanking(const Dataset& dataset,
                           const std::vector<Interaction>& split,
                           EvalSetting setting, const Scorer& scorer,
                           const EvalOptions& options) {
  FIRZEN_CHECK_GT(options.k, 0);
  FIRZEN_CHECK_GT(options.user_batch, 0);
  FIRZEN_CHECK_GT(options.item_block, 0);
  const Index num_items = dataset.num_items;
  FIRZEN_CHECK_EQ(scorer.num_items(), num_items);

  // Ground truth per user.
  std::unordered_map<Index, std::unordered_set<Index>> relevant_by_user;
  for (const Interaction& x : split) {
    relevant_by_user[x.user].insert(x.item);
  }
  std::vector<Index> eval_users;
  eval_users.reserve(relevant_by_user.size());
  // Hash order never escapes: the keys are sorted before any use.
  // firzen-lint: allow(unordered-iteration)
  for (const auto& [user, items] : relevant_by_user) {
    (void)items;
    eval_users.push_back(user);
  }
  std::sort(eval_users.begin(), eval_users.end());

  EvalResult result;
  if (eval_users.empty()) return result;

  // Candidate membership is a per-item predicate (cold bitmap + per-user
  // sorted train lists) instead of a materialized pool, so the streamed
  // ranking below can test items block-by-block.
  const bool warm_setting = setting == EvalSetting::kWarm;
  FIRZEN_CHECK(!(warm_setting ? dataset.WarmItems() : dataset.ColdItems())
                    .empty());
  std::vector<std::vector<Index>> train_items;
  if (warm_setting) {
    train_items = dataset.TrainItemsByUser();
  }
  const std::vector<bool>& is_cold = dataset.is_cold_item;
  FIRZEN_CHECK_EQ(static_cast<Index>(is_cold.size()), num_items);

  MetricBundle total;
  Index counted = 0;
  Mutex total_mu;

  // Catalog shards: the offline protocol ranks through the same
  // shard-partition + per-shard-view + merge machinery the online
  // ShardedServingEngine uses, so sharded serving and sharded evaluation
  // exercise one code path. num_shards == 1 is the degenerate single-range
  // layout; results are bit-identical for any shard count (per-item scores
  // are partition-invariant and the merge order RanksBefore is total).
  const std::vector<ItemBlock> shard_ranges =
      MakeShardRanges(num_items, options.num_shards);
  std::vector<std::unique_ptr<const ItemRangeScorer>> shard_views;
  shard_views.reserve(shard_ranges.size());
  for (const ItemBlock& range : shard_ranges) {
    shard_views.push_back(std::make_unique<const ItemRangeScorer>(
        &scorer, range.begin, range.end));
  }

  Matrix panel;  // user_batch x item_block scoring panel, reused per block
  ScoringArena arena;  // this call's scoring scratch: scorers stay shareable
  for (size_t begin = 0; begin < eval_users.size();
       begin += static_cast<size_t>(options.user_batch)) {
    const size_t end = std::min(
        begin + static_cast<size_t>(options.user_batch), eval_users.size());
    const std::vector<Index> batch(eval_users.begin() + begin,
                                   eval_users.begin() + end);
    const Index batch_rows = static_cast<Index>(batch.size());

    // In-candidate-pool test for (user row r, item i).
    auto eligible = [&](Index r, Index i) {
      if (warm_setting) {
        if (is_cold[static_cast<size_t>(i)]) return false;
        const auto& seen = train_items[static_cast<size_t>(
            batch[static_cast<size_t>(r)])];
        return !std::binary_search(seen.begin(), seen.end(), i);
      }
      return static_cast<bool>(is_cold[static_cast<size_t>(i)]);
    };

    // Per shard, stream item blocks fusing scoring with per-user bounded
    // top-K: the heaps persist across blocks, so only the current panel is
    // live. Shards run sequentially here (user batches already saturate
    // the pool); each streams its own range through its view.
    std::vector<std::vector<TopKHeap>> shard_heaps(shard_ranges.size());
    for (auto& heaps : shard_heaps) {
      heaps.reserve(batch.size());
      for (size_t r = 0; r < batch.size(); ++r) heaps.emplace_back(options.k);
    }
    for (size_t s = 0; s < shard_ranges.size(); ++s) {
      const ItemBlock& range = shard_ranges[s];
      const ItemRangeScorer& view = *shard_views[s];
      std::vector<TopKHeap>& heaps = shard_heaps[s];
      for (Index block_begin = 0; block_begin < range.size();
           block_begin += options.item_block) {
        // Local view coordinates; global item = range.begin + local.
        const ItemBlock block{block_begin,
                              std::min(block_begin + options.item_block,
                                       range.size())};
        panel.ResizeUninitialized(batch_rows, block.size());
        view.ScoreBlock(batch, block, MatrixView(&panel), &arena);
        ParallelFor(
            options.pool, batch_rows,
            [&](Index row_begin, Index row_end) {
              for (Index r = row_begin; r < row_end; ++r) {
                TopKHeap& heap = heaps[static_cast<size_t>(r)];
                const Real* row = panel.row(r);
                for (Index local = block.begin; local < block.end; ++local) {
                  const Index i = range.begin + local;
                  if (eligible(r, i)) heap.Push(i, row[local - block.begin]);
                }
              }
            },
            /*min_shard_size=*/16);
      }
    }

    ParallelFor(
        options.pool, batch_rows,
        [&](Index row_begin, Index row_end) {
          MetricBundle local;
          Index local_count = 0;
          for (Index r = row_begin; r < row_end; ++r) {
            const Index user = batch[static_cast<size_t>(r)];
            // find() not operator[]: this map is shared across worker
            // threads and must stay strictly read-only here.
            const auto& relevant = relevant_by_user.find(user)->second;
            // Relevant items inside the candidate pool.
            Index num_relevant = 0;
            for (Index item : relevant) {
              if (eligible(r, item)) ++num_relevant;
            }
            if (num_relevant == 0) continue;

            // Merge this user's per-shard top-k lists — the same reduction
            // ShardedServingEngine applies to responses. One shard (the
            // default) is already the merged answer: skip the copy + sort.
            std::vector<ScoredItem> merged;
            if (shard_heaps.size() > 1) {
              for (auto& heaps : shard_heaps) {
                const auto& shard_top =
                    heaps[static_cast<size_t>(r)].Sorted();
                merged.insert(merged.end(), shard_top.begin(),
                              shard_top.end());
              }
              merged = MergeTopK(std::move(merged), options.k);
            }
            const std::vector<ScoredItem>& sorted =
                shard_heaps.size() > 1
                    ? merged
                    : shard_heaps[0][static_cast<size_t>(r)].Sorted();
            std::vector<Index> top;
            top.reserve(sorted.size());
            for (const ScoredItem& e : sorted) top.push_back(e.item);
            local += ComputeUserMetrics(top, relevant, num_relevant,
                                        options.k);
            ++local_count;
          }
          MutexLock lock(total_mu);
          total += local;
          counted += local_count;
        },
        /*min_shard_size=*/16);
  }

  if (counted > 0) total /= static_cast<Real>(counted);
  result.metrics = total;
  result.num_users = counted;
  return result;
}

std::string FormatEvalResult(const EvalResult& result) {
  const MetricBundle& m = result.metrics;
  return "R@20=" + FormatReal(100.0 * m.recall) +
         " M@20=" + FormatReal(100.0 * m.mrr) +
         " N@20=" + FormatReal(100.0 * m.ndcg) +
         " H@20=" + FormatReal(100.0 * m.hit) +
         " P@20=" + FormatReal(100.0 * m.precision) +
         " (users=" + std::to_string(result.num_users) + ")";
}

}  // namespace firzen
