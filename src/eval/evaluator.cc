#include "src/eval/evaluator.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "src/eval/topk.h"
#include "src/util/check.h"
#include "src/util/table_printer.h"

namespace firzen {
namespace {

// Fixed-size top-K selection over candidate columns via the shared bounded
// min-heap (deterministic tie-breaking: higher score first, then lower item
// id). `heap` is caller-owned per-thread scratch.
std::vector<Index> TopK(const Real* scores,
                        const std::vector<Index>& candidates, TopKHeap* heap) {
  heap->Reset();
  for (Index item : candidates) heap->Push(item, scores[item]);
  const auto& sorted = heap->Sorted();
  std::vector<Index> out;
  out.reserve(sorted.size());
  for (const ScoredItem& e : sorted) out.push_back(e.item);
  return out;
}

}  // namespace

EvalResult EvaluateRanking(const Dataset& dataset,
                           const std::vector<Interaction>& split,
                           EvalSetting setting, const ScoreFn& score_fn,
                           const EvalOptions& options) {
  FIRZEN_CHECK_GT(options.k, 0);

  // Ground truth per user.
  std::unordered_map<Index, std::unordered_set<Index>> relevant_by_user;
  for (const Interaction& x : split) {
    relevant_by_user[x.user].insert(x.item);
  }
  std::vector<Index> eval_users;
  eval_users.reserve(relevant_by_user.size());
  for (const auto& [user, items] : relevant_by_user) {
    (void)items;
    eval_users.push_back(user);
  }
  std::sort(eval_users.begin(), eval_users.end());

  EvalResult result;
  if (eval_users.empty()) return result;

  // Candidate pools. Warm candidates exclude each user's training items
  // (handled per user below); cold candidates are shared.
  const std::vector<Index> base_candidates = setting == EvalSetting::kWarm
                                                 ? dataset.WarmItems()
                                                 : dataset.ColdItems();
  FIRZEN_CHECK(!base_candidates.empty());
  std::vector<std::vector<Index>> train_items;
  if (setting == EvalSetting::kWarm) {
    train_items = dataset.TrainItemsByUser();
  }

  MetricBundle total;
  Index counted = 0;
  std::mutex total_mu;

  for (size_t begin = 0; begin < eval_users.size();
       begin += static_cast<size_t>(options.user_batch)) {
    const size_t end = std::min(
        begin + static_cast<size_t>(options.user_batch), eval_users.size());
    const std::vector<Index> batch(eval_users.begin() + begin,
                                   eval_users.begin() + end);
    Matrix scores;
    score_fn(batch, &scores);
    FIRZEN_CHECK_EQ(scores.rows(), static_cast<Index>(batch.size()));
    FIRZEN_CHECK_EQ(scores.cols(), dataset.num_items);

    ParallelFor(
        options.pool, static_cast<Index>(batch.size()),
        [&](Index row_begin, Index row_end) {
          MetricBundle local;
          Index local_count = 0;
          std::vector<Index> candidates;
          TopKHeap heap(options.k);
          for (Index r = row_begin; r < row_end; ++r) {
            const Index user = batch[static_cast<size_t>(r)];
            // find() not operator[]: this map is shared across worker
            // threads and must stay strictly read-only here.
            const auto& relevant = relevant_by_user.find(user)->second;

            const std::vector<Index>* pool_items = &base_candidates;
            if (setting == EvalSetting::kWarm) {
              const auto& seen = train_items[static_cast<size_t>(user)];
              candidates.clear();
              std::unordered_set<Index> seen_set(seen.begin(), seen.end());
              for (Index item : base_candidates) {
                if (seen_set.count(item) == 0) candidates.push_back(item);
              }
              pool_items = &candidates;
            }
            // Relevant items inside the candidate pool.
            Index num_relevant = 0;
            for (Index item : *pool_items) {
              if (relevant.count(item) > 0) ++num_relevant;
            }
            if (num_relevant == 0) continue;

            const std::vector<Index> top =
                TopK(scores.row(r), *pool_items, &heap);
            local += ComputeUserMetrics(top, relevant, num_relevant,
                                        options.k);
            ++local_count;
          }
          std::lock_guard<std::mutex> lock(total_mu);
          total += local;
          counted += local_count;
        },
        /*min_shard_size=*/16);
  }

  if (counted > 0) total /= static_cast<Real>(counted);
  result.metrics = total;
  result.num_users = counted;
  return result;
}

std::string FormatEvalResult(const EvalResult& result) {
  const MetricBundle& m = result.metrics;
  return "R@20=" + FormatReal(100.0 * m.recall) +
         " M@20=" + FormatReal(100.0 * m.mrr) +
         " N@20=" + FormatReal(100.0 * m.ndcg) +
         " H@20=" + FormatReal(100.0 * m.hit) +
         " P@20=" + FormatReal(100.0 * m.precision) +
         " (users=" + std::to_string(result.num_users) + ")";
}

}  // namespace firzen
