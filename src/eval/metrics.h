// Top-K ranking metrics (paper §IV-A.2): Recall, MRR, NDCG, Hit Ratio and
// Precision at K, computed per user and averaged.
#ifndef FIRZEN_EVAL_METRICS_H_
#define FIRZEN_EVAL_METRICS_H_

#include <unordered_set>
#include <vector>

#include "src/util/common.h"

namespace firzen {

/// Per-user metric bundle at one cutoff.
struct MetricBundle {
  Real recall = 0.0;
  Real mrr = 0.0;
  Real ndcg = 0.0;
  Real hit = 0.0;
  Real precision = 0.0;

  MetricBundle& operator+=(const MetricBundle& other);
  MetricBundle& operator/=(Real denom);
};

/// Computes all five metrics for one user given a ranked top-K item list and
/// the user's relevant item set (num_relevant = |relevant| among candidates;
/// must be > 0).
MetricBundle ComputeUserMetrics(const std::vector<Index>& ranked_top_k,
                                const std::unordered_set<Index>& relevant,
                                Index num_relevant, Index k);

}  // namespace firzen

#endif  // FIRZEN_EVAL_METRICS_H_
