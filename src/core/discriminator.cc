#include "src/core/discriminator.h"

#include <algorithm>

#include "src/tensor/init.h"
#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace firzen {

Discriminator::Discriminator(Index input_dim, const Options& options,
                             Rng* rng)
    : input_dim_(input_dim), options_(options) {
  w1_ = XavierVariable(input_dim, options.hidden_dim, rng);
  b1_ = ZerosVariable(1, options.hidden_dim);
  gamma_ = Tensor::Variable(Matrix(1, options.hidden_dim, 1.0));
  beta_ = ZerosVariable(1, options.hidden_dim);
  w2_ = XavierVariable(options.hidden_dim, 1, rng);
  b2_ = ZerosVariable(1, 1);
}

Tensor Discriminator::Critic(const Tensor& x, Rng* dropout_rng,
                             bool training) {
  using namespace ops;  // NOLINT(build/namespaces)
  FIRZEN_CHECK_EQ(x.cols(), input_dim_);
  Tensor h = LeakyRelu(AddRowBroadcast(MatMul(x, w1_), b1_),
                       options_.leaky_slope);
  if (x.rows() > 1) {
    h = BatchNorm(h, gamma_, beta_);
  }
  if (training && options_.dropout > 0.0) {
    h = Dropout(h, options_.dropout, dropout_rng);
  }
  return AddRowBroadcast(MatMul(h, w2_), b2_);
}

Tensor Discriminator::Forward(const Tensor& x, Rng* dropout_rng,
                              bool training) {
  return ops::Sigmoid(Critic(x, dropout_rng, training));
}

std::vector<Tensor> Discriminator::Params() const {
  return {w1_, b1_, gamma_, beta_, w2_, b2_};
}

void Discriminator::ClipWeights() {
  const Real clip = options_.weight_clip;
  for (Tensor param : {w1_, w2_}) {
    Matrix* value = param.mutable_value();
    ops::ApplyElementwise(value->size(), value->data(), [clip](Real v) {
      return std::clamp(v, -clip, clip);
    });
  }
}

}  // namespace firzen
