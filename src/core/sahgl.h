// Side information-Aware Heterogeneous Graph Learning (paper §III-C):
// behavior-aware graph convolution (Eqs. 5-6), modality-aware graph
// convolution (Eqs. 7-8), knowledge-aware graph attention (Eqs. 9-13) and
// importance-aware fusion (Eqs. 14-15). The beta_t / beta_i modality weights
// are updated externally by the discriminator-driven momentum rule
// (Eqs. 16-17) in FirzenModel.
#ifndef FIRZEN_CORE_SAHGL_H_
#define FIRZEN_CORE_SAHGL_H_

#include <memory>
#include <vector>

#include "src/core/frozen_graphs.h"
#include "src/models/kg_common.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace firzen {

struct SahglOptions {
  Index embedding_dim = 32;
  int behavior_layers = 2;   // L for the behavior GCN
  int knowledge_layers = 1;  // bi-interaction propagation depth
  Real lambda_k = 0.36;
  Real lambda_m = 1.10;
  Real feature_dropout = 0.1;  // dropout inside the Linear of Eq. 7
  // Component gates (ablation, Table IV / Table VIII).
  bool use_behavior = true;
  bool use_knowledge = true;
  std::vector<bool> use_modality;  // per modality; empty = all enabled
};

/// Per-forward outputs consumed by MSHGL and the loss terms.
struct SahglOutput {
  Tensor fused_user;  // e_u (Eq. 14), U x d
  Tensor fused_item;  // e_i (Eq. 15), I x d
  std::vector<Tensor> modal_user;  // x^m_u per modality (Eq. 7)
  std::vector<Tensor> modal_item;  // x^m_i per modality (Eq. 8)
};

class Sahgl {
 public:
  Sahgl() = default;
  Sahgl(const Dataset& dataset, const SahglOptions& options, Rng* rng);

  /// Full-graph forward pass. `betas` are the current modality importance
  /// weights (size = #modalities). Pass training=false at inference to
  /// disable dropout and zero the behavior component of strict cold items
  /// (their ID rows were never trained — §III-C.1).
  SahglOutput Forward(const FrozenGraphs& graphs, const Dataset& dataset,
                      const std::vector<Real>& betas, bool training,
                      Rng* dropout_rng);

  /// Refresh the per-epoch knowledge attention (reference-KGAT behaviour).
  void RefreshAttention(const FrozenGraphs& graphs);

  /// Parameters trained by the recommendation objective.
  std::vector<Tensor> RecParams() const;

  /// Parameters trained by the alternating KG objective (Eqs. 30-31).
  const KgEmbeddings& kg() const { return kg_; }

  /// Current modality projection Linear(f_m) of all items (no dropout).
  /// Used by the dynamic-graph ablation (DESIGN.md §4: frozen vs.
  /// LATTICE-style per-epoch graph refresh).
  Matrix ProjectedModalFeatures(size_t modality) const;

  const SahglOptions& options() const { return options_; }

  /// Replaces the component gates (used by ablation / Table VIII inference
  /// sweeps). The modality gate vector must keep its size.
  void set_options(const SahglOptions& options) { options_ = options; }

 private:
  SahglOptions options_;
  Tensor behavior_table_;           // (U + I) x d
  KgEmbeddings kg_;                 // over CKG entities
  std::vector<Tensor> w1_;          // bi-interaction weights per layer
  std::vector<Tensor> w2_;
  std::vector<Tensor> modal_proj_;  // Linear of Eq. 7 per modality
  std::vector<Tensor> modal_bias_;
  std::vector<Tensor> modal_features_;  // constants (standardized)
  std::shared_ptr<const CsrMatrix> attention_;
  Index num_users_ = 0;
  Index num_items_ = 0;
};

}  // namespace firzen

#endif  // FIRZEN_CORE_SAHGL_H_
