#include "src/core/frozen_graphs.h"

#include "src/graph/cold_mask.h"
#include "src/graph/cooccurrence_graph.h"
#include "src/graph/interaction_graph.h"
#include "src/graph/knn_graph.h"

namespace firzen {

FrozenGraphs BuildTrainGraphs(const Dataset& dataset,
                              const FrozenGraphOptions& options) {
  FrozenGraphs graphs;
  graphs.interaction =
      std::make_shared<const CsrMatrix>(BuildNormalizedInteractionGraph(
          dataset.train, dataset.num_users, dataset.num_items));
  graphs.user_to_item = std::make_shared<const CsrMatrix>(BuildUserToItemGraph(
      dataset.train, dataset.num_users, dataset.num_items));
  graphs.item_to_user = std::make_shared<const CsrMatrix>(BuildItemToUserGraph(
      dataset.train, dataset.num_users, dataset.num_items));
  graphs.ckg =
      BuildCollaborativeKg(dataset.train, dataset.num_users, dataset.kg);

  // Item-item graphs: training builds over warm items only (§III-B.2).
  KnnGraphOptions knn_options;
  knn_options.top_k = options.knn_k;
  knn_options.candidate_items = dataset.WarmItems();
  knn_options.query_items = knn_options.candidate_items;
  knn_options.pool = options.pool;
  for (const Modality& m : dataset.modalities) {
    graphs.item_item.push_back(std::make_shared<const CsrMatrix>(
        BuildItemItemGraph(m.features, knn_options)));
  }

  graphs.user_user_softmax = std::make_shared<const CsrMatrix>(
      BuildUserCooccurrenceGraph(dataset.train, dataset.num_users,
                                 dataset.num_items, options.user_topk)
          .RowSoftmax());
  return graphs;
}

FrozenGraphs BuildInferenceGraphs(
    const Dataset& dataset, const FrozenGraphOptions& options,
    const FrozenGraphs& train_graphs,
    const std::vector<Interaction>& extra_interactions) {
  FrozenGraphs graphs = train_graphs;

  // Expanded item-item graphs over all items, cold-masked then normalized
  // (Eqs. 34-35: G_hat = G_tilde . M before D^{-1/2} normalization).
  KnnGraphOptions knn_options;
  knn_options.top_k = options.knn_k;
  knn_options.pool = options.pool;
  graphs.item_item.clear();
  for (const Modality& m : dataset.modalities) {
    const CsrMatrix adjacency = BuildItemKnnAdjacency(m.features, knn_options);
    const CsrMatrix masked =
        ApplyColdStartMask(adjacency, dataset.is_cold_item);
    graphs.item_item.push_back(
        std::make_shared<const CsrMatrix>(masked.SymNormalized()));
  }

  if (!extra_interactions.empty()) {
    // Normal cold-start: revealed links join the interaction operators and
    // the CKG so behavior pathways reach the normal-cold items.
    std::vector<Interaction> merged = dataset.train;
    merged.insert(merged.end(), extra_interactions.begin(),
                  extra_interactions.end());
    graphs.interaction =
        std::make_shared<const CsrMatrix>(BuildNormalizedInteractionGraph(
            merged, dataset.num_users, dataset.num_items));
    graphs.user_to_item = std::make_shared<const CsrMatrix>(
        BuildUserToItemGraph(merged, dataset.num_users, dataset.num_items));
    graphs.item_to_user = std::make_shared<const CsrMatrix>(
        BuildItemToUserGraph(merged, dataset.num_users, dataset.num_items));
    graphs.ckg = BuildCollaborativeKg(merged, dataset.num_users, dataset.kg);
  }
  return graphs;
}

}  // namespace firzen
