#include "src/core/sahgl.h"

#include "src/models/mm_common.h"
#include "src/tensor/init.h"
#include "src/util/check.h"

namespace firzen {

Sahgl::Sahgl(const Dataset& dataset, const SahglOptions& options, Rng* rng)
    : options_(options),
      num_users_(dataset.num_users),
      num_items_(dataset.num_items) {
  const Index d = options.embedding_dim;
  behavior_table_ = XavierVariable(num_users_ + num_items_, d, rng);

  const CollaborativeKg probe =
      BuildCollaborativeKg(dataset.train, dataset.num_users, dataset.kg);
  kg_ = MakeKgEmbeddings(probe.num_entities, probe.num_relations, d, rng);

  for (int l = 0; l < options.knowledge_layers; ++l) {
    w1_.push_back(XavierVariable(d, d, rng));
    w2_.push_back(XavierVariable(d, d, rng));
  }
  for (const Modality& m : dataset.modalities) {
    Matrix raw = m.features;
    StandardizeColumns(&raw);
    modal_proj_.push_back(XavierVariable(raw.cols(), d, rng));
    modal_bias_.push_back(ZerosVariable(1, d));
    modal_features_.push_back(Tensor::Constant(std::move(raw)));
  }
  if (options_.use_modality.empty()) {
    options_.use_modality.assign(dataset.modalities.size(), true);
  }
  FIRZEN_CHECK_EQ(options_.use_modality.size(), dataset.modalities.size());
}

void Sahgl::RefreshAttention(const FrozenGraphs& graphs) {
  attention_ = std::make_shared<const CsrMatrix>(
      ComputeKgAttention(graphs.ckg, kg_.entity.value(),
                         kg_.relation.value(), kg_.rel_proj.value()));
}

Matrix Sahgl::ProjectedModalFeatures(size_t modality) const {
  FIRZEN_CHECK_LT(static_cast<Index>(modality),
                  static_cast<Index>(modal_features_.size()));
  Matrix projected;
  Gemm(false, false, 1.0, modal_features_[modality].value(),
       modal_proj_[modality].value(), 0.0, &projected);
  for (Index r = 0; r < projected.rows(); ++r) {
    for (Index c = 0; c < projected.cols(); ++c) {
      projected(r, c) += modal_bias_[modality].value()(0, c);
    }
  }
  return projected;
}

std::vector<Tensor> Sahgl::RecParams() const {
  std::vector<Tensor> params{behavior_table_, kg_.entity};
  for (const Tensor& w : w1_) params.push_back(w);
  for (const Tensor& w : w2_) params.push_back(w);
  for (const Tensor& w : modal_proj_) params.push_back(w);
  for (const Tensor& b : modal_bias_) params.push_back(b);
  return params;
}

SahglOutput Sahgl::Forward(const FrozenGraphs& graphs, const Dataset& dataset,
                           const std::vector<Real>& betas, bool training,
                           Rng* dropout_rng) {
  using namespace ops;  // NOLINT(build/namespaces)
  const Index d = options_.embedding_dim;
  SahglOutput out;

  std::vector<Index> user_rows(static_cast<size_t>(num_users_));
  for (Index u = 0; u < num_users_; ++u) user_rows[static_cast<size_t>(u)] = u;
  std::vector<Index> item_rows(static_cast<size_t>(num_items_));
  for (Index i = 0; i < num_items_; ++i) {
    item_rows[static_cast<size_t>(i)] = num_users_ + i;
  }

  // ---- Behavior-aware graph convolution (Eqs. 5-6) ----
  Tensor behavior_user;
  Tensor behavior_item;
  if (options_.use_behavior) {
    std::vector<Tensor> layers{behavior_table_};
    Tensor current = behavior_table_;
    for (int l = 0; l < options_.behavior_layers; ++l) {
      current = SpMM(graphs.interaction, current);
      layers.push_back(current);
    }
    Tensor pooled =
        Scale(AddN(layers), 1.0 / static_cast<Real>(layers.size()));
    behavior_user = GatherRows(pooled, user_rows);
    behavior_item = GatherRows(pooled, item_rows);
    if (!training) {
      // §III-C.1: strict cold items have no interaction edges; their ID rows
      // are untrained noise, so the behavior component is zeroed exactly as
      // if the CF module were skipped for them.
      Matrix masked = behavior_item.value();
      for (Index i = 0; i < num_items_; ++i) {
        if (!dataset.is_cold_item[static_cast<size_t>(i)]) continue;
        for (Index c = 0; c < d; ++c) masked(i, c) = 0.0;
      }
      behavior_item = Tensor::Constant(std::move(masked));
    }
  } else {
    behavior_user = Tensor::Constant(Matrix(num_users_, d));
    behavior_item = Tensor::Constant(Matrix(num_items_, d));
  }

  // ---- Modality-aware graph convolution (Eqs. 7-8) ----
  for (size_t m = 0; m < modal_features_.size(); ++m) {
    if (!options_.use_modality[m]) {
      out.modal_user.push_back(Tensor::Constant(Matrix(num_users_, d)));
      out.modal_item.push_back(Tensor::Constant(Matrix(num_items_, d)));
      continue;
    }
    Tensor projected = AddRowBroadcast(
        MatMul(modal_features_[m], modal_proj_[m]), modal_bias_[m]);
    if (training && options_.feature_dropout > 0.0) {
      projected = Dropout(projected, options_.feature_dropout, dropout_rng);
    }
    Tensor xu = SpMM(graphs.user_to_item, projected);  // Eq. 7
    Tensor xi = SpMM(graphs.item_to_user, xu);         // Eq. 8
    out.modal_user.push_back(xu);
    out.modal_item.push_back(xi);
  }

  // ---- Knowledge-aware graph attention (Eqs. 9-13) ----
  Tensor know_user;
  Tensor know_item;
  if (options_.use_knowledge) {
    FIRZEN_CHECK(attention_ != nullptr);
    Tensor current = kg_.entity;
    for (int l = 0; l < options_.knowledge_layers; ++l) {
      current = BiInteraction(attention_, current,
                              w1_[static_cast<size_t>(l)],
                              w2_[static_cast<size_t>(l)]);
    }
    std::vector<Index> user_entities(static_cast<size_t>(num_users_));
    for (Index u = 0; u < num_users_; ++u) {
      user_entities[static_cast<size_t>(u)] = graphs.ckg.UserEntity(u);
    }
    std::vector<Index> item_entities(static_cast<size_t>(num_items_));
    for (Index i = 0; i < num_items_; ++i) {
      item_entities[static_cast<size_t>(i)] = graphs.ckg.ItemEntity(i);
    }
    know_user = GatherRows(current, user_entities);
    know_item = GatherRows(current, item_entities);
  } else {
    know_user = Tensor::Constant(Matrix(num_users_, d));
    know_item = Tensor::Constant(Matrix(num_items_, d));
  }

  // ---- Importance-aware fusion (Eqs. 14-15) ----
  FIRZEN_CHECK_EQ(betas.size(), out.modal_user.size());
  Tensor fused_user = Add(behavior_user,
                          Scale(know_user, options_.lambda_k));
  Tensor fused_item = Add(behavior_item,
                          Scale(know_item, options_.lambda_k));
  for (size_t m = 0; m < out.modal_user.size(); ++m) {
    const Real weight = options_.lambda_m * betas[m];
    fused_user = Add(fused_user, Scale(out.modal_user[m], weight));
    fused_item = Add(fused_item, Scale(out.modal_item[m], weight));
  }
  out.fused_user = fused_user;
  out.fused_item = fused_item;
  return out;
}

}  // namespace firzen
