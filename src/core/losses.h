// Firzen's self-supervised objectives (paper §III-E): the contrastive loss
// for diverse modality-specific user preferences (Eqs. 28-29) and the
// Gumbel-augmented observed interaction block used as the "real" sample of
// the adversarial task (Eqs. 23-25).
#ifndef FIRZEN_CORE_LOSSES_H_
#define FIRZEN_CORE_LOSSES_H_

#include <unordered_set>
#include <vector>

#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace firzen {

/// InfoNCE between final user embeddings and one modality's user embeddings
/// over a batch (Eqs. 28-29): positives are aligned rows; the denominator
/// sums similarities of the modal anchor against all final AND modal batch
/// embeddings.
Tensor ModalContrastiveLoss(const Tensor& final_user_batch,
                            const Tensor& modal_user_batch);

/// Observed interaction block with Gumbel-softmax augmentation plus the
/// auxiliary cosine signal from the final embeddings (Eq. 23). Returned as a
/// constant (the "real" discriminator input).
Matrix BuildAugmentedBlock(
    const std::vector<Index>& users, const std::vector<Index>& items,
    const std::vector<std::unordered_set<Index>>& train_sets,
    const Matrix& final_user, const Matrix& final_item, Real temperature,
    Real aux_gamma, Rng* rng);

}  // namespace firzen

#endif  // FIRZEN_CORE_LOSSES_H_
