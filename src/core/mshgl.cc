#include "src/core/mshgl.h"

#include <cmath>

#include "src/tensor/init.h"
#include "src/util/check.h"

namespace firzen {

Mshgl::Mshgl(Index num_modalities, const MshglOptions& options, Rng* rng)
    : options_(options) {
  FIRZEN_CHECK_GT(num_modalities, 0);
  FIRZEN_CHECK_EQ(options.embedding_dim % options.attention_heads, 0);
  for (Index m = 0; m < num_modalities; ++m) {
    w_query_.push_back(
        XavierVariable(options.embedding_dim, options.embedding_dim, rng));
    w_key_.push_back(
        XavierVariable(options.embedding_dim, options.embedding_dim, rng));
  }
}

std::vector<Tensor> Mshgl::Params() const {
  std::vector<Tensor> params;
  for (const Tensor& w : w_query_) params.push_back(w);
  for (const Tensor& w : w_key_) params.push_back(w);
  return params;
}

MshglOutput Mshgl::Forward(const FrozenGraphs& graphs,
                           const Tensor& fused_user,
                           const Tensor& fused_item) const {
  using namespace ops;  // NOLINT(build/namespaces)
  MshglOutput out;
  const Index d = options_.embedding_dim;
  const Index heads = options_.attention_heads;
  const Index head_dim = d / heads;
  const size_t num_modalities = graphs.item_item.size();
  FIRZEN_CHECK_EQ(num_modalities, w_query_.size());

  // ---- Eq. 18: modality-specific item-item propagation ----
  std::vector<Tensor> per_modality;
  per_modality.reserve(num_modalities);
  for (size_t m = 0; m < num_modalities; ++m) {
    Tensor h = fused_item;
    for (int l = 0; l < options_.item_layers; ++l) {
      h = SpMM(graphs.item_item[m], h);
    }
    per_modality.push_back(h);
  }

  // ---- Eqs. 20-21: dependency-aware multi-head self-attention fusion ----
  Tensor item_out;
  if (num_modalities == 1) {
    item_out = per_modality[0];
  } else {
    std::vector<Tensor> fused_per_modality;
    for (size_t m = 0; m < num_modalities; ++m) {
      Tensor q_all = MatMul(per_modality[m], w_query_[m]);
      std::vector<Tensor> head_outputs;
      for (Index h = 0; h < heads; ++h) {
        const Index begin = h * head_dim;
        const Index end = begin + head_dim;
        Tensor q = SliceCols(q_all, begin, end);
        // Scores against every source modality for this head.
        std::vector<Tensor> exp_scores;
        Tensor denom;
        for (size_t mp = 0; mp < num_modalities; ++mp) {
          Tensor k = SliceCols(MatMul(per_modality[mp], w_key_[mp]), begin,
                               end);
          Tensor score = Scale(RowDot(q, k),
                               1.0 / std::sqrt(static_cast<Real>(head_dim)));
          Tensor e = Exp(score);
          exp_scores.push_back(e);
          denom = mp == 0 ? e : Add(denom, e);
        }
        // Head output: attention-weighted sum of source-modality head
        // slices (Eq. 20).
        Tensor head_out;
        for (size_t mp = 0; mp < num_modalities; ++mp) {
          Tensor weight = Div(exp_scores[mp], denom);  // n x 1
          Tensor value = SliceCols(per_modality[mp], begin, end);
          Tensor contribution = RowScale(value, weight);
          head_out = mp == 0 ? contribution : Add(head_out, contribution);
        }
        head_outputs.push_back(head_out);
      }
      fused_per_modality.push_back(ConcatCols(head_outputs));
    }
    // Eq. 21: mean across modalities.
    item_out = Scale(AddN(fused_per_modality),
                     1.0 / static_cast<Real>(num_modalities));
  }

  // ---- Eq. 19: user-user attention message passing ----
  Tensor user_out = fused_user;
  for (int l = 0; l < options_.user_layers; ++l) {
    user_out = SpMM(graphs.user_user_softmax, user_out);
  }

  out.user = user_out;
  out.item = item_out;
  return out;
}

}  // namespace firzen
