#include "src/core/losses.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace firzen {

Tensor ModalContrastiveLoss(const Tensor& final_user_batch,
                            const Tensor& modal_user_batch) {
  using namespace ops;  // NOLINT(build/namespaces)
  FIRZEN_CHECK_EQ(final_user_batch.rows(), modal_user_batch.rows());
  const Index b = final_user_batch.rows();
  Tensor fin = RowL2Normalize(final_user_batch);
  Tensor mod = RowL2Normalize(modal_user_batch);
  // Positive: s(e-breve_u, x^m_u) along the diagonal.
  Tensor positives = RowDot(fin, mod);  // B x 1
  // Denominator (Eq. 29): column u sums over anchors u' from both the final
  // and the modal embedding families.
  Tensor s_final = MatMul(fin, mod, false, true);  // [u', u]
  Tensor s_modal = MatMul(mod, mod, false, true);
  Tensor den = Add(ColSum(Exp(s_final)), ColSum(Exp(s_modal)));  // 1 x B
  Tensor log_den = Reshape(Log(den), b, 1);
  return ReduceMean(Sub(log_den, positives));
}

Matrix BuildAugmentedBlock(
    const std::vector<Index>& users, const std::vector<Index>& items,
    const std::vector<std::unordered_set<Index>>& train_sets,
    const Matrix& final_user, const Matrix& final_item, Real temperature,
    Real aux_gamma, Rng* rng) {
  const Index rows = static_cast<Index>(users.size());
  const Index cols = static_cast<Index>(items.size());
  Matrix block(rows, cols);
  std::vector<Real> row(static_cast<size_t>(cols));
  for (Index r = 0; r < rows; ++r) {
    const auto& seen = train_sets[static_cast<size_t>(users[r])];
    Real max_v = -1e30;
    for (Index c = 0; c < cols; ++c) {
      const Real y = seen.count(items[static_cast<size_t>(c)]) > 0 ? 1.0 : 0.0;
      // Eq. 23/25: Gumbel perturbation then row softmax.
      row[static_cast<size_t>(c)] = (y + 0.1 * rng->Gumbel()) / temperature;
      max_v = std::max(max_v, row[static_cast<size_t>(c)]);
    }
    Real denom = 0.0;
    for (Index c = 0; c < cols; ++c) {
      row[static_cast<size_t>(c)] =
          std::exp(row[static_cast<size_t>(c)] - max_v);
      denom += row[static_cast<size_t>(c)];
    }
    for (Index c = 0; c < cols; ++c) {
      Real phi = 0.0;
      if (!final_user.empty()) {
        // Eq. 24 auxiliary cosine signal.
        const Real* eu = final_user.row(users[r]);
        const Real* ei = final_item.row(items[static_cast<size_t>(c)]);
        Real dot = 0.0;
        Real nu = 0.0;
        Real ni = 0.0;
        for (Index k = 0; k < final_user.cols(); ++k) {
          dot += eu[k] * ei[k];
          nu += eu[k] * eu[k];
          ni += ei[k] * ei[k];
        }
        phi = dot / (std::sqrt(nu * ni) + 1e-12);
      }
      block(r, c) = row[static_cast<size_t>(c)] / denom + aux_gamma * phi;
    }
  }
  return block;
}

}  // namespace firzen
