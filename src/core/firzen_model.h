// Firzen (paper §III): the unified framework for strict cold-start and
// warm-start item recommendation over frozen heterogeneous and homogeneous
// graphs. Composition:
//   FrozenGraphs  ->  SAHGL (behavior / modality / knowledge branches,
//   importance-aware fusion with discriminator-driven beta momentum)
//   ->  MSHGL (item-item + user-user homogeneous propagation, multi-head
//   dependency fusion)  ->  multi-task optimization (BPR + adversarial +
//   contrastive, alternating with the TransR KG objective).
// At inference the item-item graphs are expanded to all items with the
// cold-isolation mask (Eqs. 34-35).
#ifndef FIRZEN_CORE_FIRZEN_MODEL_H_
#define FIRZEN_CORE_FIRZEN_MODEL_H_

#include <memory>
#include <vector>

#include "src/core/discriminator.h"
#include "src/core/frozen_graphs.h"
#include "src/core/mshgl.h"
#include "src/core/sahgl.h"
#include "src/models/embedding_model.h"

namespace firzen {

struct FirzenOptions {
  // Fusion weights. lambda_k follows the paper's tuned value; lambda_m is
  // retuned for the synthetic substrate (the paper uses 1.10 on Amazon
  // features — our generated features carry more signal per unit norm, so
  // the warm/cold balance point sits lower; see EXPERIMENTS.md, Fig. 6b).
  Real lambda_k = 0.36;
  Real lambda_m = 0.20;
  Real beta_momentum = 0.999;  // eta (Eq. 16-17)
  Index knn_k = 10;            // K (Eq. 2 / Fig. 6d)
  Index user_topk = 10;

  int behavior_layers = 2;
  int knowledge_layers = 1;
  int item_layers = 1;   // L_{i-i}
  int user_layers = 1;   // L_{u-u}
  Index attention_heads = 2;

  // Multi-task loss weights (Eq. 32).
  Real lambda_adv = 0.2;
  Real lambda_contr = 0.05;
  Real adv_temperature = 0.5;  // tau (Eq. 23)
  Real aux_gamma = 0.1;        // gamma (Eq. 23)
  Index adv_batch = 128;
  Real d_lr = 1e-3;
  Real feature_dropout = 0.1;

  /// Ablation of the paper's namesake design decision: when true, the
  /// item-item graphs are NOT frozen — they are rebuilt every epoch from the
  /// current learned modality projections (LATTICE-style dynamic graphs,
  /// the approach the paper argues against). Default false = frozen.
  bool dynamic_item_graphs = false;

  // Component gates: ablations (Table IV) and inference-time contribution
  // analysis (Table VIII). Modality gate order follows dataset.modalities
  // ("text", "image").
  bool use_behavior = true;    // BA
  bool use_knowledge = true;   // KA
  bool use_modality = true;    // MA (master switch for both modalities)
  bool use_mshgl = true;       // MS
  bool use_text = true;        // TA
  bool use_image = true;       // VA
};

class FirzenModel : public EmbeddingModel {
 public:
  explicit FirzenModel(FirzenOptions options = FirzenOptions())
      : options_(options) {}

  std::string Name() const override { return "Firzen"; }
  void Fit(const Dataset& dataset, const TrainOptions& options) override;

  /// Strict cold inference: expand + mask the item-item graphs (Eqs. 34-35)
  /// and recompute final representations over all items.
  void PrepareColdInference(const Dataset& dataset) override;

  /// Normal cold protocol: revealed links additionally join the behavior
  /// and CKG pathways.
  void PrepareNormalColdInference(const Dataset& dataset) override;

  /// Recomputes final embeddings with modified inference-time gates
  /// (Table VIII / Fig. 7). Does not retrain; `cold_expanded` selects the
  /// strict-cold (masked, all-items) graphs vs. the training graphs.
  void RecomputeFinal(const Dataset& dataset, const FirzenOptions& gates,
                      bool cold_expanded);

  /// Current modality importance weights (beta_t, beta_i ... per modality).
  const std::vector<Real>& betas() const { return betas_; }

  const FirzenOptions& options() const { return options_; }

 private:
  void ComputeFinalFrom(const FrozenGraphs& graphs, const Dataset& dataset,
                        const SahglOptions& gates);

  FirzenOptions options_;
  TrainOptions train_options_;
  Sahgl sahgl_;
  Mshgl mshgl_;
  Discriminator discriminator_;
  std::vector<Real> betas_;
  FrozenGraphs train_graphs_;
  FrozenGraphOptions graph_options_;
};

}  // namespace firzen

#endif  // FIRZEN_CORE_FIRZEN_MODEL_H_
