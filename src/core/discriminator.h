// Adversarial discriminator D(x) = sigmoid(Drop(BN(LeakyReLU(Linear(x)))))
// (paper §III-E.1). Shared by MMSSL and Firzen. The raw (pre-sigmoid) critic
// output is also exposed for Wasserstein-style objectives.
//
// Lipschitz control substitution (DESIGN.md §2): the WGAN-GP gradient
// penalty (Eq. 27) requires second-order autodiff; this implementation uses
// weight clipping plus an optional finite-difference gradient-norm penalty,
// which provides the same stabilization at first order.
#ifndef FIRZEN_CORE_DISCRIMINATOR_H_
#define FIRZEN_CORE_DISCRIMINATOR_H_

#include <vector>

#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace firzen {

class Discriminator {
 public:
  struct Options {
    Index hidden_dim = 32;
    Real dropout = 0.2;
    Real leaky_slope = 0.2;
    Real weight_clip = 0.25;
  };

  Discriminator() = default;
  Discriminator(Index input_dim, const Options& options, Rng* rng);

  /// Raw critic scores (n x 1), before the sigmoid.
  Tensor Critic(const Tensor& x, Rng* dropout_rng, bool training);

  /// sigmoid(Critic(x)): probability that x comes from the observed graph.
  Tensor Forward(const Tensor& x, Rng* dropout_rng, bool training);

  /// Trainable parameters.
  std::vector<Tensor> Params() const;

  /// WGAN weight clipping for Lipschitz control.
  void ClipWeights();

  Index input_dim() const { return input_dim_; }

 private:
  Index input_dim_ = 0;
  Options options_;
  Tensor w1_;
  Tensor b1_;
  Tensor gamma_;
  Tensor beta_;
  Tensor w2_;
  Tensor b2_;
};

}  // namespace firzen

#endif  // FIRZEN_CORE_DISCRIMINATOR_H_
