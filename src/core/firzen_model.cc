#include "src/core/firzen_model.h"

#include <cmath>
#include <unordered_set>

#include "src/core/losses.h"
#include "src/graph/knn_graph.h"
#include "src/models/sampler.h"
#include "src/tensor/optim.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace firzen {
namespace {

SahglOptions MakeSahglOptions(const FirzenOptions& o, Index dim,
                              const Dataset& dataset) {
  SahglOptions s;
  s.embedding_dim = dim;
  s.behavior_layers = o.behavior_layers;
  s.knowledge_layers = o.knowledge_layers;
  s.lambda_k = o.lambda_k;
  s.lambda_m = o.lambda_m;
  s.feature_dropout = o.feature_dropout;
  s.use_behavior = o.use_behavior;
  s.use_knowledge = o.use_knowledge;
  s.use_modality.clear();
  for (const Modality& m : dataset.modalities) {
    bool enabled = o.use_modality;
    if (m.name == "text") enabled = enabled && o.use_text;
    if (m.name == "image") enabled = enabled && o.use_image;
    s.use_modality.push_back(enabled);
  }
  return s;
}

}  // namespace

void FirzenModel::ComputeFinalFrom(const FrozenGraphs& graphs,
                                   const Dataset& dataset,
                                   const SahglOptions& gates) {
  using namespace ops;  // NOLINT(build/namespaces)
  // Swap the requested gates in for this forward pass, then restore.
  const SahglOptions saved = sahgl_.options();
  sahgl_.set_options(gates);

  Rng unused_rng(0);
  SahglOutput sa =
      sahgl_.Forward(graphs, dataset, betas_, /*training=*/false, &unused_rng);
  Tensor user_final = sa.fused_user;
  Tensor item_final = sa.fused_item;
  if (options_.use_mshgl) {
    MshglOutput ms = mshgl_.Forward(graphs, sa.fused_user, sa.fused_item);
    // Residual combination keeps warm items' fused identity while the
    // homogeneous pass injects warm->cold transfer.
    user_final = Add(sa.fused_user, ms.user);
    item_final = Add(sa.fused_item, ms.item);
  }
  final_user_ = user_final.value();
  final_item_ = item_final.value();

  sahgl_.set_options(saved);
}

void FirzenModel::Fit(const Dataset& dataset, const TrainOptions& options) {
  using namespace ops;  // NOLINT(build/namespaces)
  train_options_ = options;
  Rng rng(options.seed);
  const Index d = options.embedding_dim;

  graph_options_.knn_k = options_.knn_k;
  graph_options_.user_topk = options_.user_topk;
  graph_options_.pool = options.pool;
  train_graphs_ = BuildTrainGraphs(dataset, graph_options_);

  sahgl_ = Sahgl(dataset, MakeSahglOptions(options_, d, dataset), &rng);
  mshgl_ = Mshgl(static_cast<Index>(dataset.modalities.size()),
                 MshglOptions{d, options_.item_layers, options_.user_layers,
                              options_.attention_heads},
                 &rng);
  const Index adv_b = std::min<Index>(options_.adv_batch, dataset.num_users);
  discriminator_ = Discriminator(adv_b, Discriminator::Options{}, &rng);
  betas_.assign(dataset.modalities.size(),
                1.0 / static_cast<Real>(dataset.modalities.size()));

  Adam::Options adam_options;
  adam_options.lr = options.lr;
  Adam optimizer(adam_options);
  Adam::Options d_adam;
  d_adam.lr = options_.d_lr;
  Adam d_optimizer(d_adam);
  Adam::Options kg_adam;
  kg_adam.lr = options.lr;
  kg_adam.lazy = true;
  Adam kg_optimizer(kg_adam);

  BprSampler sampler(dataset, options.seed + 1);
  Rng kg_rng(options.seed + 2);
  Rng adv_rng(options.seed + 3);
  Rng drop_rng(options.seed + 4);
  EarlyStopper stopper(options.patience);

  std::vector<std::unordered_set<Index>> train_sets(
      static_cast<size_t>(dataset.num_users));
  for (const Interaction& x : dataset.train) {
    train_sets[static_cast<size_t>(x.user)].insert(x.item);
  }

  std::vector<Tensor> rec_params = sahgl_.RecParams();
  if (options_.use_mshgl) {
    for (const Tensor& p : mshgl_.Params()) rec_params.push_back(p);
  }

  const int steps = options.steps_per_epoch > 0
                        ? options.steps_per_epoch
                        : static_cast<int>(dataset.train.size() /
                                               options.batch_size +
                                           1);
  const bool modalities_active =
      options_.use_modality && (options_.use_text || options_.use_image);
  std::vector<Index> users;
  std::vector<Index> pos;
  std::vector<Index> neg;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    if (options_.use_knowledge) sahgl_.RefreshAttention(train_graphs_);
    if (options_.dynamic_item_graphs && epoch > 0) {
      // LATTICE-style ablation: rebuild the item-item graphs from the
      // CURRENT learned modal projections (the paper's frozen design skips
      // this entirely). Warm-only, like the frozen training graphs.
      KnnGraphOptions knn_options;
      knn_options.top_k = options_.knn_k;
      knn_options.candidate_items = dataset.WarmItems();
      knn_options.query_items = knn_options.candidate_items;
      knn_options.pool = options.pool;
      for (size_t m = 0; m < train_graphs_.item_item.size(); ++m) {
        train_graphs_.item_item[m] = std::make_shared<const CsrMatrix>(
            BuildItemItemGraph(sahgl_.ProjectedModalFeatures(m),
                               knn_options));
      }
    }
    Real epoch_loss = 0.0;
    for (int step = 0; step < steps; ++step) {
      sampler.SampleBatch(options.batch_size, &users, &pos, &neg);

      // ---- Forward: SAHGL + MSHGL ----
      SahglOutput sa = sahgl_.Forward(train_graphs_, dataset, betas_,
                                      /*training=*/true, &drop_rng);
      Tensor user_final = sa.fused_user;
      Tensor item_final = sa.fused_item;
      if (options_.use_mshgl) {
        MshglOutput ms =
            mshgl_.Forward(train_graphs_, sa.fused_user, sa.fused_item);
        user_final = Add(sa.fused_user, ms.user);
        item_final = Add(sa.fused_item, ms.item);
      }

      // ---- L_BPR (Eq. 33) ----
      Tensor eu = GatherRows(user_final, users);
      Tensor ep = GatherRows(item_final, pos);
      Tensor en = GatherRows(item_final, neg);
      Tensor loss = Add(BprLoss(eu, ep, en),
                        BatchL2({eu, ep, en}, options.reg,
                                options.batch_size));

      // ---- L_adv (Eqs. 22-27) + beta momentum update (Eqs. 16-17) ----
      if (modalities_active && options_.lambda_adv > 0.0) {
        const std::vector<Index> adv_users = sampler.SampleUsers(adv_b);
        const std::vector<Index> adv_items = sampler.SampleWarmItems(adv_b);
        Tensor real = Tensor::Constant(BuildAugmentedBlock(
            adv_users, adv_items, train_sets, final_user_, final_item_,
            options_.adv_temperature, options_.aux_gamma, &adv_rng));

        std::vector<Real> critic_means(betas_.size(), 0.0);
        Tensor g_adv;
        bool g_adv_set = false;
        for (size_t m = 0; m < betas_.size(); ++m) {
          if (!sahgl_.options().use_modality[m]) continue;
          Tensor xu = RowL2Normalize(GatherRows(sa.modal_user[m], adv_users));
          Tensor xi = RowL2Normalize(GatherRows(sa.modal_item[m], adv_items));
          Tensor fake = MatMul(xu, xi, false, true);  // B x B (Eq. 22)

          // Discriminator step on the detached fake block.
          Tensor d_loss =
              Sub(ReduceMean(
                      discriminator_.Critic(Detach(fake), &adv_rng, true)),
                  ReduceMean(discriminator_.Critic(real, &adv_rng, true)));
          Backward(d_loss);
          d_optimizer.Step(discriminator_.Params());
          discriminator_.ClipWeights();

          // Generator signal + critic output for the beta update.
          Tensor critic = ReduceMean(
              discriminator_.Critic(fake, &adv_rng, true));
          critic_means[m] = critic.scalar();
          Tensor g_term = Scale(critic, -options_.lambda_adv /
                                            static_cast<Real>(betas_.size()));
          g_adv = g_adv_set ? Add(g_adv, g_term) : g_term;
          g_adv_set = true;
        }
        if (g_adv_set) loss = Add(loss, g_adv);

        // Eqs. 16-17: softmax over critic outputs, momentum update.
        Real max_c = -1e30;
        for (size_t m = 0; m < betas_.size(); ++m) {
          if (sahgl_.options().use_modality[m]) {
            max_c = std::max(max_c, critic_means[m]);
          }
        }
        Real denom = 0.0;
        for (size_t m = 0; m < betas_.size(); ++m) {
          if (sahgl_.options().use_modality[m]) {
            denom += std::exp(critic_means[m] - max_c);
          }
        }
        if (denom > 0.0) {
          for (size_t m = 0; m < betas_.size(); ++m) {
            if (!sahgl_.options().use_modality[m]) continue;
            const Real target = std::exp(critic_means[m] - max_c) / denom;
            betas_[m] = options_.beta_momentum * betas_[m] +
                        (1.0 - options_.beta_momentum) * target;
          }
        }
      }

      // ---- L_contr (Eqs. 28-29) ----
      if (modalities_active && options_.lambda_contr > 0.0) {
        Tensor fu_batch = GatherRows(user_final, users);
        Tensor contr;
        bool contr_set = false;
        for (size_t m = 0; m < betas_.size(); ++m) {
          if (!sahgl_.options().use_modality[m]) continue;
          Tensor xm_batch = GatherRows(sa.modal_user[m], users);
          Tensor term = ModalContrastiveLoss(fu_batch, xm_batch);
          contr = contr_set ? Add(contr, term) : term;
          contr_set = true;
        }
        if (contr_set) {
          loss = Add(loss, Scale(contr, options_.lambda_contr));
        }
      }

      epoch_loss += loss.scalar();
      Backward(loss);
      optimizer.Step(rec_params);
      for (Tensor p : discriminator_.Params()) p.ZeroGrad();

      // ---- Alternating L_KG (Eqs. 30-31) ----
      if (options_.use_knowledge) {
        const KgBatch batch =
            SampleKgBatch(train_graphs_.ckg.triplets,
                          train_graphs_.ckg.num_entities,
                          options.batch_size, &kg_rng);
        Tensor kg_loss = TransRLoss(sahgl_.kg(), batch, options.reg);
        Backward(kg_loss);
        kg_optimizer.Step(
            {sahgl_.kg().entity, sahgl_.kg().relation, sahgl_.kg().rel_proj});
      }
    }
    if ((epoch + 1) % options.eval_every == 0) {
      ComputeFinalFrom(train_graphs_, dataset,
                       MakeSahglOptions(options_, d, dataset));
      const Real mrr =
          ValidationMrr(dataset, final_user_, final_item_, options.pool);
      // No best-state restore: PrepareColdInference recomputes the final
      // representations from the current parameters, so warm and cold
      // evaluation must see the same model state.
      const bool stop = stopper.Update(mrr);
      if (options.verbose) {
        Logf(LogLevel::kInfo,
             "[Firzen] epoch %d loss=%.4f val-mrr=%.4f beta=[%.3f, %.3f]",
             epoch, epoch_loss / steps, mrr, betas_.empty() ? 0.0 : betas_[0],
             betas_.size() > 1 ? betas_[1] : 0.0);
      }
      if (stop) break;
    }
  }
  ComputeFinalFrom(train_graphs_, dataset,
                   MakeSahglOptions(options_, d, dataset));
}

void FirzenModel::PrepareColdInference(const Dataset& dataset) {
  const FrozenGraphs graphs =
      BuildInferenceGraphs(dataset, graph_options_, train_graphs_);
  if (options_.use_knowledge) sahgl_.RefreshAttention(graphs);
  ComputeFinalFrom(graphs, dataset,
                   MakeSahglOptions(options_, train_options_.embedding_dim,
                                    dataset));
}

void FirzenModel::PrepareNormalColdInference(const Dataset& dataset) {
  const FrozenGraphs graphs = BuildInferenceGraphs(
      dataset, graph_options_, train_graphs_, dataset.cold_known);
  if (options_.use_knowledge) sahgl_.RefreshAttention(graphs);
  ComputeFinalFrom(graphs, dataset,
                   MakeSahglOptions(options_, train_options_.embedding_dim,
                                    dataset));
}

void FirzenModel::RecomputeFinal(const Dataset& dataset,
                                 const FirzenOptions& gates,
                                 bool cold_expanded) {
  const FrozenGraphs graphs =
      cold_expanded
          ? BuildInferenceGraphs(dataset, graph_options_, train_graphs_)
          : train_graphs_;
  if (gates.use_knowledge) sahgl_.RefreshAttention(graphs);
  const bool saved_ms = options_.use_mshgl;
  options_.use_mshgl = gates.use_mshgl;
  ComputeFinalFrom(graphs, dataset,
                   MakeSahglOptions(gates, train_options_.embedding_dim,
                                    dataset));
  options_.use_mshgl = saved_ms;
}

}  // namespace firzen
