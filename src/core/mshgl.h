// Modality-Specific Homogeneous Graph Learning (paper §III-D): light-weight
// GCN over the frozen per-modality item-item graphs (Eq. 18), attention
// message passing over the user-user co-occurrence graph (Eq. 19), and
// dependency-aware multi-head self-attention fusion across modalities
// (Eqs. 20-21). This is the component that transfers collaborative signal
// from warm to strict cold items.
#ifndef FIRZEN_CORE_MSHGL_H_
#define FIRZEN_CORE_MSHGL_H_

#include <vector>

#include "src/core/frozen_graphs.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace firzen {

struct MshglOptions {
  Index embedding_dim = 32;
  int item_layers = 1;       // L_{i-i}
  int user_layers = 1;       // L_{u-u}
  Index attention_heads = 2;  // H (must divide embedding_dim)
};

struct MshglOutput {
  Tensor user;  // e-breve_u (Eq. 19 output), U x d
  Tensor item;  // e-breve_i (Eq. 21 output), I x d
};

class Mshgl {
 public:
  Mshgl() = default;
  Mshgl(Index num_modalities, const MshglOptions& options, Rng* rng);

  /// Propagates fused SAHGL embeddings over the frozen homogeneous graphs.
  MshglOutput Forward(const FrozenGraphs& graphs, const Tensor& fused_user,
                      const Tensor& fused_item) const;

  std::vector<Tensor> Params() const;

 private:
  MshglOptions options_;
  std::vector<Tensor> w_query_;  // per modality, d x d (heads sliced)
  std::vector<Tensor> w_key_;
};

}  // namespace firzen

#endif  // FIRZEN_CORE_MSHGL_H_
