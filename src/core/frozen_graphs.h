// Frozen Graph Construction (paper §III-B): builds every graph Firzen needs,
// once, as immutable CSR matrices. Training graphs cover warm items only;
// inference graphs are expanded over all items with the cold-isolation mask
// (Eqs. 34-35) applied before normalization.
#ifndef FIRZEN_CORE_FROZEN_GRAPHS_H_
#define FIRZEN_CORE_FROZEN_GRAPHS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/graph/collaborative_kg.h"
#include "src/tensor/csr.h"
#include "src/util/thread_pool.h"

namespace firzen {

struct FrozenGraphOptions {
  Index knn_k = 10;       // item-item top-K (Eq. 2)
  Index user_topk = 10;   // user-user top-K (Eq. 4)
  ThreadPool* pool = nullptr;
};

/// The complete frozen graph set. All members are immutable after build.
struct FrozenGraphs {
  /// Symmetrically normalized (U+I)x(U+I) interaction adjacency (Eqs. 5-6).
  std::shared_ptr<const CsrMatrix> interaction;
  /// Row-normalized U->I and I->U aggregation operators (Eqs. 7-8).
  std::shared_ptr<const CsrMatrix> user_to_item;
  std::shared_ptr<const CsrMatrix> item_to_user;
  /// Collaborative knowledge graph (§III-B.1).
  CollaborativeKg ckg;
  /// Per-modality normalized item-item graphs, aligned with
  /// dataset.modalities order (Eqs. 1-3).
  std::vector<std::shared_ptr<const CsrMatrix>> item_item;
  /// User-user co-occurrence graph with raw counts (Eq. 4); Eq. 19 softmax
  /// is pre-applied in `user_user_softmax`.
  std::shared_ptr<const CsrMatrix> user_user_softmax;
};

/// Training-time graphs: item-item kNN restricted to warm items.
FrozenGraphs BuildTrainGraphs(const Dataset& dataset,
                              const FrozenGraphOptions& options);

/// Inference-time graphs: item-item kNN over all items with the Eq. 34 mask
/// (no cold -> warm propagation), re-normalized. Other graphs are reused
/// unchanged from the training build. `extra_interactions` supports the
/// normal cold-start protocol (revealed links join the interaction graphs).
FrozenGraphs BuildInferenceGraphs(
    const Dataset& dataset, const FrozenGraphOptions& options,
    const FrozenGraphs& train_graphs,
    const std::vector<Interaction>& extra_interactions = {});

}  // namespace firzen

#endif  // FIRZEN_CORE_FROZEN_GRAPHS_H_
