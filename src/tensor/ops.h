// Differentiable operations over Tensor. Free functions in namespace
// firzen::ops; each builds one graph node. Shapes are validated eagerly.
#ifndef FIRZEN_TENSOR_OPS_H_
#define FIRZEN_TENSOR_OPS_H_

#include <memory>
#include <vector>

#include "src/tensor/csr.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace firzen {
namespace ops {

// ---------------------------------------------------------------------------
// Elementwise kernel helpers. Shared by every elementwise autograd op below
// (and by callers like the discriminator's weight clipping) instead of ~10
// hand-rolled index loops. Large buffers are sharded across the global
// thread pool; each index is touched by exactly one shard, so results are
// deterministic for any pool size. `fn` must be a pure per-element function.
// ---------------------------------------------------------------------------

namespace detail {
/// Minimum elements per shard: elementwise work is cheap, so only large
/// tensors are worth scheduling on the pool.
constexpr Index kElementwiseGrain = 1 << 14;
}  // namespace detail

/// out[i] = fn(out[i])  (in-place unary map).
template <typename Fn>
void ApplyElementwise(Index n, Real* out, Fn fn) {
  ParallelFor(
      ThreadPool::Global(), n,
      [&](Index begin, Index end) {
        for (Index i = begin; i < end; ++i) out[i] = fn(out[i]);
      },
      detail::kElementwiseGrain);
}

/// out[i] = fn(a[i], b[i]). `out` may alias either input.
template <typename Fn>
void ApplyElementwise(Index n, const Real* a, const Real* b, Real* out,
                      Fn fn) {
  ParallelFor(
      ThreadPool::Global(), n,
      [&](Index begin, Index end) {
        for (Index i = begin; i < end; ++i) out[i] = fn(a[i], b[i]);
      },
      detail::kElementwiseGrain);
}

/// acc[i] += fn(g[i], a[i])  (fused backward accumulation).
template <typename Fn>
void ApplyElementwiseGrad(Index n, const Real* g, const Real* a, Real* acc,
                          Fn fn) {
  ParallelFor(
      ThreadPool::Global(), n,
      [&](Index begin, Index end) {
        for (Index i = begin; i < end; ++i) acc[i] += fn(g[i], a[i]);
      },
      detail::kElementwiseGrain);
}

/// acc[i] += fn(g[i], a[i], b[i]).
template <typename Fn>
void ApplyElementwiseGrad(Index n, const Real* g, const Real* a,
                          const Real* b, Real* acc, Fn fn) {
  ParallelFor(
      ThreadPool::Global(), n,
      [&](Index begin, Index end) {
        for (Index i = begin; i < end; ++i) acc[i] += fn(g[i], a[i], b[i]);
      },
      detail::kElementwiseGrain);
}

/// Element-wise a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);
/// Element-wise a - b (same shape).
Tensor Sub(const Tensor& a, const Tensor& b);
/// Element-wise a * b (same shape).
Tensor Mul(const Tensor& a, const Tensor& b);
/// Element-wise a / b (same shape). b must be nonzero everywhere.
Tensor Div(const Tensor& a, const Tensor& b);
/// alpha * a.
Tensor Scale(const Tensor& a, Real alpha);
/// a + alpha (element-wise).
Tensor AddScalar(const Tensor& a, Real alpha);
/// Sum of an arbitrary number of same-shaped tensors.
Tensor AddN(const std::vector<Tensor>& xs);

/// op(a) * op(b) with optional transposes.
Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

/// y = A * x where A is a frozen sparse matrix (no gradient into A).
Tensor SpMM(std::shared_ptr<const CsrMatrix> a, const Tensor& x);

/// y[k, :] = x[idx[k], :]. Backward scatter-adds into x.
Tensor GatherRows(const Tensor& x, std::vector<Index> idx);

/// Column slice [begin, end).
Tensor SliceCols(const Tensor& x, Index begin, Index end);

/// Matrix transpose.
Tensor Transpose(const Tensor& x);

/// Row-wise L2 normalization with numeric floor eps.
Tensor RowL2Normalize(const Tensor& x, Real eps = 1e-12);

/// Element-wise nonlinearities.
Tensor Sigmoid(const Tensor& x);
Tensor Tanh(const Tensor& x);
Tensor Relu(const Tensor& x);
Tensor LeakyRelu(const Tensor& x, Real alpha = 0.2);
Tensor Exp(const Tensor& x);
/// log(max(x, eps)).
Tensor Log(const Tensor& x, Real eps = 1e-12);
/// Numerically stable log(1 + exp(x)). Note -Softplus(-x) == log(sigmoid(x)).
Tensor Softplus(const Tensor& x);

/// Softmax along each row.
Tensor RowSoftmax(const Tensor& x);

/// Inverted dropout with keep-prob (1 - p); identity when p <= 0.
Tensor Dropout(const Tensor& x, Real p, Rng* rng);

/// y[r, :] = x[r, :] * w[r, 0] (w is n x 1).
Tensor RowScale(const Tensor& x, const Tensor& w);

/// y[r, :] = x[r, :] + b[0, :] (b is 1 x d).
Tensor AddRowBroadcast(const Tensor& x, const Tensor& b);

/// y[r, 0] = dot(a[r, :], b[r, :]) (same shapes, result n x 1).
Tensor RowDot(const Tensor& a, const Tensor& b);

/// Scalar sum over all elements (1 x 1).
Tensor ReduceSum(const Tensor& x);
/// Scalar mean over all elements (1 x 1).
Tensor ReduceMean(const Tensor& x);
/// Per-row sums (n x 1).
Tensor RowSum(const Tensor& x);
/// Per-column sums (1 x d).
Tensor ColSum(const Tensor& x);
/// Scalar sum of squares (1 x 1) — L2 regularization workhorse.
Tensor SumSquares(const Tensor& x);

/// Train-mode batch normalization over rows (per-column statistics), with
/// learnable gamma (1 x d) and beta (1 x d).
Tensor BatchNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 Real eps = 1e-5);

/// Horizontal concatenation [x0 | x1 | ...] of same-row-count tensors.
Tensor ConcatCols(const std::vector<Tensor>& xs);

/// Reinterprets the row-major buffer with a new shape (rows*cols preserved).
Tensor Reshape(const Tensor& x, Index rows, Index cols);

/// Sums consecutive groups of `group_size` rows:
/// y[b, :] = sum_{s < group_size} x[b * group_size + s, :].
Tensor SumGroups(const Tensor& x, Index group_size);

/// Repeats each row `times` times consecutively:
/// y[k, :] = x[k / times, :]. Backward sums the repeats.
Tensor RepeatInterleaveRows(const Tensor& x, Index times);

/// Cuts the graph: returns a constant holding a copy of x's value.
Tensor Detach(const Tensor& x);

/// log(sigmoid(x)) composed from stable primitives.
Tensor LogSigmoid(const Tensor& x);

}  // namespace ops
}  // namespace firzen

#endif  // FIRZEN_TENSOR_OPS_H_
