// Immutable compressed-sparse-row matrix. This is the representation of every
// "frozen" graph in the paper: built once, never mutated (DESIGN.md §4.1).
// Inference-time cold-start expansion produces a *new* CsrMatrix.
#ifndef FIRZEN_TENSOR_CSR_H_
#define FIRZEN_TENSOR_CSR_H_

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/tensor/matrix.h"
#include "src/util/common.h"

namespace firzen {

class ThreadPool;

/// One (row, col, value) coordinate entry used during construction.
struct CooEntry {
  Index row;
  Index col;
  Real value;
};

/// Immutable CSR sparse matrix. All mutating "operations" return new
/// instances. The transpose is computed lazily, cached, and guarded by
/// std::call_once, so concurrent first calls to Transposed() are safe even
/// when SpMM callers run on the thread pool.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from coordinate entries. Duplicate (row, col) pairs are summed.
  static CsrMatrix FromCoo(Index rows, Index cols,
                           std::vector<CooEntry> entries);

  /// Builds a multigraph: duplicate (row, col) pairs are kept as distinct
  /// stored entries. Entries are stably grouped by row, preserving the
  /// caller's within-row order (so parallel per-edge arrays stay aligned —
  /// the collaborative KG uses this for per-edge relation ids).
  static CsrMatrix FromCooNoMerge(Index rows, Index cols,
                                  std::vector<CooEntry> entries);

  /// Returns a copy sharing this topology with the value array replaced
  /// (same length as nnz()). Used to refresh attention weights per epoch
  /// without rebuilding the structure.
  CsrMatrix WithValues(std::vector<Real> values) const;

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index nnz() const { return static_cast<Index>(col_idx_.size()); }

  const std::vector<Index>& row_ptr() const { return row_ptr_; }
  const std::vector<Index>& col_idx() const { return col_idx_; }
  const std::vector<Real>& values() const { return values_; }

  /// Number of stored entries in row r.
  Index RowNnz(Index r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

  /// y = this * x  (dense x with x.rows() == cols()). Output is resized.
  /// Row shards run on `pool` (nullptr = ThreadPool::Global()); output rows
  /// are disjoint so no synchronization is needed and results do not depend
  /// on the pool size.
  void SpMM(const Matrix& x, Matrix* y, ThreadPool* pool = nullptr) const;

  /// y += alpha * this * x. y must already be (rows() x x.cols()).
  void SpMMAccum(Real alpha, const Matrix& x, Matrix* y,
                 ThreadPool* pool = nullptr) const;

  /// y = this^T * x, reusing the cached transpose (the backward pass of a
  /// frozen-graph propagation). x.rows() must equal rows().
  void SpMMT(const Matrix& x, Matrix* y, ThreadPool* pool = nullptr) const;

  /// y += alpha * this^T * x via the cached transpose.
  void SpMMTAccum(Real alpha, const Matrix& x, Matrix* y,
                  ThreadPool* pool = nullptr) const;

  /// Cached transpose; first call builds it under std::call_once.
  const CsrMatrix& Transposed() const;

  /// Returns a copy whose rows are L1-normalized (zero rows stay zero).
  CsrMatrix RowNormalized() const;

  /// Returns D^{-1/2} A D^{-1/2} where D is the diagonal degree matrix of
  /// row/col value sums (zero-degree rows/cols stay zero). Square only.
  CsrMatrix SymNormalized() const;

  /// Returns a copy where each row's values are replaced by a softmax over
  /// that row's stored values (user-user attention, Eq. 19).
  CsrMatrix RowSoftmax() const;

  /// Returns a copy with entries for which `keep(row, col)` is false removed.
  CsrMatrix Filtered(const std::function<bool(Index, Index)>& keep) const;

  /// Dense materialization (tests / tiny matrices only).
  Matrix ToDense() const;

 private:
  /// Minimum rows per SpMM shard for a dense operand of width d.
  Index MinRowShard(Index d) const;

  // Lazily-built transpose plus its call_once guard. Held behind a
  // shared_ptr because once_flag is neither copyable nor movable; copies of
  // a CsrMatrix share the cache (they are value-identical), while the
  // value-changing ops above install a fresh cache on their result.
  struct TransposeCache {
    std::once_flag once;
    std::shared_ptr<const CsrMatrix> value;
  };

  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Index> row_ptr_;
  std::vector<Index> col_idx_;
  std::vector<Real> values_;
  mutable std::shared_ptr<TransposeCache> transpose_cache_ =
      std::make_shared<TransposeCache>();
};

}  // namespace firzen

#endif  // FIRZEN_TENSOR_CSR_H_
