// Numerical gradient verification used by the autograd test suite. Builds the
// loss twice per perturbed entry (central differences) and compares against
// the analytic gradient from Backward().
#ifndef FIRZEN_TENSOR_GRADCHECK_H_
#define FIRZEN_TENSOR_GRADCHECK_H_

#include <functional>
#include <vector>

#include "src/tensor/tensor.h"

namespace firzen {

struct GradCheckResult {
  Real max_abs_error = 0.0;
  Real max_rel_error = 0.0;
  bool ok = false;
};

/// Checks d(loss)/d(param) for every entry of every parameter.
/// `build_loss` must rebuild the full forward graph from the current
/// parameter values and return the scalar loss tensor (1 x 1).
/// Tolerance is on max(abs_error, rel_error) per entry.
GradCheckResult CheckGradients(const std::vector<Tensor>& params,
                               const std::function<Tensor()>& build_loss,
                               Real step = 1e-5, Real tolerance = 1e-6);

}  // namespace firzen

#endif  // FIRZEN_TENSOR_GRADCHECK_H_
