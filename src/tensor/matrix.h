// Dense row-major matrix with the handful of kernels the autograd engine
// needs. No external BLAS: Gemm is a register-blocked (4x8 micro-tile),
// cache-blocked kernel whose outer row dimension is sharded across the
// global thread pool. Results are bit-identical for any pool size because
// every output element is a straight k-ordered sum.
#ifndef FIRZEN_TENSOR_MATRIX_H_
#define FIRZEN_TENSOR_MATRIX_H_

#include <vector>

#include "src/util/check.h"
#include "src/util/common.h"
#include "src/util/rng.h"

namespace firzen {

class ThreadPool;

/// Dense row-major matrix of Real. A (rows x cols) matrix stores element
/// (r, c) at data[r * cols + c]. Vectors are represented as n x 1 or 1 x n.
class Matrix {
 public:
  Matrix() = default;
  Matrix(Index rows, Index cols, Real fill = 0.0);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  Real& operator()(Index r, Index c) {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  Real operator()(Index r, Index c) const {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  Real* data() { return data_.data(); }
  const Real* data() const { return data_.data(); }
  Real* row(Index r) { return data_.data() + r * cols_; }
  const Real* row(Index r) const { return data_.data() + r * cols_; }

  /// Sets every element to `value`.
  void Fill(Real value);

  /// Sets every element to zero (keeps shape).
  void Zero() { Fill(0.0); }

  /// Resize to (rows x cols) and zero. Existing contents are discarded.
  void Resize(Index rows, Index cols);

  /// Resize to (rows x cols) without clearing existing contents. For kernels
  /// that overwrite every element (e.g. Gemm's beta == 0 path): when the
  /// buffer already has the right size — the steady state when an output
  /// matrix is reused across training steps — this skips Resize()'s full
  /// zero-fill pass. Contents are unspecified; read only after writing.
  void ResizeUninitialized(Index rows, Index cols);

  /// Element-wise +=. Shapes must match.
  void Add(const Matrix& other);

  /// this += alpha * other. Shapes must match.
  void Axpy(Real alpha, const Matrix& other);

  /// Multiply every element by alpha.
  void Scale(Real alpha);

  /// Frobenius-inner-product <this, other>.
  Real Dot(const Matrix& other) const;

  /// Sum of squares of all elements.
  Real SquaredNorm() const;

  /// Euclidean norm of row r.
  Real RowNorm(Index r) const;

  /// Fill with independent N(0, stddev) samples.
  void FillNormal(Rng* rng, Real stddev);

  /// Fill with independent U(lo, hi) samples.
  void FillUniform(Rng* rng, Real lo, Real hi);

  /// Returns a new matrix equal to the transpose.
  Matrix Transposed() const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Real> data_;
};

/// Non-owning writable window into a dense row-major buffer: `rows` x `cols`
/// with a row stride of `stride` elements (stride >= cols). Block-streaming
/// scorers write score panels through views so a column window of a wider
/// batch matrix — or a caller-owned flat buffer — works without a copy.
/// The underlying storage must outlive the view.
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(Real* data, Index rows, Index cols, Index stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {
    FIRZEN_CHECK_GE(rows, 0);
    FIRZEN_CHECK_GE(cols, 0);
    FIRZEN_CHECK_GE(stride, cols);
  }

  /// View of a whole matrix (stride == cols).
  explicit MatrixView(Matrix* m)
      : MatrixView(m->data(), m->rows(), m->cols(), m->cols()) {}

  /// Column window [col_begin, col_begin + cols) of every row of `m`.
  static MatrixView Columns(Matrix* m, Index col_begin, Index cols) {
    FIRZEN_CHECK_GE(col_begin, 0);
    FIRZEN_CHECK_LE(col_begin + cols, m->cols());
    return MatrixView(m->data() + col_begin, m->rows(), cols, m->cols());
  }

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index stride() const { return stride_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  Real* data() const { return data_; }
  Real* row(Index r) const { return data_ + r * stride_; }
  Real& operator()(Index r, Index c) const {
    return data_[static_cast<size_t>(r * stride_ + c)];
  }

 private:
  Real* data_ = nullptr;
  Index rows_ = 0;
  Index cols_ = 0;
  Index stride_ = 0;
};

/// Batch-size cutoff for the A * B^T dispatch (Gemm's trans_b path and
/// GemmBT): at or below this many A rows the kernel shards whole B^T column
/// panels across the pool (few user rows, vast catalogs — row sharding has
/// nothing to split), above it it shards rows. BOTH sides run the one
/// panel-packed micro-kernel, so the cutoff is purely a parallelization
/// choice: every output cell is a fixed p-ordered accumulation determined
/// only by its own A row and B row, and scores are bit-identical no matter
/// how many other rows share the batch. Exported so tests can pin
/// bit-equality astride the cutoff (tests/scorer_parity_test.cc,
/// tests/kernel_parity_test.cc).
inline constexpr Index kGemmBTColumnShardMaxRows = 32;

/// C = alpha * op(A) * op(B) + beta * C, where op is optional transpose.
/// Shapes are checked. C must already have the correct shape when beta != 0;
/// otherwise it is resized (uninitialized, then fully overwritten). Rows of C
/// are sharded across `pool` (nullptr = ThreadPool::Global()); results do not
/// depend on the pool size. The trans_b path never materializes B^T: every
/// row shard packs B^T one bounded kNc-column panel at a time, so peak
/// scratch is O(k * kNc) per worker instead of O(k * n), with shard height
/// floored so the re-pack stays amortized; at or below
/// kGemmBTColumnShardMaxRows rows the same kernel shards column panels
/// instead (see above), keeping results bit-identical for any batch size.
void Gemm(bool trans_a, bool trans_b, Real alpha, const Matrix& a,
          const Matrix& b, Real beta, Matrix* c, ThreadPool* pool = nullptr);

/// out = a * slice^T where `slice` is `n` contiguous row-major rows of width
/// a.cols() starting at `b_rows` — i.e. out(i, j) = dot(a.row(i),
/// b_rows + j * k). This is the block-scoring kernel: a row range (or a
/// gathered candidate pack) of an item-embedding table scores against a user
/// batch with zero copies of the table. out must be a.rows() x n. Every
/// output element is a straight p-ordered sum through the one panel
/// micro-kernel, so results are bit-identical to the full-matrix
/// Gemm(trans_b) path for any block partitioning, any pool size, and any
/// user-batch size (the admission front end's coalescing contract).
void GemmBT(const Matrix& a, const Real* b_rows, Index n, MatrixView out,
            ThreadPool* pool = nullptr);

}  // namespace firzen

#endif  // FIRZEN_TENSOR_MATRIX_H_
