// Dense row-major matrix with the handful of kernels the autograd engine
// needs. No external BLAS: Gemm is a register-blocked (4x8 micro-tile),
// cache-blocked kernel whose outer row dimension is sharded across the
// global thread pool. Results are bit-identical for any pool size because
// every output element is a straight k-ordered sum.
#ifndef FIRZEN_TENSOR_MATRIX_H_
#define FIRZEN_TENSOR_MATRIX_H_

#include <vector>

#include "src/util/check.h"
#include "src/util/common.h"
#include "src/util/rng.h"

namespace firzen {

class ThreadPool;

/// Dense row-major matrix of Real. A (rows x cols) matrix stores element
/// (r, c) at data[r * cols + c]. Vectors are represented as n x 1 or 1 x n.
class Matrix {
 public:
  Matrix() = default;
  Matrix(Index rows, Index cols, Real fill = 0.0);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  Real& operator()(Index r, Index c) {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  Real operator()(Index r, Index c) const {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  Real* data() { return data_.data(); }
  const Real* data() const { return data_.data(); }
  Real* row(Index r) { return data_.data() + r * cols_; }
  const Real* row(Index r) const { return data_.data() + r * cols_; }

  /// Sets every element to `value`.
  void Fill(Real value);

  /// Sets every element to zero (keeps shape).
  void Zero() { Fill(0.0); }

  /// Resize to (rows x cols) and zero. Existing contents are discarded.
  void Resize(Index rows, Index cols);

  /// Resize to (rows x cols) without clearing existing contents. For kernels
  /// that overwrite every element (e.g. Gemm's beta == 0 path): when the
  /// buffer already has the right size — the steady state when an output
  /// matrix is reused across training steps — this skips Resize()'s full
  /// zero-fill pass. Contents are unspecified; read only after writing.
  void ResizeUninitialized(Index rows, Index cols);

  /// Element-wise +=. Shapes must match.
  void Add(const Matrix& other);

  /// this += alpha * other. Shapes must match.
  void Axpy(Real alpha, const Matrix& other);

  /// Multiply every element by alpha.
  void Scale(Real alpha);

  /// Frobenius-inner-product <this, other>.
  Real Dot(const Matrix& other) const;

  /// Sum of squares of all elements.
  Real SquaredNorm() const;

  /// Euclidean norm of row r.
  Real RowNorm(Index r) const;

  /// Fill with independent N(0, stddev) samples.
  void FillNormal(Rng* rng, Real stddev);

  /// Fill with independent U(lo, hi) samples.
  void FillUniform(Rng* rng, Real lo, Real hi);

  /// Returns a new matrix equal to the transpose.
  Matrix Transposed() const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Real> data_;
};

/// C = alpha * op(A) * op(B) + beta * C, where op is optional transpose.
/// Shapes are checked. C must already have the correct shape when beta != 0;
/// otherwise it is resized (uninitialized, then fully overwritten). Rows of C
/// are sharded across `pool` (nullptr = ThreadPool::Global()); results do not
/// depend on the pool size.
void Gemm(bool trans_a, bool trans_b, Real alpha, const Matrix& a,
          const Matrix& b, Real beta, Matrix* c, ThreadPool* pool = nullptr);

}  // namespace firzen

#endif  // FIRZEN_TENSOR_MATRIX_H_
