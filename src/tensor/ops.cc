#include "src/tensor/ops.h"

#include <cmath>
#include <utility>

#include "src/util/check.h"

namespace firzen {
namespace ops {
namespace {

using NodePtr = std::shared_ptr<TensorNode>;

NodePtr NewNode(const char* name, std::vector<NodePtr> parents) {
  auto node = std::make_shared<TensorNode>();
  node->op_name = name;
  node->parents = std::move(parents);
  for (const auto& p : node->parents) {
    node->requires_grad = node->requires_grad || p->requires_grad;
  }
  return node;
}

void CheckSameShape(const Tensor& a, const Tensor& b) {
  FIRZEN_CHECK_EQ(a.rows(), b.rows());
  FIRZEN_CHECK_EQ(a.cols(), b.cols());
}

// Accumulate src into parent's grad if it participates in the tape.
void AccumulateInto(TensorNode* parent, const Matrix& src) {
  if (!parent->requires_grad) return;
  parent->EnsureGrad();
  parent->grad.Add(src);
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  auto node = NewNode("add", {a.node(), b.node()});
  node->value = a.value();
  node->value.Add(b.value());
  if (node->requires_grad) {
    node->backward_fn = [](TensorNode* self) {
      AccumulateInto(self->parents[0].get(), self->grad);
      AccumulateInto(self->parents[1].get(), self->grad);
    };
  }
  return Tensor(node);
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  auto node = NewNode("sub", {a.node(), b.node()});
  node->value = a.value();
  node->value.Axpy(-1.0, b.value());
  if (node->requires_grad) {
    node->backward_fn = [](TensorNode* self) {
      AccumulateInto(self->parents[0].get(), self->grad);
      TensorNode* b_node = self->parents[1].get();
      if (b_node->requires_grad) {
        b_node->EnsureGrad();
        b_node->grad.Axpy(-1.0, self->grad);
      }
    };
  }
  return Tensor(node);
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  auto node = NewNode("mul", {a.node(), b.node()});
  node->value = a.value();
  ApplyElementwise(node->value.size(), node->value.data(), b.value().data(),
                   node->value.data(), [](Real x, Real y) { return x * y; });
  if (node->requires_grad) {
    node->backward_fn = [](TensorNode* self) {
      TensorNode* a_node = self->parents[0].get();
      TensorNode* b_node = self->parents[1].get();
      const Index n = self->grad.size();
      if (a_node->requires_grad) {
        a_node->EnsureGrad();
        ApplyElementwiseGrad(n, self->grad.data(), b_node->value.data(),
                             a_node->grad.data(),
                             [](Real g, Real y) { return g * y; });
      }
      if (b_node->requires_grad) {
        b_node->EnsureGrad();
        ApplyElementwiseGrad(n, self->grad.data(), a_node->value.data(),
                             b_node->grad.data(),
                             [](Real g, Real x) { return g * x; });
      }
    };
  }
  return Tensor(node);
}

Tensor Div(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  auto node = NewNode("div", {a.node(), b.node()});
  node->value = a.value();
  ApplyElementwise(node->value.size(), node->value.data(), b.value().data(),
                   node->value.data(), [](Real x, Real y) { return x / y; });
  if (node->requires_grad) {
    node->backward_fn = [](TensorNode* self) {
      TensorNode* a_node = self->parents[0].get();
      TensorNode* b_node = self->parents[1].get();
      const Index n = self->grad.size();
      if (a_node->requires_grad) {
        a_node->EnsureGrad();
        ApplyElementwiseGrad(n, self->grad.data(), b_node->value.data(),
                             a_node->grad.data(),
                             [](Real g, Real y) { return g / y; });
      }
      if (b_node->requires_grad) {
        b_node->EnsureGrad();
        ApplyElementwiseGrad(n, self->grad.data(), self->value.data(),
                             b_node->value.data(), b_node->grad.data(),
                             [](Real g, Real out, Real y) {
                               return -g * out / y;
                             });
      }
    };
  }
  return Tensor(node);
}

Tensor Scale(const Tensor& a, Real alpha) {
  auto node = NewNode("scale", {a.node()});
  node->value = a.value();
  node->value.Scale(alpha);
  if (node->requires_grad) {
    node->backward_fn = [alpha](TensorNode* self) {
      TensorNode* a_node = self->parents[0].get();
      a_node->EnsureGrad();
      a_node->grad.Axpy(alpha, self->grad);
    };
  }
  return Tensor(node);
}

Tensor AddScalar(const Tensor& a, Real alpha) {
  auto node = NewNode("add_scalar", {a.node()});
  node->value = a.value();
  ApplyElementwise(node->value.size(), node->value.data(),
                   [alpha](Real v) { return v + alpha; });
  if (node->requires_grad) {
    node->backward_fn = [](TensorNode* self) {
      AccumulateInto(self->parents[0].get(), self->grad);
    };
  }
  return Tensor(node);
}

Tensor AddN(const std::vector<Tensor>& xs) {
  FIRZEN_CHECK(!xs.empty());
  std::vector<NodePtr> parents;
  parents.reserve(xs.size());
  for (const auto& x : xs) {
    CheckSameShape(xs[0], x);
    parents.push_back(x.node());
  }
  auto node = NewNode("add_n", std::move(parents));
  node->value = xs[0].value();
  for (size_t i = 1; i < xs.size(); ++i) node->value.Add(xs[i].value());
  if (node->requires_grad) {
    node->backward_fn = [](TensorNode* self) {
      for (auto& parent : self->parents) {
        AccumulateInto(parent.get(), self->grad);
      }
    };
  }
  return Tensor(node);
}

Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  auto node = NewNode("matmul", {a.node(), b.node()});
  Gemm(trans_a, trans_b, 1.0, a.value(), b.value(), 0.0, &node->value);
  if (node->requires_grad) {
    node->backward_fn = [trans_a, trans_b](TensorNode* self) {
      TensorNode* a_node = self->parents[0].get();
      TensorNode* b_node = self->parents[1].get();
      const Matrix& g = self->grad;
      if (a_node->requires_grad) {
        a_node->EnsureGrad();
        if (!trans_a) {
          // dA = dC * op(B)^T
          Gemm(false, !trans_b, 1.0, g, b_node->value, 1.0, &a_node->grad);
        } else if (!trans_b) {
          // C = A^T B  =>  dA = B * dC^T
          Gemm(false, true, 1.0, b_node->value, g, 1.0, &a_node->grad);
        } else {
          // C = A^T B^T  =>  dA = B^T * dC^T
          Gemm(true, true, 1.0, b_node->value, g, 1.0, &a_node->grad);
        }
      }
      if (b_node->requires_grad) {
        b_node->EnsureGrad();
        if (!trans_b) {
          // dB = op(A)^T * dC
          Gemm(!trans_a, false, 1.0, a_node->value, g, 1.0, &b_node->grad);
        } else if (!trans_a) {
          // C = A B^T  =>  dB = dC^T * A
          Gemm(true, false, 1.0, g, a_node->value, 1.0, &b_node->grad);
        } else {
          // C = A^T B^T  =>  dB = dC^T * A^T
          Gemm(true, true, 1.0, g, a_node->value, 1.0, &b_node->grad);
        }
      }
    };
  }
  return Tensor(node);
}

Tensor SpMM(std::shared_ptr<const CsrMatrix> a, const Tensor& x) {
  FIRZEN_CHECK(a != nullptr);
  FIRZEN_CHECK_EQ(a->cols(), x.rows());
  auto node = NewNode("spmm", {x.node()});
  a->SpMM(x.value(), &node->value);
  if (node->requires_grad) {
    node->backward_fn = [a](TensorNode* self) {
      TensorNode* x_node = self->parents[0].get();
      x_node->EnsureGrad();
      a->SpMMTAccum(1.0, self->grad, &x_node->grad);
    };
  }
  return Tensor(node);
}

Tensor GatherRows(const Tensor& x, std::vector<Index> idx) {
  const Index d = x.cols();
  auto node = NewNode("gather_rows", {x.node()});
  node->value.Resize(static_cast<Index>(idx.size()), d);
  for (size_t k = 0; k < idx.size(); ++k) {
    FIRZEN_CHECK_GE(idx[k], 0);
    FIRZEN_CHECK_LT(idx[k], x.rows());
    const Real* src = x.value().row(idx[k]);
    Real* dst = node->value.row(static_cast<Index>(k));
    for (Index c = 0; c < d; ++c) dst[c] = src[c];
  }
  if (node->requires_grad) {
    node->backward_fn = [idx = std::move(idx), d](TensorNode* self) {
      TensorNode* x_node = self->parents[0].get();
      x_node->EnsureGrad();
      for (size_t k = 0; k < idx.size(); ++k) {
        const Real* src = self->grad.row(static_cast<Index>(k));
        Real* dst = x_node->grad.row(idx[k]);
        for (Index c = 0; c < d; ++c) dst[c] += src[c];
      }
    };
  }
  return Tensor(node);
}

Tensor SliceCols(const Tensor& x, Index begin, Index end) {
  FIRZEN_CHECK_GE(begin, 0);
  FIRZEN_CHECK_LT(begin, end);
  FIRZEN_CHECK_LE(end, x.cols());
  const Index n = x.rows();
  const Index w = end - begin;
  auto node = NewNode("slice_cols", {x.node()});
  node->value.Resize(n, w);
  for (Index r = 0; r < n; ++r) {
    const Real* src = x.value().row(r) + begin;
    Real* dst = node->value.row(r);
    for (Index c = 0; c < w; ++c) dst[c] = src[c];
  }
  if (node->requires_grad) {
    node->backward_fn = [begin, w](TensorNode* self) {
      TensorNode* x_node = self->parents[0].get();
      x_node->EnsureGrad();
      for (Index r = 0; r < self->grad.rows(); ++r) {
        const Real* src = self->grad.row(r);
        Real* dst = x_node->grad.row(r) + begin;
        for (Index c = 0; c < w; ++c) dst[c] += src[c];
      }
    };
  }
  return Tensor(node);
}

Tensor Transpose(const Tensor& x) {
  auto node = NewNode("transpose", {x.node()});
  node->value = x.value().Transposed();
  if (node->requires_grad) {
    node->backward_fn = [](TensorNode* self) {
      TensorNode* x_node = self->parents[0].get();
      x_node->EnsureGrad();
      x_node->grad.Add(self->grad.Transposed());
    };
  }
  return Tensor(node);
}

Tensor RowL2Normalize(const Tensor& x, Real eps) {
  const Index n = x.rows();
  const Index d = x.cols();
  auto node = NewNode("row_l2_normalize", {x.node()});
  node->value.Resize(n, d);
  std::vector<Real> norms(static_cast<size_t>(n));
  for (Index r = 0; r < n; ++r) {
    const Real norm = std::max(x.value().RowNorm(r), eps);
    norms[static_cast<size_t>(r)] = norm;
    const Real* src = x.value().row(r);
    Real* dst = node->value.row(r);
    for (Index c = 0; c < d; ++c) dst[c] = src[c] / norm;
  }
  if (node->requires_grad) {
    node->backward_fn = [norms = std::move(norms), d](TensorNode* self) {
      TensorNode* x_node = self->parents[0].get();
      x_node->EnsureGrad();
      for (Index r = 0; r < self->grad.rows(); ++r) {
        const Real* g = self->grad.row(r);
        const Real* y = self->value.row(r);
        Real* gx = x_node->grad.row(r);
        // Sequential fixed-order scalar reduction: deterministic as written; the
        // sanctioned fma kernels (matrix.cc) exist for blocked/parallel panels.
        // firzen-lint: allow(raw-float-accum)
        Real gy = 0.0;
        for (Index c = 0; c < d; ++c) gy += g[c] * y[c];
        const Real inv = 1.0 / norms[static_cast<size_t>(r)];
        for (Index c = 0; c < d; ++c) gx[c] += (g[c] - y[c] * gy) * inv;
      }
    };
  }
  return Tensor(node);
}

namespace {

// Shared machinery for element-wise unary ops whose derivative can be
// written as a function of (input, output). Templated on the callables so
// the forward map and the fused backward accumulation both inline into the
// ApplyElementwise sharded loops.
template <typename Fwd, typename Dfn>
Tensor UnaryOp(const char* name, const Tensor& x, Fwd fwd, Dfn dfn) {
  auto node = NewNode(name, {x.node()});
  node->value = x.value();
  ApplyElementwise(node->value.size(), node->value.data(), fwd);
  if (node->requires_grad) {
    node->backward_fn = [dfn](TensorNode* self) {
      TensorNode* x_node = self->parents[0].get();
      x_node->EnsureGrad();
      ApplyElementwiseGrad(self->grad.size(), self->grad.data(),
                           x_node->value.data(), self->value.data(),
                           x_node->grad.data(), [dfn](Real g, Real in,
                                                      Real out) {
                             return g * dfn(in, out);
                           });
    };
  }
  return Tensor(node);
}

}  // namespace

Tensor Sigmoid(const Tensor& x) {
  return UnaryOp(
      "sigmoid", x,
      [](Real v) {
        return v >= 0 ? 1.0 / (1.0 + std::exp(-v))
                      : std::exp(v) / (1.0 + std::exp(v));
      },
      [](Real, Real y) { return y * (1.0 - y); });
}

Tensor Tanh(const Tensor& x) {
  return UnaryOp("tanh", x, [](Real v) { return std::tanh(v); },
                 [](Real, Real y) { return 1.0 - y * y; });
}

Tensor Relu(const Tensor& x) {
  return UnaryOp("relu", x, [](Real v) { return v > 0 ? v : 0.0; },
                 [](Real v, Real) { return v > 0 ? 1.0 : 0.0; });
}

Tensor LeakyRelu(const Tensor& x, Real alpha) {
  return UnaryOp(
      "leaky_relu", x, [alpha](Real v) { return v > 0 ? v : alpha * v; },
      [alpha](Real v, Real) { return v > 0 ? 1.0 : alpha; });
}

Tensor Exp(const Tensor& x) {
  return UnaryOp("exp", x, [](Real v) { return std::exp(v); },
                 [](Real, Real y) { return y; });
}

Tensor Log(const Tensor& x, Real eps) {
  return UnaryOp(
      "log", x, [eps](Real v) { return std::log(std::max(v, eps)); },
      [eps](Real v, Real) { return v > eps ? 1.0 / v : 1.0 / eps; });
}

Tensor Softplus(const Tensor& x) {
  return UnaryOp(
      "softplus", x,
      [](Real v) {
        if (v > 30.0) return v;
        if (v < -30.0) return std::exp(v);
        return std::log1p(std::exp(v));
      },
      [](Real v, Real) {
        return v >= 0 ? 1.0 / (1.0 + std::exp(-v))
                      : std::exp(v) / (1.0 + std::exp(v));
      });
}

Tensor RowSoftmax(const Tensor& x) {
  const Index n = x.rows();
  const Index d = x.cols();
  auto node = NewNode("row_softmax", {x.node()});
  node->value.Resize(n, d);
  for (Index r = 0; r < n; ++r) {
    const Real* src = x.value().row(r);
    Real* dst = node->value.row(r);
    Real max_v = src[0];
    for (Index c = 1; c < d; ++c) max_v = std::max(max_v, src[c]);
    // Sequential fixed-order scalar reduction: deterministic as written; the
    // sanctioned fma kernels (matrix.cc) exist for blocked/parallel panels.
    // firzen-lint: allow(raw-float-accum)
    Real denom = 0.0;
    for (Index c = 0; c < d; ++c) {
      dst[c] = std::exp(src[c] - max_v);
      denom += dst[c];
    }
    for (Index c = 0; c < d; ++c) dst[c] /= denom;
  }
  if (node->requires_grad) {
    node->backward_fn = [d](TensorNode* self) {
      TensorNode* x_node = self->parents[0].get();
      x_node->EnsureGrad();
      for (Index r = 0; r < self->grad.rows(); ++r) {
        const Real* g = self->grad.row(r);
        const Real* y = self->value.row(r);
        Real* gx = x_node->grad.row(r);
        // Sequential fixed-order scalar reduction: deterministic as written; the
        // sanctioned fma kernels (matrix.cc) exist for blocked/parallel panels.
        // firzen-lint: allow(raw-float-accum)
        Real gy = 0.0;
        for (Index c = 0; c < d; ++c) gy += g[c] * y[c];
        for (Index c = 0; c < d; ++c) gx[c] += (g[c] - gy) * y[c];
      }
    };
  }
  return Tensor(node);
}

Tensor Dropout(const Tensor& x, Real p, Rng* rng) {
  if (p <= 0.0) return x;
  FIRZEN_CHECK_LT(p, 1.0);
  FIRZEN_CHECK(rng != nullptr);
  const Real keep = 1.0 - p;
  auto node = NewNode("dropout", {x.node()});
  node->value = x.value();
  std::vector<Real> mask(static_cast<size_t>(x.value().size()));
  for (size_t i = 0; i < mask.size(); ++i) {
    mask[i] = rng->Bernoulli(keep) ? 1.0 / keep : 0.0;
    node->value.data()[static_cast<Index>(i)] *= mask[i];
  }
  if (node->requires_grad) {
    node->backward_fn = [mask = std::move(mask)](TensorNode* self) {
      TensorNode* x_node = self->parents[0].get();
      x_node->EnsureGrad();
      ApplyElementwiseGrad(self->grad.size(), self->grad.data(), mask.data(),
                           x_node->grad.data(),
                           [](Real g, Real m) { return g * m; });
    };
  }
  return Tensor(node);
}

Tensor RowScale(const Tensor& x, const Tensor& w) {
  FIRZEN_CHECK_EQ(w.rows(), x.rows());
  FIRZEN_CHECK_EQ(w.cols(), 1);
  const Index n = x.rows();
  const Index d = x.cols();
  auto node = NewNode("row_scale", {x.node(), w.node()});
  node->value = x.value();
  for (Index r = 0; r < n; ++r) {
    Real* dst = node->value.row(r);
    const Real s = w.value()(r, 0);
    for (Index c = 0; c < d; ++c) dst[c] *= s;
  }
  if (node->requires_grad) {
    node->backward_fn = [d](TensorNode* self) {
      TensorNode* x_node = self->parents[0].get();
      TensorNode* w_node = self->parents[1].get();
      for (Index r = 0; r < self->grad.rows(); ++r) {
        const Real* g = self->grad.row(r);
        if (x_node->requires_grad) {
          x_node->EnsureGrad();
          Real* gx = x_node->grad.row(r);
          const Real s = w_node->value(r, 0);
          for (Index c = 0; c < d; ++c) gx[c] += g[c] * s;
        }
        if (w_node->requires_grad) {
          w_node->EnsureGrad();
          const Real* xv = x_node->value.row(r);
          // Sequential fixed-order scalar reduction: deterministic as written; the
          // sanctioned fma kernels (matrix.cc) exist for blocked/parallel panels.
          // firzen-lint: allow(raw-float-accum)
          Real acc = 0.0;
          for (Index c = 0; c < d; ++c) acc += g[c] * xv[c];
          w_node->grad(r, 0) += acc;
        }
      }
    };
  }
  return Tensor(node);
}

Tensor AddRowBroadcast(const Tensor& x, const Tensor& b) {
  FIRZEN_CHECK_EQ(b.rows(), 1);
  FIRZEN_CHECK_EQ(b.cols(), x.cols());
  const Index n = x.rows();
  const Index d = x.cols();
  auto node = NewNode("add_row_broadcast", {x.node(), b.node()});
  node->value = x.value();
  for (Index r = 0; r < n; ++r) {
    Real* dst = node->value.row(r);
    const Real* bias = b.value().row(0);
    for (Index c = 0; c < d; ++c) dst[c] += bias[c];
  }
  if (node->requires_grad) {
    node->backward_fn = [d](TensorNode* self) {
      TensorNode* x_node = self->parents[0].get();
      TensorNode* b_node = self->parents[1].get();
      if (x_node->requires_grad) {
        AccumulateInto(x_node, self->grad);
      }
      if (b_node->requires_grad) {
        b_node->EnsureGrad();
        Real* gb = b_node->grad.row(0);
        for (Index r = 0; r < self->grad.rows(); ++r) {
          const Real* g = self->grad.row(r);
          for (Index c = 0; c < d; ++c) gb[c] += g[c];
        }
      }
    };
  }
  return Tensor(node);
}

Tensor RowDot(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  const Index n = a.rows();
  const Index d = a.cols();
  auto node = NewNode("row_dot", {a.node(), b.node()});
  node->value.Resize(n, 1);
  for (Index r = 0; r < n; ++r) {
    const Real* av = a.value().row(r);
    const Real* bv = b.value().row(r);
    // Sequential fixed-order scalar reduction: deterministic as written; the
    // sanctioned fma kernels (matrix.cc) exist for blocked/parallel panels.
    // firzen-lint: allow(raw-float-accum)
    Real acc = 0.0;
    for (Index c = 0; c < d; ++c) acc += av[c] * bv[c];
    node->value(r, 0) = acc;
  }
  if (node->requires_grad) {
    node->backward_fn = [d](TensorNode* self) {
      TensorNode* a_node = self->parents[0].get();
      TensorNode* b_node = self->parents[1].get();
      for (Index r = 0; r < self->grad.rows(); ++r) {
        const Real g = self->grad(r, 0);
        if (a_node->requires_grad) {
          a_node->EnsureGrad();
          Real* ga = a_node->grad.row(r);
          const Real* bv = b_node->value.row(r);
          for (Index c = 0; c < d; ++c) ga[c] += g * bv[c];
        }
        if (b_node->requires_grad) {
          b_node->EnsureGrad();
          Real* gb = b_node->grad.row(r);
          const Real* av = a_node->value.row(r);
          for (Index c = 0; c < d; ++c) gb[c] += g * av[c];
        }
      }
    };
  }
  return Tensor(node);
}

Tensor ReduceSum(const Tensor& x) {
  auto node = NewNode("reduce_sum", {x.node()});
  node->value.Resize(1, 1);
  // Sequential fixed-order scalar reduction: deterministic as written; the
  // sanctioned fma kernels (matrix.cc) exist for blocked/parallel panels.
  // firzen-lint: allow(raw-float-accum)
  Real acc = 0.0;
  const Index n = x.value().size();
  for (Index i = 0; i < n; ++i) acc += x.value().data()[i];
  node->value(0, 0) = acc;
  if (node->requires_grad) {
    node->backward_fn = [](TensorNode* self) {
      TensorNode* x_node = self->parents[0].get();
      x_node->EnsureGrad();
      const Real g = self->grad(0, 0);
      ApplyElementwise(x_node->grad.size(), x_node->grad.data(),
                       [g](Real v) { return v + g; });
    };
  }
  return Tensor(node);
}

Tensor ReduceMean(const Tensor& x) {
  const Real inv = 1.0 / static_cast<Real>(x.value().size());
  return Scale(ReduceSum(x), inv);
}

Tensor RowSum(const Tensor& x) {
  const Index n = x.rows();
  const Index d = x.cols();
  auto node = NewNode("row_sum", {x.node()});
  node->value.Resize(n, 1);
  for (Index r = 0; r < n; ++r) {
    const Real* src = x.value().row(r);
    // Sequential fixed-order scalar reduction: deterministic as written; the
    // sanctioned fma kernels (matrix.cc) exist for blocked/parallel panels.
    // firzen-lint: allow(raw-float-accum)
    Real acc = 0.0;
    for (Index c = 0; c < d; ++c) acc += src[c];
    node->value(r, 0) = acc;
  }
  if (node->requires_grad) {
    node->backward_fn = [d](TensorNode* self) {
      TensorNode* x_node = self->parents[0].get();
      x_node->EnsureGrad();
      for (Index r = 0; r < self->grad.rows(); ++r) {
        const Real g = self->grad(r, 0);
        Real* gx = x_node->grad.row(r);
        for (Index c = 0; c < d; ++c) gx[c] += g;
      }
    };
  }
  return Tensor(node);
}

Tensor ColSum(const Tensor& x) {
  const Index n = x.rows();
  const Index d = x.cols();
  auto node = NewNode("col_sum", {x.node()});
  node->value.Resize(1, d);
  for (Index r = 0; r < n; ++r) {
    const Real* src = x.value().row(r);
    Real* dst = node->value.row(0);
    for (Index c = 0; c < d; ++c) dst[c] += src[c];
  }
  if (node->requires_grad) {
    node->backward_fn = [d](TensorNode* self) {
      TensorNode* x_node = self->parents[0].get();
      x_node->EnsureGrad();
      const Real* g = self->grad.row(0);
      for (Index r = 0; r < x_node->grad.rows(); ++r) {
        Real* gx = x_node->grad.row(r);
        for (Index c = 0; c < d; ++c) gx[c] += g[c];
      }
    };
  }
  return Tensor(node);
}

Tensor SumSquares(const Tensor& x) {
  auto node = NewNode("sum_squares", {x.node()});
  node->value.Resize(1, 1);
  node->value(0, 0) = x.value().SquaredNorm();
  if (node->requires_grad) {
    node->backward_fn = [](TensorNode* self) {
      TensorNode* x_node = self->parents[0].get();
      x_node->EnsureGrad();
      const Real g = 2.0 * self->grad(0, 0);
      x_node->grad.Axpy(g, x_node->value);
    };
  }
  return Tensor(node);
}

Tensor BatchNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 Real eps) {
  FIRZEN_CHECK_EQ(gamma.rows(), 1);
  FIRZEN_CHECK_EQ(gamma.cols(), x.cols());
  FIRZEN_CHECK_EQ(beta.rows(), 1);
  FIRZEN_CHECK_EQ(beta.cols(), x.cols());
  const Index n = x.rows();
  const Index d = x.cols();
  FIRZEN_CHECK_GT(n, 0);
  auto node = NewNode("batch_norm", {x.node(), gamma.node(), beta.node()});

  std::vector<Real> mean(static_cast<size_t>(d), 0.0);
  std::vector<Real> inv_std(static_cast<size_t>(d), 0.0);
  for (Index r = 0; r < n; ++r) {
    const Real* src = x.value().row(r);
    for (Index c = 0; c < d; ++c) mean[static_cast<size_t>(c)] += src[c];
  }
  for (Index c = 0; c < d; ++c) mean[static_cast<size_t>(c)] /= n;
  for (Index r = 0; r < n; ++r) {
    const Real* src = x.value().row(r);
    for (Index c = 0; c < d; ++c) {
      const Real dev = src[c] - mean[static_cast<size_t>(c)];
      inv_std[static_cast<size_t>(c)] += dev * dev;
    }
  }
  for (Index c = 0; c < d; ++c) {
    inv_std[static_cast<size_t>(c)] =
        1.0 / std::sqrt(inv_std[static_cast<size_t>(c)] / n + eps);
  }
  // Store normalized pre-affine activations for the backward pass.
  auto xhat = std::make_shared<Matrix>(n, d);
  node->value.Resize(n, d);
  for (Index r = 0; r < n; ++r) {
    const Real* src = x.value().row(r);
    Real* h = xhat->row(r);
    Real* out = node->value.row(r);
    for (Index c = 0; c < d; ++c) {
      h[c] = (src[c] - mean[static_cast<size_t>(c)]) *
             inv_std[static_cast<size_t>(c)];
      out[c] = h[c] * gamma.value()(0, c) + beta.value()(0, c);
    }
  }
  if (node->requires_grad) {
    node->backward_fn = [xhat, inv_std = std::move(inv_std), n,
                         d](TensorNode* self) {
      TensorNode* x_node = self->parents[0].get();
      TensorNode* g_node = self->parents[1].get();
      TensorNode* b_node = self->parents[2].get();
      // Per-column sums of dY and dY * xhat.
      std::vector<Real> sum_dy(static_cast<size_t>(d), 0.0);
      std::vector<Real> sum_dy_xhat(static_cast<size_t>(d), 0.0);
      for (Index r = 0; r < n; ++r) {
        const Real* g = self->grad.row(r);
        const Real* h = xhat->row(r);
        for (Index c = 0; c < d; ++c) {
          sum_dy[static_cast<size_t>(c)] += g[c];
          sum_dy_xhat[static_cast<size_t>(c)] += g[c] * h[c];
        }
      }
      if (g_node->requires_grad) {
        g_node->EnsureGrad();
        for (Index c = 0; c < d; ++c) {
          g_node->grad(0, c) += sum_dy_xhat[static_cast<size_t>(c)];
        }
      }
      if (b_node->requires_grad) {
        b_node->EnsureGrad();
        for (Index c = 0; c < d; ++c) {
          b_node->grad(0, c) += sum_dy[static_cast<size_t>(c)];
        }
      }
      if (x_node->requires_grad) {
        x_node->EnsureGrad();
        for (Index r = 0; r < n; ++r) {
          const Real* g = self->grad.row(r);
          const Real* h = xhat->row(r);
          Real* gx = x_node->grad.row(r);
          for (Index c = 0; c < d; ++c) {
            const size_t sc = static_cast<size_t>(c);
            const Real gamma_c = g_node->value(0, c);
            gx[c] += gamma_c * inv_std[sc] / n *
                     (n * g[c] - sum_dy[sc] - h[c] * sum_dy_xhat[sc]);
          }
        }
      }
    };
  }
  return Tensor(node);
}

Tensor ConcatCols(const std::vector<Tensor>& xs) {
  FIRZEN_CHECK(!xs.empty());
  const Index n = xs[0].rows();
  Index total = 0;
  std::vector<NodePtr> parents;
  std::vector<Index> widths;
  for (const Tensor& x : xs) {
    FIRZEN_CHECK_EQ(x.rows(), n);
    total += x.cols();
    widths.push_back(x.cols());
    parents.push_back(x.node());
  }
  auto node = NewNode("concat_cols", std::move(parents));
  node->value.Resize(n, total);
  Index offset = 0;
  for (const Tensor& x : xs) {
    for (Index r = 0; r < n; ++r) {
      const Real* src = x.value().row(r);
      Real* dst = node->value.row(r) + offset;
      for (Index c = 0; c < x.cols(); ++c) dst[c] = src[c];
    }
    offset += x.cols();
  }
  if (node->requires_grad) {
    node->backward_fn = [widths = std::move(widths)](TensorNode* self) {
      Index offset = 0;
      for (size_t k = 0; k < self->parents.size(); ++k) {
        TensorNode* parent = self->parents[k].get();
        const Index w = widths[k];
        if (parent->requires_grad) {
          parent->EnsureGrad();
          for (Index r = 0; r < self->grad.rows(); ++r) {
            const Real* src = self->grad.row(r) + offset;
            Real* dst = parent->grad.row(r);
            for (Index c = 0; c < w; ++c) dst[c] += src[c];
          }
        }
        offset += w;
      }
    };
  }
  return Tensor(node);
}

Tensor Reshape(const Tensor& x, Index rows, Index cols) {
  FIRZEN_CHECK_EQ(rows * cols, x.rows() * x.cols());
  auto node = NewNode("reshape", {x.node()});
  node->value = x.value();
  // Same element count, so this only rewrites the dims of the copied buffer.
  node->value.ResizeUninitialized(rows, cols);
  if (node->requires_grad) {
    node->backward_fn = [](TensorNode* self) {
      TensorNode* x_node = self->parents[0].get();
      x_node->EnsureGrad();
      ApplyElementwiseGrad(self->grad.size(), self->grad.data(),
                           self->grad.data(), x_node->grad.data(),
                           [](Real g, Real) { return g; });
    };
  }
  return Tensor(node);
}

Tensor SumGroups(const Tensor& x, Index group_size) {
  FIRZEN_CHECK_GT(group_size, 0);
  FIRZEN_CHECK_EQ(x.rows() % group_size, 0);
  const Index groups = x.rows() / group_size;
  const Index d = x.cols();
  auto node = NewNode("sum_groups", {x.node()});
  node->value.Resize(groups, d);
  for (Index b = 0; b < groups; ++b) {
    Real* dst = node->value.row(b);
    for (Index s = 0; s < group_size; ++s) {
      const Real* src = x.value().row(b * group_size + s);
      for (Index c = 0; c < d; ++c) dst[c] += src[c];
    }
  }
  if (node->requires_grad) {
    node->backward_fn = [group_size, d](TensorNode* self) {
      TensorNode* x_node = self->parents[0].get();
      x_node->EnsureGrad();
      for (Index b = 0; b < self->grad.rows(); ++b) {
        const Real* g = self->grad.row(b);
        for (Index s = 0; s < group_size; ++s) {
          Real* gx = x_node->grad.row(b * group_size + s);
          for (Index c = 0; c < d; ++c) gx[c] += g[c];
        }
      }
    };
  }
  return Tensor(node);
}

Tensor RepeatInterleaveRows(const Tensor& x, Index times) {
  FIRZEN_CHECK_GT(times, 0);
  const Index n = x.rows();
  const Index d = x.cols();
  auto node = NewNode("repeat_interleave_rows", {x.node()});
  node->value.Resize(n * times, d);
  for (Index r = 0; r < n; ++r) {
    const Real* src = x.value().row(r);
    for (Index t = 0; t < times; ++t) {
      Real* dst = node->value.row(r * times + t);
      for (Index c = 0; c < d; ++c) dst[c] = src[c];
    }
  }
  if (node->requires_grad) {
    node->backward_fn = [times, d](TensorNode* self) {
      TensorNode* x_node = self->parents[0].get();
      x_node->EnsureGrad();
      for (Index r = 0; r < x_node->grad.rows(); ++r) {
        Real* gx = x_node->grad.row(r);
        for (Index t = 0; t < times; ++t) {
          const Real* g = self->grad.row(r * times + t);
          for (Index c = 0; c < d; ++c) gx[c] += g[c];
        }
      }
    };
  }
  return Tensor(node);
}

Tensor Detach(const Tensor& x) { return Tensor::Constant(x.value()); }

Tensor LogSigmoid(const Tensor& x) {
  return Scale(Softplus(Scale(x, -1.0)), -1.0);
}

}  // namespace ops
}  // namespace firzen
