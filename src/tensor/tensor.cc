#include "src/tensor/tensor.h"

#include <unordered_set>

#include "src/util/check.h"

namespace firzen {

void TensorNode::EnsureGrad() {
  if (grad.rows() != value.rows() || grad.cols() != value.cols()) {
    grad.Resize(value.rows(), value.cols());
  }
}

Tensor Tensor::Constant(Matrix value) {
  auto node = std::make_shared<TensorNode>();
  node->value = std::move(value);
  node->requires_grad = false;
  return Tensor(std::move(node));
}

Tensor Tensor::Variable(Matrix value) {
  auto node = std::make_shared<TensorNode>();
  node->value = std::move(value);
  node->requires_grad = true;
  node->op_name = "variable";
  return Tensor(std::move(node));
}

Real Tensor::scalar() const {
  FIRZEN_CHECK_EQ(rows(), 1);
  FIRZEN_CHECK_EQ(cols(), 1);
  return node_->value(0, 0);
}

void Tensor::ZeroGrad() {
  if (!node_->grad.empty()) node_->grad.Zero();
}

namespace {

// Iterative post-order topological sort over the requires_grad subgraph.
void TopoSort(TensorNode* root, std::vector<TensorNode*>* order) {
  std::unordered_set<TensorNode*> visited;
  struct Frame {
    TensorNode* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      TensorNode* parent = top.node->parents[top.next_parent++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order->push_back(top.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Tensor& loss) {
  FIRZEN_CHECK(loss.defined());
  FIRZEN_CHECK_EQ(loss.rows(), 1);
  FIRZEN_CHECK_EQ(loss.cols(), 1);
  TensorNode* root = loss.node().get();
  if (!root->requires_grad) return;

  std::vector<TensorNode*> order;
  TopoSort(root, &order);

  // Seed gradients. EnsureGrad zeroes only when shape changes, so re-zero
  // interior nodes explicitly (parameters keep accumulating by design).
  for (TensorNode* node : order) {
    if (node != root && node->backward_fn) {
      node->EnsureGrad();
      node->grad.Zero();
    } else {
      node->EnsureGrad();
    }
  }
  root->grad.Fill(1.0);

  // Post-order gives parents before children; walk in reverse so each node's
  // gradient is complete before it is propagated.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorNode* node = *it;
    if (node->backward_fn) node->backward_fn(node);
  }
}

}  // namespace firzen
