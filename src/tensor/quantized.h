// Quantized item-catalog representation and the int8 block-scoring kernel.
//
// QuantizedMatrix holds a per-row symmetric int8 quantization of a frozen
// fp32 table: row r stores q[c] = clamp(lround(x[c] * 127 / max|row|), -127,
// 127) plus one fp32 scale (max|row| / 127), so dequantized scores are
// Real(acc) * a_scale * b_scale with acc an int32 dot product. The catalog
// never changes at serving time, so the scales are computed once at build
// and the resident table shrinks ~4x (int8 payload + one float + one int32
// per row versus 8-byte Reals).
//
// GemmBTQuant is the quantized twin of GemmBT: out(i, j) = dot of int8 row i
// of A with int8 row j of B, dequantized through the shared epilogue. The
// int32 accumulation is EXACT (every int8*int8 product and any embedding-
// width sum of them fits in int32), so — unlike the fp32 path, which pins
// one p-ordered fma chain — results are bit-identical across SIMD tiers,
// thread counts, batch sizes, and block partitionings by construction: any
// order of exact integer adds is the same integer.
//
// Runtime dispatch: a scalar int32-accumulate reference is always built;
// AVX2 and AVX-512/VNNI tiers are compiled behind function-level target
// attributes on x86-64 and selected once per process via cpuid. The
// FIRZEN_SIMD environment variable (scalar|avx2|avx512) caps the tier for
// reproduction runs (tools/run_checks.sh --simd scalar) and bench
// attribution; see docs/quantization.md. All cpuid probing lives in
// quantized.cc — the single dispatch TU enforced by tools/firzen_lint.py's
// stray-cpuid rule.
#ifndef FIRZEN_TENSOR_QUANTIZED_H_
#define FIRZEN_TENSOR_QUANTIZED_H_

#include <cstdint>
#include <vector>

#include "src/tensor/matrix.h"
#include "src/util/common.h"

namespace firzen {

class ThreadPool;

/// Kernel tier for GemmBTQuant, ordered: a higher tier strictly requires the
/// CPU features of the lower ones. The dispatched tier is a presentation
/// detail only — every tier produces bit-identical output (exact int32
/// accumulation) — so switching tiers can never change a served ranking.
enum class SimdTier {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// Stable lowercase name ("scalar", "avx2", "avx512") for logs, bench
/// context blocks, and the FIRZEN_SIMD override.
const char* SimdTierName(SimdTier tier);

/// The tier GemmBTQuant will run: the best CPU-supported tier, capped by
/// FIRZEN_SIMD when set (an unknown FIRZEN_SIMD value aborts with the valid
/// choices; a tier the CPU lacks caps at the best supported one). Resolved
/// once on first call and pinned for the process lifetime, so a serving
/// process can never change tiers mid-stream.
SimdTier DispatchedSimdTier();

/// Per-row symmetric int8 quantization of a dense fp32 table. Rows are
/// padded with zeros to a 64-byte stride multiple so the SIMD kernels need
/// no tail handling (zero products add 0 to an exact integer sum). Build is
/// per-row independent and therefore bit-identical for any pool size.
///
/// Edge cases pinned by tests/quantized_matrix_test.cc: an all-zero row
/// gets scale 0 and all-zero codes (no division by the zero max); values at
/// the symmetric extremes saturate to +/-127; non-finite inputs are rejected
/// at build time with the offending coordinate in the error.
class QuantizedMatrix {
 public:
  QuantizedMatrix() = default;

  /// Quantizes `m` row by row (sharded across `pool`, nullptr = global).
  /// Aborts if any element is NaN or infinite: a frozen catalog with
  /// non-finite embeddings is corrupt, and scale arithmetic on it would
  /// poison every score in the row's block.
  static QuantizedMatrix FromMatrix(const Matrix& m, ThreadPool* pool = nullptr);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  /// Row stride in int8 elements (cols rounded up to a 64 multiple).
  Index stride() const { return stride_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  const int8_t* row(Index r) const { return data_.data() + r * stride_; }
  const int8_t* data() const { return data_.data(); }
  /// Dequantization scale of row r: max|row| / 127 (0 for an all-zero row).
  float scale(Index r) const { return scales_[static_cast<size_t>(r)]; }
  const float* scales() const { return scales_.data(); }
  /// Sum of row r's int8 codes — the AVX-512/VNNI unsigned-offset
  /// compensation term, precomputed at build so the hot loop stays pure
  /// dot products.
  int32_t row_sum(Index r) const { return row_sums_[static_cast<size_t>(r)]; }
  const int32_t* row_sums() const { return row_sums_.data(); }

  /// Resident bytes of the quantized representation (codes + scales +
  /// row sums) — the numerator of the footprint-reduction counter reported
  /// by BM_GemmBTQuant against rows * cols * sizeof(Real).
  size_t byte_size() const {
    return data_.size() * sizeof(int8_t) + scales_.size() * sizeof(float) +
           row_sums_.size() * sizeof(int32_t);
  }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  Index stride_ = 0;
  std::vector<int8_t> data_;
  std::vector<float> scales_;
  std::vector<int32_t> row_sums_;
};

/// Quantizes one row of `cols` Reals into `out` (capacity `stride`,
/// zero-padding [cols, stride)), writing the row's scale. The exact
/// primitive QuantizedMatrix::FromMatrix applies per catalog row; exposed so
/// the scorer quantizes gathered user batches per call with the same
/// rounding (lround: half away from zero, independent of the FP rounding
/// mode) — one definition of the code mapping, used by both sides of the
/// dot product. Aborts on non-finite input.
void QuantizeRow(const Real* src, Index cols, Index stride, int8_t* out,
                 float* scale);

/// out(i, j) = Real(acc(i, j)) * a_scales[i] * b_scales[j], where acc is the
/// exact int32 dot of int8 row i of `a` and row j of `b`. Both strides must
/// be multiples of 64 with the pad bytes zero (QuantizedMatrix /
/// QuantizeRow layout). `b_row_sums[j]` must hold the code sum of b row j
/// (any value works for the scalar and AVX2 tiers, which never read it; the
/// VNNI tier needs the true sums). out must be m x n. Bit-identical for any
/// tier, pool size, or partitioning of rows/columns into calls.
void GemmBTQuant(const int8_t* a, Index m, Index k, Index a_stride,
                 const float* a_scales, const int8_t* b, Index n,
                 Index b_stride, const float* b_scales,
                 const int32_t* b_row_sums, MatrixView out,
                 ThreadPool* pool = nullptr);

/// Convenience overload: scores `a` against the `n` catalog rows starting at
/// `b_begin` of a QuantizedMatrix.
void GemmBTQuant(const int8_t* a, Index m, Index k, Index a_stride,
                 const float* a_scales, const QuantizedMatrix& b,
                 Index b_begin, Index n, MatrixView out,
                 ThreadPool* pool = nullptr);

}  // namespace firzen

#endif  // FIRZEN_TENSOR_QUANTIZED_H_
