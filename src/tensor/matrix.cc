#include "src/tensor/matrix.h"

#include <algorithm>
#include <cmath>

namespace firzen {

Matrix::Matrix(Index rows, Index cols, Real fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows * cols), fill) {
  FIRZEN_CHECK_GE(rows, 0);
  FIRZEN_CHECK_GE(cols, 0);
}

void Matrix::Fill(Real value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Resize(Index rows, Index cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(static_cast<size_t>(rows * cols), 0.0);
}

void Matrix::Add(const Matrix& other) {
  FIRZEN_CHECK_EQ(rows_, other.rows_);
  FIRZEN_CHECK_EQ(cols_, other.cols_);
  const Real* src = other.data();
  Real* dst = data();
  const Index n = size();
  for (Index i = 0; i < n; ++i) dst[i] += src[i];
}

void Matrix::Axpy(Real alpha, const Matrix& other) {
  FIRZEN_CHECK_EQ(rows_, other.rows_);
  FIRZEN_CHECK_EQ(cols_, other.cols_);
  const Real* src = other.data();
  Real* dst = data();
  const Index n = size();
  for (Index i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void Matrix::Scale(Real alpha) {
  for (auto& v : data_) v *= alpha;
}

Real Matrix::Dot(const Matrix& other) const {
  FIRZEN_CHECK_EQ(rows_, other.rows_);
  FIRZEN_CHECK_EQ(cols_, other.cols_);
  Real acc = 0.0;
  const Index n = size();
  for (Index i = 0; i < n; ++i) acc += data_[i] * other.data_[i];
  return acc;
}

Real Matrix::SquaredNorm() const {
  Real acc = 0.0;
  for (Real v : data_) acc += v * v;
  return acc;
}

Real Matrix::RowNorm(Index r) const {
  const Real* p = row(r);
  Real acc = 0.0;
  for (Index c = 0; c < cols_; ++c) acc += p[c] * p[c];
  return std::sqrt(acc);
}

void Matrix::FillNormal(Rng* rng, Real stddev) {
  for (auto& v : data_) v = rng->Normal(0.0, stddev);
}

void Matrix::FillUniform(Rng* rng, Real lo, Real hi) {
  for (auto& v : data_) v = rng->Uniform(lo, hi);
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (Index r = 0; r < rows_; ++r) {
    const Real* src = row(r);
    for (Index c = 0; c < cols_; ++c) t(c, r) = src[c];
  }
  return t;
}

void Gemm(bool trans_a, bool trans_b, Real alpha, const Matrix& a,
          const Matrix& b, Real beta, Matrix* c) {
  const Index m = trans_a ? a.cols() : a.rows();
  const Index k = trans_a ? a.rows() : a.cols();
  const Index kb = trans_b ? b.cols() : b.rows();
  const Index n = trans_b ? b.rows() : b.cols();
  FIRZEN_CHECK_EQ(k, kb);
  if (beta == 0.0) {
    c->Resize(m, n);
  } else {
    FIRZEN_CHECK_EQ(c->rows(), m);
    FIRZEN_CHECK_EQ(c->cols(), n);
    if (beta != 1.0) c->Scale(beta);
  }
  // i-k-j loop order keeps the inner loop streaming over contiguous rows of
  // the (possibly transposed) operands; good enough at embedding widths.
  if (!trans_a && !trans_b) {
    for (Index i = 0; i < m; ++i) {
      const Real* arow = a.row(i);
      Real* crow = c->row(i);
      for (Index p = 0; p < k; ++p) {
        const Real av = alpha * arow[p];
        if (av == 0.0) continue;
        const Real* brow = b.row(p);
        for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (!trans_a && trans_b) {
    for (Index i = 0; i < m; ++i) {
      const Real* arow = a.row(i);
      Real* crow = c->row(i);
      for (Index j = 0; j < n; ++j) {
        const Real* brow = b.row(j);
        Real acc = 0.0;
        for (Index p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] += alpha * acc;
      }
    }
  } else if (trans_a && !trans_b) {
    for (Index p = 0; p < k; ++p) {
      const Real* arow = a.row(p);
      const Real* brow = b.row(p);
      for (Index i = 0; i < m; ++i) {
        const Real av = alpha * arow[i];
        if (av == 0.0) continue;
        Real* crow = c->row(i);
        for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else {
    for (Index i = 0; i < m; ++i) {
      Real* crow = c->row(i);
      for (Index j = 0; j < n; ++j) {
        Real acc = 0.0;
        for (Index p = 0; p < k; ++p) acc += a(p, i) * b(j, p);
        crow[j] += alpha * acc;
      }
    }
  }
}

}  // namespace firzen
