#include "src/tensor/matrix.h"

#include <algorithm>
#include <cmath>

#include "src/util/thread_pool.h"

namespace firzen {

Matrix::Matrix(Index rows, Index cols, Real fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows * cols), fill) {
  FIRZEN_CHECK_GE(rows, 0);
  FIRZEN_CHECK_GE(cols, 0);
}

void Matrix::Fill(Real value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Resize(Index rows, Index cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(static_cast<size_t>(rows * cols), 0.0);
}

void Matrix::ResizeUninitialized(Index rows, Index cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(static_cast<size_t>(rows * cols));
}

void Matrix::Add(const Matrix& other) {
  FIRZEN_CHECK_EQ(rows_, other.rows_);
  FIRZEN_CHECK_EQ(cols_, other.cols_);
  const Real* src = other.data();
  Real* dst = data();
  const Index n = size();
  for (Index i = 0; i < n; ++i) dst[i] += src[i];
}

void Matrix::Axpy(Real alpha, const Matrix& other) {
  FIRZEN_CHECK_EQ(rows_, other.rows_);
  FIRZEN_CHECK_EQ(cols_, other.cols_);
  const Real* src = other.data();
  Real* dst = data();
  const Index n = size();
  for (Index i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void Matrix::Scale(Real alpha) {
  for (auto& v : data_) v *= alpha;
}

Real Matrix::Dot(const Matrix& other) const {
  FIRZEN_CHECK_EQ(rows_, other.rows_);
  FIRZEN_CHECK_EQ(cols_, other.cols_);
  Real acc = 0.0;
  const Index n = size();
  for (Index i = 0; i < n; ++i) acc += data_[i] * other.data_[i];
  return acc;
}

Real Matrix::SquaredNorm() const {
  Real acc = 0.0;
  for (Real v : data_) acc += v * v;
  return acc;
}

Real Matrix::RowNorm(Index r) const {
  const Real* p = row(r);
  Real acc = 0.0;
  for (Index c = 0; c < cols_; ++c) acc += p[c] * p[c];
  return std::sqrt(acc);
}

void Matrix::FillNormal(Rng* rng, Real stddev) {
  for (auto& v : data_) v = rng->Normal(0.0, stddev);
}

void Matrix::FillUniform(Rng* rng, Real lo, Real hi) {
  for (auto& v : data_) v = rng->Uniform(lo, hi);
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (Index r = 0; r < rows_; ++r) {
    const Real* src = row(r);
    for (Index c = 0; c < cols_; ++c) t(c, r) = src[c];
  }
  return t;
}

namespace {

// Register/cache blocking geometry: kMr rows of A are processed together so
// every streamed row of B is reused kMr times (a 4x cut in B memory traffic
// versus the row-at-a-time seed kernel), accumulating into a kMr x kNc
// scratch panel that stays resident in L1 (4 * 512 * 8B = 16KB). The inner
// j-loop is long, branch-free and unit-stride — the shape compilers
// autovectorize best.
constexpr Index kMr = 4;
constexpr Index kNc = 512;

// Exactly-rounded multiply-add, the one accumulation primitive every
// A * B^T kernel builds its per-element p-chain from. On hardware with a
// fused-multiply-add unit std::fma is a single instruction AND a single
// IEEE rounding, so two differently-compiled loops (the small-batch dot
// path's p-reduction vs the panel kernel's j-vectorized update) are
// guaranteed to produce bit-identical chains — which is what makes scores
// independent of the user-batch size. Without hardware FMA, std::fma is a
// slow libm call and plain `acc + a * b` contraction is at the compiler's
// whim per loop shape, so the BT dispatcher below then routes EVERY batch
// size through the one panel kernel instead (slower at small m, but the
// invariance contract survives).
#if defined(__FMA__) || defined(__ARM_FEATURE_FMA)
#define FIRZEN_HAS_HW_FMA 1
inline Real MulAdd(Real a, Real b, Real acc) { return std::fma(a, b, acc); }
#else
inline Real MulAdd(Real a, Real b, Real acc) { return acc + a * b; }
#endif

// scratch[r][0:jw] += A[i+r, p] * B[p, jb:jb+jw] for r < kMr, streaming p.
// Accumulation per output element is a p-ordered MulAdd chain, which keeps
// results bit-identical for any row sharding (and, with hardware FMA, for
// any other kernel accumulating the same chain).
inline void MicroKernel4(Index k, Index jw, const Real* a, Index lda,
                         const Real* b, Index ldb, Real* scratch) {
  Real* s0 = scratch;
  Real* s1 = scratch + kNc;
  Real* s2 = scratch + 2 * kNc;
  Real* s3 = scratch + 3 * kNc;
  for (Index p = 0; p < k; ++p) {
    const Real* brow = b + p * ldb;
    const Real a0 = a[p];
    const Real a1 = a[lda + p];
    const Real a2 = a[2 * lda + p];
    const Real a3 = a[3 * lda + p];
    for (Index j = 0; j < jw; ++j) {
      const Real bv = brow[j];
      s0[j] = MulAdd(a0, bv, s0[j]);
      s1[j] = MulAdd(a1, bv, s1[j]);
      s2[j] = MulAdd(a2, bv, s2[j]);
      s3[j] = MulAdd(a3, bv, s3[j]);
    }
  }
}

// Edge tile with fewer than kMr rows. Same p-ordered MulAdd chain per
// element as the full tile, so edge rows match bit-for-bit.
inline void MicroKernelEdge(Index mr, Index k, Index jw, const Real* a,
                            Index lda, const Real* b, Index ldb,
                            Real* scratch) {
  for (Index p = 0; p < k; ++p) {
    const Real* brow = b + p * ldb;
    for (Index r = 0; r < mr; ++r) {
      const Real av = a[r * lda + p];
      Real* srow = scratch + r * kNc;
      for (Index j = 0; j < jw; ++j) srow[j] = MulAdd(av, brow[j], srow[j]);
    }
  }
}

// One shard of rows [row_begin, row_end) of C = alpha * A * B + beta * C,
// with A (lda = k) and B (ldb = n) row-major and non-transposed.
void GemmRowShard(Index row_begin, Index row_end, Index k, Index n,
                  Real alpha, const Real* a, const Real* b, Real beta,
                  Real* c) {
  Real scratch[kMr * kNc];
  for (Index jb = 0; jb < n; jb += kNc) {
    const Index jw = std::min<Index>(kNc, n - jb);
    for (Index i = row_begin; i < row_end; i += kMr) {
      const Index mr = std::min<Index>(kMr, row_end - i);
      for (Index r = 0; r < mr; ++r) {
        Real* srow = scratch + r * kNc;
        for (Index j = 0; j < jw; ++j) srow[j] = 0.0;
      }
      if (mr == kMr) {
        MicroKernel4(k, jw, a + i * k, k, b + jb, n, scratch);
      } else {
        MicroKernelEdge(mr, k, jw, a + i * k, k, b + jb, n, scratch);
      }
      for (Index r = 0; r < mr; ++r) {
        const Real* srow = scratch + r * kNc;
        Real* crow = c + (i + r) * n + jb;
        if (beta == 0.0) {
          for (Index j = 0; j < jw; ++j) crow[j] = alpha * srow[j];
        } else {
          for (Index j = 0; j < jw; ++j) {
            crow[j] = beta * crow[j] + alpha * srow[j];
          }
        }
      }
    }
  }
}

// One shard of C = alpha * A * B^T + beta * C covering rows
// [row_begin, row_end) and columns [col_begin, col_end), with A row-major
// (lda elements per row) and B given untransposed as row-major rows of
// width k. col_begin must lie on the global kNc panel grid (callers shard
// either whole rows or whole panels), so a given output column is always
// packed at the same offset of an identically-shaped panel no matter how
// the work was split. Instead of materializing all of B^T — an O(k * n)
// transient that rivals the compute at catalog scale — each kNc column
// panel of B^T (k x jw, at most k * kNc elements) is packed into
// shard-local scratch and consumed by the micro-kernel. Pack and compute
// deliberately live in ONE function: splitting them across a call boundary
// costs gcc its loop fusion here (~1.35x measured on the 512x64x8192
// scoring shape).
//
// THE batch-size-invariance kernel: every row tile — including the ragged
// tail, padded below with zero rows — goes through the one MicroKernel4
// call site, so each output cell is the same p-ordered MulAdd chain over
// its own A row and packed B column regardless of m, tile position, or
// shard layout. noinline keeps one machine-code copy of the kernel for
// both dispatch modes below, so even without hardware FMA (where the chain
// is plain contractible `+  *` and therefore compiler-shaped) the two
// modes cannot diverge.
__attribute__((noinline)) void GemmPanelShardBT(
    Index row_begin, Index row_end, Index col_begin, Index col_end, Index k,
    Real alpha, const Real* a, Index lda, const Real* b, Real beta, Real* c,
    Index ldc) {
  Real scratch[kMr * kNc];
  std::vector<Real> panel(static_cast<size_t>(k) * kNc);
  // Pad the ragged row tile (if any) to kMr rows once per shard: zero rows
  // contribute exact zeros to their scratch rows, which are never stored.
  const Index ragged = (row_end - row_begin) % kMr;
  const Index ragged_begin = row_end - ragged;
  std::vector<Real> edge;
  if (ragged != 0) {
    edge.assign(static_cast<size_t>(kMr) * k, 0.0);
    for (Index r = 0; r < ragged; ++r) {
      const Real* src = a + (ragged_begin + r) * lda;
      std::copy(src, src + k, edge.begin() + static_cast<size_t>(r) * k);
    }
  }
  for (Index jb = col_begin; jb < col_end; jb += kNc) {
    const Index jw = std::min<Index>(kNc, col_end - jb);
    for (Index j = 0; j < jw; ++j) {
      const Real* brow = b + (jb + j) * k;
      for (Index p = 0; p < k; ++p) {
        panel[static_cast<size_t>(p * jw + j)] = brow[p];
      }
    }
    const Real* bp = panel.data();
    for (Index i = row_begin; i < row_end; i += kMr) {
      const Index mr = std::min<Index>(kMr, row_end - i);
      for (Index r = 0; r < kMr; ++r) {
        Real* srow = scratch + r * kNc;
        for (Index j = 0; j < jw; ++j) srow[j] = 0.0;
      }
      if (mr == kMr) {
        MicroKernel4(k, jw, a + i * lda, lda, bp, jw, scratch);
      } else {
        MicroKernel4(k, jw, edge.data(), k, bp, jw, scratch);
      }
      for (Index r = 0; r < mr; ++r) {
        const Real* srow = scratch + r * kNc;
        Real* crow = c + (i + r) * ldc + jb;
        if (beta == 0.0) {
          for (Index j = 0; j < jw; ++j) crow[j] = alpha * srow[j];
        } else {
          for (Index j = 0; j < jw; ++j) {
            crow[j] = MulAdd(beta, crow[j], alpha * srow[j]);
          }
        }
      }
    }
  }
}

// Every row shard re-packs the B^T panels it consumes, so shards must be
// tall enough to amortize that: at >= 64 rows per shard the packing is
// <= ~1.6% of the shard's multiply-adds for any shape.
constexpr Index kBTMinShardRows = 64;

#ifdef FIRZEN_HAS_HW_FMA
// Batches up to this many rows skip panel packing entirely and run the
// tiled dot path below; past it the packing amortizes and the panel
// kernel wins. Purely a perf threshold — both sides accumulate the
// identical exactly-rounded chain.
constexpr Index kDotLanesMaxRows = 8;

// One shard of the zero-pack dot path: rows [0, m) x columns
// [col_begin, col_end) of C = alpha * A * B^T + beta * C, with R x C_
// accumulator tiles — R*C_ independent exactly-rounded chains in flight to
// hide fma latency, and each loaded B value reused across R rows. Row
// remainders drop to 1 x C_ tiles, column remainders to single chains;
// every variant computes each cell as the same p-ordered MulAdd chain, so
// the tile shape (like everything else in the BT dispatch) is purely a
// perf choice and cannot move a bit.
template <int R, int C_>
void GemmDotTileShardBT(Index m, Index k, Index col_begin, Index col_end,
                        Real alpha, const Real* a, Index lda, const Real* b,
                        Real beta, Real* c, Index ldc) {
  const auto store = [&](Index i, Index j, Real acc) {
    Real* cell = c + i * ldc + j;
    *cell = beta == 0.0 ? alpha * acc : MulAdd(beta, *cell, alpha * acc);
  };
  Index j = col_begin;
  for (; j + C_ <= col_end; j += C_) {
    const Real* brow[C_];
    for (int t = 0; t < C_; ++t) brow[t] = b + (j + t) * k;
    Index i = 0;
    for (; i + R <= m; i += R) {
      Real acc[R][C_] = {};
      for (Index p = 0; p < k; ++p) {
        Real bv[C_];
        for (int t = 0; t < C_; ++t) bv[t] = brow[t][p];
        for (int r = 0; r < R; ++r) {
          const Real av = a[(i + r) * lda + p];
          for (int t = 0; t < C_; ++t) {
            acc[r][t] = MulAdd(av, bv[t], acc[r][t]);
          }
        }
      }
      for (int r = 0; r < R; ++r) {
        for (int t = 0; t < C_; ++t) store(i + r, j + t, acc[r][t]);
      }
    }
    for (; i < m; ++i) {  // ragged rows: 1 x C_ tiles
      const Real* arow = a + i * lda;
      Real acc[C_] = {};
      for (Index p = 0; p < k; ++p) {
        const Real av = arow[p];
        for (int t = 0; t < C_; ++t) {
          acc[t] = MulAdd(av, brow[t][p], acc[t]);
        }
      }
      for (int t = 0; t < C_; ++t) store(i, j + t, acc[t]);
    }
  }
  for (; j < col_end; ++j) {  // ragged columns: single chains
    const Real* brow = b + j * k;
    for (Index i = 0; i < m; ++i) {
      const Real* arow = a + i * lda;
      Real acc = 0.0;
      for (Index p = 0; p < k; ++p) acc = MulAdd(arow[p], brow[p], acc);
      store(i, j, acc);
    }
  }
}
#endif

// A (m x k, lda elements per row) times the transpose of n row-major rows of
// width k at `b`, written through (ldc-strided) C. Shared by Gemm's trans_b
// path (full matrices) and GemmBT (views over row slices).
//
// BATCH-SIZE INVARIANCE: c(i, j) is bit-identical for any m — a user's
// scores do not depend on how many other users share the batch, which is
// what lets the admission front end fuse concurrent requests with no
// observable effect. Above the cutoff, rows shard over the panel kernel;
// at or below it, either the zero-pack dot path runs the very same
// per-element MulAdd chain (exactly-rounded hardware FMA, so the two
// differently-shaped loops cannot round apart), or — without hardware FMA
// — the panel kernel itself runs column-sharded. Either way the cutoff
// picks a parallelization strategy, never a numerical path.
void GemmDispatchBT(Index m, Index k, Index n, Real alpha, const Real* a,
                    Index lda, const Real* b, Real beta, Real* c, Index ldc,
                    ThreadPool* pool) {
  if (pool == nullptr) pool = ThreadPool::Global();
  if (m <= kGemmBTColumnShardMaxRows) {
#ifdef FIRZEN_HAS_HW_FMA
    if (m <= kDotLanesMaxRows) {
      // Tiny batches (single-user requests): zero-pack dot products with j
      // outer stream B exactly once while the whole A panel stays
      // cache-resident. Columns shard across the pool; the accumulator
      // tile adapts to the batch (wide for one row, square once there are
      // rows to reuse B values across) without moving a bit — every cell
      // is the one p-ordered MulAdd chain.
      const Index min_cols =
          std::max<Index>(1, 65536 / std::max<Index>(1, m * k));
      ParallelFor(
          pool, n,
          [&](Index col_begin, Index col_end) {
            if (m >= 4) {
              GemmDotTileShardBT<4, 4>(m, k, col_begin, col_end, alpha, a,
                                       lda, b, beta, c, ldc);
            } else {
              GemmDotTileShardBT<1, 8>(m, k, col_begin, col_end, alpha, a,
                                       lda, b, beta, c, ldc);
            }
          },
          min_cols);
      return;
    }
#endif
    // Mid-size batches (and, without hardware FMA, every small batch —
    // two differently-shaped loops cannot be pinned to one rounding
    // there): run the one panel kernel, sharding whole kNc column panels
    // across the pool since there are too few rows to shard. Panel
    // boundaries stay on the global grid, which keeps the packed panel
    // shapes — and therefore per-cell rounding — identical to the
    // row-sharded mode.
    const Index num_panels = (n + kNc - 1) / kNc;
    const Index min_panels = std::max<Index>(
        1, 65536 / std::max<Index>(1, m * k * kNc));
    ParallelFor(
        pool, num_panels,
        [&](Index panel_begin, Index panel_end) {
          GemmPanelShardBT(0, m, panel_begin * kNc,
                           std::min(panel_end * kNc, n), k, alpha, a, lda, b,
                           beta, c, ldc);
        },
        min_panels);
    return;
  }
  // Larger batches: row shards, each streaming every panel. The row floor
  // keeps the per-shard panel packing amortized (see kBTMinShardRows);
  // peak scratch is one k x kNc panel per worker instead of the O(k * n)
  // full transpose.
  ParallelFor(
      pool, m,
      [&](Index begin, Index end) {
        GemmPanelShardBT(begin, end, 0, n, k, alpha, a, lda, b, beta, c, ldc);
      },
      kBTMinShardRows);
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, Real alpha, const Matrix& a,
          const Matrix& b, Real beta, Matrix* c, ThreadPool* pool) {
  const Index m = trans_a ? a.cols() : a.rows();
  const Index k = trans_a ? a.rows() : a.cols();
  const Index kb = trans_b ? b.cols() : b.rows();
  const Index n = trans_b ? b.rows() : b.cols();
  FIRZEN_CHECK_EQ(k, kb);
  if (beta == 0.0) {
    // Every element is overwritten by the store loop below, so skip the
    // zero-fill Resize() would perform.
    c->ResizeUninitialized(m, n);
  } else {
    FIRZEN_CHECK_EQ(c->rows(), m);
    FIRZEN_CHECK_EQ(c->cols(), n);
  }
  if (m == 0 || n == 0) return;

  // A * B^T never materializes B^T: GemmDispatchBT packs bounded
  // kNc-column panels of B^T inside the one batch-size-invariant kernel
  // (column-sharded at small m, row-sharded otherwise). Only A is packed
  // when transposed (rare; turns strided loads into streaming ones at an
  // O(m*k) cost against the kernel's O(mnk)).
  if (trans_b) {
    const Matrix* ap = &a;
    Matrix a_packed;
    if (trans_a) {
      a_packed = a.Transposed();
      ap = &a_packed;
    }
    GemmDispatchBT(m, k, n, alpha, ap->data(), /*lda=*/k, b.data(), beta,
                   c->data(), /*ldc=*/n, pool);
    return;
  }

  // The blocked kernel wants both operands row-major and untransposed.
  const Matrix* ap = &a;
  const Matrix* bp = &b;
  Matrix a_packed;
  if (trans_a) {
    a_packed = a.Transposed();
    ap = &a_packed;
  }

  if (pool == nullptr) pool = ThreadPool::Global();
  // Aim for shards of at least ~64K multiply-adds so tiny products stay
  // inline and large ones split evenly across workers.
  const Index flops_per_row = std::max<Index>(1, k * n);
  const Index min_rows = std::max<Index>(1, 65536 / flops_per_row);
  const Real* a_data = ap->data();
  const Real* b_data = bp->data();
  Real* c_data = c->data();
  ParallelFor(
      pool, m,
      [&](Index begin, Index end) {
        GemmRowShard(begin, end, k, n, alpha, a_data, b_data, beta, c_data);
      },
      min_rows);
}

void GemmBT(const Matrix& a, const Real* b_rows, Index n, MatrixView out,
            ThreadPool* pool) {
  FIRZEN_CHECK_GE(n, 0);
  FIRZEN_CHECK_EQ(out.rows(), a.rows());
  FIRZEN_CHECK_EQ(out.cols(), n);
  if (a.rows() == 0 || n == 0) return;
  GemmDispatchBT(a.rows(), a.cols(), n, /*alpha=*/1.0, a.data(),
                 /*lda=*/a.cols(), b_rows, /*beta=*/0.0, out.data(),
                 out.stride(), pool);
}

}  // namespace firzen
