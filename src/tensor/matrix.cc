#include "src/tensor/matrix.h"

#include <algorithm>
#include <cmath>

#include "src/util/thread_pool.h"

namespace firzen {

Matrix::Matrix(Index rows, Index cols, Real fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows * cols), fill) {
  FIRZEN_CHECK_GE(rows, 0);
  FIRZEN_CHECK_GE(cols, 0);
}

void Matrix::Fill(Real value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Resize(Index rows, Index cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(static_cast<size_t>(rows * cols), 0.0);
}

void Matrix::ResizeUninitialized(Index rows, Index cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(static_cast<size_t>(rows * cols));
}

void Matrix::Add(const Matrix& other) {
  FIRZEN_CHECK_EQ(rows_, other.rows_);
  FIRZEN_CHECK_EQ(cols_, other.cols_);
  const Real* src = other.data();
  Real* dst = data();
  const Index n = size();
  for (Index i = 0; i < n; ++i) dst[i] += src[i];
}

void Matrix::Axpy(Real alpha, const Matrix& other) {
  FIRZEN_CHECK_EQ(rows_, other.rows_);
  FIRZEN_CHECK_EQ(cols_, other.cols_);
  const Real* src = other.data();
  Real* dst = data();
  const Index n = size();
  for (Index i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void Matrix::Scale(Real alpha) {
  for (auto& v : data_) v *= alpha;
}

Real Matrix::Dot(const Matrix& other) const {
  FIRZEN_CHECK_EQ(rows_, other.rows_);
  FIRZEN_CHECK_EQ(cols_, other.cols_);
  Real acc = 0.0;
  const Index n = size();
  for (Index i = 0; i < n; ++i) acc += data_[i] * other.data_[i];
  return acc;
}

Real Matrix::SquaredNorm() const {
  Real acc = 0.0;
  for (Real v : data_) acc += v * v;
  return acc;
}

Real Matrix::RowNorm(Index r) const {
  const Real* p = row(r);
  Real acc = 0.0;
  for (Index c = 0; c < cols_; ++c) acc += p[c] * p[c];
  return std::sqrt(acc);
}

void Matrix::FillNormal(Rng* rng, Real stddev) {
  for (auto& v : data_) v = rng->Normal(0.0, stddev);
}

void Matrix::FillUniform(Rng* rng, Real lo, Real hi) {
  for (auto& v : data_) v = rng->Uniform(lo, hi);
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (Index r = 0; r < rows_; ++r) {
    const Real* src = row(r);
    for (Index c = 0; c < cols_; ++c) t(c, r) = src[c];
  }
  return t;
}

namespace {

// Register/cache blocking geometry: kMr rows of A are processed together so
// every streamed row of B is reused kMr times (a 4x cut in B memory traffic
// versus the row-at-a-time seed kernel), accumulating into a kMr x kNc
// scratch panel that stays resident in L1 (4 * 512 * 8B = 16KB). The inner
// j-loop is long, branch-free and unit-stride — the shape compilers
// autovectorize best.
constexpr Index kMr = 4;
constexpr Index kNc = 512;

// scratch[r][0:jw] += A[i+r, p] * B[p, jb:jb+jw] for r < kMr, streaming p.
// Accumulation per output element stays in p order, which keeps results
// bit-identical for any row sharding.
inline void MicroKernel4(Index k, Index jw, const Real* a, Index lda,
                         const Real* b, Index ldb, Real* scratch) {
  Real* s0 = scratch;
  Real* s1 = scratch + kNc;
  Real* s2 = scratch + 2 * kNc;
  Real* s3 = scratch + 3 * kNc;
  for (Index p = 0; p < k; ++p) {
    const Real* brow = b + p * ldb;
    const Real a0 = a[p];
    const Real a1 = a[lda + p];
    const Real a2 = a[2 * lda + p];
    const Real a3 = a[3 * lda + p];
    for (Index j = 0; j < jw; ++j) {
      const Real bv = brow[j];
      s0[j] += a0 * bv;
      s1[j] += a1 * bv;
      s2[j] += a2 * bv;
      s3[j] += a3 * bv;
    }
  }
}

// Edge tile with fewer than kMr rows. Same p-ordered accumulation per
// element as the full tile, so edge rows match bit-for-bit.
inline void MicroKernelEdge(Index mr, Index k, Index jw, const Real* a,
                            Index lda, const Real* b, Index ldb,
                            Real* scratch) {
  for (Index p = 0; p < k; ++p) {
    const Real* brow = b + p * ldb;
    for (Index r = 0; r < mr; ++r) {
      const Real av = a[r * lda + p];
      Real* srow = scratch + r * kNc;
      for (Index j = 0; j < jw; ++j) srow[j] += av * brow[j];
    }
  }
}

// One shard of rows [row_begin, row_end) of C = alpha * A * B + beta * C,
// with A (lda = k) and B (ldb = n) row-major and non-transposed.
void GemmRowShard(Index row_begin, Index row_end, Index k, Index n,
                  Real alpha, const Real* a, const Real* b, Real beta,
                  Real* c) {
  Real scratch[kMr * kNc];
  for (Index jb = 0; jb < n; jb += kNc) {
    const Index jw = std::min<Index>(kNc, n - jb);
    for (Index i = row_begin; i < row_end; i += kMr) {
      const Index mr = std::min<Index>(kMr, row_end - i);
      for (Index r = 0; r < mr; ++r) {
        Real* srow = scratch + r * kNc;
        for (Index j = 0; j < jw; ++j) srow[j] = 0.0;
      }
      if (mr == kMr) {
        MicroKernel4(k, jw, a + i * k, k, b + jb, n, scratch);
      } else {
        MicroKernelEdge(mr, k, jw, a + i * k, k, b + jb, n, scratch);
      }
      for (Index r = 0; r < mr; ++r) {
        const Real* srow = scratch + r * kNc;
        Real* crow = c + (i + r) * n + jb;
        if (beta == 0.0) {
          for (Index j = 0; j < jw; ++j) crow[j] = alpha * srow[j];
        } else {
          for (Index j = 0; j < jw; ++j) {
            crow[j] = beta * crow[j] + alpha * srow[j];
          }
        }
      }
    }
  }
}

// One shard of rows [row_begin, row_end) of C = alpha * A * B^T + beta * C,
// with A row-major (lda elements per row) and B given untransposed as n
// row-major rows of width k. Instead of materializing all of B^T — an
// O(k * n) transient that rivals the compute at catalog scale — each kNc
// column panel of B^T (k x jw, at most k * kNc elements) is packed into
// shard-local scratch and consumed by the same micro-kernels as the
// untransposed path. Pack and compute deliberately live in ONE function:
// splitting them across a call boundary costs gcc its loop fusion here
// (~1.35x measured on the 512x64x8192 scoring shape). Redundant packing
// across shards is bounded by the kBTMinShardRows floor in the dispatcher.
// Accumulation stays p-ordered per output element, so results are
// bit-identical to the materialize-then-multiply approach.
void GemmRowShardBT(Index row_begin, Index row_end, Index k, Index n,
                    Real alpha, const Real* a, Index lda, const Real* b,
                    Real beta, Real* c, Index ldc) {
  Real scratch[kMr * kNc];
  std::vector<Real> panel(static_cast<size_t>(k) * kNc);
  for (Index jb = 0; jb < n; jb += kNc) {
    const Index jw = std::min<Index>(kNc, n - jb);
    for (Index j = 0; j < jw; ++j) {
      const Real* brow = b + (jb + j) * k;
      for (Index p = 0; p < k; ++p) {
        panel[static_cast<size_t>(p * jw + j)] = brow[p];
      }
    }
    const Real* bp = panel.data();
    for (Index i = row_begin; i < row_end; i += kMr) {
      const Index mr = std::min<Index>(kMr, row_end - i);
      for (Index r = 0; r < mr; ++r) {
        Real* srow = scratch + r * kNc;
        for (Index j = 0; j < jw; ++j) srow[j] = 0.0;
      }
      if (mr == kMr) {
        MicroKernel4(k, jw, a + i * lda, lda, bp, jw, scratch);
      } else {
        MicroKernelEdge(mr, k, jw, a + i * lda, lda, bp, jw, scratch);
      }
      for (Index r = 0; r < mr; ++r) {
        const Real* srow = scratch + r * kNc;
        Real* crow = c + (i + r) * ldc + jb;
        if (beta == 0.0) {
          for (Index j = 0; j < jw; ++j) crow[j] = alpha * srow[j];
        } else {
          for (Index j = 0; j < jw; ++j) {
            crow[j] = beta * crow[j] + alpha * srow[j];
          }
        }
      }
    }
  }
}

// Every shard re-packs the B^T panels it consumes, so shards must be tall
// enough to amortize that: at >= 64 rows per shard the packing is <= ~1.6%
// of the shard's multiply-adds for any shape.
constexpr Index kBTMinShardRows = 64;

// Batch sizes up to this take the zero-copy dot-product path for A * B^T;
// larger batches go through the panel-packed blocked kernel.
constexpr Index kDotPathMaxRows = 32;

// A (m x k, lda elements per row) times the transpose of n row-major rows of
// width k at `b`, written through (ldc-strided) C. Shared by Gemm's trans_b
// path (full matrices) and GemmBT (views over row slices).
void GemmDispatchBT(Index m, Index k, Index n, Real alpha, const Real* a,
                    Index lda, const Real* b, Real beta, Real* c, Index ldc,
                    ThreadPool* pool) {
  if (pool == nullptr) pool = ThreadPool::Global();
  if (m <= kDotPathMaxRows) {
    // Small-m fast path (single-user / small-batch scoring): dot products
    // with j outer stream B exactly once while the whole A panel stays
    // cache-resident. Columns shard across the pool; each dot is a p-ordered
    // sum, so results stay bit-identical for any pool size.
    const Index min_cols =
        std::max<Index>(1, 65536 / std::max<Index>(1, m * k));
    ParallelFor(
        pool, n,
        [&](Index col_begin, Index col_end) {
          for (Index j = col_begin; j < col_end; ++j) {
            const Real* brow = b + j * k;
            for (Index i = 0; i < m; ++i) {
              const Real* arow = a + i * lda;
              Real acc = 0.0;
              for (Index p = 0; p < k; ++p) acc += arow[p] * brow[p];
              Real* cell = c + i * ldc + j;
              *cell = beta == 0.0 ? alpha * acc : beta * *cell + alpha * acc;
            }
          }
        },
        min_cols);
    return;
  }
  // Larger batches: row shards run the fused pack-and-multiply kernel. The
  // row floor keeps the per-shard panel packing amortized (see
  // kBTMinShardRows); peak scratch is one k x kNc panel per worker instead
  // of the O(k * n) full transpose.
  ParallelFor(
      pool, m,
      [&](Index begin, Index end) {
        GemmRowShardBT(begin, end, k, n, alpha, a, lda, b, beta, c, ldc);
      },
      kBTMinShardRows);
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, Real alpha, const Matrix& a,
          const Matrix& b, Real beta, Matrix* c, ThreadPool* pool) {
  const Index m = trans_a ? a.cols() : a.rows();
  const Index k = trans_a ? a.rows() : a.cols();
  const Index kb = trans_b ? b.cols() : b.rows();
  const Index n = trans_b ? b.rows() : b.cols();
  FIRZEN_CHECK_EQ(k, kb);
  if (beta == 0.0) {
    // Every element is overwritten by the store loop below, so skip the
    // zero-fill Resize() would perform.
    c->ResizeUninitialized(m, n);
  } else {
    FIRZEN_CHECK_EQ(c->rows(), m);
    FIRZEN_CHECK_EQ(c->cols(), n);
  }
  if (m == 0 || n == 0) return;

  // A * B^T never materializes B^T: GemmDispatchBT takes the zero-copy dot
  // path for small m and packs bounded kNc-column panels of B^T otherwise.
  // Only A is packed when transposed (rare; turns strided loads into
  // streaming ones at an O(m*k) cost against the kernel's O(mnk)).
  if (trans_b) {
    const Matrix* ap = &a;
    Matrix a_packed;
    if (trans_a) {
      a_packed = a.Transposed();
      ap = &a_packed;
    }
    GemmDispatchBT(m, k, n, alpha, ap->data(), /*lda=*/k, b.data(), beta,
                   c->data(), /*ldc=*/n, pool);
    return;
  }

  // The blocked kernel wants both operands row-major and untransposed.
  const Matrix* ap = &a;
  const Matrix* bp = &b;
  Matrix a_packed;
  if (trans_a) {
    a_packed = a.Transposed();
    ap = &a_packed;
  }

  if (pool == nullptr) pool = ThreadPool::Global();
  // Aim for shards of at least ~64K multiply-adds so tiny products stay
  // inline and large ones split evenly across workers.
  const Index flops_per_row = std::max<Index>(1, k * n);
  const Index min_rows = std::max<Index>(1, 65536 / flops_per_row);
  const Real* a_data = ap->data();
  const Real* b_data = bp->data();
  Real* c_data = c->data();
  ParallelFor(
      pool, m,
      [&](Index begin, Index end) {
        GemmRowShard(begin, end, k, n, alpha, a_data, b_data, beta, c_data);
      },
      min_rows);
}

void GemmBT(const Matrix& a, const Real* b_rows, Index n, MatrixView out,
            ThreadPool* pool) {
  FIRZEN_CHECK_GE(n, 0);
  FIRZEN_CHECK_EQ(out.rows(), a.rows());
  FIRZEN_CHECK_EQ(out.cols(), n);
  if (a.rows() == 0 || n == 0) return;
  GemmDispatchBT(a.rows(), a.cols(), n, /*alpha=*/1.0, a.data(),
                 /*lda=*/a.cols(), b_rows, /*beta=*/0.0, out.data(),
                 out.stride(), pool);
}

}  // namespace firzen
