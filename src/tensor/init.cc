#include "src/tensor/init.h"

#include <cmath>

namespace firzen {

Matrix XavierUniform(Index rows, Index cols, Rng* rng) {
  Matrix m(rows, cols);
  const Real a = std::sqrt(6.0 / static_cast<Real>(rows + cols));
  m.FillUniform(rng, -a, a);
  return m;
}

Matrix XavierNormal(Index rows, Index cols, Rng* rng) {
  Matrix m(rows, cols);
  const Real stddev = std::sqrt(2.0 / static_cast<Real>(rows + cols));
  m.FillNormal(rng, stddev);
  return m;
}

Tensor ZerosVariable(Index rows, Index cols) {
  return Tensor::Variable(Matrix(rows, cols));
}

Tensor XavierVariable(Index rows, Index cols, Rng* rng) {
  return Tensor::Variable(XavierUniform(rows, cols, rng));
}

}  // namespace firzen
