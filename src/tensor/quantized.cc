// Int8 catalog quantization and the GemmBTQuant kernel family.
//
// THE SINGLE DISPATCH TU: every cpuid probe (__builtin_cpu_supports) in the
// tree lives here, behind DispatchedSimdTier(). Kernels are compiled with
// function-level target attributes so this file builds at the baseline
// -march; tools/firzen_lint.py's stray-cpuid rule keeps feature detection
// from leaking into other TUs, where a second, differently-capped probe
// could silently split one process across tiers.
//
// Determinism: int8*int8 products are <= 127 * 127 = 16129 and any
// embedding-width sum of them is far below INT32_MAX, so the int32
// accumulator is EXACT — integer addition is associative, and every tier,
// sharding, and batch shape yields the same acc bit for bit. The only
// floating-point arithmetic is the shared Dequant epilogue, written once
// with a fixed association, so quantized scores carry the same
// bit-identical-across-everything contract the fp32 path earns with
// p-ordered fma chains (src/tensor/matrix.cc).
#include "src/tensor/quantized.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/util/check.h"
#include "src/util/env.h"
#include "src/util/thread_pool.h"

#if defined(__x86_64__) || defined(__i386__)
#define FIRZEN_QUANT_X86 1
#include <immintrin.h>
#endif

namespace firzen {

namespace {

// Rows are padded to this int8 stride multiple with zeros, so every SIMD
// tier streams full vectors with no tail loop: padding products are 0 and
// add nothing to an exact integer sum.
constexpr Index kQuantPad = 64;

Index RoundUpPad(Index k) {
  return (k + kQuantPad - 1) / kQuantPad * kQuantPad;
}

// THE dequantization epilogue — the one place float arithmetic touches a
// quantized score. Fixed left-to-right association; every kernel tier funnels
// its exact int32 accumulator through here, so tiers cannot round apart.
inline Real Dequant(int32_t acc, float a_scale, float b_scale) {
  return static_cast<Real>(acc) * static_cast<Real>(a_scale) *
         static_cast<Real>(b_scale);
}

// Argument pack for the per-tier column kernels: A is m x k int8 rows
// (stride a_stride), B is the catalog slice being scored (stride b_stride),
// both zero-padded to kQuantPad multiples.
struct QuantGemmArgs {
  const int8_t* a;
  Index m;
  Index k;
  Index a_stride;
  const float* a_scales;
  const int8_t* b;
  Index b_stride;
  const float* b_scales;
  const int32_t* b_row_sums;
  MatrixView out;
};

// ---------------------------------------------------------------------------
// Scalar reference tier: plain int32-accumulate loops. Always built, always
// selectable (FIRZEN_SIMD=scalar) — the sanitizer passes in
// tools/run_checks.sh force this tier so UBSan sees the narrowing arithmetic
// without vector intrinsics in the way.
// ---------------------------------------------------------------------------

void QuantColumnsScalar(const QuantGemmArgs& g, Index j_begin, Index j_end) {
  for (Index i = 0; i < g.m; ++i) {
    const int8_t* a_row = g.a + i * g.a_stride;
    const float a_scale = g.a_scales[i];
    Real* dst = g.out.row(i);
    for (Index j = j_begin; j < j_end; ++j) {
      const int8_t* b_row = g.b + j * g.b_stride;
      int32_t acc = 0;
      for (Index p = 0; p < g.k; ++p) {
        acc += static_cast<int32_t>(a_row[p]) * static_cast<int32_t>(b_row[p]);
      }
      dst[j] = Dequant(acc, a_scale, g.b_scales[j]);
    }
  }
}

#ifdef FIRZEN_QUANT_X86

// ---------------------------------------------------------------------------
// AVX2 tier: sign-extend int8 halves to i16 and _mm256_madd_epi16 into i32
// lanes. madd pairs are exact here (|product| <= 16129, pair sum <= 32258
// fits i16-pair i32 output), so the vector accumulator holds the same
// integers the scalar loop computes. Note maddubs (u8 x s8 -> saturating
// i16) is deliberately NOT used: its intermediate can saturate and silently
// corrupt scores.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) int32_t DotI8Avx2(const int8_t* a,
                                                  const int8_t* b, Index kp) {
  __m256i acc = _mm256_setzero_si256();
  for (Index p = 0; p < kp; p += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + p));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + p));
    const __m256i a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
    const __m256i a_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1));
    const __m256i b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
    const __m256i b_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
  }
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

__attribute__((target("avx2"))) void QuantColumnsAvx2(const QuantGemmArgs& g,
                                                      Index j_begin,
                                                      Index j_end) {
  const Index kp = RoundUpPad(g.k);
  for (Index i = 0; i < g.m; ++i) {
    const int8_t* a_row = g.a + i * g.a_stride;
    const float a_scale = g.a_scales[i];
    Real* dst = g.out.row(i);
    for (Index j = j_begin; j < j_end; ++j) {
      const int32_t acc = DotI8Avx2(a_row, g.b + j * g.b_stride, kp);
      dst[j] = Dequant(acc, a_scale, g.b_scales[j]);
    }
  }
}

// ---------------------------------------------------------------------------
// AVX-512/VNNI tier: _mm512_dpbusd_epi32 multiplies u8 x s8, so the signed A
// codes are biased to unsigned by XOR 0x80 (== +128 on a two's-complement
// byte) and the bias is removed after the loop with the precomputed B row
// sum: sum((a + 128) * b) = dot(a, b) + 128 * sum(b). Padding bytes bias to
// 128 but multiply B's zero padding, adding nothing. dpbusd accumulates
// wrapping i32 (not the saturating dpbusds), and lane totals stay far below
// INT32_MAX for any realistic embedding width, so this tier is exact too.
// ---------------------------------------------------------------------------

__attribute__((target("avx512f,avx512bw,avx512vnni"))) int32_t DotI8Avx512(
    const int8_t* a, const int8_t* b, Index kp, int32_t b_sum) {
  const __m512i bias = _mm512_set1_epi8(static_cast<char>(0x80));
  __m512i acc = _mm512_setzero_si512();
  for (Index p = 0; p < kp; p += 64) {
    const __m512i va = _mm512_loadu_si512(a + p);
    const __m512i vb = _mm512_loadu_si512(b + p);
    acc = _mm512_dpbusd_epi32(acc, _mm512_xor_si512(va, bias), vb);
  }
  // Lane reduction through a spilled array instead of
  // _mm512_reduce_add_epi32: gcc 12's inline expansions of the 512-bit
  // extract/shuffle/cast intrinsics all route through
  // _mm512_undefined_epi32 and trip -Wmaybe-uninitialized under -O2, which
  // the WErrors static pass rejects. Integer adds in any order — same bits
  // — and the optimizer folds this back into vector shuffles anyway.
  alignas(64) int32_t lanes[16];
  _mm512_storeu_si512(lanes, acc);
  int32_t total = 0;
  for (int l = 0; l < 16; ++l) total += lanes[l];
  return total - 128 * b_sum;
}

// Packs 16 catalog rows (columns of the output) into dpbusd feed order:
// 64-byte groups holding 4 consecutive k-values from each of the 16 rows,
// so one dpbusd against a broadcast 4-byte chunk of A advances all 16
// output columns at once — no per-cell horizontal reduction anywhere.
__attribute__((target("avx512f,avx512bw,avx512vnni"))) void PackB16Avx512(
    const int8_t* b, Index b_stride, Index j0, Index kp, int8_t* packed) {
  for (Index p = 0; p < kp; p += 4) {
    int8_t* dst = packed + p * 16;
    for (Index c = 0; c < 16; ++c) {
      std::memcpy(dst + c * 4, b + (j0 + c) * b_stride + p, 4);
    }
  }
}

// The 16-column VNNI panel: A's 4-byte chunk is biased unsigned (XOR
// 0x80808080 == +128 per byte) and broadcast; each dpbusd then adds 4
// k-values into all 16 column lanes. The +128 bias is removed vectorially
// with the precomputed B row sums before the epilogue. The column blocks
// [j0, j0+16) x 4 are unrolled in the caller so four accumulators share one
// A broadcast — that amortization is where the throughput comes from.
__attribute__((target("avx512f,avx512bw,avx512vnni"))) void Panel16Avx512(
    const QuantGemmArgs& g, const int8_t* packed, Index j0, Index kp) {
  const __m512i comp = _mm512_mullo_epi32(
      _mm512_loadu_si512(g.b_row_sums + j0), _mm512_set1_epi32(128));
  for (Index i = 0; i < g.m; ++i) {
    const int8_t* a_row = g.a + i * g.a_stride;
    __m512i acc = _mm512_setzero_si512();
    for (Index p = 0; p < kp; p += 4) {
      uint32_t av;
      std::memcpy(&av, a_row + p, 4);
      const __m512i a_b =
          _mm512_set1_epi32(static_cast<int32_t>(av ^ 0x80808080u));
      acc = _mm512_dpbusd_epi32(
          acc, a_b, _mm512_loadu_si512(packed + p * 16));
    }
    acc = _mm512_sub_epi32(acc, comp);
    alignas(64) int32_t lanes[16];
    _mm512_store_si512(lanes, acc);
    Real* dst = g.out.row(i);
    const float a_scale = g.a_scales[i];
    for (int c = 0; c < 16; ++c) {
      dst[j0 + c] = Dequant(lanes[c], a_scale, g.b_scales[j0 + c]);
    }
  }
}

// Four 16-column panels fused: one A broadcast feeds four dpbusd, so the
// per-chunk overhead (load + xor + vpbroadcastd) is paid once per 256 MACs
// instead of once per 64.
__attribute__((target("avx512f,avx512bw,avx512vnni"))) void Panel64Avx512(
    const QuantGemmArgs& g, const int8_t* packed, Index j0, Index kp) {
  const __m512i k128 = _mm512_set1_epi32(128);
  const __m512i comp0 =
      _mm512_mullo_epi32(_mm512_loadu_si512(g.b_row_sums + j0), k128);
  const __m512i comp1 =
      _mm512_mullo_epi32(_mm512_loadu_si512(g.b_row_sums + j0 + 16), k128);
  const __m512i comp2 =
      _mm512_mullo_epi32(_mm512_loadu_si512(g.b_row_sums + j0 + 32), k128);
  const __m512i comp3 =
      _mm512_mullo_epi32(_mm512_loadu_si512(g.b_row_sums + j0 + 48), k128);
  const size_t panel_bytes = static_cast<size_t>(kp) * 16;
  for (Index i = 0; i < g.m; ++i) {
    const int8_t* a_row = g.a + i * g.a_stride;
    __m512i acc0 = _mm512_setzero_si512();
    __m512i acc1 = _mm512_setzero_si512();
    __m512i acc2 = _mm512_setzero_si512();
    __m512i acc3 = _mm512_setzero_si512();
    for (Index p = 0; p < kp; p += 4) {
      uint32_t av;
      std::memcpy(&av, a_row + p, 4);
      const __m512i a_b =
          _mm512_set1_epi32(static_cast<int32_t>(av ^ 0x80808080u));
      const int8_t* base = packed + p * 16;
      acc0 = _mm512_dpbusd_epi32(acc0, a_b, _mm512_loadu_si512(base));
      acc1 = _mm512_dpbusd_epi32(acc1, a_b,
                                 _mm512_loadu_si512(base + panel_bytes));
      acc2 = _mm512_dpbusd_epi32(acc2, a_b,
                                 _mm512_loadu_si512(base + 2 * panel_bytes));
      acc3 = _mm512_dpbusd_epi32(acc3, a_b,
                                 _mm512_loadu_si512(base + 3 * panel_bytes));
    }
    alignas(64) int32_t lanes[64];
    _mm512_store_si512(lanes, _mm512_sub_epi32(acc0, comp0));
    _mm512_store_si512(lanes + 16, _mm512_sub_epi32(acc1, comp1));
    _mm512_store_si512(lanes + 32, _mm512_sub_epi32(acc2, comp2));
    _mm512_store_si512(lanes + 48, _mm512_sub_epi32(acc3, comp3));
    Real* dst = g.out.row(i);
    const float a_scale = g.a_scales[i];
    for (int c = 0; c < 64; ++c) {
      dst[j0 + c] = Dequant(lanes[c], a_scale, g.b_scales[j0 + c]);
    }
  }
}

__attribute__((target("avx512f,avx512bw,avx512vnni"))) void QuantColumnsAvx512(
    const QuantGemmArgs& g, Index j_begin, Index j_end) {
  const Index kp = RoundUpPad(g.k);
  // Pack buffer for up to four 16-column panels, laid out panel-major so
  // Panel64 can stride between them. Integer sums are order-independent, so
  // the blocking below is purely a throughput choice — the bits match the
  // scalar reference exactly.
  std::vector<int8_t> packed(static_cast<size_t>(4 * 16 * kp));
  Index j = j_begin;
  for (; j + 64 <= j_end; j += 64) {
    const size_t panel_bytes = static_cast<size_t>(kp) * 16;
    for (Index blk = 0; blk < 4; ++blk) {
      PackB16Avx512(g.b, g.b_stride, j + blk * 16, kp,
                    packed.data() + static_cast<size_t>(blk) * panel_bytes);
    }
    Panel64Avx512(g, packed.data(), j, kp);
  }
  for (; j + 16 <= j_end; j += 16) {
    PackB16Avx512(g.b, g.b_stride, j, kp, packed.data());
    Panel16Avx512(g, packed.data(), j, kp);
  }
  // Ragged tail (< 16 columns): the per-column dot kernel.
  for (Index i = 0; i < g.m; ++i) {
    const int8_t* a_row = g.a + i * g.a_stride;
    const float a_scale = g.a_scales[i];
    Real* dst = g.out.row(i);
    for (Index jj = j; jj < j_end; ++jj) {
      const int32_t acc = DotI8Avx512(a_row, g.b + jj * g.b_stride, kp,
                                      g.b_row_sums[jj]);
      dst[jj] = Dequant(acc, a_scale, g.b_scales[jj]);
    }
  }
}

#endif  // FIRZEN_QUANT_X86

// ---------------------------------------------------------------------------
// Dispatch. Probed once, pinned for the process: a serving process must not
// change tiers between responses even though tiers agree bit for bit — the
// pinned tier is what the bench context and logs attribute numbers to.
// ---------------------------------------------------------------------------

SimdTier BestCpuTier() {
#ifdef FIRZEN_QUANT_X86
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vnni")) {
    return SimdTier::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
#endif
  return SimdTier::kScalar;
}

SimdTier ResolveTier() {
  SimdTier tier = BestCpuTier();
  const std::string env = GetEnvString("FIRZEN_SIMD", "");
  if (!env.empty()) {
    SimdTier cap = SimdTier::kScalar;
    if (env == "scalar") {
      cap = SimdTier::kScalar;
    } else if (env == "avx2") {
      cap = SimdTier::kAvx2;
    } else if (env == "avx512") {
      cap = SimdTier::kAvx512;
    } else {
      std::fprintf(stderr,
                   "FIRZEN_SIMD='%s' is not a valid tier; valid choices: "
                   "scalar, avx2, avx512\n",
                   env.c_str());
      std::abort();
    }
    // The override CAPS the tier: requesting a tier the CPU lacks runs the
    // best supported one (results are bit-identical either way).
    if (cap < tier) tier = cap;
  }
  return tier;
}

}  // namespace

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

SimdTier DispatchedSimdTier() {
  static const SimdTier tier = ResolveTier();
  return tier;
}

void QuantizeRow(const Real* src, Index cols, Index stride, int8_t* out,
                 float* scale) {
  FIRZEN_CHECK_GE(stride, cols);
  FIRZEN_CHECK_EQ(stride % kQuantPad, 0);
  Real max_abs = 0.0;
  for (Index c = 0; c < cols; ++c) {
    const Real v = src[c];
    if (!std::isfinite(v)) {
      std::fprintf(stderr,
                   "QuantizeRow: non-finite embedding value %f at column %lld"
                   " — refusing to quantize a corrupt table\n",
                   static_cast<double>(v), static_cast<long long>(c));
      std::abort();
    }
    max_abs = std::max(max_abs, std::fabs(v));
  }
  // inv goes non-finite only when max_abs is zero or so deeply subnormal
  // that 127/max_abs overflows; either way the row carries no signal at int8
  // resolution and quantizes to all-zero codes under scale 0 — the
  // documented all-zero-row contract, with no division by the zero max.
  Real inv = 0.0;
  if (max_abs > 0.0) {
    inv = 127.0 / max_abs;
    if (!std::isfinite(inv)) inv = 0.0;
  }
  if (inv == 0.0) {
    std::fill(out, out + stride, static_cast<int8_t>(0));
    *scale = 0.0f;
    return;
  }
  for (Index c = 0; c < cols; ++c) {
    // lround: half away from zero, independent of the FP environment —
    // the same input bits quantize to the same code on every host.
    const long q = std::lround(src[c] * inv);
    out[c] = static_cast<int8_t>(
        std::clamp<long>(q, -127, 127));
  }
  std::fill(out + cols, out + stride, static_cast<int8_t>(0));
  *scale = static_cast<float>(max_abs / 127.0);
}

QuantizedMatrix QuantizedMatrix::FromMatrix(const Matrix& m, ThreadPool* pool) {
  QuantizedMatrix q;
  q.rows_ = m.rows();
  q.cols_ = m.cols();
  q.stride_ = RoundUpPad(m.cols());
  q.data_.resize(static_cast<size_t>(q.rows_ * q.stride_));
  q.scales_.resize(static_cast<size_t>(q.rows_));
  q.row_sums_.resize(static_cast<size_t>(q.rows_));
  if (q.rows_ == 0 || q.cols_ == 0) return q;
  if (pool == nullptr) pool = ThreadPool::Global();
  // Each row quantizes independently from its own fp32 bits, so the build is
  // bit-identical for any pool size (pinned by quantized_matrix_test).
  const Index min_rows =
      std::max<Index>(1, 65536 / std::max<Index>(1, q.cols_));
  ParallelFor(
      pool, q.rows_,
      [&](Index begin, Index end) {
        for (Index r = begin; r < end; ++r) {
          int8_t* out = q.data_.data() + r * q.stride_;
          QuantizeRow(m.row(r), q.cols_, q.stride_, out,
                      &q.scales_[static_cast<size_t>(r)]);
          int32_t sum = 0;
          for (Index c = 0; c < q.cols_; ++c) sum += out[c];
          q.row_sums_[static_cast<size_t>(r)] = sum;
        }
      },
      min_rows);
  return q;
}

void GemmBTQuant(const int8_t* a, Index m, Index k, Index a_stride,
                 const float* a_scales, const int8_t* b, Index n,
                 Index b_stride, const float* b_scales,
                 const int32_t* b_row_sums, MatrixView out, ThreadPool* pool) {
  FIRZEN_CHECK_GE(k, 0);
  FIRZEN_CHECK_GE(a_stride, k);
  FIRZEN_CHECK_GE(b_stride, k);
  FIRZEN_CHECK_EQ(a_stride % kQuantPad, 0);
  FIRZEN_CHECK_EQ(b_stride % kQuantPad, 0);
  FIRZEN_CHECK_EQ(out.rows(), m);
  FIRZEN_CHECK_EQ(out.cols(), n);
  if (m == 0 || n == 0) return;
  if (pool == nullptr) pool = ThreadPool::Global();
  const QuantGemmArgs g{a,        m,        k,           a_stride, a_scales,
                        b,        b_stride, b_scales,    b_row_sums, out};
  const SimdTier tier = DispatchedSimdTier();
  // Columns shard across the pool (serving shape: small user batches, vast
  // item blocks). Exact integer accumulation makes any sharding — and any
  // tier — produce the same bits, so this is purely a parallelization
  // choice, never a numerical one.
  const Index min_cols = std::max<Index>(1, 65536 / std::max<Index>(1, m * k));
  ParallelFor(
      pool, n,
      [&](Index j_begin, Index j_end) {
        switch (tier) {
#ifdef FIRZEN_QUANT_X86
          case SimdTier::kAvx512:
            QuantColumnsAvx512(g, j_begin, j_end);
            return;
          case SimdTier::kAvx2:
            QuantColumnsAvx2(g, j_begin, j_end);
            return;
#endif
          default:
            QuantColumnsScalar(g, j_begin, j_end);
            return;
        }
      },
      min_cols);
}

void GemmBTQuant(const int8_t* a, Index m, Index k, Index a_stride,
                 const float* a_scales, const QuantizedMatrix& b, Index b_begin,
                 Index n, MatrixView out, ThreadPool* pool) {
  FIRZEN_CHECK_GE(b_begin, 0);
  FIRZEN_CHECK_LE(b_begin + n, b.rows());
  FIRZEN_CHECK_EQ(k, b.cols());
  GemmBTQuant(a, m, k, a_stride, a_scales, b.row(b_begin), n, b.stride(),
              b.scales() + b_begin, b.row_sums() + b_begin, out, pool);
}

}  // namespace firzen
