// Parameter initialization schemes. The paper initializes ID embeddings with
// Xavier uniform (Section III-C).
#ifndef FIRZEN_TENSOR_INIT_H_
#define FIRZEN_TENSOR_INIT_H_

#include "src/tensor/matrix.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace firzen {

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
Matrix XavierUniform(Index rows, Index cols, Rng* rng);

/// Xavier/Glorot normal: N(0, sqrt(2 / (fan_in + fan_out))).
Matrix XavierNormal(Index rows, Index cols, Rng* rng);

/// Zero-initialized matrix as a trainable Variable.
Tensor ZerosVariable(Index rows, Index cols);

/// Xavier-uniform trainable Variable.
Tensor XavierVariable(Index rows, Index cols, Rng* rng);

}  // namespace firzen

#endif  // FIRZEN_TENSOR_INIT_H_
