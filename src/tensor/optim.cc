#include "src/tensor/optim.h"

#include <cmath>

#include "src/util/check.h"

namespace firzen {

void Sgd::Step(const std::vector<Tensor>& params) {
  for (const Tensor& p : params) {
    TensorNode* node = p.node().get();
    if (node->grad.empty()) continue;
    if (weight_decay_ != 0.0) {
      node->grad.Axpy(weight_decay_, node->value);
    }
    node->value.Axpy(-lr_, node->grad);
    node->grad.Zero();
  }
}

void Adam::Register(const Tensor& param) { GetState(param); }

Adam::State* Adam::GetState(const Tensor& param) {
  TensorNode* key = param.node().get();
  auto it = states_.find(key);
  if (it != states_.end()) return it->second.get();
  auto state = std::make_unique<State>();
  state->m.Resize(param.rows(), param.cols());
  state->v.Resize(param.rows(), param.cols());
  if (options_.lazy) {
    state->row_steps.assign(static_cast<size_t>(param.rows()), 0);
  }
  State* raw = state.get();
  states_.emplace(key, std::move(state));
  return raw;
}

void Adam::Step(const std::vector<Tensor>& params) {
  for (const Tensor& p : params) {
    TensorNode* node = p.node().get();
    if (node->grad.empty()) continue;
    State* state = GetState(p);
    const Index rows = node->value.rows();
    const Index cols = node->value.cols();
    FIRZEN_CHECK_EQ(state->m.rows(), rows);

    if (!options_.lazy) {
      ++state->steps;
      const Real bc1 = 1.0 - std::pow(options_.beta1, state->steps);
      const Real bc2 = 1.0 - std::pow(options_.beta2, state->steps);
      for (Index i = 0; i < rows * cols; ++i) {
        Real g = node->grad.data()[i];
        if (options_.weight_decay != 0.0) {
          g += options_.weight_decay * node->value.data()[i];
        }
        Real& m = state->m.data()[i];
        Real& v = state->v.data()[i];
        m = options_.beta1 * m + (1.0 - options_.beta1) * g;
        v = options_.beta2 * v + (1.0 - options_.beta2) * g * g;
        const Real mhat = m / bc1;
        const Real vhat = v / bc2;
        node->value.data()[i] -=
            options_.lr * mhat / (std::sqrt(vhat) + options_.eps);
      }
    } else {
      for (Index r = 0; r < rows; ++r) {
        const Real* grow = node->grad.row(r);
        bool dirty = false;
        for (Index c = 0; c < cols; ++c) {
          if (grow[c] != 0.0) {
            dirty = true;
            break;
          }
        }
        if (!dirty) continue;
        const int64_t t = ++state->row_steps[static_cast<size_t>(r)];
        const Real bc1 = 1.0 - std::pow(options_.beta1, t);
        const Real bc2 = 1.0 - std::pow(options_.beta2, t);
        Real* prow = node->value.row(r);
        Real* mrow = state->m.row(r);
        Real* vrow = state->v.row(r);
        for (Index c = 0; c < cols; ++c) {
          Real g = grow[c];
          if (options_.weight_decay != 0.0) {
            g += options_.weight_decay * prow[c];
          }
          mrow[c] = options_.beta1 * mrow[c] + (1.0 - options_.beta1) * g;
          vrow[c] = options_.beta2 * vrow[c] + (1.0 - options_.beta2) * g * g;
          const Real mhat = mrow[c] / bc1;
          const Real vhat = vrow[c] / bc2;
          prow[c] -= options_.lr * mhat / (std::sqrt(vhat) + options_.eps);
        }
      }
    }
    node->grad.Zero();
  }
}

}  // namespace firzen
