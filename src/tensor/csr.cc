#include "src/tensor/csr.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace firzen {

CsrMatrix CsrMatrix::FromCoo(Index rows, Index cols,
                             std::vector<CooEntry> entries) {
  for (const auto& e : entries) {
    FIRZEN_CHECK_GE(e.row, 0);
    FIRZEN_CHECK_LT(e.row, rows);
    FIRZEN_CHECK_GE(e.col, 0);
    FIRZEN_CHECK_LT(e.col, cols);
  }
  std::sort(entries.begin(), entries.end(),
            [](const CooEntry& a, const CooEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  // Merge duplicates by summation.
  size_t w = 0;
  for (size_t r = 0; r < entries.size(); ++r) {
    if (w > 0 && entries[w - 1].row == entries[r].row &&
        entries[w - 1].col == entries[r].col) {
      entries[w - 1].value += entries[r].value;
    } else {
      entries[w++] = entries[r];
    }
  }
  entries.resize(w);

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<size_t>(rows) + 1, 0);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());
  for (const auto& e : entries) {
    ++m.row_ptr_[static_cast<size_t>(e.row) + 1];
    m.col_idx_.push_back(e.col);
    m.values_.push_back(e.value);
  }
  for (Index r = 0; r < rows; ++r) {
    m.row_ptr_[static_cast<size_t>(r) + 1] +=
        m.row_ptr_[static_cast<size_t>(r)];
  }
  return m;
}

CsrMatrix CsrMatrix::FromCooNoMerge(Index rows, Index cols,
                                    std::vector<CooEntry> entries) {
  for (const auto& e : entries) {
    FIRZEN_CHECK_GE(e.row, 0);
    FIRZEN_CHECK_LT(e.row, rows);
    FIRZEN_CHECK_GE(e.col, 0);
    FIRZEN_CHECK_LT(e.col, cols);
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const CooEntry& a, const CooEntry& b) {
                     return a.row < b.row;
                   });
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<size_t>(rows) + 1, 0);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());
  for (const auto& e : entries) {
    ++m.row_ptr_[static_cast<size_t>(e.row) + 1];
    m.col_idx_.push_back(e.col);
    m.values_.push_back(e.value);
  }
  for (Index r = 0; r < rows; ++r) {
    m.row_ptr_[static_cast<size_t>(r) + 1] +=
        m.row_ptr_[static_cast<size_t>(r)];
  }
  return m;
}

CsrMatrix CsrMatrix::WithValues(std::vector<Real> values) const {
  FIRZEN_CHECK_EQ(static_cast<Index>(values.size()), nnz());
  CsrMatrix m = *this;
  m.transpose_cache_ = std::make_shared<TransposeCache>();
  m.values_ = std::move(values);
  return m;
}

void CsrMatrix::SpMM(const Matrix& x, Matrix* y, ThreadPool* pool) const {
  FIRZEN_CHECK_EQ(x.rows(), cols_);
  y->ResizeUninitialized(rows_, x.cols());
  const Index d = x.cols();
  const Index* row_ptr = row_ptr_.data();
  const Index* col_idx = col_idx_.data();
  const Real* values = values_.data();
  const Real* x_data = x.data();
  Real* y_data = y->data();
  ParallelFor(
      pool == nullptr ? ThreadPool::Global() : pool, rows_,
      [&](Index begin, Index end) {
        for (Index r = begin; r < end; ++r) {
          Real* out = y_data + r * d;
          for (Index c = 0; c < d; ++c) out[c] = 0.0;
          for (Index p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
            const Real v = values[static_cast<size_t>(p)];
            const Real* in = x_data + col_idx[static_cast<size_t>(p)] * d;
            for (Index c = 0; c < d; ++c) out[c] += v * in[c];
          }
        }
      },
      MinRowShard(d));
}

void CsrMatrix::SpMMAccum(Real alpha, const Matrix& x, Matrix* y,
                          ThreadPool* pool) const {
  FIRZEN_CHECK_EQ(x.rows(), cols_);
  FIRZEN_CHECK_EQ(y->rows(), rows_);
  FIRZEN_CHECK_EQ(y->cols(), x.cols());
  const Index d = x.cols();
  const Index* row_ptr = row_ptr_.data();
  const Index* col_idx = col_idx_.data();
  const Real* values = values_.data();
  const Real* x_data = x.data();
  Real* y_data = y->data();
  ParallelFor(
      pool == nullptr ? ThreadPool::Global() : pool, rows_,
      [&](Index begin, Index end) {
        for (Index r = begin; r < end; ++r) {
          Real* out = y_data + r * d;
          for (Index p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
            const Real v = alpha * values[static_cast<size_t>(p)];
            const Real* in = x_data + col_idx[static_cast<size_t>(p)] * d;
            for (Index c = 0; c < d; ++c) out[c] += v * in[c];
          }
        }
      },
      MinRowShard(d));
}

void CsrMatrix::SpMMT(const Matrix& x, Matrix* y, ThreadPool* pool) const {
  Transposed().SpMM(x, y, pool);
}

void CsrMatrix::SpMMTAccum(Real alpha, const Matrix& x, Matrix* y,
                           ThreadPool* pool) const {
  Transposed().SpMMAccum(alpha, x, y, pool);
}

Index CsrMatrix::MinRowShard(Index d) const {
  // Target shards of at least ~32K multiply-adds: avg nnz per row times the
  // dense width gives the per-row cost.
  const Index avg_row_flops =
      std::max<Index>(1, nnz() / std::max<Index>(1, rows_) * d);
  return std::max<Index>(16, 32768 / avg_row_flops);
}

const CsrMatrix& CsrMatrix::Transposed() const {
  TransposeCache* cache = transpose_cache_.get();
  std::call_once(cache->once, [this, cache] {
    std::vector<CooEntry> entries;
    entries.reserve(static_cast<size_t>(nnz()));
    for (Index r = 0; r < rows_; ++r) {
      for (Index p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
        entries.push_back({col_idx_[static_cast<size_t>(p)], r,
                           values_[static_cast<size_t>(p)]});
      }
    }
    cache->value = std::make_shared<const CsrMatrix>(
        FromCoo(cols_, rows_, std::move(entries)));
  });
  return *cache->value;
}

CsrMatrix CsrMatrix::RowNormalized() const {
  CsrMatrix m = *this;
  m.transpose_cache_ = std::make_shared<TransposeCache>();
  for (Index r = 0; r < rows_; ++r) {
    // Sequential fixed-order scalar reduction: deterministic as written; the
    // sanctioned fma kernels (matrix.cc) exist for blocked/parallel panels.
    // firzen-lint: allow(raw-float-accum)
    Real sum = 0.0;
    for (Index p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      sum += std::abs(values_[static_cast<size_t>(p)]);
    }
    if (sum <= 0.0) continue;
    for (Index p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      m.values_[static_cast<size_t>(p)] /= sum;
    }
  }
  return m;
}

CsrMatrix CsrMatrix::SymNormalized() const {
  FIRZEN_CHECK_EQ(rows_, cols_);
  std::vector<Real> degree(static_cast<size_t>(rows_), 0.0);
  for (Index r = 0; r < rows_; ++r) {
    for (Index p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      degree[static_cast<size_t>(r)] += values_[static_cast<size_t>(p)];
    }
  }
  CsrMatrix m = *this;
  m.transpose_cache_ = std::make_shared<TransposeCache>();
  for (Index r = 0; r < rows_; ++r) {
    const Real dr = degree[static_cast<size_t>(r)];
    if (dr <= 0.0) continue;
    for (Index p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const Real dc =
          degree[static_cast<size_t>(col_idx_[static_cast<size_t>(p)])];
      if (dc <= 0.0) {
        m.values_[static_cast<size_t>(p)] = 0.0;
      } else {
        m.values_[static_cast<size_t>(p)] /= std::sqrt(dr) * std::sqrt(dc);
      }
    }
  }
  return m;
}

CsrMatrix CsrMatrix::RowSoftmax() const {
  CsrMatrix m = *this;
  m.transpose_cache_ = std::make_shared<TransposeCache>();
  for (Index r = 0; r < rows_; ++r) {
    const Index begin = row_ptr_[r];
    const Index end = row_ptr_[r + 1];
    if (begin == end) continue;
    Real max_v = values_[static_cast<size_t>(begin)];
    for (Index p = begin + 1; p < end; ++p) {
      max_v = std::max(max_v, values_[static_cast<size_t>(p)]);
    }
    // Sequential fixed-order scalar reduction: deterministic as written; the
    // sanctioned fma kernels (matrix.cc) exist for blocked/parallel panels.
    // firzen-lint: allow(raw-float-accum)
    Real denom = 0.0;
    for (Index p = begin; p < end; ++p) {
      m.values_[static_cast<size_t>(p)] =
          std::exp(values_[static_cast<size_t>(p)] - max_v);
      denom += m.values_[static_cast<size_t>(p)];
    }
    for (Index p = begin; p < end; ++p) {
      m.values_[static_cast<size_t>(p)] /= denom;
    }
  }
  return m;
}

CsrMatrix CsrMatrix::Filtered(
    const std::function<bool(Index, Index)>& keep) const {
  std::vector<CooEntry> entries;
  entries.reserve(static_cast<size_t>(nnz()));
  for (Index r = 0; r < rows_; ++r) {
    for (Index p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const Index c = col_idx_[static_cast<size_t>(p)];
      if (keep(r, c)) {
        entries.push_back({r, c, values_[static_cast<size_t>(p)]});
      }
    }
  }
  return FromCoo(rows_, cols_, std::move(entries));
}

Matrix CsrMatrix::ToDense() const {
  Matrix dense(rows_, cols_);
  for (Index r = 0; r < rows_; ++r) {
    for (Index p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      dense(r, col_idx_[static_cast<size_t>(p)]) +=
          values_[static_cast<size_t>(p)];
    }
  }
  return dense;
}

}  // namespace firzen
