// Define-by-run reverse-mode automatic differentiation over dense matrices.
// Every model in this library (Firzen and all fifteen baselines) builds its
// per-step loss as a graph of Tensor ops and calls Backward().
//
// Design notes:
//  * A Tensor is a cheap shared handle to a Node holding the forward value,
//    a lazily allocated gradient, and a backward closure.
//  * Graphs are rebuilt each training step (define-by-run); leaf parameter
//    nodes persist across steps and are updated by an Optimizer.
//  * Sparse graph matrices (the paper's frozen graphs) enter the graph as
//    constants through the SpMM op only — gradients never flow into graph
//    structure, which is exactly the paper's "frozen" semantics.
#ifndef FIRZEN_TENSOR_TENSOR_H_
#define FIRZEN_TENSOR_TENSOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/tensor/matrix.h"

namespace firzen {

/// Internal autograd graph node. Use the Tensor handle instead of touching
/// nodes directly.
struct TensorNode {
  Matrix value;
  Matrix grad;  // empty until the backward pass reaches this node
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorNode>> parents;
  /// Propagates this->grad into parents' grads. Null for leaves.
  std::function<void(TensorNode*)> backward_fn;
  const char* op_name = "leaf";

  /// Allocates and zeroes grad if it does not match the value shape yet.
  void EnsureGrad();
};

/// Value-semantic handle to an autograd node.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorNode> node) : node_(std::move(node)) {}

  /// A leaf that does not require gradients.
  static Tensor Constant(Matrix value);

  /// A trainable leaf (model parameter).
  static Tensor Variable(Matrix value);

  bool defined() const { return node_ != nullptr; }
  const Matrix& value() const { return node_->value; }
  Matrix* mutable_value() { return &node_->value; }
  const Matrix& grad() const { return node_->grad; }
  Matrix* mutable_grad() { return &node_->grad; }
  bool requires_grad() const { return node_->requires_grad; }

  Index rows() const { return node_->value.rows(); }
  Index cols() const { return node_->value.cols(); }

  /// Scalar payload of a 1x1 tensor.
  Real scalar() const;

  /// Zeroes the gradient buffer (keeps allocation).
  void ZeroGrad();

  const std::shared_ptr<TensorNode>& node() const { return node_; }

 private:
  std::shared_ptr<TensorNode> node_;
};

/// Runs reverse-mode differentiation from `loss` (must be 1x1). Gradients
/// accumulate into every reachable node with requires_grad.
void Backward(const Tensor& loss);

}  // namespace firzen

#endif  // FIRZEN_TENSOR_TENSOR_H_
