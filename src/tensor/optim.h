// First-order optimizers over Tensor parameters. Adam keeps per-parameter
// moment state keyed by node identity; LazyAdam skips moment updates for
// embedding rows whose gradient is exactly zero this step (the common case
// for large entity tables under mini-batch sampling).
#ifndef FIRZEN_TENSOR_OPTIM_H_
#define FIRZEN_TENSOR_OPTIM_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/tensor/tensor.h"

namespace firzen {

/// Abstract optimizer interface.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Registers a trainable parameter. Parameters may also be passed lazily to
  /// Step; registration pre-allocates state.
  virtual void Register(const Tensor& param) = 0;

  /// Applies one update using each parameter's accumulated gradient, then
  /// zeroes the gradients.
  virtual void Step(const std::vector<Tensor>& params) = 0;
};

/// Plain SGD with optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  explicit Sgd(Real lr, Real weight_decay = 0.0)
      : lr_(lr), weight_decay_(weight_decay) {}

  void Register(const Tensor& param) override { (void)param; }
  void Step(const std::vector<Tensor>& params) override;

  void set_lr(Real lr) { lr_ = lr; }
  Real lr() const { return lr_; }

 private:
  Real lr_;
  Real weight_decay_;
};

/// Adam (Kingma & Ba, 2015) with optional decoupled weight decay and a lazy
/// row-sparse mode for embedding tables.
class Adam : public Optimizer {
 public:
  struct Options {
    Real lr = 1e-3;
    Real beta1 = 0.9;
    Real beta2 = 0.999;
    Real eps = 1e-8;
    Real weight_decay = 0.0;
    /// When true, rows whose gradient is all-zero are skipped entirely
    /// (moments are not decayed) — "lazy Adam" semantics.
    bool lazy = false;
  };

  explicit Adam(Options options) : options_(options) {}

  void Register(const Tensor& param) override;
  void Step(const std::vector<Tensor>& params) override;

  void set_lr(Real lr) { options_.lr = lr; }
  Real lr() const { return options_.lr; }

 private:
  struct State {
    Matrix m;
    Matrix v;
    // Per-row step counts for lazy mode; single shared count otherwise.
    std::vector<int64_t> row_steps;
    int64_t steps = 0;
  };

  State* GetState(const Tensor& param);

  Options options_;
  std::unordered_map<TensorNode*, std::unique_ptr<State>> states_;
};

}  // namespace firzen

#endif  // FIRZEN_TENSOR_OPTIM_H_
