#include "src/tensor/gradcheck.h"

#include <cmath>

#include "src/util/check.h"

namespace firzen {

GradCheckResult CheckGradients(const std::vector<Tensor>& params,
                               const std::function<Tensor()>& build_loss,
                               Real step, Real tolerance) {
  // Analytic pass.
  for (const Tensor& p : params) {
    Tensor mutable_p = p;
    mutable_p.ZeroGrad();
  }
  Tensor loss = build_loss();
  Backward(loss);

  std::vector<Matrix> analytic;
  analytic.reserve(params.size());
  for (const Tensor& p : params) {
    FIRZEN_CHECK(p.requires_grad());
    analytic.push_back(p.grad());
  }

  GradCheckResult result;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor p = params[pi];
    Matrix& value = *p.mutable_value();
    for (Index i = 0; i < value.size(); ++i) {
      const Real original = value.data()[i];
      value.data()[i] = original + step;
      const Real up = build_loss().scalar();
      value.data()[i] = original - step;
      const Real down = build_loss().scalar();
      value.data()[i] = original;

      const Real numeric = (up - down) / (2.0 * step);
      const Real exact = analytic[pi].data()[i];
      const Real abs_err = std::abs(numeric - exact);
      const Real denom = std::max({std::abs(numeric), std::abs(exact), 1e-8});
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
    }
  }
  result.ok = std::min(result.max_abs_error, result.max_rel_error) < tolerance;
  return result;
}

}  // namespace firzen
