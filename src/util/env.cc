#include "src/util/env.h"

#include <algorithm>
#include <cstdlib>

namespace firzen {

std::string GetEnvString(const std::string& name, const std::string& def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return def;
  return std::string(v);
}

long GetEnvInt(const std::string& name, long def) {
  const std::string v = GetEnvString(name, "");
  if (v.empty()) return def;
  char* end = nullptr;
  const long parsed = std::strtol(v.c_str(), &end, 10);
  if (end == v.c_str()) return def;
  return parsed;
}

bool GetEnvBool(const std::string& name, bool def) {
  std::string v = GetEnvString(name, "");
  if (v.empty()) return def;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace firzen
