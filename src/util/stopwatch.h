// Wall-clock stopwatch for the timing experiments (Table VII).
#ifndef FIRZEN_UTIL_STOPWATCH_H_
#define FIRZEN_UTIL_STOPWATCH_H_

#include <chrono>

namespace firzen {

/// Monotonic wall-clock stopwatch. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Reset the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace firzen

#endif  // FIRZEN_UTIL_STOPWATCH_H_
