#include "src/util/rng.h"

#include <cmath>

#include "src/util/check.h"

namespace firzen {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

Real Rng::Uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<Real>(Next() >> 11) * 0x1.0p-53;
}

Real Rng::Uniform(Real lo, Real hi) { return lo + (hi - lo) * Uniform(); }

Index Rng::UniformInt(Index n) {
  FIRZEN_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t x;
  do {
    x = Next();
  } while (x >= limit);
  return static_cast<Index>(x % un);
}

Real Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  Real u1;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const Real u2 = Uniform();
  const Real mag = std::sqrt(-2.0 * std::log(u1));
  const Real two_pi = 6.283185307179586476925286766559;
  spare_normal_ = mag * std::sin(two_pi * u2);
  has_spare_normal_ = true;
  return mag * std::cos(two_pi * u2);
}

Real Rng::Normal(Real mean, Real stddev) { return mean + stddev * Normal(); }

Real Rng::Gumbel() {
  Real u;
  do {
    u = Uniform();
  } while (u <= 1e-300);
  return -std::log(-std::log(u));
}

bool Rng::Bernoulli(Real p) { return Uniform() < p; }

std::vector<Index> Rng::SampleWithoutReplacement(Index n, Index k) {
  FIRZEN_CHECK_LE(k, n);
  // Floyd's algorithm: O(k) expected time, no O(n) allocation.
  std::vector<Index> out;
  out.reserve(k);
  std::vector<bool> seen;  // fall back to vector<bool> when k is large
  if (k * 4 >= n) {
    std::vector<Index> all(n);
    for (Index i = 0; i < n; ++i) all[i] = i;
    Shuffle(&all);
    all.resize(k);
    return all;
  }
  seen.assign(static_cast<size_t>(n), false);
  for (Index j = n - k; j < n; ++j) {
    Index t = UniformInt(j + 1);
    if (seen[static_cast<size_t>(t)]) t = j;
    seen[static_cast<size_t>(t)] = true;
    out.push_back(t);
  }
  return out;
}

Index Rng::SampleDiscrete(const std::vector<Real>& weights) {
  FIRZEN_CHECK(!weights.empty());
  Real total = 0.0;
  for (Real w : weights) {
    FIRZEN_CHECK_GE(w, 0.0);
    total += w;
  }
  FIRZEN_CHECK_GT(total, 0.0);
  Real x = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return static_cast<Index>(i);
  }
  return static_cast<Index>(weights.size()) - 1;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace firzen
