// RocksDB-style Status / Result error handling for public API boundaries.
// Internal numerical kernels use FIRZEN_CHECK (see check.h) instead: a
// malformed matrix shape is a programming error, not a runtime condition.
#ifndef FIRZEN_UTIL_STATUS_H_
#define FIRZEN_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace firzen {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
};

/// Lightweight status object returned by fallible public APIs.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> carries either a value or a Status describing the failure.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Result(Status status) : value_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(value_); }
  const Status& status() const { return std::get<Status>(value_); }

  T& value() { return std::get<T>(value_); }
  const T& value() const { return std::get<T>(value_); }

  T ValueOrDie() && {
    if (!ok()) std::abort();
    return std::move(std::get<T>(value_));
  }

 private:
  std::variant<T, Status> value_;
};

}  // namespace firzen

#endif  // FIRZEN_UTIL_STATUS_H_
