#include "src/util/status.h"

namespace firzen {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIOError:
      return "IO_ERROR";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  return std::string(CodeName(code_)) + ": " + message_;
}

}  // namespace firzen
