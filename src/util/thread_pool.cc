#include "src/util/thread_pool.h"

#include <algorithm>

#include "src/util/env.h"

namespace firzen {
namespace {

thread_local bool t_in_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(0, num_threads)) {
  workers_.reserve(num_threads_);
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  task_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (num_threads_ == 0) {
    task();
    return;
  }
  {
    MutexLock lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  if (num_threads_ == 0) return;
  MutexLock lock(mu_);
  while (in_flight_ != 0) done_cv_.Wait(lock);
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && tasks_.empty()) task_cv_.Wait(lock);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) done_cv_.NotifyAll();
    }
  }
}

bool ThreadPool::InWorker() { return t_in_pool_worker; }

int GlobalPoolThreadCount() {
  const long env = GetEnvInt("FIRZEN_NUM_THREADS", 0);
  if (env > 0) return static_cast<int>(env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

ThreadPool* ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(GlobalPoolThreadCount());
  return pool;
}

void ParallelFor(ThreadPool* pool, Index n,
                 const std::function<void(Index, Index)>& fn,
                 Index min_shard_size) {
  if (n <= 0) return;
  if (pool == nullptr || pool->num_threads() <= 1 || n <= min_shard_size ||
      ThreadPool::InWorker()) {
    fn(0, n);
    return;
  }
  const Index num_shards =
      std::min<Index>(pool->num_threads(),
                      (n + min_shard_size - 1) / min_shard_size);
  const Index shard = (n + num_shards - 1) / num_shards;
  // Per-call completion group: the caller waits for ITS shards only, not
  // for the pool-wide queue to drain (ThreadPool::Wait). Concurrent
  // ParallelFor callers — e.g. serving requests sharing the global pool —
  // therefore do not block on each other's work.
  struct Group {
    Mutex mu;
    CondVar cv;
    Index pending FIRZEN_GUARDED_BY(mu);
  };
  Group group{{}, {}, (n + shard - 1) / shard};
  for (Index begin = 0; begin < n; begin += shard) {
    const Index end = std::min(begin + shard, n);
    pool->Submit([&fn, &group, begin, end] {
      fn(begin, end);
      MutexLock lock(group.mu);
      if (--group.pending == 0) group.cv.NotifyOne();
    });
  }
  MutexLock lock(group.mu);
  while (group.pending != 0) group.cv.Wait(lock);
}

}  // namespace firzen
